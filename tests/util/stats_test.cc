#include "util/stats.h"

#include <gtest/gtest.h>

#include "sim/random.h"

namespace barb {
namespace {

TEST(Stats, MeanMinMax) {
  Stats s;
  for (double x : {3.0, 1.0, 2.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(Stats, StddevOfConstantIsZero) {
  Stats s;
  for (int i = 0; i < 5; ++i) s.add(7.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(Stats, SampleStddevMatchesHandComputation) {
  Stats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  // Population variance of this classic set is 4; sample variance is 32/7.
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, SingleSampleHasZeroSpread) {
  Stats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 42.0);
}

TEST(Stats, PercentileInterpolatesLinearly) {
  Stats s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 17.5);
}

TEST(Stats, PercentileIsOrderInsensitive) {
  Stats a, b;
  for (double x : {5.0, 1.0, 3.0, 2.0, 4.0}) a.add(x);
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) b.add(x);
  for (double p : {0.0, 10.0, 50.0, 90.0, 100.0}) {
    EXPECT_DOUBLE_EQ(a.percentile(p), b.percentile(p));
  }
}

// Property: for large normal samples the CI half-width shrinks like 1/sqrt(n)
// and contains the true mean most of the time.
class StatsCiProperty : public ::testing::TestWithParam<int> {};

TEST_P(StatsCiProperty, CiCoversTrueMean) {
  sim::Random rng(static_cast<std::uint64_t>(GetParam()));
  Stats s;
  const double true_mean = 50.0;
  for (int i = 0; i < 400; ++i) s.add(rng.normal(true_mean, 5.0));
  EXPECT_NEAR(s.mean(), true_mean, 3 * s.ci95_halfwidth() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsCiProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace barb
