#include "util/token_bucket.h"

#include <gtest/gtest.h>

#include "util/histogram.h"
#include "util/rate_estimator.h"

namespace barb {
namespace {

using sim::Duration;
using sim::TimePoint;

TEST(TokenBucket, StartsFull) {
  TokenBucket tb(100.0, 5.0);
  const auto t0 = TimePoint::origin();
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(tb.try_consume(t0));
  EXPECT_FALSE(tb.try_consume(t0));
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket tb(1000.0, 1.0);
  auto t = TimePoint::origin();
  EXPECT_TRUE(tb.try_consume(t));
  EXPECT_FALSE(tb.try_consume(t));
  t = t + Duration::milliseconds(1);  // exactly one token accrues
  EXPECT_TRUE(tb.try_consume(t));
  EXPECT_FALSE(tb.try_consume(t));
}

TEST(TokenBucket, BurstCapsAccumulation) {
  TokenBucket tb(1000.0, 2.0);
  auto t = TimePoint::origin() + Duration::seconds(10);  // long idle
  int consumed = 0;
  while (tb.try_consume(t)) ++consumed;
  EXPECT_EQ(consumed, 2);
}

TEST(TokenBucket, TimeUntilAvailableIsExact) {
  TokenBucket tb(500.0, 1.0);
  auto t = TimePoint::origin();
  EXPECT_TRUE(tb.try_consume(t));
  const auto wait = tb.time_until_available(t);
  EXPECT_EQ(wait, Duration::milliseconds(2));
  EXPECT_TRUE(tb.try_consume(t + wait));
}

TEST(TokenBucket, ZeroWaitWhenTokensPresent) {
  TokenBucket tb(10.0, 3.0);
  EXPECT_EQ(tb.time_until_available(TimePoint::origin()), Duration::zero());
}

// Property: pacing N consumptions through the bucket takes (N-burst)/rate.
class TokenBucketPacing : public ::testing::TestWithParam<double> {};

TEST_P(TokenBucketPacing, LongRunRateMatchesConfiguredRate) {
  const double rate = GetParam();
  TokenBucket tb(rate, 1.0);
  auto t = TimePoint::origin();
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    t = t + tb.time_until_available(t);
    ASSERT_TRUE(tb.try_consume(t));
  }
  const double elapsed = (t - TimePoint::origin()).to_seconds();
  const double achieved = (n - 1) / elapsed;  // first token was free (full bucket)
  EXPECT_NEAR(achieved, rate, rate * 0.01);
}

INSTANTIATE_TEST_SUITE_P(Rates, TokenBucketPacing,
                         ::testing::Values(10.0, 1000.0, 45000.0, 148810.0));

TEST(WindowCounter, AveragesOverWindow) {
  WindowCounter wc;
  wc.start(TimePoint::origin());
  wc.add(500);
  wc.add(500);
  const double rate = wc.stop(TimePoint::origin() + Duration::seconds(2));
  EXPECT_DOUBLE_EQ(rate, 500.0);
}

TEST(WindowCounter, IgnoresAddsOutsideWindow) {
  WindowCounter wc;
  wc.add(100);  // before start
  wc.start(TimePoint::origin());
  wc.add(100);
  (void)wc.stop(TimePoint::origin() + Duration::seconds(1));
  wc.add(100);  // after stop
  EXPECT_EQ(wc.total(), 100u);
}

TEST(LatencyHistogram, MeanAndPercentileBracketSamples) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.add(Duration::microseconds(100));
  EXPECT_EQ(h.total(), 100u);
  EXPECT_NEAR(h.mean_ms(), 0.1, 1e-9);
  const auto p99 = h.percentile_upper_ns(99);
  EXPECT_GE(p99, 100'000);
  EXPECT_LE(p99, 200'000);  // one power-of-two bucket wide
}

TEST(LatencyHistogram, ClearResets) {
  LatencyHistogram h;
  h.add(Duration::milliseconds(5));
  h.clear();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.mean_ms(), 0.0);
}

}  // namespace
}  // namespace barb
