#include "util/logging.h"

#include <gtest/gtest.h>

namespace barb {
namespace {

TEST(Logger, LevelGatesEnabledChecks) {
  auto& logger = Logger::instance();
  const auto saved = logger.level();

  logger.set_level(LogLevel::kWarn);
  EXPECT_FALSE(logger.enabled(LogLevel::kTrace));
  EXPECT_FALSE(logger.enabled(LogLevel::kDebug));
  EXPECT_FALSE(logger.enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(LogLevel::kWarn));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));

  logger.set_level(LogLevel::kError);
  EXPECT_FALSE(logger.enabled(LogLevel::kWarn));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));

  logger.set_level(LogLevel::kTrace);
  EXPECT_TRUE(logger.enabled(LogLevel::kTrace));

  logger.set_level(saved);
}

TEST(Logger, MacrosCompileAndRespectLevel) {
  auto& logger = Logger::instance();
  const auto saved = logger.level();
  logger.set_level(LogLevel::kError);
  // These must be no-ops (and must not evaluate as errors) below the level.
  BARB_TRACE("trace %d", 1);
  BARB_DEBUG("debug %s", "x");
  BARB_INFO("info");
  BARB_WARN("warn");
  logger.set_level(saved);
}

}  // namespace
}  // namespace barb
