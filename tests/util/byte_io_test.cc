#include "util/byte_io.h"

#include <gtest/gtest.h>

namespace barb {
namespace {

TEST(ByteWriter, WritesBigEndian) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0102030405060708ULL);
  const std::vector<std::uint8_t> expected = {0xab, 0x12, 0x34, 0xde, 0xad, 0xbe, 0xef,
                                              0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                                              0x08};
  EXPECT_EQ(out, expected);
}

TEST(ByteReader, RoundTripsWriter) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u8(7);
  w.u16(65535);
  w.u32(0xcafebabe);
  w.u64(0xffffffffffffffffULL);
  w.zeros(3);

  ByteReader r(out);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 65535);
  EXPECT_EQ(r.u32(), 0xcafebabe);
  EXPECT_EQ(r.u64(), 0xffffffffffffffffULL);
  EXPECT_EQ(r.remaining(), 3u);
  EXPECT_TRUE(r.ok());
}

TEST(ByteReader, ShortBufferSetsNotOkAndReturnsZero) {
  const std::vector<std::uint8_t> data = {0x01, 0x02};
  ByteReader r(data);
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_FALSE(r.ok());
  // All subsequent reads also fail safely.
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_TRUE(r.bytes(1).empty());
}

TEST(ByteReader, PartialReadThenOverrun) {
  const std::vector<std::uint8_t> data = {0xaa, 0xbb, 0xcc};
  ByteReader r(data);
  EXPECT_EQ(r.u16(), 0xaabb);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.u16(), 0u);  // only 1 byte left
  EXPECT_FALSE(r.ok());
}

TEST(ByteReader, BytesViewsUnderlyingData) {
  const std::vector<std::uint8_t> data = {1, 2, 3, 4, 5};
  ByteReader r(data);
  r.skip(1);
  auto s = r.bytes(3);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[2], 4);
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(ByteReader, RestConsumesEverything) {
  const std::vector<std::uint8_t> data = {9, 8, 7};
  ByteReader r(data);
  r.u8();
  auto rest = r.rest();
  EXPECT_EQ(rest.size(), 2u);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ToHex, FormatsLowercasePairs) {
  const std::vector<std::uint8_t> data = {0x00, 0x0f, 0xa5, 0xff};
  EXPECT_EQ(to_hex(data), "000fa5ff");
  EXPECT_EQ(to_hex({}), "");
}

}  // namespace
}  // namespace barb
