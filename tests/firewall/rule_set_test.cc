#include "firewall/rule_set.h"

#include <gtest/gtest.h>

#include "net/packet_builder.h"

namespace barb::firewall {
namespace {

net::FiveTuple tcp_tuple(std::uint8_t src_last, std::uint8_t dst_last,
                         std::uint16_t dport) {
  net::FiveTuple t;
  t.src = net::Ipv4Address(10, 0, 0, src_last);
  t.dst = net::Ipv4Address(10, 0, 0, dst_last);
  t.src_port = 40000;
  t.dst_port = dport;
  t.protocol = 6;
  return t;
}

Rule allow_to_port(std::uint16_t port) {
  Rule r;
  r.action = RuleAction::kAllow;
  r.protocol = 6;
  r.dst_ports = PortRange{port, port};
  return r;
}

Rule never_matches(int i) {
  Rule r;
  r.action = RuleAction::kDeny;
  r.src_net = net::Ipv4Address(192, 168, 0, static_cast<std::uint8_t>(i + 1));
  r.src_prefix = 32;
  return r;
}

TEST(RuleSet, FirstMatchWins) {
  RuleSet rs;
  Rule deny80;
  deny80.action = RuleAction::kDeny;
  deny80.dst_ports = PortRange{80, 80};
  rs.add(deny80);
  rs.add(allow_to_port(80));  // shadowed by the deny above

  const auto result = rs.match(tcp_tuple(1, 2, 80));
  EXPECT_EQ(result.action, RuleAction::kDeny);
  EXPECT_EQ(result.matched_index, 0);
  EXPECT_EQ(result.rules_traversed, 1);
}

TEST(RuleSet, TraversalCountIncludesMatchingRule) {
  RuleSet rs;
  for (int i = 0; i < 7; ++i) rs.add(never_matches(i));
  rs.add(allow_to_port(80));  // depth 8

  const auto result = rs.match(tcp_tuple(1, 2, 80));
  EXPECT_EQ(result.action, RuleAction::kAllow);
  EXPECT_EQ(result.rules_traversed, 8);
  EXPECT_EQ(result.matched_index, 7);
}

TEST(RuleSet, DefaultActionCostsFullScan) {
  RuleSet rs;
  for (int i = 0; i < 5; ++i) rs.add(never_matches(i));
  rs.set_default_action(RuleAction::kDeny);

  const auto result = rs.match(tcp_tuple(1, 2, 80));
  EXPECT_EQ(result.action, RuleAction::kDeny);
  EXPECT_EQ(result.rules_traversed, 5);
  EXPECT_EQ(result.matched_index, -1);
}

TEST(RuleSet, VpgPairCountsTwoUnits) {
  RuleSet rs;
  Rule vpg;
  vpg.action = RuleAction::kVpg;
  vpg.vpg_id = 7;
  vpg.src_net = net::Ipv4Address(192, 168, 1, 1);  // non-matching selectors
  vpg.src_prefix = 32;
  rs.add(vpg);
  rs.add(allow_to_port(80));

  const auto result = rs.match(tcp_tuple(1, 2, 80));
  EXPECT_EQ(result.action, RuleAction::kAllow);
  EXPECT_EQ(result.rules_traversed, 3);  // 2 for the VPG pair + 1
  EXPECT_EQ(rs.total_cost_units(), 3);
}

TEST(RuleSet, InboundVpgFrameMatchesById) {
  RuleSet rs;
  Rule other_vpg;
  other_vpg.action = RuleAction::kVpg;
  other_vpg.vpg_id = 99;
  rs.add(other_vpg);
  Rule vpg;
  vpg.action = RuleAction::kVpg;
  vpg.vpg_id = 7;
  rs.add(vpg);

  // Build a VPG-encapsulated frame with id 7.
  net::IpEndpoints ep;
  ep.src_ip = net::Ipv4Address(10, 0, 0, 30);
  ep.dst_ip = net::Ipv4Address(10, 0, 0, 40);
  ep.src_mac = net::MacAddress::from_host_id(30);
  ep.dst_mac = net::MacAddress::from_host_id(40);
  std::vector<std::uint8_t> payload;
  ByteWriter w(payload);
  net::VpgHeader vh;
  vh.vpg_id = 7;
  vh.seq = 1;
  vh.orig_protocol = 6;
  vh.payload_len = 16;
  vh.serialize(w);
  w.zeros(16);
  const auto frame = net::build_ipv4_frame(ep, net::IpProtocol::kVpg, payload);

  auto view = net::FrameView::parse(frame);
  ASSERT_TRUE(view.has_value());
  ASSERT_TRUE(view->vpg.has_value());

  const auto result = rs.match(*view);
  EXPECT_EQ(result.action, RuleAction::kVpg);
  EXPECT_EQ(result.vpg_id, 7u);
  // Traversed the non-matching VPG (2 units) plus the matching pair (2).
  EXPECT_EQ(result.rules_traversed, 4);
}

TEST(RuleSet, InboundVpgFrameDoesNotMatchPlainRules) {
  RuleSet rs;
  Rule allow_all;  // matches any cleartext tuple
  allow_all.action = RuleAction::kAllow;
  rs.add(allow_all);
  rs.set_default_action(RuleAction::kDeny);

  net::IpEndpoints ep;
  ep.src_ip = net::Ipv4Address(10, 0, 0, 30);
  ep.dst_ip = net::Ipv4Address(10, 0, 0, 40);
  ep.src_mac = net::MacAddress::from_host_id(30);
  ep.dst_mac = net::MacAddress::from_host_id(40);
  std::vector<std::uint8_t> payload;
  ByteWriter w(payload);
  net::VpgHeader vh;
  vh.vpg_id = 5;
  vh.payload_len = 16;
  vh.serialize(w);
  w.zeros(16);
  const auto frame = net::build_ipv4_frame(ep, net::IpProtocol::kVpg, payload);
  auto view = net::FrameView::parse(frame);
  ASSERT_TRUE(view && view->vpg);

  // A VPG frame must not be admitted by a cleartext allow rule: the device
  // cannot inspect the encrypted inner selectors.
  const auto result = rs.match(*view);
  EXPECT_EQ(result.action, RuleAction::kDeny);
}

TEST(RuleSet, CleartextFrameMatchesVpgRuleBySelectors) {
  RuleSet rs;
  Rule vpg;
  vpg.action = RuleAction::kVpg;
  vpg.vpg_id = 7;
  vpg.src_net = net::Ipv4Address(10, 0, 0, 30);
  vpg.src_prefix = 32;
  vpg.dst_net = net::Ipv4Address(10, 0, 0, 40);
  vpg.dst_prefix = 32;
  rs.add(vpg);

  // Outbound cleartext traffic between the members selects the VPG.
  const auto result = rs.match(tcp_tuple(30, 40, 5001));
  EXPECT_EQ(result.action, RuleAction::kVpg);
  EXPECT_EQ(result.vpg_id, 7u);
}

TEST(RuleSet, EmptySetUsesDefault) {
  RuleSet deny_default;
  EXPECT_EQ(deny_default.match(tcp_tuple(1, 2, 80)).action, RuleAction::kDeny);
  RuleSet allow_default({}, RuleAction::kAllow);
  EXPECT_EQ(allow_default.match(tcp_tuple(1, 2, 80)).action, RuleAction::kAllow);
  EXPECT_EQ(allow_default.match(tcp_tuple(1, 2, 80)).rules_traversed, 0);
}

TEST(RuleSet, ToStringListsDefaultAndRules) {
  RuleSet rs;
  rs.set_default_action(RuleAction::kDeny);
  rs.add(allow_to_port(80));
  const auto text = rs.to_string();
  EXPECT_NE(text.find("default deny"), std::string::npos);
  EXPECT_NE(text.find("allow tcp"), std::string::npos);
}

// Parameterized: traversal cost is linear in the padding depth.
class RuleSetDepth : public ::testing::TestWithParam<int> {};

TEST_P(RuleSetDepth, TraversalLinearInDepth) {
  const int depth = GetParam();
  RuleSet rs;
  for (int i = 0; i < depth - 1; ++i) rs.add(never_matches(i));
  rs.add(allow_to_port(80));
  EXPECT_EQ(rs.match(tcp_tuple(1, 2, 80)).rules_traversed, depth);
}

INSTANTIATE_TEST_SUITE_P(Depths, RuleSetDepth, ::testing::Values(1, 2, 8, 16, 32, 64));

}  // namespace
}  // namespace barb::firewall
