// Robustness of the attacker-facing firewall surfaces: the policy parser
// (fed from the distribution channel), the VPG decapsulator (fed from the
// wire), and the policy-protocol reader (fed from TCP).
#include <gtest/gtest.h>

#include <string>

#include "firewall/policy.h"
#include "firewall/policy_protocol.h"
#include "firewall/vpg.h"
#include "net/packet_builder.h"
#include "sim/random.h"

namespace barb::firewall {
namespace {

TEST(PolicyFuzz, RandomTextNeverCrashes) {
  sim::Random rng(99);
  const char alphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789./- #\n\t";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string text;
    const std::size_t len = rng.uniform(200);
    for (std::size_t i = 0; i < len; ++i) {
      text.push_back(alphabet[rng.uniform(sizeof(alphabet) - 1)]);
    }
    const auto result = parse_policy(text);
    // Must return a definitive verdict, never both or neither.
    EXPECT_NE(result.rule_set.has_value(), result.error.has_value());
  }
}

TEST(PolicyFuzz, MutatedValidPoliciesAlwaysTerminate) {
  sim::Random rng(100);
  const std::string base =
      "default deny\n"
      "allow tcp from 10.1.0.0/16 port 1024-65535 to 10.0.0.40 port 80\n"
      "vpg 7 between 10.0.0.30 and 10.0.0.40\n"
      "deny udp from any to any oneway\n";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string text = base;
    const int edits = 1 + static_cast<int>(rng.uniform(5));
    for (int i = 0; i < edits; ++i) {
      text[rng.uniform(text.size())] =
          static_cast<char>(32 + rng.uniform(95));
    }
    const auto result = parse_policy(text);
    if (result.ok()) {
      // Whatever parsed must serialize and re-parse to itself.
      const auto again = parse_policy(result.rule_set->to_string());
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(again.rule_set->to_string(), result.rule_set->to_string());
    } else {
      EXPECT_GT(result.error->line, 0);
    }
  }
}

TEST(VpgFuzz, RandomFramesNeverAuthenticate) {
  VpgTable table;
  table.install(7, std::vector<std::uint8_t>(32, 0x11));
  sim::Random rng(101);

  net::IpEndpoints ep;
  ep.src_ip = net::Ipv4Address(10, 0, 0, 30);
  ep.dst_ip = net::Ipv4Address(10, 0, 0, 40);
  ep.src_mac = net::MacAddress::from_host_id(30);
  ep.dst_mac = net::MacAddress::from_host_id(40);

  int accepted = 0;
  for (int trial = 0; trial < 1000; ++trial) {
    // A structurally plausible VPG frame with random sealed bytes.
    std::vector<std::uint8_t> payload;
    ByteWriter w(payload);
    net::VpgHeader vh;
    vh.vpg_id = 7;
    vh.seq = rng.next_u64();
    vh.orig_protocol = 17;
    const std::size_t sealed = 16 + rng.uniform(200);
    vh.payload_len = static_cast<std::uint16_t>(sealed);
    vh.serialize(w);
    for (std::size_t i = 0; i < sealed; ++i) {
      w.u8(static_cast<std::uint8_t>(rng.next_u64()));
    }
    auto frame = net::build_ipv4_frame(ep, net::IpProtocol::kVpg, payload);
    if (table.decapsulate(frame)) ++accepted;
  }
  EXPECT_EQ(accepted, 0);  // forging a Poly1305 tag should not happen
  EXPECT_EQ(table.stats().auth_failures, 1000u);
}

TEST(ProtocolFuzz, RandomStreamsNeverYieldMessages) {
  sim::Random rng(102);
  const std::vector<std::uint8_t> key(32, 0x5c);
  for (int trial = 0; trial < 500; ++trial) {
    PolicyMessageReader reader;
    std::vector<std::uint8_t> garbage(20 + rng.uniform(300));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next_u64());
    reader.append(garbage);
    EXPECT_FALSE(reader.next(key).has_value());
  }
}

TEST(ProtocolFuzz, BitFlippedMessagesNeverYieldForgedContent) {
  sim::Random rng(103);
  const std::vector<std::uint8_t> key(32, 0x5c);
  PolicyMessage msg{PolicyMsgType::kPolicyUpdate, 1,
                    "version 9\ndefault allow\n"};
  const auto bytes = encode_policy_message(msg, key);
  for (int trial = 0; trial < 2000; ++trial) {
    auto bad = bytes;
    const int flips = 1 + static_cast<int>(rng.uniform(6));
    for (int i = 0; i < flips; ++i) {
      bad[rng.uniform(bad.size())] ^= static_cast<std::uint8_t>(1u << rng.uniform(8));
    }
    if (bad == bytes) continue;  // flips cancelled out
    PolicyMessageReader reader;
    reader.append(bad);
    EXPECT_FALSE(reader.next(key).has_value());
  }
}

}  // namespace
}  // namespace barb::firewall
