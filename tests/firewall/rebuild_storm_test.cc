// Rebuild storm: repeated policy re-push against the compiled+flow-cache
// backend. The contract under test (ISSUE 10 satellite): after a
// generation bump no stale verdict is ever served, and the rebuild /
// invalidation / stale counters reconcile exactly.
#include <gtest/gtest.h>

#include "firewall/classifier/compiled_classifier.h"
#include "firewall/classifier/flow_cache.h"
#include "firewall/nic_firewall.h"
#include "firewall/policy.h"
#include "firewall/policygen/policy_corpus.h"
#include "link/link.h"
#include "net/packet_builder.h"
#include "sim/simulation.h"

namespace barb::firewall {
namespace {

TEST(RebuildStorm, NoStaleVerdictSurvivesGenerationBump) {
  // 24 policy pushes of generated corpora through one cache. After each
  // bump, every tuple cached under the previous policy must be refused, and
  // any hit must serve exactly the current policy's verdict.
  policygen::PolicyCorpusGenerator gen(123);
  FlowCache cache(FlowCacheConfig{256, 8});
  CompiledClassifier compiled;
  RuleSet current;
  std::vector<net::FiveTuple> cached_this_gen;

  for (int push = 0; push < 24; ++push) {
    policygen::CorpusSpec spec;
    spec.rules = 40 + push * 5;
    current = gen.generate(spec).rules;
    compiled.rebuild(current);
    cache.bump_generation();

    for (const auto& t : cached_this_gen) {
      MatchResult out;
      EXPECT_FALSE(cache.lookup(t, &out)) << "stale verdict served after push " << push;
    }
    cached_this_gen.clear();

    for (int i = 0; i < 400; ++i) {
      const net::FiveTuple t = gen.random_universe_tuple();
      const MatchResult want = current.match(t);
      // The compiled backend the cache fronts must agree with the linear walk
      // (three-way oracle in miniature) — a cached compiled verdict is only
      // safe if this holds.
      const auto cm = compiled.match(t);
      ASSERT_EQ(cm.result.action, want.action);
      ASSERT_EQ(cm.result.matched_index, want.matched_index);

      MatchResult out;
      if (cache.lookup(t, &out)) {
        EXPECT_EQ(out.action, want.action);
        EXPECT_EQ(out.matched_index, want.matched_index);
        EXPECT_EQ(out.rules_traversed, want.rules_traversed);
      } else {
        cache.insert(t, want);
        cached_this_gen.push_back(t);
      }
    }
  }

  const FlowCacheStats& st = cache.stats();
  EXPECT_EQ(st.invalidations, 24u);
  EXPECT_EQ(st.lookups, st.hits + st.misses);  // every lookup is one or the other
  EXPECT_LE(st.stale_hits, st.misses);         // stale hits are (counted) misses
  EXPECT_GT(st.stale_hits, 0u) << "storm never exercised the stale path";
  EXPECT_LE(cache.live_entries(), cache.capacity());
}

TEST(RebuildStorm, NicCountersReconcileAndVerdictsFlip) {
  // End-to-end through the NIC: alternate an allow-port-80 policy with a
  // deny-everything policy, pushing the same flow's frames through both.
  // ADF profile (no deny-flood latch) with the flow-cache backend.
  sim::Simulation sim(1);
  link::LinkConfig link_cfg;
  link_cfg.queue_bytes = 1024 * 1024;
  link::Link link(sim, link_cfg);
  FirewallNic nic(sim, net::MacAddress::from_host_id(40), "fw",
                  with_backend(adf_profile(), MatchBackend::kCompiledFlowCache));
  struct Collector : link::FrameSink {
    std::vector<net::Packet> frames;
    void deliver(net::Packet pkt) override { frames.push_back(std::move(pkt)); }
  } host_side, wire_side;
  nic.attach(link.b());
  nic.set_host_sink(&host_side);
  link.a().connect_sink(&wire_side);

  const auto install = [&nic](const char* policy) {
    auto parsed = parse_policy(policy);
    ASSERT_TRUE(parsed.ok());
    nic.install_rule_set(std::move(*parsed.rule_set));
  };
  const auto send_flow_frame = [&] {
    net::IpEndpoints ep;
    ep.src_ip = net::Ipv4Address(10, 0, 0, 1);
    ep.dst_ip = net::Ipv4Address(10, 0, 0, 40);
    ep.src_mac = net::MacAddress::from_host_id(1);
    ep.dst_mac = net::MacAddress::from_host_id(40);
    const std::vector<std::uint8_t> payload(10, 0x42);
    link.a().send(net::Packet{net::build_udp_frame(ep, 4000, 80, payload), sim.now(), 0});
  };

  std::uint64_t pushes = 0;
  std::size_t expected_delivered = 0;
  for (int round = 0; round < 25; ++round) {
    install("default deny\nallow udp from any to any port 80\n");
    ++pushes;
    for (int i = 0; i < 3; ++i) send_flow_frame();
    sim.run();
    expected_delivered += 3;
    ASSERT_EQ(host_side.frames.size(), expected_delivered)
        << "allowed frame lost after push " << pushes;

    install("default deny\n");
    ++pushes;
    for (int i = 0; i < 3; ++i) send_flow_frame();
    sim.run();
    // The cache held an "allow" verdict for this exact tuple one push ago:
    // a stale hit here would leak the frame to the host.
    ASSERT_EQ(host_side.frames.size(), expected_delivered)
        << "stale allow verdict leaked after push " << pushes;
  }

  EXPECT_EQ(nic.fw_stats().rx_denied, 75u);
  EXPECT_EQ(nic.match_stats().rebuilds, pushes);
  const FlowCacheStats& st = nic.flow_cache().stats();
  EXPECT_EQ(st.invalidations, pushes);  // one generation bump per push
  EXPECT_EQ(st.lookups, st.hits + st.misses);
  EXPECT_GT(st.stale_hits, 0u);
  EXPECT_LE(st.stale_hits, st.misses);
  // Same tuple re-pushed every round: two of each round's three frames hit.
  EXPECT_GE(st.hits, 100u);
}

}  // namespace
}  // namespace barb::firewall
