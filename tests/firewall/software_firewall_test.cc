#include "firewall/software_firewall.h"

#include <gtest/gtest.h>

#include "firewall/policy.h"
#include "net/packet_builder.h"
#include "sim/simulation.h"

namespace barb::firewall {
namespace {

net::Packet udp_packet(std::uint16_t dst_port) {
  net::IpEndpoints ep;
  ep.src_ip = net::Ipv4Address(10, 0, 0, 1);
  ep.dst_ip = net::Ipv4Address(10, 0, 0, 40);
  ep.src_mac = net::MacAddress::from_host_id(1);
  ep.dst_mac = net::MacAddress::from_host_id(40);
  const std::vector<std::uint8_t> payload(10, 0x42);
  return net::Packet{net::build_udp_frame(ep, 4000, dst_port, payload),
                     sim::TimePoint::origin(), 0};
}

TEST(SoftwareFirewall, DefaultAllowsEverything) {
  sim::Simulation sim;
  SoftwareFirewall fw(sim);
  int passed = 0;
  fw.filter(stack::FilterDirection::kInput, udp_packet(80),
            [&](net::Packet) { ++passed; });
  sim.run();
  EXPECT_EQ(passed, 1);
  EXPECT_EQ(fw.stats().allowed, 1u);
}

TEST(SoftwareFirewall, DeniedPacketNeverResumes) {
  sim::Simulation sim;
  SoftwareFirewall fw(sim);
  auto parsed = parse_policy("default deny\nallow udp from any to any port 80\n");
  ASSERT_TRUE(parsed.ok());
  fw.install_rule_set(std::move(*parsed.rule_set));

  int passed = 0;
  fw.filter(stack::FilterDirection::kInput, udp_packet(80),
            [&](net::Packet) { ++passed; });
  fw.filter(stack::FilterDirection::kInput, udp_packet(99),
            [&](net::Packet) { ++passed; });
  sim.run();
  EXPECT_EQ(passed, 1);
  EXPECT_EQ(fw.stats().allowed, 1u);
  EXPECT_EQ(fw.stats().denied, 1u);
}

TEST(SoftwareFirewall, ProcessingTakesHostCpuTime) {
  sim::Simulation sim;
  SoftwareFirewallConfig cfg;
  cfg.per_packet = sim::Duration::microseconds(2);
  cfg.per_rule = sim::Duration::nanoseconds(100);
  SoftwareFirewall fw(sim, cfg);
  auto parsed = parse_policy("default deny\nallow udp from any to any port 80\n");
  ASSERT_TRUE(parsed.ok());
  fw.install_rule_set(std::move(*parsed.rule_set));

  sim::TimePoint delivered;
  fw.filter(stack::FilterDirection::kInput, udp_packet(80),
            [&](net::Packet) { delivered = sim.now(); });
  sim.run();
  // 2 us + 1 rule * 100 ns.
  EXPECT_EQ(delivered.ns(), 2100);
}

TEST(SoftwareFirewall, QueueSerializesPackets) {
  sim::Simulation sim;
  SoftwareFirewallConfig cfg;
  cfg.per_packet = sim::Duration::microseconds(5);
  SoftwareFirewall fw(sim, cfg);

  std::vector<sim::TimePoint> deliveries;
  for (int i = 0; i < 3; ++i) {
    fw.filter(stack::FilterDirection::kInput, udp_packet(80),
              [&](net::Packet) { deliveries.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0].ns(), 5000);
  EXPECT_EQ(deliveries[1].ns(), 10000);
  EXPECT_EQ(deliveries[2].ns(), 15000);
}

TEST(SoftwareFirewall, BacklogOverflowDrops) {
  sim::Simulation sim;
  SoftwareFirewallConfig cfg;
  cfg.backlog = 10;
  SoftwareFirewall fw(sim, cfg);
  int passed = 0;
  for (int i = 0; i < 25; ++i) {
    fw.filter(stack::FilterDirection::kInput, udp_packet(80),
              [&](net::Packet) { ++passed; });
  }
  sim.run();
  // 1 in service + 10 queued... the first is popped only at completion, so
  // exactly `backlog` fit plus those admitted as the queue drains: here all
  // arrive at t=0, so 10 are queued and 15 drop.
  EXPECT_EQ(passed, 10);
  EXPECT_EQ(fw.stats().backlog_drops, 15u);
}

TEST(SoftwareFirewall, CapacityFarExceedsNicFirewall) {
  // The headline comparison: at 64 rules the host CPU sustains far beyond
  // the 100 Mbps maximum frame rate, while the NIC firewall caps out around
  // 6-7 kpps for full-size frames.
  SoftwareFirewallConfig cfg;
  const double per_packet_s =
      (cfg.per_packet + cfg.per_rule * 64).to_seconds();
  EXPECT_GT(1.0 / per_packet_s, 148810.0);
}

TEST(SoftwareFirewall, BothDirectionsShareTheCpu) {
  sim::Simulation sim;
  SoftwareFirewallConfig cfg;
  cfg.per_packet = sim::Duration::microseconds(10);
  SoftwareFirewall fw(sim, cfg);
  std::vector<int> order;
  fw.filter(stack::FilterDirection::kInput, udp_packet(80),
            [&](net::Packet) { order.push_back(1); });
  fw.filter(stack::FilterDirection::kOutput, udp_packet(80),
            [&](net::Packet) { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now().ns(), 20000);
}

}  // namespace
}  // namespace barb::firewall
