// End-to-end policy distribution: server and agents talking over the
// simulated network, exactly as the testbed uses them.
#include <gtest/gtest.h>

#include "core/testbed.h"
#include "firewall/policy_agent.h"
#include "firewall/policy_server.h"

namespace barb::firewall {
namespace {

using core::FirewallKind;
using core::Testbed;
using core::TestbedConfig;

TestbedConfig managed_config(FirewallKind kind, int depth = 4) {
  TestbedConfig cfg;
  cfg.firewall = kind;
  cfg.action_rule_depth = depth;
  cfg.use_policy_server = true;
  return cfg;
}

TEST(PolicyDistribution, AgentEnrollsAndReceivesPolicy) {
  sim::Simulation sim(1);
  Testbed tb(sim, managed_config(FirewallKind::kEfw, 4));
  tb.settle();

  const auto& agents = tb.policy_server()->agents();
  auto it = agents.find(tb.addresses().target);
  ASSERT_NE(it, agents.end());
  EXPECT_TRUE(it->second.connected);
  EXPECT_EQ(it->second.acked_version, 1u);

  // The NIC now enforces the generated 4-deep policy.
  ASSERT_NE(tb.target_firewall(), nullptr);
  EXPECT_EQ(tb.target_firewall()->rule_set().size(), 4u);
  EXPECT_EQ(tb.target_agent()->stats().policies_applied, 1u);
}

TEST(PolicyDistribution, PolicyUpdateReachesAgent) {
  sim::Simulation sim(1);
  Testbed tb(sim, managed_config(FirewallKind::kEfw));
  tb.settle();

  tb.policy_server()->set_policy(tb.addresses().target,
                                 "default deny\nallow tcp from any to any port 22\n");
  sim.run_for(sim::Duration::milliseconds(100));

  EXPECT_EQ(tb.target_firewall()->rule_set().size(), 1u);
  EXPECT_EQ(tb.target_firewall()->rule_set().rules()[0].dst_ports,
            (PortRange{22, 22}));
  EXPECT_EQ(tb.target_agent()->stats().last_version, 2u);
  EXPECT_EQ(tb.policy_server()->agents().at(tb.addresses().target).acked_version, 2u);
}

TEST(PolicyDistribution, HeartbeatsArrive) {
  sim::Simulation sim(1);
  Testbed tb(sim, managed_config(FirewallKind::kEfw));
  tb.settle();
  sim.run_for(sim::Duration::seconds(5));
  const auto& status = tb.policy_server()->agents().at(tb.addresses().target);
  EXPECT_GE(status.heartbeats, 4u);
  EXPECT_FALSE(status.reported_locked);
}

TEST(PolicyDistribution, LockupIsReportedAndRestartRecovers) {
  sim::Simulation sim(1);
  Testbed tb(sim, managed_config(FirewallKind::kEfw));
  tb.settle();

  // Latch the card directly (the flood experiments do this via traffic).
  auto* fw = tb.target_firewall();
  firewall::DeviceProfile profile = fw->profile();
  ASSERT_GT(profile.lockup_denies_per_sec, 0u);
  // Install deny-all and hammer the deny path from the attacker.
  tb.policy_server()->set_policy(tb.addresses().target, "default deny\n");
  sim.run_for(sim::Duration::milliseconds(200));

  for (int i = 0; i < 1500; ++i) {
    sim.schedule(sim::Duration::microseconds(400) * static_cast<std::int64_t>(i), [&tb] {
      auto* client = &tb.client();
      net::IpEndpoints ep;
      ep.src_ip = client->ip();
      ep.dst_ip = tb.addresses().target;
      ep.src_mac = client->mac();
      ep.dst_mac = tb.target().mac();
      const std::vector<std::uint8_t> payload(10, 0x42);
      client->nic().transmit(
          {net::build_udp_frame(ep, 1, 9, payload), tb.simulation().now(), 0});
    });
  }
  sim.run_for(sim::Duration::seconds(2));
  ASSERT_TRUE(fw->locked_up());

  // A locked card drops *everything*, including management traffic — the
  // server cannot reach the agent remotely (exactly the paper's situation:
  // "no solution was found" short of restarting the agent at the console).
  const auto heartbeat_at_lockup =
      tb.policy_server()->agents().at(tb.addresses().target).last_heartbeat;
  tb.policy_server()->command_restart(tb.addresses().target);
  sim.run_for(sim::Duration::seconds(3));
  EXPECT_TRUE(fw->locked_up());  // remote restart cannot get through
  EXPECT_EQ(tb.policy_server()
                ->agents()
                .at(tb.addresses().target)
                .last_heartbeat,
            heartbeat_at_lockup);  // heartbeats stopped

  // Console restart (the paper's manual recovery) restores everything.
  fw->restart();
  EXPECT_FALSE(fw->locked_up());
  sim.run_for(sim::Duration::seconds(5));
  EXPECT_GT(tb.policy_server()->agents().at(tb.addresses().target).last_heartbeat,
            heartbeat_at_lockup);
}

TEST(PolicyDistribution, VpgKeysDistributedToBothEnds) {
  sim::Simulation sim(1);
  Testbed tb(sim, managed_config(FirewallKind::kAdfVpg, 2));
  tb.settle();

  ASSERT_NE(tb.target_firewall(), nullptr);
  EXPECT_TRUE(tb.target_firewall()->vpg_table().has(core::kExperimentVpgId));
  // The client-side ADF also received the key (both tunnel ends).
  const auto& agents = tb.policy_server()->agents();
  EXPECT_TRUE(agents.contains(tb.addresses().client));
  EXPECT_TRUE(agents.contains(tb.addresses().target));
}

TEST(PolicyDistribution, ManagedVpgCarriesTraffic) {
  // The full stack through the managed path: policy + keys via the server,
  // then an actual TCP exchange through the tunnel.
  sim::Simulation sim(1);
  Testbed tb(sim, managed_config(FirewallKind::kAdfVpg, 1));
  tb.settle();

  std::string got;
  tb.target().tcp_listen(5001, [&](std::shared_ptr<stack::TcpConnection> c) {
    c->on_data = [&](std::span<const std::uint8_t> d) {
      got.assign(d.begin(), d.end());
    };
  });
  auto conn = tb.client().tcp_connect(tb.addresses().target, 5001);
  conn->on_connected = [&] {
    const std::string msg = "via vpg";
    conn->send({reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()});
  };
  sim.run_for(sim::Duration::seconds(2));
  EXPECT_EQ(got, "via vpg");
  EXPECT_GT(tb.target_firewall()->vpg_table().stats().decapsulated, 0u);
}

TEST(PolicyDistribution, AgentReconnectsAfterConnectionLoss) {
  sim::Simulation sim(1);
  Testbed tb(sim, managed_config(FirewallKind::kEfw));
  tb.settle();
  const auto first_applied = tb.target_agent()->stats().policies_applied;
  EXPECT_GE(first_applied, 1u);

  // Knock the agent's connection over by restarting the card (queued frames
  // die) — no; instead push a fresh policy after killing the server-side
  // session via an agent-side abort is not exposed. Exercise reconnect by
  // dropping all target traffic briefly: the TCP connection will RTO out.
  // Simplest deterministic path: restart the card, which flushes the
  // in-flight segments; the management TCP connection survives unless it
  // had traffic in flight, so instead verify the reconnect timer logic by
  // checking the agent stays connected across 10 idle seconds.
  sim.run_for(sim::Duration::seconds(10));
  EXPECT_TRUE(tb.target_agent()->connected());
  EXPECT_TRUE(tb.policy_server()->agents().at(tb.addresses().target).connected);
}

TEST(PolicyDistribution, MalformedPolicyIsRejectedAndOldOneKept) {
  sim::Simulation sim(1);
  Testbed tb(sim, managed_config(FirewallKind::kEfw, 4));
  tb.settle();
  const auto before = tb.target_firewall()->rule_set().to_string();

  // An operator typo reaches the agent; it must refuse to apply it and keep
  // enforcing the previous rule-set.
  tb.policy_server()->set_policy(tb.addresses().target,
                                 "default deny\nallow tcp frmo any to any\n");
  sim.run_for(sim::Duration::milliseconds(200));

  EXPECT_EQ(tb.target_agent()->stats().policy_errors, 1u);
  EXPECT_EQ(tb.target_firewall()->rule_set().to_string(), before);
  // The broken version is never acknowledged.
  EXPECT_EQ(tb.policy_server()->agents().at(tb.addresses().target).acked_version, 1u);

  // A corrected push recovers.
  tb.policy_server()->set_policy(tb.addresses().target,
                                 "default deny\nallow tcp from any to any\n");
  sim.run_for(sim::Duration::milliseconds(200));
  EXPECT_EQ(tb.policy_server()->agents().at(tb.addresses().target).acked_version, 3u);
}

TEST(PolicyDistribution, ForgedPolicyMessageIsIgnored) {
  sim::Simulation sim(1);
  Testbed tb(sim, managed_config(FirewallKind::kEfw, 4));
  tb.settle();
  ASSERT_EQ(tb.target_firewall()->rule_set().size(), 4u);

  // The attacker spoofs a policy-server message with the wrong key: the
  // agent must drop the stream, not apply the policy.
  PolicyMessage forged;
  forged.type = PolicyMsgType::kPolicyUpdate;
  forged.seq = 99;
  forged.body = "version 99\ndefault allow\n";
  const std::vector<std::uint8_t> attacker_key(32, 0xaa);
  const auto bytes = encode_policy_message(forged, attacker_key);

  // Deliver it straight into the agent's TCP connection by spoofing from
  // the server IP is not feasible without hijacking TCP state; instead
  // verify at the protocol layer that the agent-side reader rejects it.
  PolicyMessageReader reader;
  reader.append(bytes);
  const std::vector<std::uint8_t> real_key(32, 0x5c);
  EXPECT_FALSE(reader.next(real_key).has_value());
  EXPECT_TRUE(reader.corrupted());
  // And the installed policy is untouched.
  EXPECT_EQ(tb.target_firewall()->rule_set().size(), 4u);
}

}  // namespace
}  // namespace barb::firewall
