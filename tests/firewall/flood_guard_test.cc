#include "firewall/flood_guard.h"

#include <gtest/gtest.h>

#include "core/experiments.h"
#include "net/packet_builder.h"

namespace barb::firewall {
namespace {

net::FrameView view_from(std::vector<std::uint8_t>& storage, net::Ipv4Address src) {
  net::IpEndpoints ep;
  ep.src_ip = src;
  ep.dst_ip = net::Ipv4Address(10, 0, 0, 40);
  ep.src_mac = net::MacAddress::from_host_id(1);
  ep.dst_mac = net::MacAddress::from_host_id(40);
  const std::vector<std::uint8_t> payload(10, 0x42);
  storage = net::build_udp_frame(ep, 1000, 7777, payload);
  return *net::FrameView::parse(storage);
}

FloodGuardConfig small_config() {
  FloodGuardConfig cfg;
  cfg.enabled = true;
  cfg.per_source_rate = 100;
  cfg.per_source_burst = 10;
  cfg.aggregate_rate = 1000;
  cfg.aggregate_burst = 50;
  cfg.max_sources = 8;
  return cfg;
}

TEST(FloodGuard, DisabledAdmitsEverything) {
  FloodGuard guard{FloodGuardConfig{}};
  std::vector<std::uint8_t> storage;
  const auto v = view_from(storage, net::Ipv4Address(10, 0, 0, 1));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(guard.admit(v, sim::TimePoint::origin()));
  }
  EXPECT_EQ(guard.stats().screened, 0u);
}

TEST(FloodGuard, PerSourceBurstThenRate) {
  FloodGuard guard(small_config());
  std::vector<std::uint8_t> storage;
  const auto v = view_from(storage, net::Ipv4Address(10, 0, 0, 1));
  const auto t0 = sim::TimePoint::origin() + sim::Duration::seconds(5);

  int admitted = 0;
  for (int i = 0; i < 50; ++i) {
    if (guard.admit(v, t0)) ++admitted;
  }
  EXPECT_EQ(admitted, 10);  // burst only at a single instant
  EXPECT_EQ(guard.stats().per_source_drops, 40u);

  // At 100/s, one second later the source has a fresh burst's worth.
  admitted = 0;
  const auto t1 = t0 + sim::Duration::seconds(1);
  for (int i = 0; i < 50; ++i) {
    if (guard.admit(v, t1)) ++admitted;
  }
  EXPECT_EQ(admitted, 10);
}

TEST(FloodGuard, IndependentSourcesIndependentBudgets) {
  FloodGuard guard(small_config());
  const auto t0 = sim::TimePoint::origin() + sim::Duration::seconds(5);
  for (int s = 1; s <= 4; ++s) {
    std::vector<std::uint8_t> storage;
    const auto v = view_from(storage, net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(s)));
    int admitted = 0;
    for (int i = 0; i < 20; ++i) {
      if (guard.admit(v, t0)) ++admitted;
    }
    EXPECT_EQ(admitted, 10) << "source " << s;
  }
}

TEST(FloodGuard, AggregateCapBindsAcrossSources) {
  auto cfg = small_config();
  cfg.per_source_rate = 1e6;  // per-source effectively off
  cfg.per_source_burst = 1e6;
  cfg.aggregate_rate = 100;
  cfg.aggregate_burst = 20;
  cfg.max_sources = 100000;
  FloodGuard guard(cfg);
  const auto t0 = sim::TimePoint::origin() + sim::Duration::seconds(5);

  int admitted = 0;
  for (int s = 0; s < 1000; ++s) {
    std::vector<std::uint8_t> storage;
    const auto v = view_from(
        storage, net::Ipv4Address(10, 1, static_cast<std::uint8_t>(s / 250),
                                  static_cast<std::uint8_t>(s % 250 + 1)));
    if (guard.admit(v, t0)) ++admitted;
  }
  EXPECT_EQ(admitted, 20);
  // Everything else died at the new-source or aggregate gate.
  EXPECT_EQ(guard.stats().aggregate_drops + guard.stats().new_source_drops, 980u);
}

TEST(FloodGuard, SourceTableIsBounded) {
  FloodGuard guard(small_config());  // max 8 sources
  const auto t0 = sim::TimePoint::origin() + sim::Duration::seconds(5);
  for (int s = 0; s < 100; ++s) {
    std::vector<std::uint8_t> storage;
    const auto v = view_from(
        storage, net::Ipv4Address(10, 2, 0, static_cast<std::uint8_t>(s % 250 + 1)));
    guard.admit(v, t0);
  }
  EXPECT_LE(guard.tracked_sources(), 8u);
  EXPECT_GT(guard.stats().evictions, 0u);
}

TEST(FloodGuard, NewSourceDoesNotInheritIdleAccrual) {
  // A source first seen late in the simulation gets only its burst, not
  // `rate * elapsed` tokens.
  FloodGuard guard(small_config());
  const auto late = sim::TimePoint::origin() + sim::Duration::seconds(1000);
  std::vector<std::uint8_t> storage;
  const auto v = view_from(storage, net::Ipv4Address(10, 0, 0, 9));
  int admitted = 0;
  for (int i = 0; i < 100; ++i) {
    if (guard.admit(v, late)) ++admitted;
  }
  EXPECT_EQ(admitted, 10);
}

// Integration: the guarded EFW survives the flood that kills the stock card.
TEST(FloodGuardIntegration, GuardedEfwSurvivesSingleSourceFlood) {
  core::MeasurementOptions opt;
  opt.window = sim::Duration::milliseconds(600);
  opt.repetitions = 1;
  core::FloodSpec flood;
  flood.rate_pps = 45000;

  core::TestbedConfig stock;
  stock.firewall = core::FirewallKind::kEfw;
  stock.action_rule_depth = 64;
  const double without =
      core::measure_bandwidth_under_flood(stock, flood, opt).mean();

  core::TestbedConfig guarded = stock;
  guarded.flood_guard = FloodGuardConfig{};
  const double with = core::measure_bandwidth_under_flood(guarded, flood, opt).mean();

  EXPECT_LT(without, 5.0);
  EXPECT_GT(with, 30.0);
}

TEST(FloodGuardIntegration, GuardIsFreeWithoutAttack) {
  core::MeasurementOptions opt;
  opt.window = sim::Duration::milliseconds(600);
  opt.repetitions = 1;
  core::TestbedConfig cfg;
  cfg.firewall = core::FirewallKind::kEfw;
  cfg.action_rule_depth = 64;
  const double base = core::measure_available_bandwidth(cfg, opt).mean();
  cfg.flood_guard = FloodGuardConfig{};
  const double guarded = core::measure_available_bandwidth(cfg, opt).mean();
  EXPECT_GT(guarded, base * 0.93);
}

}  // namespace
}  // namespace barb::firewall
