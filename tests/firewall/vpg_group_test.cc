// Multi-member VPGs: a group of three ADF-protected hosts sharing one key,
// provisioned through the policy server (VPGs are groups, not just pairs).
#include <gtest/gtest.h>

#include "firewall/nic_firewall.h"
#include "firewall/policy_agent.h"
#include "firewall/policy_server.h"
#include "link/switch.h"
#include "stack/udp.h"

namespace barb::firewall {
namespace {

const std::vector<std::uint8_t> kKey(32, 0x5c);

struct GroupMember {
  std::unique_ptr<stack::Host> host;
  FirewallNic* nic = nullptr;
  std::unique_ptr<PolicyAgent> agent;
};

struct GroupFixture {
  sim::Simulation sim{31};
  link::Switch sw{sim, "sw"};
  std::vector<std::unique_ptr<link::Link>> links;
  std::unique_ptr<stack::Host> policy_host;
  std::unique_ptr<PolicyServer> server;
  std::vector<GroupMember> members;

  GroupFixture() {
    auto attach = [this](stack::Host& host) {
      links.push_back(std::make_unique<link::Link>(sim));
      host.nic().attach(links.back()->a());
      sw.attach(links.back()->b());
    };

    policy_host = std::make_unique<stack::Host>(
        sim, "policy", net::Ipv4Address(10, 0, 1, 10),
        std::make_unique<stack::StandardNic>(sim, net::MacAddress::from_host_id(10),
                                             "policy/nic"));
    attach(*policy_host);
    server = std::make_unique<PolicyServer>(*policy_host, kKey);
    server->start();

    stack::HostConfig vpg_cfg;
    vpg_cfg.mss = 1460 - 32;
    for (int i = 0; i < 3; ++i) {
      GroupMember m;
      const auto id = static_cast<std::uint32_t>(30 + i);
      auto nic = std::make_unique<FirewallNic>(sim, net::MacAddress::from_host_id(id),
                                               "adf" + std::to_string(i),
                                               adf_profile());
      m.nic = nic.get();
      m.nic->set_management_peer(policy_host->ip());
      m.host = std::make_unique<stack::Host>(
          sim, "m" + std::to_string(i),
          net::Ipv4Address(10, 0, 1, static_cast<std::uint8_t>(30 + i)),
          std::move(nic), vpg_cfg);
      attach(*m.host);
      members.push_back(std::move(m));
    }

    // Full static ARP mesh.
    std::vector<stack::Host*> all{policy_host.get()};
    for (auto& m : members) all.push_back(m.host.get());
    for (auto* h1 : all) {
      for (auto* h2 : all) {
        if (h1 != h2) h1->arp().add(h2->ip(), h2->mac());
      }
    }

    // One group policy for every member: tunnel all intra-subnet traffic.
    std::vector<net::Ipv4Address> ips;
    for (auto& m : members) {
      ips.push_back(m.host->ip());
      server->set_policy(m.host->ip(),
                         "default deny\n"
                         "vpg 9 between 10.0.1.0/24 and 10.0.1.0/24\n");
      m.agent = std::make_unique<PolicyAgent>(*m.host, *m.nic, policy_host->ip(), kKey);
      m.agent->start();
    }
    server->create_vpg(9, ips);
    sim.run_for(sim::Duration::milliseconds(500));
  }
};

TEST(VpgGroup, AllMembersReceiveTheGroupKey) {
  GroupFixture f;
  for (auto& m : f.members) {
    EXPECT_TRUE(m.nic->vpg_table().has(9)) << m.host->name();
  }
}

TEST(VpgGroup, EveryPairCommunicatesThroughTheTunnel) {
  GroupFixture f;

  // Every member echoes on UDP 7.
  for (auto& m : f.members) {
    auto* echo = m.host->udp_open(7);
    echo->set_receiver([echo](net::Ipv4Address src, std::uint16_t port,
                              std::span<const std::uint8_t> data) {
      std::vector<std::uint8_t> reply(data.begin(), data.end());
      echo->send_to(src, port, reply);
    });
  }

  int replies = 0;
  std::vector<stack::UdpSocket*> sockets;
  for (std::size_t i = 0; i < f.members.size(); ++i) {
    auto* sock = f.members[i].host->udp_open(0);
    sock->set_receiver([&replies](net::Ipv4Address, std::uint16_t,
                                  std::span<const std::uint8_t>) { ++replies; });
    sockets.push_back(sock);
    for (std::size_t j = 0; j < f.members.size(); ++j) {
      if (i == j) continue;
      const std::vector<std::uint8_t> ping{static_cast<std::uint8_t>(i),
                                           static_cast<std::uint8_t>(j)};
      EXPECT_TRUE(sockets[i]->send_to(f.members[j].host->ip(), 7, ping));
    }
  }
  f.sim.run_for(sim::Duration::seconds(1));

  EXPECT_EQ(replies, 6);  // 3 members x 2 peers each
  for (auto& m : f.members) {
    EXPECT_GT(m.nic->vpg_table().stats().encapsulated, 0u) << m.host->name();
    EXPECT_GT(m.nic->vpg_table().stats().decapsulated, 0u) << m.host->name();
  }
}

TEST(VpgGroup, NonMemberCannotJoinTheConversation) {
  GroupFixture f;
  // A fourth host with no ADF (and no key) on the same switch.
  auto outsider = std::make_unique<stack::Host>(
      f.sim, "outsider", net::Ipv4Address(10, 0, 1, 99),
      std::make_unique<stack::StandardNic>(f.sim, net::MacAddress::from_host_id(99),
                                           "outsider/nic"));
  f.links.push_back(std::make_unique<link::Link>(f.sim));
  outsider->nic().attach(f.links.back()->a());
  f.sw.attach(f.links.back()->b());
  outsider->arp().add(f.members[0].host->ip(), f.members[0].host->mac());

  int received = 0;
  auto* listener = f.members[0].host->udp_open(7);
  listener->set_receiver([&received](net::Ipv4Address, std::uint16_t,
                                     std::span<const std::uint8_t>) { ++received; });

  // The outsider's cleartext datagram matches the VPG selectors at the
  // member's ADF and dies there (it is not tunneled).
  auto* sock = outsider->udp_open(0);
  const std::vector<std::uint8_t> probe{1, 2, 3};
  sock->send_to(f.members[0].host->ip(), 7, probe);
  f.sim.run_for(sim::Duration::milliseconds(200));

  EXPECT_EQ(received, 0);
  EXPECT_GT(f.members[0].nic->fw_stats().vpg_drops, 0u);
}

TEST(VpgGroup, RekeyingTheGroupKeepsItWorking) {
  GroupFixture f;
  std::vector<net::Ipv4Address> ips;
  for (auto& m : f.members) ips.push_back(m.host->ip());
  f.server->create_vpg(9, ips);  // fresh key for everyone
  f.sim.run_for(sim::Duration::milliseconds(500));

  int received = 0;
  auto* listener = f.members[1].host->udp_open(7);
  listener->set_receiver([&received](net::Ipv4Address, std::uint16_t,
                                     std::span<const std::uint8_t>) { ++received; });
  auto* sock = f.members[0].host->udp_open(0);
  const std::vector<std::uint8_t> data{9};
  sock->send_to(f.members[1].host->ip(), 7, data);
  f.sim.run_for(sim::Duration::milliseconds(200));
  EXPECT_EQ(received, 1);
}

}  // namespace
}  // namespace barb::firewall
