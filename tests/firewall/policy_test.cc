#include "firewall/policy.h"

#include <gtest/gtest.h>

namespace barb::firewall {
namespace {

TEST(PolicyParser, MinimalAllowAll) {
  auto result = parse_policy("default deny\nallow any from any to any\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.rule_set->size(), 1u);
  EXPECT_EQ(result.rule_set->default_action(), RuleAction::kDeny);
  EXPECT_EQ(result.rule_set->rules()[0].action, RuleAction::kAllow);
  EXPECT_EQ(result.rule_set->rules()[0].protocol, 0);
}

TEST(PolicyParser, FullSelectorRule) {
  auto result = parse_policy(
      "allow tcp from 10.1.0.0/16 port 1024-65535 to 10.0.0.40 port 80\n");
  ASSERT_TRUE(result.ok());
  const Rule& r = result.rule_set->rules()[0];
  EXPECT_EQ(r.protocol, 6);
  EXPECT_EQ(r.src_net, net::Ipv4Address(10, 1, 0, 0));
  EXPECT_EQ(r.src_prefix, 16);
  EXPECT_EQ(r.src_ports, (PortRange{1024, 65535}));
  EXPECT_EQ(r.dst_net, net::Ipv4Address(10, 0, 0, 40));
  EXPECT_EQ(r.dst_prefix, 32);
  EXPECT_EQ(r.dst_ports, (PortRange{80, 80}));
  EXPECT_TRUE(r.bidirectional);
}

TEST(PolicyParser, OnewayModifier) {
  auto result = parse_policy("deny udp from 10.0.0.20 to any oneway\n");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.rule_set->rules()[0].bidirectional);
  EXPECT_EQ(result.rule_set->rules()[0].protocol, 17);
}

TEST(PolicyParser, VpgRule) {
  auto result = parse_policy("vpg 7 between 10.0.0.30 and 10.0.0.40 port 5001\n");
  ASSERT_TRUE(result.ok());
  const Rule& r = result.rule_set->rules()[0];
  EXPECT_EQ(r.action, RuleAction::kVpg);
  EXPECT_EQ(r.vpg_id, 7u);
  EXPECT_EQ(r.src_net, net::Ipv4Address(10, 0, 0, 30));
  EXPECT_EQ(r.dst_net, net::Ipv4Address(10, 0, 0, 40));
  EXPECT_EQ(r.dst_ports, (PortRange{5001, 5001}));
}

TEST(PolicyParser, CommentsAndBlankLines) {
  auto result = parse_policy(
      "# header comment\n"
      "\n"
      "default allow   # trailing comment\n"
      "   \t  \n"
      "deny icmp from any to any  # ping is rude\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.rule_set->default_action(), RuleAction::kAllow);
  EXPECT_EQ(result.rule_set->size(), 1u);
  EXPECT_EQ(result.rule_set->rules()[0].protocol, 1);
}

TEST(PolicyParser, EmptyPolicyIsValid) {
  auto result = parse_policy("");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.rule_set->empty());
}

TEST(PolicyParser, RuleOrderPreserved) {
  auto result = parse_policy(
      "deny tcp from 192.168.0.1 to any\n"
      "allow any from any to any\n"
      "deny udp from any to any\n");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.rule_set->size(), 3u);
  EXPECT_EQ(result.rule_set->rules()[0].action, RuleAction::kDeny);
  EXPECT_EQ(result.rule_set->rules()[1].action, RuleAction::kAllow);
  EXPECT_EQ(result.rule_set->rules()[2].protocol, 17);
}

struct BadPolicyCase {
  const char* text;
  int error_line;
};

class PolicyParserErrors : public ::testing::TestWithParam<BadPolicyCase> {};

TEST_P(PolicyParserErrors, RejectsWithLineNumber) {
  auto result = parse_policy(GetParam().text);
  ASSERT_FALSE(result.ok());
  ASSERT_TRUE(result.error.has_value());
  EXPECT_EQ(result.error->line, GetParam().error_line);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PolicyParserErrors,
    ::testing::Values(
        BadPolicyCase{"frobnicate everything\n", 1},
        BadPolicyCase{"default maybe\n", 1},
        BadPolicyCase{"default\n", 1},
        BadPolicyCase{"allow tcp to any\n", 1},                     // missing from
        BadPolicyCase{"allow quic from any to any\n", 1},           // bad protocol
        BadPolicyCase{"allow tcp from 10.0.0.300 to any\n", 1},     // bad ip
        BadPolicyCase{"allow tcp from 10.0.0.0/40 to any\n", 1},    // bad prefix
        BadPolicyCase{"allow tcp from any port 99999 to any\n", 1},  // bad port
        BadPolicyCase{"allow tcp from any port 90-80 to any\n", 1},  // inverted
        BadPolicyCase{"allow tcp from any port 0 to any\n", 1},      // port 0
        BadPolicyCase{"allow tcp from any to any extra\n", 1},       // trailing
        BadPolicyCase{"vpg 0 between 10.0.0.1 and 10.0.0.2\n", 1},   // id 0
        BadPolicyCase{"vpg 1 between 10.0.0.1\n", 1},                // missing and
        BadPolicyCase{"default deny\nallow tcp frm any to any\n", 2}));

TEST(PolicyRoundTrip, SerializeParseIsIdentity) {
  const char* source =
      "default deny\n"
      "deny tcp from 192.168.0.1 to 192.168.250.1\n"
      "allow tcp from 10.1.0.0/16 port 1024-65535 to 10.0.0.40 port 80\n"
      "deny udp from 10.0.0.20 to any oneway\n"
      "vpg 7 between 10.0.0.30 and 10.0.0.40 port 5001\n"
      "allow any from any to any\n";
  auto first = parse_policy(source);
  ASSERT_TRUE(first.ok());
  const std::string serialized = first.rule_set->to_string();
  auto second = parse_policy(serialized);
  ASSERT_TRUE(second.ok()) << serialized;

  ASSERT_EQ(first.rule_set->size(), second.rule_set->size());
  EXPECT_EQ(first.rule_set->default_action(), second.rule_set->default_action());
  for (std::size_t i = 0; i < first.rule_set->size(); ++i) {
    EXPECT_EQ(first.rule_set->rules()[i].to_string(),
              second.rule_set->rules()[i].to_string())
        << "rule " << i;
  }
  // Serialization is a fixed point after one round.
  EXPECT_EQ(second.rule_set->to_string(), serialized);
}

}  // namespace
}  // namespace barb::firewall
