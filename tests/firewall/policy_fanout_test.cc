// Fleet fan-out: one PolicyServer distributing to many agents on a fabric —
// set_policy_all semantics, convergence counters, distribution stats, and
// the opt-in "policy.*" metrics.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/topology.h"
#include "firewall/policy_agent.h"
#include "firewall/policy_server.h"
#include "telemetry/registry.h"

namespace barb::firewall {
namespace {

constexpr int kServerHost = 0;

struct Fleet {
  sim::Simulation sim;
  std::unique_ptr<core::Fabric> fabric;
  std::vector<std::uint8_t> key;
  std::unique_ptr<PolicyServer> server;
  std::vector<net::Ipv4Address> agent_ips;
  std::vector<std::unique_ptr<PolicyAgent>> agents;

  explicit Fleet(int num_agents) : sim(1), key(32, 0x5c) {
    core::LeafSpineSpec spec;
    spec.hosts = num_agents + 1;  // host 0 = server (plain NIC)
    spec.hosts_per_leaf = 8;
    spec.spines = 2;
    spec.nic_for = [](int index) {
      core::NicSpec nic;
      nic.kind = index == kServerHost ? core::FirewallKind::kNone
                                      : core::FirewallKind::kEfw;
      return nic;
    };
    fabric = core::build_leaf_spine(sim, spec);

    server = std::make_unique<PolicyServer>(fabric->host(kServerHost), key);
    server->start();
    for (int i = 1; i <= num_agents; ++i) {
      agent_ips.push_back(fabric->host(i).ip());
      agents.push_back(std::make_unique<PolicyAgent>(
          fabric->host(i), *fabric->firewall(i),
          fabric->host(kServerHost).ip(), key));
      agents.back()->start_after(sim::Duration::milliseconds(1) +
                                 sim::Duration::microseconds(137) * (i - 1));
    }
  }
};

TEST(PolicyFanout, SetPolicyAllReachesEveryAgent) {
  Fleet fleet(12);
  fleet.server->set_policy_all(fleet.agent_ips,
                               "default deny\nallow tcp from any to any\n");
  fleet.sim.run_for(sim::Duration::seconds(2));

  EXPECT_EQ(fleet.server->count_connected(), 12u);
  EXPECT_EQ(fleet.server->count_acked_at_least(1), 12u);
  for (const auto& agent : fleet.agents) {
    EXPECT_TRUE(agent->connected());
    EXPECT_EQ(agent->stats().policies_applied, 1u);
    EXPECT_EQ(agent->stats().last_version, 1u);
  }
  // Every NIC in the fleet now enforces the pushed rule-set.
  for (int i = 1; i <= 12; ++i) {
    ASSERT_NE(fleet.fabric->firewall(i), nullptr);
    EXPECT_EQ(fleet.fabric->firewall(i)->rule_set().size(), 1u);
  }
}

TEST(PolicyFanout, RePushAdvancesEveryAgentVersion) {
  Fleet fleet(8);
  fleet.server->set_policy_all(fleet.agent_ips, "default allow\n");
  fleet.sim.run_for(sim::Duration::seconds(2));
  ASSERT_EQ(fleet.server->count_acked_at_least(1), 8u);
  EXPECT_EQ(fleet.server->count_acked_at_least(2), 0u);

  // A fleet-wide re-push: every connected session gets a synchronous push.
  // The new policy must keep management TCP open — a bare "default deny"
  // would firewall the agent's own ack path (the paper's self-cutoff).
  const std::size_t pushed = fleet.server->set_policy_all(
      fleet.agent_ips,
      "default deny\nallow tcp from any to any\n"
      "allow udp from any to any port 53\n");
  EXPECT_EQ(pushed, 8u);
  fleet.sim.run_for(sim::Duration::seconds(2));
  EXPECT_EQ(fleet.server->count_acked_at_least(2), 8u);
  for (const auto& agent : fleet.agents) {
    EXPECT_EQ(agent->stats().policies_applied, 2u);
  }
}

TEST(PolicyFanout, ConvergenceCounterIsMonotonicPerVersion) {
  Fleet fleet(8);
  fleet.server->set_policy_all(fleet.agent_ips, "default allow\n");
  // count_acked_at_least(v) must never exceed the count for v-1.
  std::size_t last_v1 = 0;
  fleet.sim.schedule_every(sim::Duration::milliseconds(10), [&] {
    const auto v1 = fleet.server->count_acked_at_least(1);
    ASSERT_GE(v1, last_v1);  // monotonic while pushes only move forward
    ASSERT_LE(fleet.server->count_acked_at_least(2), v1);
    last_v1 = v1;
  });
  fleet.sim.run_until(sim::TimePoint::origin() + sim::Duration::seconds(2));
  EXPECT_EQ(last_v1, 8u);
}

TEST(PolicyFanout, DistributionStatsAccumulate) {
  Fleet fleet(6);
  fleet.server->set_policy_all(fleet.agent_ips, "default allow\n");
  fleet.sim.run_for(sim::Duration::seconds(5));

  const PolicyServerStats& stats = fleet.server->stats();
  EXPECT_EQ(stats.hellos, 6u);
  EXPECT_EQ(stats.pushes, 6u);  // one push per enrollment
  EXPECT_GT(stats.push_bytes, 0u);
  EXPECT_EQ(stats.acks, 6u);
  // ~4 heartbeat intervals elapsed for each of the 6 agents.
  EXPECT_GE(stats.heartbeats, 6u * 3u);
  EXPECT_EQ(stats.corrupted_streams, 0u);

  fleet.server->set_policy_all(fleet.agent_ips,
                               "default deny\nallow tcp from any to any\n");
  fleet.sim.run_for(sim::Duration::seconds(1));
  EXPECT_EQ(fleet.server->stats().pushes, 12u);
  EXPECT_EQ(fleet.server->stats().acks, 12u);
}

TEST(PolicyFanout, MetricsExposeDistributionState) {
  Fleet fleet(5);
  telemetry::MetricRegistry registry;
  fleet.server->register_metrics(registry, "host=server");
  EXPECT_EQ(registry.value("policy.connected", "host=server"), 0.0);

  fleet.server->set_policy_all(fleet.agent_ips, "default allow\n");
  fleet.sim.run_for(sim::Duration::seconds(2));

  EXPECT_EQ(registry.value("policy.connected", "host=server"), 5.0);
  EXPECT_EQ(registry.value("policy.pushes", "host=server"), 5.0);
  EXPECT_EQ(registry.value("policy.acks", "host=server"), 5.0);
  EXPECT_GT(registry.value("policy.push_bytes", "host=server"), 0.0);
}

TEST(PolicyFanout, StaggeredStartDelaysFirstConnect) {
  Fleet fleet(3);
  // start_after was used with 1ms base stagger: nobody connects at t=0.
  EXPECT_EQ(fleet.server->count_connected(), 0u);
  fleet.sim.run_for(sim::Duration::microseconds(500));
  EXPECT_EQ(fleet.server->count_connected(), 0u);
  fleet.sim.run_for(sim::Duration::seconds(1));
  EXPECT_EQ(fleet.server->count_connected(), 3u);
}

}  // namespace
}  // namespace barb::firewall
