#include "firewall/policygen/rule_analyzer.h"

#include <gtest/gtest.h>

#include "firewall/policy.h"

namespace barb::firewall::policygen {
namespace {

// Hand-built rule-sets with known findings, written in the policy DSL so the
// cases double as documentation of what each error class looks like.
RuleSet parse(const char* text) {
  auto parsed = parse_policy(text);
  EXPECT_TRUE(parsed.ok()) << (parsed.error ? parsed.error->message : "");
  return parsed.ok() ? std::move(*parsed.rule_set) : RuleSet{};
}

TEST(RuleAnalyzer, EmptyAndDisjointRuleSetsAreClean) {
  EXPECT_EQ(RuleSetAnalyzer::analyze(RuleSet{}).findings.size(), 0u);

  const auto report = RuleSetAnalyzer::analyze(parse(
      "default deny\n"
      "allow tcp from 10.1.0.0/16 to 10.0.0.5 port 80\n"
      "allow tcp from 10.2.0.0/16 to 10.0.0.6 port 443\n"
      "deny udp from any to 192.168.1.0/24 port 445\n"));
  EXPECT_EQ(report.findings.size(), 0u);
  EXPECT_EQ(report.error_count(), 0u);
  EXPECT_EQ(report.rules, 3u);
  // Two bidirectional entries per rule.
  EXPECT_EQ(report.entries, 6u);
}

TEST(RuleAnalyzer, ShadowedRuleDetected) {
  // Rule 1 can never fire: rule 0 already denies the whole region, with the
  // opposite action — the classic misconfiguration.
  const auto report = RuleSetAnalyzer::analyze(parse(
      "default deny\n"
      "deny tcp from any to 10.0.0.0/24 port 80\n"
      "allow tcp from 10.1.0.0/16 to 10.0.0.5 port 80\n"));
  EXPECT_TRUE(report.has(FindingKind::kShadowed, 1, 0));
  EXPECT_EQ(report.count(FindingKind::kShadowed), 1u);
  EXPECT_EQ(report.count(FindingKind::kRedundant), 0u);
  EXPECT_EQ(report.count(FindingKind::kConflict), 0u);
}

TEST(RuleAnalyzer, RedundantRuleDetected) {
  const auto report = RuleSetAnalyzer::analyze(parse(
      "default deny\n"
      "allow tcp from any to 10.0.0.0/24 port 80\n"
      "allow tcp from 10.1.0.0/16 to 10.0.0.5 port 80\n"));
  EXPECT_TRUE(report.has(FindingKind::kRedundant, 1, 0));
  EXPECT_EQ(report.count(FindingKind::kShadowed), 0u);
}

TEST(RuleAnalyzer, ObsoleteTemporaryRuleDetected) {
  // Rule 0 was a "temporary" opening, later subsumed by the broader rule 1:
  // removing rule 0 changes no verdict.
  const auto report = RuleSetAnalyzer::analyze(parse(
      "default deny\n"
      "allow tcp from 10.1.2.0/24 to 10.0.0.5 port 80\n"
      "allow tcp from 10.1.0.0/16 to 10.0.0.5 port 80\n"));
  EXPECT_TRUE(report.has(FindingKind::kObsolete, 0, 1));
  EXPECT_EQ(report.error_count(), 1u);
}

TEST(RuleAnalyzer, InterveningDenyBlocksObsolete) {
  // Same shape, but a deny intersecting rule 0 sits between it and the
  // broad allow: rule 0 is load-bearing (it wins before the deny does), so
  // it must NOT be flagged. The equal-region deny IS shadowed by rule 0.
  const auto report = RuleSetAnalyzer::analyze(parse(
      "default deny\n"
      "allow tcp from 10.1.2.0/24 to 10.0.0.5 port 80\n"
      "deny tcp from 10.1.2.0/24 to 10.0.0.5 port 80\n"
      "allow tcp from 10.1.0.0/16 to 10.0.0.5 port 80\n"));
  EXPECT_FALSE(report.has(FindingKind::kObsolete, 0));
  EXPECT_TRUE(report.has(FindingKind::kShadowed, 1, 0));
}

TEST(RuleAnalyzer, CrossingRulesReportConflictWarningOnly) {
  // Narrower source vs narrower destination port: neither covers the other,
  // the overlap's fate depends on order. A warning, not an error.
  const auto report = RuleSetAnalyzer::analyze(parse(
      "default deny\n"
      "deny tcp from 10.1.3.0/24 to 10.2.0.0/16 oneway\n"
      "allow tcp from 10.1.0.0/16 to 10.2.0.0/16 port 80-443 oneway\n"));
  EXPECT_TRUE(report.has(FindingKind::kConflict, 1, 0));
  EXPECT_EQ(report.warning_count(), 1u);
  EXPECT_EQ(report.error_count(), 0u);
}

TEST(RuleAnalyzer, SpecificExceptionBeforeGeneralRuleIsNotAConflict) {
  // The standard intentional idiom: a narrow deny placed ABOVE the broad
  // allow that covers it. Later-covers-earlier with different actions is
  // how exceptions are written — no finding at all.
  const auto report = RuleSetAnalyzer::analyze(parse(
      "default deny\n"
      "deny tcp from 10.1.2.3 to 10.0.0.5 port 80\n"
      "allow tcp from 10.1.0.0/16 to 10.0.0.5 port 80\n"));
  EXPECT_EQ(report.findings.size(), 0u);
}

TEST(RuleAnalyzer, AnyAnyAllowFlaggedDenyIsNot) {
  const auto report = RuleSetAnalyzer::analyze(parse(
      "default deny\n"
      "deny any from any to any\n"
      "allow any from any to any\n"));
  EXPECT_TRUE(report.has(FindingKind::kAnyAny, 1));
  EXPECT_FALSE(report.has(FindingKind::kAnyAny, 0));
  // The allow is also shadowed by the deny above it.
  EXPECT_TRUE(report.has(FindingKind::kShadowed, 1, 0));
}

TEST(RuleAnalyzer, VpgVerdictRequiresSameId) {
  // Same-id VPG covered by same-id VPG: redundant. Different id: shadowed
  // (the traffic lands in the wrong tunnel).
  const auto redundant = RuleSetAnalyzer::analyze(parse(
      "default deny\n"
      "vpg 7 between 10.1.0.0/16 and 10.0.0.5\n"
      "vpg 7 between 10.1.2.0/24 and 10.0.0.5\n"));
  EXPECT_TRUE(redundant.has(FindingKind::kRedundant, 1, 0));

  const auto shadowed = RuleSetAnalyzer::analyze(parse(
      "default deny\n"
      "vpg 7 between 10.1.0.0/16 and 10.0.0.5\n"
      "vpg 9 between 10.1.2.0/24 and 10.0.0.5\n"));
  EXPECT_TRUE(shadowed.has(FindingKind::kShadowed, 1, 0));
}

TEST(RuleAnalyzer, ReverseDirectionOfBidirectionalRuleCovers) {
  // Rule 1 is written in the opposite direction of rule 0, but rule 0 is
  // bidirectional: its reversed entry covers rule 1's one-way region.
  const auto report = RuleSetAnalyzer::analyze(parse(
      "default deny\n"
      "allow tcp from 10.1.0.0/16 to 10.0.0.0/24\n"
      "allow tcp from 10.0.0.5 to 10.1.2.3 oneway\n"));
  EXPECT_TRUE(report.has(FindingKind::kRedundant, 1, 0));
}

TEST(RuleAnalyzer, OnewayDoesNotCoverBidirectional) {
  // The narrower bidirectional rule needs BOTH directions covered; the
  // earlier one-way rule only provides one. Not dead — but the reverse
  // entries do cross, which surfaces as a conflict warning.
  const auto report = RuleSetAnalyzer::analyze(parse(
      "default deny\n"
      "deny tcp from 10.1.0.0/16 to 10.0.0.0/24 oneway\n"
      "allow tcp from 10.1.2.0/24 to 10.0.0.5 port 80\n"));
  EXPECT_FALSE(report.has(FindingKind::kShadowed, 1));
  EXPECT_EQ(report.error_count(), 0u);
}

TEST(RuleAnalyzer, GeometryHelpers) {
  const RuleSet rs = parse(
      "default deny\n"
      "allow tcp from any to 10.0.0.0/24 port 80\n"
      "allow tcp from 10.1.0.0/16 to 10.0.0.5 port 80\n"
      "allow any from any to any\n");
  const auto& rules = rs.rules();
  EXPECT_TRUE(RuleSetAnalyzer::rule_covers(rules[0], rules[1]));
  EXPECT_FALSE(RuleSetAnalyzer::rule_covers(rules[1], rules[0]));
  EXPECT_TRUE(RuleSetAnalyzer::rules_intersect(rules[0], rules[1]));
  EXPECT_TRUE(RuleSetAnalyzer::matches_everything(rules[2]));
  EXPECT_FALSE(RuleSetAnalyzer::matches_everything(rules[0]));
  EXPECT_TRUE(RuleSetAnalyzer::rule_covers(rules[2], rules[0]));

  RuleBox boxes[2];
  int count = 0;
  RuleSetAnalyzer::boxes_of(rules[1], boxes, &count);
  ASSERT_EQ(count, 2);  // bidirectional
  EXPECT_EQ(boxes[0].lo[0], 6u);  // tcp
  EXPECT_EQ(boxes[0].hi[0], 6u);
  EXPECT_EQ(boxes[0].lo[4], 80u);  // forward dst port
  EXPECT_EQ(boxes[1].lo[3], 80u);  // reversed: src port
}

TEST(RuleAnalyzer, WildcardPileCapsStoredFindingsButCountsAll) {
  // 48 identical allow rules: rule j is redundant against every i < j —
  // 48*47/2 relations. Exact totals survive; the stored list is capped per
  // rule so pathological sets cannot blow up the report.
  RuleSet rs;
  for (int i = 0; i < 48; ++i) {
    Rule r;
    r.action = RuleAction::kAllow;
    r.protocol = 6;
    r.dst_net = net::Ipv4Address(10, 0, 0, 0);
    r.dst_prefix = 24;
    rs.add(r);
  }
  const auto report = RuleSetAnalyzer::analyze(rs);
  EXPECT_EQ(report.count(FindingKind::kRedundant), 48u * 47u / 2u);
  EXPECT_GT(report.truncated, 0u);
  EXPECT_LT(report.findings.size(), 48u * 47u / 2u);
  // The capped list still pins every rule's first coverer.
  EXPECT_TRUE(report.has(FindingKind::kRedundant, 47, 0));
}

}  // namespace
}  // namespace barb::firewall::policygen
