#include "firewall/vpg.h"

#include <gtest/gtest.h>

#include <string>

#include "net/packet_builder.h"

namespace barb::firewall {
namespace {

std::vector<std::uint8_t> master_key(std::uint8_t fill = 0x11) {
  return std::vector<std::uint8_t>(32, fill);
}

std::vector<std::uint8_t> make_udp_frame(const std::string& payload_text) {
  net::IpEndpoints ep;
  ep.src_ip = net::Ipv4Address(10, 0, 0, 30);
  ep.dst_ip = net::Ipv4Address(10, 0, 0, 40);
  ep.src_mac = net::MacAddress::from_host_id(30);
  ep.dst_mac = net::MacAddress::from_host_id(40);
  std::vector<std::uint8_t> payload(payload_text.begin(), payload_text.end());
  return net::build_udp_frame(ep, 5000, 5001, payload);
}

TEST(Vpg, EncapDecapRoundTrip) {
  VpgTable sender, receiver;
  sender.install(7, master_key());
  receiver.install(7, master_key());

  auto frame = make_udp_frame("secret datagram");
  const auto original = frame;
  ASSERT_TRUE(sender.encapsulate(7, frame));

  // On the wire the frame is protocol 250 and the payload is unreadable.
  auto view = net::FrameView::parse(frame);
  ASSERT_TRUE(view && view->ip);
  EXPECT_EQ(view->ip->protocol, 250);
  ASSERT_TRUE(view->vpg);
  EXPECT_EQ(view->vpg->vpg_id, 7u);
  EXPECT_EQ(view->vpg->orig_protocol, 17);
  const std::string wire(frame.begin(), frame.end());
  EXPECT_EQ(wire.find("secret datagram"), std::string::npos);

  ASSERT_TRUE(receiver.decapsulate(frame));
  // Restored frame parses back to the original UDP packet.
  auto restored = net::FrameView::parse(frame);
  ASSERT_TRUE(restored && restored->udp);
  EXPECT_EQ(restored->udp->dst_port, 5001);
  EXPECT_EQ(std::string(restored->l4_payload.begin(), restored->l4_payload.end()),
            "secret datagram");
  EXPECT_EQ(frame, original);
}

TEST(Vpg, DifferentKeysFailAuthentication) {
  VpgTable sender, receiver;
  sender.install(7, master_key(0x11));
  receiver.install(7, master_key(0x22));

  auto frame = make_udp_frame("x");
  ASSERT_TRUE(sender.encapsulate(7, frame));
  EXPECT_FALSE(receiver.decapsulate(frame));
  EXPECT_EQ(receiver.stats().auth_failures, 1u);
}

TEST(Vpg, TamperedFrameRejected) {
  VpgTable sender, receiver;
  sender.install(7, master_key());
  receiver.install(7, master_key());

  auto frame = make_udp_frame("payload");
  ASSERT_TRUE(sender.encapsulate(7, frame));
  frame[frame.size() - 3] ^= 0x01;  // flip a ciphertext/tag bit
  EXPECT_FALSE(receiver.decapsulate(frame));
  EXPECT_EQ(receiver.stats().auth_failures, 1u);
}

TEST(Vpg, HeaderTamperRejected) {
  VpgTable sender, receiver;
  sender.install(7, master_key());
  receiver.install(9, master_key());  // receiver knows a different group

  auto frame = make_udp_frame("payload");
  ASSERT_TRUE(sender.encapsulate(7, frame));
  // Rewriting the vpg id to 9 must fail: the header is authenticated (AAD)
  // and the nonce binds the id.
  frame[net::EthernetHeader::kSize + net::Ipv4Header::kSize + 3] = 9;
  EXPECT_FALSE(receiver.decapsulate(frame));
}

TEST(Vpg, UnknownGroupRejected) {
  VpgTable sender, receiver;
  sender.install(7, master_key());
  auto frame = make_udp_frame("x");
  ASSERT_TRUE(sender.encapsulate(7, frame));
  EXPECT_FALSE(receiver.decapsulate(frame));
  EXPECT_EQ(receiver.stats().unknown_vpg, 1u);
  EXPECT_FALSE(sender.encapsulate(42, frame));
  EXPECT_EQ(sender.stats().unknown_vpg, 1u);
}

TEST(Vpg, ReplayedFrameDropped) {
  VpgTable sender, receiver;
  sender.install(7, master_key());
  receiver.install(7, master_key());

  auto frame = make_udp_frame("once");
  ASSERT_TRUE(sender.encapsulate(7, frame));
  auto replay = frame;
  ASSERT_TRUE(receiver.decapsulate(frame));
  EXPECT_FALSE(receiver.decapsulate(replay));
  EXPECT_EQ(receiver.stats().replays_dropped, 1u);
}

TEST(Vpg, OutOfOrderWithinWindowAccepted) {
  VpgTable sender, receiver;
  sender.install(7, master_key());
  receiver.install(7, master_key());

  // Seal three frames (seq 1, 2, 3), deliver 3 first, then 1 and 2.
  std::vector<std::vector<std::uint8_t>> frames;
  for (int i = 0; i < 3; ++i) {
    auto f = make_udp_frame("frame " + std::to_string(i));
    EXPECT_TRUE(sender.encapsulate(7, f));
    frames.push_back(std::move(f));
  }
  EXPECT_TRUE(receiver.decapsulate(frames[2]));
  EXPECT_TRUE(receiver.decapsulate(frames[0]));
  EXPECT_TRUE(receiver.decapsulate(frames[1]));
  EXPECT_EQ(receiver.stats().decapsulated, 3u);
}

TEST(Vpg, AncientSequenceOutsideWindowDropped) {
  VpgTable sender, receiver;
  sender.install(7, master_key());
  receiver.install(7, master_key());

  auto old_frame = make_udp_frame("old");
  ASSERT_TRUE(sender.encapsulate(7, old_frame));  // seq 1
  // Advance the sender far beyond the 64-entry replay window.
  for (int i = 0; i < 100; ++i) {
    auto f = make_udp_frame("fill");
    ASSERT_TRUE(sender.encapsulate(7, f));
    ASSERT_TRUE(receiver.decapsulate(f));
  }
  EXPECT_FALSE(receiver.decapsulate(old_frame));
  EXPECT_EQ(receiver.stats().replays_dropped, 1u);
}

TEST(Vpg, OversizedFrameRefused) {
  VpgTable sender;
  sender.install(7, master_key());
  // A maximum-size frame has no headroom for the 32-byte encapsulation.
  net::IpEndpoints ep;
  ep.src_ip = net::Ipv4Address(10, 0, 0, 30);
  ep.dst_ip = net::Ipv4Address(10, 0, 0, 40);
  ep.src_mac = net::MacAddress::from_host_id(30);
  ep.dst_mac = net::MacAddress::from_host_id(40);
  std::vector<std::uint8_t> payload(
      net::kEthernetMtu - net::Ipv4Header::kSize - net::UdpHeader::kSize, 0x5a);
  auto frame = net::build_udp_frame(ep, 1, 2, payload);
  EXPECT_FALSE(sender.encapsulate(7, frame));
}

TEST(Vpg, SequenceNumbersAdvancePerFrame) {
  VpgTable sender;
  sender.install(7, master_key());
  std::uint64_t last_seq = 0;
  for (int i = 0; i < 5; ++i) {
    auto frame = make_udp_frame("x");
    ASSERT_TRUE(sender.encapsulate(7, frame));
    auto view = net::FrameView::parse(frame);
    ASSERT_TRUE(view && view->vpg);
    EXPECT_EQ(view->vpg->seq, last_seq + 1);
    last_seq = view->vpg->seq;
  }
}

TEST(Vpg, ReinstallResetsGroupState) {
  VpgTable sender, receiver;
  sender.install(7, master_key());
  receiver.install(7, master_key());
  auto f1 = make_udp_frame("a");
  ASSERT_TRUE(sender.encapsulate(7, f1));
  ASSERT_TRUE(receiver.decapsulate(f1));

  // Re-keying the group resets sequence/replay state.
  sender.install(7, master_key(0x33));
  receiver.install(7, master_key(0x33));
  auto f2 = make_udp_frame("b");
  ASSERT_TRUE(sender.encapsulate(7, f2));
  EXPECT_TRUE(receiver.decapsulate(f2));
}

TEST(Vpg, RemoveForgetsGroup) {
  VpgTable table;
  table.install(7, master_key());
  EXPECT_TRUE(table.has(7));
  table.remove(7);
  EXPECT_FALSE(table.has(7));
  auto frame = make_udp_frame("x");
  EXPECT_FALSE(table.encapsulate(7, frame));
}

}  // namespace
}  // namespace barb::firewall
