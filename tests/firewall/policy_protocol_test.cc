#include "firewall/policy_protocol.h"

#include <gtest/gtest.h>

#include "sim/random.h"

namespace barb::firewall {
namespace {

std::vector<std::uint8_t> key() { return std::vector<std::uint8_t>(32, 0x5c); }

TEST(PolicyProtocol, EncodeDecodeRoundTrip) {
  PolicyMessage msg;
  msg.type = PolicyMsgType::kPolicyUpdate;
  msg.seq = 42;
  msg.body = "version 3\ndefault deny\nallow any from any to any\n";

  const auto bytes = encode_policy_message(msg, key());
  PolicyMessageReader reader;
  reader.append(bytes);
  auto decoded = reader.next(key());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, PolicyMsgType::kPolicyUpdate);
  EXPECT_EQ(decoded->seq, 42u);
  EXPECT_EQ(decoded->body, msg.body);
  EXPECT_FALSE(reader.next(key()).has_value());
  EXPECT_FALSE(reader.corrupted());
}

TEST(PolicyProtocol, EmptyBodyMessage) {
  PolicyMessage msg;
  msg.type = PolicyMsgType::kRestart;
  msg.seq = 1;
  const auto bytes = encode_policy_message(msg, key());
  PolicyMessageReader reader;
  reader.append(bytes);
  auto decoded = reader.next(key());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, PolicyMsgType::kRestart);
  EXPECT_TRUE(decoded->body.empty());
}

TEST(PolicyProtocol, StreamReassemblyAcrossArbitrarySplits) {
  PolicyMessage m1{PolicyMsgType::kHello, 1, "host 10.0.0.40"};
  PolicyMessage m2{PolicyMsgType::kHeartbeat, 2, "status ok processed 100"};
  auto bytes = encode_policy_message(m1, key());
  const auto b2 = encode_policy_message(m2, key());
  bytes.insert(bytes.end(), b2.begin(), b2.end());

  sim::Random rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    PolicyMessageReader reader;
    std::vector<PolicyMessage> got;
    std::size_t pos = 0;
    while (pos < bytes.size()) {
      const std::size_t n =
          std::min(bytes.size() - pos, static_cast<std::size_t>(rng.uniform(13) + 1));
      reader.append(std::span(bytes).subspan(pos, n));
      pos += n;
      while (auto msg = reader.next(key())) got.push_back(*msg);
    }
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].body, m1.body);
    EXPECT_EQ(got[1].seq, 2u);
    EXPECT_FALSE(reader.corrupted());
  }
}

TEST(PolicyProtocol, WrongKeyPoisonsStream) {
  PolicyMessage msg{PolicyMsgType::kHello, 1, "host 10.0.0.40"};
  const auto bytes = encode_policy_message(msg, key());
  PolicyMessageReader reader;
  reader.append(bytes);
  const std::vector<std::uint8_t> wrong(32, 0x00);
  EXPECT_FALSE(reader.next(wrong).has_value());
  EXPECT_TRUE(reader.corrupted());
  // Stream stays dead even with the right key afterwards.
  EXPECT_FALSE(reader.next(key()).has_value());
}

TEST(PolicyProtocol, TamperedBytesRejected) {
  PolicyMessage msg{PolicyMsgType::kPolicyUpdate, 9, "version 1\ndefault deny\n"};
  auto bytes = encode_policy_message(msg, key());
  for (std::size_t i : {std::size_t{4}, std::size_t{10}, bytes.size() / 2,
                        bytes.size() - 1}) {
    auto bad = bytes;
    bad[i] ^= 0x01;
    PolicyMessageReader reader;
    reader.append(bad);
    EXPECT_FALSE(reader.next(key()).has_value()) << "byte " << i;
    EXPECT_TRUE(reader.corrupted());
  }
}

TEST(PolicyProtocol, BadMagicRejectedImmediately) {
  std::vector<std::uint8_t> junk(64, 0xee);
  PolicyMessageReader reader;
  reader.append(junk);
  EXPECT_FALSE(reader.next(key()).has_value());
  EXPECT_TRUE(reader.corrupted());
}

TEST(PolicyProtocol, OversizedLengthRejected) {
  // Forge a header with a 100 MB body claim. The MAC would fail anyway, but
  // the reader must refuse before buffering gigabytes.
  PolicyMessage msg{PolicyMsgType::kHello, 1, "x"};
  auto bytes = encode_policy_message(msg, key());
  bytes[14] = 0x40;  // length field high byte -> ~1 GB
  PolicyMessageReader reader;
  reader.append(bytes);
  EXPECT_FALSE(reader.next(key()).has_value());
  EXPECT_TRUE(reader.corrupted());
}

TEST(PolicyProtocol, ParseHex) {
  auto bytes = parse_hex("00ff10ab");
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(*bytes, (std::vector<std::uint8_t>{0x00, 0xff, 0x10, 0xab}));
  EXPECT_TRUE(parse_hex("")->empty());
  EXPECT_FALSE(parse_hex("abc").has_value());   // odd length
  EXPECT_FALSE(parse_hex("zz").has_value());    // bad digits
  auto upper = parse_hex("ABCD");
  ASSERT_TRUE(upper.has_value());
  EXPECT_EQ(*upper, (std::vector<std::uint8_t>{0xab, 0xcd}));
}

}  // namespace
}  // namespace barb::firewall
