#include "firewall/rule.h"

#include <gtest/gtest.h>

namespace barb::firewall {
namespace {

net::FiveTuple tuple(const char* src, std::uint16_t sport, const char* dst,
                     std::uint16_t dport, std::uint8_t proto = 6) {
  net::FiveTuple t;
  t.src = *net::Ipv4Address::parse(src);
  t.dst = *net::Ipv4Address::parse(dst);
  t.src_port = sport;
  t.dst_port = dport;
  t.protocol = proto;
  return t;
}

TEST(Rule, EmptyRuleMatchesEverything) {
  Rule r;
  r.action = RuleAction::kAllow;
  EXPECT_TRUE(r.matches(tuple("10.0.0.1", 1234, "10.0.0.2", 80)));
  EXPECT_TRUE(r.matches(tuple("192.168.1.1", 1, "172.16.0.1", 2, 17)));
}

TEST(Rule, ProtocolSelector) {
  Rule r;
  r.protocol = 6;  // tcp
  EXPECT_TRUE(r.matches(tuple("10.0.0.1", 1, "10.0.0.2", 2, 6)));
  EXPECT_FALSE(r.matches(tuple("10.0.0.1", 1, "10.0.0.2", 2, 17)));
}

TEST(Rule, SourceSubnetSelector) {
  Rule r;
  r.src_net = net::Ipv4Address(10, 1, 0, 0);
  r.src_prefix = 16;
  r.bidirectional = false;
  EXPECT_TRUE(r.matches(tuple("10.1.2.3", 1, "10.9.9.9", 2)));
  EXPECT_FALSE(r.matches(tuple("10.2.2.3", 1, "10.9.9.9", 2)));
}

TEST(Rule, DestinationHostSelector) {
  Rule r;
  r.dst_net = net::Ipv4Address(10, 0, 0, 40);
  r.dst_prefix = 32;
  r.bidirectional = false;
  EXPECT_TRUE(r.matches(tuple("10.0.0.1", 1, "10.0.0.40", 2)));
  EXPECT_FALSE(r.matches(tuple("10.0.0.1", 1, "10.0.0.41", 2)));
}

TEST(Rule, PortRangeSelector) {
  Rule r;
  r.dst_ports = PortRange{80, 90};
  r.bidirectional = false;
  EXPECT_TRUE(r.matches(tuple("10.0.0.1", 1, "10.0.0.2", 80)));
  EXPECT_TRUE(r.matches(tuple("10.0.0.1", 1, "10.0.0.2", 90)));
  EXPECT_FALSE(r.matches(tuple("10.0.0.1", 1, "10.0.0.2", 91)));
  EXPECT_FALSE(r.matches(tuple("10.0.0.1", 1, "10.0.0.2", 79)));
}

TEST(Rule, PortRangeAnyAcceptsZero) {
  PortRange any;
  EXPECT_TRUE(any.any());
  EXPECT_TRUE(any.contains(0));
  EXPECT_TRUE(any.contains(65535));
  PortRange one{80, 80};
  EXPECT_FALSE(one.any());
  EXPECT_TRUE(one.contains(80));
  EXPECT_FALSE(one.contains(0));
}

TEST(Rule, BidirectionalMatchesReversedTuple) {
  Rule r;
  r.src_net = net::Ipv4Address(10, 0, 0, 30);
  r.src_prefix = 32;
  r.dst_net = net::Ipv4Address(10, 0, 0, 40);
  r.dst_prefix = 32;
  r.dst_ports = PortRange{80, 80};

  // Forward: client -> server:80.
  EXPECT_TRUE(r.matches(tuple("10.0.0.30", 5555, "10.0.0.40", 80)));
  // Reverse: server:80 -> client (the response direction).
  EXPECT_TRUE(r.matches(tuple("10.0.0.40", 80, "10.0.0.30", 5555)));
  // A tuple matching neither direction.
  EXPECT_FALSE(r.matches(tuple("10.0.0.40", 81, "10.0.0.30", 5555)));

  r.bidirectional = false;
  EXPECT_FALSE(r.matches(tuple("10.0.0.40", 80, "10.0.0.30", 5555)));
}

TEST(Rule, VpgRuleCostsTwoUnits) {
  Rule vpg;
  vpg.action = RuleAction::kVpg;
  EXPECT_EQ(vpg.cost_units(), 2);
  Rule allow;
  allow.action = RuleAction::kAllow;
  EXPECT_EQ(allow.cost_units(), 1);
  Rule deny;
  deny.action = RuleAction::kDeny;
  EXPECT_EQ(deny.cost_units(), 1);
}

TEST(Rule, ToStringIsReadable) {
  Rule r;
  r.action = RuleAction::kAllow;
  r.protocol = 6;
  r.dst_net = net::Ipv4Address(10, 0, 0, 40);
  r.dst_prefix = 32;
  r.dst_ports = PortRange{80, 80};
  EXPECT_EQ(r.to_string(), "allow tcp from any to 10.0.0.40 port 80");
}

}  // namespace
}  // namespace barb::firewall
