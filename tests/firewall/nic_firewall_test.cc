#include "firewall/nic_firewall.h"

#include <gtest/gtest.h>

#include "firewall/policy.h"
#include "link/link.h"
#include "net/packet_builder.h"
#include "sim/simulation.h"

namespace barb::firewall {
namespace {

// Harness: a FirewallNic between a wire (link) and a host-side collector.
struct Harness {
  sim::Simulation sim{1};
  link::Link link;
  FirewallNic nic;
  struct Collector : link::FrameSink {
    std::vector<net::Packet> frames;
    void deliver(net::Packet pkt) override { frames.push_back(std::move(pkt)); }
  } host_side, wire_side;

  static link::LinkConfig deep_link() {
    link::LinkConfig cfg;
    cfg.queue_bytes = 1024 * 1024;  // tests saturate the NIC, not the wire
    return cfg;
  }

  explicit Harness(DeviceProfile profile = efw_profile())
      : link(sim, deep_link()),
        nic(sim, net::MacAddress::from_host_id(40), "fw", std::move(profile)) {
    nic.attach(link.b());
    nic.set_host_sink(&host_side);
    link.a().connect_sink(&wire_side);
  }

  void install(const char* policy) {
    auto parsed = parse_policy(policy);
    ASSERT_TRUE(parsed.ok());
    nic.install_rule_set(std::move(*parsed.rule_set));
  }

  // Sends a frame from the wire toward the NIC.
  void from_wire(std::vector<std::uint8_t> frame) {
    link.a().send(net::Packet{std::move(frame), sim.now(), 0});
  }
};

std::vector<std::uint8_t> udp_frame(std::uint8_t src_last, std::uint16_t dst_port,
                                    std::size_t payload_len = 10) {
  net::IpEndpoints ep;
  ep.src_ip = net::Ipv4Address(10, 0, 0, src_last);
  ep.dst_ip = net::Ipv4Address(10, 0, 0, 40);
  ep.src_mac = net::MacAddress::from_host_id(src_last);
  ep.dst_mac = net::MacAddress::from_host_id(40);
  const std::vector<std::uint8_t> payload(payload_len, 0x42);
  return net::build_udp_frame(ep, 4000, dst_port, payload);
}

TEST(FirewallNic, UnconfiguredCardPassesTraffic) {
  Harness h;
  h.from_wire(udp_frame(1, 80));
  h.sim.run();
  EXPECT_EQ(h.host_side.frames.size(), 1u);
  EXPECT_EQ(h.nic.fw_stats().rx_allowed, 1u);
}

TEST(FirewallNic, DenyRuleDropsInbound) {
  Harness h;
  h.install("default deny\nallow udp from any to any port 80\n");
  h.from_wire(udp_frame(1, 80));
  h.from_wire(udp_frame(1, 81));
  h.sim.run();
  EXPECT_EQ(h.host_side.frames.size(), 1u);
  EXPECT_EQ(h.nic.fw_stats().rx_allowed, 1u);
  EXPECT_EQ(h.nic.fw_stats().rx_denied, 1u);
}

TEST(FirewallNic, OutboundFilteredToo) {
  Harness h;
  h.install("default deny\nallow udp from any to any port 80\n");
  net::IpEndpoints ep;
  ep.src_ip = net::Ipv4Address(10, 0, 0, 40);
  ep.dst_ip = net::Ipv4Address(10, 0, 0, 1);
  ep.src_mac = net::MacAddress::from_host_id(40);
  ep.dst_mac = net::MacAddress::from_host_id(1);
  const std::vector<std::uint8_t> payload(8, 1);
  h.nic.transmit({net::build_udp_frame(ep, 9, 80, payload), h.sim.now(), 0});
  h.nic.transmit({net::build_udp_frame(ep, 9, 99, payload), h.sim.now(), 0});
  h.sim.run();
  EXPECT_EQ(h.wire_side.frames.size(), 1u);
  EXPECT_EQ(h.nic.fw_stats().tx_allowed, 1u);
  EXPECT_EQ(h.nic.fw_stats().tx_denied, 1u);
}

TEST(FirewallNic, ServiceTimeScalesWithRuleDepth) {
  // Time 100 frames through a depth-1 and a depth-64 policy; the ratio of
  // processing times must reflect the linear rule walk.
  auto run_with_depth = [](int depth) {
    Harness h;
    std::string policy = "default deny\n";
    for (int i = 1; i < depth; ++i) {
      policy += "deny tcp from 192.168.0." + std::to_string(i % 250 + 1) +
                " to 192.168.250.1\n";
    }
    policy += "allow any from any to any\n";
    h.install(policy.c_str());
    for (int i = 0; i < 100; ++i) h.from_wire(udp_frame(1, 80));
    h.sim.run();
    EXPECT_EQ(h.host_side.frames.size(), 100u);
    return h.nic.fw_stats().cpu_busy;
  };

  const auto t1 = run_with_depth(1);
  const auto t64 = run_with_depth(64);
  // Expected mean ratio: (base + 64r) / (base + r) with the EFW profile.
  const auto profile = efw_profile();
  const double base =
      (profile.fixed + profile.arrival_overhead +
       profile.per_byte * static_cast<std::int64_t>(udp_frame(1, 80).size()))
          .to_seconds();
  const double r = profile.per_rule.to_seconds();
  const double expected = (base + 64 * r) / (base + r);
  EXPECT_NEAR(t64 / t1, expected, expected * 0.1);
}

TEST(FirewallNic, BufferOverflowDropsFrames) {
  Harness h;
  // Behind a 64-rule policy a full-size frame takes ~160 us of service but
  // only ~118 us to arrive: the 64 KB RX buffer (~45 such frames) must
  // eventually overflow under a long back-to-back burst.
  std::string policy = "default deny\n";
  for (int i = 1; i < 64; ++i) {
    policy += "deny tcp from 192.168.0." + std::to_string(i % 250 + 1) +
              " to 192.168.250.1\n";
  }
  policy += "allow any from any to any\n";
  h.install(policy.c_str());
  for (int i = 0; i < 300; ++i) {
    h.from_wire(udp_frame(1, 80, 1400));
  }
  h.sim.run();
  EXPECT_GT(h.nic.fw_stats().rx_ring_drops, 0u);
  EXPECT_LT(h.host_side.frames.size(), 300u);
  EXPECT_GT(h.host_side.frames.size(), 40u);
}

TEST(FirewallNic, DenyFloodLatchesEfwLockup) {
  Harness h;  // EFW profile: lockup above 1000 denies/s
  h.install("default deny\n");
  ASSERT_FALSE(h.nic.locked_up());
  // 1200 denied frames inside one second.
  for (int i = 0; i < 1200; ++i) {
    h.sim.schedule(sim::Duration::microseconds(500) * static_cast<std::int64_t>(i),
                   [&h] { h.from_wire(udp_frame(1, 9)); });
  }
  h.sim.run();
  EXPECT_TRUE(h.nic.locked_up());
  EXPECT_EQ(h.host_side.frames.size(), 0u);

  // While latched, even allowed traffic dies.
  h.install("default allow\n");
  h.from_wire(udp_frame(1, 80));
  h.sim.run();
  EXPECT_EQ(h.host_side.frames.size(), 0u);
  EXPECT_GT(h.nic.fw_stats().lockup_drops, 0u);

  // Agent restart restores service (the paper's recovery procedure).
  h.nic.restart();
  EXPECT_FALSE(h.nic.locked_up());
  h.from_wire(udp_frame(1, 80));
  h.sim.run();
  EXPECT_EQ(h.host_side.frames.size(), 1u);
}

TEST(FirewallNic, AdfDoesNotLockUp) {
  Harness h(adf_profile());
  h.install("default deny\n");
  for (int i = 0; i < 3000; ++i) {
    h.sim.schedule(sim::Duration::microseconds(300) * static_cast<std::int64_t>(i),
                   [&h] { h.from_wire(udp_frame(1, 9)); });
  }
  h.sim.run();
  EXPECT_FALSE(h.nic.locked_up());
}

TEST(FirewallNic, SlowDenyRateDoesNotLatch) {
  Harness h;
  h.install("default deny\n");
  // 900 denies/s sustained for 3 seconds stays below the 1000/s threshold.
  for (int i = 0; i < 2700; ++i) {
    h.sim.schedule(sim::Duration::from_seconds(i / 900.0),
                   [&h] { h.from_wire(udp_frame(1, 9)); });
  }
  h.sim.run();
  EXPECT_FALSE(h.nic.locked_up());
}

TEST(FirewallNic, ManagementPeerBypassesPolicy) {
  Harness h;
  h.install("default deny\n");
  h.nic.set_management_peer(net::Ipv4Address(10, 0, 0, 10));

  net::IpEndpoints ep;
  ep.src_ip = net::Ipv4Address(10, 0, 0, 10);  // policy server
  ep.dst_ip = net::Ipv4Address(10, 0, 0, 40);
  ep.src_mac = net::MacAddress::from_host_id(10);
  ep.dst_mac = net::MacAddress::from_host_id(40);
  const std::vector<std::uint8_t> payload(8, 1);
  h.from_wire(net::build_udp_frame(ep, 3456, 4000, payload));
  h.from_wire(udp_frame(1, 80));  // ordinary traffic still denied
  h.sim.run();
  EXPECT_EQ(h.host_side.frames.size(), 1u);
}

TEST(FirewallNic, VpgEndToEndBetweenTwoCards) {
  // client NIC <-> wire <-> target NIC, both with the same VPG installed.
  sim::Simulation sim(2);
  link::Link link(sim);
  FirewallNic client_nic(sim, net::MacAddress::from_host_id(30), "client",
                         adf_profile());
  FirewallNic target_nic(sim, net::MacAddress::from_host_id(40), "target",
                         adf_profile());
  client_nic.attach(link.a());
  target_nic.attach(link.b());

  struct Collector : link::FrameSink {
    std::vector<net::Packet> frames;
    void deliver(net::Packet pkt) override { frames.push_back(std::move(pkt)); }
  } client_host, target_host;
  client_nic.set_host_sink(&client_host);
  target_nic.set_host_sink(&target_host);

  const char* policy = "default deny\nvpg 7 between 10.0.0.30 and 10.0.0.40\n";
  for (auto* nic : {&client_nic, &target_nic}) {
    auto parsed = parse_policy(policy);
    ASSERT_TRUE(parsed.ok());
    nic->install_rule_set(std::move(*parsed.rule_set));
    nic->vpg_table().install(7, std::vector<std::uint8_t>(32, 0x7a));
  }

  net::IpEndpoints ep;
  ep.src_ip = net::Ipv4Address(10, 0, 0, 30);
  ep.dst_ip = net::Ipv4Address(10, 0, 0, 40);
  ep.src_mac = client_nic.mac();
  ep.dst_mac = target_nic.mac();
  const std::string text = "through the tunnel";
  const std::vector<std::uint8_t> payload(text.begin(), text.end());
  client_nic.transmit({net::build_udp_frame(ep, 5000, 5001, payload), sim.now(), 1});
  sim.run();

  // The receiving host sees the decrypted original datagram.
  ASSERT_EQ(target_host.frames.size(), 1u);
  auto view = net::FrameView::parse(target_host.frames[0].bytes());
  ASSERT_TRUE(view && view->udp);
  EXPECT_EQ(view->ip->protocol, 17);
  EXPECT_EQ(std::string(view->l4_payload.begin(), view->l4_payload.end()), text);
  EXPECT_EQ(client_nic.vpg_table().stats().encapsulated, 1u);
  EXPECT_EQ(target_nic.vpg_table().stats().decapsulated, 1u);
}

TEST(FirewallNic, CleartextSpoofIntoVpgDropped) {
  Harness h(adf_profile());
  h.install("default deny\nvpg 7 between 10.0.0.30 and 10.0.0.40\n");
  h.nic.vpg_table().install(7, std::vector<std::uint8_t>(32, 0x7a));

  // An attacker spoofs cleartext UDP matching the VPG's selectors.
  net::IpEndpoints ep;
  ep.src_ip = net::Ipv4Address(10, 0, 0, 30);
  ep.dst_ip = net::Ipv4Address(10, 0, 0, 40);
  ep.src_mac = net::MacAddress::from_host_id(20);
  ep.dst_mac = net::MacAddress::from_host_id(40);
  const std::vector<std::uint8_t> payload(10, 0x66);
  h.from_wire(net::build_udp_frame(ep, 5000, 5001, payload));
  h.sim.run();

  EXPECT_EQ(h.host_side.frames.size(), 0u);
  EXPECT_EQ(h.nic.fw_stats().vpg_drops, 1u);
}

TEST(FirewallNic, RestartFlushesQueuedFrames) {
  Harness h;
  for (int i = 0; i < 20; ++i) h.from_wire(udp_frame(1, 80));
  // Let the frames arrive and queue, then restart before they are serviced.
  h.sim.run_for(sim::Duration::microseconds(200));
  h.nic.restart();
  h.sim.run();
  EXPECT_LT(h.host_side.frames.size(), 20u);
  // New traffic after restart flows normally.
  h.from_wire(udp_frame(1, 80));
  h.sim.run();
  EXPECT_GE(h.host_side.frames.size(), 1u);
}

TEST(FirewallNic, FramesForOtherMacsIgnored) {
  Harness h;
  net::IpEndpoints ep;
  ep.src_ip = net::Ipv4Address(10, 0, 0, 1);
  ep.dst_ip = net::Ipv4Address(10, 0, 0, 40);
  ep.src_mac = net::MacAddress::from_host_id(1);
  ep.dst_mac = net::MacAddress::from_host_id(99);  // not us
  const std::vector<std::uint8_t> payload(8, 1);
  h.from_wire(net::build_udp_frame(ep, 1, 2, payload));
  h.sim.run();
  EXPECT_EQ(h.host_side.frames.size(), 0u);
  EXPECT_EQ(h.nic.fw_stats().frames_processed, 0u);
}

}  // namespace
}  // namespace barb::firewall
