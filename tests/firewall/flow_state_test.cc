#include "firewall/flow_state.h"

#include <gtest/gtest.h>

#include "core/experiments.h"

namespace barb::firewall {
namespace {

net::FiveTuple tuple(std::uint16_t src_port, std::uint16_t dst_port = 80) {
  net::FiveTuple t;
  t.src = net::Ipv4Address(10, 0, 0, 1);
  t.dst = net::Ipv4Address(10, 0, 0, 2);
  t.src_port = src_port;
  t.dst_port = dst_port;
  t.protocol = 6;
  return t;
}

TEST(FlowState, MissThenInsertThenHit) {
  FlowStateTable table;
  const auto t0 = sim::TimePoint::origin();
  EXPECT_FALSE(table.lookup(tuple(1000), t0));
  table.insert(tuple(1000), t0);
  EXPECT_TRUE(table.lookup(tuple(1000), t0));
  EXPECT_EQ(table.stats().hits, 1u);
  EXPECT_EQ(table.stats().misses, 1u);
}

TEST(FlowState, BothDirectionsMatchOneEntry) {
  FlowStateTable table;
  const auto t0 = sim::TimePoint::origin();
  table.insert(tuple(1000), t0);
  EXPECT_TRUE(table.lookup(tuple(1000).reversed(), t0));
  EXPECT_EQ(table.size(), 1u);
  // Inserting the reverse direction does not duplicate.
  table.insert(tuple(1000).reversed(), t0);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowState, DistinctFlowsDistinctEntries) {
  FlowStateTable table;
  const auto t0 = sim::TimePoint::origin();
  table.insert(tuple(1000), t0);
  table.insert(tuple(1001), t0);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_FALSE(table.lookup(tuple(1002), t0));
}

TEST(FlowState, IdleEntriesExpire) {
  FlowStateConfig cfg;
  cfg.idle_timeout = sim::Duration::seconds(10);
  FlowStateTable table(cfg);
  const auto t0 = sim::TimePoint::origin();
  table.insert(tuple(1000), t0);
  EXPECT_TRUE(table.lookup(tuple(1000), t0 + sim::Duration::seconds(9)));
  // The hit refreshed it; 9 more seconds is still alive.
  EXPECT_TRUE(table.lookup(tuple(1000), t0 + sim::Duration::seconds(18)));
  // 11 idle seconds kills it.
  EXPECT_FALSE(table.lookup(tuple(1000), t0 + sim::Duration::seconds(29)));
  EXPECT_EQ(table.stats().expirations, 1u);
}

TEST(FlowState, LruBoundsTheTable) {
  FlowStateConfig cfg;
  cfg.max_entries = 4;
  FlowStateTable table(cfg);
  const auto t0 = sim::TimePoint::origin();
  for (std::uint16_t p = 0; p < 10; ++p) table.insert(tuple(1000 + p), t0);
  EXPECT_EQ(table.size(), 4u);
  EXPECT_EQ(table.stats().evictions, 6u);
  // The most recent entries survived.
  EXPECT_TRUE(table.lookup(tuple(1009), t0));
  EXPECT_FALSE(table.lookup(tuple(1000), t0));
}

TEST(FlowState, ClearEmptiesEverything) {
  FlowStateTable table;
  table.insert(tuple(1), sim::TimePoint::origin());
  table.clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.lookup(tuple(1), sim::TimePoint::origin()));
}

// Integration: a stateful EFW profile erases the depth penalty for
// legitimate traffic.
TEST(FlowStateIntegration, StatefulNicIsDepthInsensitive) {
  core::MeasurementOptions opt;
  opt.window = sim::Duration::milliseconds(600);
  opt.repetitions = 1;

  core::TestbedConfig cfg;
  cfg.firewall = core::FirewallKind::kEfw;
  cfg.action_rule_depth = 64;
  const double stateless = core::measure_available_bandwidth(cfg, opt).mean();

  auto profile = efw_profile();
  profile.stateful = true;
  cfg.profile_override = profile;
  const double stateful = core::measure_available_bandwidth(cfg, opt).mean();

  EXPECT_LT(stateless, 60.0);  // the paper's 64-rule penalty
  EXPECT_GT(stateful, 90.0);   // erased by flow state
}

}  // namespace
}  // namespace barb::firewall
