#include "firewall/classifier/flow_cache.h"

#include <gtest/gtest.h>

#include "sim/random.h"

namespace barb::firewall {
namespace {

net::FiveTuple tuple(std::uint32_t n) {
  net::FiveTuple t;
  t.src = net::Ipv4Address(10, 0, static_cast<std::uint8_t>(n >> 8),
                           static_cast<std::uint8_t>(n));
  t.dst = net::Ipv4Address(10, 0, 0, 40);
  t.src_port = static_cast<std::uint16_t>(1024 + (n % 50000));
  t.dst_port = 80;
  t.protocol = 6;
  return t;
}

MatchResult verdict(RuleAction action, int index) {
  MatchResult mr;
  mr.action = action;
  mr.matched_index = index;
  mr.rules_traversed = index + 1;
  return mr;
}

TEST(FlowCache, MissThenHit) {
  FlowCache cache(FlowCacheConfig{64, 8});
  MatchResult out;
  EXPECT_FALSE(cache.lookup(tuple(1), &out));
  cache.insert(tuple(1), verdict(RuleAction::kAllow, 3));
  ASSERT_TRUE(cache.lookup(tuple(1), &out));
  EXPECT_EQ(out.action, RuleAction::kAllow);
  EXPECT_EQ(out.matched_index, 3);
  EXPECT_EQ(out.rules_traversed, 4);
  EXPECT_EQ(cache.stats().lookups, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.live_entries(), 1u);
}

TEST(FlowCache, ExactTupleKeying) {
  FlowCache cache(FlowCacheConfig{64, 8});
  cache.insert(tuple(1), verdict(RuleAction::kAllow, 0));
  MatchResult out;
  auto near = tuple(1);
  near.src_port = static_cast<std::uint16_t>(near.src_port + 1);
  EXPECT_FALSE(cache.lookup(near, &out));
  near = tuple(1);
  near.protocol = 17;
  EXPECT_FALSE(cache.lookup(near, &out));
}

TEST(FlowCache, DenyVerdictsAreCachedToo) {
  FlowCache cache(FlowCacheConfig{64, 8});
  cache.insert(tuple(9), verdict(RuleAction::kDeny, 0));
  MatchResult out;
  ASSERT_TRUE(cache.lookup(tuple(9), &out));
  EXPECT_EQ(out.action, RuleAction::kDeny);
}

TEST(FlowCache, GenerationBumpInvalidatesEverything) {
  FlowCache cache(FlowCacheConfig{64, 8});
  for (std::uint32_t i = 0; i < 10; ++i) {
    cache.insert(tuple(i), verdict(RuleAction::kAllow, static_cast<int>(i)));
  }
  EXPECT_EQ(cache.live_entries(), 10u);
  cache.bump_generation();
  EXPECT_EQ(cache.live_entries(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  MatchResult out;
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_FALSE(cache.lookup(tuple(i), &out));
  }
  EXPECT_EQ(cache.stats().stale_hits, 10u);
  // Re-inserting after the bump works and hits again.
  cache.insert(tuple(3), verdict(RuleAction::kDeny, 1));
  ASSERT_TRUE(cache.lookup(tuple(3), &out));
  EXPECT_EQ(out.action, RuleAction::kDeny);
}

TEST(FlowCache, RefreshExistingKeyKeepsOneEntry) {
  FlowCache cache(FlowCacheConfig{64, 8});
  cache.insert(tuple(5), verdict(RuleAction::kAllow, 1));
  cache.insert(tuple(5), verdict(RuleAction::kDeny, 0));
  EXPECT_EQ(cache.live_entries(), 1u);
  MatchResult out;
  ASSERT_TRUE(cache.lookup(tuple(5), &out));
  EXPECT_EQ(out.action, RuleAction::kDeny);
}

TEST(FlowCache, CapacityRoundsUpToPowerOfTwo) {
  FlowCache cache(FlowCacheConfig{100, 8});
  EXPECT_EQ(cache.capacity(), 128u);
}

TEST(FlowCache, ThrashEvictsButNeverGrows) {
  // A spoofed-source flood in miniature: far more unique tuples than slots.
  FlowCache cache(FlowCacheConfig{64, 8});
  for (std::uint32_t i = 0; i < 4096; ++i) {
    cache.insert(tuple(i), verdict(RuleAction::kDeny, 0));
  }
  EXPECT_LE(cache.live_entries(), cache.capacity());
  EXPECT_GT(cache.stats().evictions, 0u);
  // Every surviving entry still answers with the verdict it was given.
  MatchResult out;
  std::size_t hits = 0;
  for (std::uint32_t i = 0; i < 4096; ++i) {
    if (cache.lookup(tuple(i), &out)) {
      ++hits;
      EXPECT_EQ(out.action, RuleAction::kDeny);
    }
  }
  EXPECT_GT(hits, 0u);
  EXPECT_LE(hits, cache.capacity());
}

TEST(FlowCache, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    FlowCache cache(FlowCacheConfig{32, 4});
    sim::Random rng(42);
    MatchResult out;
    for (int i = 0; i < 2000; ++i) {
      const auto t = tuple(static_cast<std::uint32_t>(rng.uniform(300)));
      if (!cache.lookup(t, &out)) {
        cache.insert(t, verdict(RuleAction::kAllow, 2));
      }
      if (i == 1000) cache.bump_generation();
    }
    return cache.stats();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.lookups, b.lookups);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.inserts, b.inserts);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.stale_hits, b.stale_hits);
  // Sanity: the workload actually exercised hits, misses, and staleness.
  EXPECT_GT(a.hits, 0u);
  EXPECT_GT(a.misses, 0u);
  EXPECT_GT(a.stale_hits, 0u);
}

}  // namespace
}  // namespace barb::firewall
