#include "firewall/classifier/compiled_classifier.h"

#include <gtest/gtest.h>

#include "firewall/nic_firewall.h"
#include "firewall/rule_set.h"
#include "net/packet_builder.h"
#include "sim/random.h"
#include "sim/simulation.h"

namespace barb::firewall {
namespace {

net::FiveTuple tcp_tuple(std::uint8_t src_last, std::uint8_t dst_last,
                         std::uint16_t dport, std::uint16_t sport = 40000) {
  net::FiveTuple t;
  t.src = net::Ipv4Address(10, 0, 0, src_last);
  t.dst = net::Ipv4Address(10, 0, 0, dst_last);
  t.src_port = sport;
  t.dst_port = dport;
  t.protocol = 6;
  return t;
}

Rule allow_to_port(std::uint16_t port) {
  Rule r;
  r.action = RuleAction::kAllow;
  r.protocol = 6;
  r.dst_ports = PortRange{port, port};
  return r;
}

Rule never_matches(int i) {
  Rule r;
  r.action = RuleAction::kDeny;
  r.src_net = net::Ipv4Address(192, 168, 0, static_cast<std::uint8_t>(i + 1));
  r.src_prefix = 32;
  return r;
}

// Full-struct equality against the linear matcher: the compiled backend's
// contract is bit-identical MatchResults, traversal counters included.
void expect_same(const RuleSet& rs, const CompiledClassifier& cc,
                 const net::FiveTuple& t) {
  const auto lin = rs.match(t);
  const auto cm = cc.match(t);
  EXPECT_EQ(cm.result.action, lin.action) << t.to_string();
  EXPECT_EQ(cm.result.matched_index, lin.matched_index) << t.to_string();
  EXPECT_EQ(cm.result.rules_traversed, lin.rules_traversed) << t.to_string();
  EXPECT_EQ(cm.result.vpg_rules_traversed, lin.vpg_rules_traversed) << t.to_string();
  EXPECT_EQ(cm.result.vpg_id, lin.vpg_id) << t.to_string();
  EXPECT_GE(cm.nodes, 1);
  EXPECT_LE(cm.nodes, cc.worst_case_nodes());
}

TEST(CompiledClassifier, EmptyRuleSetUsesDefault) {
  RuleSet deny;
  CompiledClassifier cc;
  cc.rebuild(deny);
  expect_same(deny, cc, tcp_tuple(1, 2, 80));

  RuleSet allow({}, RuleAction::kAllow);
  cc.rebuild(allow);
  expect_same(allow, cc, tcp_tuple(1, 2, 80));
  EXPECT_EQ(cc.match(tcp_tuple(1, 2, 80)).result.rules_traversed, 0);
}

TEST(CompiledClassifier, FirstMatchWinsOverShadowedRule) {
  RuleSet rs;
  Rule deny80;
  deny80.action = RuleAction::kDeny;
  deny80.dst_ports = PortRange{80, 80};
  rs.add(deny80);
  rs.add(allow_to_port(80));  // shadowed

  CompiledClassifier cc;
  cc.rebuild(rs);
  const auto cm = cc.match(tcp_tuple(1, 2, 80));
  EXPECT_EQ(cm.result.action, RuleAction::kDeny);
  EXPECT_EQ(cm.result.matched_index, 0);
  expect_same(rs, cc, tcp_tuple(1, 2, 80));
}

TEST(CompiledClassifier, TraversalCountersMatchLinearAtDepth) {
  for (const int depth : {1, 2, 8, 16, 32, 64}) {
    RuleSet rs;
    for (int i = 0; i < depth - 1; ++i) rs.add(never_matches(i));
    rs.add(allow_to_port(80));
    CompiledClassifier cc;
    cc.rebuild(rs);
    const auto cm = cc.match(tcp_tuple(1, 2, 80));
    EXPECT_EQ(cm.result.rules_traversed, depth);
    expect_same(rs, cc, tcp_tuple(1, 2, 80));
    // Miss (falls through to default): full-scan traversal cost.
    expect_same(rs, cc, tcp_tuple(1, 2, 81));
  }
}

TEST(CompiledClassifier, VpgPairCountsTwoUnits) {
  RuleSet rs;
  Rule vpg;
  vpg.action = RuleAction::kVpg;
  vpg.vpg_id = 7;
  vpg.src_net = net::Ipv4Address(192, 168, 1, 1);  // non-matching selectors
  vpg.src_prefix = 32;
  rs.add(vpg);
  rs.add(allow_to_port(80));

  CompiledClassifier cc;
  cc.rebuild(rs);
  const auto cm = cc.match(tcp_tuple(1, 2, 80));
  EXPECT_EQ(cm.result.rules_traversed, 3);  // 2 for the VPG pair + 1
  expect_same(rs, cc, tcp_tuple(1, 2, 80));
}

TEST(CompiledClassifier, BidirectionalRuleMatchesReversedTuple) {
  Rule r;
  r.action = RuleAction::kAllow;
  r.src_net = net::Ipv4Address(10, 0, 0, 30);
  r.src_prefix = 32;
  r.dst_net = net::Ipv4Address(10, 0, 0, 40);
  r.dst_prefix = 32;
  r.dst_ports = PortRange{80, 80};

  for (const bool bidir : {true, false}) {
    RuleSet rs;
    Rule rule = r;
    rule.bidirectional = bidir;
    rs.add(rule);
    CompiledClassifier cc;
    cc.rebuild(rs);
    // Forward direction always matches.
    expect_same(rs, cc, tcp_tuple(30, 40, 80));
    // Reverse direction (40 -> 30, sport 80) matches only when bidirectional.
    const auto back = tcp_tuple(40, 30, 9999, 80);
    EXPECT_EQ(cc.match(back).result.action,
              bidir ? RuleAction::kAllow : RuleAction::kDeny);
    expect_same(rs, cc, back);
  }
}

TEST(CompiledClassifier, PortRangeEdges) {
  Rule r;
  r.action = RuleAction::kAllow;
  r.dst_ports = PortRange{100, 200};
  RuleSet rs;
  rs.add(r);
  CompiledClassifier cc;
  cc.rebuild(rs);
  for (const std::uint16_t p : {99, 100, 150, 200, 201, 65535}) {
    expect_same(rs, cc, tcp_tuple(1, 2, p));
  }
  // hi == 65535 must not overflow the interval table.
  Rule top;
  top.action = RuleAction::kAllow;
  top.dst_ports = PortRange{65000, 65535};
  RuleSet rs2;
  rs2.add(top);
  cc.rebuild(rs2);
  for (const std::uint16_t p : {64999, 65000, 65535}) {
    expect_same(rs2, cc, tcp_tuple(1, 2, p));
  }
}

TEST(CompiledClassifier, EmptyPortRangeMatchesNothing) {
  // lo > hi (and not the 0..0 "any" form) is an unsatisfiable selector in
  // the linear matcher; the compiled table must agree, not wrap around.
  Rule r;
  r.action = RuleAction::kAllow;
  r.dst_ports = PortRange{200, 100};
  RuleSet rs;
  rs.add(r);
  rs.set_default_action(RuleAction::kDeny);
  CompiledClassifier cc;
  cc.rebuild(rs);
  for (const std::uint16_t p : {0, 100, 150, 200, 65535}) {
    expect_same(rs, cc, tcp_tuple(1, 2, p));
    EXPECT_EQ(cc.match(tcp_tuple(1, 2, p)).result.action, RuleAction::kDeny);
  }
}

TEST(CompiledClassifier, PrefixMaskingMatchesInSubnet) {
  // A rule whose network value has host bits set: in_subnet masks both
  // sides, so 10.0.3.7/24 covers all of 10.0.3.x.
  Rule r;
  r.action = RuleAction::kAllow;
  r.src_net = net::Ipv4Address(10, 0, 3, 7);
  r.src_prefix = 24;
  RuleSet rs;
  rs.add(r);
  CompiledClassifier cc;
  cc.rebuild(rs);
  expect_same(rs, cc, tcp_tuple(1, 2, 80));  // 10.0.0.1: outside
  net::FiveTuple in = tcp_tuple(1, 2, 80);
  in.src = net::Ipv4Address(10, 0, 3, 200);
  expect_same(rs, cc, in);
  EXPECT_EQ(cc.match(in).result.action, RuleAction::kAllow);
}

TEST(CompiledClassifier, VpgFrameResolvesByIdOnly) {
  RuleSet rs;
  Rule other;
  other.action = RuleAction::kVpg;
  other.vpg_id = 99;
  rs.add(other);
  Rule vpg;
  vpg.action = RuleAction::kVpg;
  vpg.vpg_id = 7;
  rs.add(vpg);
  CompiledClassifier cc;
  cc.rebuild(rs);

  net::IpEndpoints ep;
  ep.src_ip = net::Ipv4Address(10, 0, 0, 30);
  ep.dst_ip = net::Ipv4Address(10, 0, 0, 40);
  ep.src_mac = net::MacAddress::from_host_id(30);
  ep.dst_mac = net::MacAddress::from_host_id(40);
  std::vector<std::uint8_t> payload;
  ByteWriter w(payload);
  net::VpgHeader vh;
  vh.vpg_id = 7;
  vh.seq = 1;
  vh.orig_protocol = 6;
  vh.payload_len = 16;
  vh.serialize(w);
  w.zeros(16);
  const auto frame = net::build_ipv4_frame(ep, net::IpProtocol::kVpg, payload);
  auto view = net::FrameView::parse(frame);
  ASSERT_TRUE(view && view->vpg);

  const auto lin = rs.match(*view);
  const auto cm = cc.match(*view);
  EXPECT_EQ(cm.result.action, RuleAction::kVpg);
  EXPECT_EQ(cm.result.vpg_id, 7u);
  EXPECT_EQ(cm.result.rules_traversed, lin.rules_traversed);
  EXPECT_EQ(cm.result.matched_index, lin.matched_index);
  EXPECT_EQ(cm.nodes, 1);  // id lookup is a single decision node
}

TEST(CompiledClassifier, RandomCrossCheckAgainstLinear) {
  sim::Random rng(0xc1a551f1eeULL);
  for (int round = 0; round < 8; ++round) {
    RuleSet rs;
    const int n_rules = static_cast<int>(1 + rng.uniform(32));
    for (int i = 0; i < n_rules; ++i) {
      Rule r;
      const auto kind = rng.uniform(8);
      r.action = kind == 0  ? RuleAction::kVpg
                 : kind < 4 ? RuleAction::kDeny
                            : RuleAction::kAllow;
      if (r.action == RuleAction::kVpg) r.vpg_id = 1 + static_cast<std::uint32_t>(rng.uniform(4));
      if (rng.bernoulli(0.5)) r.protocol = rng.bernoulli(0.5) ? 6 : 17;
      if (rng.bernoulli(0.6)) {
        r.src_net = net::Ipv4Address(10, 0, static_cast<std::uint8_t>(rng.uniform(4)),
                                     static_cast<std::uint8_t>(rng.uniform(32)));
        r.src_prefix = static_cast<int>(8 + rng.uniform(25));
      }
      if (rng.bernoulli(0.6)) {
        r.dst_net = net::Ipv4Address(10, 0, static_cast<std::uint8_t>(rng.uniform(4)),
                                     static_cast<std::uint8_t>(rng.uniform(32)));
        r.dst_prefix = static_cast<int>(8 + rng.uniform(25));
      }
      if (rng.bernoulli(0.4)) {
        const auto lo = static_cast<std::uint16_t>(rng.uniform(1000));
        r.dst_ports = PortRange{lo, static_cast<std::uint16_t>(lo + rng.uniform(100))};
      }
      r.bidirectional = rng.bernoulli(0.5);
      rs.add(r);
    }
    rs.set_default_action(rng.bernoulli(0.5) ? RuleAction::kAllow : RuleAction::kDeny);
    CompiledClassifier cc;
    cc.rebuild(rs);

    for (int i = 0; i < 500; ++i) {
      net::FiveTuple t;
      t.src = net::Ipv4Address(10, 0, static_cast<std::uint8_t>(rng.uniform(4)),
                               static_cast<std::uint8_t>(rng.uniform(32)));
      t.dst = net::Ipv4Address(10, 0, static_cast<std::uint8_t>(rng.uniform(4)),
                               static_cast<std::uint8_t>(rng.uniform(32)));
      t.src_port = static_cast<std::uint16_t>(rng.uniform(1200));
      t.dst_port = static_cast<std::uint16_t>(rng.uniform(1200));
      t.protocol = rng.bernoulli(0.5) ? 6 : 17;
      expect_same(rs, cc, t);
    }
  }
}

TEST(CompiledClassifier, RebuildReplacesStructure) {
  RuleSet first;
  first.add(allow_to_port(80));
  first.set_default_action(RuleAction::kDeny);
  CompiledClassifier cc;
  cc.rebuild(first);
  EXPECT_EQ(cc.match(tcp_tuple(1, 2, 80)).result.action, RuleAction::kAllow);
  EXPECT_EQ(cc.stats().rebuilds, 1u);
  EXPECT_EQ(cc.stats().rules, 1u);

  RuleSet second;
  Rule deny80;
  deny80.action = RuleAction::kDeny;
  deny80.dst_ports = PortRange{80, 80};
  second.add(deny80);
  second.set_default_action(RuleAction::kAllow);
  cc.rebuild(second);
  EXPECT_EQ(cc.match(tcp_tuple(1, 2, 80)).result.action, RuleAction::kDeny);
  EXPECT_EQ(cc.match(tcp_tuple(1, 2, 81)).result.action, RuleAction::kAllow);
  EXPECT_EQ(cc.stats().rebuilds, 2u);
  EXPECT_GT(cc.stats().memory_bytes, 0u);
}

TEST(CompiledClassifier, NodesGrowSubLinearlyWithDepth) {
  // The counterfactual claim in one assert: deepening the rule-set 64x
  // (64 -> 4096) must grow lookup nodes by far less than 64x.
  auto nodes_at = [](int depth) {
    RuleSet rs;
    for (int i = 0; i < depth - 1; ++i) {
      Rule r;
      r.action = RuleAction::kDeny;
      r.protocol = 17;
      r.dst_ports = PortRange{static_cast<std::uint16_t>(10000 + i),
                              static_cast<std::uint16_t>(10000 + i)};
      r.bidirectional = false;
      rs.add(r);
    }
    rs.add(allow_to_port(80));
    CompiledClassifier cc;
    cc.rebuild(rs);
    return cc.match(tcp_tuple(1, 2, 80)).nodes;
  };
  const int shallow = nodes_at(64);
  const int deep = nodes_at(4096);
  EXPECT_LT(deep, shallow * 16);
  EXPECT_LT(deep, 4096 / 4);
}

TEST(CompiledClassifier, NicInstallRebuildsAndReportsStats) {
  sim::Simulation sim(1);
  auto profile = with_backend(adf_profile(), MatchBackend::kCompiled);
  EXPECT_EQ(profile.match_backend, MatchBackend::kCompiled);
  EXPECT_NE(profile.name.find("+compiled"), std::string::npos);
  FirewallNic nic(sim, net::MacAddress::from_host_id(40), "test/adf", profile);

  RuleSet rs;
  rs.add(allow_to_port(80));
  nic.install_rule_set(rs);
  EXPECT_EQ(nic.compiled_classifier().stats().rules, 1u);
  EXPECT_GE(nic.match_stats().rebuilds, 1u);
}

}  // namespace
}  // namespace barb::firewall
