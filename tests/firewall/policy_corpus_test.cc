#include "firewall/policygen/policy_corpus.h"

#include <gtest/gtest.h>

#include "firewall/policy.h"

namespace barb::firewall::policygen {
namespace {

// Acceptance gate for the corpus tooling (ISSUE 10): the analyzer must
// detect 100% of generator-injected error instances across >= 50 generated
// corpora, and report zero error-class findings on clean corpora (false
// positives counted honestly — the clean-by-construction filter and the
// analyzer share the same pairwise coverage predicate, so the expected FP
// count is exactly zero; conflict warnings are legitimate and tracked
// separately).

TEST(PolicyCorpus, SameSeedSameCorpus) {
  CorpusSpec spec;
  spec.rules = 120;
  spec.shadowed = 2;
  spec.stale = 1;
  PolicyCorpusGenerator a(42), b(42), c(43);
  const auto ca = a.generate(spec);
  const auto cb = b.generate(spec);
  EXPECT_EQ(ca.rules.to_string(), cb.rules.to_string());
  EXPECT_EQ(ca.injected.size(), cb.injected.size());
  EXPECT_NE(ca.rules.to_string(), c.generate(spec).rules.to_string());
}

TEST(PolicyCorpus, CleanCorporaHaveZeroErrorFindings) {
  std::uint64_t false_positives = 0;
  std::uint64_t conflict_warnings = 0;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    PolicyCorpusGenerator gen(seed);
    CorpusSpec spec;
    spec.rules = 30 + static_cast<int>(seed) * 14;  // 30..366
    const auto corpus = gen.generate(spec);
    ASSERT_EQ(corpus.rules.size(), static_cast<std::size_t>(spec.rules));
    const auto report = RuleSetAnalyzer::analyze(corpus.rules);
    false_positives += report.error_count();
    conflict_warnings += report.warning_count();
    EXPECT_EQ(report.error_count(), 0u)
        << "seed " << seed << ": " << report.to_string();
  }
  EXPECT_EQ(false_positives, 0u);
  // Crossing overlaps are part of realistic shape; just record that some
  // corpora have them without asserting a count.
  (void)conflict_warnings;
}

TEST(PolicyCorpus, EveryInjectedErrorDetectedAcross50Corpora) {
  int total_injected = 0;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    PolicyCorpusGenerator gen(1000 + seed);
    CorpusSpec spec;
    spec.shape = seed % 7 == 6 ? CorpusShape::kHeavyVpg : CorpusShape::kRealistic;
    spec.rules = 25 + static_cast<int>(seed % 10) * 40;  // 25..385
    spec.shadowed = 1 + static_cast<int>(seed % 3);
    spec.redundant = static_cast<int>(seed % 3);
    spec.stale = 1 + static_cast<int>(seed % 2);
    spec.any_any = static_cast<int>(seed % 2);
    spec.conflicts = static_cast<int>(seed % 3);
    const auto corpus = gen.generate(spec);
    ASSERT_GE(corpus.injected.size(), 2u) << corpus.summary();
    total_injected += static_cast<int>(corpus.injected.size());

    const auto report = RuleSetAnalyzer::analyze(corpus.rules);
    const auto outcome = check_detection(corpus, report);
    EXPECT_TRUE(outcome.all_detected()) << [&] {
      std::string msg = corpus.summary() + " — missed:";
      for (const auto& e : outcome.missed) {
        msg += " " + std::string(to_string(e.kind)) + "@" +
               std::to_string(e.rule_index);
      }
      return msg;
    }();
  }
  EXPECT_GE(total_injected, 150);
}

TEST(PolicyCorpus, DeepCorpusInjectionDetected) {
  // One Wool-tail corpus at the depth end the paper's fig2 cares about.
  PolicyCorpusGenerator gen(7);
  CorpusSpec spec;
  spec.shape = CorpusShape::kMaxDepth;
  spec.rules = 1200;
  spec.shadowed = 3;
  spec.redundant = 2;
  spec.stale = 2;
  spec.any_any = 1;
  spec.conflicts = 2;
  const auto corpus = gen.generate(spec);
  EXPECT_EQ(corpus.rules.size(), 1200u + 10u + 2u);  // pairs insert two rules
  const auto report = RuleSetAnalyzer::analyze(corpus.rules);
  const auto outcome = check_detection(corpus, report);
  EXPECT_TRUE(outcome.all_detected());
  EXPECT_EQ(outcome.injected, 10);
}

TEST(PolicyCorpus, CorporaRoundTripThroughPolicyDsl) {
  // Policies travel to agents as DSL text (RuleSet::to_string ->
  // parse_policy); every generated corpus must survive that unchanged.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    PolicyCorpusGenerator gen(300 + seed);
    CorpusSpec spec;
    spec.rules = 80;
    spec.shadowed = 1;
    spec.redundant = 1;
    spec.stale = 1;
    spec.any_any = 1;
    spec.conflicts = 1;
    const auto corpus = gen.generate(spec);
    const std::string text = corpus.rules.to_string();
    const auto parsed = parse_policy(text);
    ASSERT_TRUE(parsed.ok())
        << "seed " << seed << ": " << (parsed.error ? parsed.error->message : "");
    EXPECT_EQ(parsed.rule_set->size(), corpus.rules.size());
    EXPECT_EQ(parsed.rule_set->to_string(), text) << "seed " << seed;
  }
}

TEST(PolicyCorpus, UniverseTuplesExerciseTheRules) {
  PolicyCorpusGenerator gen(11);
  CorpusSpec spec;
  spec.rules = 200;
  const auto corpus = gen.generate(spec);
  int matched = 0;
  for (int i = 0; i < 2000; ++i) {
    if (corpus.rules.match(gen.random_universe_tuple()).matched_index >= 0) {
      ++matched;
    }
  }
  // Traffic drawn from the rule universe must actually land in rules — the
  // point of sharing the address universe. (Synthetic uniform tuples over
  // the whole 32-bit space would almost never hit.)
  EXPECT_GT(matched, 200);
}

TEST(PolicyCorpus, WoolSizeDistributionSpansTensToThousands) {
  sim::Random rng(99);
  int lo = 1 << 30, hi = 0;
  for (int i = 0; i < 400; ++i) {
    const int n = PolicyCorpusGenerator::draw_rule_count(rng);
    lo = std::min(lo, n);
    hi = std::max(hi, n);
    ASSERT_GE(n, 10);
    ASSERT_LE(n, 2500);
  }
  EXPECT_LT(lo, 61);    // small-office policies exist
  EXPECT_GT(hi, 800);   // and so does the long tail
}

TEST(PolicyCorpus, DirtyShapesGenerateAndAnalyzeWithoutInjection) {
  PolicyCorpusGenerator gen(5);
  CorpusSpec spec;
  spec.shape = CorpusShape::kAllAnyAny;
  spec.any_any = 3;  // must be ignored: ground truth is ambiguous here
  const auto pile = gen.generate(spec);
  EXPECT_TRUE(pile.injected.empty());
  EXPECT_GE(pile.rules.size(), 40u);
  const auto pile_report = RuleSetAnalyzer::analyze(pile.rules);
  // A wildcard pile is saturated with dead rules by construction.
  EXPECT_GT(pile_report.error_count(), 0u);

  spec.shape = CorpusShape::kAdversarialOverlap;
  const auto adv = gen.generate(spec);
  EXPECT_TRUE(adv.injected.empty());
  const auto adv_report = RuleSetAnalyzer::analyze(adv.rules);
  EXPECT_EQ(adv_report.rules, adv.rules.size());
}

TEST(PolicyCorpus, HeavyVpgShapeIsVpgDominated) {
  PolicyCorpusGenerator gen(21);
  CorpusSpec spec;
  spec.shape = CorpusShape::kHeavyVpg;
  spec.rules = 150;
  const auto corpus = gen.generate(spec);
  int vpg = 0;
  for (const Rule& r : corpus.rules.rules()) {
    if (r.action == RuleAction::kVpg) ++vpg;
  }
  EXPECT_GT(vpg, 60);
  // VPG rules must survive the DSL round trip (no protocol/oneway tokens).
  const auto parsed = parse_policy(corpus.rules.to_string());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.rule_set->to_string(), corpus.rules.to_string());
}

}  // namespace
}  // namespace barb::firewall::policygen
