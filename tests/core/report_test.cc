#include "core/report.h"

#include <gtest/gtest.h>

namespace barb::core {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable table({"Firewall", "Mbps"});
  table.add_row({"EFW", "51.7"});
  table.add_row({"ADF (VPG)", "55.4"});
  const auto text = table.to_string();

  // Every line has the same width.
  std::size_t width = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const auto nl = text.find('\n', pos);
    const auto len = nl - pos;
    if (width == 0) width = len;
    EXPECT_EQ(len, width);
    pos = nl + 1;
  }
  EXPECT_NE(text.find("| EFW"), std::string::npos);
  EXPECT_NE(text.find("| Mbps"), std::string::npos);
  EXPECT_NE(text.find("+-"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable table({"depth", "mbps"});
  table.add_row({"1", "94.9"});
  table.add_row({"64", "51.7"});
  EXPECT_EQ(table.to_csv(), "depth,mbps\n1,94.9\n64,51.7\n");
}

TEST(TextTable, EmptyTableStillRenders) {
  TextTable table({"a"});
  EXPECT_NE(table.to_string().find("| a |"), std::string::npos);
  EXPECT_EQ(table.to_csv(), "a\n");
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(94.912), "94.9");
  EXPECT_EQ(fmt_int(4499.7), "4500");
  EXPECT_EQ(fmt_int(0.2), "0");
}

}  // namespace
}  // namespace barb::core
