#include "core/testbed.h"

#include <gtest/gtest.h>

#include "firewall/policy.h"
#include "stack/udp.h"

namespace barb::core {
namespace {

TEST(Testbed, BuildsFigureOneTopology) {
  sim::Simulation sim(1);
  TestbedConfig cfg;
  Testbed tb(sim, cfg);

  EXPECT_EQ(tb.ethernet_switch().num_ports(), 4);
  EXPECT_EQ(tb.policy_host().ip(), tb.addresses().policy_server);
  EXPECT_EQ(tb.attacker().ip(), tb.addresses().attacker);
  EXPECT_EQ(tb.client().ip(), tb.addresses().client);
  EXPECT_EQ(tb.target().ip(), tb.addresses().target);
  EXPECT_EQ(tb.target_firewall(), nullptr);
  EXPECT_EQ(tb.software_firewall(), nullptr);

  // Every host can reach every other (ARP + switch learning + stacks).
  auto* s = tb.target().udp_open(9999);
  int received = 0;
  s->set_receiver([&](net::Ipv4Address, std::uint16_t, std::span<const std::uint8_t>) {
    ++received;
  });
  const std::vector<std::uint8_t> data{1, 2, 3};
  auto* c = tb.client().udp_open(0);
  c->send_to(tb.addresses().target, 9999, data);
  auto* a = tb.attacker().udp_open(0);
  a->send_to(tb.addresses().target, 9999, data);
  sim.run();
  EXPECT_EQ(received, 2);
}

TEST(Testbed, EfwTargetGetsFirewallNic) {
  sim::Simulation sim(1);
  TestbedConfig cfg;
  cfg.firewall = FirewallKind::kEfw;
  cfg.action_rule_depth = 8;
  Testbed tb(sim, cfg);

  ASSERT_NE(tb.target_firewall(), nullptr);
  EXPECT_EQ(tb.target_firewall()->profile().name, "EFW");
  // Depth 8 => 8 rules in the installed set (7 padding + action).
  EXPECT_EQ(tb.target_firewall()->rule_set().size(), 8u);
  EXPECT_EQ(tb.target_firewall()->rule_set().total_cost_units(), 8);
}

TEST(Testbed, AdfVpgConfiguresBothEnds) {
  sim::Simulation sim(1);
  TestbedConfig cfg;
  cfg.firewall = FirewallKind::kAdfVpg;
  cfg.action_rule_depth = 3;
  Testbed tb(sim, cfg);

  ASSERT_NE(tb.target_firewall(), nullptr);
  EXPECT_EQ(tb.target_firewall()->profile().name, "ADF");
  // 3 VPGs: 2 padding + 1 matching; cost 6 units.
  EXPECT_EQ(tb.target_firewall()->rule_set().size(), 3u);
  EXPECT_EQ(tb.target_firewall()->rule_set().total_cost_units(), 6);
  EXPECT_TRUE(tb.target_firewall()->vpg_table().has(kExperimentVpgId));
  // VPG hosts reduce MSS to fit encapsulation.
  EXPECT_EQ(tb.target().config().mss, 1460 - 32);
  EXPECT_EQ(tb.client().config().mss, 1460 - 32);
}

TEST(Testbed, IptablesInstallsHostFilter) {
  sim::Simulation sim(1);
  TestbedConfig cfg;
  cfg.firewall = FirewallKind::kIptables;
  cfg.action_rule_depth = 16;
  Testbed tb(sim, cfg);
  ASSERT_NE(tb.software_firewall(), nullptr);
  EXPECT_EQ(tb.software_firewall()->rule_set().size(), 16u);
  EXPECT_EQ(tb.target_firewall(), nullptr);
}

TEST(Testbed, PolicyTextMatchesDepthSemantics) {
  TestbedConfig cfg;
  cfg.firewall = FirewallKind::kEfw;
  cfg.action_rule_depth = 4;
  TestbedAddresses addr;
  const auto text = make_target_policy(cfg, addr);
  auto parsed = firewall::parse_policy(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.rule_set->size(), 4u);

  // Experiment traffic (client -> target TCP) must match the 4th rule.
  net::FiveTuple t;
  t.src = addr.client;
  t.dst = addr.target;
  t.src_port = 40000;
  t.dst_port = 5001;
  t.protocol = 6;
  const auto m = parsed.rule_set->match(t);
  EXPECT_EQ(m.action, firewall::RuleAction::kAllow);
  EXPECT_EQ(m.rules_traversed, 4);
}

TEST(Testbed, DenyPolicyDeniesFloodAllowsRest) {
  TestbedConfig cfg;
  cfg.firewall = FirewallKind::kAdf;
  cfg.action_rule_depth = 8;
  cfg.flood_action = firewall::RuleAction::kDeny;
  TestbedAddresses addr;
  auto parsed = firewall::parse_policy(make_target_policy(cfg, addr));
  ASSERT_TRUE(parsed.ok());

  net::FiveTuple flood;
  flood.src = addr.attacker;
  flood.dst = addr.target;
  flood.src_port = 4000;
  flood.dst_port = kFloodPort;
  flood.protocol = 6;
  const auto fm = parsed.rule_set->match(flood);
  EXPECT_EQ(fm.action, firewall::RuleAction::kDeny);
  EXPECT_EQ(fm.rules_traversed, 8);

  net::FiveTuple iperf;
  iperf.src = addr.client;
  iperf.dst = addr.target;
  iperf.src_port = 40000;
  iperf.dst_port = 5001;
  iperf.protocol = 6;
  const auto im = parsed.rule_set->match(iperf);
  EXPECT_EQ(im.action, firewall::RuleAction::kAllow);
  EXPECT_EQ(im.rules_traversed, 9);  // one past the deny rule
}

TEST(Testbed, PaddingRulesNeverMatchExperimentTraffic) {
  TestbedConfig cfg;
  cfg.firewall = FirewallKind::kEfw;
  cfg.action_rule_depth = 64;
  TestbedAddresses addr;
  auto parsed = firewall::parse_policy(make_target_policy(cfg, addr));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.rule_set->size(), 64u);

  // All testbed endpoints and ports hit only the final action rule.
  for (auto src : {addr.policy_server, addr.attacker, addr.client, addr.target}) {
    for (std::uint16_t port : {std::uint16_t{80}, std::uint16_t{5001}, kFloodPort}) {
      net::FiveTuple t;
      t.src = src;
      t.dst = addr.target;
      t.src_port = 12345;
      t.dst_port = port;
      t.protocol = 6;
      const auto m = parsed.rule_set->match(t);
      EXPECT_EQ(m.rules_traversed, 64) << src.to_string() << ":" << port;
      EXPECT_EQ(m.action, firewall::RuleAction::kAllow);
    }
  }
}

TEST(Testbed, DirectAndManagedPoliciesAgree) {
  // The policy text installed directly must equal what the server pushes.
  TestbedConfig direct;
  direct.firewall = FirewallKind::kAdf;
  direct.action_rule_depth = 16;
  sim::Simulation sim1(1);
  Testbed tb1(sim1, direct);

  TestbedConfig managed = direct;
  managed.use_policy_server = true;
  sim::Simulation sim2(1);
  Testbed tb2(sim2, managed);
  tb2.settle();

  EXPECT_EQ(tb1.target_policy_text(), tb2.target_policy_text());
  EXPECT_EQ(tb1.target_firewall()->rule_set().to_string(),
            tb2.target_firewall()->rule_set().to_string());
}

TEST(Testbed, SettleIsNoopInDirectMode) {
  sim::Simulation sim(1);
  TestbedConfig cfg;
  cfg.firewall = FirewallKind::kEfw;
  Testbed tb(sim, cfg);
  tb.settle();
  EXPECT_EQ(sim.now(), sim::TimePoint::origin());
}

}  // namespace
}  // namespace barb::core
