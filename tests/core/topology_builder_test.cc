// TopologyBuilder and the fabric presets: deterministic construction,
// fabric invariants (routes, switch/host counts, shared directory), actual
// cross-fabric reachability, and the Testbed preset's wiring equivalence.
#include "core/topology.h"

#include <gtest/gtest.h>

#include <string>

#include "apps/ping.h"
#include "core/testbed.h"
#include "sim/simulation.h"

namespace barb::core {
namespace {

// A compact wiring digest: anything that should be a pure function of the
// spec (names, addresses, attachment, routing) folded into one string.
std::string wiring_digest(Fabric& fabric) {
  std::string digest;
  for (int i = 0; i < fabric.num_hosts(); ++i) {
    digest += fabric.host(i).name() + "/" + fabric.host(i).ip().to_string() +
              "/" + fabric.host(i).mac().to_string() + "@" +
              std::to_string(fabric.host_switch(i)) + ";";
  }
  for (int s = 0; s < fabric.num_switches(); ++s) {
    link::Switch& sw = fabric.fabric_switch(s);
    digest += sw.name() + ":" + std::to_string(sw.num_ports()) + ":" +
              std::to_string(sw.fib_size()) + ";";
    // Route rows: every host's egress port out of this switch.
    for (int h = 0; h < fabric.num_hosts(); ++h) {
      digest += std::to_string(sw.lookup(fabric.host(h).mac())) + ",";
    }
    digest += ";";
  }
  return digest;
}

TEST(TopologyBuilder, LeafSpineSameSpecSameWiring) {
  LeafSpineSpec spec;
  spec.hosts = 48;
  spec.hosts_per_leaf = 8;
  spec.spines = 3;

  sim::Simulation sim_a(1), sim_b(2);  // wiring must not depend on the seed
  auto a = build_leaf_spine(sim_a, spec);
  auto b = build_leaf_spine(sim_b, spec);
  EXPECT_EQ(wiring_digest(*a), wiring_digest(*b));
}

TEST(TopologyBuilder, LeafSpineInvariants) {
  LeafSpineSpec spec;
  spec.hosts = 40;  // deliberately not a multiple of hosts_per_leaf
  spec.hosts_per_leaf = 16;
  spec.spines = 2;
  sim::Simulation sim(1);
  auto fabric = build_leaf_spine(sim, spec);

  EXPECT_EQ(fabric->num_hosts(), 40);
  // ceil(40/16)=3 leaves + 2 spines.
  EXPECT_EQ(fabric->num_switches(), 5);
  EXPECT_TRUE(fabric->all_hosts_routed());
  ASSERT_NE(fabric->directory(), nullptr);
  EXPECT_TRUE(fabric->directory()->frozen());
  EXPECT_EQ(fabric->directory()->size(), 40u);

  // Port degrees: each spine has one trunk per leaf; each leaf has one trunk
  // per spine plus its hosts.
  EXPECT_EQ(fabric->fabric_switch(0).num_ports(), 3);  // spine0: 3 leaves
  EXPECT_EQ(fabric->fabric_switch(1).num_ports(), 3);
  EXPECT_EQ(fabric->fabric_switch(2).num_ports(), 2 + 16);  // leaf0
  EXPECT_EQ(fabric->fabric_switch(3).num_ports(), 2 + 16);  // leaf1
  EXPECT_EQ(fabric->fabric_switch(4).num_ports(), 2 + 8);   // leaf2: remainder

  // Hosts land on their leaf in declaration order.
  EXPECT_EQ(fabric->host_switch(0), 2);
  EXPECT_EQ(fabric->host_switch(15), 2);
  EXPECT_EQ(fabric->host_switch(16), 3);
  EXPECT_EQ(fabric->host_switch(39), 4);

  // Fabric switches must not learn or flood (redundant paths).
  EXPECT_FALSE(fabric->fabric_switch(0).config().learning);
  EXPECT_FALSE(fabric->fabric_switch(0).config().flood_unknown);
}

TEST(TopologyBuilder, CampusTreeInvariants) {
  CampusTreeSpec spec;
  spec.hosts = 20;
  spec.hosts_per_edge = 8;
  sim::Simulation sim(1);
  auto fabric = build_campus_tree(sim, spec);

  EXPECT_EQ(fabric->num_hosts(), 20);
  EXPECT_EQ(fabric->num_switches(), 1 + 3);  // core + ceil(20/8) edges
  EXPECT_TRUE(fabric->all_hosts_routed());
  EXPECT_EQ(fabric->fabric_switch(0).num_ports(), 3);  // core: one per edge
}

TEST(TopologyBuilder, CrossFabricPingWorks) {
  LeafSpineSpec spec;
  spec.hosts = 32;
  spec.hosts_per_leaf = 8;
  spec.spines = 2;
  sim::Simulation sim(1);
  auto fabric = build_leaf_spine(sim, spec);

  // Host 0 (leaf 0) pings host 31 (last leaf) across the spine.
  apps::PingClient ping(fabric->host(0), fabric->host(31).ip());
  apps::PingResult result;
  ping.run(5, [&](apps::PingResult r) { result = r; },
           sim::Duration::milliseconds(10));
  sim.run();
  EXPECT_EQ(result.sent, 5u);
  EXPECT_EQ(result.received, 5u);
  EXPECT_EQ(result.loss_fraction, 0.0);
}

TEST(TopologyBuilder, MemoryAuditCoversEveryHost) {
  LeafSpineSpec spec;
  spec.hosts = 64;
  spec.default_nic.kind = FirewallKind::kAdf;
  sim::Simulation sim(1);
  auto fabric = build_leaf_spine(sim, spec);

  const MemoryAudit audit = fabric->memory_audit();
  EXPECT_EQ(audit.hosts, 64u);
  EXPECT_GT(audit.directory_bytes, 0u);
  EXPECT_GT(audit.switch_fib_bytes, 0u);
  EXPECT_GT(audit.host_object_bytes, 0u);
  EXPECT_GT(audit.per_host_bytes(), 0u);

  // Shared directory: per-host private ARP stays O(1), independent of fleet
  // size (a full mesh would grow it linearly with the host count).
  LeafSpineSpec small = spec;
  small.hosts = 16;
  sim::Simulation sim_small(1);
  auto fabric_small = build_leaf_spine(sim_small, small);
  EXPECT_EQ(audit.arp_private_bytes / 64,
            fabric_small->memory_audit().arp_private_bytes / 16);
}

TEST(TopologyBuilder, PerHostNicProfilesApply) {
  LeafSpineSpec spec;
  spec.hosts = 8;
  spec.nic_for = [](int index) {
    NicSpec nic;
    nic.kind = index % 2 == 0 ? FirewallKind::kEfw : FirewallKind::kNone;
    return nic;
  };
  sim::Simulation sim(1);
  auto fabric = build_leaf_spine(sim, spec);
  for (int i = 0; i < 8; ++i) {
    if (i % 2 == 0) {
      EXPECT_NE(fabric->firewall(i), nullptr) << "host " << i;
    } else {
      EXPECT_EQ(fabric->firewall(i), nullptr) << "host " << i;
    }
  }
}

TEST(TopologyBuilder, FleetMetricsRegisterAndSample) {
  LeafSpineSpec spec;
  spec.hosts = 16;
  sim::Simulation sim(1);
  telemetry::MetricRegistry registry;
  auto fabric = build_leaf_spine(sim, spec);
  fabric->register_fleet_metrics(registry);
  EXPECT_EQ(registry.value("fleet.hosts"), 16.0);
  EXPECT_GT(registry.value("mem.per_host_bytes"), 0.0);
  EXPECT_GT(registry.value("mem.total_bytes"), 0.0);
  EXPECT_GT(registry.value("switch.fib_entries", "switch=spine0"), 0.0);
}

// The Testbed preset must still wire the paper's Figure 1 exactly: four
// hosts in the legacy order on one switch, legacy addresses and labels.
TEST(TopologyBuilder, TestbedPresetKeepsLegacyWiring) {
  sim::Simulation sim(1);
  TestbedConfig config;
  config.firewall = FirewallKind::kAdf;
  Testbed testbed(sim, config);

  Fabric& fabric = testbed.fabric();
  EXPECT_EQ(fabric.num_switches(), 1);
  EXPECT_EQ(fabric.num_hosts(), 4);
  EXPECT_EQ(fabric.host(0).name(), "policy");
  EXPECT_EQ(fabric.host(1).name(), "attacker");
  EXPECT_EQ(fabric.host(2).name(), "client");
  EXPECT_EQ(fabric.host(3).name(), "target");
  EXPECT_EQ(&testbed.policy_host(), &fabric.host(0));
  EXPECT_EQ(&testbed.target(), &fabric.host(3));
  EXPECT_EQ(testbed.target_firewall(), fabric.firewall(3));
  // The preset keeps the legacy full-mesh ARP: no shared directory.
  EXPECT_EQ(fabric.directory(), nullptr);
  // The testbed switch keeps the classic learning/flooding behaviour.
  EXPECT_TRUE(testbed.ethernet_switch().config().learning);
  EXPECT_TRUE(testbed.ethernet_switch().config().flood_unknown);
}

}  // namespace
}  // namespace barb::core
