// Integration tests over the experiment harness: small-scale versions of the
// paper's experiments, asserting the qualitative results the paper reports.
#include "apps/iperf.h"
#include "core/experiments.h"

#include <gtest/gtest.h>

namespace barb::core {
namespace {

MeasurementOptions fast_options() {
  MeasurementOptions opt;
  opt.window = sim::Duration::milliseconds(600);
  opt.repetitions = 1;
  opt.flood_warmup = sim::Duration::milliseconds(200);
  return opt;
}

TEST(BandwidthExperiment, BaselineIsLineRate) {
  TestbedConfig cfg;
  const auto p = measure_available_bandwidth(cfg, fast_options());
  EXPECT_GT(p.mean(), 90.0);
  EXPECT_LT(p.mean(), 95.2);
}

TEST(BandwidthExperiment, ShallowRuleSetsCostNothing) {
  for (auto kind : {FirewallKind::kEfw, FirewallKind::kAdf, FirewallKind::kIptables}) {
    TestbedConfig cfg;
    cfg.firewall = kind;
    cfg.action_rule_depth = 8;
    const auto p = measure_available_bandwidth(cfg, fast_options());
    EXPECT_GT(p.mean(), 90.0) << to_string(kind);
  }
}

TEST(BandwidthExperiment, DeepRuleSetsHurtNicFirewallsOnly) {
  MeasurementOptions opt = fast_options();
  TestbedConfig efw;
  efw.firewall = FirewallKind::kEfw;
  efw.action_rule_depth = 64;
  const double efw_mbps = measure_available_bandwidth(efw, opt).mean();

  TestbedConfig adf = efw;
  adf.firewall = FirewallKind::kAdf;
  const double adf_mbps = measure_available_bandwidth(adf, opt).mean();

  TestbedConfig ipt = efw;
  ipt.firewall = FirewallKind::kIptables;
  const double ipt_mbps = measure_available_bandwidth(ipt, opt).mean();

  // Paper: EFW ~50 Mbps, ADF ~33 Mbps, iptables unaffected.
  EXPECT_GT(efw_mbps, 42.0);
  EXPECT_LT(efw_mbps, 58.0);
  EXPECT_GT(adf_mbps, 27.0);
  EXPECT_LT(adf_mbps, 39.0);
  EXPECT_GT(ipt_mbps, 90.0);
  EXPECT_LT(adf_mbps, efw_mbps);
}

TEST(BandwidthExperiment, VpgCostsBandwidthButExtraVpgsAreFree) {
  MeasurementOptions opt = fast_options();
  TestbedConfig one;
  one.firewall = FirewallKind::kAdfVpg;
  one.action_rule_depth = 1;
  const double one_vpg = measure_available_bandwidth(one, opt).mean();

  TestbedConfig four = one;
  four.action_rule_depth = 4;
  const double four_vpgs = measure_available_bandwidth(four, opt).mean();

  // Significant drop vs. line rate; nearly flat in the number of
  // non-matching VPGs ("the ADF is able to avoid decrypting incoming
  // packets until they reach the matching VPG rule").
  EXPECT_LT(one_vpg, 65.0);
  EXPECT_GT(one_vpg, 45.0);
  EXPECT_GT(four_vpgs, one_vpg * 0.80);
}

TEST(FloodExperiment, NicFirewallDiesWhereBaselineSurvives) {
  MeasurementOptions opt = fast_options();
  FloodSpec flood;
  flood.rate_pps = 50000;

  TestbedConfig none;
  const double baseline = measure_bandwidth_under_flood(none, flood, opt).mean();

  TestbedConfig efw;
  efw.firewall = FirewallKind::kEfw;
  const double efw_mbps = measure_bandwidth_under_flood(efw, flood, opt).mean();

  // Paper: the standard NIC keeps most of the residual bandwidth; the EFW
  // drops to ~0.
  EXPECT_GT(baseline, 50.0);
  EXPECT_LT(efw_mbps, 5.0);
}

TEST(FloodExperiment, ModerateFloodDegradesGracefully) {
  MeasurementOptions opt = fast_options();
  FloodSpec flood;
  flood.rate_pps = 25000;
  TestbedConfig efw;
  efw.firewall = FirewallKind::kEfw;
  const double mbps = measure_bandwidth_under_flood(efw, flood, opt).mean();
  EXPECT_GT(mbps, 20.0);  // degraded but alive below saturation
  EXPECT_LT(mbps, 90.0);
}

TEST(MinFloodSearch, FindsDosRateForEfw) {
  MeasurementOptions opt = fast_options();
  TestbedConfig efw;
  efw.firewall = FirewallKind::kEfw;
  efw.action_rule_depth = 1;
  FloodSpec flood;  // UDP minimum-size flood
  MinFloodSearchOptions search;
  search.precision = 1.3;  // coarse for test speed

  const auto result = find_min_dos_flood_rate(efw, flood, opt, search);
  ASSERT_TRUE(result.rate_pps.has_value());
  // Paper: ~45 kpps (30% of the maximum frame rate) for the one-rule set.
  EXPECT_GT(*result.rate_pps, 30000.0);
  EXPECT_LT(*result.rate_pps, 65000.0);
  EXPECT_GT(result.probes, 3);
}

TEST(MinFloodSearch, BaselineSurvivesEverything) {
  MeasurementOptions opt = fast_options();
  TestbedConfig none;
  FloodSpec flood;
  MinFloodSearchOptions search;
  search.precision = 1.3;
  const auto result = find_min_dos_flood_rate(none, flood, opt, search);
  EXPECT_FALSE(result.rate_pps.has_value());
  EXPECT_FALSE(result.lockup_observed);
}

TEST(MinFloodSearch, DeeperRuleSetsLowerTheBar) {
  MeasurementOptions opt = fast_options();
  FloodSpec flood;
  flood.type = apps::FloodType::kTcpData;
  MinFloodSearchOptions search;
  search.precision = 1.25;

  auto rate_at_depth = [&](int depth) {
    TestbedConfig cfg;
    cfg.firewall = FirewallKind::kAdf;
    cfg.action_rule_depth = depth;
    const auto r = find_min_dos_flood_rate(cfg, flood, opt, search);
    EXPECT_TRUE(r.rate_pps.has_value()) << "depth " << depth;
    return r.rate_pps.value_or(0);
  };

  const double at_1 = rate_at_depth(1);
  const double at_64 = rate_at_depth(64);
  EXPECT_GT(at_1, 2.5 * at_64);  // paper: from tens of kpps down to ~4.5k
  EXPECT_LT(at_64, 8000.0);
}

TEST(MinFloodSearch, DenyingTheFloodRoughlyDoublesTolerance) {
  MeasurementOptions opt = fast_options();
  FloodSpec flood;
  flood.type = apps::FloodType::kTcpData;
  MinFloodSearchOptions search;
  search.precision = 1.15;

  TestbedConfig allow;
  allow.firewall = FirewallKind::kAdf;
  allow.action_rule_depth = 32;
  const auto allow_rate = find_min_dos_flood_rate(allow, flood, opt, search);

  TestbedConfig deny = allow;
  deny.flood_action = firewall::RuleAction::kDeny;
  const auto deny_rate = find_min_dos_flood_rate(deny, flood, opt, search);

  ASSERT_TRUE(allow_rate.rate_pps && deny_rate.rate_pps);
  const double factor = *deny_rate.rate_pps / *allow_rate.rate_pps;
  EXPECT_GT(factor, 1.5);
  EXPECT_LT(factor, 2.6);
}

TEST(MinFloodSearch, EfwDenyFloodLocksTheCard) {
  MeasurementOptions opt = fast_options();
  FloodSpec flood;
  flood.type = apps::FloodType::kTcpData;
  TestbedConfig cfg;
  cfg.firewall = FirewallKind::kEfw;
  cfg.action_rule_depth = 8;
  cfg.flood_action = firewall::RuleAction::kDeny;
  MinFloodSearchOptions search;
  search.precision = 1.3;

  const auto result = find_min_dos_flood_rate(cfg, flood, opt, search);
  // The paper could not capture EFW deny data: the card stops processing
  // beyond ~1000 pps. Our search observes the latch-up.
  EXPECT_TRUE(result.lockup_observed);
  ASSERT_TRUE(result.rate_pps.has_value());
  EXPECT_LT(*result.rate_pps, 6000.0);
}

TEST(HttpExperiment, AdfReducesFetchRate) {
  MeasurementOptions opt = fast_options();
  opt.http_duration = sim::Duration::seconds(3);

  TestbedConfig none;
  const auto baseline = measure_http_performance(none, opt);

  TestbedConfig adf;
  adf.firewall = FirewallKind::kAdf;
  adf.action_rule_depth = 64;
  const auto behind = measure_http_performance(adf, opt);

  ASSERT_GT(baseline.fetches, 0u);
  ASSERT_GT(behind.fetches, 0u);
  // Paper: worst case 41% decrease; latencies grow but stay modest.
  const double drop = 1.0 - behind.fetches_per_sec / baseline.fetches_per_sec;
  EXPECT_GT(drop, 0.30);
  EXPECT_LT(drop, 0.55);
  EXPECT_GT(behind.mean_connect_ms, baseline.mean_connect_ms);
  EXPECT_LT(behind.mean_connect_ms, 10.0);
  EXPECT_EQ(behind.errors, 0u);
}

TEST(HttpExperiment, ExtraVpgsDoNotChangeHttpPerformance) {
  MeasurementOptions opt = fast_options();
  opt.http_duration = sim::Duration::seconds(3);
  TestbedConfig one;
  one.firewall = FirewallKind::kAdfVpg;
  one.action_rule_depth = 1;
  const auto p1 = measure_http_performance(one, opt);
  TestbedConfig four = one;
  four.action_rule_depth = 4;
  const auto p4 = measure_http_performance(four, opt);
  ASSERT_GT(p1.fetches, 0u);
  EXPECT_NEAR(p4.fetches_per_sec, p1.fetches_per_sec, p1.fetches_per_sec * 0.1);
}

TEST(UdpBandwidth, FirewallCapsUdpThroughputAtDepth64) {
  // The paper measured both TCP and UDP bandwidth with iperf. UDP is
  // unidirectional, so it gets the card's whole CPU (no ACK stream
  // competing): the 64-rule ceiling is ~48 Mbps (1 / t_big(64) frames/s)
  // versus TCP's ~33 Mbps; the excess offered load is dropped at the card.
  sim::Simulation sim(1);
  TestbedConfig cfg;
  cfg.firewall = FirewallKind::kAdf;
  cfg.action_rule_depth = 64;
  Testbed tb(sim, cfg);
  apps::IperfServer server(tb.target());
  server.start();

  apps::IperfClient client(tb.client(), tb.addresses().target);
  apps::IperfResult result;
  client.run(
      apps::IperfClient::Mode::kUdp, sim::Duration::seconds(2),
      [&](apps::IperfResult r) { result = r; },
      /*udp_rate_bps=*/60e6);
  sim.run_for(sim::Duration::seconds(5));

  ASSERT_TRUE(result.completed);
  EXPECT_LT(result.mbps, 52.0);
  EXPECT_GT(result.mbps, 42.0);

  // And the same offered load through a standard NIC arrives intact.
  sim::Simulation sim2(1);
  TestbedConfig none;
  Testbed tb2(sim2, none);
  apps::IperfServer server2(tb2.target());
  server2.start();
  apps::IperfClient client2(tb2.client(), tb2.addresses().target);
  apps::IperfResult result2;
  client2.run(
      apps::IperfClient::Mode::kUdp, sim::Duration::seconds(2),
      [&](apps::IperfResult r) { result2 = r; },
      60e6);
  sim2.run_for(sim::Duration::seconds(5));
  ASSERT_TRUE(result2.completed);
  EXPECT_GT(result2.mbps, 54.0);
}

TEST(Experiments, DeterministicAcrossRuns) {
  MeasurementOptions opt = fast_options();
  TestbedConfig cfg;
  cfg.firewall = FirewallKind::kEfw;
  cfg.action_rule_depth = 48;
  const auto a = measure_available_bandwidth(cfg, opt);
  const auto b = measure_available_bandwidth(cfg, opt);
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());

  opt.seed = 77;
  const auto c = measure_available_bandwidth(cfg, opt);
  EXPECT_NE(a.mean(), c.mean());  // different seed, different microtiming
}

}  // namespace
}  // namespace barb::core
