// Golden-trace regression for the fig2 one-rule topology.
//
// Runs a fixed, fully deterministic traffic script (pings + UDP datagrams,
// no RNG-dependent applications) through the EFW testbed at depth 1 and
// byte-compares the canonical text dump of every access port against a
// checked-in golden file. Any change to frame timing, contents, ordering,
// or firewall verdicts shows up as a diff.
//
// Regenerate after an intentional behavior change with:
//   BARB_UPDATE_GOLDEN=1 ctest -R core_golden_trace
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/testbed.h"
#include "firewall/nic_firewall.h"
#include "link/tracer.h"
#include "sim/simulation.h"
#include "stack/host.h"
#include "stack/nic.h"
#include "stack/udp.h"

namespace barb {
namespace {

const char* kGoldenPath = BARB_TEST_DATA_DIR "/golden_trace_fig2.txt";

std::string read_file(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return {};
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

bool write_file(const char* path, const std::string& text) {
  std::FILE* f = std::fopen(path, "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

TEST(GoldenTrace, Fig2OneRuleTopologyMatchesGolden) {
  sim::Simulation sim(1);
  core::TestbedConfig config;
  config.firewall = core::FirewallKind::kEfw;
  config.action_rule_depth = 1;
  config.flood_action = firewall::RuleAction::kDeny;
  core::Testbed bed(sim, config);
  bed.settle();

  // Tap every access port (host side of each link).
  link::FrameTap client_tap(bed.client().nic().port()->sink());
  bed.client().nic().port()->connect_sink(&client_tap);
  link::FrameTap attacker_tap(bed.attacker().nic().port()->sink());
  bed.attacker().nic().port()->connect_sink(&attacker_tap);
  link::FrameTap target_tap(bed.target().nic().port()->sink());
  bed.target().nic().port()->connect_sink(&target_tap);

  // Fixed traffic script. Everything below is RNG-free and therefore
  // byte-stable: ICMP echoes, a UDP datagram to a listener, a UDP datagram
  // to the flood port (denied by the EFW's action rule), and a datagram to
  // a closed port (ICMP unreachable comes back).
  auto* echo_listener = bed.target().udp_open(5001);
  echo_listener->set_receiver(
      [](net::Ipv4Address, std::uint16_t, std::span<const std::uint8_t>) {});

  auto& client = bed.client();
  auto& attacker = bed.attacker();
  const auto target_ip = bed.addresses().target;

  sim.schedule(sim::Duration::milliseconds(10), [&client, target_ip] {
    client.send_echo_request(target_ip, 0x11, 1, 56);
  });
  sim.schedule(sim::Duration::milliseconds(20), [&client, target_ip] {
    auto* sock = client.udp_open(6001);
    const std::uint8_t payload[] = {0xde, 0xad, 0xbe, 0xef};
    sock->send_to(target_ip, 5001, payload);
  });
  sim.schedule(sim::Duration::milliseconds(30), [&attacker, target_ip] {
    auto* sock = attacker.udp_open(6002);
    const std::uint8_t payload[] = {0x01, 0x02, 0x03};
    sock->send_to(target_ip, core::kFloodPort, payload);
  });
  sim.schedule(sim::Duration::milliseconds(40), [&client, target_ip] {
    auto* sock = client.udp_open(6003);
    const std::uint8_t payload[] = {0x42};
    sock->send_to(target_ip, 4242, payload);  // closed port
  });
  sim.schedule(sim::Duration::milliseconds(50), [&attacker, target_ip] {
    attacker.send_echo_request(target_ip, 0x22, 1, 56);
  });
  sim.run();

  // Annotate each line with the device-under-test's verdict for the frame.
  const firewall::RuleSet& rules = bed.target_firewall()->rule_set();
  link::TraceVerdictFn verdict = [&rules](const link::CapturedFrame&,
                                          const net::FrameView& view) {
    if (!view.ip) return std::string();
    const auto result = rules.match(view);
    std::string v = firewall::to_string(result.action);
    if (result.matched_index >= 0) {
      v += ":" + std::to_string(result.matched_index);
    }
    return v;
  };

  const std::string trace = link::merged_trace_text(
      {{"client", &client_tap}, {"attacker", &attacker_tap}, {"target", &target_tap}},
      verdict);
  ASSERT_FALSE(trace.empty());

  if (std::getenv("BARB_UPDATE_GOLDEN") != nullptr) {
    ASSERT_TRUE(write_file(kGoldenPath, trace)) << "could not write " << kGoldenPath;
    GTEST_SKIP() << "golden regenerated at " << kGoldenPath;
  }

  const std::string golden = read_file(kGoldenPath);
  ASSERT_FALSE(golden.empty())
      << "missing golden file " << kGoldenPath
      << " — regenerate with BARB_UPDATE_GOLDEN=1 ctest -R core_golden_trace";
  EXPECT_EQ(trace, golden)
      << "trace diverged from " << kGoldenPath
      << " — if the change is intentional, regenerate with BARB_UPDATE_GOLDEN=1";
}

}  // namespace
}  // namespace barb
