// The cost-model calibration, checked in code: the closed-form anchors
// derived in DESIGN.md / profiles.h must keep holding if anyone touches the
// constants. (The experiment-level consequences are covered by
// experiments_test.cc; these are the arithmetic identities.)
#include <gtest/gtest.h>

#include "firewall/profiles.h"

namespace barb::firewall {
namespace {

double small_frame_cost_us(const DeviceProfile& p, int rules) {
  return (p.arrival_overhead + p.fixed + p.per_byte * 60 + p.per_rule * rules)
      .to_microseconds();
}

double big_frame_cost_us(const DeviceProfile& p, int rules) {
  return (p.arrival_overhead + p.fixed + p.per_byte * 1514 + p.per_rule * rules)
      .to_microseconds();
}

TEST(Calibration, EfwOneRuleFloodAnchor) {
  // DoS at ~45 kpps with one allow rule: t_small(1) ~ 22.2 us.
  const auto efw = efw_profile();
  EXPECT_NEAR(small_frame_cost_us(efw, 1), 22.2, 0.5);
  EXPECT_NEAR(1.0 / (small_frame_cost_us(efw, 1) * 1e-6), 45000, 1500);
}

// Sustainable inbound full-size frame rate: the embedded CPU serves r data
// frames (big) plus r/2 delayed ACKs (minimum-size) per second.
double sustainable_fps(const DeviceProfile& p, int rules) {
  const double t_data = big_frame_cost_us(p, rules) * 1e-6;
  const double t_ack = small_frame_cost_us(p, rules) * 1e-6;
  return 1.0 / (t_data + 0.5 * t_ack);
}

TEST(Calibration, EfwSixtyFourRuleBandwidthAnchor) {
  // Paper: ~4100 full-size frames/s ~ 50 Mbps behind 64 rules.
  const auto efw = efw_profile();
  EXPECT_NEAR(big_frame_cost_us(efw, 64), 162.6, 4.0);
  const double fps = sustainable_fps(efw, 64);
  EXPECT_NEAR(fps, 4300, 250);
  EXPECT_NEAR(fps * 1460 * 8 / 1e6, 51, 3.0);
}

TEST(Calibration, EfwShallowRuleSetsSustainLineRate) {
  // Below ~20 rules the sustainable rate exceeds the 8127 fps line rate.
  const auto efw = efw_profile();
  for (int depth : {1, 8, 16, 20}) {
    EXPECT_GT(sustainable_fps(efw, depth), 8127) << "depth " << depth;
  }
  // ...and clearly does not by 48.
  EXPECT_LT(sustainable_fps(efw, 48), 8127);
}

TEST(Calibration, AdfSixtyFourRuleBandwidthAnchor) {
  // ADF ~33 Mbps at 64 rules on the same hardware.
  const auto adf = adf_profile();
  EXPECT_NEAR(sustainable_fps(adf, 64) * 1460 * 8 / 1e6, 33.5, 2.0);
  // Same base hardware as the EFW: only the matcher differs.
  const auto efw = efw_profile();
  EXPECT_EQ(adf.fixed.ns(), efw.fixed.ns());
  EXPECT_EQ(adf.per_byte.ns(), efw.per_byte.ns());
  EXPECT_EQ(adf.arrival_overhead.ns(), efw.arrival_overhead.ns());
  EXPECT_GT(adf.per_rule.ns(), efw.per_rule.ns());
}

TEST(Calibration, MinFloodRateDerivations) {
  // Allowed TCP flood at depth d costs the card ~2 * t_small(d) per packet
  // (flood + its RST); the predicted depth-64 minimum is ~4 kpps, and the
  // deny case is exactly 2x the allow case in this first-order model.
  const auto efw = efw_profile();
  const double allow64 = 1.0 / (2 * small_frame_cost_us(efw, 64) * 1e-6);
  const double deny64 = 1.0 / (small_frame_cost_us(efw, 64) * 1e-6);
  EXPECT_NEAR(allow64, 4000, 300);  // paper: ~4.5 kpps
  EXPECT_NEAR(deny64 / allow64, 2.0, 0.01);
}

TEST(Calibration, VpgThroughputAnchor) {
  // One-VPG ADF throughput ~55 Mbps with MSS 1428 (encapsulation headroom):
  // data frame 1514 B carrying 1428 B of payload, crypto over inner
  // payload + tag; ACKs are cheap VPG frames.
  const auto adf = adf_profile();
  const double t_data =
      (adf.arrival_overhead + adf.fixed + adf.per_byte * 1514 + adf.per_rule * 2 +
       adf.vpg_setup + adf.vpg_per_byte * (1428 + 20 + 16))
          .to_microseconds();
  const double t_ack =
      (adf.arrival_overhead + adf.fixed + adf.per_byte * 86 + adf.per_rule * 2 +
       adf.vpg_setup + adf.vpg_per_byte * (20 + 16))
          .to_microseconds();
  const double r = 1.0 / ((t_data + 0.5 * t_ack) * 1e-6);
  EXPECT_NEAR(r * 1428 * 8 / 1e6, 55, 4.0);
}

TEST(Calibration, EfwLockupFaultConfigured) {
  EXPECT_EQ(efw_profile().lockup_denies_per_sec, 1000u);  // paper: >1000 pps
  EXPECT_EQ(adf_profile().lockup_denies_per_sec, 0u);     // ADF has no such fault
}

TEST(Calibration, BufferSizesMatchTheHardwareStory) {
  // 3XP local RAM is 128 KB; we give each direction half. Byte accounting
  // means a minimum-size flood packs ~25x more frames than full-size data.
  const auto efw = efw_profile();
  EXPECT_EQ(efw.rx_buffer_bytes + efw.tx_buffer_bytes, 128u * 1024u);
  EXPECT_NEAR(1514.0 / 60.0, 25.0, 0.5);
}

}  // namespace
}  // namespace barb::firewall
