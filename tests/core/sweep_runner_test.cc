// SweepRunner: the determinism contract (artifacts byte-identical for any
// worker count), completion-order independence, exception isolation, and
// per-point seed/RNG independence.
#include "core/runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/random.h"
#include "sim/simulation.h"
#include "telemetry/artifact.h"

namespace barb::core {
namespace {

// A miniature "experiment point": its own Simulation, events, and RNG draws,
// like the real measurement functions but cheap enough to sweep many times.
double mini_experiment(std::uint64_t seed) {
  sim::Simulation sim(seed);
  double acc = 0;
  for (int i = 0; i < 8; ++i) {
    sim.schedule(sim::Duration::milliseconds(i + 1),
                 [&] { acc += sim.rng().uniform_real(); });
  }
  sim.run_for(sim::Duration::seconds(1));
  return acc;
}

std::string sweep_artifact_json(int jobs, std::uint64_t base_seed,
                                std::size_t points) {
  SweepRunner::Options ro;
  ro.jobs = jobs;
  ro.base_seed = base_seed;
  SweepRunner runner(ro);
  std::vector<std::function<double(const SweepPoint&)>> tasks;
  for (std::size_t i = 0; i < points; ++i) {
    tasks.push_back([](const SweepPoint& p) { return mini_experiment(p.seed); });
  }
  const auto results = runner.run(std::move(tasks));
  telemetry::BenchArtifact artifact("sweep_runner_test");
  for (std::size_t i = 0; i < results.size(); ++i) {
    artifact.add_point("mini", static_cast<double>(i), results[i]);
  }
  return artifact.to_json();
}

TEST(DerivePointSeed, StableAcrossCallsAndDistinctAcrossInputs) {
  // Stability: recorded artifacts depend on this mapping never changing.
  EXPECT_EQ(derive_point_seed(1, 0), derive_point_seed(1, 0));

  std::set<std::uint64_t> seeds;
  for (std::uint64_t base : {1ull, 2ull, 42ull}) {
    for (std::uint64_t i = 0; i < 64; ++i) {
      seeds.insert(derive_point_seed(base, i));
    }
  }
  EXPECT_EQ(seeds.size(), 3u * 64u);  // no collisions across bases or indices
  EXPECT_NE(derive_point_seed(1, 0), 0u);
}

TEST(DerivePointSeed, NeighbouringIndicesYieldIndependentStreams) {
  // First draws of adjacent points' RNGs must all differ — a point's stream
  // is not a shifted copy of its neighbour's.
  std::set<std::uint64_t> first_draws;
  constexpr int kPoints = 32;
  for (std::uint64_t i = 0; i < kPoints; ++i) {
    sim::Random rng(derive_point_seed(7, i));
    first_draws.insert(rng.next_u64());
  }
  EXPECT_EQ(first_draws.size(), kPoints);

  // And a point's draws never collide with the next point's first 4 draws.
  sim::Random a(derive_point_seed(7, 0));
  sim::Random b(derive_point_seed(7, 1));
  std::set<std::uint64_t> a_draws, b_draws;
  for (int i = 0; i < 4; ++i) {
    a_draws.insert(a.next_u64());
    b_draws.insert(b.next_u64());
  }
  for (auto d : a_draws) EXPECT_EQ(b_draws.count(d), 0u);
}

TEST(ResolveJobs, ClampsAndExpandsZero) {
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(7), 7);
  EXPECT_EQ(resolve_jobs(-3), 1);
  EXPECT_GE(resolve_jobs(0), 1);  // hardware_concurrency, at least 1
}

TEST(JobsFromCli, ParsesFlagFormsAndDefaults) {
  {
    const char* argv[] = {"bench", "--jobs", "4"};
    EXPECT_EQ(jobs_from_cli(3, const_cast<char**>(argv)), 4);
  }
  {
    const char* argv[] = {"bench", "--jobs=8"};
    EXPECT_EQ(jobs_from_cli(2, const_cast<char**>(argv)), 8);
  }
  {
    const char* argv[] = {"bench"};
    unsetenv("BARB_JOBS");
    EXPECT_EQ(jobs_from_cli(1, const_cast<char**>(argv)), 1);
    setenv("BARB_JOBS", "3", 1);
    EXPECT_EQ(jobs_from_cli(1, const_cast<char**>(argv)), 3);
    unsetenv("BARB_JOBS");
  }
  {
    // The flag wins over the environment.
    const char* argv[] = {"bench", "--jobs", "2"};
    setenv("BARB_JOBS", "9", 1);
    EXPECT_EQ(jobs_from_cli(3, const_cast<char**>(argv)), 2);
    unsetenv("BARB_JOBS");
  }
}

TEST(SweepRunner, ArtifactJsonByteIdenticalAcrossWorkerCounts) {
  const std::string serial = sweep_artifact_json(1, 99, 24);
  EXPECT_EQ(sweep_artifact_json(2, 99, 24), serial);
  EXPECT_EQ(sweep_artifact_json(8, 99, 24), serial);
  // A different base seed must give a different artifact (the comparison
  // above is not vacuous).
  EXPECT_NE(sweep_artifact_json(1, 100, 24), serial);
}

TEST(SweepRunner, ResultsLandInEnqueueSlotsRegardlessOfCompletionOrder) {
  // Early indices sleep longest, so under parallel execution high indices
  // complete first — slots must still match enqueue order.
  constexpr std::size_t kPoints = 12;
  SweepRunner::Options ro;
  ro.jobs = 8;
  ro.base_seed = 5;
  SweepRunner runner(ro);
  std::vector<std::function<std::size_t(const SweepPoint&)>> tasks;
  for (std::size_t i = 0; i < kPoints; ++i) {
    tasks.push_back([](const SweepPoint& p) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds((12 - p.index) * 2));
      return p.index * 10;
    });
  }
  const auto results = runner.run(std::move(tasks));
  ASSERT_EQ(results.size(), kPoints);
  for (std::size_t i = 0; i < kPoints; ++i) EXPECT_EQ(results[i], i * 10);
}

TEST(SweepRunner, PointsSeeTheirDerivedSeed) {
  SweepRunner::Options ro;
  ro.jobs = 4;
  ro.base_seed = 1234;
  SweepRunner runner(ro);
  const auto seeds = runner.run_indexed<std::uint64_t>(
      16, [](const SweepPoint& p) { return p.seed; });
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(seeds[i], derive_point_seed(1234, i));
  }
}

TEST(SweepRunner, ExceptionInOnePointDoesNotStopTheOthers) {
  for (int jobs : {1, 4}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    SweepRunner::Options ro;
    ro.jobs = jobs;
    SweepRunner runner(ro);
    std::atomic<int> completed{0};
    std::vector<std::function<int(const SweepPoint&)>> tasks;
    for (std::size_t i = 0; i < 10; ++i) {
      tasks.push_back([&completed](const SweepPoint& p) {
        if (p.index == 3) throw std::runtime_error("point 3 failed");
        completed.fetch_add(1, std::memory_order_relaxed);
        return static_cast<int>(p.index);
      });
    }
    EXPECT_THROW(runner.run(std::move(tasks)), std::runtime_error);
    EXPECT_EQ(completed.load(), 9);  // every other point still ran
  }
}

TEST(SweepRunner, LowestIndexExceptionWinsDeterministically) {
  // Two failing points; the rethrown exception is index 2's even when index
  // 6 fails first in wall-clock terms.
  SweepRunner::Options ro;
  ro.jobs = 8;
  SweepRunner runner(ro);
  std::vector<std::function<int(const SweepPoint&)>> tasks;
  for (std::size_t i = 0; i < 8; ++i) {
    tasks.push_back([](const SweepPoint& p) -> int {
      if (p.index == 6) throw std::runtime_error("index 6");
      if (p.index == 2) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        throw std::runtime_error("index 2");
      }
      return 0;
    });
  }
  try {
    runner.run(std::move(tasks));
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "index 2");
  }
}

TEST(SweepRunner, SingleJobRunsInlineInIndexOrder) {
  SweepRunner runner;  // defaults: jobs=1
  const auto main_id = std::this_thread::get_id();
  std::vector<std::size_t> order;
  runner.for_each_point(6, [&](const SweepPoint& p) {
    EXPECT_EQ(std::this_thread::get_id(), main_id);
    order.push_back(p.index);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5}));
}

TEST(SweepRunner, MoreJobsThanPointsIsFine) {
  SweepRunner::Options ro;
  ro.jobs = 16;
  SweepRunner runner(ro);
  const auto results =
      runner.run_indexed<int>(3, [](const SweepPoint& p) {
        return static_cast<int>(p.index) + 1;
      });
  EXPECT_EQ(results, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace barb::core
