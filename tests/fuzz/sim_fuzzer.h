// Randomized scenario fuzzer with invariant oracles.
//
// A 64-bit seed fully determines one fuzz case: a random topology (the
// paper's four-host testbed with a random firewall configuration, or a
// star of 2..6 plain hosts), a random rule-set, a random traffic mix
// (bulk TCP transfers, packet floods, pings), and a random link fault
// profile. The case runs to quiescence and a set of invariant oracles is
// checked:
//
//  * conservation — per link direction, frames received equals frames
//    transmitted minus injected losses plus injected duplicates; per NIC,
//    every accepted frame was delivered or dropped (nothing vanishes);
//  * scheduler monotonicity — events execute in nondecreasing time order
//    (checked both directly on a randomized scheduler load and through
//    the frame taps' capture timestamps);
//  * TCP safety — no out-of-order or corrupted byte is ever delivered to
//    the application, transfers either complete or give up cleanly after
//    rto_retries, and a fault-free run retransmits nothing;
//  * differential rule-set — a three-way oracle: RuleSet::match (the
//    linear walk), an independent naive reference matcher, and the
//    compiled classifier must produce bit-identical verdicts (action,
//    matched rule, and traversal counters) on >= 10k random packets and
//    tuples, including VPG-encapsulated frames; a flow cache shared
//    across rule-set rebuilds (generation-bumped on each push) must only
//    ever surface verdicts equal to the current linear verdict.
//
// Failures reproduce deterministically: re-running the printed seed (or a
// scenario file written by a failing run) rebuilds the identical case.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace barb::fuzz {

// Which generator families a seed exercises. kLegacy is the original set
// (differential matcher, scheduler, testbed/star scenario, fabric); kPolicy
// is the realistic-policy-corpus family (generator -> analyzer ground truth
// -> three-way match oracle). kAll runs both; each family draws from its own
// salted stream, so enabling one never perturbs the other's scenarios.
enum class FuzzFamily { kAll, kLegacy, kPolicy };

// Parses "all" / "legacy" / "policy"; returns false on anything else.
bool family_from_name(const std::string& name, FuzzFamily* out);

struct FuzzOptions {
  // Frames kept per tap for the failure dump (the last N seen).
  std::size_t trace_tail = 16;
  // Extra per-case detail on stdout.
  bool verbose = false;
  FuzzFamily family = FuzzFamily::kAll;
};

struct FuzzOutcome {
  std::uint64_t seed = 0;
  bool ok = true;
  // One human-readable line per violated invariant.
  std::vector<std::string> failures;
  // Replayable scenario description (JSON; contains the seed).
  std::string scenario_json;
  // Canonical text dump of the last frames each tap saw (failure context).
  std::string trace_tail;
  // Packets + tuples compared against the reference matcher.
  std::uint64_t differential_checks = 0;
  // One-line description of the generated scenario.
  std::string summary;
};

// Runs the complete fuzz case for `seed` (differential oracle + simulated
// scenario + invariant checks).
FuzzOutcome run_seed(std::uint64_t seed, const FuzzOptions& options = {});

// Extracts the "seed" field from a scenario JSON written by a failing run.
// Scenarios are fully seed-derived, so the seed alone replays the case.
bool seed_from_scenario_file(const std::string& path, std::uint64_t* seed);

// Reads a regression seed list: one decimal seed per line, blank lines and
// '#' comments (full-line or trailing) ignored. Returns false if the file
// cannot be read or contains no seeds.
bool seeds_from_file(const std::string& path, std::vector<std::uint64_t>* seeds);

}  // namespace barb::fuzz
