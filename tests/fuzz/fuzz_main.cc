// CLI driver for the scenario fuzzer (see sim_fuzzer.h).
//
//   fuzz_main --seed 42            run one seed
//   fuzz_main --seeds 100          run seeds base..base+99 (default base 1)
//   fuzz_main --base 1000          first seed for --seeds
//   fuzz_main --seed-file s.txt    run the seeds listed in a regression file
//   fuzz_main --family policy      restrict to one family (all|legacy|policy)
//   fuzz_main --jobs 4             distribute seeds over worker threads
//   fuzz_main --replay case.json   re-run the seed from a failure's scenario file
//   fuzz_main --verbose            print each case's scenario summary
//
// On failure: prints the seed, every violated invariant, the trace tail, and
// writes fuzz_failure_<seed>.json (replayable with --replay). Exit code 1.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/runner.h"
#include "fuzz/sim_fuzzer.h"

namespace {

using barb::fuzz::FuzzOptions;
using barb::fuzz::FuzzOutcome;

void report_failure(const FuzzOutcome& out) {
  std::printf("\nFAIL seed=%" PRIu64 " (%s)\n", out.seed, out.summary.c_str());
  for (const auto& f : out.failures) {
    std::printf("  invariant violated: %s\n", f.c_str());
  }
  const std::string path = "fuzz_failure_" + std::to_string(out.seed) + ".json";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f != nullptr) {
    std::fwrite(out.scenario_json.data(), 1, out.scenario_json.size(), f);
    std::fclose(f);
    std::printf("  scenario written to %s (replay: fuzz_main --replay %s)\n",
                path.c_str(), path.c_str());
  }
  if (!out.trace_tail.empty()) {
    std::printf("  last frames on the wire:\n");
    // Indent the trace tail for readability.
    std::string line;
    for (char c : out.trace_tail) {
      if (c == '\n') {
        std::printf("    %s\n", line.c_str());
        line.clear();
      } else {
        line += c;
      }
    }
  }
  std::printf("  reproduce with: fuzz_main --seed %" PRIu64 "\n", out.seed);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t base = 1;
  std::uint64_t count = 0;
  bool have_single = false;
  std::uint64_t single_seed = 0;
  std::vector<std::uint64_t> seed_list;
  int jobs = 1;
  FuzzOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      single_seed = std::strtoull(next(), nullptr, 0);
      have_single = true;
    } else if (arg == "--seeds") {
      count = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--base") {
      base = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--seed-file") {
      const char* path = next();
      if (!barb::fuzz::seeds_from_file(path, &seed_list)) {
        std::fprintf(stderr, "could not read seeds from %s\n", path);
        return 2;
      }
    } else if (arg == "--family") {
      const char* name = next();
      if (!barb::fuzz::family_from_name(name, &options.family)) {
        std::fprintf(stderr, "unknown family: %s (all|legacy|policy)\n", name);
        return 2;
      }
    } else if (arg == "--jobs") {
      jobs = std::atoi(next());
    } else if (arg == "--replay") {
      std::uint64_t seed = 0;
      if (!barb::fuzz::seed_from_scenario_file(next(), &seed)) {
        std::fprintf(stderr, "could not read a seed from %s\n", argv[i]);
        return 2;
      }
      single_seed = seed;
      have_single = true;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: fuzz_main [--seed N | --seeds N [--base N] | --seed-file F]\n"
          "                 [--family all|legacy|policy] [--jobs N]\n"
          "                 [--replay scenario.json] [--verbose]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  if (have_single) {
    const FuzzOutcome out = barb::fuzz::run_seed(single_seed, options);
    if (out.ok) {
      std::printf("ok seed=%" PRIu64 " (%s, %" PRIu64 " differential checks)\n",
                  out.seed, out.summary.c_str(), out.differential_checks);
      return 0;
    }
    report_failure(out);
    return 1;
  }

  if (seed_list.empty()) {
    if (count == 0) count = 20;
    for (std::uint64_t i = 0; i < count; ++i) seed_list.push_back(base + i);
    std::printf("fuzzing %" PRIu64 " seeds starting at %" PRIu64 " (jobs=%d)\n",
                count, base, jobs);
  } else {
    count = seed_list.size();
    std::printf("fuzzing %" PRIu64 " listed seeds (jobs=%d)\n", count, jobs);
  }

  // Each seed is a shared-nothing simulation, so seeds parallelize with the
  // same slot-per-point scheme the sweep runner uses for experiments.
  barb::core::SweepRunner runner(barb::core::SweepRunner::Options{jobs, base});
  const auto outcomes = runner.run_indexed<FuzzOutcome>(
      seed_list.size(), [&](const barb::core::SweepPoint& point) {
        return barb::fuzz::run_seed(seed_list[point.index], options);
      });

  std::uint64_t passed = 0;
  std::uint64_t total_checks = 0;
  int failures = 0;
  for (const auto& out : outcomes) {
    total_checks += out.differential_checks;
    if (options.verbose) {
      std::printf("%s seed=%" PRIu64 " (%s)\n", out.ok ? "ok  " : "FAIL", out.seed,
                  out.summary.c_str());
    }
    if (out.ok) {
      ++passed;
    } else {
      ++failures;
      report_failure(out);
    }
  }
  std::printf("\n%" PRIu64 "/%" PRIu64 " seeds passed, %" PRIu64
              " differential checks total\n",
              passed, count, total_checks);
  return failures == 0 ? 0 : 1;
}
