#include "fuzz/sim_fuzzer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <optional>
#include <utility>

#include "apps/flood_generator.h"
#include "core/runner.h"
#include "core/testbed.h"
#include "core/topology.h"
#include "firewall/classifier/compiled_classifier.h"
#include "firewall/classifier/flow_cache.h"
#include "firewall/policy.h"
#include "firewall/policygen/policy_corpus.h"
#include "firewall/rule_set.h"
#include "link/fault_injector.h"
#include "link/link.h"
#include "link/sharded_domain.h"
#include "link/tracer.h"
#include "net/packet_builder.h"
#include "net/vpg_header.h"
#include "sim/random.h"
#include "sim/simulation.h"
#include "stack/tcp.h"
#include "telemetry/json.h"
#include "testutil/fixtures.h"
#include "testutil/tcp_helpers.h"
#include "util/byte_io.h"

namespace barb::fuzz {
namespace {

// Independent streams per concern so adding draws to one generator never
// shifts another (the scenario stays stable under fuzzer extensions).
constexpr std::uint64_t kScenarioSalt = 0x5ce7a8105ce7a810ULL;
constexpr std::uint64_t kDifferentialSalt = 0xd1ffd1ffd1ffd1ffULL;
constexpr std::uint64_t kSchedulerSalt = 0x5c4edc0de5c4edc0ULL;
constexpr std::uint64_t kStarFaultSalt = 0xfa7e57a2fa7e57a2ULL;
constexpr std::uint64_t kFabricSalt = 0xfab21c05fab21c05ULL;
constexpr std::uint64_t kPolicySalt = 0x9011c7c09011c7c0ULL;

struct Failures {
  std::vector<std::string>* out;
  void operator()(std::string msg) { out->push_back(std::move(msg)); }
};

// ---------------------------------------------------------------------------
// Differential rule-set oracle
// ---------------------------------------------------------------------------

// Reference matcher, written independently of firewall/rule_set.cc from the
// documented semantics: ordered first match; prefix/port/protocol selectors;
// bidirectional rules also try the reversed tuple; VPG-encapsulated frames
// match VPG rules by id only; cleartext frames match VPG rules by selectors;
// default action on fall-through.
std::uint32_t prefix_mask(int prefix) {
  if (prefix <= 0) return 0;
  if (prefix >= 32) return 0xffffffffu;
  return ~0u << (32 - prefix);
}

bool ref_selectors_hit(const firewall::Rule& r, const net::FiveTuple& t) {
  auto directed = [&](net::Ipv4Address src, net::Ipv4Address dst,
                      std::uint16_t sp, std::uint16_t dp) {
    if (r.protocol != 0 && r.protocol != t.protocol) return false;
    const std::uint32_t smask = prefix_mask(r.src_prefix);
    if ((src.value() & smask) != (r.src_net.value() & smask)) return false;
    const std::uint32_t dmask = prefix_mask(r.dst_prefix);
    if ((dst.value() & dmask) != (r.dst_net.value() & dmask)) return false;
    const bool sp_ok = (r.src_ports.lo == 0 && r.src_ports.hi == 0) ||
                       (sp >= r.src_ports.lo && sp <= r.src_ports.hi);
    const bool dp_ok = (r.dst_ports.lo == 0 && r.dst_ports.hi == 0) ||
                       (dp >= r.dst_ports.lo && dp <= r.dst_ports.hi);
    return sp_ok && dp_ok;
  };
  if (directed(t.src, t.dst, t.src_port, t.dst_port)) return true;
  if (r.bidirectional && directed(t.dst, t.src, t.dst_port, t.src_port)) return true;
  return false;
}

firewall::RuleAction ref_match_tuple(const firewall::RuleSet& rs,
                                     const net::FiveTuple& t, int* index) {
  for (std::size_t i = 0; i < rs.rules().size(); ++i) {
    if (ref_selectors_hit(rs.rules()[i], t)) {
      *index = static_cast<int>(i);
      return rs.rules()[i].action;
    }
  }
  *index = -1;
  return rs.default_action();
}

firewall::RuleAction ref_match_frame(const firewall::RuleSet& rs,
                                     const net::FrameView& v, int* index) {
  if (v.vpg) {
    for (std::size_t i = 0; i < rs.rules().size(); ++i) {
      const auto& r = rs.rules()[i];
      if (r.action == firewall::RuleAction::kVpg && r.vpg_id == v.vpg->vpg_id) {
        *index = static_cast<int>(i);
        return r.action;
      }
    }
    *index = -1;
    return rs.default_action();
  }
  const auto tuple = v.five_tuple();
  if (!tuple) {
    *index = -1;
    return rs.default_action();
  }
  return ref_match_tuple(rs, *tuple, index);
}

net::Ipv4Address random_address(sim::Random& rng) {
  // A small universe so prefixes actually overlap with traffic.
  return net::Ipv4Address(10, 0, static_cast<std::uint8_t>(rng.uniform(4)),
                          static_cast<std::uint8_t>(rng.uniform(32)));
}

firewall::Rule random_rule(sim::Random& rng) {
  firewall::Rule r;
  const auto kind = rng.uniform(8);
  r.action = kind == 0   ? firewall::RuleAction::kVpg
             : kind < 4  ? firewall::RuleAction::kDeny
                         : firewall::RuleAction::kAllow;
  if (r.action == firewall::RuleAction::kVpg) {
    r.vpg_id = static_cast<std::uint32_t>(1 + rng.uniform(4));
  }
  const std::uint8_t protos[] = {0, 1, 6, 17};
  r.protocol = protos[rng.uniform(4)];
  if (rng.bernoulli(0.7)) {
    r.src_net = random_address(rng);
    r.src_prefix = static_cast<int>(8 + rng.uniform(25));  // 8..32
  }
  if (rng.bernoulli(0.7)) {
    r.dst_net = random_address(rng);
    r.dst_prefix = static_cast<int>(8 + rng.uniform(25));
  }
  if (rng.bernoulli(0.4)) {
    const auto lo = static_cast<std::uint16_t>(1 + rng.uniform(9999));
    r.src_ports = {lo, static_cast<std::uint16_t>(lo + rng.uniform(100))};
  }
  if (rng.bernoulli(0.4)) {
    const auto lo = static_cast<std::uint16_t>(1 + rng.uniform(9999));
    r.dst_ports = {lo, static_cast<std::uint16_t>(lo + rng.uniform(100))};
  }
  r.bidirectional = rng.bernoulli(0.6);
  return r;
}

net::FiveTuple random_tuple(sim::Random& rng) {
  net::FiveTuple t;
  t.src = random_address(rng);
  t.dst = random_address(rng);
  const std::uint8_t protos[] = {1, 6, 17};
  t.protocol = protos[rng.uniform(3)];
  if (t.protocol != 1) {
    t.src_port = static_cast<std::uint16_t>(1 + rng.uniform(10200));
    t.dst_port = static_cast<std::uint16_t>(1 + rng.uniform(10200));
  }
  return t;
}

// Builds a random frame (TCP/UDP/ICMP/VPG) and returns its raw bytes.
std::vector<std::uint8_t> random_frame(sim::Random& rng) {
  net::IpEndpoints ep;
  ep.src_ip = random_address(rng);
  ep.dst_ip = random_address(rng);
  ep.src_mac = net::MacAddress::from_host_id(1);
  ep.dst_mac = net::MacAddress::from_host_id(2);
  const std::vector<std::uint8_t> payload(rng.uniform(64), 0x77);
  switch (rng.uniform(4)) {
    case 0: {
      net::TcpHeader h;
      h.src_port = static_cast<std::uint16_t>(1 + rng.uniform(10200));
      h.dst_port = static_cast<std::uint16_t>(1 + rng.uniform(10200));
      h.flags = net::TcpFlags::kAck;
      return net::build_tcp_frame(ep, h, payload);
    }
    case 1:
      return net::build_udp_frame(
          ep, static_cast<std::uint16_t>(1 + rng.uniform(10200)),
          static_cast<std::uint16_t>(1 + rng.uniform(10200)), payload);
    case 2:
      return net::build_icmp_frame(ep, 8, 0, 1, payload);
    default: {
      // VPG-encapsulated frame: cleartext header + dummy sealed payload.
      net::VpgHeader vh;
      vh.vpg_id = static_cast<std::uint32_t>(1 + rng.uniform(4));
      vh.seq = rng.next_u64();
      vh.orig_protocol = 17;
      vh.payload_len =
          static_cast<std::uint16_t>(net::VpgHeader::kTagSize + rng.uniform(48));
      std::vector<std::uint8_t> ip_payload;
      ByteWriter w(ip_payload);
      vh.serialize(w);
      for (std::size_t i = 0; i < vh.payload_len; ++i) {
        w.u8(static_cast<std::uint8_t>(rng.uniform(256)));
      }
      return net::build_ipv4_frame(ep, net::IpProtocol::kVpg, ip_payload);
    }
  }
}

// True when the compiled backend reproduced the linear matcher's result
// bit-for-bit (verdict, matched rule, and both traversal counters — the
// counters feed the cost model, so they are part of the contract too).
bool same_match(const firewall::MatchResult& a, const firewall::MatchResult& b) {
  return a.action == b.action && a.matched_index == b.matched_index &&
         a.rules_traversed == b.rules_traversed &&
         a.vpg_rules_traversed == b.vpg_rules_traversed && a.vpg_id == b.vpg_id;
}

std::string describe_match(const firewall::MatchResult& m) {
  return std::string(firewall::to_string(m.action)) + " index=" +
         std::to_string(m.matched_index) + " traversed=" +
         std::to_string(m.rules_traversed) + " vpg_traversed=" +
         std::to_string(m.vpg_rules_traversed) + " vpg_id=" +
         std::to_string(m.vpg_id);
}

std::uint64_t run_differential_oracle(std::uint64_t seed, Failures fail) {
  sim::Random rng(core::derive_point_seed(seed ^ kDifferentialSalt, 0));
  std::uint64_t checks = 0;
  // The flow cache outlives the per-round rule-sets (as it does on a real
  // device across policy pushes); each rebuild bumps its generation, so any
  // hit that surfaces a previous round's verdict is a caught bug.
  firewall::FlowCache cache(firewall::FlowCacheConfig{512, 8});
  firewall::CompiledClassifier compiled;
  // A few rule-sets per seed; >= 10k packets in total. Every packet is
  // checked three ways: naive reference vs RuleSet::match (linear) vs the
  // compiled classifier, plus the flow-cache-assisted compiled path.
  for (int round = 0; round < 4; ++round) {
    firewall::RuleSet rs;
    const int n_rules = static_cast<int>(1 + rng.uniform(24));
    for (int i = 0; i < n_rules; ++i) rs.add(random_rule(rng));
    rs.set_default_action(rng.bernoulli(0.5) ? firewall::RuleAction::kAllow
                                             : firewall::RuleAction::kDeny);
    compiled.rebuild(rs);
    cache.bump_generation();

    for (int i = 0; i < 1500; ++i) {
      const auto t = random_tuple(rng);
      int ref_index = -1;
      const auto ref = ref_match_tuple(rs, t, &ref_index);
      const auto got = rs.match(t);
      ++checks;
      if (got.action != ref || got.matched_index != ref_index) {
        fail("differential(tuple): RuleSet::match says action=" +
             std::string(firewall::to_string(got.action)) + " index=" +
             std::to_string(got.matched_index) + ", reference says action=" +
             std::string(firewall::to_string(ref)) + " index=" +
             std::to_string(ref_index) + " for " + t.to_string() + "\nrule-set:\n" +
             rs.to_string());
        return checks;
      }
      const auto cm = compiled.match(t);
      if (!same_match(cm.result, got)) {
        fail("differential(tuple): compiled says " + describe_match(cm.result) +
             ", linear says " + describe_match(got) + " for " + t.to_string() +
             "\nrule-set:\n" + rs.to_string());
        return checks;
      }
      firewall::MatchResult cached;
      if (cache.lookup(t, &cached)) {
        if (!same_match(cached, got)) {
          fail("differential(tuple): flow cache says " + describe_match(cached) +
               ", linear says " + describe_match(got) + " for " + t.to_string() +
               "\nrule-set:\n" + rs.to_string());
          return checks;
        }
      } else {
        cache.insert(t, cm.result);
      }
    }

    for (int i = 0; i < 1500; ++i) {
      const auto bytes = random_frame(rng);
      const auto view = net::FrameView::parse(bytes);
      if (!view || !view->ip) continue;
      int ref_index = -1;
      const auto ref = ref_match_frame(rs, *view, &ref_index);
      const auto got = rs.match(*view);
      ++checks;
      if (got.action != ref || got.matched_index != ref_index) {
        fail("differential(frame): RuleSet::match says action=" +
             std::string(firewall::to_string(got.action)) + " index=" +
             std::to_string(got.matched_index) + ", reference says action=" +
             std::string(firewall::to_string(ref)) + " index=" +
             std::to_string(ref_index) +
             (view->vpg ? " (vpg frame id=" + std::to_string(view->vpg->vpg_id) + ")"
                        : "") +
             "\nrule-set:\n" + rs.to_string());
        return checks;
      }
      const auto cm = compiled.match(*view);
      if (!same_match(cm.result, got)) {
        fail("differential(frame): compiled says " + describe_match(cm.result) +
             ", linear says " + describe_match(got) +
             (view->vpg ? " (vpg frame id=" + std::to_string(view->vpg->vpg_id) + ")"
                        : "") +
             "\nrule-set:\n" + rs.to_string());
        return checks;
      }
    }
  }
  return checks;
}

// ---------------------------------------------------------------------------
// Policy-corpus family: realistic rule-set shape as a fuzzed dimension
// ---------------------------------------------------------------------------

// One seed generates 1-2 corpora from the shape lattice (Wool-realistic,
// max-depth, heavy-VPG, plus the dirty wildcard-pile and adversarial-overlap
// stress shapes) and checks three oracle layers on each:
//
//  * ground truth — the analyzer must detect every generator-injected error
//    instance at its recorded indices, and a corpus generated clean must
//    produce zero error-class findings (any is a false positive);
//  * DSL round trip — the corpus must survive to_string -> parse_policy ->
//    to_string byte-identically (policies travel to agents as DSL text);
//  * three-way differential — naive reference vs RuleSet::match vs the
//    compiled classifier on tuples drawn from the rules' own address
//    universe (plus perturbed near-misses), with a flow cache shared across
//    the corpora so generation invalidation is exercised under realistic
//    shape too.
//
// Drawn from its own salted stream: legacy scenarios stay stable per seed.

struct PolicyCase {
  firewall::policygen::CorpusSpec spec;
  bool clean = false;  // generated with zero injections (FP oracle applies)
};

PolicyCase generate_policy_case(sim::Random& rng) {
  using firewall::policygen::CorpusShape;
  PolicyCase c;
  const auto shape = rng.uniform(100);
  if (shape < 55) {
    c.spec.shape = CorpusShape::kRealistic;
    c.spec.rules = static_cast<int>(20 + rng.uniform(280));
  } else if (shape < 70) {
    c.spec.shape = CorpusShape::kHeavyVpg;
    c.spec.rules = static_cast<int>(40 + rng.uniform(160));
  } else if (shape < 80) {
    c.spec.shape = CorpusShape::kMaxDepth;
    // Deep but fuzz-sized; the full 2.5k tail belongs to the bench.
    c.spec.rules = static_cast<int>(700 + rng.uniform(500));
  } else if (shape < 90) {
    c.spec.shape = CorpusShape::kAllAnyAny;
  } else {
    c.spec.shape = CorpusShape::kAdversarialOverlap;
  }
  const bool clean_capable = shape < 80;  // dirty shapes ignore injection
  c.clean = clean_capable && rng.bernoulli(0.25);
  if (clean_capable && !c.clean) {
    c.spec.shadowed = static_cast<int>(rng.uniform(3));
    c.spec.redundant = static_cast<int>(rng.uniform(3));
    c.spec.stale = static_cast<int>(rng.uniform(2));
    c.spec.any_any = static_cast<int>(rng.uniform(2));
    c.spec.conflicts = static_cast<int>(rng.uniform(2));
  }
  return c;
}

std::uint64_t run_policy_oracle(std::uint64_t seed, Failures fail,
                                std::string* summary) {
  namespace pg = firewall::policygen;
  sim::Random rng(core::derive_point_seed(seed ^ kPolicySalt, 0));
  pg::PolicyCorpusGenerator gen(core::derive_point_seed(seed ^ kPolicySalt, 1));
  std::uint64_t checks = 0;

  // The cache outlives both corpora, as on a device across policy pushes.
  firewall::FlowCache cache(firewall::FlowCacheConfig{512, 8});
  firewall::CompiledClassifier compiled;

  const int rounds = rng.bernoulli(0.5) ? 2 : 1;
  for (int round = 0; round < rounds; ++round) {
    const PolicyCase pc = generate_policy_case(rng);
    const pg::GeneratedCorpus corpus = gen.generate(pc.spec);
    const std::string what = corpus.summary();
    if (round == 0) *summary += " | policy " + what;

    // Ground truth: every injected instance detected, no FP on clean shapes.
    const pg::AnalysisReport report = pg::RuleSetAnalyzer::analyze(corpus.rules);
    const pg::DetectionOutcome outcome = pg::check_detection(corpus, report);
    checks += corpus.injected.size() + 1;
    if (!outcome.all_detected()) {
      std::string msg = "policy-analyzer: missed " +
                        std::to_string(outcome.injected - outcome.detected) +
                        " of " + std::to_string(outcome.injected) +
                        " injected errors on " + what + ":";
      for (const auto& e : outcome.missed) {
        msg += " " + std::string(pg::to_string(e.kind)) + "@" +
               std::to_string(e.rule_index);
      }
      fail(std::move(msg));
    }
    if (pc.clean && corpus.injected.empty() && report.error_count() != 0) {
      fail("policy-analyzer: " + std::to_string(report.error_count()) +
           " false-positive error findings on clean " + what + "\n" +
           report.to_string());
    }

    // DSL round trip.
    const std::string text = corpus.rules.to_string();
    const auto parsed = firewall::parse_policy(text);
    ++checks;
    if (!parsed.ok()) {
      fail("policy-dsl: generated corpus failed to parse (" +
           (parsed.error ? parsed.error->message : std::string("?")) + ") on " +
           what);
    } else if (parsed.rule_set->to_string() != text) {
      fail("policy-dsl: corpus changed across to_string -> parse -> to_string "
           "on " + what);
    }

    // Three-way differential over universe traffic + perturbed near-misses.
    compiled.rebuild(corpus.rules);
    cache.bump_generation();
    for (int i = 0; i < 2000; ++i) {
      net::FiveTuple t = gen.random_universe_tuple();
      if (rng.bernoulli(0.25)) {
        switch (rng.uniform(3)) {
          case 0:
            t.dst_port = static_cast<std::uint16_t>(1 + rng.uniform(65535));
            break;
          case 1: {
            const std::uint8_t protos[] = {1, 6, 17};
            t.protocol = protos[rng.uniform(3)];
            if (t.protocol == 1) t.src_port = t.dst_port = 0;
            break;
          }
          default:
            std::swap(t.src, t.dst);
            std::swap(t.src_port, t.dst_port);
            break;
        }
      }
      int ref_index = -1;
      const auto ref = ref_match_tuple(corpus.rules, t, &ref_index);
      const auto got = corpus.rules.match(t);
      ++checks;
      if (got.action != ref || got.matched_index != ref_index) {
        fail("policy-differential: RuleSet::match says action=" +
             std::string(firewall::to_string(got.action)) + " index=" +
             std::to_string(got.matched_index) + ", reference says action=" +
             std::string(firewall::to_string(ref)) + " index=" +
             std::to_string(ref_index) + " for " + t.to_string() + " on " +
             what);
        return checks;
      }
      const auto cm = compiled.match(t);
      if (!same_match(cm.result, got)) {
        fail("policy-differential: compiled says " + describe_match(cm.result) +
             ", linear says " + describe_match(got) + " for " + t.to_string() +
             " on " + what);
        return checks;
      }
      firewall::MatchResult cached;
      if (cache.lookup(t, &cached)) {
        if (!same_match(cached, got)) {
          fail("policy-differential: flow cache says " + describe_match(cached) +
               ", linear says " + describe_match(got) + " for " + t.to_string() +
               " on " + what);
          return checks;
        }
      } else {
        cache.insert(t, cm.result);
      }
    }
  }

  const auto& st = cache.stats();
  if (st.lookups != st.hits + st.misses) {
    fail("policy-flow-cache: lookups=" + std::to_string(st.lookups) +
         " != hits=" + std::to_string(st.hits) + " + misses=" +
         std::to_string(st.misses));
  }
  return checks;
}

// ---------------------------------------------------------------------------
// Scheduler monotonicity oracle
// ---------------------------------------------------------------------------

void run_scheduler_oracle(std::uint64_t seed, Failures fail) {
  sim::Random rng(core::derive_point_seed(seed ^ kSchedulerSalt, 0));
  sim::Simulation sim(seed);
  std::vector<std::int64_t> executed;
  executed.reserve(1200);
  // A mix of near and far timestamps, plus events that schedule more events
  // (exercising insertion while draining).
  for (int i = 0; i < 1000; ++i) {
    const auto at = sim::Duration::nanoseconds(
        static_cast<std::int64_t>(rng.uniform(2'000'000'000)));
    sim.schedule(at, [&sim, &executed] { executed.push_back(sim.now().ns()); });
  }
  for (int i = 0; i < 100; ++i) {
    const auto at = sim::Duration::nanoseconds(
        static_cast<std::int64_t>(rng.uniform(1'000'000'000)));
    const auto follow = sim::Duration::nanoseconds(
        static_cast<std::int64_t>(rng.uniform(1'000'000'000)));
    sim.schedule(at, [&sim, &executed, follow] {
      sim.schedule(follow, [&sim, &executed] { executed.push_back(sim.now().ns()); });
    });
  }
  sim.run();
  if (executed.size() != 1100) {
    fail("scheduler: expected 1100 events, ran " + std::to_string(executed.size()));
  }
  for (std::size_t i = 1; i < executed.size(); ++i) {
    if (executed[i] < executed[i - 1]) {
      fail("scheduler: time ran backwards, event at " + std::to_string(executed[i]) +
           "ns executed after " + std::to_string(executed[i - 1]) + "ns");
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Simulated-scenario generation
// ---------------------------------------------------------------------------

struct TransferPlan {
  int from = 0;
  int to = 1;
  std::uint16_t port = 5001;
  std::size_t bytes = 0;
};

struct Scenario {
  std::uint64_t seed = 0;
  bool star = false;

  // Shared.
  bool faults = false;
  link::FaultProfile profile;
  std::vector<TransferPlan> transfers;

  // Testbed family.
  core::TestbedConfig testbed;
  bool flood = false;
  apps::FloodConfig flood_cfg;
  double flood_start_s = 0.1;
  double flood_stop_s = 0.6;
  int pings = 0;

  // Star family.
  int star_hosts = 2;
};

link::FaultProfile random_fault_profile(sim::Random& rng) {
  link::FaultProfile p;
  switch (rng.uniform(4)) {
    case 0:  // plain random loss
      p.loss = rng.uniform_real(0.005, 0.2);
      break;
    case 1:  // burst loss (Gilbert–Elliott)
      p.ge_p_good_to_bad = rng.uniform_real(0.005, 0.05);
      p.ge_p_bad_to_good = rng.uniform_real(0.1, 0.5);
      p.ge_loss_bad = rng.uniform_real(0.5, 0.95);
      p.ge_loss_good = rng.bernoulli(0.3) ? rng.uniform_real(0.0, 0.01) : 0.0;
      break;
    case 2:  // reorder + jitter
      p.reorder = rng.uniform_real(0.02, 0.2);
      p.reorder_window = static_cast<int>(1 + rng.uniform(6));
      p.reorder_hold = sim::Duration::microseconds(
          static_cast<std::int64_t>(200 + rng.uniform(1800)));
      p.jitter_max = sim::Duration::microseconds(
          static_cast<std::int64_t>(rng.uniform(1000)));
      break;
    default:  // everything at once
      p.loss = rng.uniform_real(0.0, 0.1);
      p.duplication = rng.uniform_real(0.0, 0.05);
      p.corruption = rng.uniform_real(0.0, 0.05);
      p.reorder = rng.uniform_real(0.0, 0.1);
      p.reorder_window = static_cast<int>(1 + rng.uniform(4));
      p.jitter_max = sim::Duration::microseconds(
          static_cast<std::int64_t>(rng.uniform(500)));
      break;
  }
  return p;
}

Scenario generate_scenario(std::uint64_t seed) {
  sim::Random rng(core::derive_point_seed(seed ^ kScenarioSalt, 0));
  Scenario s;
  s.seed = seed;
  s.star = rng.bernoulli(0.35);

  s.faults = rng.bernoulli(0.7);
  if (s.faults) s.profile = random_fault_profile(rng);
  if (s.faults && !s.profile.enabled()) s.faults = false;

  if (s.star) {
    s.star_hosts = static_cast<int>(2 + rng.uniform(5));
    const int n_transfers = static_cast<int>(1 + rng.uniform(3));
    for (int i = 0; i < n_transfers; ++i) {
      TransferPlan t;
      t.from = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(s.star_hosts)));
      do {
        t.to = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(s.star_hosts)));
      } while (t.to == t.from);
      t.port = static_cast<std::uint16_t>(6000 + i);
      t.bytes = 10'000 + rng.uniform(120'000);
      s.transfers.push_back(t);
    }
    return s;
  }

  // Testbed family: random firewall configuration on the paper topology.
  const core::FirewallKind kinds[] = {
      core::FirewallKind::kNone, core::FirewallKind::kIptables,
      core::FirewallKind::kEfw, core::FirewallKind::kAdf,
      core::FirewallKind::kAdfVpg};
  s.testbed.firewall = kinds[rng.uniform(5)];
  s.testbed.action_rule_depth = static_cast<int>(1 + rng.uniform(20));
  s.testbed.flood_action = rng.bernoulli(0.5) ? firewall::RuleAction::kAllow
                                              : firewall::RuleAction::kDeny;
  s.testbed.deny_attacker_first = rng.bernoulli(0.25);
  if (s.testbed.firewall == core::FirewallKind::kEfw ||
      s.testbed.firewall == core::FirewallKind::kAdf) {
    if (rng.bernoulli(0.25)) {
      firewall::FloodGuardConfig fg;
      fg.enabled = true;
      s.testbed.flood_guard = fg;
    }
  }
  s.testbed.seed = seed;
  s.testbed.fault_profile = s.faults ? std::optional(s.profile) : std::nullopt;

  if (rng.bernoulli(0.85)) {
    TransferPlan t;
    t.port = 5001;
    t.bytes = 20'000 + rng.uniform(130'000);
    s.transfers.push_back(t);
  }
  s.flood = rng.bernoulli(0.6);
  if (s.flood) {
    const apps::FloodType types[] = {apps::FloodType::kUdp, apps::FloodType::kTcpSyn,
                                     apps::FloodType::kTcpData};
    s.flood_cfg.type = types[rng.uniform(3)];
    s.flood_cfg.target_port = core::kFloodPort;
    s.flood_cfg.rate_pps = 500.0 + static_cast<double>(rng.uniform(3500));
    s.flood_cfg.frame_size = 60 + rng.uniform(340);
    s.flood_cfg.spoof_source = rng.bernoulli(0.3);
    s.flood_start_s = rng.uniform_real(0.02, 0.2);
    s.flood_stop_s = s.flood_start_s + rng.uniform_real(0.2, 1.0);
  }
  s.pings = static_cast<int>(rng.uniform(3));
  return s;
}

std::string scenario_to_json(const Scenario& s) {
  telemetry::JsonWriter w;
  w.begin_object();
  w.key("seed").value(static_cast<std::uint64_t>(s.seed));
  w.key("family").value(s.star ? "star" : "testbed");
  w.key("faults");
  if (s.faults) {
    w.begin_object();
    w.key("loss").value(s.profile.loss);
    w.key("duplication").value(s.profile.duplication);
    w.key("corruption").value(s.profile.corruption);
    w.key("reorder").value(s.profile.reorder);
    w.key("reorder_window").value(s.profile.reorder_window);
    w.key("jitter_max_ns").value(static_cast<std::int64_t>(s.profile.jitter_max.ns()));
    w.key("ge_p_good_to_bad").value(s.profile.ge_p_good_to_bad);
    w.key("ge_p_bad_to_good").value(s.profile.ge_p_bad_to_good);
    w.key("ge_loss_good").value(s.profile.ge_loss_good);
    w.key("ge_loss_bad").value(s.profile.ge_loss_bad);
    w.end_object();
  } else {
    w.raw("null");
  }
  if (s.star) {
    w.key("hosts").value(s.star_hosts);
  } else {
    w.key("firewall").value(core::to_string(s.testbed.firewall));
    w.key("depth").value(s.testbed.action_rule_depth);
    w.key("flood_action")
        .value(s.testbed.flood_action == firewall::RuleAction::kAllow ? "allow"
                                                                      : "deny");
    w.key("deny_attacker_first").value(s.testbed.deny_attacker_first);
    w.key("flood_guard").value(s.testbed.flood_guard.has_value());
    w.key("flood");
    if (s.flood) {
      w.begin_object();
      w.key("type").value(s.flood_cfg.type == apps::FloodType::kUdp ? "udp"
                          : s.flood_cfg.type == apps::FloodType::kTcpSyn
                              ? "tcp_syn"
                              : "tcp_data");
      w.key("rate_pps").value(s.flood_cfg.rate_pps);
      w.key("frame_size").value(static_cast<std::uint64_t>(s.flood_cfg.frame_size));
      w.key("spoof").value(s.flood_cfg.spoof_source);
      w.key("start_s").value(s.flood_start_s);
      w.key("stop_s").value(s.flood_stop_s);
      w.end_object();
    } else {
      w.raw("null");
    }
    w.key("pings").value(s.pings);
  }
  w.key("transfers").begin_array();
  for (const auto& t : s.transfers) {
    w.begin_object();
    w.key("from").value(t.from);
    w.key("to").value(t.to);
    w.key("port").value(static_cast<std::uint64_t>(t.port));
    w.key("bytes").value(static_cast<std::uint64_t>(t.bytes));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string scenario_summary(const Scenario& s) {
  std::string out = s.star ? "star hosts=" + std::to_string(s.star_hosts)
                           : std::string("testbed fw=") +
                                 core::to_string(s.testbed.firewall) +
                                 " depth=" + std::to_string(s.testbed.action_rule_depth);
  out += " transfers=" + std::to_string(s.transfers.size());
  if (!s.star && s.flood) out += " flood";
  if (s.faults) out += " faults";
  return out;
}

// ---------------------------------------------------------------------------
// Frame taps (ring buffers for the failure dump)
// ---------------------------------------------------------------------------

class RingTap : public link::FrameSink {
 public:
  RingTap(sim::Simulation& sim, std::string name, link::FrameSink* downstream,
          std::size_t cap)
      : sim_(sim), name_(std::move(name)), downstream_(downstream), cap_(cap) {}

  void deliver(net::Packet pkt) override {
    // Stamp with *delivery* time (not pkt.created): the tail then shows when
    // frames actually arrived, and the timestamps double as a scheduler-
    // monotonicity witness — delivery events at one port must execute in
    // nondecreasing event time even when faults reorder the frames.
    const sim::TimePoint at = sim_.now();
    if (frames_.size() == cap_) frames_.pop_front();
    frames_.push_back(link::CapturedFrame{at, pkt.copy_bytes()});
    if (!monotonic_violation_ && frames_.size() >= 2 &&
        frames_.back().at < frames_[frames_.size() - 2].at) {
      monotonic_violation_ = true;
    }
    if (downstream_ != nullptr) downstream_->deliver(std::move(pkt));
  }

  const std::string& name() const { return name_; }
  bool monotonic_violation() const { return monotonic_violation_; }
  std::string tail_text() const {
    std::string out;
    for (const auto& f : frames_) {
      out += link::format_trace_line(f, name_);
      out += '\n';
    }
    return out;
  }

 private:
  sim::Simulation& sim_;
  std::string name_;
  link::FrameSink* downstream_;
  std::size_t cap_;
  std::deque<link::CapturedFrame> frames_;
  bool monotonic_violation_ = false;
};

// Splices a ring tap in front of a port's existing sink.
std::unique_ptr<RingTap> splice_tap(sim::Simulation& sim, link::LinkPort& port,
                                    std::string name, std::size_t cap) {
  auto tap = std::make_unique<RingTap>(sim, std::move(name), port.sink(), cap);
  port.connect_sink(tap.get());
  return tap;
}

// ---------------------------------------------------------------------------
// Shared oracles over a finished run
// ---------------------------------------------------------------------------

// One transfer's observable endpoints.
struct TransferProbe {
  TransferPlan plan;
  std::shared_ptr<stack::TcpConnection> conn;
  testutil::VerifyingReceiver receiver;
  std::unique_ptr<testutil::BulkSender> sender;
};

// Conservation for one direction tx -> rx. The transmit-side injector (if
// any) accounts for frames it swallowed or duplicated on this hop.
void check_direction(const link::LinkPort& tx, const link::LinkPort& rx,
                     const std::string& what, Failures fail) {
  std::uint64_t expected = tx.stats().tx_frames;
  if (const link::FaultInjector* inj = tx.fault_injector()) {
    expected -= inj->stats().lost();
    expected += inj->stats().duplicated;
  }
  if (rx.stats().rx_frames != expected) {
    fail("conservation(" + what + "): transmitted " +
         std::to_string(tx.stats().tx_frames) + " frames, expected " +
         std::to_string(expected) + " deliveries after faults, received " +
         std::to_string(rx.stats().rx_frames));
  }
}

void check_link(link::LinkPort& host_side, const std::string& name, Failures fail) {
  link::LinkPort* peer = host_side.peer();
  if (peer == nullptr) return;
  check_direction(host_side, *peer, name + ":host->switch", fail);
  check_direction(*peer, host_side, name + ":switch->host", fail);
}

void check_nic(stack::Host& host, const std::string& name, Failures fail) {
  const auto& n = host.nic().stats();
  if (n.rx_frames != n.rx_delivered + n.rx_dropped) {
    fail("nic-accounting(" + name + "): rx_frames=" + std::to_string(n.rx_frames) +
         " != rx_delivered=" + std::to_string(n.rx_delivered) + " + rx_dropped=" +
         std::to_string(n.rx_dropped));
  }
  if (n.rx_checksum_drops > n.rx_delivered) {
    fail("nic-accounting(" + name + "): rx_checksum_drops=" +
         std::to_string(n.rx_checksum_drops) + " exceeds rx_delivered=" +
         std::to_string(n.rx_delivered));
  }
}

void check_transfer(const TransferProbe& probe, bool faults, bool contention,
                    Failures fail) {
  const auto& recv = probe.receiver;
  if (recv.mismatches() != 0) {
    fail("tcp-safety: " + std::to_string(recv.mismatches()) +
         " corrupted/misordered bytes reached the application (transfer to port " +
         std::to_string(probe.plan.port) + ")");
  }
  const bool complete = recv.received() == probe.plan.bytes && recv.eof();
  const auto state = probe.conn->state();
  if (complete) return;
  // Incomplete: only acceptable as a clean give-up under injected faults
  // (rto_retries exhausted tears the connection down to CLOSED).
  if (!faults) {
    fail("tcp-safety: fault-free transfer to port " + std::to_string(probe.plan.port) +
         " did not complete (" + std::to_string(recv.received()) + "/" +
         std::to_string(probe.plan.bytes) + " bytes, state=" +
         stack::to_string(state) + ")");
    return;
  }
  if (state != stack::TcpState::kClosed) {
    fail("tcp-safety: transfer to port " + std::to_string(probe.plan.port) +
         " neither completed nor tore down after give-up (state=" +
         stack::to_string(state) + ", " + std::to_string(recv.received()) + "/" +
         std::to_string(probe.plan.bytes) + " bytes)");
  }
  const auto& st = probe.conn->stats();
  if (st.timeouts == 0 && st.retransmissions == 0) {
    fail("tcp-safety: transfer to port " + std::to_string(probe.plan.port) +
         " gave up without a single timeout or retransmission");
  }
  (void)contention;
}

void check_retransmit_consistency(const TransferProbe& probe, bool faults,
                                  bool contention, Failures fail) {
  if (faults || contention) return;
  const auto& st = probe.conn->stats();
  if (st.retransmissions != 0 || st.timeouts != 0) {
    fail("tcp-safety: clean run retransmitted (" +
         std::to_string(st.retransmissions) + " rtx, " + std::to_string(st.timeouts) +
         " timeouts) with no injected loss and no competing traffic");
  }
}

// ---------------------------------------------------------------------------
// Scenario execution
// ---------------------------------------------------------------------------

// Generous: a transfer giving up under sustained loss can back off through
// rto_retries doublings (capped at max_rto) before tearing down. Simulated
// idle time is nearly free — only timer events fire.
constexpr double kQuiescenceCapSeconds = 3600.0;

void run_to_quiescence(sim::Simulation& sim, Failures fail) {
  sim.run_until(sim::TimePoint() + sim::Duration::from_seconds(kQuiescenceCapSeconds));
  // queues_empty() covers the parallel engine's shard queues and mailboxes
  // too; for a serial simulation it is exactly scheduler().empty().
  if (!sim.queues_empty()) {
    fail("quiescence: event queue still busy after " +
         std::to_string(static_cast<int>(kQuiescenceCapSeconds)) +
         " simulated seconds");
    return;
  }
}

void setup_transfer(TransferProbe& probe, stack::Host& sender_host,
                    stack::Host& receiver_host) {
  auto* receiver = &probe.receiver;
  receiver_host.tcp_listen(probe.plan.port,
                           [receiver](std::shared_ptr<stack::TcpConnection> c) {
                             receiver->attach(c);
                           });
  probe.conn = sender_host.tcp_connect(receiver_host.ip(), probe.plan.port);
  probe.sender = std::make_unique<testutil::BulkSender>(probe.conn, probe.plan.bytes);
}

void run_testbed_scenario(const Scenario& s, std::vector<std::string>* failures,
                          std::string* trace_tail, const FuzzOptions& options) {
  Failures fail{failures};
  sim::Simulation sim(s.seed);
  core::Testbed bed(sim, s.testbed);
  bed.settle();

  std::vector<std::unique_ptr<RingTap>> taps;
  stack::Host* hosts[] = {&bed.policy_host(), &bed.attacker(), &bed.client(),
                          &bed.target()};
  const char* names[] = {"policy", "attacker", "client", "target"};
  for (int i = 0; i < 4; ++i) {
    if (auto* port = hosts[i]->nic().port()) {
      taps.push_back(splice_tap(sim, *port, names[i], options.trace_tail));
    }
  }

  std::vector<std::unique_ptr<TransferProbe>> probes;
  for (const auto& plan : s.transfers) {
    auto probe = std::make_unique<TransferProbe>();
    probe->plan = plan;
    setup_transfer(*probe, bed.client(), bed.target());
    probes.push_back(std::move(probe));
  }

  apps::FloodConfig flood_cfg = s.flood_cfg;
  flood_cfg.target = bed.addresses().target;
  std::optional<apps::FloodGenerator> flood;
  if (s.flood) {
    flood.emplace(bed.attacker(), flood_cfg);
    auto* gen = &*flood;
    sim.schedule(sim::Duration::from_seconds(s.flood_start_s),
                 [gen] { gen->start(); });
    sim.schedule(sim::Duration::from_seconds(s.flood_stop_s), [gen] { gen->stop(); });
  }
  for (int i = 0; i < s.pings; ++i) {
    auto* client = &bed.client();
    auto target_ip = bed.addresses().target;
    sim.schedule(sim::Duration::milliseconds(10 + 15 * i), [client, target_ip, i] {
      client->send_echo_request(target_ip, 0x77, static_cast<std::uint16_t>(i), 56);
    });
  }

  run_to_quiescence(sim, fail);

  // Conservation + NIC accounting.
  for (int i = 0; i < 4; ++i) {
    if (auto* port = hosts[i]->nic().port()) {
      check_link(*port, names[i], fail);
    }
    check_nic(*hosts[i], names[i], fail);
  }
  // Monotonicity witness from the taps.
  for (const auto& tap : taps) {
    if (tap->monotonic_violation()) {
      fail("scheduler: deliveries at port " + tap->name() +
           " observed out of time order");
    }
  }
  // TCP safety. Flood traffic shares the target link with the transfers, so
  // congestion loss is expected whenever the flood ran.
  const bool contention = s.flood;
  for (const auto& probe : probes) {
    check_transfer(*probe, s.faults, contention, fail);
    check_retransmit_consistency(*probe, s.faults, contention, fail);
  }

  if (!failures->empty() && trace_tail->empty()) {
    for (const auto& tap : taps) *trace_tail += tap->tail_text();
  }
}

void run_star_scenario(const Scenario& s, std::vector<std::string>* failures,
                       std::string* trace_tail, const FuzzOptions& options) {
  Failures fail{failures};
  sim::Simulation sim(s.seed);
  testutil::StarNetwork net(sim, s.star_hosts);

  // Faults on every access link, both directions, each with its own stream.
  std::vector<std::unique_ptr<link::FaultInjector>> injectors;
  if (s.faults) {
    for (std::size_t i = 0; i < net.links.size(); ++i) {
      for (int side = 0; side < 2; ++side) {
        auto inj = std::make_unique<link::FaultInjector>(
            s.profile,
            core::derive_point_seed(s.seed ^ kStarFaultSalt, 2 * i + side));
        link::LinkPort& port = side == 0 ? net.links[i]->a() : net.links[i]->b();
        port.set_fault_injector(inj.get());
        injectors.push_back(std::move(inj));
      }
    }
  }

  std::vector<std::unique_ptr<RingTap>> taps;
  for (std::size_t i = 0; i < net.hosts.size(); ++i) {
    if (auto* port = net.hosts[i]->nic().port()) {
      taps.push_back(
          splice_tap(sim, *port, "h" + std::to_string(i), options.trace_tail));
    }
  }

  std::vector<std::unique_ptr<TransferProbe>> probes;
  for (const auto& plan : s.transfers) {
    auto probe = std::make_unique<TransferProbe>();
    probe->plan = plan;
    setup_transfer(*probe, *net.hosts[static_cast<std::size_t>(plan.from)],
                   *net.hosts[static_cast<std::size_t>(plan.to)]);
    probes.push_back(std::move(probe));
  }

  run_to_quiescence(sim, fail);

  for (std::size_t i = 0; i < net.hosts.size(); ++i) {
    if (auto* port = net.hosts[i]->nic().port()) {
      check_link(*port, "h" + std::to_string(i), fail);
    }
    check_nic(*net.hosts[i], "h" + std::to_string(i), fail);
    const auto& n = net.hosts[i]->nic().stats();
    if (n.tx_requested != n.tx_sent + n.tx_dropped) {
      fail("nic-accounting(h" + std::to_string(i) + "): tx_requested=" +
           std::to_string(n.tx_requested) + " != tx_sent=" +
           std::to_string(n.tx_sent) + " + tx_dropped=" +
           std::to_string(n.tx_dropped));
    }
  }
  for (const auto& tap : taps) {
    if (tap->monotonic_violation()) {
      fail("scheduler: deliveries at port " + tap->name() +
           " observed out of time order");
    }
  }
  // Several transfers can share a link, so congestion loss is possible even
  // without faults whenever there is more than one transfer.
  const bool contention = s.transfers.size() > 1;
  for (const auto& probe : probes) {
    check_transfer(*probe, s.faults, contention, fail);
    check_retransmit_consistency(*probe, s.faults, contention, fail);
  }

  if (!failures->empty() && trace_tail->empty()) {
    for (const auto& tap : taps) *trace_tail += tap->tail_text();
  }
}

// ---------------------------------------------------------------------------
// Fabric scenarios (multi-switch topologies from TopologyBuilder)
// ---------------------------------------------------------------------------

// A randomized leaf-spine or campus-tree fabric, 2..64 hosts, with TCP
// transfers between random host pairs. Runs under the same conservation /
// NIC-accounting / TCP-safety / monotonicity oracles as the legacy families,
// plus two fabric-specific ones: every switch must hold a route to every
// host (all_hosts_routed), and the batched link engine must reproduce the
// per-frame engine's transfer outcomes exactly.
//
// Drawn from its own salted stream (kFabricSalt): the legacy testbed/star
// generators see zero new draws, so their scenarios stay stable per seed.
struct FabricScenario {
  bool tree = false;  // campus tree vs leaf-spine
  int hosts = 2;
  int group = 4;   // hosts per leaf / per edge switch
  int spines = 1;  // leaf-spine only
  std::vector<core::FirewallKind> nic_kinds;  // per host
  int padding_rules = 0;  // inert deny rules ahead of the allow-all default
  std::vector<TransferPlan> transfers;
};

FabricScenario generate_fabric_scenario(std::uint64_t seed) {
  sim::Random rng(core::derive_point_seed(seed ^ kFabricSalt, 0));
  FabricScenario s;
  s.tree = rng.bernoulli(0.4);
  s.hosts = static_cast<int>(2 + rng.uniform(63));  // 2..64
  const int groups[] = {2, 4, 8, 16};
  s.group = groups[rng.uniform(4)];
  s.spines = static_cast<int>(1 + rng.uniform(3));
  for (int i = 0; i < s.hosts; ++i) {
    const auto k = rng.uniform(4);
    s.nic_kinds.push_back(k == 0   ? core::FirewallKind::kEfw
                          : k == 1 ? core::FirewallKind::kAdf
                                   : core::FirewallKind::kNone);
  }
  s.padding_rules = static_cast<int>(rng.uniform(16));
  const int n_transfers = static_cast<int>(1 + rng.uniform(3));
  for (int i = 0; i < n_transfers; ++i) {
    TransferPlan t;
    t.from = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(s.hosts)));
    do {
      t.to = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(s.hosts)));
    } while (t.to == t.from);
    t.port = static_cast<std::uint16_t>(6000 + i);
    t.bytes = 10'000 + rng.uniform(100'000);
    s.transfers.push_back(t);
  }
  return s;
}

std::unique_ptr<core::Fabric> build_fabric(sim::Simulation& sim,
                                           const FabricScenario& s,
                                           bool batched) {
  auto nic_for = [&s](int index) {
    core::NicSpec nic;
    nic.kind = s.nic_kinds[static_cast<std::size_t>(index)];
    return nic;
  };
  std::unique_ptr<core::Fabric> fabric;
  if (s.tree) {
    core::CampusTreeSpec spec;
    spec.hosts = s.hosts;
    spec.hosts_per_edge = s.group;
    spec.nic_for = nic_for;
    spec.batched_links = batched;
    fabric = core::build_campus_tree(sim, spec);
  } else {
    core::LeafSpineSpec spec;
    spec.hosts = s.hosts;
    spec.hosts_per_leaf = s.group;
    spec.spines = s.spines;
    spec.nic_for = nic_for;
    spec.batched_links = batched;
    fabric = core::build_leaf_spine(sim, spec);
  }
  // Firewalled hosts get a permissive policy with inert padding ahead of the
  // default (a fresh FirewallNic default-denies, which would just stall the
  // transfers; firewall *semantics* are fuzzed by the testbed family).
  firewall::RuleSet permissive;
  for (int i = 0; i < s.padding_rules; ++i) {
    firewall::Rule r;
    r.action = firewall::RuleAction::kDeny;
    r.protocol = 6;
    r.dst_net = net::Ipv4Address(192, 168, 0, static_cast<std::uint8_t>(i + 1));
    r.dst_prefix = 32;
    permissive.add(r);
  }
  permissive.set_default_action(firewall::RuleAction::kAllow);
  for (int i = 0; i < fabric->num_hosts(); ++i) {
    if (auto* fw = fabric->firewall(i)) fw->install_rule_set(permissive);
  }
  return fabric;
}

// One engine's observable outcome, for the batched-vs-per-frame and
// serial-vs-sharded comparisons.
struct FabricRun {
  std::vector<std::size_t> received;  // per transfer
  std::vector<bool> complete;
  std::uint64_t access_tx_frames = 0;  // summed over host access links
  std::uint64_t access_rx_frames = 0;
  std::uint64_t nic_rx_delivered = 0;  // summed NIC verdicts over all hosts
  std::uint64_t nic_rx_dropped = 0;
};

// `shards` == 0 runs the exact serial engine; > 1 attaches the parallel DES
// engine (kHostsHome partition, so every host-side RNG draw stays on the
// home shard) and must reproduce the serial outcome bit-for-bit.
FabricRun run_fabric_once(const FabricScenario& s, std::uint64_t seed,
                          bool batched, int shards,
                          std::vector<std::string>* failures,
                          std::string* trace_tail, const FuzzOptions& options) {
  Failures fail{failures};
  sim::Simulation sim(seed);
  // Declared before `fabric` so the domain (and its shard schedulers)
  // outlives the links and hosts, whose destructors cancel EventHandles
  // living on those schedulers.
  std::unique_ptr<link::ShardedLinkDomain> domain;
  auto fabric = build_fabric(sim, s, batched);
  if (shards > 1) {
    domain = core::make_sharded_domain(
        *fabric,
        core::partition_fabric(*fabric, shards, core::ShardPartition::kHostsHome));
  }

  if (!fabric->all_hosts_routed()) {
    fail("fabric: a switch is missing a preloaded route to some host (" +
         std::string(s.tree ? "tree" : "leaf-spine") + " hosts=" +
         std::to_string(s.hosts) + ")");
  }

  // Tap only the hosts that carry traffic; an idle 64-host fabric would
  // dominate the tail with silence.
  std::vector<std::unique_ptr<RingTap>> taps;
  std::vector<int> tapped;
  for (const auto& plan : s.transfers) {
    for (int h : {plan.from, plan.to}) {
      if (std::find(tapped.begin(), tapped.end(), h) != tapped.end()) continue;
      tapped.push_back(h);
      if (auto* port = fabric->host(h).nic().port()) {
        taps.push_back(
            splice_tap(sim, *port, "h" + std::to_string(h), options.trace_tail));
      }
    }
  }

  std::vector<std::unique_ptr<TransferProbe>> probes;
  for (const auto& plan : s.transfers) {
    auto probe = std::make_unique<TransferProbe>();
    probe->plan = plan;
    setup_transfer(*probe, fabric->host(plan.from), fabric->host(plan.to));
    probes.push_back(std::move(probe));
  }

  run_to_quiescence(sim, fail);

  FabricRun out;
  for (int i = 0; i < fabric->num_hosts(); ++i) {
    if (auto* port = fabric->host(i).nic().port()) {
      check_link(*port, "fabric-h" + std::to_string(i), fail);
    }
    check_nic(fabric->host(i), "fabric-h" + std::to_string(i), fail);
    const auto& nic = fabric->host(i).nic().stats();
    out.nic_rx_delivered += nic.rx_delivered;
    out.nic_rx_dropped += nic.rx_dropped;
    auto& access = fabric->host_link(i);
    out.access_tx_frames += access.a().stats().tx_frames;
    out.access_rx_frames += access.a().stats().rx_frames;
  }
  for (const auto& tap : taps) {
    if (tap->monotonic_violation()) {
      fail("scheduler: deliveries at fabric port " + tap->name() +
           " observed out of time order");
    }
  }
  const bool contention = s.transfers.size() > 1;
  for (const auto& probe : probes) {
    check_transfer(*probe, /*faults=*/false, contention, fail);
    out.received.push_back(probe->receiver.received());
    out.complete.push_back(probe->receiver.received() == probe->plan.bytes &&
                           probe->receiver.eof());
  }

  if (!failures->empty() && trace_tail->empty()) {
    for (const auto& tap : taps) *trace_tail += tap->tail_text();
  }
  return out;
}

// Compares two engines' observable outcomes field by field. Used for both
// identity oracles (batched-vs-per-frame and serial-vs-sharded): same
// transfer byte counts and completions (content is covered by the receiver's
// per-byte mismatch oracle inside each run), same access-link frame counts,
// same summed NIC verdicts.
void check_run_identity(const FabricRun& a, const FabricRun& b,
                        const char* oracle, const char* a_name,
                        const char* b_name, Failures fail) {
  if (a.received != b.received || a.complete != b.complete) {
    std::string detail;
    for (std::size_t i = 0; i < a.received.size(); ++i) {
      detail += " transfer" + std::to_string(i) + "=" +
                std::to_string(a.received[i]) + "/" +
                std::to_string(b.received[i]);
    }
    fail(std::string(oracle) + ": " + a_name + " vs " + b_name +
         " transfer outcomes diverged (" + a_name + "/" + b_name + "):" + detail);
  }
  if (a.access_tx_frames != b.access_tx_frames ||
      a.access_rx_frames != b.access_rx_frames) {
    fail(std::string(oracle) + ": access-link frame counts diverged (tx " +
         std::to_string(a.access_tx_frames) + " vs " +
         std::to_string(b.access_tx_frames) + ", rx " +
         std::to_string(a.access_rx_frames) + " vs " +
         std::to_string(b.access_rx_frames) + ")");
  }
  if (a.nic_rx_delivered != b.nic_rx_delivered ||
      a.nic_rx_dropped != b.nic_rx_dropped) {
    fail(std::string(oracle) + ": NIC verdict counts diverged (delivered " +
         std::to_string(a.nic_rx_delivered) + " vs " +
         std::to_string(b.nic_rx_delivered) + ", dropped " +
         std::to_string(a.nic_rx_dropped) + " vs " +
         std::to_string(b.nic_rx_dropped) + ")");
  }
}

void run_fabric_scenario(const FabricScenario& s, std::uint64_t seed,
                         std::vector<std::string>* failures,
                         std::string* trace_tail, const FuzzOptions& options) {
  Failures fail{failures};
  const FabricRun batched = run_fabric_once(s, seed, /*batched=*/true,
                                            /*shards=*/0, failures, trace_tail,
                                            options);
  const FabricRun per_frame = run_fabric_once(s, seed, /*batched=*/false,
                                              /*shards=*/0, failures,
                                              trace_tail, options);

  // The batched engine is an optimization, not a model change: same frames,
  // same bytes, same completions.
  check_run_identity(batched, per_frame, "batched-identity", "batched",
                     "per-frame", fail);

  // Shard-identity oracle: the same scenario under the conservative parallel
  // engine (K from BARB_DES_SHARDS, else 2) must reproduce the serial batched
  // run exactly. Draws from no new streams — the scenario is reused as-is.
  const int env_shards = core::des_shards_from_env();
  const int shards = env_shards > 1 ? env_shards : 2;
  const FabricRun sharded = run_fabric_once(s, seed, /*batched=*/true, shards,
                                            failures, trace_tail, options);
  check_run_identity(batched, sharded, "shard-identity", "serial", "sharded",
                     fail);
}

std::string fabric_summary(const FabricScenario& s) {
  return std::string(" | fabric ") + (s.tree ? "tree" : "leaf-spine") +
         " hosts=" + std::to_string(s.hosts) + " transfers=" +
         std::to_string(s.transfers.size());
}

}  // namespace

FuzzOutcome run_seed(std::uint64_t seed, const FuzzOptions& options) {
  FuzzOutcome out;
  out.seed = seed;

  Failures fail{&out.failures};
  if (std::getenv("BARB_FUZZ_FORCE_FAIL") != nullptr) {
    // Exercises the failure-reporting path (seed + scenario dump + trace
    // tail) without a real invariant violation.
    fail("forced failure (BARB_FUZZ_FORCE_FAIL is set)");
  }
  const bool legacy = options.family != FuzzFamily::kPolicy;
  const bool policy = options.family != FuzzFamily::kLegacy;

  if (legacy) {
    out.differential_checks = run_differential_oracle(seed, fail);
    run_scheduler_oracle(seed, fail);

    const Scenario scenario = generate_scenario(seed);
    out.scenario_json = scenario_to_json(scenario);
    out.summary = scenario_summary(scenario);
    if (scenario.star) {
      run_star_scenario(scenario, &out.failures, &out.trace_tail, options);
    } else {
      run_testbed_scenario(scenario, &out.failures, &out.trace_tail, options);
    }

    // Every seed additionally exercises a multi-switch fabric (its own salted
    // stream, so the legacy scenario above is untouched).
    const FabricScenario fabric = generate_fabric_scenario(seed);
    out.summary += fabric_summary(fabric);
    run_fabric_scenario(fabric, seed, &out.failures, &out.trace_tail, options);
  }

  if (policy) {
    out.differential_checks += run_policy_oracle(seed, fail, &out.summary);
  }
  if (out.scenario_json.empty()) {
    // Policy-only runs still need a replayable scenario file: everything is
    // seed-derived, so the seed is the whole scenario.
    telemetry::JsonWriter w;
    w.begin_object();
    w.key("seed").value(static_cast<std::uint64_t>(seed));
    w.key("family").value("policy");
    w.end_object();
    out.scenario_json = w.str();
  }

  out.ok = out.failures.empty();
  return out;
}

bool family_from_name(const std::string& name, FuzzFamily* out) {
  if (name == "all") {
    *out = FuzzFamily::kAll;
  } else if (name == "legacy") {
    *out = FuzzFamily::kLegacy;
  } else if (name == "policy") {
    *out = FuzzFamily::kPolicy;
  } else {
    return false;
  }
  return true;
}

bool seeds_from_file(const std::string& path, std::vector<std::uint64_t>* seeds) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);

  std::size_t i = 0;
  while (i < text.size()) {
    std::size_t eol = text.find('\n', i);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(i, eol - i);
    i = eol + 1;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::size_t p = 0;
    while (p < line.size() && (line[p] == ' ' || line[p] == '\t' || line[p] == '\r')) {
      ++p;
    }
    if (p >= line.size()) continue;
    std::uint64_t value = 0;
    bool any = false;
    while (p < line.size() && line[p] >= '0' && line[p] <= '9') {
      value = value * 10 + static_cast<std::uint64_t>(line[p] - '0');
      any = true;
      ++p;
    }
    while (p < line.size() && (line[p] == ' ' || line[p] == '\t' || line[p] == '\r')) {
      ++p;
    }
    if (!any || p != line.size()) return false;  // junk on a seed line
    seeds->push_back(value);
  }
  return !seeds->empty();
}

bool seed_from_scenario_file(const std::string& path, std::uint64_t* seed) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  // Scenarios are fully derived from the seed, so extracting the one field
  // is all replay needs (no JSON parser in the tree).
  const auto pos = text.find("\"seed\"");
  if (pos == std::string::npos) return false;
  auto i = text.find(':', pos);
  if (i == std::string::npos) return false;
  ++i;
  while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
  std::uint64_t value = 0;
  bool any = false;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(text[i] - '0');
    any = true;
    ++i;
  }
  if (!any) return false;
  *seed = value;
  return true;
}

}  // namespace barb::fuzz
