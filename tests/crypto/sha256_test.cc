#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/random.h"
#include "util/byte_io.h"

namespace barb::crypto {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

std::string digest_hex(std::span<const std::uint8_t> data) {
  return to_hex(Sha256::hash(data));
}

// FIPS 180-4 / NIST example vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex({}),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex(bytes_of("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(digest_hex(bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

// Padding boundary cases: 55 bytes fits length in one block, 56 forces a
// second padding block, 64 is exactly one data block.
TEST(Sha256, PaddingBoundaries) {
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    std::vector<std::uint8_t> data(len, 'a');
    // Compare streaming byte-at-a-time against one-shot.
    Sha256 h;
    for (auto b : data) h.update({&b, 1});
    EXPECT_EQ(h.finalize(), Sha256::hash(data)) << "len=" << len;
  }
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::vector<std::uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingSplitInvariance) {
  sim::Random rng(123);
  std::vector<std::uint8_t> data(1024);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  const auto expected = Sha256::hash(data);

  for (int trial = 0; trial < 20; ++trial) {
    Sha256 h;
    std::size_t pos = 0;
    while (pos < data.size()) {
      const std::size_t n =
          std::min(data.size() - pos, static_cast<std::size_t>(rng.uniform(200) + 1));
      h.update(std::span(data).subspan(pos, n));
      pos += n;
    }
    EXPECT_EQ(h.finalize(), expected);
  }
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  h.update(bytes_of("garbage"));
  h.reset();
  h.update(bytes_of("abc"));
  EXPECT_EQ(to_hex(h.finalize()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256::hash(bytes_of("abc")), Sha256::hash(bytes_of("abd")));
  EXPECT_NE(Sha256::hash(bytes_of("abc")),
            Sha256::hash(bytes_of(std::string("abc\0", 4))));
}

}  // namespace
}  // namespace barb::crypto
