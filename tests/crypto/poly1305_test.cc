#include "crypto/poly1305.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/random.h"
#include "util/byte_io.h"

namespace barb::crypto {
namespace {

// RFC 8439 section 2.5.2.
TEST(Poly1305, RfcVector) {
  Poly1305::Key key = {0x85, 0xd6, 0xbe, 0x78, 0x57, 0x55, 0x6d, 0x33,
                       0x7f, 0x44, 0x52, 0xfe, 0x42, 0xd5, 0x06, 0xa8,
                       0x01, 0x03, 0x80, 0x8a, 0xfb, 0x0d, 0xb2, 0xfd,
                       0x4a, 0xbf, 0xf6, 0xaf, 0x41, 0x49, 0xf5, 0x1b};
  const std::string msg = "Cryptographic Forum Research Group";
  const std::vector<std::uint8_t> data(msg.begin(), msg.end());
  EXPECT_EQ(to_hex(Poly1305::mac(key, data)), "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(Poly1305, EmptyMessageIsJustPad) {
  // With r = 0 and s = pad, the tag of any message is the pad itself; the
  // empty message exercises the no-blocks path.
  Poly1305::Key key{};
  for (int i = 16; i < 32; ++i) key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  const auto tag = Poly1305::mac(key, {});
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(tag[static_cast<std::size_t>(i)], key[static_cast<std::size_t>(i + 16)]);
  }
}

TEST(Poly1305, StreamingSplitInvariance) {
  sim::Random rng(77);
  Poly1305::Key key;
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u64());
  std::vector<std::uint8_t> data(333);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  const auto expected = Poly1305::mac(key, data);

  for (int trial = 0; trial < 20; ++trial) {
    Poly1305 p(key);
    std::size_t pos = 0;
    while (pos < data.size()) {
      const std::size_t n =
          std::min(data.size() - pos, static_cast<std::size_t>(rng.uniform(50) + 1));
      p.update(std::span(data).subspan(pos, n));
      pos += n;
    }
    EXPECT_EQ(p.finalize(), expected);
  }
}

TEST(Poly1305, TagDependsOnEveryMessageByte) {
  sim::Random rng(88);
  Poly1305::Key key;
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u64());
  std::vector<std::uint8_t> data(45);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  const auto base = Poly1305::mac(key, data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    auto mutated = data;
    mutated[i] ^= 0x01;
    EXPECT_NE(Poly1305::mac(key, mutated), base) << "byte " << i;
  }
}

TEST(Poly1305, BlockBoundaryLengths) {
  // Lengths around the 16-byte block boundary hit the partial-block path.
  Poly1305::Key key;
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(i + 1);
  std::vector<std::uint8_t> data(64, 0xab);
  std::vector<std::string> tags;
  for (std::size_t len : {15u, 16u, 17u, 31u, 32u, 33u}) {
    tags.push_back(to_hex(Poly1305::mac(key, std::span(data).first(len))));
  }
  // All distinct (length is authenticated via the final 0x01 marker position).
  for (std::size_t i = 0; i < tags.size(); ++i) {
    for (std::size_t j = i + 1; j < tags.size(); ++j) EXPECT_NE(tags[i], tags[j]);
  }
}

}  // namespace
}  // namespace barb::crypto
