#include "crypto/hmac.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/byte_io.h"

namespace barb::crypto {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

// RFC 4231 test case 1.
TEST(HmacSha256, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const auto mac = hmac_sha256(key, bytes_of("Hi There"));
  EXPECT_EQ(to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 (key shorter than block).
TEST(HmacSha256, Rfc4231Case2) {
  const auto mac =
      hmac_sha256(bytes_of("Jefe"), bytes_of("what do ya want for nothing?"));
  EXPECT_EQ(to_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3 (0xaa*20 key, 0xdd*50 data).
TEST(HmacSha256, Rfc4231Case3) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, KeyLongerThanBlockIsHashedFirst) {
  // RFC 4231 test case 6: 131-byte key of 0xaa.
  const std::vector<std::uint8_t> key(131, 0xaa);
  const auto mac =
      hmac_sha256(key, bytes_of("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(to_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, DifferentKeysDifferentMacs) {
  const auto m1 = hmac_sha256(bytes_of("key1"), bytes_of("msg"));
  const auto m2 = hmac_sha256(bytes_of("key2"), bytes_of("msg"));
  EXPECT_NE(m1, m2);
}

TEST(ConstantTimeEqual, Basics) {
  const std::vector<std::uint8_t> a = {1, 2, 3};
  const std::vector<std::uint8_t> b = {1, 2, 3};
  const std::vector<std::uint8_t> c = {1, 2, 4};
  const std::vector<std::uint8_t> d = {1, 2};
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, d));
  EXPECT_TRUE(constant_time_equal({}, {}));
}

TEST(DeriveKey, LabelsSeparateKeys) {
  const std::vector<std::uint8_t> master(32, 0x42);
  const auto k1 = derive_key(master, "vpg-1/tx");
  const auto k2 = derive_key(master, "vpg-1/rx");
  const auto k3 = derive_key(master, "vpg-1/tx");
  EXPECT_NE(k1, k2);
  EXPECT_EQ(k1, k3);
}

TEST(DeriveKey, MasterSeparatesKeys) {
  const std::vector<std::uint8_t> m1(32, 0x01), m2(32, 0x02);
  EXPECT_NE(derive_key(m1, "label"), derive_key(m2, "label"));
}

}  // namespace
}  // namespace barb::crypto
