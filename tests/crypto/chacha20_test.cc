#include "crypto/chacha20.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "sim/random.h"
#include "util/byte_io.h"

namespace barb::crypto {
namespace {

ChaCha20::Key test_key() {
  ChaCha20::Key key;
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(i);
  return key;
}

// RFC 8439 section 2.1.1.
TEST(ChaCha20, QuarterRoundVector) {
  std::uint32_t a = 0x11111111, b = 0x01020304, c = 0x9b8d6f43, d = 0x01234567;
  ChaCha20::quarter_round(a, b, c, d);
  EXPECT_EQ(a, 0xea2a92f4u);
  EXPECT_EQ(b, 0xcb1cf8ceu);
  EXPECT_EQ(c, 0x4581472eu);
  EXPECT_EQ(d, 0x5881c4bbu);
}

// RFC 8439 section 2.3.2 block function test vector.
TEST(ChaCha20, BlockFunctionVector) {
  ChaCha20::Nonce nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                           0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  const auto block = ChaCha20::block(test_key(), nonce, 1);
  EXPECT_EQ(to_hex(block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

// RFC 8439 section 2.4.2 encryption test vector (first 16 bytes asserted).
TEST(ChaCha20, EncryptionVectorPrefix) {
  ChaCha20::Nonce nonce = {0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                           0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  std::vector<std::uint8_t> data(plaintext.begin(), plaintext.end());
  ChaCha20::xor_stream(test_key(), nonce, 1, data);
  EXPECT_EQ(to_hex(std::span(data).first(16)), "6e2e359a2568f98041ba0728dd0d6981");
  EXPECT_EQ(data.size(), plaintext.size());
}

TEST(ChaCha20, XorStreamIsItsOwnInverse) {
  sim::Random rng(5);
  ChaCha20::Nonce nonce{};
  nonce[0] = 0x24;
  for (std::size_t len : {0u, 1u, 63u, 64u, 65u, 128u, 1000u, 1500u}) {
    std::vector<std::uint8_t> data(len);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto original = data;
    ChaCha20::xor_stream(test_key(), nonce, 7, data);
    if (len > 0) EXPECT_NE(data, original) << "len=" << len;
    ChaCha20::xor_stream(test_key(), nonce, 7, data);
    EXPECT_EQ(data, original) << "len=" << len;
  }
}

TEST(ChaCha20, CounterAdvancesPerBlock) {
  ChaCha20::Nonce nonce{};
  // Encrypting 128 bytes starting at counter 1 must equal block(1)||block(2).
  std::vector<std::uint8_t> zeros(128, 0);
  ChaCha20::xor_stream(test_key(), nonce, 1, zeros);
  const auto b1 = ChaCha20::block(test_key(), nonce, 1);
  const auto b2 = ChaCha20::block(test_key(), nonce, 2);
  EXPECT_TRUE(std::memcmp(zeros.data(), b1.data(), 64) == 0);
  EXPECT_TRUE(std::memcmp(zeros.data() + 64, b2.data(), 64) == 0);
}

TEST(ChaCha20, DistinctNoncesDistinctKeystreams) {
  ChaCha20::Nonce n1{}, n2{};
  n2[11] = 1;
  EXPECT_NE(ChaCha20::block(test_key(), n1, 0), ChaCha20::block(test_key(), n2, 0));
}

TEST(ChaCha20, DistinctKeysDistinctKeystreams) {
  auto k2 = test_key();
  k2[31] ^= 0x80;
  ChaCha20::Nonce nonce{};
  EXPECT_NE(ChaCha20::block(test_key(), nonce, 0), ChaCha20::block(k2, nonce, 0));
}

}  // namespace
}  // namespace barb::crypto
