#include "crypto/aead.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/random.h"
#include "util/byte_io.h"

namespace barb::crypto {
namespace {

struct RfcVector {
  Aead::Key key;
  Aead::Nonce nonce;
  std::vector<std::uint8_t> aad;
  std::string plaintext;
};

RfcVector rfc8439_vector() {
  RfcVector v;
  for (std::size_t i = 0; i < 32; ++i) v.key[i] = static_cast<std::uint8_t>(0x80 + i);
  v.nonce = {0x07, 0x00, 0x00, 0x00, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47};
  v.aad = {0x50, 0x51, 0x52, 0x53, 0xc0, 0xc1, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7};
  v.plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  return v;
}

// RFC 8439 section 2.8.2.
TEST(Aead, Rfc8439SealVector) {
  const auto v = rfc8439_vector();
  const std::vector<std::uint8_t> pt(v.plaintext.begin(), v.plaintext.end());
  const auto sealed = Aead::seal(v.key, v.nonce, v.aad, pt);
  ASSERT_EQ(sealed.size(), pt.size() + Aead::kTagSize);
  EXPECT_EQ(to_hex(std::span(sealed).first(16)), "d31a8d34648e60db7b86afbc53ef7ec2");
  EXPECT_EQ(to_hex(std::span(sealed).last(16)), "1ae10b594f09e26a7e902ecbd0600691");
}

TEST(Aead, Rfc8439OpenVector) {
  const auto v = rfc8439_vector();
  const std::vector<std::uint8_t> pt(v.plaintext.begin(), v.plaintext.end());
  const auto sealed = Aead::seal(v.key, v.nonce, v.aad, pt);
  const auto opened = Aead::open(v.key, v.nonce, v.aad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pt);
}

TEST(Aead, TamperedCiphertextRejected) {
  const auto v = rfc8439_vector();
  const std::vector<std::uint8_t> pt(v.plaintext.begin(), v.plaintext.end());
  auto sealed = Aead::seal(v.key, v.nonce, v.aad, pt);
  for (std::size_t i : {std::size_t{0}, sealed.size() / 2, sealed.size() - 1}) {
    auto bad = sealed;
    bad[i] ^= 0x01;
    EXPECT_FALSE(Aead::open(v.key, v.nonce, v.aad, bad).has_value()) << "byte " << i;
  }
}

TEST(Aead, TamperedAadRejected) {
  const auto v = rfc8439_vector();
  const std::vector<std::uint8_t> pt(v.plaintext.begin(), v.plaintext.end());
  const auto sealed = Aead::seal(v.key, v.nonce, v.aad, pt);
  auto bad_aad = v.aad;
  bad_aad[0] ^= 0xff;
  EXPECT_FALSE(Aead::open(v.key, v.nonce, bad_aad, sealed).has_value());
}

TEST(Aead, WrongKeyOrNonceRejected) {
  const auto v = rfc8439_vector();
  const std::vector<std::uint8_t> pt(v.plaintext.begin(), v.plaintext.end());
  const auto sealed = Aead::seal(v.key, v.nonce, v.aad, pt);
  auto k2 = v.key;
  k2[0] ^= 1;
  EXPECT_FALSE(Aead::open(k2, v.nonce, v.aad, sealed).has_value());
  auto n2 = v.nonce;
  n2[11] ^= 1;
  EXPECT_FALSE(Aead::open(v.key, n2, v.aad, sealed).has_value());
}

TEST(Aead, TooShortInputRejected) {
  const auto v = rfc8439_vector();
  const std::vector<std::uint8_t> short_input(Aead::kTagSize - 1, 0);
  EXPECT_FALSE(Aead::open(v.key, v.nonce, v.aad, short_input).has_value());
}

TEST(Aead, EmptyPlaintextRoundTrips) {
  const auto v = rfc8439_vector();
  const auto sealed = Aead::seal(v.key, v.nonce, v.aad, {});
  EXPECT_EQ(sealed.size(), Aead::kTagSize);
  const auto opened = Aead::open(v.key, v.nonce, v.aad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

// Property sweep: random payload sizes round-trip and never verify when a
// random bit is flipped.
class AeadRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AeadRoundTrip, SealOpenRoundTrip) {
  sim::Random rng(GetParam() * 977 + 1);
  Aead::Key key;
  Aead::Nonce nonce;
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u64());
  for (auto& b : nonce) b = static_cast<std::uint8_t>(rng.next_u64());
  std::vector<std::uint8_t> pt(GetParam());
  for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next_u64());
  std::vector<std::uint8_t> aad(rng.uniform(40));
  for (auto& b : aad) b = static_cast<std::uint8_t>(rng.next_u64());

  const auto sealed = Aead::seal(key, nonce, aad, pt);
  const auto opened = Aead::open(key, nonce, aad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pt);

  if (!sealed.empty()) {
    auto bad = sealed;
    const std::size_t i = rng.uniform(bad.size());
    bad[i] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
    EXPECT_FALSE(Aead::open(key, nonce, aad, bad).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AeadRoundTrip,
                         ::testing::Values(0u, 1u, 15u, 16u, 17u, 64u, 100u, 576u,
                                           1400u, 1460u));

}  // namespace
}  // namespace barb::crypto
