#include <gtest/gtest.h>

#include "stack/tcp.h"
#include "testutil/fixtures.h"
#include "testutil/tcp_helpers.h"

namespace barb::stack {
namespace {

using testutil::BulkSender;
using testutil::TwoHosts;
using testutil::VerifyingReceiver;

struct TransferResult {
  std::size_t received = 0;
  std::size_t mismatches = 0;
  bool eof = false;
  double seconds = 0;
  TcpConnectionStats client_stats;
};

TransferResult run_transfer(std::size_t total_bytes, std::uint64_t seed = 1) {
  sim::Simulation sim(seed);
  TwoHosts net(sim);

  VerifyingReceiver receiver;
  net.b->tcp_listen(5001, [&](std::shared_ptr<TcpConnection> c) { receiver.attach(c); });

  auto client = net.a->tcp_connect(net.b->ip(), 5001);
  BulkSender sender(client, total_bytes);
  const auto start = sim.now();
  sim.run_for(sim::Duration::seconds(600));

  TransferResult r;
  r.received = receiver.received();
  r.mismatches = receiver.mismatches();
  r.eof = receiver.eof();
  r.seconds = (sim.now() - start).to_seconds();
  r.client_stats = client->stats();
  return r;
}

TEST(TcpTransfer, OneSegment) {
  const auto r = run_transfer(1000);
  EXPECT_EQ(r.received, 1000u);
  EXPECT_EQ(r.mismatches, 0u);
}

TEST(TcpTransfer, ExactlyOneMss) {
  const auto r = run_transfer(1460);
  EXPECT_EQ(r.received, 1460u);
  EXPECT_EQ(r.mismatches, 0u);
}

TEST(TcpTransfer, MultiWindowBulk) {
  const auto r = run_transfer(1'000'000);
  EXPECT_EQ(r.received, 1'000'000u);
  EXPECT_EQ(r.mismatches, 0u);
  EXPECT_EQ(r.client_stats.retransmissions, 0u);  // clean link, no loss
}

// Property sweep over odd sizes (segment-boundary edge cases).
class TcpTransferSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TcpTransferSizes, ByteExactDelivery) {
  const auto r = run_transfer(GetParam());
  EXPECT_EQ(r.received, GetParam());
  EXPECT_EQ(r.mismatches, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TcpTransferSizes,
                         ::testing::Values(1u, 1459u, 1461u, 2920u, 65535u, 65536u,
                                           100'000u, 292'001u));

TEST(TcpTransfer, ThroughputNearLineRate) {
  // 10 MB over an idle 100 Mbps link: goodput should be ~94 Mbps
  // (1460 payload / 1538 wire bytes), minus slow-start warmup.
  const std::size_t total = 10'000'000;
  sim::Simulation sim;
  TwoHosts net(sim);

  VerifyingReceiver receiver;
  sim::TimePoint done_at;
  receiver.on_eof = [&] { done_at = sim.now(); };
  net.b->tcp_listen(5001, [&](std::shared_ptr<TcpConnection> c) { receiver.attach(c); });

  auto client = net.a->tcp_connect(net.b->ip(), 5001);
  BulkSender sender(client, total);
  sim.run_for(sim::Duration::seconds(60));

  ASSERT_EQ(receiver.received(), total);
  EXPECT_EQ(receiver.mismatches(), 0u);
  const double goodput = static_cast<double>(total) * 8.0 / done_at.to_seconds();
  EXPECT_GT(goodput, 88e6);
  EXPECT_LT(goodput, 95.2e6);
}

TEST(TcpTransfer, TwoParallelStreamsShareTheLink) {
  sim::Simulation sim;
  TwoHosts net(sim);

  VerifyingReceiver r1, r2;
  int accepted = 0;
  net.b->tcp_listen(5001, [&](std::shared_ptr<TcpConnection> c) {
    (accepted++ == 0 ? r1 : r2).attach(c);
  });

  const std::size_t total = 2'000'000;
  auto c1 = net.a->tcp_connect(net.b->ip(), 5001);
  auto c2 = net.a->tcp_connect(net.b->ip(), 5001);
  BulkSender s1(c1, total, /*close_when_done=*/false);
  BulkSender s2(c2, total, /*close_when_done=*/false);
  sim.run_for(sim::Duration::seconds(60));

  EXPECT_EQ(r1.received() + r2.received(), 2 * total);
  EXPECT_EQ(r1.mismatches() + r2.mismatches(), 0u);
}

TEST(TcpTransfer, SendBufferBackpressureReportsSpace) {
  sim::Simulation sim;
  TwoHosts net(sim);
  net.b->tcp_listen(5001, [](std::shared_ptr<TcpConnection>) {});
  auto client = net.a->tcp_connect(net.b->ip(), 5001);

  int space_callbacks = 0;
  client->on_send_space = [&] { ++space_callbacks; };
  client->on_connected = [&] {
    // Stuff the send buffer until it refuses data.
    std::vector<std::uint8_t> chunk(64 * 1024, 0xaa);
    while (client->send(chunk) == chunk.size()) {
    }
    EXPECT_EQ(client->send_space(), 0u);
  };
  sim.run_for(sim::Duration::seconds(10));
  EXPECT_GT(space_callbacks, 0);
}

}  // namespace
}  // namespace barb::stack
