#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "stack/tcp.h"
#include "testutil/fixtures.h"

namespace barb::stack {
namespace {

using testutil::TwoHosts;

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(TcpHandshake, ConnectAndAccept) {
  sim::Simulation sim;
  TwoHosts net(sim);

  std::shared_ptr<TcpConnection> server_conn;
  net.b->tcp_listen(80, [&](std::shared_ptr<TcpConnection> c) { server_conn = c; });

  bool connected = false;
  auto client = net.a->tcp_connect(net.b->ip(), 80);
  ASSERT_NE(client, nullptr);
  client->on_connected = [&] { connected = true; };
  EXPECT_EQ(client->state(), TcpState::kSynSent);

  sim.run();
  EXPECT_TRUE(connected);
  ASSERT_NE(server_conn, nullptr);
  EXPECT_EQ(client->state(), TcpState::kEstablished);
  EXPECT_EQ(server_conn->state(), TcpState::kEstablished);
  // Both sides negotiated the default MSS.
  EXPECT_EQ(client->mss(), 1460);
  EXPECT_EQ(server_conn->mss(), 1460);
}

TEST(TcpHandshake, ConnectToClosedPortGetsReset) {
  sim::Simulation sim;
  TwoHosts net(sim);

  auto client = net.a->tcp_connect(net.b->ip(), 81);
  bool closed = false;
  client->on_closed = [&] { closed = true; };
  sim.run();
  EXPECT_TRUE(closed);
  EXPECT_EQ(client->state(), TcpState::kClosed);
  EXPECT_EQ(net.b->stats().tcp_rst_sent, 1u);
}

TEST(TcpHandshake, HandshakeCompletesQuickly) {
  sim::Simulation sim;
  TwoHosts net(sim);
  net.b->tcp_listen(80, [](std::shared_ptr<TcpConnection>) {});
  bool connected = false;
  sim::TimePoint connect_time;
  auto client = net.a->tcp_connect(net.b->ip(), 80);
  client->on_connected = [&] {
    connected = true;
    connect_time = sim.now();
  };
  sim.run();
  ASSERT_TRUE(connected);
  // One RTT on an uncontended 100 Mbps link: well under a millisecond.
  EXPECT_LT(connect_time.to_seconds(), 0.001);
}

TEST(TcpData, SmallMessageBothDirections) {
  sim::Simulation sim;
  TwoHosts net(sim);

  std::string server_got, client_got;
  std::shared_ptr<TcpConnection> server_conn;
  net.b->tcp_listen(80, [&](std::shared_ptr<TcpConnection> c) {
    server_conn = c;
    c->on_data = [&, c](std::span<const std::uint8_t> data) {
      server_got.append(data.begin(), data.end());
      const auto reply = bytes_of("pong");
      c->send(reply);
    };
  });

  auto client = net.a->tcp_connect(net.b->ip(), 80);
  client->on_data = [&](std::span<const std::uint8_t> data) {
    client_got.append(data.begin(), data.end());
  };
  client->on_connected = [&] {
    const auto msg = bytes_of("ping");
    client->send(msg);
  };
  sim.run();
  EXPECT_EQ(server_got, "ping");
  EXPECT_EQ(client_got, "pong");
}

TEST(TcpClose, GracefulBothSides) {
  sim::Simulation sim;
  TwoHosts net(sim);

  std::shared_ptr<TcpConnection> server_conn;
  bool server_eof = false;
  net.b->tcp_listen(80, [&](std::shared_ptr<TcpConnection> c) {
    server_conn = c;
    c->on_peer_closed = [&, c] {
      server_eof = true;
      c->close();  // close our side in response
    };
  });

  bool client_closed = false;
  auto client = net.a->tcp_connect(net.b->ip(), 80);
  client->on_connected = [&] { client->close(); };
  client->on_closed = [&] { client_closed = true; };
  sim.run();

  EXPECT_TRUE(server_eof);
  EXPECT_TRUE(client_closed);
  EXPECT_EQ(client->state(), TcpState::kClosed);
  EXPECT_EQ(server_conn->state(), TcpState::kClosed);
}

TEST(TcpClose, DataBeforeFinIsDelivered) {
  sim::Simulation sim;
  TwoHosts net(sim);

  std::string got;
  bool eof = false;
  net.b->tcp_listen(80, [&](std::shared_ptr<TcpConnection> c) {
    c->on_data = [&](std::span<const std::uint8_t> d) { got.append(d.begin(), d.end()); };
    c->on_peer_closed = [&] { eof = true; };
  });

  auto client = net.a->tcp_connect(net.b->ip(), 80);
  client->on_connected = [&] {
    const auto msg = bytes_of("last words");
    client->send(msg);
    client->close();  // FIN right behind the data
  };
  sim.run_for(sim::Duration::seconds(5));
  EXPECT_EQ(got, "last words");
  EXPECT_TRUE(eof);
}

TEST(TcpAbort, SendsResetToPeer) {
  sim::Simulation sim;
  TwoHosts net(sim);

  std::shared_ptr<TcpConnection> server_conn;
  bool server_closed = false;
  net.b->tcp_listen(80, [&](std::shared_ptr<TcpConnection> c) {
    server_conn = c;
    c->on_closed = [&] { server_closed = true; };
  });

  auto client = net.a->tcp_connect(net.b->ip(), 80);
  sim.run();  // establish fully (so the server side has been accepted)
  ASSERT_NE(server_conn, nullptr);
  ASSERT_EQ(server_conn->state(), TcpState::kEstablished);

  client->abort();
  sim.run();
  EXPECT_EQ(client->state(), TcpState::kClosed);
  EXPECT_TRUE(server_closed);
  EXPECT_EQ(server_conn->state(), TcpState::kClosed);
}

TEST(TcpListener, CloseStopsNewConnections) {
  sim::Simulation sim;
  TwoHosts net(sim);
  auto* listener = net.b->tcp_listen(80, [](std::shared_ptr<TcpConnection>) {});
  listener->close();

  auto client = net.a->tcp_connect(net.b->ip(), 80);
  bool closed = false;
  client->on_closed = [&] { closed = true; };
  sim.run();
  EXPECT_TRUE(closed);  // RST, since nothing listens anymore
}

TEST(TcpListener, DuplicatePortRejected) {
  sim::Simulation sim;
  TwoHosts net(sim);
  EXPECT_NE(net.b->tcp_listen(80, [](std::shared_ptr<TcpConnection>) {}), nullptr);
  EXPECT_EQ(net.b->tcp_listen(80, [](std::shared_ptr<TcpConnection>) {}), nullptr);
}

TEST(TcpSend, RejectedAfterClose) {
  sim::Simulation sim;
  TwoHosts net(sim);
  net.b->tcp_listen(80, [](std::shared_ptr<TcpConnection>) {});
  auto client = net.a->tcp_connect(net.b->ip(), 80);
  client->on_connected = [&] {
    client->close();
    const auto msg = bytes_of("too late");
    EXPECT_EQ(client->send(msg), 0u);
  };
  sim.run();
}

TEST(TcpTimeWait, ActiveCloserPassesThroughTimeWait) {
  sim::Simulation sim;
  TwoHosts net(sim);
  net.b->tcp_listen(80, [&](std::shared_ptr<TcpConnection> c) {
    c->on_peer_closed = [c] { c->close(); };
  });
  auto client = net.a->tcp_connect(net.b->ip(), 80);
  client->on_connected = [&] { client->close(); };
  sim.run_until(sim.now() + sim::Duration::milliseconds(500));
  // Client initiated the close, so it must sit in TIME_WAIT before closing.
  EXPECT_EQ(client->state(), TcpState::kTimeWait);
  sim.run();
  EXPECT_EQ(client->state(), TcpState::kClosed);
}

TEST(TcpConnect, TimesOutWhenPeerSilent) {
  sim::Simulation sim;
  TwoHosts net(sim);
  // No listener and also drop b entirely: detach its sink so SYNs vanish.
  net.b->nic().set_host_sink(nullptr);
  auto client = net.a->tcp_connect(net.b->ip(), 80);
  bool closed = false;
  client->on_closed = [&] { closed = true; };
  sim.run_for(sim::Duration::seconds(300));
  EXPECT_TRUE(closed);
  EXPECT_GT(client->stats().retransmissions, 3u);
}

}  // namespace
}  // namespace barb::stack
