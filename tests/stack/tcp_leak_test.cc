// Regression: TcpConnection callback ownership cycles. A connection whose
// std::function callbacks capture its own shared_ptr (the natural style for
// application code: `conn->on_data = [conn](...) {...}`) forms a refcount
// cycle that outlives the simulation unless the stack breaks it — to_closed()
// clears the callbacks after on_closed fires, and ~TcpLayer() clears them on
// connections that never closed. Counted via TcpConnection::live_instances(),
// and caught for real by LeakSanitizer (scripts/ci_sanitize.sh runs with
// detect_leaks=1).
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "stack/tcp.h"
#include "testutil/fixtures.h"

namespace barb::stack {
namespace {

using testutil::TwoHosts;

TEST(TcpLeak, SelfCapturingCallbacksReleasedOnClose) {
  const auto before = TcpConnection::live_instances();
  {
    sim::Simulation sim;
    TwoHosts net(sim);

    net.b->tcp_listen(80, [](std::shared_ptr<TcpConnection> conn) {
      // Server handler captures its own connection in every callback — the
      // cycle under test.
      conn->on_data = [conn](std::span<const std::uint8_t> data) {
        conn->send(std::vector<std::uint8_t>(data.begin(), data.end()));
      };
      conn->on_peer_closed = [conn] { conn->close(); };
    });

    auto client = net.a->tcp_connect(net.b->ip(), 80);
    ASSERT_NE(client, nullptr);
    client->on_connected = [client] {
      client->send(std::vector<std::uint8_t>{'h', 'i'});
      client->close();
    };
    client->on_closed = [client] { (void)client; };
    client.reset();  // only the callbacks and the layer keep it alive now

    sim.run();
  }
  // Both endpoints (and the accepted server connection) are gone.
  EXPECT_EQ(TcpConnection::live_instances(), before);
}

TEST(TcpLeak, ConnectionsAliveAtTeardownAreReleased) {
  const auto before = TcpConnection::live_instances();
  {
    sim::Simulation sim;
    TwoHosts net(sim);

    // Established connections that are never closed: ~TcpLayer() must break
    // their callback cycles at teardown.
    net.b->tcp_listen(80, [](std::shared_ptr<TcpConnection> conn) {
      conn->on_data = [conn](std::span<const std::uint8_t>) {};
      conn->on_peer_closed = [conn] { conn->close(); };
    });
    for (int i = 0; i < 3; ++i) {
      auto client = net.a->tcp_connect(net.b->ip(), 80);
      ASSERT_NE(client, nullptr);
      client->on_connected = [client] {
        client->send(std::vector<std::uint8_t>{'x'});
      };
    }
    sim.run_for(sim::Duration::seconds(2));
    EXPECT_GT(TcpConnection::live_instances(), before);  // all still live here
  }
  EXPECT_EQ(TcpConnection::live_instances(), before);
}

TEST(TcpLeak, ResetCallbacksDropsCapturedState) {
  const auto before = TcpConnection::live_instances();
  std::weak_ptr<TcpConnection> observer;
  {
    sim::Simulation sim;
    TwoHosts net(sim);
    net.b->tcp_listen(80, [](std::shared_ptr<TcpConnection>) {});
    auto client = net.a->tcp_connect(net.b->ip(), 80);
    ASSERT_NE(client, nullptr);
    observer = client;
    client->on_data = [client](std::span<const std::uint8_t>) {};
    client->reset_callbacks();
    EXPECT_EQ(client->on_data, nullptr);
    sim.run();
  }
  EXPECT_TRUE(observer.expired());
  EXPECT_EQ(TcpConnection::live_instances(), before);
}

}  // namespace
}  // namespace barb::stack
