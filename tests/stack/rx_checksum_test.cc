// Receive-side checksum verification: a frame whose transport payload was
// mangled in flight must be dropped by the host stack and counted in
// nic.rx_checksum_drops — never delivered to a socket or answered.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "net/packet.h"
#include "net/packet_builder.h"
#include "net/tcp_header.h"
#include "stack/host.h"
#include "stack/tcp.h"
#include "stack/udp.h"
#include "testutil/fixtures.h"

namespace barb::stack {
namespace {

constexpr std::size_t kEthIp = 14 + 20;  // payload offsets into the frame
constexpr std::size_t kUdpPayloadOff = kEthIp + 8;
constexpr std::size_t kTcpPayloadOff = kEthIp + 20;
constexpr std::size_t kIcmpPayloadOff = kEthIp + 8;

struct RxChecksum : ::testing::Test {
  RxChecksum() : sim(7), net(sim) {}

  net::IpEndpoints a_to_b() const {
    net::IpEndpoints ep;
    ep.src_ip = net.a->ip();
    ep.dst_ip = net.b->ip();
    ep.src_mac = net.a->mac();
    ep.dst_mac = net.b->mac();
    return ep;
  }

  // Injects the frame directly into b's NIC, as the wire would.
  void inject(std::vector<std::uint8_t> frame) {
    net.b->nic().deliver(net::Packet{std::move(frame), sim.now(), next_id_++});
  }

  sim::Simulation sim;
  testutil::TwoHosts net;
  std::uint64_t next_id_ = 1;
};

TEST_F(RxChecksum, CorruptUdpPayloadIsDroppedAndCounted) {
  std::size_t delivered = 0;
  UdpSocket* sock = net.b->udp_open(9000);
  sock->set_receiver([&](net::Ipv4Address, std::uint16_t,
                         std::span<const std::uint8_t>) { ++delivered; });

  const std::vector<std::uint8_t> payload(64, 0xab);
  auto frame = net::build_udp_frame(a_to_b(), 1234, 9000, payload);
  frame[kUdpPayloadOff] ^= 0x01;  // hand-flip one payload bit
  inject(std::move(frame));
  sim.run();

  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(net.b->nic().stats().rx_checksum_drops, 1u);
  EXPECT_EQ(net.b->stats().icmp_unreachable_sent, 0u);  // no response either

  // The intact twin is delivered and does not touch the counter.
  inject(net::build_udp_frame(a_to_b(), 1234, 9000, payload));
  sim.run();
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(net.b->nic().stats().rx_checksum_drops, 1u);
}

TEST_F(RxChecksum, CorruptTcpPayloadIsDroppedAndCounted) {
  bool accepted = false;
  net.b->tcp_listen(5001, [&](std::shared_ptr<TcpConnection>) { accepted = true; });

  net::TcpHeader syn;
  syn.src_port = 4321;
  syn.dst_port = 5001;
  syn.seq = 100;
  syn.flags = net::TcpFlags::kSyn;
  const std::vector<std::uint8_t> payload(32, 0x11);
  auto frame = net::build_tcp_frame(a_to_b(), syn, payload);
  frame[kTcpPayloadOff] ^= 0x80;
  inject(std::move(frame));
  sim.run();

  EXPECT_FALSE(accepted);
  EXPECT_EQ(net.b->nic().stats().rx_checksum_drops, 1u);
  EXPECT_EQ(net.b->stats().tcp_rst_sent, 0u);  // dropped before TCP saw it
}

TEST_F(RxChecksum, CorruptIcmpEchoGetsNoReply) {
  const std::vector<std::uint8_t> payload(48, 0x5a);
  auto frame = net::build_icmp_frame(a_to_b(), 8 /*echo request*/, 0, 0x00010001,
                                     payload);
  frame[kIcmpPayloadOff + 4] ^= 0x01;
  inject(std::move(frame));
  sim.run();

  EXPECT_EQ(net.b->stats().icmp_echo_replies, 0u);
  EXPECT_EQ(net.b->nic().stats().rx_checksum_drops, 1u);
}

TEST_F(RxChecksum, UdpChecksumZeroMeansNotComputedAndIsAccepted) {
  // RFC 768: an all-zero UDP checksum field disables verification.
  const std::vector<std::uint8_t> payload(64, 0xcd);
  auto frame = net::build_udp_frame(a_to_b(), 1234, 9000, payload);
  frame[kEthIp + 6] = 0;  // zero the checksum field...
  frame[kEthIp + 7] = 0;
  frame[kUdpPayloadOff] ^= 0xff;  // ...then mangle the payload

  std::size_t delivered = 0;
  UdpSocket* sock = net.b->udp_open(9000);
  sock->set_receiver([&](net::Ipv4Address, std::uint16_t,
                         std::span<const std::uint8_t>) { ++delivered; });
  inject(std::move(frame));
  sim.run();

  EXPECT_EQ(delivered, 1u);  // accepted despite the mangling
  EXPECT_EQ(net.b->nic().stats().rx_checksum_drops, 0u);
}

TEST_F(RxChecksum, IntactTrafficNeverTouchesTheCounter) {
  std::size_t delivered = 0;
  UdpSocket* sock = net.b->udp_open(9000);
  sock->set_receiver([&](net::Ipv4Address, std::uint16_t,
                         std::span<const std::uint8_t>) { ++delivered; });
  const std::vector<std::uint8_t> payload(100, 0x42);
  for (int i = 0; i < 20; ++i) {
    inject(net::build_udp_frame(a_to_b(), 1234, 9000, payload));
  }
  sim.run();
  EXPECT_EQ(delivered, 20u);
  EXPECT_EQ(net.b->nic().stats().rx_checksum_drops, 0u);
}

}  // namespace
}  // namespace barb::stack
