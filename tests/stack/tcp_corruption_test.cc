// End-to-end checksum protection: corrupted frames must never surface as
// corrupted application data — TCP/IP checksums catch the mangling and the
// retransmission machinery repairs the stream.
#include <gtest/gtest.h>

#include "stack/tcp.h"
#include "testutil/fixtures.h"
#include "testutil/tcp_helpers.h"

namespace barb::stack {
namespace {

using testutil::BulkSender;
using testutil::CorruptingNic;
using testutil::VerifyingReceiver;

struct CorruptingPair {
  CorruptingPair(sim::Simulation& sim, double probability) : link(sim) {
    a = testutil::make_host(sim, "a", 1, net::Ipv4Address(10, 0, 0, 1));
    auto nic = std::make_unique<CorruptingNic>(sim, net::MacAddress::from_host_id(2),
                                               "b/nic", probability);
    nic_ = nic.get();
    b = std::make_unique<Host>(sim, "b", net::Ipv4Address(10, 0, 0, 2),
                               std::move(nic));
    a->nic().attach(link.a());
    b->nic().attach(link.b());
    a->arp().add(b->ip(), b->mac());
    b->arp().add(a->ip(), a->mac());
  }

  link::Link link;
  std::unique_ptr<Host> a;
  std::unique_ptr<Host> b;
  CorruptingNic* nic_ = nullptr;
};

class TcpCorruption : public ::testing::TestWithParam<double> {};

TEST_P(TcpCorruption, NoCorruptByteEverReachesTheApplication) {
  sim::Simulation sim(51);
  CorruptingPair net(sim, GetParam());
  VerifyingReceiver receiver;
  net.b->tcp_listen(5001, [&](std::shared_ptr<TcpConnection> c) { receiver.attach(c); });
  auto client = net.a->tcp_connect(net.b->ip(), 5001);
  BulkSender sender(client, 300'000);
  sim.run_for(sim::Duration::seconds(600));

  EXPECT_GT(net.nic_->corrupted(), 0u);
  EXPECT_EQ(receiver.received(), 300'000u);
  EXPECT_EQ(receiver.mismatches(), 0u);  // the strong property
}

INSTANTIATE_TEST_SUITE_P(Rates, TcpCorruption, ::testing::Values(0.02, 0.1, 0.25));

TEST(TcpCorruptionStats, CorruptionBehavesLikeLoss) {
  // Mangled segments are dropped by checksums, so the sender sees them as
  // loss and retransmits.
  sim::Simulation sim(52);
  CorruptingPair net(sim, 0.1);
  VerifyingReceiver receiver;
  net.b->tcp_listen(5001, [&](std::shared_ptr<TcpConnection> c) { receiver.attach(c); });
  auto client = net.a->tcp_connect(net.b->ip(), 5001);
  BulkSender sender(client, 500'000);
  sim.run_for(sim::Duration::seconds(600));
  ASSERT_EQ(receiver.received(), 500'000u);
  EXPECT_GT(client->stats().retransmissions, 10u);
}

}  // namespace
}  // namespace barb::stack
