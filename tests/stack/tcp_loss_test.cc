// TCP behaviour under frame loss — the mechanism that turns NIC-firewall
// packet drops into the paper's denial-of-service result.
#include <gtest/gtest.h>

#include "stack/tcp.h"
#include "testutil/fixtures.h"
#include "testutil/tcp_helpers.h"

namespace barb::stack {
namespace {

using testutil::BulkSender;
using testutil::LossyNic;
using testutil::VerifyingReceiver;

struct LossyPair {
  LossyPair(sim::Simulation& sim, double loss_at_b) : link(sim) {
    a = testutil::make_host(sim, "a", 1, net::Ipv4Address(10, 0, 0, 1));
    auto lossy_nic = std::make_unique<LossyNic>(sim, net::MacAddress::from_host_id(2),
                                                "b/nic", loss_at_b);
    b = std::make_unique<Host>(sim, "b", net::Ipv4Address(10, 0, 0, 2),
                               std::move(lossy_nic));
    a->nic().attach(link.a());
    b->nic().attach(link.b());
    a->arp().add(b->ip(), b->mac());
    b->arp().add(a->ip(), a->mac());
  }

  link::Link link;
  std::unique_ptr<Host> a;
  std::unique_ptr<Host> b;
};

// Property sweep: data integrity survives any loss rate; throughput degrades.
class TcpLossRecovery : public ::testing::TestWithParam<double> {};

TEST_P(TcpLossRecovery, TransfersExactBytesDespiteLoss) {
  const double loss = GetParam();
  sim::Simulation sim(42);
  LossyPair net(sim, loss);

  VerifyingReceiver receiver;
  net.b->tcp_listen(5001, [&](std::shared_ptr<TcpConnection> c) { receiver.attach(c); });

  const std::size_t total = 200'000;
  auto client = net.a->tcp_connect(net.b->ip(), 5001);
  BulkSender sender(client, total);
  sim.run_for(sim::Duration::seconds(600));

  EXPECT_EQ(receiver.received(), total) << "loss=" << loss;
  EXPECT_EQ(receiver.mismatches(), 0u);
  if (loss >= 0.05) {
    // At 1% the ~140-frame transfer may see zero drops for a given seed;
    // at 5%+ drops are statistically certain.
    EXPECT_GT(client->stats().retransmissions, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, TcpLossRecovery,
                         ::testing::Values(0.0, 0.01, 0.05, 0.15, 0.3));

TEST(TcpLoss, FastRetransmitRecoversSingleDrop) {
  // Moderate loss on a fast transfer must trigger fast retransmit (dupacks),
  // not only timeouts.
  sim::Simulation sim(7);
  LossyPair net(sim, 0.01);
  VerifyingReceiver receiver;
  net.b->tcp_listen(5001, [&](std::shared_ptr<TcpConnection> c) { receiver.attach(c); });
  auto client = net.a->tcp_connect(net.b->ip(), 5001);
  BulkSender sender(client, 2'000'000);
  sim.run_for(sim::Duration::seconds(600));
  EXPECT_EQ(receiver.received(), 2'000'000u);
  EXPECT_GT(client->stats().fast_retransmits, 0u);
}

TEST(TcpLoss, ThroughputCollapsesUnderHeavyLoss) {
  // The paper's DoS: heavy drop rates make goodput collapse by orders of
  // magnitude even though the link itself still has capacity.
  auto goodput_at = [](double loss) {
    sim::Simulation sim(11);
    LossyPair net(sim, loss);
    VerifyingReceiver receiver;
    net.b->tcp_listen(5001,
                      [&](std::shared_ptr<TcpConnection> c) { receiver.attach(c); });
    auto client = net.a->tcp_connect(net.b->ip(), 5001);
    // More data than a 100 Mbps link can move in the window, so the
    // measurement reflects rate, not completion.
    BulkSender sender(client, 200'000'000, /*close_when_done=*/false);
    sim.run_for(sim::Duration::seconds(10));
    return receiver.received() / 10.0 * 8.0;  // bits/s
  };

  const double clean = goodput_at(0.0);
  const double heavy = goodput_at(0.4);
  EXPECT_GT(clean, 80e6);
  EXPECT_LT(heavy, clean / 20.0);
}

TEST(TcpLoss, RetransmissionTimeoutBacksOff) {
  // Drop everything at the receiver after establishment: the sender must
  // back off exponentially, not hammer the network.
  sim::Simulation sim(3);
  LossyPair net(sim, 0.0);
  std::shared_ptr<TcpConnection> server_conn;
  net.b->tcp_listen(5001,
                    [&](std::shared_ptr<TcpConnection> c) { server_conn = c; });
  auto client = net.a->tcp_connect(net.b->ip(), 5001);
  sim.run();  // establish
  ASSERT_EQ(client->state(), TcpState::kEstablished);

  net.b->nic().set_host_sink(nullptr);  // black-hole the receiver
  const std::vector<std::uint8_t> data(1000, 0x55);
  client->send(data);
  sim.run_for(sim::Duration::seconds(30));

  const auto& st = client->stats();
  EXPECT_GE(st.timeouts, 3u);
  EXPECT_LE(st.timeouts, 9u);  // ~200ms,400ms,800ms,...: far fewer than linear
}

TEST(TcpLoss, LostSynIsRetried) {
  sim::Simulation sim(5);
  LossyPair net(sim, 0.9);  // most frames die, including handshake segments
  bool connected = false;
  net.b->tcp_listen(5001, [](std::shared_ptr<TcpConnection>) {});
  auto client = net.a->tcp_connect(net.b->ip(), 5001);
  client->on_connected = [&] { connected = true; };
  sim.run_for(sim::Duration::seconds(120));
  // With 5 SYN retries at 90% loss, connection establishment is likely but
  // not guaranteed; what must hold is that retries happened and the
  // connection reached a definite state.
  EXPECT_GT(client->stats().segments_sent, 1u);
  EXPECT_TRUE(connected || client->state() == TcpState::kClosed);
}

TEST(TcpLoss, OutOfOrderSegmentsReassemble) {
  // 30% loss forces plenty of reordering via retransmission; the verifying
  // receiver proves in-order delivery to the application.
  sim::Simulation sim(9);
  LossyPair net(sim, 0.3);
  VerifyingReceiver receiver;
  net.b->tcp_listen(5001, [&](std::shared_ptr<TcpConnection> c) { receiver.attach(c); });
  auto client = net.a->tcp_connect(net.b->ip(), 5001);
  BulkSender sender(client, 100'000);
  sim.run_for(sim::Duration::seconds(600));
  EXPECT_EQ(receiver.received(), 100'000u);
  EXPECT_EQ(receiver.mismatches(), 0u);
}

}  // namespace
}  // namespace barb::stack
