// StandardNic and Host plumbing details not covered by the protocol tests.
#include <gtest/gtest.h>

#include "net/packet_builder.h"
#include "stack/tcp.h"
#include "stack/udp.h"
#include "testutil/fixtures.h"

namespace barb::stack {
namespace {

using testutil::TwoHosts;

TEST(StandardNic, CountsTxAndRx) {
  sim::Simulation sim(1);
  TwoHosts net(sim);
  auto* sock = net.a->udp_open(0);
  const std::vector<std::uint8_t> data{1, 2, 3};
  sock->send_to(net.b->ip(), 9, data);
  sim.run();
  EXPECT_EQ(net.a->nic().stats().tx_requested, 1u);
  EXPECT_EQ(net.a->nic().stats().tx_sent, 1u);
  EXPECT_EQ(net.b->nic().stats().rx_frames, 1u);
  EXPECT_EQ(net.b->nic().stats().rx_delivered, 1u);
}

TEST(StandardNic, DropsFramesForOtherMacs) {
  sim::Simulation sim(2);
  TwoHosts net(sim);
  net::IpEndpoints ep;
  ep.src_ip = net.a->ip();
  ep.dst_ip = net.b->ip();
  ep.src_mac = net.a->mac();
  ep.dst_mac = net::MacAddress::from_host_id(77);  // nobody
  const std::vector<std::uint8_t> payload{1};
  net.a->nic().transmit({net::build_udp_frame(ep, 1, 2, payload), sim.now(), 0});
  sim.run();
  EXPECT_EQ(net.b->nic().stats().rx_frames, 1u);
  EXPECT_EQ(net.b->nic().stats().rx_dropped, 1u);
  EXPECT_EQ(net.b->nic().stats().rx_delivered, 0u);
}

TEST(StandardNic, AcceptsBroadcastFrames) {
  sim::Simulation sim(3);
  TwoHosts net(sim);
  int received = 0;
  auto* sock = net.b->udp_open(67);
  sock->set_receiver([&received](net::Ipv4Address, std::uint16_t,
                                 std::span<const std::uint8_t>) { ++received; });

  net::IpEndpoints ep;
  ep.src_ip = net.a->ip();
  ep.dst_ip = net::Ipv4Address::broadcast();
  ep.src_mac = net.a->mac();
  ep.dst_mac = net::MacAddress::broadcast();
  const std::vector<std::uint8_t> payload{0x44};
  net.a->nic().transmit({net::build_udp_frame(ep, 68, 67, payload), sim.now(), 0});
  sim.run();
  EXPECT_EQ(received, 1);
}

TEST(StandardNic, TransmitWithoutLinkCountsDrop) {
  sim::Simulation sim(4);
  StandardNic nic(sim, net::MacAddress::from_host_id(1), "orphan");
  nic.transmit(net::Packet{std::vector<std::uint8_t>(60, 0), sim.now(), 0});
  EXPECT_EQ(nic.stats().tx_dropped, 1u);
  EXPECT_EQ(nic.stats().tx_sent, 0u);
}

TEST(Host, IpStatsTrackTraffic) {
  sim::Simulation sim(5);
  TwoHosts net(sim);
  auto* server = net.b->udp_open(9);
  (void)server;
  auto* sock = net.a->udp_open(0);
  const std::vector<std::uint8_t> data{1};
  sock->send_to(net.b->ip(), 9, data);
  sock->send_to(net.b->ip(), 9, data);
  sim.run();
  EXPECT_EQ(net.a->stats().ip_tx, 2u);
  EXPECT_EQ(net.b->stats().ip_rx, 2u);
}

TEST(Host, CorruptTransportChecksumIsDropped) {
  sim::Simulation sim(6);
  TwoHosts net(sim);
  int received = 0;
  net.b->tcp_listen(80, [&](std::shared_ptr<TcpConnection>) { ++received; });

  // A SYN with a deliberately broken TCP checksum must be ignored (no RST,
  // no half-open state).
  net::IpEndpoints ep;
  ep.src_ip = net.a->ip();
  ep.dst_ip = net.b->ip();
  ep.src_mac = net.a->mac();
  ep.dst_mac = net.b->mac();
  net::TcpHeader syn;
  syn.src_port = 40000;
  syn.dst_port = 80;
  syn.flags = net::TcpFlags::kSyn;
  auto frame = net::build_tcp_frame(ep, syn, {});
  frame[net::EthernetHeader::kSize + net::Ipv4Header::kSize + 17] ^= 0xff;
  net.a->nic().transmit({std::move(frame), sim.now(), 0});
  sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.a->stats().tcp_rst_sent + net.b->stats().tcp_rst_sent, 0u);
}

TEST(Host, ConcurrentCrossConnectsBothEstablish) {
  // Both hosts open a connection to the other at the same instant; the
  // handshakes interleave on the wire and both must establish.
  sim::Simulation sim(7);
  TwoHosts net(sim);
  int established = 0;
  net.a->tcp_listen(1111, [&](std::shared_ptr<TcpConnection>) {});
  net.b->tcp_listen(2222, [&](std::shared_ptr<TcpConnection>) {});
  auto c1 = net.a->tcp_connect(net.b->ip(), 2222);
  auto c2 = net.b->tcp_connect(net.a->ip(), 1111);
  c1->on_connected = [&] { ++established; };
  c2->on_connected = [&] { ++established; };
  sim.run();
  EXPECT_EQ(established, 2);
}

TEST(Host, EphemeralPortsSkipBusyPorts) {
  sim::Simulation sim(8);
  TwoHosts net(sim);
  // Occupy a run of the ephemeral range with UDP sockets; allocation for
  // TCP must skip them.
  std::vector<UdpSocket*> sockets;
  for (int i = 0; i < 50; ++i) {
    sockets.push_back(net.a->udp_open(static_cast<std::uint16_t>(32768 + i)));
  }
  net.b->tcp_listen(80, [](std::shared_ptr<TcpConnection>) {});
  auto conn = net.a->tcp_connect(net.b->ip(), 80);
  ASSERT_NE(conn, nullptr);
  EXPECT_GE(conn->key().src_port, 32818);
}

}  // namespace
}  // namespace barb::stack
