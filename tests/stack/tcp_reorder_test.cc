// TCP under frame reordering: delayed duplicates and out-of-order delivery
// are exactly what a congested firewall NIC's queue produces.
#include <gtest/gtest.h>

#include <deque>

#include "stack/tcp.h"
#include "testutil/fixtures.h"
#include "testutil/tcp_helpers.h"

namespace barb::stack {
namespace {

using testutil::BulkSender;
using testutil::VerifyingReceiver;

// A NIC that randomly holds frames back for a short delay, letting later
// frames overtake them (and occasionally duplicates a frame).
class ReorderingNic : public StandardNic {
 public:
  ReorderingNic(sim::Simulation& sim, net::MacAddress mac, std::string name,
                double reorder_probability, bool duplicate = false)
      : StandardNic(sim, mac, std::move(name)),
        reorder_(reorder_probability),
        duplicate_(duplicate) {}

  void deliver(net::Packet pkt) override {
    if (sim_.rng().bernoulli(reorder_)) {
      // Hold this frame past the next few arrivals.
      const auto delay = sim::Duration::microseconds(
          200 + static_cast<std::int64_t>(sim_.rng().uniform(800)));
      // The completion callback needs the packet; share it via a move-once
      // wrapper.
      auto held = std::make_shared<net::Packet>(std::move(pkt));
      sim_.schedule(delay, [this, held] {
        StandardNic::deliver(*held);  // handle copy: same shared buffer
      });
      if (duplicate_ && sim_.rng().bernoulli(0.3)) {
        StandardNic::deliver(*held);
      }
      return;
    }
    StandardNic::deliver(std::move(pkt));
  }

 private:
  double reorder_;
  bool duplicate_;
};

struct ReorderPair {
  ReorderPair(sim::Simulation& sim, double reorder_prob, bool duplicate)
      : link(sim) {
    a = testutil::make_host(sim, "a", 1, net::Ipv4Address(10, 0, 0, 1));
    auto nic = std::make_unique<ReorderingNic>(sim, net::MacAddress::from_host_id(2),
                                               "b/nic", reorder_prob, duplicate);
    b = std::make_unique<Host>(sim, "b", net::Ipv4Address(10, 0, 0, 2),
                               std::move(nic));
    a->nic().attach(link.a());
    b->nic().attach(link.b());
    a->arp().add(b->ip(), b->mac());
    b->arp().add(a->ip(), a->mac());
  }

  link::Link link;
  std::unique_ptr<Host> a;
  std::unique_ptr<Host> b;
};

class TcpReorder : public ::testing::TestWithParam<double> {};

TEST_P(TcpReorder, ByteExactUnderReordering) {
  sim::Simulation sim(21);
  ReorderPair net(sim, GetParam(), /*duplicate=*/false);
  VerifyingReceiver receiver;
  net.b->tcp_listen(5001, [&](std::shared_ptr<TcpConnection> c) { receiver.attach(c); });
  auto client = net.a->tcp_connect(net.b->ip(), 5001);
  BulkSender sender(client, 300'000);
  sim.run_for(sim::Duration::seconds(120));
  EXPECT_EQ(receiver.received(), 300'000u);
  EXPECT_EQ(receiver.mismatches(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Rates, TcpReorder, ::testing::Values(0.02, 0.1, 0.3));

TEST(TcpReorderDup, DuplicatedFramesAreHarmless) {
  sim::Simulation sim(22);
  ReorderPair net(sim, 0.1, /*duplicate=*/true);
  VerifyingReceiver receiver;
  net.b->tcp_listen(5001, [&](std::shared_ptr<TcpConnection> c) { receiver.attach(c); });
  auto client = net.a->tcp_connect(net.b->ip(), 5001);
  BulkSender sender(client, 200'000);
  sim.run_for(sim::Duration::seconds(120));
  EXPECT_EQ(receiver.received(), 200'000u);
  EXPECT_EQ(receiver.mismatches(), 0u);
}

TEST(TcpReorderDup, SpuriousFastRetransmitsStayBounded) {
  // Mild reordering may trigger some dupack-based retransmits but must not
  // dominate the transfer.
  sim::Simulation sim(23);
  ReorderPair net(sim, 0.05, /*duplicate=*/false);
  VerifyingReceiver receiver;
  net.b->tcp_listen(5001, [&](std::shared_ptr<TcpConnection> c) { receiver.attach(c); });
  auto client = net.a->tcp_connect(net.b->ip(), 5001);
  BulkSender sender(client, 500'000);
  sim.run_for(sim::Duration::seconds(120));
  ASSERT_EQ(receiver.received(), 500'000u);
  const auto& st = client->stats();
  EXPECT_LT(st.retransmissions, st.segments_sent / 4);
}

}  // namespace
}  // namespace barb::stack
