// TCP behavior under injected link faults: RTO backoff, fast retransmit,
// reordering transparency, and clean give-up after rto_retries. All
// scenarios are seeded and deterministic.
#include <gtest/gtest.h>

#include <vector>

#include "link/fault_injector.h"
#include "link/link.h"
#include "link/tracer.h"
#include "net/frame_view.h"
#include "sim/simulation.h"
#include "stack/host.h"
#include "stack/tcp.h"
#include "testutil/fixtures.h"
#include "testutil/tcp_helpers.h"

namespace barb {
namespace {

class TcpFault : public ::testing::Test {
 protected:
  sim::Simulation sim{1};
  testutil::TwoHosts net{sim};
};

TEST_F(TcpFault, LossTriggersRtoWithExponentialBackoff) {
  // Establish cleanly, then blackhole the ACK direction (b -> a). Every
  // data retransmission still reaches b, so b's port sees the attempt
  // times; the gaps between them are the sender's RTO schedule.
  bool established = false;
  net.b->tcp_listen(5001, [](std::shared_ptr<stack::TcpConnection>) {});
  auto conn = net.a->tcp_connect(net.b->ip(), 5001);
  conn->on_connected = [&] { established = true; };
  sim.run_for(sim::Duration::seconds(2));
  ASSERT_TRUE(established);

  link::FrameTap tap(net.link.b().sink());
  net.link.b().connect_sink(&tap);

  link::FaultProfile blackhole;
  blackhole.loss = 1.0;
  link::FaultInjector injector(blackhole, 7);
  net.link.b().set_fault_injector(&injector);

  const std::vector<std::uint8_t> data(100, 0x55);
  conn->send(data);
  sim.run();

  // The sender retried until rto_retries consecutive timeouts, then gave up.
  EXPECT_GE(conn->stats().timeouts, 10u);
  EXPECT_GE(conn->stats().retransmissions, 10u);
  EXPECT_EQ(conn->state(), stack::TcpState::kClosed);

  // Collect arrival times of the data segment's transmission attempts.
  std::vector<std::int64_t> attempts;
  for (const auto& frame : tap.frames()) {
    const auto view = net::FrameView::parse(frame.data);
    if (view && view->tcp && !view->l4_payload.empty()) {
      attempts.push_back(frame.at.ns());
    }
  }
  ASSERT_GE(attempts.size(), 5u);
  // Successive gaps must grow roughly geometrically (allowing the max_rto
  // clamp at the tail): each at least 1.5x the previous for the first four.
  std::vector<double> gaps;
  for (std::size_t i = 1; i < attempts.size(); ++i) {
    gaps.push_back(static_cast<double>(attempts[i] - attempts[i - 1]));
  }
  for (std::size_t i = 1; i < 4 && i < gaps.size(); ++i) {
    EXPECT_GE(gaps[i], 1.5 * gaps[i - 1])
        << "gap " << i << " did not back off (" << gaps[i - 1] << " -> " << gaps[i]
        << " ns)";
  }
}

TEST_F(TcpFault, ModerateLossRecoversViaFastRetransmit) {
  // 5% i.i.d. loss on the data direction; the ACK path stays clean, so
  // duplicate ACKs arrive and fast retransmit (not just RTO) kicks in over
  // a long enough transfer.
  link::FaultProfile lossy;
  lossy.loss = 0.05;
  link::FaultInjector injector(lossy, 99);
  net.link.a().set_fault_injector(&injector);

  constexpr std::size_t kBytes = 300 * 1024;
  testutil::VerifyingReceiver receiver;
  net.b->tcp_listen(5001, [&](std::shared_ptr<stack::TcpConnection> c) {
    receiver.attach(c);
  });
  auto conn = net.a->tcp_connect(net.b->ip(), 5001);
  testutil::BulkSender sender(conn, kBytes);
  sim.run();

  EXPECT_EQ(receiver.received(), kBytes);
  EXPECT_EQ(receiver.mismatches(), 0u);
  EXPECT_TRUE(receiver.eof());
  EXPECT_GT(injector.stats().lost(), 0u);
  // Losses require retransmissions; with a clean ACK path some of them are
  // fast retransmits.
  EXPECT_GT(conn->stats().retransmissions, 0u);
  EXPECT_GT(conn->stats().fast_retransmits, 0u);
  EXPECT_GE(conn->stats().retransmissions, conn->stats().fast_retransmits);
}

TEST_F(TcpFault, ReorderingIsInvisibleToTheApplication) {
  link::FaultProfile reordering;
  reordering.reorder = 0.2;
  reordering.reorder_window = 5;
  reordering.reorder_hold = sim::Duration::milliseconds(2);
  link::FaultInjector injector(reordering, 42);
  net.link.a().set_fault_injector(&injector);

  constexpr std::size_t kBytes = 150 * 1024;
  testutil::VerifyingReceiver receiver;
  net.b->tcp_listen(5001, [&](std::shared_ptr<stack::TcpConnection> c) {
    receiver.attach(c);
  });
  auto conn = net.a->tcp_connect(net.b->ip(), 5001);
  testutil::BulkSender sender(conn, kBytes);
  sim.run();

  EXPECT_GT(injector.stats().reordered, 0u);
  // Reordering on the wire, never in the byte stream.
  EXPECT_EQ(receiver.received(), kBytes);
  EXPECT_EQ(receiver.mismatches(), 0u);
  EXPECT_TRUE(receiver.eof());
}

TEST_F(TcpFault, SustainedLossGivesUpCleanly) {
  bool established = false;
  bool closed = false;
  net.b->tcp_listen(5001, [](std::shared_ptr<stack::TcpConnection>) {});
  auto conn = net.a->tcp_connect(net.b->ip(), 5001);
  conn->on_connected = [&] { established = true; };
  conn->on_closed = [&] { closed = true; };
  sim.run_for(sim::Duration::seconds(2));
  ASSERT_TRUE(established);

  // Blackhole both directions mid-connection.
  link::FaultProfile blackhole;
  blackhole.loss = 1.0;
  link::FaultInjector fwd(blackhole, 1);
  link::FaultInjector rev(blackhole, 2);
  net.link.a().set_fault_injector(&fwd);
  net.link.b().set_fault_injector(&rev);

  const std::vector<std::uint8_t> data(2000, 0x77);
  conn->send(data);
  sim.run();

  // Give-up is a full, clean teardown: rto_retries consecutive timeouts,
  // CLOSED state, on_closed fired, and the event queue drained (no timer
  // left running).
  // rto_retries = 10: the sender retried 10 times, and the final timeout
  // that trips the limit is itself counted.
  EXPECT_GE(conn->stats().timeouts, 10u);
  EXPECT_LE(conn->stats().timeouts, 11u);
  EXPECT_EQ(conn->state(), stack::TcpState::kClosed);
  EXPECT_TRUE(closed);
  EXPECT_TRUE(sim.scheduler().empty());
}

TEST_F(TcpFault, FaultScenarioIsDeterministic) {
  auto run_once = [](std::uint64_t seed) {
    sim::Simulation sim(seed);
    testutil::TwoHosts net(sim);
    link::FaultProfile p;
    p.loss = 0.08;
    p.reorder = 0.1;
    p.reorder_window = 3;
    p.jitter_max = sim::Duration::microseconds(200);
    link::FaultInjector injector(p, seed * 2 + 1);
    net.link.a().set_fault_injector(&injector);

    testutil::VerifyingReceiver receiver;
    net.b->tcp_listen(5001, [&](std::shared_ptr<stack::TcpConnection> c) {
      receiver.attach(c);
    });
    auto conn = net.a->tcp_connect(net.b->ip(), 5001);
    testutil::BulkSender sender(conn, 80 * 1024);
    sim.run();

    struct Result {
      std::uint64_t rtx, timeouts, fast, lost, reordered;
      std::size_t received;
      std::int64_t end_ns;
      bool operator==(const Result&) const = default;
    };
    return Result{conn->stats().retransmissions, conn->stats().timeouts,
                  conn->stats().fast_retransmits, injector.stats().lost(),
                  injector.stats().reordered,     receiver.received(),
                  sim.now().ns()};
  };

  const auto r1 = run_once(2024);
  const auto r2 = run_once(2024);
  EXPECT_TRUE(r1 == r2);
  EXPECT_EQ(r1.received, 80u * 1024u);
}

}  // namespace
}  // namespace barb
