// TCP edge cases beyond the bulk-transfer paths.
#include <gtest/gtest.h>

#include "stack/tcp.h"
#include "stack/udp.h"
#include "testutil/fixtures.h"
#include "testutil/tcp_helpers.h"

namespace barb::stack {
namespace {

using testutil::BulkSender;
using testutil::TwoHosts;
using testutil::VerifyingReceiver;

TEST(TcpEdge, AsymmetricMssUsesTheMinimum) {
  sim::Simulation sim(1);
  link::Link link(sim);
  stack::HostConfig small_mss;
  small_mss.mss = 900;
  auto a = testutil::make_host(sim, "a", 1, net::Ipv4Address(10, 0, 0, 1));
  auto b = testutil::make_host(sim, "b", 2, net::Ipv4Address(10, 0, 0, 2), small_mss);
  a->nic().attach(link.a());
  b->nic().attach(link.b());
  a->arp().add(b->ip(), b->mac());
  b->arp().add(a->ip(), a->mac());

  std::shared_ptr<TcpConnection> server_conn;
  b->tcp_listen(80, [&](std::shared_ptr<TcpConnection> c) { server_conn = c; });
  auto client = a->tcp_connect(b->ip(), 80);
  sim.run();
  ASSERT_NE(server_conn, nullptr);
  EXPECT_EQ(client->mss(), 900);
  EXPECT_EQ(server_conn->mss(), 900);
}

TEST(TcpEdge, HalfCloseStillDelivers) {
  // Client closes its sending side; the server keeps sending afterwards
  // (CLOSE_WAIT transmission) and the client receives it all.
  sim::Simulation sim(2);
  TwoHosts net(sim);

  std::shared_ptr<TcpConnection> server_conn;
  net.b->tcp_listen(80, [&](std::shared_ptr<TcpConnection> c) {
    server_conn = c;
    c->on_peer_closed = [c] {
      // Peer finished talking; answer with our own data, then close.
      const std::vector<std::uint8_t> data(5000, 0x7e);
      c->send(data);
      c->close();
    };
  });

  std::size_t received = 0;
  bool client_saw_eof = false;
  auto client = net.a->tcp_connect(net.b->ip(), 80);
  client->on_data = [&](std::span<const std::uint8_t> d) { received += d.size(); };
  client->on_peer_closed = [&] { client_saw_eof = true; };
  client->on_connected = [&] { client->close(); };  // half-close immediately
  sim.run_for(sim::Duration::seconds(10));

  EXPECT_EQ(received, 5000u);
  EXPECT_TRUE(client_saw_eof);
  EXPECT_EQ(client->state(), TcpState::kClosed);
}

TEST(TcpEdge, WindowLimitsThroughputOnHighRttPath) {
  // With a 20 ms one-way delay and a fixed 64 KB window, throughput must sit
  // near window/RTT (~13 Mbps), far under the 100 Mbps line.
  sim::Simulation sim(3);
  link::LinkConfig cfg;
  cfg.propagation = sim::Duration::milliseconds(20);
  TwoHosts net(sim, cfg);

  VerifyingReceiver receiver;
  net.b->tcp_listen(5001, [&](std::shared_ptr<TcpConnection> c) { receiver.attach(c); });
  auto client = net.a->tcp_connect(net.b->ip(), 5001);
  BulkSender sender(client, 20'000'000, /*close_when_done=*/false);
  sim.run_for(sim::Duration::seconds(10));

  const double mbps = static_cast<double>(receiver.received()) * 8 / 10.0 / 1e6;
  const double window_limit = 65535.0 * 8 / 0.040 / 1e6;  // ~13.1 Mbps
  EXPECT_LT(mbps, window_limit * 1.1);
  EXPECT_GT(mbps, window_limit * 0.6);
}

TEST(TcpEdge, IdleEstablishedConnectionStaysUp) {
  sim::Simulation sim(4);
  TwoHosts net(sim);
  std::shared_ptr<TcpConnection> server_conn;
  net.b->tcp_listen(80, [&](std::shared_ptr<TcpConnection> c) { server_conn = c; });
  auto client = net.a->tcp_connect(net.b->ip(), 80);
  sim.run();
  ASSERT_EQ(client->state(), TcpState::kEstablished);

  sim.run_for(sim::Duration::seconds(600));  // ten silent minutes
  EXPECT_EQ(client->state(), TcpState::kEstablished);
  EXPECT_EQ(server_conn->state(), TcpState::kEstablished);

  // Still works afterwards.
  std::string got;
  server_conn->on_data = [&](std::span<const std::uint8_t> d) {
    got.assign(d.begin(), d.end());
  };
  const std::string msg = "still here";
  client->send({reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()});
  sim.run();
  EXPECT_EQ(got, "still here");
}

TEST(TcpEdge, ManySequentialConnectionsRecyclePorts) {
  // Hundreds of connect/close cycles against one server must not leak
  // connections or exhaust ports (TIME_WAIT entries expire).
  sim::Simulation sim(5);
  TwoHosts net(sim);
  net.b->tcp_listen(80, [](std::shared_ptr<TcpConnection> c) {
    c->on_peer_closed = [c] { c->close(); };
  });

  int completed = 0;
  for (int i = 0; i < 300; ++i) {
    auto client = net.a->tcp_connect(net.b->ip(), 80);
    ASSERT_NE(client, nullptr);
    client->on_connected = [client] { client->close(); };
    client->on_closed = [&completed] { ++completed; };
    sim.run_for(sim::Duration::milliseconds(25));
  }
  sim.run_for(sim::Duration::seconds(5));
  EXPECT_EQ(completed, 300);
}

TEST(TcpEdge, ListenerBacklogOfSimultaneousSyns) {
  // 20 clients connect at the same instant; all must establish.
  sim::Simulation sim(6);
  TwoHosts net(sim);
  int accepted = 0;
  net.b->tcp_listen(80, [&](std::shared_ptr<TcpConnection>) { ++accepted; });

  std::vector<std::shared_ptr<TcpConnection>> clients;
  int connected = 0;
  for (int i = 0; i < 20; ++i) {
    auto c = net.a->tcp_connect(net.b->ip(), 80);
    ASSERT_NE(c, nullptr);
    c->on_connected = [&connected] { ++connected; };
    clients.push_back(std::move(c));
  }
  sim.run_for(sim::Duration::seconds(5));
  EXPECT_EQ(accepted, 20);
  EXPECT_EQ(connected, 20);
}

TEST(TcpEdge, DataArrivingWithFinalHandshakeAck) {
  // The client sends data immediately on connect; the server may see the
  // handshake-completing ACK and the first data in quick succession.
  sim::Simulation sim(7);
  TwoHosts net(sim);
  std::string got;
  net.b->tcp_listen(80, [&](std::shared_ptr<TcpConnection> c) {
    c->on_data = [&](std::span<const std::uint8_t> d) { got.append(d.begin(), d.end()); };
  });
  auto client = net.a->tcp_connect(net.b->ip(), 80);
  client->on_connected = [&] {
    const std::string msg = "eager data";
    client->send({reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()});
  };
  sim.run();
  EXPECT_EQ(got, "eager data");
}

}  // namespace
}  // namespace barb::stack
