// SYN-flood behaviour at the listener: backlog exhaustion and recovery.
#include <gtest/gtest.h>

#include "apps/flood_generator.h"
#include "stack/tcp.h"
#include "testutil/fixtures.h"

namespace barb::stack {
namespace {

using testutil::TwoHosts;

TEST(SynBacklog, HalfOpenConnectionsAreCounted) {
  sim::Simulation sim(1);
  TwoHosts net(sim);
  auto* listener = net.b->tcp_listen(80, [](std::shared_ptr<TcpConnection>) {});

  // Send raw SYNs from spoofed (unreachable) sources: the SYN-ACKs go
  // nowhere and no RST ever tears the embryos down, so they stay half-open.
  // (SYNs from a live host's real address get RST'd by that host's own
  // stack immediately — covered by EstablishedConnectionsFreeTheirSlots.)
  for (int i = 0; i < 5; ++i) {
    net::IpEndpoints ep;
    ep.src_ip = net::Ipv4Address(10, 9, 9, static_cast<std::uint8_t>(i + 1));
    ep.dst_ip = net.b->ip();
    ep.src_mac = net.a->mac();
    ep.dst_mac = net.b->mac();
    net::TcpHeader syn;
    syn.src_port = static_cast<std::uint16_t>(50000 + i);
    syn.dst_port = 80;
    syn.seq = 1000;
    syn.flags = net::TcpFlags::kSyn;
    syn.window = 65535;
    net.a->nic().transmit({net::build_tcp_frame(ep, syn, {}), sim.now(), 0});
  }
  sim.run_for(sim::Duration::milliseconds(50));
  EXPECT_EQ(listener->half_open(), 5u);
}

TEST(SynBacklog, FullBacklogDropsFurtherSyns) {
  sim::Simulation sim(2);
  TwoHosts net(sim);
  auto* listener = net.b->tcp_listen(80, [](std::shared_ptr<TcpConnection>) {});
  listener->backlog = 8;

  apps::FloodConfig fc;
  fc.target = net.b->ip();
  fc.target_port = 80;
  fc.type = apps::FloodType::kTcpSyn;
  fc.rate_pps = 2000;
  fc.spoof_source = true;  // spoofed sources never complete the handshake
  apps::FloodGenerator flood(*net.a, fc);
  flood.start();
  sim.run_for(sim::Duration::milliseconds(500));
  flood.stop();

  EXPECT_EQ(listener->half_open(), 8u);
  EXPECT_GT(listener->syn_drops(), 800u);
}

TEST(SynBacklog, LegitConnectionBlockedDuringFloodRecoversAfter) {
  sim::Simulation sim(3);
  TwoHosts net(sim);
  int accepted = 0;
  auto* listener =
      net.b->tcp_listen(80, [&](std::shared_ptr<TcpConnection>) { ++accepted; });
  listener->backlog = 4;

  apps::FloodConfig fc;
  fc.target = net.b->ip();
  fc.target_port = 80;
  fc.type = apps::FloodType::kTcpSyn;
  fc.rate_pps = 5000;
  fc.spoof_source = true;
  apps::FloodGenerator flood(*net.a, fc);
  flood.start();
  sim.run_for(sim::Duration::milliseconds(100));

  // The backlog is pinned full by the flood; a legitimate client's SYN is
  // dropped, so it does not establish promptly.
  auto blocked_client = net.a->tcp_connect(net.b->ip(), 80);
  bool blocked_connected = false;
  blocked_client->on_connected = [&] { blocked_connected = true; };
  sim.run_for(sim::Duration::milliseconds(300));
  EXPECT_FALSE(blocked_connected);
  EXPECT_EQ(accepted, 0);

  // The flood stops; the spoofed half-open embryos exhaust their SYN-ACK
  // retransmissions (~60 s with exponential backoff) and release their
  // slots. A fresh client then connects immediately.
  flood.stop();
  sim.run_for(sim::Duration::seconds(120));
  EXPECT_EQ(listener->half_open(), 0u);

  auto client = net.a->tcp_connect(net.b->ip(), 80);
  bool connected = false;
  client->on_connected = [&] { connected = true; };
  sim.run_for(sim::Duration::seconds(1));
  EXPECT_TRUE(connected);
  EXPECT_GE(accepted, 1);
}

TEST(SynBacklog, EstablishedConnectionsFreeTheirSlots) {
  sim::Simulation sim(4);
  TwoHosts net(sim);
  auto* listener = net.b->tcp_listen(80, [](std::shared_ptr<TcpConnection>) {});
  listener->backlog = 4;

  // Four real connections in sequence: each completes its handshake and
  // releases the slot, so a fifth works fine.
  for (int i = 0; i < 5; ++i) {
    auto client = net.a->tcp_connect(net.b->ip(), 80);
    bool connected = false;
    client->on_connected = [&] { connected = true; };
    sim.run_for(sim::Duration::milliseconds(50));
    EXPECT_TRUE(connected) << "connection " << i;
  }
  EXPECT_EQ(listener->half_open(), 0u);
  EXPECT_EQ(listener->syn_drops(), 0u);
}

}  // namespace
}  // namespace barb::stack
