#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/packet_builder.h"
#include "stack/udp.h"
#include "testutil/fixtures.h"

namespace barb::stack {
namespace {

using testutil::TwoHosts;

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Udp, DatagramRoundTrip) {
  sim::Simulation sim;
  TwoHosts net(sim);

  auto* server = net.b->udp_open(5001);
  ASSERT_NE(server, nullptr);
  std::string received;
  net::Ipv4Address from;
  std::uint16_t from_port = 0;
  server->set_receiver([&](net::Ipv4Address src, std::uint16_t port,
                           std::span<const std::uint8_t> data) {
    from = src;
    from_port = port;
    received.assign(data.begin(), data.end());
  });

  auto* client = net.a->udp_open(0);
  ASSERT_NE(client, nullptr);
  EXPECT_GE(client->local_port(), 32768);
  EXPECT_TRUE(client->send_to(net.b->ip(), 5001, bytes_of("ping")));
  sim.run();

  EXPECT_EQ(received, "ping");
  EXPECT_EQ(from, net.a->ip());
  EXPECT_EQ(from_port, client->local_port());
  EXPECT_EQ(server->datagrams_received(), 1u);
  EXPECT_EQ(server->bytes_received(), 4u);
}

TEST(Udp, ReplyPath) {
  sim::Simulation sim;
  TwoHosts net(sim);

  auto* server = net.b->udp_open(7);
  server->set_receiver([&](net::Ipv4Address src, std::uint16_t port,
                           std::span<const std::uint8_t> data) {
    std::vector<std::uint8_t> echo(data.begin(), data.end());
    server->send_to(src, port, echo);
  });

  auto* client = net.a->udp_open(0);
  std::string reply;
  client->set_receiver([&](net::Ipv4Address, std::uint16_t,
                           std::span<const std::uint8_t> data) {
    reply.assign(data.begin(), data.end());
  });
  client->send_to(net.b->ip(), 7, bytes_of("echo me"));
  sim.run();
  EXPECT_EQ(reply, "echo me");
}

TEST(Udp, PortCollisionRejected) {
  sim::Simulation sim;
  TwoHosts net(sim);
  EXPECT_NE(net.a->udp_open(53), nullptr);
  EXPECT_EQ(net.a->udp_open(53), nullptr);
}

TEST(Udp, CloseFreesPort) {
  sim::Simulation sim;
  TwoHosts net(sim);
  auto* s = net.a->udp_open(53);
  s->close();
  EXPECT_NE(net.a->udp_open(53), nullptr);
}

TEST(Udp, OversizedDatagramRejected) {
  sim::Simulation sim;
  TwoHosts net(sim);
  auto* s = net.a->udp_open(0);
  const std::vector<std::uint8_t> big(1500, 0);  // + headers > MTU
  EXPECT_FALSE(s->send_to(net.b->ip(), 9, big));
}

TEST(Udp, ClosedPortTriggersRateLimitedIcmpError) {
  sim::Simulation sim;
  TwoHosts net(sim);

  auto* client = net.a->udp_open(0);
  // Burst of 10 datagrams to a closed port within one second: Linux-style
  // rate limiting means only ~1 ICMP error comes back.
  for (int i = 0; i < 10; ++i) {
    client->send_to(net.b->ip(), 9999, bytes_of("x"));
  }
  sim.run();
  EXPECT_EQ(net.b->stats().icmp_unreachable_sent, 1u);
  EXPECT_EQ(net.b->stats().icmp_unreachable_suppressed, 9u);

  // After a second, the error budget refills.
  sim.run_for(sim::Duration::seconds(2));
  client->send_to(net.b->ip(), 9999, bytes_of("x"));
  sim.run();
  EXPECT_EQ(net.b->stats().icmp_unreachable_sent, 2u);
}

TEST(Icmp, EchoRequestGetsReply) {
  sim::Simulation sim;
  TwoHosts net(sim);

  // Craft an echo request directly (the stack has no ping client).
  net::IpEndpoints ep;
  ep.src_ip = net.a->ip();
  ep.dst_ip = net.b->ip();
  ep.src_mac = net.a->mac();
  ep.dst_mac = net.b->mac();
  const auto payload = bytes_of("abcdefgh");
  auto frame = net::build_icmp_frame(
      ep, static_cast<std::uint8_t>(net::IcmpType::kEchoRequest), 0, 0x12340001,
      payload);
  net.a->nic().transmit(net::Packet{std::move(frame), sim.now(), 1});
  sim.run();

  EXPECT_EQ(net.b->stats().icmp_echo_replies, 1u);
  // The reply reaches host a's IP layer (counted as received).
  EXPECT_EQ(net.a->stats().ip_rx, 1u);
}

TEST(Host, DropsPacketsForOtherAddresses) {
  sim::Simulation sim;
  TwoHosts net(sim);
  // Send to b's MAC but a different IP: the IP layer must drop it.
  net::IpEndpoints ep;
  ep.src_ip = net.a->ip();
  ep.dst_ip = net::Ipv4Address(10, 0, 0, 99);
  ep.src_mac = net.a->mac();
  ep.dst_mac = net.b->mac();
  const auto payload = bytes_of("x");
  auto frame = net::build_udp_frame(ep, 1, 2, payload);
  net.a->nic().transmit(net::Packet{std::move(frame), sim.now(), 1});
  sim.run();
  EXPECT_EQ(net.b->stats().ip_rx, 0u);
  EXPECT_EQ(net.b->stats().ip_rx_dropped, 1u);
}

TEST(Host, EphemeralPortsAdvance) {
  sim::Simulation sim;
  TwoHosts net(sim);
  auto* s1 = net.a->udp_open(0);
  auto* s2 = net.a->udp_open(0);
  EXPECT_NE(s1->local_port(), s2->local_port());
  EXPECT_GE(s1->local_port(), 32768);
  EXPECT_LE(s1->local_port(), 60999);
}

TEST(Host, SendToUnknownDestinationFails) {
  sim::Simulation sim;
  TwoHosts net(sim);
  auto* s = net.a->udp_open(0);
  const auto payload = bytes_of("x");
  EXPECT_FALSE(s->send_to(net::Ipv4Address(10, 0, 0, 77), 9, payload));
}

}  // namespace
}  // namespace barb::stack
