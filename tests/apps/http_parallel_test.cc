// The paper's alternative http_load methodology: fixed connection rate,
// measure how many parallel connections the server ends up carrying.
#include <gtest/gtest.h>

#include "apps/http.h"
#include "core/testbed.h"
#include "testutil/fixtures.h"

namespace barb::apps {
namespace {

using testutil::TwoHosts;

TEST(HttpParallel, LowRateCompletesEverythingWithLittleParallelism) {
  sim::Simulation sim(1);
  TwoHosts net(sim);
  HttpServer server(*net.b, 80);
  server.start();

  HttpParallelLoadClient client(*net.a, net.b->ip());
  HttpParallelResult result;
  client.run(/*connections_per_sec=*/50, sim::Duration::seconds(2),
             [&](HttpParallelResult r) { result = r; });
  sim.run_for(sim::Duration::seconds(3));

  EXPECT_NEAR(static_cast<double>(result.started), 100, 3);
  EXPECT_GT(result.completion_fraction, 0.97);
  // Each fetch takes ~5 ms; at 50/s that is ~0.25 connections in flight.
  EXPECT_LT(result.mean_parallel, 1.0);
  EXPECT_LE(result.max_parallel, 3u);
}

TEST(HttpParallel, ParallelismScalesWithConnectionRate) {
  auto mean_parallel_at = [](double rate) {
    sim::Simulation sim(2);
    TwoHosts net(sim);
    HttpServer server(*net.b, 80);
    server.start();
    HttpParallelLoadClient client(*net.a, net.b->ip());
    HttpParallelResult result;
    client.run(rate, sim::Duration::seconds(2),
               [&](HttpParallelResult r) { result = r; });
    sim.run_for(sim::Duration::seconds(4));
    EXPECT_GT(result.completion_fraction, 0.9) << "rate " << rate;
    return result.mean_parallel;
  };

  // Little's law: in-flight ~ rate * per-fetch latency.
  const double at_50 = mean_parallel_at(50);
  const double at_150 = mean_parallel_at(150);
  EXPECT_NEAR(at_150 / at_50, 3.0, 0.8);
}

TEST(HttpParallel, FirewallRaisesRequiredParallelism) {
  // Behind a deep ADF rule-set each fetch takes longer, so sustaining the
  // same connection rate needs more concurrent connections — the metric the
  // paper's alternative methodology would have reported.
  auto mean_parallel_for = [](core::FirewallKind kind, int depth) {
    sim::Simulation sim(3);
    core::TestbedConfig cfg;
    cfg.firewall = kind;
    cfg.action_rule_depth = depth;
    core::Testbed tb(sim, cfg);
    HttpServer server(tb.target(), 80);
    server.start();
    HttpParallelLoadClient client(tb.client(), tb.addresses().target);
    HttpParallelResult result;
    client.run(100, sim::Duration::seconds(2),
               [&](HttpParallelResult r) { result = r; });
    sim.run_for(sim::Duration::seconds(4));
    return result.mean_parallel;
  };

  const double baseline = mean_parallel_for(core::FirewallKind::kNone, 1);
  const double behind_adf = mean_parallel_for(core::FirewallKind::kAdf, 64);
  EXPECT_GT(behind_adf, baseline * 1.2);
}

TEST(HttpParallel, ParallelCapRefusesExcessConnections) {
  sim::Simulation sim(4);
  TwoHosts net(sim);
  HttpServer server(*net.b, 80);
  server.request_service_time = sim::Duration::milliseconds(100);  // slow server
  server.start();

  HttpParallelLoadClient client(*net.a, net.b->ip());
  HttpParallelResult result;
  client.run(/*connections_per_sec=*/200, sim::Duration::seconds(1),
             [&](HttpParallelResult r) { result = r; },
             /*max_parallel=*/5);
  sim.run_for(sim::Duration::seconds(3));

  EXPECT_LE(result.max_parallel, 5u);
  EXPECT_GT(result.errors, 50u);  // refusals beyond the cap
}

}  // namespace
}  // namespace barb::apps
