#include "apps/ping.h"

#include <gtest/gtest.h>

#include "core/testbed.h"
#include "testutil/fixtures.h"

namespace barb::apps {
namespace {

using testutil::TwoHosts;

TEST(Ping, MeasuresRoundTripOnCleanLink) {
  sim::Simulation sim(1);
  TwoHosts net(sim);
  PingClient ping(*net.a, net.b->ip());
  PingResult result;
  ping.run(10, [&](PingResult r) { result = r; });
  sim.run_for(sim::Duration::seconds(5));

  EXPECT_EQ(result.sent, 10u);
  EXPECT_EQ(result.received, 10u);
  EXPECT_DOUBLE_EQ(result.loss_fraction, 0.0);
  // Two wire traversals of a ~90-byte frame plus propagation: tens of us.
  EXPECT_GT(result.min_rtt_ms, 0.005);
  EXPECT_LT(result.max_rtt_ms, 1.0);
}

TEST(Ping, UnreachableTargetLosesEverything) {
  sim::Simulation sim(2);
  TwoHosts net(sim);
  net.b->nic().set_host_sink(nullptr);  // black hole
  PingClient ping(*net.a, net.b->ip());
  PingResult result;
  ping.run(5, [&](PingResult r) { result = r; });
  sim.run_for(sim::Duration::seconds(5));
  EXPECT_EQ(result.sent, 5u);
  EXPECT_EQ(result.received, 0u);
  EXPECT_DOUBLE_EQ(result.loss_fraction, 1.0);
}

TEST(Ping, RttGrowsWithRuleDepth) {
  // The firewall's rule walk is directly visible in ping RTT (the frame is
  // serviced twice: inbound request, outbound reply).
  auto rtt_at_depth = [](int depth) {
    sim::Simulation sim(3);
    core::TestbedConfig cfg;
    cfg.firewall = core::FirewallKind::kAdf;
    cfg.action_rule_depth = depth;
    core::Testbed tb(sim, cfg);
    PingClient ping(tb.client(), tb.addresses().target);
    PingResult result;
    ping.run(20, [&](PingResult r) { result = r; });
    sim.run_for(sim::Duration::seconds(10));
    EXPECT_EQ(result.received, 20u) << "depth " << depth;
    return result.mean_rtt_ms;
  };

  const double shallow = rtt_at_depth(1);
  const double deep = rtt_at_depth(64);
  // Two extra walks of 63 ADF rules: ~2 * 63 * 2.92 us ~ 0.37 ms.
  EXPECT_NEAR(deep - shallow, 0.37, 0.12);
}

TEST(Ping, WorksThroughTheVpgTunnel) {
  // ICMP is tunneled like any other protocol between VPG members.
  sim::Simulation sim(9);
  core::TestbedConfig cfg;
  cfg.firewall = core::FirewallKind::kAdfVpg;
  cfg.action_rule_depth = 1;
  core::Testbed tb(sim, cfg);
  PingClient ping(tb.client(), tb.addresses().target);
  PingResult result;
  ping.run(5, [&](PingResult r) { result = r; });
  sim.run_for(sim::Duration::seconds(5));
  EXPECT_EQ(result.received, 5u);
  // Both directions were encapsulated (request + reply per ping).
  EXPECT_GE(tb.target_firewall()->vpg_table().stats().decapsulated, 5u);
  EXPECT_GE(tb.target_firewall()->vpg_table().stats().encapsulated, 5u);
}

TEST(Ping, RepliesAfterTimeoutCountAsLost) {
  // Insert a one-way delay larger than the timeout.
  sim::Simulation sim(4);
  link::LinkConfig slow;
  slow.propagation = sim::Duration::milliseconds(800);
  TwoHosts net(sim, slow);
  PingClient ping(*net.a, net.b->ip());
  PingResult result;
  ping.run(3, [&](PingResult r) { result = r; },
           /*interval=*/sim::Duration::milliseconds(100),
           /*timeout=*/sim::Duration::seconds(1));
  sim.run_for(sim::Duration::seconds(10));
  EXPECT_EQ(result.sent, 3u);
  EXPECT_EQ(result.received, 0u);  // RTT 1.6 s > 1 s timeout
}

}  // namespace
}  // namespace barb::apps
