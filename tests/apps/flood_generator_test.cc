#include "apps/flood_generator.h"

#include <gtest/gtest.h>

#include <set>

#include "testutil/fixtures.h"

namespace barb::apps {
namespace {

using testutil::TwoHosts;

// Collects all frames arriving at the victim's NIC.
struct VictimTap : link::FrameSink {
  std::vector<net::Packet> frames;
  void deliver(net::Packet pkt) override { frames.push_back(std::move(pkt)); }
};

struct FloodFixture {
  sim::Simulation sim{1};
  TwoHosts net{sim};
  VictimTap tap;

  FloodConfig base_config(FloodType type, double rate) {
    FloodConfig cfg;
    cfg.target = net.b->ip();
    cfg.target_port = 7777;
    cfg.type = type;
    cfg.rate_pps = rate;
    return cfg;
  }

  // Redirect victim-NIC frames into the tap (instead of the host stack).
  void install_tap() { net.b->nic().set_host_sink(&tap); }
};

TEST(FloodGenerator, AchievesConfiguredRate) {
  FloodFixture f;
  f.install_tap();
  FloodGenerator flood(*f.net.a, f.base_config(FloodType::kUdp, 10000));
  flood.start();
  f.sim.run_for(sim::Duration::seconds(1));
  flood.stop();
  EXPECT_NEAR(static_cast<double>(flood.packets_sent()), 10000.0, 10.0);
  EXPECT_NEAR(static_cast<double>(f.tap.frames.size()), 10000.0, 20.0);
}

TEST(FloodGenerator, StopHalts) {
  FloodFixture f;
  f.install_tap();
  FloodGenerator flood(*f.net.a, f.base_config(FloodType::kUdp, 1000));
  flood.start();
  f.sim.run_for(sim::Duration::milliseconds(500));
  flood.stop();
  const auto sent = flood.packets_sent();
  f.sim.run_for(sim::Duration::seconds(1));
  EXPECT_EQ(flood.packets_sent(), sent);
}

TEST(FloodGenerator, MinimumFrameSize) {
  FloodFixture f;
  f.install_tap();
  FloodGenerator flood(*f.net.a, f.base_config(FloodType::kUdp, 1000));
  flood.start();
  f.sim.run_for(sim::Duration::milliseconds(100));
  flood.stop();
  ASSERT_FALSE(f.tap.frames.empty());
  for (const auto& frame : f.tap.frames) {
    EXPECT_EQ(frame.size(), net::kEthernetMinFrameNoFcs);
  }
}

TEST(FloodGenerator, ConfigurableFrameSize) {
  FloodFixture f;
  f.install_tap();
  auto cfg = f.base_config(FloodType::kUdp, 1000);
  cfg.frame_size = 512;
  FloodGenerator flood(*f.net.a, cfg);
  flood.start();
  f.sim.run_for(sim::Duration::milliseconds(50));
  flood.stop();
  ASSERT_FALSE(f.tap.frames.empty());
  EXPECT_EQ(f.tap.frames[0].size(), 512u);
}

TEST(FloodGenerator, UdpPacketsAreWellFormed) {
  FloodFixture f;
  f.install_tap();
  FloodGenerator flood(*f.net.a, f.base_config(FloodType::kUdp, 1000));
  flood.start();
  f.sim.run_for(sim::Duration::milliseconds(20));
  flood.stop();
  ASSERT_FALSE(f.tap.frames.empty());
  auto v = net::FrameView::parse(f.tap.frames[0].bytes());
  ASSERT_TRUE(v && v->ip && v->udp);
  EXPECT_EQ(v->ip->src, f.net.a->ip());
  EXPECT_EQ(v->ip->dst, f.net.b->ip());
  EXPECT_EQ(v->udp->dst_port, 7777);
}

TEST(FloodGenerator, TcpSynFlood) {
  FloodFixture f;
  f.install_tap();
  FloodGenerator flood(*f.net.a, f.base_config(FloodType::kTcpSyn, 1000));
  flood.start();
  f.sim.run_for(sim::Duration::milliseconds(20));
  flood.stop();
  ASSERT_FALSE(f.tap.frames.empty());
  auto v = net::FrameView::parse(f.tap.frames[0].bytes());
  ASSERT_TRUE(v && v->tcp);
  EXPECT_TRUE(v->tcp->syn());
  EXPECT_FALSE(v->tcp->ack_flag());
}

TEST(FloodGenerator, TcpDataFloodElicitsRstPerPacket) {
  // The paper's key mechanism: allowed TCP flood packets reach the host,
  // which answers each with a RST — doubling traffic through the firewall.
  FloodFixture f;  // no tap: frames reach the real host stack
  FloodGenerator flood(*f.net.a, f.base_config(FloodType::kTcpData, 500));
  flood.start();
  f.sim.run_for(sim::Duration::seconds(1));
  flood.stop();
  f.sim.run_for(sim::Duration::milliseconds(50));
  const auto rsts = f.net.b->stats().tcp_rst_sent;
  EXPECT_NEAR(static_cast<double>(rsts), 500.0, 5.0);
}

TEST(FloodGenerator, UdpFloodElicitsAlmostNoResponses) {
  // ICMP port-unreachable is rate-limited: a UDP flood generates ~1
  // response/s, not one per packet (why the paper's deny/allow factor needs
  // a TCP flood).
  FloodFixture f;
  FloodGenerator flood(*f.net.a, f.base_config(FloodType::kUdp, 2000));
  flood.start();
  f.sim.run_for(sim::Duration::seconds(2));
  flood.stop();
  EXPECT_LE(f.net.b->stats().icmp_unreachable_sent, 3u);
  EXPECT_GT(f.net.b->stats().icmp_unreachable_suppressed, 3000u);
}

TEST(FloodGenerator, SpoofedSourcesVary) {
  FloodFixture f;
  f.install_tap();
  auto cfg = f.base_config(FloodType::kUdp, 5000);
  cfg.spoof_source = true;
  FloodGenerator flood(*f.net.a, cfg);
  flood.start();
  f.sim.run_for(sim::Duration::milliseconds(100));
  flood.stop();

  std::set<std::uint32_t> sources;
  std::set<std::uint16_t> ports;
  for (const auto& frame : f.tap.frames) {
    auto v = net::FrameView::parse(frame.bytes());
    ASSERT_TRUE(v && v->ip && v->udp);
    sources.insert(v->ip->src.value());
    ports.insert(v->udp->src_port);
    EXPECT_TRUE(v->ip->src.in_subnet(net::Ipv4Address(10, 0, 0, 0), 8));
  }
  EXPECT_GT(sources.size(), f.tap.frames.size() / 2);
  EXPECT_GT(ports.size(), 10u);
}

TEST(FloodGenerator, RateChangeTakesEffect) {
  FloodFixture f;
  f.install_tap();
  FloodGenerator flood(*f.net.a, f.base_config(FloodType::kUdp, 1000));
  flood.start();
  f.sim.run_for(sim::Duration::seconds(1));
  const auto at_low = flood.packets_sent();
  flood.set_rate(5000);
  f.sim.run_for(sim::Duration::seconds(1));
  const auto delta = flood.packets_sent() - at_low;
  EXPECT_NEAR(static_cast<double>(at_low), 1000.0, 10.0);
  EXPECT_NEAR(static_cast<double>(delta), 5000.0, 50.0);
}

}  // namespace
}  // namespace barb::apps
