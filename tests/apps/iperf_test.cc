#include "apps/iperf.h"

#include <gtest/gtest.h>

#include "testutil/fixtures.h"
#include "testutil/tcp_helpers.h"

namespace barb::apps {
namespace {

using testutil::TwoHosts;

TEST(Iperf, TcpMeasuresNearLineRateOnIdleLink) {
  sim::Simulation sim(1);
  TwoHosts net(sim);
  IperfServer server(*net.b);
  server.start();

  IperfClient client(*net.a, net.b->ip());
  IperfResult result;
  client.run(IperfClient::Mode::kTcp, sim::Duration::seconds(2),
             [&](IperfResult r) { result = r; });
  sim.run_for(sim::Duration::seconds(3));

  EXPECT_TRUE(result.completed);
  EXPECT_GT(result.mbps, 88.0);
  EXPECT_LT(result.mbps, 95.2);
  EXPECT_EQ(result.retransmissions, 0u);
  EXPECT_EQ(server.connections_accepted(), 1u);
  EXPECT_GT(server.tcp_bytes_received(), 20'000'000u);
}

TEST(Iperf, TcpAgainstDeadServerReportsZero) {
  sim::Simulation sim(1);
  TwoHosts net(sim);
  // No server started: the target responds with RST.
  IperfClient client(*net.a, net.b->ip());
  IperfResult result;
  bool done = false;
  client.run(IperfClient::Mode::kTcp, sim::Duration::seconds(1), [&](IperfResult r) {
    result = r;
    done = true;
  });
  sim.run_for(sim::Duration::seconds(3));
  EXPECT_TRUE(done);
  EXPECT_EQ(result.bytes, 0u);
  EXPECT_DOUBLE_EQ(result.mbps, 0.0);
}

TEST(Iperf, CancelReportsPartialMeasurement) {
  sim::Simulation sim(1);
  TwoHosts net(sim);
  IperfServer server(*net.b);
  server.start();

  IperfClient client(*net.a, net.b->ip());
  IperfResult result;
  bool done = false;
  client.run(IperfClient::Mode::kTcp, sim::Duration::seconds(100), [&](IperfResult r) {
    result = r;
    done = true;
  });
  sim.run_for(sim::Duration::seconds(1));
  EXPECT_FALSE(done);
  client.cancel();
  sim.run_for(sim::Duration::milliseconds(10));
  EXPECT_TRUE(done);
  EXPECT_TRUE(result.completed);
  EXPECT_GT(result.mbps, 80.0);
}

TEST(Iperf, UdpPacedRateIsMeasuredByServerReport) {
  sim::Simulation sim(1);
  TwoHosts net(sim);
  IperfServer server(*net.b);
  server.start();

  IperfClient client(*net.a, net.b->ip());
  IperfResult result;
  bool done = false;
  client.run(
      IperfClient::Mode::kUdp, sim::Duration::seconds(2),
      [&](IperfResult r) {
        result = r;
        done = true;
      },
      /*udp_rate_bps=*/10e6);
  sim.run_for(sim::Duration::seconds(4));

  ASSERT_TRUE(done);
  EXPECT_TRUE(result.completed);
  // Payload goodput is a bit below the configured gross rate.
  EXPECT_GT(result.mbps, 8.5);
  EXPECT_LT(result.mbps, 10.1);
  EXPECT_GT(server.udp_datagrams_received(), 1000u);
}

TEST(Iperf, UdpReportRetriesSurviveReportLoss) {
  // Even if some datagrams die, repeated report requests eventually land.
  sim::Simulation sim(3);
  link::Link link(sim);
  auto a = testutil::make_host(sim, "a", 1, net::Ipv4Address(10, 0, 0, 1));
  auto lossy = std::make_unique<testutil::LossyNic>(
      sim, net::MacAddress::from_host_id(2), "b/nic", 0.3);
  auto b = std::make_unique<stack::Host>(sim, "b", net::Ipv4Address(10, 0, 0, 2),
                                         std::move(lossy));
  a->nic().attach(link.a());
  b->nic().attach(link.b());
  a->arp().add(b->ip(), b->mac());
  b->arp().add(a->ip(), a->mac());

  IperfServer server(*b);
  server.start();
  IperfClient client(*a, b->ip());
  bool done = false;
  IperfResult result;
  client.run(
      IperfClient::Mode::kUdp, sim::Duration::seconds(1),
      [&](IperfResult r) {
        result = r;
        done = true;
      },
      5e6);
  sim.run_for(sim::Duration::seconds(10));
  EXPECT_TRUE(done);
  if (result.completed) {
    // ~30% of datagrams were lost; the report reflects the received share.
    EXPECT_LT(result.mbps, 4.6);
    EXPECT_GT(result.mbps, 1.5);
  }
}

TEST(Iperf, SequentialMeasurementsAreIndependent) {
  sim::Simulation sim(1);
  TwoHosts net(sim);
  IperfServer server(*net.b);
  server.start();

  std::vector<double> results;
  for (int rep = 0; rep < 3; ++rep) {
    IperfClient client(*net.a, net.b->ip());
    client.run(IperfClient::Mode::kTcp, sim::Duration::seconds(1),
               [&](IperfResult r) { results.push_back(r.mbps); });
    sim.run_for(sim::Duration::seconds(2));
  }
  ASSERT_EQ(results.size(), 3u);
  for (double mbps : results) EXPECT_GT(mbps, 85.0);
  EXPECT_EQ(server.connections_accepted(), 3u);
}

}  // namespace
}  // namespace barb::apps
