#include "apps/http.h"

#include <gtest/gtest.h>

#include "testutil/fixtures.h"

namespace barb::apps {
namespace {

using testutil::TwoHosts;

TEST(HttpServer, ServesConfiguredPage) {
  sim::Simulation sim(1);
  TwoHosts net(sim);
  HttpServer server(*net.b, 80);
  server.add_page("/index.html", 2048);
  server.start();

  HttpLoadClient client(*net.a, net.b->ip(), 80, "/index.html");
  HttpLoadResult result;
  client.run(sim::Duration::seconds(1), [&](HttpLoadResult r) { result = r; });
  sim.run_for(sim::Duration::seconds(2));

  EXPECT_GT(result.fetches, 10u);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.bytes, result.fetches * 2048);
  // The server may have served one more request whose response was cut off
  // by the end of the measurement window.
  EXPECT_GE(server.requests_served(), result.fetches);
  EXPECT_LE(server.requests_served(), result.fetches + 1);
}

TEST(HttpServer, UnknownPathCounts404) {
  sim::Simulation sim(1);
  TwoHosts net(sim);
  HttpServer server(*net.b, 80);
  server.start();

  HttpLoadClient client(*net.a, net.b->ip(), 80, "/nope");
  HttpLoadResult result;
  client.run(sim::Duration::milliseconds(100), [&](HttpLoadResult r) { result = r; });
  sim.run_for(sim::Duration::seconds(1));
  EXPECT_EQ(result.fetches, 0u);
  EXPECT_GT(result.errors, 0u);
  EXPECT_GT(server.bad_requests(), 0u);
}

TEST(HttpLoad, LatencyMetricsAreConsistent) {
  sim::Simulation sim(1);
  TwoHosts net(sim);
  HttpServer server(*net.b, 80);
  server.start();

  HttpLoadClient client(*net.a, net.b->ip());
  HttpLoadResult result;
  client.run(sim::Duration::seconds(2), [&](HttpLoadResult r) { result = r; });
  sim.run_for(sim::Duration::seconds(3));

  ASSERT_GT(result.fetches, 0u);
  // Connect is one RTT; response includes the server's 3.5 ms service time
  // plus the 10 KB transfer.
  EXPECT_GT(result.mean_connect_ms, 0.0);
  EXPECT_LT(result.mean_connect_ms, 1.0);
  EXPECT_GT(result.mean_response_ms, 3.5);
  EXPECT_LT(result.mean_response_ms, 10.0);
  // fetches/s consistent with the per-fetch latency budget.
  const double per_fetch_ms = 1000.0 / result.fetches_per_sec;
  EXPECT_GT(per_fetch_ms, result.mean_connect_ms + result.mean_response_ms - 0.5);
}

TEST(HttpLoad, FetchRateBoundedByOneConnectionSerialization) {
  // http_load runs at most one connection at a time: the fetch rate can
  // never exceed the reciprocal of the per-fetch latency budget.
  sim::Simulation sim(1);
  TwoHosts net(sim);
  HttpServer server(*net.b, 80);
  server.start();

  HttpLoadClient client(*net.a, net.b->ip());
  HttpLoadResult result;
  client.run(sim::Duration::seconds(2), [&](HttpLoadResult r) { result = r; });
  sim.run_for(sim::Duration::seconds(3));

  ASSERT_GT(result.fetches, 0u);
  const double budget_ms = result.mean_connect_ms + result.mean_response_ms;
  EXPECT_LE(result.fetches_per_sec, 1000.0 / budget_ms * 1.05);
}

TEST(HttpLoad, ServerServiceTimeBoundsThroughput) {
  sim::Simulation sim(1);
  TwoHosts net(sim);
  HttpServer server(*net.b, 80);
  server.request_service_time = sim::Duration::milliseconds(10);
  server.start();

  HttpLoadClient client(*net.a, net.b->ip());
  HttpLoadResult result;
  client.run(sim::Duration::seconds(2), [&](HttpLoadResult r) { result = r; });
  sim.run_for(sim::Duration::seconds(3));
  // With 10 ms service per request and one connection, at most ~100/s.
  EXPECT_LT(result.fetches_per_sec, 100.0);
  EXPECT_GT(result.fetches_per_sec, 60.0);
}

TEST(HttpLoad, LargePageTransfersFully) {
  sim::Simulation sim(1);
  TwoHosts net(sim);
  HttpServer server(*net.b, 80);
  server.add_page("/big", 200 * 1024);
  server.start();

  HttpLoadClient client(*net.a, net.b->ip(), 80, "/big");
  HttpLoadResult result;
  client.run(sim::Duration::seconds(2), [&](HttpLoadResult r) { result = r; });
  sim.run_for(sim::Duration::seconds(3));
  ASSERT_GT(result.fetches, 0u);
  EXPECT_EQ(result.bytes, result.fetches * 200 * 1024);
  EXPECT_EQ(result.errors, 0u);
}

TEST(HttpLoad, DeadServerProducesErrorsNotFetches) {
  sim::Simulation sim(1);
  TwoHosts net(sim);
  HttpLoadClient client(*net.a, net.b->ip());
  HttpLoadResult result;
  client.run(sim::Duration::milliseconds(500), [&](HttpLoadResult r) { result = r; });
  sim.run_for(sim::Duration::seconds(2));
  EXPECT_EQ(result.fetches, 0u);
  EXPECT_GT(result.errors, 0u);
}

}  // namespace
}  // namespace barb::apps
