# Included by ctest right after sim_parallel_engine_test's generated
# discovery file (TEST_INCLUDE_FILES are processed in registration order).
# gtest_discover_tests flattens list-valued PROPERTIES when it re-emits them
# (LABELS "unit;parallel" degrades to the invalid `LABELS unit parallel`),
# so the two-label set is applied here instead, iterating the discovered-test
# list the generated file leaves in <target>_TESTS.
foreach(_t IN LISTS sim_parallel_engine_test_TESTS)
  set_tests_properties("${_t}" PROPERTIES LABELS "unit;parallel")
endforeach()
