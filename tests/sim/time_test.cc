#include "sim/time.h"

#include <gtest/gtest.h>

namespace barb::sim {
namespace {

TEST(Duration, FactoryUnitsAgree) {
  EXPECT_EQ(Duration::seconds(1).ns(), 1'000'000'000);
  EXPECT_EQ(Duration::milliseconds(1).ns(), 1'000'000);
  EXPECT_EQ(Duration::microseconds(1).ns(), 1'000);
  EXPECT_EQ(Duration::nanoseconds(42).ns(), 42);
  EXPECT_EQ(Duration::seconds(3), Duration::milliseconds(3000));
}

TEST(Duration, FromSecondsRoundsToNearestNanosecond) {
  EXPECT_EQ(Duration::from_seconds(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(Duration::from_seconds(1e-9).ns(), 1);
  EXPECT_EQ(Duration::from_seconds(0.9999999996e-9).ns(), 1);
  EXPECT_EQ(Duration::from_seconds(-2.5e-9).ns(), -3);  // half away from zero
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::milliseconds(5);
  const Duration b = Duration::milliseconds(3);
  EXPECT_EQ((a + b).ns(), 8'000'000);
  EXPECT_EQ((a - b).ns(), 2'000'000);
  EXPECT_EQ((a * 2).ns(), 10'000'000);
  EXPECT_EQ((a / 5).ns(), 1'000'000);
  EXPECT_DOUBLE_EQ(a / b, 5.0 / 3.0);
  EXPECT_EQ((-a).ns(), -5'000'000);
}

TEST(Duration, ScalarDoubleMultiply) {
  EXPECT_EQ((Duration::seconds(2) * 0.25).ns(), 500'000'000);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(Duration::microseconds(999), Duration::milliseconds(1));
  EXPECT_GT(Duration::seconds(1), Duration::milliseconds(999));
  EXPECT_LE(Duration::zero(), Duration::zero());
}

TEST(Duration, Conversions) {
  const Duration d = Duration::microseconds(1500);
  EXPECT_DOUBLE_EQ(d.to_seconds(), 0.0015);
  EXPECT_DOUBLE_EQ(d.to_milliseconds(), 1.5);
  EXPECT_DOUBLE_EQ(d.to_microseconds(), 1500.0);
}

TEST(Duration, ToStringPicksLargestExactUnit) {
  EXPECT_EQ(Duration::seconds(2).to_string(), "2s");
  EXPECT_EQ(Duration::milliseconds(250).to_string(), "250ms");
  EXPECT_EQ(Duration::microseconds(15).to_string(), "15us");
  EXPECT_EQ(Duration::nanoseconds(7).to_string(), "7ns");
}

TEST(TimePoint, ArithmeticWithDuration) {
  const TimePoint t0 = TimePoint::origin();
  const TimePoint t1 = t0 + Duration::seconds(2);
  EXPECT_EQ((t1 - t0), Duration::seconds(2));
  EXPECT_EQ((t1 - Duration::seconds(2)), t0);
  EXPECT_LT(t0, t1);
}

TEST(TimePoint, FromNsRoundTrip) {
  const TimePoint t = TimePoint::from_ns(123456789);
  EXPECT_EQ(t.ns(), 123456789);
  EXPECT_NEAR(t.to_seconds(), 0.123456789, 1e-12);
}

}  // namespace
}  // namespace barb::sim
