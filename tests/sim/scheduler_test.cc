#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.h"

namespace barb::sim {
namespace {

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(TimePoint::from_ns(30), [&] { order.push_back(3); });
  s.schedule_at(TimePoint::from_ns(10), [&] { order.push_back(1); });
  s.schedule_at(TimePoint::from_ns(20), [&] { order.push_back(2); });
  while (s.run_one()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now().ns(), 30);
}

TEST(Scheduler, SameTimeEventsFireInSchedulingOrder) {
  Scheduler s;
  std::vector<int> order;
  const auto t = TimePoint::from_ns(5);
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(t, [&order, i] { order.push_back(i); });
  }
  while (s.run_one()) {
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

// Regression for the std::push_heap/pop_heap rewrite (the old
// priority_queue needed a const_cast to move from top()): FIFO tie-break
// must hold even when same-time events are interleaved with other times,
// cancellations, and events scheduled from inside callbacks — the shapes
// that actually exercise sift-up/sift-down in the heap.
TEST(Scheduler, TieBreakSurvivesInterleavedSchedulingAndCancellation) {
  Scheduler s;
  std::vector<int> order;
  const auto t5 = TimePoint::from_ns(5);
  const auto t9 = TimePoint::from_ns(9);
  s.schedule_at(t9, [&] { order.push_back(100); });
  s.schedule_at(t5, [&] { order.push_back(0); });
  auto cancelled = s.schedule_at(t5, [&] { order.push_back(-1); });
  s.schedule_at(t5, [&] {
    order.push_back(1);
    // Scheduled mid-execution for the *same* instant: runs after every
    // entry queued for t5 before it, in scheduling order.
    s.schedule_at(t5, [&] { order.push_back(3); });
  });
  s.schedule_at(TimePoint::from_ns(2), [&] { order.push_back(-2); });
  s.schedule_at(t5, [&] { order.push_back(2); });
  s.schedule_at(t9, [&] { order.push_back(101); });
  cancelled.cancel();
  while (s.run_one()) {
  }
  EXPECT_EQ(order, (std::vector<int>{-2, 0, 1, 2, 3, 100, 101}));
  EXPECT_EQ(s.now().ns(), 9);
  EXPECT_EQ(s.events_executed(), 7u);
}

TEST(Scheduler, CancelledEventDoesNotRun) {
  Scheduler s;
  bool ran = false;
  auto h = s.schedule_at(TimePoint::from_ns(10), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  while (s.run_one()) {
  }
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.events_executed(), 0u);
}

TEST(Scheduler, CancelAfterFireIsNoop) {
  Scheduler s;
  auto h = s.schedule_at(TimePoint::from_ns(1), [] {});
  while (s.run_one()) {
  }
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash
}

TEST(Scheduler, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();
}

TEST(Scheduler, EventsScheduledDuringExecutionRun) {
  Scheduler s;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) s.schedule_at(s.now() + Duration::nanoseconds(1), chain);
  };
  s.schedule_at(TimePoint::from_ns(0), chain);
  while (s.run_one()) {
  }
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.now().ns(), 4);
}

TEST(Simulation, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulation sim;
  std::vector<int> fired;
  sim.schedule(Duration::milliseconds(10), [&] { fired.push_back(1); });
  sim.schedule(Duration::milliseconds(30), [&] { fired.push_back(2); });
  sim.run_until(TimePoint::origin() + Duration::milliseconds(20));
  EXPECT_EQ(fired, std::vector<int>{1});
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::milliseconds(20));
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(Simulation, EventAtExactBoundaryRuns) {
  Simulation sim;
  bool ran = false;
  sim.schedule(Duration::seconds(1), [&] { ran = true; });
  sim.run_until(TimePoint::origin() + Duration::seconds(1));
  EXPECT_TRUE(ran);
}

TEST(Simulation, StopHaltsRun) {
  Simulation sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule(Duration::nanoseconds(i), [&] {
      if (++count == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
  sim.run();  // resumes
  EXPECT_EQ(count, 10);
}

TEST(Simulation, RunForAdvancesRelativeToNow) {
  Simulation sim;
  sim.run_for(Duration::seconds(2));
  EXPECT_EQ(sim.now().to_seconds(), 2.0);
  sim.run_for(Duration::seconds(3));
  EXPECT_EQ(sim.now().to_seconds(), 5.0);
}

}  // namespace
}  // namespace barb::sim
