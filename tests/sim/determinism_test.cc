// Reproducibility: the validation methodology depends on every measurement
// being re-runnable bit-for-bit (the paper's averaging and our regression
// tables are meaningless otherwise).
#include <gtest/gtest.h>

#include "apps/iperf.h"
#include "core/experiments.h"
#include "core/testbed.h"

namespace barb::core {
namespace {

// Runs a small flood+measurement scenario and returns a fingerprint of the
// simulation's fine-grained behaviour.
struct Fingerprint {
  std::uint64_t events;
  std::uint64_t nic_rx;
  std::uint64_t nic_drops;
  double mbps;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint run_scenario(std::uint64_t seed) {
  sim::Simulation sim(seed);
  TestbedConfig cfg;
  cfg.firewall = FirewallKind::kAdf;
  cfg.action_rule_depth = 16;
  Testbed tb(sim, cfg);
  apps::IperfServer server(tb.target());
  server.start();

  apps::FloodConfig fc;
  fc.target = tb.addresses().target;
  fc.target_port = kFloodPort;
  fc.rate_pps = 30000;
  apps::FloodGenerator flood(tb.attacker(), fc);
  flood.start();
  sim.run_for(sim::Duration::milliseconds(200));

  apps::IperfClient client(tb.client(), tb.addresses().target);
  double mbps = -1;
  client.run(apps::IperfClient::Mode::kTcp, sim::Duration::milliseconds(500),
             [&](apps::IperfResult r) { mbps = r.mbps; });
  sim.run_for(sim::Duration::seconds(1));

  return Fingerprint{sim.events_executed(), tb.target().nic().stats().rx_frames,
                     tb.target().nic().stats().rx_dropped, mbps};
}

TEST(Determinism, IdenticalSeedIdenticalExecution) {
  const auto a = run_scenario(12345);
  const auto b = run_scenario(12345);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.events, 50'000u);  // the scenario actually did work
}

TEST(Determinism, DifferentSeedsDiverge) {
  const auto a = run_scenario(1);
  const auto b = run_scenario(2);
  // Event counts may coincide by chance, but the full fingerprint should
  // not: ISS choice, jitter, and drop timing all depend on the RNG.
  EXPECT_NE(a, b);
}

TEST(Determinism, ExperimentHarnessIsReproducible) {
  MeasurementOptions opt;
  opt.window = sim::Duration::milliseconds(400);
  opt.repetitions = 2;
  TestbedConfig cfg;
  cfg.firewall = FirewallKind::kEfw;
  cfg.action_rule_depth = 48;
  FloodSpec flood;
  flood.rate_pps = 20000;

  const auto a = measure_bandwidth_under_flood(cfg, flood, opt);
  const auto b = measure_bandwidth_under_flood(cfg, flood, opt);
  ASSERT_EQ(a.mbps.count(), b.mbps.count());
  for (std::size_t i = 0; i < a.mbps.samples().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.mbps.samples()[i], b.mbps.samples()[i]);
  }
}

}  // namespace
}  // namespace barb::core
