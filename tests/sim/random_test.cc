#include "sim/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace barb::sim {
namespace {

TEST(Random, DeterministicForSameSeed) {
  Random a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Random, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Random, UniformStaysInBound) {
  Random r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.uniform(17), 17u);
  }
}

TEST(Random, UniformIntCoversInclusiveRange) {
  Random r(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_int(-2, 2));
  EXPECT_EQ(seen, (std::set<std::int64_t>{-2, -1, 0, 1, 2}));
}

TEST(Random, UniformRealInHalfOpenUnit) {
  Random r(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform_real();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

// Property sweep: sample means of standard distributions land near their
// analytic values for a range of seeds.
class RandomMoments : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomMoments, UniformRealMeanNearHalf) {
  Random r(GetParam());
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.uniform_real();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST_P(RandomMoments, ExponentialMeanMatches) {
  Random r(GetParam());
  const double mean = 3.5;
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(mean);
  EXPECT_NEAR(sum / n, mean, 0.25);
}

TEST_P(RandomMoments, NormalMeanAndVarianceMatch) {
  Random r(GetParam());
  const int n = 20000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double m = sum / n;
  const double var = sum_sq / n - m * m;
  EXPECT_NEAR(m, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.4);
}

TEST_P(RandomMoments, BernoulliFrequencyMatches) {
  Random r(GetParam());
  const int n = 20000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMoments,
                         ::testing::Values(1u, 42u, 1234567u, 0xdeadbeefu));

}  // namespace
}  // namespace barb::sim
