// Wheel-scheduler semantics: the hierarchical timing wheel must be
// observationally identical to the binary-heap engine. Covers the contract
// corners — same-timestamp FIFO across wheel-cascade and overflow
// boundaries, schedule-from-within-callback, cancel-during-dispatch,
// cancel-after-fire, periodic events — plus a randomized differential test
// that drives both backends through the same event trace and requires
// identical dispatch sequences.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.h"
#include "sim/scheduler.h"
#include "sim/simulation.h"

namespace barb::sim {
namespace {

constexpr auto kWheel = Scheduler::Backend::kWheel;
constexpr auto kHeap = Scheduler::Backend::kHeap;

TEST(WheelScheduler, SelectsBackend) {
  Scheduler wheel(kWheel);
  Scheduler heap(kHeap);
  EXPECT_EQ(wheel.backend(), kWheel);
  EXPECT_EQ(heap.backend(), kHeap);
}

// Same-instant events must fire in scheduling order even when the instant
// sits beyond several cascade boundaries at scheduling time, so the events
// ride a high wheel level (or the overflow heap) and are redistributed one
// or more times before dispatch.
TEST(WheelScheduler, SameTimeFifoAcrossCascadeBoundaries) {
  for (std::int64_t target : {
           (std::int64_t{1} << 6) + 3,    // level 1
           (std::int64_t{1} << 12) + 3,   // level 2
           (std::int64_t{1} << 18) + 3,   // level 3
           (std::int64_t{1} << 24) + 3,   // overflow epoch 1
           (std::int64_t{1} << 30) + 3,   // deep overflow
       }) {
    Scheduler s(kWheel);
    std::vector<int> order;
    // Interleave with earlier traffic so the cascade machinery actually
    // runs before the target instant.
    s.schedule_at(TimePoint::from_ns(1), [&] { order.push_back(-1); });
    s.schedule_at(TimePoint::from_ns(target / 2), [&] { order.push_back(-2); });
    for (int i = 0; i < 8; ++i) {
      s.schedule_at(TimePoint::from_ns(target), [&order, i] { order.push_back(i); });
    }
    while (s.run_one()) {
    }
    ASSERT_EQ(order.size(), 10u) << "target=" << target;
    EXPECT_EQ(order[0], -1);
    EXPECT_EQ(order[1], -2);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i) + 2], i);
  }
}

// An event scheduled from inside a callback for the very instant being
// dispatched runs after everything already queued for that instant.
TEST(WheelScheduler, ScheduleFromWithinCallbackAtSameInstant) {
  Scheduler s(kWheel);
  std::vector<int> order;
  const auto t = TimePoint::from_ns(100);
  s.schedule_at(t, [&] {
    order.push_back(0);
    s.schedule_at(t, [&] { order.push_back(2); });
  });
  s.schedule_at(t, [&] { order.push_back(1); });
  while (s.run_one()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// Regression: an event parked at a high level whose slot the cursor has
// caught up to (via advance_to landing inside its block) must still dispatch
// before later events that link at lower levels inside the same block. The
// lowest-level-first scan would otherwise dispatch around it forever and
// strand it behind the cursor.
TEST(WheelScheduler, CursorCatchUpSlotStillDispatchesInOrder) {
  Scheduler s(kWheel);
  std::vector<int> order;
  s.schedule_at(TimePoint::from_ns(788606), [&] { order.push_back(0); });
  // run_until-style clock advance into the level-3 block holding the event.
  s.advance_to(TimePoint::from_ns(786500));
  // Later event that links at a lower wheel level inside the same block.
  s.schedule_at(TimePoint::from_ns(793408), [&] { order.push_back(1); });
  while (s.run_one()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(s.now().ns(), 793408);
}

// Regression: when a cascade drops an early-scheduled record into an instant
// that a later-scheduled record joined directly, the earlier sequence number
// must still fire first.
TEST(WheelScheduler, SameInstantFifoWhenCascadeJoinsLateLink) {
  Scheduler s(kWheel);
  std::vector<int> order;
  const auto t = TimePoint::from_ns(788606);
  s.schedule_at(t, [&] { order.push_back(0); });  // rides level 3
  s.advance_to(TimePoint::from_ns(786500));       // clock enters the block
  s.schedule_at(t, [&] { order.push_back(1); });  // links at a lower level
  while (s.run_one()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(WheelScheduler, CancelDuringDispatchOfSameInstant) {
  Scheduler s(kWheel);
  std::vector<int> order;
  const auto t = TimePoint::from_ns(7);
  EventHandle victim;
  s.schedule_at(t, [&] {
    order.push_back(0);
    victim.cancel();  // same-instant later event must not run
  });
  victim = s.schedule_at(t, [&] { order.push_back(1); });
  s.schedule_at(t, [&] { order.push_back(2); });
  while (s.run_one()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
  EXPECT_EQ(s.events_executed(), 2u);
}

TEST(WheelScheduler, CancelAfterFireIsNoop) {
  Scheduler s(kWheel);
  auto h = s.schedule_at(TimePoint::from_ns(1), [] {});
  while (s.run_one()) {
  }
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash or disturb anything
  EXPECT_FALSE(h.pending());
  EXPECT_EQ(s.pending_count(), 0u);
}

// A handle whose record was recycled for an unrelated event must stay inert:
// cancelling it must not kill the new occupant.
TEST(WheelScheduler, StaleHandleDoesNotCancelRecycledRecord) {
  Scheduler s(kWheel);
  auto stale = s.schedule_at(TimePoint::from_ns(1), [] {});
  while (s.run_one()) {
  }
  bool ran = false;
  auto fresh = s.schedule_at(TimePoint::from_ns(10), [&] { ran = true; });
  stale.cancel();
  EXPECT_TRUE(fresh.pending());
  while (s.run_one()) {
  }
  EXPECT_TRUE(ran);
}

TEST(WheelScheduler, CancelledOverflowEventsCompact) {
  Scheduler s(kWheel);
  std::vector<EventHandle> handles;
  const auto far = TimePoint::from_ns(std::int64_t{1} << 30);
  handles.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(s.schedule_at(far + Duration::nanoseconds(i), [] {}));
  }
  EXPECT_EQ(s.pending_count(), 1000u);
  for (auto& h : handles) h.cancel();
  EXPECT_EQ(s.pending_count(), 0u);
  // Compaction must have reaped the bulk of the tombstones rather than
  // letting all 1000 linger until dispatch.
  EXPECT_LT(s.tombstone_count(), 128u);
  EXPECT_TRUE(s.empty());
}

TEST(WheelScheduler, PeriodicEventReschedulesWithoutNewRecord) {
  Scheduler s(kWheel);
  int fires = 0;
  EventHandle h = s.schedule_every(TimePoint::from_ns(10), Duration::nanoseconds(10),
                                   [&] { ++fires; });
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(s.run_one());
  EXPECT_EQ(fires, 50);
  EXPECT_EQ(s.now().ns(), 500);
  EXPECT_TRUE(h.pending());
  // One periodic recurrence occupies exactly one slab record.
  EXPECT_EQ(s.stats().slab_records, 128u);
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(s.run_one());
  EXPECT_EQ(fires, 50);
}

TEST(WheelScheduler, PeriodicCancelFromOwnCallbackStopsRecurrence) {
  Scheduler s(kWheel);
  int fires = 0;
  EventHandle h;
  h = s.schedule_every(TimePoint::from_ns(5), Duration::nanoseconds(5), [&] {
    if (++fires == 3) h.cancel();
  });
  while (s.run_one()) {
  }
  EXPECT_EQ(fires, 3);
}

TEST(WheelScheduler, PendingCountExcludesTombstones) {
  Scheduler s(kWheel);
  auto near = s.schedule_at(TimePoint::from_ns(10), [] {});
  auto far = s.schedule_at(TimePoint::from_ns(std::int64_t{1} << 30), [] {});
  EXPECT_EQ(s.pending_count(), 2u);
  EXPECT_EQ(s.tombstone_count(), 0u);
  far.cancel();  // overflow-resident: becomes a tombstone
  EXPECT_EQ(s.pending_count(), 1u);
  EXPECT_EQ(s.tombstone_count(), 1u);
  near.cancel();  // wheel-resident: reclaimed immediately
  EXPECT_EQ(s.pending_count(), 0u);
  EXPECT_TRUE(s.empty());
}

// ---------------------------------------------------------------------------
// Randomized differential test: run the same randomly generated event trace
// through both backends and require identical dispatch sequences. Actions
// recursively schedule more work, cancel pending events, and mix horizons so
// traces cross wheel-cascade, epoch-migration, and overflow boundaries.

struct TraceRunner {
  explicit TraceRunner(Scheduler::Backend backend) : sched(backend) {}

  Scheduler sched;
  Random rng{12345};  // same stream in both runners
  std::vector<std::uint64_t> dispatched;  // ids in dispatch order
  std::vector<EventHandle> cancellable;
  std::uint64_t next_id = 0;
  int live_budget = 0;

  Duration random_delay() {
    // Mix of horizons: same-instant, sub-slot, cross-cascade, cross-epoch.
    switch (rng.uniform(6)) {
      case 0: return Duration::zero();
      case 1: return Duration::nanoseconds(static_cast<std::int64_t>(rng.uniform(64)));
      case 2: return Duration::nanoseconds(static_cast<std::int64_t>(rng.uniform(1 << 12)));
      case 3: return Duration::nanoseconds(static_cast<std::int64_t>(rng.uniform(1 << 20)));
      case 4: return Duration::nanoseconds(static_cast<std::int64_t>(rng.uniform(1 << 26)));
      default:
        return Duration::nanoseconds(static_cast<std::int64_t>(rng.uniform(1u << 30)));
    }
  }

  void spawn_one() {
    const std::uint64_t id = next_id++;
    const auto at = sched.now() + random_delay();
    auto h = sched.schedule_at(at, [this, id] { on_fire(id); });
    if (rng.uniform(4) == 0) cancellable.push_back(h);
  }

  void on_fire(std::uint64_t id) {
    dispatched.push_back(id);
    // Recursively schedule 0-2 children while budget remains.
    const int children = static_cast<int>(rng.uniform(3));
    for (int i = 0; i < children && live_budget > 0; ++i, --live_budget) {
      spawn_one();
    }
    // Occasionally cancel a previously remembered event.
    if (!cancellable.empty() && rng.uniform(3) == 0) {
      const auto idx = static_cast<std::size_t>(rng.uniform(
          static_cast<std::uint32_t>(cancellable.size())));
      cancellable[idx].cancel();
      cancellable.erase(cancellable.begin() + static_cast<long>(idx));
    }
  }

  void run(int seed_events, int budget) {
    live_budget = budget;
    for (int i = 0; i < seed_events; ++i) spawn_one();
    while (sched.run_one()) {
    }
  }
};

TEST(WheelScheduler, DifferentialTraceMatchesHeapBackend) {
  TraceRunner wheel(kWheel);
  TraceRunner heap(kHeap);
  wheel.run(/*seed_events=*/64, /*budget=*/5000);
  heap.run(/*seed_events=*/64, /*budget=*/5000);
  ASSERT_EQ(wheel.dispatched.size(), heap.dispatched.size());
  for (std::size_t i = 0; i < wheel.dispatched.size(); ++i) {
    ASSERT_EQ(wheel.dispatched[i], heap.dispatched[i]) << "diverged at index " << i;
  }
  EXPECT_EQ(wheel.sched.now(), heap.sched.now());
  EXPECT_EQ(wheel.sched.events_executed(), heap.sched.events_executed());
}

// Same differential check through the Simulation wrapper's run_until, which
// exercises next_event_time() + advance_to() epoch crossings.
TEST(WheelScheduler, DifferentialRunUntilSlices) {
  auto run_sliced = [](Scheduler::Backend backend) {
    Scheduler s(backend);
    Random rng(99);
    std::vector<std::uint64_t> fired;
    std::uint64_t id = 0;
    std::function<void()> feeder = [&] {
      for (int i = 0; i < 3; ++i) {
        const auto delay =
            Duration::nanoseconds(static_cast<std::int64_t>(rng.uniform(1u << 27)));
        const std::uint64_t my = id++;
        s.schedule_at(s.now() + delay, [&fired, my] { fired.push_back(my); });
      }
      if (id < 600) {
        s.schedule_at(s.now() + Duration::nanoseconds(
                                    static_cast<std::int64_t>(rng.uniform(1u << 22))),
                      feeder);
      }
    };
    s.schedule_at(TimePoint::from_ns(0), feeder);
    // Advance in fixed slices like Simulation::run_for does, crossing many
    // wheel epochs with the clock landing between events.
    TimePoint until = TimePoint::origin();
    for (int slice = 0; slice < 400; ++slice) {
      until = until + Duration::microseconds(2500);
      while (!s.empty() && s.next_event_time() <= until) s.run_one();
      if (s.now() < until) s.advance_to(until);
    }
    while (s.run_one()) {
    }
    return fired;
  };
  const auto wheel = run_sliced(kWheel);
  const auto heap = run_sliced(kHeap);
  ASSERT_EQ(wheel.size(), heap.size());
  for (std::size_t i = 0; i < wheel.size(); ++i) {
    ASSERT_EQ(wheel[i], heap[i]) << "diverged at index " << i;
  }
}

}  // namespace
}  // namespace barb::sim
