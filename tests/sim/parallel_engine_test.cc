// Conservative parallel DES engine: lookahead computation, deterministic
// cross-shard merge, zero-lookahead rejection, shard-count-independent
// outcomes, and stall/wakeup liveness.
#include "sim/parallel_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/topology.h"
#include "link/link.h"
#include "link/sharded_domain.h"
#include "sim/simulation.h"
#include "stack/host.h"
#include "testutil/tcp_helpers.h"

namespace barb::sim {
namespace {

using Ns = Duration;

// ---------------------------------------------------------------------------
// Lookahead computation
// ---------------------------------------------------------------------------

TEST(ParallelEngineTest, EdgeLookaheadTakesMinimumOverDeclarations) {
  Simulation sim(1);
  ParallelEngine engine(sim, 2);
  engine.add_edge(0, 1, Duration::microseconds(10));
  EXPECT_EQ(engine.edge_lookahead(0, 1), Duration::microseconds(10));
  // A second link between the same shard pair with a tighter latency must
  // shrink the pair's conservative lookahead.
  engine.add_edge(0, 1, Duration::microseconds(3));
  EXPECT_EQ(engine.edge_lookahead(0, 1), Duration::microseconds(3));
  // Looser declarations do not widen it back.
  engine.add_edge(0, 1, Duration::microseconds(7));
  EXPECT_EQ(engine.edge_lookahead(0, 1), Duration::microseconds(3));
  // Undeclared edges report "infinite" lookahead.
  EXPECT_EQ(engine.edge_lookahead(1, 0), Duration::max());
}

TEST(ParallelEngineTest, DomainLookaheadIsPropagationPlusMinFrameTime) {
  Simulation sim(1);
  core::LeafSpineSpec spec;
  spec.hosts = 4;
  spec.hosts_per_leaf = 2;
  spec.spines = 1;
  auto fabric = core::build_leaf_spine(sim, spec);
  const auto plan =
      core::partition_fabric(*fabric, 2, core::ShardPartition::kHostsHome);
  auto domain = core::make_sharded_domain(*fabric, plan);

  // kHostsHome cuts every access link (hosts on shard 0, switches on 1);
  // the cut's lookahead is the wire latency plus one minimum-size frame's
  // serialization — the earliest any delivery can land past the sender's
  // clock — minimized over the cut's links. Identify access links through
  // link_ends(): trunks (switch-switch) are internal to shard 1 here.
  Duration expected = Duration::max();
  const auto& ends = fabric->link_ends();
  const auto& links = fabric->links();
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (ends[i].host < 0) continue;
    const Duration la =
        links[i]->config().propagation + links[i]->a().frame_time(0);
    if (la < expected) expected = la;
  }
  EXPECT_GT(expected.ns(), 0);
  EXPECT_LT(expected, Duration::max());
  EXPECT_EQ(domain->engine().edge_lookahead(0, 1), expected);
  EXPECT_EQ(domain->engine().edge_lookahead(1, 0), expected);
}

// ---------------------------------------------------------------------------
// Zero-lookahead rejection
// ---------------------------------------------------------------------------

TEST(ParallelEngineTest, ZeroLookaheadEdgeIsRejectedWithClearError) {
  Simulation sim(1);
  ParallelEngine engine(sim, 2);
  try {
    engine.add_edge(0, 1, Duration::nanoseconds(0));
    FAIL() << "add_edge accepted a zero-lookahead cut";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("zero lookahead"), std::string::npos) << msg;
    EXPECT_NE(msg.find("propagation"), std::string::npos) << msg;
  }
  EXPECT_THROW(engine.add_edge(1, 0, Duration::nanoseconds(-5)),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Deterministic cross-shard merge
// ---------------------------------------------------------------------------

// Shard 1 sends messages into shard 0's mailbox; shard 0 also runs local
// events. The merged execution order must be the serial dispatch order:
// (deliver time, schedule-origin, insertion seq), regardless of when the
// messages physically drain.
TEST(ParallelEngineTest, CrossShardMergeFollowsTimeThenOriginOrder) {
  Simulation sim(1);
  ParallelEngine engine(sim, 2);
  engine.add_edge(0, 1, Duration::microseconds(1));
  engine.add_edge(1, 0, Duration::microseconds(1));

  // Executed labels, appended on shard 0's worker; read after run_until
  // returns (thread join gives the happens-before edge).
  std::vector<std::string> order;
  const int ep = engine.add_endpoint(0, [&engine, &order](MailboxMessage&& m) {
    engine.shard_scheduler(0).schedule_at_origin(
        m.deliver_at, m.sched_at, [&order, id = m.meta_id] {
          order.push_back("msg" + std::to_string(id));
        });
  });

  auto at = [](std::int64_t us) {
    return TimePoint() + Duration::microseconds(us);
  };
  // Local work on shard 0 (schedule-origin = setup time 0).
  engine.schedule_on(0, at(10), [&order] { order.push_back("local10"); });
  engine.schedule_on(0, at(30), [&order] { order.push_back("local30"); });
  // Shard 1 events that send cross-shard messages. Message 1 lands between
  // the locals; message 2 lands exactly at t=30 but with a later
  // schedule-origin (5us > 0), so the serial order puts local30 first.
  engine.schedule_on(1, at(4), [&engine, ep, at] {
    engine.send(MailboxMessage{at(20), at(4), TimePoint(), 1, ep, {}});
  });
  engine.schedule_on(1, at(5), [&engine, ep, at] {
    engine.send(MailboxMessage{at(30), at(5), TimePoint(), 2, ep, {}});
  });

  sim.attach_engine(&engine, /*rng_home_shard=*/-1);
  sim.run_until(at(100));
  sim.attach_engine(nullptr);

  const std::vector<std::string> expected{"local10", "msg1", "local30",
                                          "msg2"};
  EXPECT_EQ(order, expected);
  EXPECT_EQ(engine.stats().messages, 2u);
}

// ---------------------------------------------------------------------------
// Stall / wakeup liveness
// ---------------------------------------------------------------------------

// A shard whose neighbors go quiet must not deadlock: the all-parked
// resolution lifts every horizon to the globally earliest pending event.
// Shard 0 has a long event chain; shard 1 is completely idle.
TEST(ParallelEngineTest, QuietNeighborDoesNotStallProgress) {
  Simulation sim(1);
  ParallelEngine engine(sim, 2);
  // Tiny lookahead relative to the event spacing, so shard 0 is
  // horizon-blocked before every event and must be woken by lifts.
  engine.add_edge(0, 1, Duration::nanoseconds(100));
  engine.add_edge(1, 0, Duration::nanoseconds(100));

  int executed = 0;
  std::function<void()> chain = [&] {
    ++executed;
    if (executed < 50) {
      engine.shard_scheduler(0).schedule_at(
          sim.now() + Duration::microseconds(10), chain);
    }
  };
  engine.schedule_on(0, TimePoint() + Duration::microseconds(10), chain);

  sim.attach_engine(&engine, /*rng_home_shard=*/-1);
  sim.run_until(TimePoint() + Duration::milliseconds(1));
  sim.attach_engine(nullptr);

  EXPECT_EQ(executed, 50);
  EXPECT_EQ(engine.events_executed(), 50u);
  // Progress came from quiescence lifts, not busy-waiting.
  EXPECT_GE(engine.stats().quiescence_lifts, 1u);
}

// ---------------------------------------------------------------------------
// Shard-count independence goldens
// ---------------------------------------------------------------------------

struct FabricOutcome {
  std::size_t received = 0;
  bool eof = false;
  std::uint64_t access_tx = 0;
  std::uint64_t access_rx = 0;
  std::uint64_t events = 0;
};

// One TCP transfer across an 8-host leaf-spine, run serially or under K
// shards. Every observable — bytes delivered, frame counts, and the total
// event count — must be independent of K.
FabricOutcome run_fabric(int shards) {
  Simulation sim(7);
  // Declared before the fabric so it is destroyed after it: links and TCP
  // timers hold EventHandles into the domain's shard schedulers, and their
  // destructors cancel through them.
  std::unique_ptr<link::ShardedLinkDomain> domain;
  core::LeafSpineSpec spec;
  spec.hosts = 8;
  spec.hosts_per_leaf = 4;
  spec.spines = 2;
  auto fabric = core::build_leaf_spine(sim, spec);
  if (shards > 1) {
    domain = core::make_sharded_domain(
        *fabric,
        core::partition_fabric(*fabric, shards,
                               core::ShardPartition::kHostsHome));
  }

  testutil::VerifyingReceiver receiver;
  fabric->host(5).tcp_listen(
      7000, [&receiver](std::shared_ptr<stack::TcpConnection> c) {
        receiver.attach(c);
      });
  auto conn = fabric->host(0).tcp_connect(fabric->host(5).ip(), 7000);
  testutil::BulkSender sender(conn, 200'000);

  sim.run_until(TimePoint() + Duration::from_seconds(30));
  EXPECT_TRUE(sim.queues_empty());

  FabricOutcome out;
  out.received = receiver.received();
  out.eof = receiver.eof();
  EXPECT_EQ(receiver.mismatches(), 0u);
  for (int i = 0; i < fabric->num_hosts(); ++i) {
    out.access_tx += fabric->host_link(i).a().stats().tx_frames;
    out.access_rx += fabric->host_link(i).a().stats().rx_frames;
  }
  out.events = sim.events_executed();
  return out;
}

TEST(ParallelEngineTest, FabricOutcomeIndependentOfShardCount) {
  const FabricOutcome serial = run_fabric(1);
  EXPECT_EQ(serial.received, 200'000u);
  EXPECT_TRUE(serial.eof);
  for (int shards : {2, 4}) {
    const FabricOutcome sharded = run_fabric(shards);
    EXPECT_EQ(sharded.received, serial.received) << "shards=" << shards;
    EXPECT_EQ(sharded.eof, serial.eof) << "shards=" << shards;
    EXPECT_EQ(sharded.access_tx, serial.access_tx) << "shards=" << shards;
    EXPECT_EQ(sharded.access_rx, serial.access_rx) << "shards=" << shards;
    EXPECT_EQ(sharded.events, serial.events) << "shards=" << shards;
  }
}

}  // namespace
}  // namespace barb::sim
