#include "link/tracer.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "net/packet_builder.h"
#include "sim/simulation.h"
#include "util/byte_io.h"

namespace barb::link {
namespace {

net::Packet sample_packet(sim::TimePoint at, std::uint64_t id = 0) {
  net::IpEndpoints ep;
  ep.src_ip = net::Ipv4Address(10, 0, 0, 1);
  ep.dst_ip = net::Ipv4Address(10, 0, 0, 2);
  ep.src_mac = net::MacAddress::from_host_id(1);
  ep.dst_mac = net::MacAddress::from_host_id(2);
  const std::vector<std::uint8_t> payload{1, 2, 3, 4};
  return net::Packet{net::build_udp_frame(ep, 1000, 2000, payload), at, id};
}

struct CountingSink : FrameSink {
  int delivered = 0;
  void deliver(net::Packet) override { ++delivered; }
};

TEST(FrameTap, RecordsAndForwards) {
  CountingSink downstream;
  FrameTap tap(&downstream);
  tap.deliver(sample_packet(sim::TimePoint::from_ns(1000)));
  tap.deliver(sample_packet(sim::TimePoint::from_ns(2000)));
  EXPECT_EQ(downstream.delivered, 2);
  ASSERT_EQ(tap.frames().size(), 2u);
  EXPECT_EQ(tap.frames()[0].at.ns(), 1000);
  EXPECT_EQ(tap.frames()[1].at.ns(), 2000);
  EXPECT_EQ(tap.frames_seen(), 2u);
}

TEST(FrameTap, PureSnifferNeedsNoDownstream) {
  FrameTap tap;
  tap.deliver(sample_packet(sim::TimePoint::origin()));
  EXPECT_EQ(tap.frames().size(), 1u);
}

TEST(FrameTap, CapBoundsMemoryButKeepsCounting) {
  FrameTap tap(nullptr, /*max_frames=*/3);
  for (int i = 0; i < 10; ++i) tap.deliver(sample_packet(sim::TimePoint::origin()));
  EXPECT_EQ(tap.frames().size(), 3u);
  EXPECT_EQ(tap.frames_seen(), 10u);
}

TEST(FrameTap, PcapFormatIsWellFormed) {
  FrameTap tap;
  const auto at = sim::TimePoint::from_ns(1'500'000'000 + 123'456'000);  // 1.5s+123.456ms
  tap.deliver(sample_packet(at));
  const auto pcap = tap.to_pcap();

  const auto frame_size = tap.frames()[0].data.size();
  ASSERT_EQ(pcap.size(), 24 + 16 + frame_size);

  // Little-endian global header fields.
  auto le32_at = [&](std::size_t off) {
    return static_cast<std::uint32_t>(pcap[off]) |
           static_cast<std::uint32_t>(pcap[off + 1]) << 8 |
           static_cast<std::uint32_t>(pcap[off + 2]) << 16 |
           static_cast<std::uint32_t>(pcap[off + 3]) << 24;
  };
  EXPECT_EQ(le32_at(0), 0xa1b2c3d4u);  // magic
  EXPECT_EQ(pcap[4], 2);               // version major
  EXPECT_EQ(le32_at(20), 1u);          // LINKTYPE_ETHERNET

  // Record header: seconds, microseconds, lengths.
  EXPECT_EQ(le32_at(24), 1u);
  EXPECT_EQ(le32_at(28), 623456u);
  EXPECT_EQ(le32_at(32), frame_size);
  EXPECT_EQ(le32_at(36), frame_size);
  // Frame bytes follow verbatim.
  EXPECT_TRUE(std::equal(tap.frames()[0].data.begin(), tap.frames()[0].data.end(),
                         pcap.begin() + 40));
}

TEST(FrameTap, WritesPcapFile) {
  FrameTap tap;
  tap.deliver(sample_packet(sim::TimePoint::from_ns(42)));
  const std::string path = ::testing::TempDir() + "/barb_tap_test.pcap";
  ASSERT_TRUE(tap.write_pcap(path));

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::uint8_t magic[4];
  ASSERT_EQ(std::fread(magic, 1, 4, f), 4u);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(magic[0], 0xd4);
  EXPECT_EQ(magic[3], 0xa1);
}

TEST(FrameTap, WriteToBadPathFails) {
  FrameTap tap;
  EXPECT_FALSE(tap.write_pcap("/nonexistent-dir/x/y.pcap"));
}

TEST(FrameTap, ClearDropsRecordingOnly) {
  FrameTap tap;
  tap.deliver(sample_packet(sim::TimePoint::origin()));
  tap.clear();
  EXPECT_TRUE(tap.frames().empty());
  EXPECT_EQ(tap.frames_seen(), 1u);
}

}  // namespace
}  // namespace barb::link
