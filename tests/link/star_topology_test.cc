// Switch under realistic multi-host load: all-pairs traffic through one
// switch, UDP and TCP, checking learning, isolation, and aggregate capacity.
#include <gtest/gtest.h>

#include "stack/tcp.h"
#include "stack/udp.h"
#include "testutil/fixtures.h"
#include "testutil/tcp_helpers.h"

namespace barb::link {
namespace {

using testutil::BulkSender;
using testutil::StarNetwork;
using testutil::VerifyingReceiver;

TEST(StarTopology, AllPairsUdpReachability) {
  sim::Simulation sim(41);
  StarNetwork net(sim, 6);

  int received = 0;
  std::vector<stack::UdpSocket*> listeners;
  for (auto& host : net.hosts) {
    auto* s = host->udp_open(9000);
    s->set_receiver([&received](net::Ipv4Address, std::uint16_t,
                                std::span<const std::uint8_t>) { ++received; });
    listeners.push_back(s);
  }
  for (auto& src : net.hosts) {
    auto* sock = src->udp_open(0);
    for (auto& dst : net.hosts) {
      if (src == dst) continue;
      const std::vector<std::uint8_t> data{0x42};
      EXPECT_TRUE(sock->send_to(dst->ip(), 9000, data));
    }
  }
  sim.run();
  EXPECT_EQ(received, 6 * 5);
  // After all that traffic the switch has learned every station: no more
  // flooding on subsequent unicast.
  const auto flooded_before = net.sw.stats().flooded;
  auto* sock = net.hosts[0]->udp_open(0);
  const std::vector<std::uint8_t> data{0x99};
  sock->send_to(net.hosts[5]->ip(), 9000, data);
  sim.run();
  EXPECT_EQ(net.sw.stats().flooded, flooded_before);
}

TEST(StarTopology, ConcurrentTcpStreamsDeliverExactly) {
  // Three disjoint sender/receiver pairs run simultaneously through the
  // switch; each transfer must be byte-exact despite shared infrastructure.
  sim::Simulation sim(42);
  StarNetwork net(sim, 6);

  const std::size_t total = 1'500'000;
  std::vector<std::unique_ptr<VerifyingReceiver>> receivers;
  std::vector<std::unique_ptr<BulkSender>> senders;
  for (int pair = 0; pair < 3; ++pair) {
    auto& src = net.hosts[static_cast<std::size_t>(pair)];
    auto& dst = net.hosts[static_cast<std::size_t>(pair + 3)];
    receivers.push_back(std::make_unique<VerifyingReceiver>());
    auto* receiver = receivers.back().get();
    dst->tcp_listen(5001, [receiver](std::shared_ptr<stack::TcpConnection> c) {
      receiver->attach(c);
    });
    auto conn = src->tcp_connect(dst->ip(), 5001);
    senders.push_back(std::make_unique<BulkSender>(conn, total));
  }
  sim.run_for(sim::Duration::seconds(60));

  for (const auto& receiver : receivers) {
    EXPECT_EQ(receiver->received(), total);
    EXPECT_EQ(receiver->mismatches(), 0u);
  }
}

TEST(StarTopology, DisjointPairsGetFullRate) {
  // Each link is full duplex and the switch forwards per port: disjoint
  // pairs should each see near-line-rate, not share one medium (unlike a
  // hub). 2 MB per pair in well under a second each.
  sim::Simulation sim(43);
  StarNetwork net(sim, 4);
  const std::size_t total = 2'000'000;

  std::vector<std::unique_ptr<VerifyingReceiver>> receivers;
  std::vector<std::unique_ptr<BulkSender>> senders;
  for (int pair = 0; pair < 2; ++pair) {
    auto& src = net.hosts[static_cast<std::size_t>(pair * 2)];
    auto& dst = net.hosts[static_cast<std::size_t>(pair * 2 + 1)];
    receivers.push_back(std::make_unique<VerifyingReceiver>());
    auto* receiver = receivers.back().get();
    dst->tcp_listen(5001, [receiver](std::shared_ptr<stack::TcpConnection> c) {
      receiver->attach(c);
    });
    senders.push_back(std::make_unique<BulkSender>(src->tcp_connect(dst->ip(), 5001),
                                                   total, false));
  }
  // 2 MB at ~94.9 Mbps is ~0.17 s; allow 0.25 s for both pairs concurrently.
  sim.run_for(sim::Duration::milliseconds(250));
  for (const auto& receiver : receivers) {
    EXPECT_EQ(receiver->received(), total);
  }
}

TEST(StarTopology, TwoSendersOverloadOneReceiverGracefully) {
  // Hosts 0 and 1 both blast host 2: the shared egress saturates, TCPs
  // share it, and both transfers still complete correctly.
  sim::Simulation sim(44);
  StarNetwork net(sim, 3);
  const std::size_t total = 2'000'000;

  VerifyingReceiver r1, r2;
  int accepted = 0;
  net.hosts[2]->tcp_listen(5001, [&](std::shared_ptr<stack::TcpConnection> c) {
    (accepted++ == 0 ? r1 : r2).attach(c);
  });
  BulkSender s1(net.hosts[0]->tcp_connect(net.hosts[2]->ip(), 5001), total);
  BulkSender s2(net.hosts[1]->tcp_connect(net.hosts[2]->ip(), 5001), total);
  sim.run_for(sim::Duration::seconds(30));

  EXPECT_EQ(r1.received(), total);
  EXPECT_EQ(r2.received(), total);
  EXPECT_EQ(r1.mismatches() + r2.mismatches(), 0u);
}

}  // namespace
}  // namespace barb::link
