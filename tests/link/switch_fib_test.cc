// The bounded open-addressing FIB: capacity bound under spoofed floods,
// eviction accounting, pinned-route protection, aging, and the no-flood
// fabric mode.
#include "link/switch.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/frame_buffer.h"
#include "net/packet_builder.h"
#include "sim/simulation.h"

namespace barb::link {
namespace {

struct CollectorSink : FrameSink {
  std::vector<net::Packet> received;
  void deliver(net::Packet pkt) override { received.push_back(std::move(pkt)); }
};

net::Packet frame_between(std::uint32_t src_id, std::uint32_t dst_id) {
  net::IpEndpoints ep;
  ep.src_ip = net::Ipv4Address(10, 0, static_cast<std::uint8_t>(src_id >> 8),
                               static_cast<std::uint8_t>(src_id));
  ep.dst_ip = net::Ipv4Address(10, 0, static_cast<std::uint8_t>(dst_id >> 8),
                               static_cast<std::uint8_t>(dst_id));
  ep.src_mac = net::MacAddress::from_host_id(src_id);
  ep.dst_mac = net::MacAddress::from_host_id(dst_id);
  const std::uint8_t payload[] = {1, 2, 3};
  return net::Packet{net::build_udp_frame(ep, 1000, 2000, payload),
                     sim::TimePoint::origin(), 0};
}

struct FibFixture {
  sim::Simulation sim;
  std::unique_ptr<Switch> sw;
  std::vector<std::unique_ptr<Link>> links;
  std::vector<CollectorSink> sinks{2};

  explicit FibFixture(SwitchConfig config) {
    sw = std::make_unique<Switch>(sim, "sw", config);
    for (int i = 0; i < 2; ++i) {
      links.push_back(std::make_unique<Link>(sim));
      links.back()->a().connect_sink(&sinks[static_cast<std::size_t>(i)]);
      sw->attach(links.back()->b());
    }
  }

  void inject(int port, net::Packet pkt) {
    links[static_cast<std::size_t>(port)]->a().send(std::move(pkt));
  }
};

TEST(SwitchFib, TableStaysBoundedUnderSpoofedSources) {
  SwitchConfig config;
  config.fib_capacity = 64;
  FibFixture f(config);

  // A spoofed-source flood: 4096 distinct MACs through a 64-slot table.
  for (std::uint32_t src = 1; src <= 4096; ++src) {
    f.inject(0, frame_between(src, 60000));
    f.sim.run();
  }
  EXPECT_LE(f.sw->fib_size(), 64u);
  EXPECT_GT(f.sw->stats().fib_evictions, 0u);
  // Footprint is the slot array, independent of how many MACs were spoofed.
  EXPECT_LE(f.sw->fib_memory_bytes(), 64u * 64u);
}

TEST(SwitchFib, EvictionReplacesStalestInProbeWindow) {
  SwitchConfig config;
  config.fib_capacity = 16;  // tiny: every slot contested quickly
  FibFixture f(config);

  for (std::uint32_t src = 1; src <= 200; ++src) {
    f.inject(0, frame_between(src, 60000));
    f.sim.run();
  }
  const std::uint64_t evictions = f.sw->stats().fib_evictions;
  EXPECT_GT(evictions, 0u);
  // The most recent source must still be resident (evictions take the
  // stalest entry, never the one just learned).
  EXPECT_EQ(f.sw->lookup(net::MacAddress::from_host_id(200)), 0);
}

TEST(SwitchFib, PinnedEntriesSurviveEvictionPressure) {
  SwitchConfig config;
  config.fib_capacity = 16;
  FibFixture f(config);

  const auto pinned_mac = net::MacAddress::from_host_id(7777);
  ASSERT_TRUE(f.sw->preload(pinned_mac, 1));

  for (std::uint32_t src = 1; src <= 500; ++src) {
    f.inject(0, frame_between(src, 60000));
    f.sim.run();
  }
  EXPECT_GT(f.sw->stats().fib_evictions, 0u);
  EXPECT_EQ(f.sw->lookup(pinned_mac), 1);
}

TEST(SwitchFib, LearnedEntriesAgeOutPinnedDoNot) {
  SwitchConfig config;
  config.mac_table_aging = sim::Duration::seconds(1);
  FibFixture f(config);

  const auto pinned_mac = net::MacAddress::from_host_id(9999);
  ASSERT_TRUE(f.sw->preload(pinned_mac, 1));
  f.inject(0, frame_between(42, 60000));
  f.sim.run();
  EXPECT_EQ(f.sw->lookup(net::MacAddress::from_host_id(42)), 0);

  f.sim.run_until(f.sim.now() + sim::Duration::seconds(2));
  EXPECT_EQ(f.sw->lookup(net::MacAddress::from_host_id(42)), -1);
  EXPECT_EQ(f.sw->lookup(pinned_mac), 1);
}

TEST(SwitchFib, NoFloodModeDropsUnknownDestinations) {
  SwitchConfig config;
  config.learning = false;
  config.flood_unknown = false;
  FibFixture f(config);

  f.inject(0, frame_between(1, 2));  // destination not preloaded
  f.sim.run();
  EXPECT_EQ(f.sinks[1].received.size(), 0u);
  EXPECT_EQ(f.sw->stats().no_route_drops, 1u);
  // Learning off: the source was not recorded either.
  EXPECT_EQ(f.sw->lookup(net::MacAddress::from_host_id(1)), -1);

  // With a preloaded route the same frame forwards.
  ASSERT_TRUE(f.sw->preload(net::MacAddress::from_host_id(2), 1));
  f.inject(0, frame_between(1, 2));
  f.sim.run();
  EXPECT_EQ(f.sinks[1].received.size(), 1u);
  EXPECT_EQ(f.sw->stats().forwarded, 1u);
}

TEST(SwitchFib, PreloadFailsOnlyWhenProbeWindowFullOfPins) {
  SwitchConfig config;
  config.fib_capacity = 16;
  FibFixture f(config);
  // Saturate the table with pins; at some point a probe window fills and
  // preload must report failure instead of evicting a pinned route.
  bool saw_failure = false;
  for (std::uint32_t id = 1; id <= 32; ++id) {
    if (!f.sw->preload(net::MacAddress::from_host_id(id), 0)) {
      saw_failure = true;
      break;
    }
  }
  EXPECT_TRUE(saw_failure);
  EXPECT_LE(f.sw->fib_size(), 16u);
}

}  // namespace
}  // namespace barb::link
