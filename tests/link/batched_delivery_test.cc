// Batched vs. per-frame link delivery: the two engines must produce the
// same timeline — identical delivery timestamps, stats, drops, and sampled
// queue gauges — while the batched engine executes fewer scheduler events.
#include "link/link.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/flood_generator.h"
#include "apps/iperf.h"
#include "core/testbed.h"
#include "net/frame_buffer.h"
#include "net/packet_builder.h"
#include "sim/simulation.h"

namespace barb::link {
namespace {

struct TimestampSink : FrameSink {
  sim::Simulation* sim = nullptr;
  std::vector<std::pair<sim::TimePoint, std::size_t>> deliveries;
  void deliver(net::Packet pkt) override {
    deliveries.emplace_back(sim->now(), pkt.bytes().size());
  }
};

net::Packet make_frame(std::size_t payload_bytes) {
  net::IpEndpoints ep;
  ep.src_ip = net::Ipv4Address(10, 0, 0, 1);
  ep.dst_ip = net::Ipv4Address(10, 0, 0, 2);
  ep.src_mac = net::MacAddress::from_host_id(1);
  ep.dst_mac = net::MacAddress::from_host_id(2);
  std::vector<std::uint8_t> payload(payload_bytes, 0xab);
  return net::Packet{net::build_udp_frame(ep, 1000, 2000, payload),
                     sim::TimePoint::origin(), 0};
}

struct DriveResult {
  std::vector<std::pair<sim::TimePoint, std::size_t>> deliveries;
  LinkPortStats tx_stats;
  LinkPortStats rx_stats;
  std::vector<std::size_t> sampled_depths;
  std::vector<std::size_t> sampled_bytes;
  std::uint64_t events = 0;
};

// Drives one traffic pattern through a single link: bursts that overflow
// the queue, mixed sizes, quiet gaps, and mid-flight stats sampling.
DriveResult drive(bool batched) {
  sim::Simulation sim(1);
  LinkConfig config;
  config.queue_bytes = 8 * 1024;  // small, so the bursts overflow
  config.batched = batched;
  Link link(sim, config);
  TimestampSink sink;
  sink.sim = &sim;
  link.b().connect_sink(&sink);

  DriveResult run;
  // Burst of 20 full-size frames at t=0 (overflows), then a trickle of
  // minimum-size frames, then another burst after a quiet gap.
  sim.schedule(sim::Duration::nanoseconds(0), [&] {
    for (int i = 0; i < 20; ++i) link.a().send(make_frame(1400));
  });
  for (int i = 0; i < 10; ++i) {
    sim.schedule(sim::Duration::microseconds(200) * (i + 1),
                 [&] { link.a().send(make_frame(18)); });
  }
  sim.schedule(sim::Duration::milliseconds(5), [&] {
    for (int i = 0; i < 8; ++i) link.a().send(make_frame(700));
  });
  // Sample the queue gauges at instants that straddle serializations.
  for (int i = 0; i < 40; ++i) {
    sim.schedule(sim::Duration::microseconds(150) * i, [&] {
      run.sampled_depths.push_back(link.a().queue_depth());
      run.sampled_bytes.push_back(link.a().queued_bytes());
    });
  }
  sim.run();

  run.deliveries = sink.deliveries;
  run.tx_stats = link.a().stats();
  run.rx_stats = link.b().stats();
  run.events = sim.scheduler().events_executed();
  return run;
}

TEST(BatchedDelivery, TimelineIdenticalToPerFrame) {
  const DriveResult per_frame = drive(false);
  const DriveResult batched = drive(true);

  ASSERT_EQ(per_frame.deliveries.size(), batched.deliveries.size());
  for (std::size_t i = 0; i < per_frame.deliveries.size(); ++i) {
    EXPECT_EQ(per_frame.deliveries[i].first, batched.deliveries[i].first)
        << "delivery " << i << " timestamp";
    EXPECT_EQ(per_frame.deliveries[i].second, batched.deliveries[i].second)
        << "delivery " << i << " size";
  }

  EXPECT_EQ(per_frame.tx_stats.tx_frames, batched.tx_stats.tx_frames);
  EXPECT_EQ(per_frame.tx_stats.tx_bytes, batched.tx_stats.tx_bytes);
  EXPECT_EQ(per_frame.tx_stats.dropped_frames, batched.tx_stats.dropped_frames);
  EXPECT_GT(batched.tx_stats.dropped_frames, 0u);  // the bursts did overflow
  EXPECT_EQ(per_frame.tx_stats.busy_time, batched.tx_stats.busy_time);
  EXPECT_EQ(per_frame.rx_stats.rx_frames, batched.rx_stats.rx_frames);
  EXPECT_EQ(per_frame.rx_stats.rx_bytes, batched.rx_stats.rx_bytes);

  EXPECT_EQ(per_frame.sampled_depths, batched.sampled_depths);
  EXPECT_EQ(per_frame.sampled_bytes, batched.sampled_bytes);
}

TEST(BatchedDelivery, ExecutesFewerEvents) {
  const DriveResult per_frame = drive(false);
  const DriveResult batched = drive(true);
  // Per-frame: 2 events per transmitted frame (delivery + tx-complete).
  // Batched: one armed timer per busy period. Strictly fewer here.
  EXPECT_LT(batched.events, per_frame.events);
}

// End-to-end gate on the paper topology: the full 4-host testbed (ADF
// firewall, TCP iperf through the device under test) must measure the
// same goodput to the byte under both engines.
TEST(BatchedDelivery, TestbedIperfByteIdentical) {
  auto measure = [](bool batched) {
    sim::Simulation sim(7);
    core::TestbedConfig config;
    config.firewall = core::FirewallKind::kAdf;
    config.action_rule_depth = 16;
    config.batched_links = batched;
    core::Testbed testbed(sim, config);
    testbed.settle();

    apps::IperfServer server(testbed.target());
    server.start();
    apps::IperfClient client(testbed.client(), testbed.addresses().target);
    apps::IperfResult result;
    client.run(apps::IperfClient::Mode::kTcp, sim::Duration::milliseconds(200),
               [&](apps::IperfResult r) { result = r; });
    sim.run();
    return result;
  };

  // BARB_LINK_BATCH (if set by an outer harness) would override both runs
  // the same way, making the comparison vacuous — require it unset.
  ASSERT_EQ(std::getenv("BARB_LINK_BATCH"), nullptr)
      << "unset BARB_LINK_BATCH when running this test";

  const apps::IperfResult per_frame = measure(false);
  const apps::IperfResult batched = measure(true);
  EXPECT_TRUE(per_frame.completed);
  EXPECT_TRUE(batched.completed);
  EXPECT_EQ(per_frame.bytes, batched.bytes);
  EXPECT_EQ(per_frame.mbps, batched.mbps);
  EXPECT_EQ(per_frame.retransmissions, batched.retransmissions);
}

// Flood scenario (fig3-shaped contention: UDP blast + queue overflow on the
// victim's access link) — same check under sustained overload.
TEST(BatchedDelivery, TestbedFloodByteIdentical) {
  auto measure = [](bool batched) {
    sim::Simulation sim(11);
    core::TestbedConfig config;
    config.firewall = core::FirewallKind::kNone;
    config.batched_links = batched;
    core::Testbed testbed(sim, config);
    testbed.settle();

    apps::IperfServer server(testbed.target());
    server.start();
    apps::IperfClient client(testbed.client(), testbed.addresses().target);
    apps::IperfResult result;
    client.run(apps::IperfClient::Mode::kUdp, sim::Duration::milliseconds(200),
               [&](apps::IperfResult r) { result = r; }, 50e6);

    apps::FloodConfig flood_cfg;
    flood_cfg.target = testbed.addresses().target;
    flood_cfg.rate_pps = 20000;
    flood_cfg.frame_size = 1514;  // > line rate: forces queue overflow
    flood_cfg.spoof_source = true;
    apps::FloodGenerator flood(testbed.attacker(), flood_cfg);
    flood.start();
    sim.schedule(sim::Duration::milliseconds(400), [&] { flood.stop(); });
    sim.run();

    struct Out {
      std::uint64_t bytes;
      std::uint64_t rx_frames;
      std::uint64_t drops;
    } out{result.bytes, 0, 0};
    const auto& s = testbed.fabric().host_link(3).b().stats();
    out.rx_frames = s.tx_frames;  // switch-side TX = frames toward target
    out.drops = s.dropped_frames;
    return std::make_tuple(out.bytes, out.rx_frames, out.drops);
  };

  ASSERT_EQ(std::getenv("BARB_LINK_BATCH"), nullptr);
  const auto per_frame = measure(false);
  const auto batched = measure(true);
  EXPECT_EQ(per_frame, batched);
  EXPECT_GT(std::get<2>(per_frame), 0u);  // the flood did overflow the queue
}

}  // namespace
}  // namespace barb::link
