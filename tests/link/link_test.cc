#include "link/link.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.h"

namespace barb::link {
namespace {

struct CollectorSink : FrameSink {
  std::vector<net::Packet> received;
  std::vector<sim::TimePoint> arrival_times;
  sim::Simulation* sim = nullptr;

  void deliver(net::Packet pkt) override {
    received.push_back(std::move(pkt));
    if (sim) arrival_times.push_back(sim->now());
  }
};

net::Packet make_frame(std::size_t size, std::uint64_t id = 0) {
  return net::Packet{std::vector<std::uint8_t>(size, 0xab), sim::TimePoint::origin(), id};
}

TEST(Link, DeliversFrameAfterSerializationAndPropagation) {
  sim::Simulation sim;
  Link link(sim);  // 100 Mbps, 500 ns propagation
  CollectorSink sink;
  sink.sim = &sim;
  link.b().connect_sink(&sink);

  link.a().send(make_frame(1514));
  sim.run();

  ASSERT_EQ(sink.received.size(), 1u);
  // (1514 + 24 overhead) * 8 bits / 100 Mbps = 123.04 us, + 0.5 us propagation.
  EXPECT_EQ(sink.arrival_times[0].ns(), 123040 + 500);
}

TEST(Link, MinimumFrameTiming) {
  sim::Simulation sim;
  Link link(sim);
  // 64-byte frames (60 without FCS): (60+24)*8/100e6 = 6.72 us on the wire.
  EXPECT_EQ(link.a().frame_time(60).ns(), 6720);
  // Runt frames are padded to the minimum by the wire model.
  EXPECT_EQ(link.a().frame_time(20).ns(), 6720);
}

TEST(Link, MaxFrameRateMatchesEthernet) {
  // 100 Mbps line rate: 8127 maximum-size frames/s, 148809 minimum-size.
  sim::Simulation sim;
  Link link(sim);
  const double fps_max = 1.0 / link.a().frame_time(1514).to_seconds();
  const double fps_min = 1.0 / link.a().frame_time(60).to_seconds();
  EXPECT_NEAR(fps_max, 8127.4, 1.0);
  EXPECT_NEAR(fps_min, 148810.0, 30.0);
}

TEST(Link, BackToBackFramesSerializeSequentially) {
  sim::Simulation sim;
  Link link(sim);
  CollectorSink sink;
  sink.sim = &sim;
  link.b().connect_sink(&sink);

  for (int i = 0; i < 3; ++i) link.a().send(make_frame(1514, static_cast<std::uint64_t>(i)));
  sim.run();

  ASSERT_EQ(sink.received.size(), 3u);
  // Arrivals spaced exactly one frame time apart.
  EXPECT_EQ(sink.arrival_times[1] - sink.arrival_times[0],
            sim::Duration::nanoseconds(123040));
  EXPECT_EQ(sink.arrival_times[2] - sink.arrival_times[1],
            sim::Duration::nanoseconds(123040));
  // FIFO order preserved.
  EXPECT_EQ(sink.received[0].id, 0u);
  EXPECT_EQ(sink.received[2].id, 2u);
}

TEST(Link, QueueOverflowDropsTail) {
  sim::Simulation sim;
  LinkConfig cfg;
  cfg.queue_bytes = 5 * 1514;
  Link link(sim, cfg);
  CollectorSink sink;
  link.b().connect_sink(&sink);

  // 1 transmitting + 5 queued fit; the rest drop.
  for (int i = 0; i < 10; ++i) link.a().send(make_frame(1514));
  EXPECT_EQ(link.a().stats().dropped_frames, 4u);
  sim.run();
  EXPECT_EQ(sink.received.size(), 6u);
  EXPECT_EQ(link.a().stats().tx_frames, 6u);

  // Byte accounting: after a full drain, ~126 minimum-size frames fit in the
  // same budget that held five full-size frames.
  int accepted = 0;
  for (int i = 0; i < 400; ++i) {
    const auto before = link.a().stats().dropped_frames;
    link.a().send(make_frame(60));
    if (link.a().stats().dropped_frames == before) ++accepted;
  }
  EXPECT_GT(accepted, 100);
  sim.run();
}

TEST(Link, DirectionsAreIndependent) {
  sim::Simulation sim;
  Link link(sim);
  CollectorSink sink_a, sink_b;
  sink_a.sim = sink_b.sim = &sim;
  link.a().connect_sink(&sink_a);
  link.b().connect_sink(&sink_b);

  link.a().send(make_frame(1514));
  link.b().send(make_frame(1514));
  sim.run();

  // Full duplex: both frames arrive at the same (single-frame) time.
  ASSERT_EQ(sink_a.received.size(), 1u);
  ASSERT_EQ(sink_b.received.size(), 1u);
  EXPECT_EQ(sink_a.arrival_times[0], sink_b.arrival_times[0]);
}

TEST(Link, StatsCountBytes) {
  sim::Simulation sim;
  Link link(sim);
  CollectorSink sink;
  link.b().connect_sink(&sink);
  link.a().send(make_frame(100));
  link.a().send(make_frame(200));
  sim.run();
  EXPECT_EQ(link.a().stats().tx_bytes, 300u);
  EXPECT_EQ(link.b().stats().rx_bytes, 300u);
  EXPECT_EQ(link.b().stats().rx_frames, 2u);
}

TEST(Link, SustainedThroughputAtLineRate) {
  // Saturate one direction for 10 ms and verify delivered bandwidth.
  sim::Simulation sim;
  LinkConfig cfg;
  cfg.queue_bytes = 10000 * 1514;
  Link link(sim, cfg);
  CollectorSink sink;
  link.b().connect_sink(&sink);

  const int n = 100;
  for (int i = 0; i < n; ++i) link.a().send(make_frame(1514));
  sim.run();
  const double elapsed = sim.now().to_seconds();
  const double payload_bps = n * 1514 * 8.0 / elapsed;
  // 1514/1538 of the raw 100 Mbps.
  EXPECT_NEAR(payload_bps, 100e6 * 1514.0 / 1538.0, 1e5);
}

}  // namespace
}  // namespace barb::link
