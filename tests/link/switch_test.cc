#include "link/switch.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/frame_buffer.h"
#include "net/packet_builder.h"
#include "sim/simulation.h"

namespace barb::link {
namespace {

struct CollectorSink : FrameSink {
  std::vector<net::Packet> received;
  void deliver(net::Packet pkt) override { received.push_back(std::move(pkt)); }
};

net::Packet frame_between(std::uint32_t src_id, std::uint32_t dst_id,
                          bool broadcast = false) {
  net::IpEndpoints ep;
  ep.src_ip = net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(src_id));
  ep.dst_ip = net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(dst_id));
  ep.src_mac = net::MacAddress::from_host_id(src_id);
  ep.dst_mac = broadcast ? net::MacAddress::broadcast()
                         : net::MacAddress::from_host_id(dst_id);
  const std::uint8_t payload[] = {1, 2, 3};
  return net::Packet{net::build_udp_frame(ep, 1000, 2000, payload),
                     sim::TimePoint::origin(), 0};
}

// Three hosts (collector sinks) on a three-port switch.
struct SwitchFixture {
  sim::Simulation sim;
  Switch sw{sim, "sw"};
  std::vector<std::unique_ptr<Link>> links;
  std::vector<CollectorSink> sinks{3};

  SwitchFixture() {
    for (int i = 0; i < 3; ++i) {
      links.push_back(std::make_unique<Link>(sim));
      links.back()->a().connect_sink(&sinks[static_cast<std::size_t>(i)]);
      sw.attach(links.back()->b());
    }
  }

  // Injects a frame into the switch as if sent by host `port`.
  void inject(int port, net::Packet pkt) {
    links[static_cast<std::size_t>(port)]->a().send(std::move(pkt));
  }
};

TEST(Switch, FloodsUnknownDestination) {
  SwitchFixture f;
  f.inject(0, frame_between(1, 2));
  f.sim.run();
  // Destination unlearned: all ports except ingress receive it.
  EXPECT_EQ(f.sinks[0].received.size(), 0u);
  EXPECT_EQ(f.sinks[1].received.size(), 1u);
  EXPECT_EQ(f.sinks[2].received.size(), 1u);
  EXPECT_EQ(f.sw.stats().flooded, 1u);
}

TEST(Switch, LearnsSourceAndForwardsUnicast) {
  SwitchFixture f;
  f.inject(1, frame_between(2, 3));  // teaches the switch MAC 2 -> port 1
  f.sim.run();
  EXPECT_EQ(f.sw.lookup(net::MacAddress::from_host_id(2)), 1);

  f.inject(0, frame_between(1, 2));  // now unicast to MAC 2
  f.sim.run();
  EXPECT_EQ(f.sinks[1].received.size(), 1u);  // flooded frame earlier? no: port1 ingress
  EXPECT_EQ(f.sinks[2].received.size(), 1u);  // only the first flood
  EXPECT_EQ(f.sw.stats().forwarded, 1u);
}

TEST(Switch, BroadcastAlwaysFloods) {
  SwitchFixture f;
  f.inject(0, frame_between(1, 0, /*broadcast=*/true));
  f.inject(0, frame_between(1, 0, /*broadcast=*/true));
  f.sim.run();
  EXPECT_EQ(f.sinks[1].received.size(), 2u);
  EXPECT_EQ(f.sinks[2].received.size(), 2u);
  EXPECT_EQ(f.sw.stats().flooded, 2u);
}

// Regression for the broadcast deep copy: flooding a frame to N ports used
// to re-construct the byte vector per port. Every delivered copy must now
// share the ingress frame's buffer, and flooding must not allocate new
// frame buffers at all.
TEST(Switch, FloodSharesOneBufferAcrossPorts) {
  SwitchFixture f;
  const std::size_t live_before = net::BufferPool::instance().live_buffers();
  net::Packet pkt = frame_between(1, 0, /*broadcast=*/true);
  const std::uint8_t* origin_bytes = pkt.bytes().data();
  f.inject(0, std::move(pkt));
  f.sim.run();
  ASSERT_EQ(f.sinks[1].received.size(), 1u);
  ASSERT_EQ(f.sinks[2].received.size(), 1u);
  const net::Packet& a = f.sinks[1].received[0];
  const net::Packet& b = f.sinks[2].received[0];
  // Same backing storage, not merely equal bytes.
  EXPECT_EQ(a.bytes().data(), origin_bytes);
  EXPECT_EQ(b.bytes().data(), origin_bytes);
  EXPECT_TRUE(a.buffer.same_buffer(b.buffer));
  EXPECT_GE(a.buffer->refcount(), 2u);
  // Both sinks' handles are the only thing keeping the buffer alive: the
  // flood created zero additional buffers.
  EXPECT_EQ(net::BufferPool::instance().live_buffers(), live_before + 1);
  f.sinks[1].received.clear();
  f.sinks[2].received.clear();
  EXPECT_EQ(net::BufferPool::instance().live_buffers(), live_before);
}

TEST(Switch, FiltersFramesForIngressSegment) {
  SwitchFixture f;
  f.inject(0, frame_between(2, 3));  // mislearn: MAC 2 now maps to port 0
  f.sim.run();
  // A frame to MAC 2 arriving on port 0 must be filtered, not echoed back.
  f.inject(0, frame_between(1, 2));
  f.sim.run();
  EXPECT_EQ(f.sinks[0].received.size(), 0u);
  EXPECT_EQ(f.sw.stats().filtered, 1u);
}

TEST(Switch, ForwardingAddsLatency) {
  sim::Simulation sim;
  SwitchConfig cfg;
  cfg.forwarding_delay = sim::Duration::microseconds(10);
  Switch sw(sim, "sw", cfg);
  Link l0(sim), l1(sim);
  CollectorSink sink;
  l1.a().connect_sink(&sink);
  sw.attach(l0.b());
  sw.attach(l1.b());

  l0.a().send(frame_between(1, 2));
  sim.run();
  ASSERT_EQ(sink.received.size(), 1u);
  // ingress wire (60+24)*8/100e6 = 6.72us + 0.5us, + 10us forwarding,
  // + egress 6.72us + 0.5us.
  EXPECT_EQ(sim.now().ns(), 6720 + 500 + 10000 + 6720 + 500);
}

TEST(Switch, MacTableAges) {
  sim::Simulation sim;
  SwitchConfig cfg;
  cfg.mac_table_aging = sim::Duration::seconds(1);
  Switch sw(sim, "sw", cfg);
  Link l0(sim), l1(sim);
  sw.attach(l0.b());
  sw.attach(l1.b());
  CollectorSink s0, s1;
  l0.a().connect_sink(&s0);
  l1.a().connect_sink(&s1);

  l0.a().send(frame_between(1, 2));
  sim.run();
  EXPECT_EQ(sw.lookup(net::MacAddress::from_host_id(1)), 0);
  sim.run_for(sim::Duration::seconds(2));
  EXPECT_EQ(sw.lookup(net::MacAddress::from_host_id(1)), -1);
}

TEST(Switch, RuntFrameIsDiscarded) {
  SwitchFixture f;
  f.inject(0, net::Packet{std::vector<std::uint8_t>(8, 0xff), sim::TimePoint::origin(), 0});
  f.sim.run();
  EXPECT_EQ(f.sinks[1].received.size(), 0u);
  EXPECT_EQ(f.sinks[2].received.size(), 0u);
}

}  // namespace
}  // namespace barb::link
