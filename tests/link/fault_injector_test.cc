#include "link/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

#include "link/link.h"
#include "net/packet_builder.h"
#include "sim/simulation.h"
#include "stack/host.h"
#include "stack/udp.h"
#include "testutil/fixtures.h"

namespace barb {
namespace {

// Sends `count` UDP datagrams a -> b with an injector on a's port and
// returns the receive order (each datagram carries its index).
struct LossyRun {
  std::vector<int> received_order;
  link::FaultInjectorStats stats;
  link::LinkPortStats tx_stats;
  link::LinkPortStats rx_stats;
};

LossyRun run_datagrams(const link::FaultProfile& profile, std::uint64_t seed,
                       int count) {
  sim::Simulation sim(1);
  testutil::TwoHosts net(sim);
  link::FaultInjector injector(profile, seed);
  net.link.a().set_fault_injector(&injector);

  LossyRun out;
  auto* rx = net.b->udp_open(9000);
  rx->set_receiver([&](net::Ipv4Address, std::uint16_t,
                       std::span<const std::uint8_t> payload) {
    if (!payload.empty()) out.received_order.push_back(payload[0]);
  });

  auto* tx = net.a->udp_open(9001);
  for (int i = 0; i < count; ++i) {
    const int idx = i;
    sim.schedule(sim::Duration::microseconds(100 * i), [tx, idx, &net] {
      const std::uint8_t payload[] = {static_cast<std::uint8_t>(idx)};
      tx->send_to(net.b->ip(), 9000, payload);
    });
  }
  sim.run();

  out.stats = injector.stats();
  out.tx_stats = net.link.a().stats();
  out.rx_stats = net.link.b().stats();
  return out;
}

TEST(FaultInjector, DisabledProfileChangesNothing) {
  link::FaultProfile clean;
  EXPECT_FALSE(clean.enabled());
  const auto run = run_datagrams(clean, 7, 50);
  EXPECT_EQ(run.received_order.size(), 50u);
  EXPECT_EQ(run.stats.frames, 50u);
  EXPECT_EQ(run.stats.lost(), 0u);
  EXPECT_EQ(run.stats.duplicated, 0u);
  // In order, nothing touched.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(run.received_order[i], i);
}

TEST(FaultInjector, SameSeedSameFate) {
  link::FaultProfile p;
  p.loss = 0.2;
  p.duplication = 0.1;
  p.reorder = 0.15;
  p.jitter_max = sim::Duration::microseconds(50);

  const auto run1 = run_datagrams(p, 1234, 200);
  const auto run2 = run_datagrams(p, 1234, 200);
  EXPECT_EQ(run1.received_order, run2.received_order);
  EXPECT_EQ(run1.stats.lost(), run2.stats.lost());
  EXPECT_EQ(run1.stats.duplicated, run2.stats.duplicated);
  EXPECT_EQ(run1.stats.reordered, run2.stats.reordered);
  EXPECT_EQ(run1.stats.jittered, run2.stats.jittered);

  const auto run3 = run_datagrams(p, 4321, 200);
  EXPECT_NE(run1.received_order, run3.received_order);
}

TEST(FaultInjector, LossIsCountedAndConserved) {
  link::FaultProfile p;
  p.loss = 0.3;
  const auto run = run_datagrams(p, 99, 500);
  EXPECT_GT(run.stats.lost_random, 0u);
  EXPECT_EQ(run.stats.lost_burst, 0u);
  // Conservation: every transmitted frame was delivered or counted lost.
  EXPECT_EQ(run.rx_stats.rx_frames,
            run.tx_stats.tx_frames - run.stats.lost() + run.stats.duplicated);
  // ~30% loss with generous slack (binomial over ~500 UDP frames).
  const double rate = static_cast<double>(run.stats.lost()) /
                      static_cast<double>(run.stats.frames);
  EXPECT_GT(rate, 0.15);
  EXPECT_LT(rate, 0.45);
}

TEST(FaultInjector, DuplicationDeliversExtraFrames) {
  link::FaultProfile p;
  p.duplication = 0.25;
  const auto run = run_datagrams(p, 5, 400);
  EXPECT_GT(run.stats.duplicated, 0u);
  EXPECT_EQ(run.stats.lost(), 0u);
  EXPECT_EQ(run.rx_stats.rx_frames, run.tx_stats.tx_frames + run.stats.duplicated);
  EXPECT_EQ(run.received_order.size(),
            static_cast<std::size_t>(400 + run.stats.duplicated));
}

TEST(FaultInjector, ReorderingShufflesDeliveries) {
  link::FaultProfile p;
  p.reorder = 0.3;
  p.reorder_window = 4;
  p.reorder_hold = sim::Duration::milliseconds(1);
  const auto run = run_datagrams(p, 42, 200);
  EXPECT_GT(run.stats.reordered, 0u);
  EXPECT_EQ(run.received_order.size(), 200u);  // nothing lost, nothing duplicated
  bool out_of_order = false;
  for (std::size_t i = 1; i < run.received_order.size(); ++i) {
    if (run.received_order[i] < run.received_order[i - 1]) out_of_order = true;
  }
  EXPECT_TRUE(out_of_order);
}

TEST(FaultInjector, GilbertElliottLosesInBursts) {
  link::FaultProfile p;
  p.ge_p_good_to_bad = 0.05;
  p.ge_p_bad_to_good = 0.3;
  p.ge_loss_good = 0.0;
  p.ge_loss_bad = 1.0;
  EXPECT_TRUE(p.enabled());

  const auto run = run_datagrams(p, 2024, 1000);
  EXPECT_GT(run.stats.lost_burst, 0u);
  EXPECT_EQ(run.stats.lost_random, 0u);
  EXPECT_EQ(run.rx_stats.rx_frames, run.tx_stats.tx_frames - run.stats.lost());

  // Burstiness: with loss only in the bad state, consecutive losses must
  // appear (expected burst length 1/p_bad_to_good > 3 frames). Reconstruct
  // gaps from the received indices.
  int max_gap = 0;
  int prev = -1;
  for (int got : run.received_order) {
    max_gap = std::max(max_gap, got - prev - 1);
    prev = got;
  }
  EXPECT_GE(max_gap, 2);
}

TEST(FaultInjector, CorruptionFlipsBitsButConservesFrames) {
  link::FaultProfile p;
  p.corruption = 0.3;
  const auto run = run_datagrams(p, 77, 300);
  EXPECT_GT(run.stats.corrupted, 0u);
  // Corruption never removes frames from the wire.
  EXPECT_EQ(run.rx_stats.rx_frames, run.tx_stats.tx_frames);
  // Corrupt frames fail checksum (or parse) somewhere in the stack, so the
  // app sees fewer datagrams than were sent but the wire saw all of them.
  EXPECT_LT(run.received_order.size(), 300u);
}

TEST(FaultInjector, MetricsExposeFaultCounters) {
  sim::Simulation sim(1);
  testutil::TwoHosts net(sim);
  link::FaultProfile p;
  p.loss = 0.5;
  link::FaultInjector injector(p, 11);
  net.link.a().set_fault_injector(&injector);

  telemetry::MetricRegistry registry;
  injector.register_metrics(registry, "link=test,side=a");

  auto* tx = net.a->udp_open(9001);
  for (int i = 0; i < 100; ++i) {
    sim.schedule(sim::Duration::microseconds(50 * i), [tx, &net] {
      const std::uint8_t payload[] = {0xab};
      tx->send_to(net.b->ip(), 9000, payload);
    });
  }
  sim.run();

  EXPECT_GT(injector.stats().lost_random, 0u);
  EXPECT_NE(registry.find("fault.lost_random", "link=test,side=a"), nullptr);
  EXPECT_EQ(registry.value("fault.lost_random", "link=test,side=a"),
            static_cast<double>(injector.stats().lost_random));
  EXPECT_EQ(registry.value("fault.frames", "link=test,side=a"),
            static_cast<double>(injector.stats().frames));
}

}  // namespace
}  // namespace barb
