// Bulk-transfer helpers for TCP tests: deterministic payload pattern, a
// sender that streams N bytes through the send-buffer backpressure API, and
// a verifying receiver.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "stack/host.h"
#include "stack/nic.h"
#include "stack/tcp.h"

namespace barb::testutil {

inline std::uint8_t pattern_byte(std::size_t offset) {
  return static_cast<std::uint8_t>((offset * 31 + 7) & 0xff);
}

class BulkSender {
 public:
  BulkSender(std::shared_ptr<stack::TcpConnection> conn, std::size_t total,
             bool close_when_done = true)
      : conn_(std::move(conn)), total_(total), close_when_done_(close_when_done) {
    conn_->on_connected = [this] { pump(); };
    conn_->on_send_space = [this] { pump(); };
  }

  // For already-established connections.
  void start() { pump(); }

  std::size_t sent() const { return offset_; }
  bool done() const { return offset_ >= total_; }

 private:
  void pump() {
    while (offset_ < total_) {
      const std::size_t n = std::min<std::size_t>(16 * 1024, total_ - offset_);
      std::vector<std::uint8_t> chunk(n);
      for (std::size_t i = 0; i < n; ++i) chunk[i] = pattern_byte(offset_ + i);
      const std::size_t accepted = conn_->send(chunk);
      offset_ += accepted;
      if (accepted < n) break;  // buffer full; resume on on_send_space
    }
    if (done() && close_when_done_ && !closed_) {
      closed_ = true;
      conn_->close();
    }
  }

  std::shared_ptr<stack::TcpConnection> conn_;
  std::size_t total_;
  bool close_when_done_;
  std::size_t offset_ = 0;
  bool closed_ = false;
};

class VerifyingReceiver {
 public:
  void attach(const std::shared_ptr<stack::TcpConnection>& conn,
              bool close_on_eof = true) {
    conn->on_data = [this](std::span<const std::uint8_t> data) {
      for (std::uint8_t b : data) {
        if (b != pattern_byte(received_)) ++mismatches_;
        ++received_;
      }
    };
    conn->on_peer_closed = [this, close_on_eof, conn] {
      eof_ = true;
      if (on_eof) on_eof();
      if (close_on_eof) conn->close();
    };
  }

  // Optional hook invoked when the peer's FIN arrives.
  std::function<void()> on_eof;

  std::size_t received() const { return received_; }
  std::size_t mismatches() const { return mismatches_; }
  bool eof() const { return eof_; }

 private:
  std::size_t received_ = 0;
  std::size_t mismatches_ = 0;
  bool eof_ = false;
};

// A NIC that flips a random bit in some received frames (for corruption
// tests: every mangled segment must be caught by a checksum, never
// delivered to the application).
class CorruptingNic : public stack::StandardNic {
 public:
  CorruptingNic(sim::Simulation& sim, net::MacAddress mac, std::string name,
                double corruption_probability)
      : StandardNic(sim, mac, std::move(name)), probability_(corruption_probability) {}

  void deliver(net::Packet pkt) override {
    if (pkt.size() > 0 && sim_.rng().bernoulli(probability_)) {
      // Frame buffers are immutable (other handles may share them), so
      // corruption rebuilds the packet around a mutated copy of the bytes.
      std::vector<std::uint8_t> bytes = pkt.copy_bytes();
      // Corrupt beyond the Ethernet header (the switch already routed on it).
      const std::size_t offset =
          net::EthernetHeader::kSize +
          sim_.rng().uniform(bytes.size() - net::EthernetHeader::kSize);
      bytes[offset] ^= static_cast<std::uint8_t>(1u << sim_.rng().uniform(8));
      ++corrupted_;
      pkt = net::Packet{std::move(bytes), pkt.created, pkt.id};
    }
    StandardNic::deliver(std::move(pkt));
  }

  std::uint64_t corrupted() const { return corrupted_; }

 private:
  double probability_;
  std::uint64_t corrupted_ = 0;
};

// A NIC that drops received frames with fixed probability (for loss tests).
class LossyNic : public stack::StandardNic {
 public:
  LossyNic(sim::Simulation& sim, net::MacAddress mac, std::string name,
           double loss_probability)
      : StandardNic(sim, mac, std::move(name)), loss_(loss_probability) {}

  void deliver(net::Packet pkt) override {
    if (sim_.rng().bernoulli(loss_)) return;  // frame lost
    StandardNic::deliver(std::move(pkt));
  }

 private:
  double loss_;
};

}  // namespace barb::testutil
