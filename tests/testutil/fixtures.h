// Shared test topology builders.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "link/link.h"
#include "link/switch.h"
#include "sim/simulation.h"
#include "stack/host.h"
#include "stack/nic.h"

namespace barb::testutil {

inline std::unique_ptr<stack::Host> make_host(sim::Simulation& sim,
                                              const std::string& name, std::uint32_t id,
                                              net::Ipv4Address ip,
                                              stack::HostConfig config = {}) {
  auto nic = std::make_unique<stack::StandardNic>(sim, net::MacAddress::from_host_id(id),
                                                  name + "/nic");
  return std::make_unique<stack::Host>(sim, name, ip, std::move(nic), config);
}

// Two hosts on a point-to-point link (a: 10.0.0.1, b: 10.0.0.2).
struct TwoHosts {
  explicit TwoHosts(sim::Simulation& sim, link::LinkConfig link_config = {})
      : link(sim, link_config) {
    a = make_host(sim, "a", 1, net::Ipv4Address(10, 0, 0, 1));
    b = make_host(sim, "b", 2, net::Ipv4Address(10, 0, 0, 2));
    a->nic().attach(link.a());
    b->nic().attach(link.b());
    a->arp().add(b->ip(), b->mac());
    b->arp().add(a->ip(), a->mac());
  }

  link::Link link;
  std::unique_ptr<stack::Host> a;
  std::unique_ptr<stack::Host> b;
};

// N hosts in a star around one switch, addressed 10.0.0.(i+1).
struct StarNetwork {
  StarNetwork(sim::Simulation& sim, int n, link::LinkConfig link_config = {})
      : sw(sim, "sw") {
    for (int i = 0; i < n; ++i) {
      links.push_back(std::make_unique<link::Link>(sim, link_config));
      auto host = make_host(sim, "h" + std::to_string(i),
                            static_cast<std::uint32_t>(i + 1),
                            net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i + 1)));
      host->nic().attach(links.back()->a());
      sw.attach(links.back()->b());
      hosts.push_back(std::move(host));
    }
    for (auto& h1 : hosts) {
      for (auto& h2 : hosts) {
        if (h1 != h2) h1->arp().add(h2->ip(), h2->mac());
      }
    }
  }

  link::Switch sw;
  std::vector<std::unique_ptr<link::Link>> links;
  std::vector<std::unique_ptr<stack::Host>> hosts;
};

}  // namespace barb::testutil
