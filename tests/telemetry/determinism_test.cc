// The telemetry determinism contract, end to end: two same-seed flood
// timelines must serialize to byte-identical JSON, and a different seed must
// not (the series actually carry simulation state, not constants).
#include <gtest/gtest.h>

#include "core/experiments.h"
#include "telemetry/artifact.h"
#include "telemetry/json.h"

namespace barb::core {
namespace {

MeasurementOptions fast_options(std::uint64_t seed) {
  MeasurementOptions opt;
  opt.window = sim::Duration::milliseconds(400);
  opt.repetitions = 1;
  opt.flood_warmup = sim::Duration::milliseconds(150);
  opt.seed = seed;
  return opt;
}

std::string timeline_json(std::uint64_t seed) {
  TestbedConfig cfg;
  cfg.firewall = FirewallKind::kAdf;
  cfg.action_rule_depth = 16;
  FloodSpec flood;
  flood.rate_pps = 20000;
  const auto timeline = record_flood_timeline(cfg, flood, fast_options(seed));
  // Deliberately no seed in meta: the JSON may differ between seeds only
  // through genuinely sampled simulation state.
  telemetry::BenchArtifact artifact("determinism_check");
  artifact.add_point("goodput", 20000, timeline.mbps);
  artifact.add_recording("adf flood_20kpps", timeline.recording);
  return artifact.to_json();
}

TEST(TelemetryDeterminism, SameSeedYieldsIdenticalArtifactJson) {
  const std::string first = timeline_json(1);
  const std::string second = timeline_json(1);
  EXPECT_EQ(first, second);
  // The recording must actually contain sampled simulation state.
  EXPECT_NE(first.find("iperf.goodput_mbps"), std::string::npos);
  EXPECT_NE(first.find("fw.service_time_ns"), std::string::npos);
}

TEST(TelemetryDeterminism, DifferentSeedsDiverge) {
  // Not a formal guarantee for every metric, but the TCP/iperf dynamics are
  // seed-dependent; identical output across seeds would mean the probe is
  // sampling constants.
  EXPECT_NE(timeline_json(1), timeline_json(2));
}

TEST(TelemetryDeterminism, RecordingSerializationIsRepeatable) {
  TestbedConfig cfg;
  cfg.firewall = FirewallKind::kEfw;
  cfg.action_rule_depth = 8;
  FloodSpec flood;
  flood.rate_pps = 5000;
  const auto timeline = record_flood_timeline(cfg, flood, fast_options(3));
  const std::string a = telemetry::recording_to_json(timeline.recording);
  const std::string b = telemetry::recording_to_json(timeline.recording);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(timeline.recording.timestamps_s.empty());
}

}  // namespace
}  // namespace barb::core
