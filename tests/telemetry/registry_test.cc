// MetricRegistry: registration, lookup, idempotence, and the deterministic
// (sorted) iteration order the exporters rely on.
#include "telemetry/registry.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace barb::telemetry {
namespace {

TEST(MetricRegistry, OwnedCounterIsIdempotent) {
  MetricRegistry reg;
  Counter& a = reg.counter("fw.drops", "host=target");
  a.inc();
  a.inc(2);
  Counter& b = reg.counter("fw.drops", "host=target");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricRegistry, SameNameDifferentLabelsAreDistinct) {
  MetricRegistry reg;
  reg.counter("link.tx", "link=client").inc(5);
  reg.counter("link.tx", "link=target").inc(7);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_DOUBLE_EQ(reg.value("link.tx", "link=client"), 5.0);
  EXPECT_DOUBLE_EQ(reg.value("link.tx", "link=target"), 7.0);
}

TEST(MetricRegistry, SampledCounterReadsThroughCallback) {
  MetricRegistry reg;
  std::uint64_t backing = 0;
  reg.counter_fn("tcp.retransmissions", "",
                 [&backing] { return static_cast<double>(backing); });
  EXPECT_DOUBLE_EQ(reg.value("tcp.retransmissions"), 0.0);
  backing = 42;
  EXPECT_DOUBLE_EQ(reg.value("tcp.retransmissions"), 42.0);
  const auto* entry = reg.find("tcp.retransmissions");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->kind, MetricKind::kCounter);
}

TEST(MetricRegistry, GaugeSamplerIsReplaceable) {
  MetricRegistry reg;
  reg.gauge("fw.queue_depth", "", [] { return 3.0; });
  EXPECT_DOUBLE_EQ(reg.value("fw.queue_depth"), 3.0);
  reg.gauge("fw.queue_depth", "", [] { return 9.0; });
  EXPECT_DOUBLE_EQ(reg.value("fw.queue_depth"), 9.0);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricRegistry, HistogramEntrySamplesAsCount) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("fw.service_time_ns");
  h.record(100);
  h.record(200);
  EXPECT_DOUBLE_EQ(reg.value("fw.service_time_ns"), 2.0);
  Histogram& again = reg.histogram("fw.service_time_ns");
  EXPECT_EQ(&h, &again);
}

TEST(MetricRegistry, FindMissingReturnsNullAndValueZero) {
  MetricRegistry reg;
  EXPECT_EQ(reg.find("no.such.metric"), nullptr);
  EXPECT_DOUBLE_EQ(reg.value("no.such.metric"), 0.0);
}

TEST(MetricRegistry, IterationIsSortedByNameThenLabels) {
  MetricRegistry reg;
  reg.counter("zeta.last");
  reg.counter("alpha.first", "b=2");
  reg.counter("alpha.first", "a=1");
  reg.gauge("middle.gauge", "", [] { return 0.0; });

  std::vector<std::string> order;
  reg.for_each([&](const MetricRegistry::Entry& e) {
    order.push_back(e.id.name + "|" + e.id.labels);
  });
  const std::vector<std::string> expected = {
      "alpha.first|a=1", "alpha.first|b=2", "middle.gauge|", "zeta.last|"};
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace barb::telemetry
