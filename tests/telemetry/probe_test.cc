// TimeSeriesProbe: sim-clock sampling cadence, alignment, late-registration
// padding, and the JSON exporters' formatting rules.
#include "telemetry/probe.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"
#include "telemetry/json.h"
#include "telemetry/registry.h"

namespace barb::telemetry {
namespace {

using sim::Duration;

TEST(TimeSeriesProbe, SamplesOnTheSimClock) {
  MetricRegistry reg;
  sim::Simulation sim;
  Counter& frames = reg.counter("link.tx_frames");

  // Bump the counter at 5, 15, ..., 95 ms — strictly between sample ticks so
  // each 10 ms sample sees exactly one more increment than the previous.
  for (int i = 0; i < 10; ++i) {
    sim.schedule(Duration::milliseconds(5 + 10 * i), [&frames] { frames.inc(); });
  }

  TimeSeriesProbe probe(sim, reg, Duration::milliseconds(10));
  probe.start();
  sim.run_for(Duration::milliseconds(100));
  probe.stop();

  const ProbeRecording& rec = probe.recording();
  EXPECT_DOUBLE_EQ(rec.interval_s, 0.010);
  // Immediate sample at t=0 plus one per 10 ms through t=100 ms.
  ASSERT_EQ(rec.timestamps_s.size(), 11u);
  EXPECT_DOUBLE_EQ(rec.timestamps_s.front(), 0.0);
  EXPECT_DOUBLE_EQ(rec.timestamps_s.back(), 0.100);

  const ProbeSeries* s = rec.find("link.tx_frames");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->values.size(), rec.timestamps_s.size());
  for (std::size_t i = 0; i < s->values.size(); ++i) {
    EXPECT_DOUBLE_EQ(s->values[i], static_cast<double>(i)) << "sample " << i;
  }
}

TEST(TimeSeriesProbe, LateRegisteredMetricIsZeroPadded) {
  MetricRegistry reg;
  sim::Simulation sim;
  reg.counter("early.counter").inc();

  TimeSeriesProbe probe(sim, reg, Duration::milliseconds(10));
  probe.start();
  sim.run_for(Duration::milliseconds(25));
  // Register mid-recording: three samples (0, 10, 20 ms) already exist.
  reg.gauge("late.gauge", "", [] { return 4.0; });
  sim.run_for(Duration::milliseconds(25));
  probe.stop();

  const ProbeRecording& rec = probe.recording();
  ASSERT_EQ(rec.timestamps_s.size(), 6u);  // 0,10,20,30,40,50 ms
  const ProbeSeries* late = rec.find("late.gauge");
  ASSERT_NE(late, nullptr);
  ASSERT_EQ(late->values.size(), 6u);
  EXPECT_DOUBLE_EQ(late->values[0], 0.0);
  EXPECT_DOUBLE_EQ(late->values[2], 0.0);
  EXPECT_DOUBLE_EQ(late->values[3], 4.0);
  EXPECT_DOUBLE_EQ(late->values[5], 4.0);
}

TEST(TimeSeriesProbe, StopHaltsSampling) {
  MetricRegistry reg;
  sim::Simulation sim;
  reg.counter("c");
  TimeSeriesProbe probe(sim, reg, Duration::milliseconds(10));
  probe.start();
  sim.run_for(Duration::milliseconds(20));
  probe.stop();
  EXPECT_FALSE(probe.running());
  const std::size_t n = probe.recording().timestamps_s.size();
  sim.run_for(Duration::milliseconds(50));
  EXPECT_EQ(probe.recording().timestamps_s.size(), n);
}

TEST(JsonFormat, DoubleFormattingIsStable) {
  EXPECT_EQ(format_double(0.0), "0");
  EXPECT_EQ(format_double(42.0), "42");
  EXPECT_EQ(format_double(-3.0), "-3");
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(1e20), "1e+20");  // too big for integral printing
  EXPECT_EQ(format_double(std::nan("")), "null");
}

TEST(JsonFormat, RegistrySnapshotIsSortedAndEscaped) {
  MetricRegistry reg;
  reg.counter("b.metric").inc(2);
  reg.gauge("a.metric", "k=\"v\"", [] { return 1.5; });
  const std::string json = registry_to_json(reg);
  // Sorted: a.metric before b.metric; quotes in labels escaped.
  const auto a_pos = json.find("a.metric");
  const auto b_pos = json.find("b.metric");
  ASSERT_NE(a_pos, std::string::npos);
  ASSERT_NE(b_pos, std::string::npos);
  EXPECT_LT(a_pos, b_pos);
  EXPECT_NE(json.find("k=\\\"v\\\""), std::string::npos);
}

TEST(JsonFormat, RecordingRoundTripShape) {
  MetricRegistry reg;
  sim::Simulation sim;
  reg.counter("x").inc();
  TimeSeriesProbe probe(sim, reg, Duration::milliseconds(10));
  probe.start();
  sim.run_for(Duration::milliseconds(20));
  probe.stop();
  const std::string json = recording_to_json(probe.recording());
  EXPECT_NE(json.find("\"interval_s\":0.01"), std::string::npos);
  EXPECT_NE(json.find("\"t\":[0,0.01,0.02]"), std::string::npos);
  EXPECT_NE(json.find("\"metric\":\"x\""), std::string::npos);
  EXPECT_NE(json.find("\"values\":[1,1,1]"), std::string::npos);
}

}  // namespace
}  // namespace barb::telemetry
