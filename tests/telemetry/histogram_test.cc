// Log-linear histogram: bucket indexing invariants and quantile accuracy
// against distributions with known quantiles.
#include "telemetry/histogram.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/random.h"

namespace barb::telemetry {
namespace {

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::index_of(v), static_cast<int>(v));
    EXPECT_EQ(Histogram::bucket_lower(static_cast<int>(v)), v);
    EXPECT_EQ(Histogram::bucket_upper(static_cast<int>(v)), v + 1);
  }
}

TEST(Histogram, BucketBoundsContainTheirValues) {
  // Every recorded value must land in a bucket whose [lower, upper) range
  // contains it, across the whole uint64 span.
  for (std::uint64_t v :
       {0ull, 1ull, 7ull, 8ull, 9ull, 15ull, 16ull, 100ull, 1000ull, 4095ull,
        4096ull, 123456789ull, (1ull << 40) + 12345, ~0ull >> 1, ~0ull}) {
    const int idx = Histogram::index_of(v);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, Histogram::kNumBuckets);
    EXPECT_LE(Histogram::bucket_lower(idx), v) << v;
    // bucket_upper overflows to 0 only for the very last bucket at 2^63.
    if (idx + 1 < Histogram::kNumBuckets) {
      EXPECT_GT(Histogram::bucket_upper(idx), v) << v;
    }
  }
}

TEST(Histogram, BucketIndexIsMonotonic) {
  int prev = -1;
  for (std::uint64_t v = 0; v < 100000; v += 7) {
    const int idx = Histogram::index_of(v);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

TEST(Histogram, RelativeBucketErrorIsBounded) {
  // Sub-bucketing guarantees upper/lower <= 1 + 1/8 for values >= 8.
  for (std::uint64_t v = 8; v < (1ull << 30); v = v * 3 + 1) {
    const int idx = Histogram::index_of(v);
    const double lo = static_cast<double>(Histogram::bucket_lower(idx));
    const double hi = static_cast<double>(Histogram::bucket_upper(idx));
    EXPECT_LE(hi / lo, 1.0 + 1.0 / 8.0 + 1e-12) << v;
  }
}

TEST(Histogram, CountSumMeanMinMax) {
  Histogram h;
  h.record(10);
  h.record(20);
  h.record(60);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 90.0);
  EXPECT_DOUBLE_EQ(h.mean(), 30.0);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 60u);
}

TEST(Histogram, QuantilesOfUniformRamp) {
  // 1..10000 recorded once each: q-quantile is ~q*10000, and the log-linear
  // buckets bound the error at 12.5% plus in-bucket interpolation.
  Histogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) h.record(v);
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99}) {
    const double exact = q * 10000.0;
    const double est = h.quantile(q);
    EXPECT_NEAR(est, exact, exact * 0.125 + 1.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);      // clamped to observed min
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10000.0);  // clamped to observed max
}

TEST(Histogram, QuantilesOfTwoPointDistribution) {
  // 90 samples at 100 and 10 at 1000000: p50 must sit in the low bucket and
  // p99 in the high one — a shape a mean alone cannot see.
  Histogram h;
  for (int i = 0; i < 90; ++i) h.record(100);
  for (int i = 0; i < 10; ++i) h.record(1000000);
  EXPECT_NEAR(h.quantile(0.50), 100.0, 100.0 * 0.125);
  EXPECT_NEAR(h.quantile(0.99), 1000000.0, 1000000.0 * 0.125);
}

TEST(Histogram, QuantilesOfGeometricSamples) {
  // Deterministic pseudo-random exponential-ish samples via the sim RNG;
  // quantile estimates must respect ordering and stay within bucket error
  // of the empirical (sorted) quantiles.
  sim::Random rng(7);
  Histogram h;
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = 1 + static_cast<std::uint64_t>(rng.exponential(5000.0));
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const double exact = static_cast<double>(
        samples[static_cast<std::size_t>(q * (samples.size() - 1))]);
    EXPECT_NEAR(h.quantile(q), exact, exact * 0.13 + 1.0) << "q=" << q;
  }
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(0.99));
}

TEST(Histogram, RecordDoubleClampsNegatives) {
  Histogram h;
  h.record_double(-5.0);
  h.record_double(2.6);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 3u);  // 2.6 rounds to nearest
}

TEST(Histogram, EmptyAndClear) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.record(123);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, ForEachBucketVisitsAscendingAndSumsToCount) {
  Histogram h;
  for (std::uint64_t v : {1ull, 5ull, 100ull, 100ull, 50000ull}) h.record(v);
  std::uint64_t total = 0;
  std::uint64_t prev_lower = 0;
  bool first = true;
  h.for_each_bucket([&](std::uint64_t lo, std::uint64_t hi, std::uint64_t c) {
    EXPECT_LT(lo, hi);
    if (!first) {
      EXPECT_GT(lo, prev_lower);
    }
    first = false;
    prev_lower = lo;
    total += c;
  });
  EXPECT_EQ(total, h.count());
}

}  // namespace
}  // namespace barb::telemetry
