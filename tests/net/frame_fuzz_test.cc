// Robustness: the frame parser is the first code to touch attacker-supplied
// bytes, so it must never misbehave on garbage.
#include <gtest/gtest.h>

#include "net/frame_view.h"
#include "net/packet_builder.h"
#include "sim/random.h"

namespace barb::net {
namespace {

TEST(FrameFuzz, RandomBytesNeverCrashTheParser) {
  sim::Random rng(2024);
  for (int trial = 0; trial < 5000; ++trial) {
    std::vector<std::uint8_t> bytes(rng.uniform(200));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64());
    auto view = FrameView::parse(bytes);
    if (view && view->ip) {
      // If the parser accepted an IP layer, its invariants must hold.
      EXPECT_GE(view->ip->total_length, Ipv4Header::kSize);
      EXPECT_LE(view->l3_payload.size() + Ipv4Header::kSize, bytes.size());
    }
  }
}

TEST(FrameFuzz, TruncatedValidFramesNeverCrash) {
  IpEndpoints ep;
  ep.src_ip = Ipv4Address(10, 0, 0, 1);
  ep.dst_ip = Ipv4Address(10, 0, 0, 2);
  ep.src_mac = MacAddress::from_host_id(1);
  ep.dst_mac = MacAddress::from_host_id(2);
  TcpHeader tcp;
  tcp.src_port = 1;
  tcp.dst_port = 2;
  tcp.flags = TcpFlags::kSyn;
  tcp.mss = 1460;
  const std::vector<std::uint8_t> payload(100, 0x5a);
  const auto frame = build_tcp_frame(ep, tcp, payload);

  for (std::size_t len = 0; len <= frame.size(); ++len) {
    auto view = FrameView::parse(std::span(frame).first(len));
    if (len >= frame.size()) {
      ASSERT_TRUE(view && view->tcp);
    }
  }
}

TEST(FrameFuzz, BitFlippedValidFramesNeverCrash) {
  sim::Random rng(7);
  IpEndpoints ep;
  ep.src_ip = Ipv4Address(10, 0, 0, 1);
  ep.dst_ip = Ipv4Address(10, 0, 0, 2);
  ep.src_mac = MacAddress::from_host_id(1);
  ep.dst_mac = MacAddress::from_host_id(2);
  const std::vector<std::uint8_t> payload(64, 0xaa);
  const auto frame = build_udp_frame(ep, 1000, 2000, payload);

  for (int trial = 0; trial < 2000; ++trial) {
    auto mutated = frame;
    const int flips = 1 + static_cast<int>(rng.uniform(4));
    for (int i = 0; i < flips; ++i) {
      mutated[rng.uniform(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform(8));
    }
    auto view = FrameView::parse(mutated);
    if (view && view->udp) {
      EXPECT_LE(view->l4_payload.size(), mutated.size());
    }
  }
}

TEST(FrameFuzz, VpgLengthFieldCannotOverrun) {
  // Craft a VPG frame whose payload_len claims more than is present.
  IpEndpoints ep;
  ep.src_ip = Ipv4Address(10, 0, 0, 1);
  ep.dst_ip = Ipv4Address(10, 0, 0, 2);
  ep.src_mac = MacAddress::from_host_id(1);
  ep.dst_mac = MacAddress::from_host_id(2);
  std::vector<std::uint8_t> payload;
  ByteWriter w(payload);
  VpgHeader vh;
  vh.vpg_id = 1;
  vh.seq = 1;
  vh.payload_len = 60000;  // lies
  vh.serialize(w);
  w.zeros(8);
  const auto frame = build_ipv4_frame(ep, IpProtocol::kVpg, payload);
  auto view = FrameView::parse(frame);
  ASSERT_TRUE(view.has_value());
  // Either no VPG layer, or a payload bounded by the actual bytes.
  if (view->vpg) {
    EXPECT_LE(view->l4_payload.size(), frame.size());
  } else {
    EXPECT_TRUE(view->l4_payload.empty());
  }
}

}  // namespace
}  // namespace barb::net
