#include <gtest/gtest.h>

#include <vector>

#include "net/ethernet.h"
#include "net/icmp.h"
#include "net/ipv4.h"
#include "net/tcp_header.h"
#include "net/udp.h"
#include "net/vpg_header.h"

namespace barb::net {
namespace {

TEST(EthernetHeader, SerializeParseRoundTrip) {
  EthernetHeader h;
  h.dst = MacAddress::from_host_id(2);
  h.src = MacAddress::from_host_id(1);
  h.ethertype = static_cast<std::uint16_t>(EtherType::kIpv4);

  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  h.serialize(w);
  EXPECT_EQ(buf.size(), EthernetHeader::kSize);

  ByteReader r(buf);
  auto parsed = EthernetHeader::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dst, h.dst);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->ethertype, h.ethertype);
}

TEST(EthernetHeader, TruncatedFails) {
  const std::vector<std::uint8_t> buf(13, 0);
  ByteReader r(buf);
  EXPECT_FALSE(EthernetHeader::parse(r).has_value());
}

TEST(Ipv4Header, SerializeParseRoundTrip) {
  Ipv4Header h;
  h.tos = 0x10;
  h.total_length = 120;
  h.identification = 0xbeef;
  h.ttl = 17;
  h.protocol = static_cast<std::uint8_t>(IpProtocol::kTcp);
  h.src = Ipv4Address(10, 0, 0, 1);
  h.dst = Ipv4Address(10, 0, 0, 2);

  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  h.serialize(w);
  EXPECT_EQ(buf.size(), Ipv4Header::kSize);

  ByteReader r(buf);
  auto parsed = Ipv4Header::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tos, h.tos);
  EXPECT_EQ(parsed->total_length, h.total_length);
  EXPECT_EQ(parsed->identification, h.identification);
  EXPECT_TRUE(parsed->dont_fragment);
  EXPECT_EQ(parsed->ttl, h.ttl);
  EXPECT_EQ(parsed->protocol, h.protocol);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->dst, h.dst);
}

TEST(Ipv4Header, CorruptedChecksumRejected) {
  Ipv4Header h;
  h.total_length = 40;
  h.protocol = 6;
  h.src = Ipv4Address(1, 2, 3, 4);
  h.dst = Ipv4Address(5, 6, 7, 8);
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  h.serialize(w);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    auto bad = buf;
    bad[i] ^= 0x40;
    ByteReader r(bad);
    // Either the checksum fails or (byte 0) the version/IHL check fails.
    EXPECT_FALSE(Ipv4Header::parse(r).has_value()) << "byte " << i;
  }
}

TEST(UdpHeader, SerializeParseRoundTrip) {
  UdpHeader h;
  h.src_port = 5001;
  h.dst_port = 80;
  h.length = 100;
  h.checksum = 0x1234;
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  h.serialize(w);
  EXPECT_EQ(buf.size(), UdpHeader::kSize);
  ByteReader r(buf);
  auto parsed = UdpHeader::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_port, 5001);
  EXPECT_EQ(parsed->dst_port, 80);
  EXPECT_EQ(parsed->length, 100);
  EXPECT_EQ(parsed->checksum, 0x1234);
}

TEST(TcpHeader, RoundTripWithoutOptions) {
  TcpHeader h;
  h.src_port = 40000;
  h.dst_port = 80;
  h.seq = 0xdeadbeef;
  h.ack = 0x01020304;
  h.flags = TcpFlags::kAck | TcpFlags::kPsh;
  h.window = 65535;
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  h.serialize(w);
  EXPECT_EQ(buf.size(), TcpHeader::kMinSize);
  ByteReader r(buf);
  auto parsed = TcpHeader::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seq, h.seq);
  EXPECT_EQ(parsed->ack, h.ack);
  EXPECT_TRUE(parsed->ack_flag());
  EXPECT_TRUE(parsed->psh());
  EXPECT_FALSE(parsed->syn());
  EXPECT_FALSE(parsed->mss.has_value());
}

TEST(TcpHeader, RoundTripWithMssOption) {
  TcpHeader h;
  h.src_port = 1;
  h.dst_port = 2;
  h.flags = TcpFlags::kSyn;
  h.mss = 1460;
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  h.serialize(w);
  EXPECT_EQ(buf.size(), TcpHeader::kMinSize + 4);
  ByteReader r(buf);
  auto parsed = TcpHeader::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->syn());
  ASSERT_TRUE(parsed->mss.has_value());
  EXPECT_EQ(*parsed->mss, 1460);
}

TEST(TcpHeader, ParseSkipsUnknownOptions) {
  // Build a header with data offset 8 (32 bytes): NOPs, unknown(kind 8,
  // len 4), then MSS.
  std::vector<std::uint8_t> buf = {
      0x00, 0x01, 0x00, 0x02,              // ports
      0x00, 0x00, 0x00, 0x01,              // seq
      0x00, 0x00, 0x00, 0x00,              // ack
      0x80, 0x02,                          // offset 8, SYN
      0xff, 0xff, 0x00, 0x00, 0x00, 0x00,  // window, checksum, urgent
      0x01, 0x01, 0x01, 0x01,              // NOP x4
      0x08, 0x04, 0xab, 0xcd,              // unknown option
      0x02, 0x04, 0x05, 0xb4,              // MSS 1460
  };
  ByteReader r(buf);
  auto parsed = TcpHeader::parse(r);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->mss.has_value());
  EXPECT_EQ(*parsed->mss, 1460);
}

TEST(TcpHeader, MalformedOptionLengthRejected) {
  std::vector<std::uint8_t> buf = {
      0x00, 0x01, 0x00, 0x02, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00,
      0x60, 0x02,                          // offset 6, SYN
      0xff, 0xff, 0x00, 0x00, 0x00, 0x00,
      0x02, 0x09, 0x05, 0xb4,              // MSS option claiming length 9
  };
  ByteReader r(buf);
  EXPECT_FALSE(TcpHeader::parse(r).has_value());
}

TEST(IcmpHeader, RoundTrip) {
  IcmpHeader h;
  h.type = static_cast<std::uint8_t>(IcmpType::kDestinationUnreachable);
  h.code = kIcmpCodePortUnreachable;
  h.rest = 0;
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  h.serialize(w);
  ByteReader r(buf);
  auto parsed = IcmpHeader::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, h.type);
  EXPECT_EQ(parsed->code, h.code);
}

TEST(VpgHeader, RoundTrip) {
  VpgHeader h;
  h.vpg_id = 42;
  h.seq = 0x123456789abcdef0ULL;
  h.orig_protocol = 6;
  h.payload_len = 1000;
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  h.serialize(w);
  EXPECT_EQ(buf.size(), VpgHeader::kSize);
  ByteReader r(buf);
  auto parsed = VpgHeader::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->vpg_id, h.vpg_id);
  EXPECT_EQ(parsed->seq, h.seq);
  EXPECT_EQ(parsed->orig_protocol, h.orig_protocol);
  EXPECT_EQ(parsed->payload_len, h.payload_len);
}

}  // namespace
}  // namespace barb::net
