#include "net/frame_view.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/packet_builder.h"

namespace barb::net {
namespace {

IpEndpoints endpoints() {
  IpEndpoints ep;
  ep.src_ip = Ipv4Address(10, 0, 0, 1);
  ep.dst_ip = Ipv4Address(10, 0, 0, 2);
  ep.src_mac = MacAddress::from_host_id(1);
  ep.dst_mac = MacAddress::from_host_id(2);
  return ep;
}

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(FrameView, ParsesUdpFrame) {
  const auto payload = bytes_of("hello world");
  const auto frame = build_udp_frame(endpoints(), 5000, 5001, payload);
  // Short payload: the frame must be padded to the Ethernet minimum.
  EXPECT_EQ(frame.size(), kEthernetMinFrameNoFcs);

  auto v = FrameView::parse(frame);
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->ip.has_value());
  EXPECT_EQ(v->ip->src, Ipv4Address(10, 0, 0, 1));
  EXPECT_EQ(v->ip->protocol, static_cast<std::uint8_t>(IpProtocol::kUdp));
  ASSERT_TRUE(v->udp.has_value());
  EXPECT_EQ(v->udp->src_port, 5000);
  EXPECT_EQ(v->udp->dst_port, 5001);
  // Padding must not leak into the payload view.
  EXPECT_EQ(std::string(v->l4_payload.begin(), v->l4_payload.end()), "hello world");
}

TEST(FrameView, ParsesTcpFrame) {
  TcpHeader tcp;
  tcp.src_port = 40000;
  tcp.dst_port = 80;
  tcp.seq = 100;
  tcp.flags = TcpFlags::kSyn;
  tcp.window = 65535;
  tcp.mss = 1460;
  const auto frame = build_tcp_frame(endpoints(), tcp, {});

  auto v = FrameView::parse(frame);
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->tcp.has_value());
  EXPECT_TRUE(v->tcp->syn());
  EXPECT_EQ(v->tcp->seq, 100u);
  ASSERT_TRUE(v->tcp->mss.has_value());
  EXPECT_EQ(*v->tcp->mss, 1460);
  EXPECT_TRUE(v->l4_payload.empty());
}

TEST(FrameView, ParsesIcmpFrame) {
  const auto inner = bytes_of("original datagram prefix");
  const auto frame = build_icmp_frame(
      endpoints(), static_cast<std::uint8_t>(IcmpType::kDestinationUnreachable),
      kIcmpCodePortUnreachable, 0, inner);
  auto v = FrameView::parse(frame);
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->icmp.has_value());
  EXPECT_EQ(v->icmp->type, 3);
  EXPECT_EQ(v->icmp->code, 3);
}

TEST(FrameView, FiveTupleMatchesBuilder) {
  const auto frame = build_udp_frame(endpoints(), 1234, 80, bytes_of("x"));
  auto v = FrameView::parse(frame);
  ASSERT_TRUE(v.has_value());
  auto t = v->five_tuple();
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->src, Ipv4Address(10, 0, 0, 1));
  EXPECT_EQ(t->dst, Ipv4Address(10, 0, 0, 2));
  EXPECT_EQ(t->src_port, 1234);
  EXPECT_EQ(t->dst_port, 80);
  EXPECT_EQ(t->protocol, 17);
  // reversed() swaps both addresses and ports.
  const auto rev = t->reversed();
  EXPECT_EQ(rev.src, t->dst);
  EXPECT_EQ(rev.src_port, t->dst_port);
  EXPECT_EQ(rev.dst_port, t->src_port);
}

TEST(FrameView, NonIpFrameParsesEthernetOnly) {
  std::vector<std::uint8_t> frame(60, 0);
  frame[12] = 0x08;
  frame[13] = 0x06;  // ARP ethertype
  auto v = FrameView::parse(frame);
  ASSERT_TRUE(v.has_value());
  EXPECT_FALSE(v->is_ipv4());
  EXPECT_FALSE(v->five_tuple().has_value());
}

TEST(FrameView, CorruptIpHeaderYieldsNoIpLayer) {
  auto frame = build_udp_frame(endpoints(), 1, 2, bytes_of("abc"));
  frame[EthernetHeader::kSize + 8] ^= 0xff;  // corrupt TTL -> checksum fails
  auto v = FrameView::parse(frame);
  ASSERT_TRUE(v.has_value());
  EXPECT_FALSE(v->ip.has_value());
}

TEST(FrameView, TruncatedTransportYieldsNoL4) {
  // IP total_length claims more TCP bytes than the frame carries.
  TcpHeader tcp;
  tcp.src_port = 1;
  tcp.dst_port = 2;
  auto frame = build_tcp_frame(endpoints(), tcp, {});
  frame.resize(EthernetHeader::kSize + Ipv4Header::kSize + 10);
  auto v = FrameView::parse(frame);
  ASSERT_TRUE(v.has_value());
  EXPECT_FALSE(v->ip.has_value());  // total_length no longer fits the frame
}

TEST(FrameView, TruncatedEthernetFails) {
  const std::vector<std::uint8_t> tiny(10, 0);
  EXPECT_FALSE(FrameView::parse(tiny).has_value());
}

TEST(FrameView, MaxSizeFrameParses) {
  std::vector<std::uint8_t> payload(kEthernetMtu - Ipv4Header::kSize - UdpHeader::kSize,
                                    0x5a);
  const auto frame = build_udp_frame(endpoints(), 9, 10, payload);
  EXPECT_EQ(frame.size(), kEthernetMaxFrameNoFcs);
  auto v = FrameView::parse(frame);
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->udp.has_value());
  EXPECT_EQ(v->l4_payload.size(), payload.size());
}

}  // namespace
}  // namespace barb::net
