// Interned identifiers: handle stability, dedup, slab recycling, footprint
// accounting, and the shared AddressDirectory fallback semantics.
#include "net/intern.h"

#include <gtest/gtest.h>

#include <random>
#include <unordered_map>
#include <vector>

#include "stack/address_directory.h"
#include "stack/arp_table.h"

namespace barb::net {
namespace {

TEST(Interner, DeduplicatesAndKeepsHandlesStable) {
  Ipv4Interner interner;
  const auto a = interner.intern(Ipv4Address(10, 0, 0, 1));
  const auto b = interner.intern(Ipv4Address(10, 0, 0, 2));
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.intern(Ipv4Address(10, 0, 0, 1)), a);
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(interner.get(a), Ipv4Address(10, 0, 0, 1));
  EXPECT_EQ(interner.get(b), Ipv4Address(10, 0, 0, 2));
}

TEST(Interner, FindDoesNotInsert) {
  MacInterner interner;
  EXPECT_EQ(interner.find(MacAddress::from_host_id(1)), kInvalidIntern);
  const auto h = interner.intern(MacAddress::from_host_id(1));
  EXPECT_EQ(interner.find(MacAddress::from_host_id(1)), h);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(Interner, MemoryGrowsWithDistinctValuesOnly) {
  Ipv4Interner interner;
  for (int i = 0; i < 1000; ++i) {
    interner.intern(Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i % 8)));
  }
  EXPECT_EQ(interner.size(), 8u);
  EXPECT_LT(interner.memory_bytes(), 4096u);
}

TEST(SlabInterner, RecyclesReleasedSlots) {
  SlabInterner<int> slab;
  const auto a = slab.intern(1);
  const auto b = slab.intern(2);
  EXPECT_EQ(slab.live(), 2u);
  slab.release(a);
  EXPECT_EQ(slab.live(), 1u);
  const auto c = slab.intern(3);
  EXPECT_EQ(c, a);  // the freed slot is reused
  EXPECT_EQ(slab.get(c), 3);
  EXPECT_EQ(slab.get(b), 2);
  EXPECT_EQ(slab.slots(), 2u);  // never grew past the live high-water mark
}

TEST(SlabInterner, ChurnKeepsFootprintBounded) {
  FiveTupleSlab slab;
  // Flood-shaped churn: intern then release, a million times over.
  std::mt19937_64 rng(7);
  std::vector<InternHandle> live;
  for (int i = 0; i < 100000; ++i) {
    FiveTuple t;
    t.src = Ipv4Address(10, 1, static_cast<std::uint8_t>(rng() & 0xff),
                        static_cast<std::uint8_t>(rng() & 0xff));
    t.dst = Ipv4Address(10, 0, 0, 1);
    t.src_port = static_cast<std::uint16_t>(rng());
    t.dst_port = 7777;
    t.protocol = 17;
    live.push_back(slab.intern(t));
    if (live.size() > 64) {
      slab.release(live.front());
      live.erase(live.begin());
    }
  }
  EXPECT_LE(slab.live(), 65u);
  // Slot population bounded by the live window, not the 100k interned.
  EXPECT_LE(slab.slots(), 128u);
}

// Golden-model comparison: SlabInterner against a plain map of live handles.
TEST(SlabInterner, MatchesGoldenModelUnderRandomOps) {
  SlabInterner<std::uint64_t> slab;
  std::unordered_map<InternHandle, std::uint64_t> model;
  std::mt19937_64 rng(99);
  std::vector<InternHandle> handles;
  for (int op = 0; op < 20000; ++op) {
    if (model.empty() || (rng() & 3) != 0) {
      const std::uint64_t value = rng();
      const auto h = slab.intern(value);
      ASSERT_FALSE(model.contains(h));  // released or fresh, never live
      model[h] = value;
      handles.push_back(h);
    } else {
      const std::size_t pick = rng() % handles.size();
      const auto h = handles[pick];
      handles.erase(handles.begin() + static_cast<std::ptrdiff_t>(pick));
      ASSERT_EQ(slab.get(h), model.at(h));
      slab.release(h);
      model.erase(h);
    }
    ASSERT_EQ(slab.live(), model.size());
  }
  for (const auto& [h, value] : model) EXPECT_EQ(slab.get(h), value);
}

TEST(AddressDirectory, LookupAfterFreeze) {
  stack::AddressDirectory dir;
  for (int i = 1; i <= 100; ++i) {
    dir.add(Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i)),
            MacAddress::from_host_id(static_cast<std::uint32_t>(i)));
  }
  dir.freeze();
  EXPECT_EQ(dir.size(), 100u);
  for (int i = 1; i <= 100; ++i) {
    const auto mac = dir.lookup(Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i)));
    ASSERT_TRUE(mac.has_value());
    EXPECT_EQ(*mac, MacAddress::from_host_id(static_cast<std::uint32_t>(i)));
  }
  EXPECT_FALSE(dir.lookup(Ipv4Address(10, 0, 0, 200)).has_value());
}

TEST(AddressDirectory, ArpTableFallsBackToDirectoryAndOverrides) {
  stack::AddressDirectory dir;
  dir.add(Ipv4Address(10, 0, 0, 1), MacAddress::from_host_id(1));
  dir.add(Ipv4Address(10, 0, 0, 2), MacAddress::from_host_id(2));
  dir.freeze();

  stack::ArpTable arp;
  arp.set_directory(&dir);
  auto mac = arp.lookup(Ipv4Address(10, 0, 0, 2));
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(*mac, MacAddress::from_host_id(2));

  // Private entries shadow the shared directory.
  arp.add(Ipv4Address(10, 0, 0, 2), MacAddress::from_host_id(42));
  mac = arp.lookup(Ipv4Address(10, 0, 0, 2));
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(*mac, MacAddress::from_host_id(42));

  EXPECT_FALSE(arp.lookup(Ipv4Address(10, 9, 9, 9)).has_value());
}

TEST(AddressDirectory, SharedDirectoryBeatsFullMeshFootprint) {
  constexpr int kHosts = 256;
  stack::AddressDirectory dir;
  for (int i = 0; i < kHosts; ++i) {
    dir.add(Ipv4Address(10, 0, 1, static_cast<std::uint8_t>(i)),
            MacAddress::from_host_id(static_cast<std::uint32_t>(i) + 1));
  }
  dir.freeze();

  // One host's share of the directory vs. one full-mesh private ArpTable.
  stack::ArpTable fullmesh;
  for (int i = 0; i < kHosts - 1; ++i) {
    fullmesh.add(Ipv4Address(10, 0, 1, static_cast<std::uint8_t>(i)),
                 MacAddress::from_host_id(static_cast<std::uint32_t>(i) + 1));
  }
  EXPECT_LT(dir.memory_bytes() / kHosts, fullmesh.memory_bytes() / 4);
}

}  // namespace
}  // namespace barb::net
