// BufferPool threading model: the default pool is thread-local (one pool per
// sweep-runner worker), so concurrent churn on BufferPool::instance() from
// many threads must never share state — no data races (this test is the
// TSan target, see scripts/ci_tsan.sh) and per-thread stats that balance
// exactly as if each thread ran alone.
#include "net/frame_buffer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "sim/random.h"

namespace barb::net {
namespace {

std::vector<std::uint8_t> filled(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(seed + i);
  return v;
}

TEST(BufferPoolThreading, DefaultPoolIsPerThread) {
  BufferPool* main_pool = &BufferPool::instance();
  std::vector<BufferPool*> seen(4, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&seen, t] { seen[t] = &BufferPool::instance(); });
  }
  for (auto& th : threads) th.join();

  std::set<BufferPool*> distinct(seen.begin(), seen.end());
  distinct.insert(main_pool);
  EXPECT_EQ(distinct.size(), 5u);  // every thread got its own pool
}

TEST(BufferPoolThreading, InstanceIsStableWithinAThread) {
  EXPECT_EQ(&BufferPool::instance(), &BufferPool::instance());
}

// N threads churning acquire/clone/release/adopt on their own thread-local
// pool. With plain (non-atomic) refcounts this is only correct because the
// pools are disjoint — TSan proves it.
TEST(BufferPoolThreading, ConcurrentChurnOnThreadLocalPools) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 400;
  std::vector<BufferPoolStats> stats(kThreads);
  std::vector<std::size_t> leaked(kThreads, 999);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      BufferPool& pool = BufferPool::instance();
      sim::Random rng(1000 + static_cast<std::uint64_t>(t));
      std::vector<FrameBufferRef> held;
      for (int round = 0; round < kRounds; ++round) {
        switch (rng.uniform(4)) {
          case 0:  // pooled create, sometimes cloned
            held.push_back(pool.create(
                filled(60 + rng.uniform(1400), static_cast<std::uint8_t>(t))));
            if (rng.bernoulli(0.5)) held.push_back(held.back());
            break;
          case 1:  // adopt (heap-class, freed on release)
            held.push_back(pool.adopt(
                filled(1 + rng.uniform(2048), static_cast<std::uint8_t>(t))));
            break;
          case 2:  // builder path
            {
              auto builder = pool.build(100);
              builder.buffer().assign(100, static_cast<std::uint8_t>(round));
              held.push_back(builder.seal());
            }
            break;
          default:  // release some
            if (held.size() > 4) held.resize(held.size() / 2);
            break;
        }
      }
      held.clear();
      stats[t] = pool.stats();
      leaked[t] = pool.live_buffers();
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    SCOPED_TRACE("thread " + std::to_string(t));
    EXPECT_EQ(leaked[t], 0u);  // every ref released back
    // Acquisition accounting balances per thread: nothing leaked across
    // pools, nothing double-counted.
    EXPECT_EQ(stats[t].acquisitions, stats[t].pool_hits + stats[t].pool_misses +
                                         stats[t].heap_fallbacks +
                                         stats[t].adopted);
    // Every allocation was eventually recycled or freed within its own pool.
    EXPECT_EQ(stats[t].acquisitions, stats[t].recycled + stats[t].heap_frees);
    EXPECT_GT(stats[t].acquisitions, 0u);
  }
}

// The same churn against a single explicit pool, one thread at a time, must
// also balance — the invariant above is about the pool, not the threading.
TEST(BufferPoolThreading, ExplicitPoolChurnBalances) {
  BufferPool pool;
  sim::Random rng(7);
  std::vector<FrameBufferRef> held;
  for (int round = 0; round < 400; ++round) {
    if (rng.bernoulli(0.6)) {
      held.push_back(pool.create(filled(60 + rng.uniform(1400), 0x5a)));
    } else if (held.size() > 2) {
      held.resize(held.size() / 2);
    }
  }
  held.clear();
  EXPECT_EQ(pool.live_buffers(), 0u);
  EXPECT_EQ(pool.stats().acquisitions,
            pool.stats().recycled + pool.stats().heap_frees);
}

}  // namespace
}  // namespace barb::net
