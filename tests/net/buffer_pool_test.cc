// Frame buffer pool: refcount lifecycle, size-class selection, exhaustion
// fallback, recycling, and the parse-once ParsedHeaders cache (which must
// agree exactly with a fresh FrameView::parse for every frame shape).
#include "net/frame_buffer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/frame_view.h"
#include "net/packet.h"
#include "net/packet_builder.h"

namespace barb::net {
namespace {

std::vector<std::uint8_t> filled(std::size_t n, std::uint8_t seed = 0xab) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(seed + i);
  return v;
}

TEST(BufferPool, SizeClassSelection) {
  EXPECT_EQ(BufferPool::class_for(0), 0);
  EXPECT_EQ(BufferPool::class_for(60), 0);
  EXPECT_EQ(BufferPool::class_for(64), 0);
  EXPECT_EQ(BufferPool::class_for(65), 1);
  EXPECT_EQ(BufferPool::class_for(128), 1);
  EXPECT_EQ(BufferPool::class_for(129), 2);
  EXPECT_EQ(BufferPool::class_for(320), 2);
  EXPECT_EQ(BufferPool::class_for(321), 3);
  EXPECT_EQ(BufferPool::class_for(640), 3);
  EXPECT_EQ(BufferPool::class_for(641), 4);
  EXPECT_EQ(BufferPool::class_for(1536), 4);
  EXPECT_EQ(BufferPool::class_for(1537), -1);  // oversize: heap fallback
}

TEST(BufferPool, RefcountLifecycleAndRecycling) {
  BufferPool pool;
  const auto bytes = filled(60);

  FrameBufferRef a = pool.create(bytes);
  ASSERT_TRUE(a);
  EXPECT_EQ(a->refcount(), 1u);
  EXPECT_EQ(pool.live_buffers(), 1u);
  EXPECT_EQ(pool.stats().pool_misses, 1u);

  FrameBufferRef b = a;  // clone: refcount bump, same storage
  EXPECT_EQ(a->refcount(), 2u);
  EXPECT_TRUE(a.same_buffer(b));
  EXPECT_EQ(a->bytes().data(), b->bytes().data());
  EXPECT_EQ(pool.live_buffers(), 1u);

  FrameBufferRef c = std::move(b);  // move: no bump, source emptied
  EXPECT_FALSE(b);  // NOLINT(bugprone-use-after-move): moved-from is empty
  EXPECT_EQ(a->refcount(), 2u);
  EXPECT_TRUE(a.same_buffer(c));

  c.reset();
  EXPECT_EQ(a->refcount(), 1u);
  EXPECT_EQ(pool.live_buffers(), 1u);
  EXPECT_EQ(pool.free_buffers(), 0u);

  const FrameBuffer* raw = a.get();
  a.reset();  // last reference: recycled onto the class-0 freelist
  EXPECT_EQ(pool.live_buffers(), 0u);
  EXPECT_EQ(pool.free_buffers(0), 1u);
  EXPECT_EQ(pool.stats().recycled, 1u);

  // Reacquisition of the same class reuses the parked buffer (a pool hit),
  // and its storage is clean.
  FrameBufferRef d = pool.create(filled(50, 0x11));
  EXPECT_EQ(d.get(), raw);
  EXPECT_EQ(pool.stats().pool_hits, 1u);
  EXPECT_EQ(pool.stats().pool_misses, 1u);  // unchanged
  EXPECT_EQ(d->size(), 50u);
  EXPECT_EQ(pool.free_buffers(), 0u);
}

TEST(BufferPool, ExhaustedClassFallsBackToHeap) {
  BufferPoolConfig cfg;
  cfg.max_live_per_class = 1;
  BufferPool pool(cfg);

  FrameBufferRef first = pool.create(filled(60));
  FrameBufferRef second = pool.create(filled(60));  // class 0 exhausted
  ASSERT_TRUE(second);
  EXPECT_EQ(second->size(), 60u);
  EXPECT_EQ(pool.stats().pool_misses, 1u);
  EXPECT_EQ(pool.stats().heap_fallbacks, 1u);
  EXPECT_EQ(pool.live_buffers(), 2u);

  // The fallback buffer is freed outright on release, never recycled.
  second.reset();
  EXPECT_EQ(pool.stats().heap_frees, 1u);
  EXPECT_EQ(pool.free_buffers(), 0u);
  EXPECT_EQ(pool.live_buffers(), 1u);

  // Releasing the pooled buffer frees the slot: next acquisition is pooled
  // again (via the freelist).
  first.reset();
  EXPECT_EQ(pool.free_buffers(0), 1u);
  FrameBufferRef third = pool.create(filled(60));
  EXPECT_EQ(pool.stats().pool_hits, 1u);
  EXPECT_EQ(pool.stats().heap_fallbacks, 1u);  // unchanged
}

TEST(BufferPool, OversizeFrameUsesHeapClass) {
  BufferPool pool;
  FrameBufferRef big = pool.create(filled(2000));
  EXPECT_EQ(big->size(), 2000u);
  EXPECT_EQ(pool.stats().heap_fallbacks, 1u);
  big.reset();
  EXPECT_EQ(pool.stats().heap_frees, 1u);
  EXPECT_EQ(pool.free_buffers(), 0u);
}

TEST(BufferPool, AdoptTakesOverStorageZeroCopy) {
  BufferPool pool;
  auto bytes = filled(100);
  const std::uint8_t* data = bytes.data();
  FrameBufferRef ref = pool.adopt(std::move(bytes));
  EXPECT_EQ(ref->bytes().data(), data);  // no copy happened
  EXPECT_EQ(pool.stats().adopted, 1u);
  EXPECT_EQ(pool.stats().allocations(), 1u);
  ref.reset();
  EXPECT_EQ(pool.stats().heap_frees, 1u);  // heap-class: freed, not pooled
}

TEST(BufferPool, FreelistRespectsCap) {
  BufferPoolConfig cfg;
  cfg.max_free_per_class = 2;
  BufferPool pool(cfg);
  std::vector<FrameBufferRef> refs;
  for (int i = 0; i < 4; ++i) refs.push_back(pool.create(filled(60)));
  refs.clear();
  EXPECT_EQ(pool.free_buffers(0), 2u);  // third and fourth were freed
  EXPECT_EQ(pool.stats().recycled, 2u);
  EXPECT_EQ(pool.stats().heap_frees, 2u);
}

TEST(BufferPool, BuilderSealsInPlaceAndAbandonReturnsBuffer) {
  BufferPool pool;
  {
    auto builder = pool.build(60);
    builder.buffer().assign(60, 0x7e);
    FrameBufferRef ref = builder.seal();
    EXPECT_EQ(ref->size(), 60u);
    EXPECT_EQ(ref->bytes()[0], 0x7e);
    EXPECT_EQ(pool.live_buffers(), 1u);
  }
  EXPECT_EQ(pool.live_buffers(), 0u);
  EXPECT_EQ(pool.free_buffers(0), 1u);

  {
    auto builder = pool.build(60);
    builder.buffer().assign(10, 0x01);
    // Abandoned without seal(): buffer goes straight back to the pool.
  }
  EXPECT_EQ(pool.live_buffers(), 0u);
  EXPECT_EQ(pool.free_buffers(0), 1u);
}

TEST(BufferPool, RecycledBufferDropsStaleParseCache) {
  BufferPool pool;
  IpEndpoints ep;
  ep.src_ip = Ipv4Address(10, 0, 0, 1);
  ep.dst_ip = Ipv4Address(10, 0, 0, 2);
  const std::uint8_t payload[] = {1, 2, 3};
  FrameBufferRef ref =
      pool.create(build_udp_frame(ep, 1111, 2222, payload, /*ip_id=*/7));
  ASSERT_TRUE(ref->parsed().view.has_value());
  ASSERT_TRUE(ref->parsed().tuple.has_value());
  EXPECT_EQ(ref->parsed().tuple->src_port, 1111);
  ref.reset();

  // Same buffer comes back for a different frame: the old parse must be gone.
  FrameBufferRef again = pool.create(filled(30, 0x00));
  EXPECT_EQ(pool.stats().pool_hits, 1u);
  const std::uint64_t parses_before = pool.stats().parses;
  const ParsedHeaders& p = again->parsed();
  EXPECT_EQ(pool.stats().parses, parses_before + 1);  // re-parsed, not cached
  EXPECT_FALSE(p.tuple.has_value());
}

TEST(BufferPool, ParseIsPerformedOnceAndSharedAcrossHandles) {
  BufferPool pool;
  IpEndpoints ep;
  ep.src_ip = Ipv4Address(10, 0, 0, 1);
  ep.dst_ip = Ipv4Address(10, 0, 0, 2);
  const std::uint8_t payload[] = {9, 9};
  FrameBufferRef a =
      pool.create(build_udp_frame(ep, 1000, 2000, payload, /*ip_id=*/1));
  FrameBufferRef b = a;

  EXPECT_EQ(pool.stats().parses, 0u);
  (void)a->parsed();
  (void)b->parsed();  // second handle: served from the shared cache
  (void)a->parsed();
  EXPECT_EQ(pool.stats().parses, 1u);
  EXPECT_EQ(pool.stats().parse_hits, 2u);
  EXPECT_EQ(&a->parsed(), &b->parsed());
}

// --- ParsedHeaders must agree exactly with a fresh FrameView::parse ------

void expect_equivalent(const std::vector<std::uint8_t>& frame) {
  SCOPED_TRACE("frame size " + std::to_string(frame.size()));
  const auto fresh = FrameView::parse(frame);
  Packet pkt{frame, sim::TimePoint::origin(), 0};  // adopts a copy
  const FrameView* cached = pkt.view();

  ASSERT_EQ(fresh.has_value(), cached != nullptr);
  if (!fresh) {
    EXPECT_FALSE(pkt.five_tuple().has_value());
    return;
  }

  EXPECT_EQ(fresh->eth.src, cached->eth.src);
  EXPECT_EQ(fresh->eth.dst, cached->eth.dst);
  EXPECT_EQ(fresh->eth.ethertype, cached->eth.ethertype);
  ASSERT_EQ(fresh->ip.has_value(), cached->ip.has_value());
  if (fresh->ip) {
    EXPECT_EQ(fresh->ip->src, cached->ip->src);
    EXPECT_EQ(fresh->ip->dst, cached->ip->dst);
    EXPECT_EQ(fresh->ip->protocol, cached->ip->protocol);
    EXPECT_EQ(fresh->ip->total_length, cached->ip->total_length);
  }
  EXPECT_EQ(fresh->tcp.has_value(), cached->tcp.has_value());
  EXPECT_EQ(fresh->udp.has_value(), cached->udp.has_value());
  EXPECT_EQ(fresh->icmp.has_value(), cached->icmp.has_value());
  EXPECT_EQ(fresh->vpg.has_value(), cached->vpg.has_value());
  if (fresh->udp) {
    EXPECT_EQ(fresh->udp->src_port, cached->udp->src_port);
    EXPECT_EQ(fresh->udp->dst_port, cached->udp->dst_port);
  }
  if (fresh->tcp) {
    EXPECT_EQ(fresh->tcp->src_port, cached->tcp->src_port);
    EXPECT_EQ(fresh->tcp->dst_port, cached->tcp->dst_port);
    EXPECT_EQ(fresh->tcp->seq, cached->tcp->seq);
    EXPECT_EQ(fresh->tcp->flags, cached->tcp->flags);
  }
  // Payload spans: same extent, and the cached span points into the
  // packet's own buffer.
  EXPECT_EQ(fresh->l3_payload.size(), cached->l3_payload.size());
  EXPECT_EQ(fresh->l4_payload.size(), cached->l4_payload.size());
  if (!cached->l4_payload.empty()) {
    EXPECT_GE(cached->l4_payload.data(), pkt.bytes().data());
    EXPECT_LE(cached->l4_payload.data() + cached->l4_payload.size(),
              pkt.bytes().data() + pkt.size());
  }

  EXPECT_EQ(fresh->five_tuple(), pkt.five_tuple());
}

TEST(ParsedHeaders, MatchesFreshParseOnRealFrames) {
  IpEndpoints ep;
  ep.src_ip = Ipv4Address(10, 0, 0, 1);
  ep.dst_ip = Ipv4Address(10, 0, 0, 2);
  ep.src_mac = MacAddress::from_host_id(1);
  ep.dst_mac = MacAddress::from_host_id(2);
  const std::uint8_t payload[] = {0xde, 0xad, 0xbe, 0xef};

  expect_equivalent(build_udp_frame(ep, 1234, 80, payload, 1));
  expect_equivalent(build_udp_frame(ep, 1234, 80, {}, 2));

  TcpHeader tcp;
  tcp.src_port = 4000;
  tcp.dst_port = 80;
  tcp.seq = 77;
  tcp.flags = TcpFlags::kSyn;
  expect_equivalent(build_tcp_frame(ep, tcp, {}, 3));
  expect_equivalent(build_tcp_frame(ep, tcp, payload, 4));

  expect_equivalent(build_icmp_frame(
      ep, static_cast<std::uint8_t>(IcmpType::kEchoRequest), 0, 0, payload, 5));
}

TEST(ParsedHeaders, MatchesFreshParseOnTruncatedAndGarbageFrames) {
  IpEndpoints ep;
  ep.src_ip = Ipv4Address(10, 0, 0, 1);
  ep.dst_ip = Ipv4Address(10, 0, 0, 2);
  const std::uint8_t payload[] = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto full = build_udp_frame(ep, 5555, 53, payload, 9);

  // Every truncation point: Ethernet-truncated (unparseable), IP-truncated,
  // and transport-truncated prefixes must all cache what a fresh parse sees.
  for (std::size_t len = 0; len <= full.size(); len += 4) {
    expect_equivalent(std::vector<std::uint8_t>(full.begin(),
                                                full.begin() + static_cast<long>(len)));
  }

  expect_equivalent(std::vector<std::uint8_t>{});
  expect_equivalent(filled(60, 0xff));  // garbage: parses as non-IP ethernet
  // Valid Ethernet + IPv4 ethertype but garbled IP header.
  auto garbled = full;
  garbled[EthernetHeader::kSize] = 0x00;  // version/IHL nibble destroyed
  expect_equivalent(garbled);
}

TEST(Packet, EmptyPacketHasNoViewOrTuple) {
  Packet pkt;
  EXPECT_EQ(pkt.size(), 0u);
  EXPECT_EQ(pkt.view(), nullptr);
  EXPECT_FALSE(pkt.five_tuple().has_value());
  EXPECT_TRUE(pkt.bytes().empty());
}

}  // namespace
}  // namespace barb::net
