#include "net/checksum.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/random.h"

namespace barb::net {
namespace {

// RFC 1071 worked example: the checksum of this sequence is well known.
TEST(Checksum, Rfc1071Example) {
  const std::vector<std::uint8_t> data = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  // Sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> fold -> 0xddf2 -> ~ = 0x220d
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, ZeroDataChecksumIsAllOnes) {
  const std::vector<std::uint8_t> data(10, 0);
  EXPECT_EQ(internet_checksum(data), 0xffff);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::vector<std::uint8_t> even = {0x12, 0x34, 0xab, 0x00};
  const std::vector<std::uint8_t> odd = {0x12, 0x34, 0xab};
  EXPECT_EQ(internet_checksum(even), internet_checksum(odd));
}

// Property: inserting the computed checksum into the data yields a verify sum
// of zero — this is exactly how IP header verification works.
TEST(Checksum, SelfVerifyingProperty) {
  sim::Random rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> data(20 + rng.uniform(60) * 2);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
    data[10] = 0;
    data[11] = 0;
    const std::uint16_t sum = internet_checksum(data);
    data[10] = static_cast<std::uint8_t>(sum >> 8);
    data[11] = static_cast<std::uint8_t>(sum);
    EXPECT_EQ(internet_checksum(data), 0);
  }
}

TEST(Checksum, AccumulateIsAssociative) {
  sim::Random rng(33);
  std::vector<std::uint8_t> data(64);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  const std::uint16_t whole = internet_checksum(data);
  // Split at an even offset: accumulation must agree.
  const auto acc1 = checksum_accumulate(std::span(data).first(32));
  const auto acc2 = checksum_accumulate(std::span(data).subspan(32), acc1);
  EXPECT_EQ(checksum_finish(acc2), whole);
}

TEST(TransportChecksum, DetectsCorruption) {
  sim::Random rng(35);
  const Ipv4Address src(10, 0, 0, 1), dst(10, 0, 0, 2);
  std::vector<std::uint8_t> segment(40);
  for (auto& b : segment) b = static_cast<std::uint8_t>(rng.next_u64());
  segment[16] = segment[17] = 0;  // TCP checksum field offset
  const std::uint16_t sum = transport_checksum(src, dst, 6, segment);
  segment[16] = static_cast<std::uint8_t>(sum >> 8);
  segment[17] = static_cast<std::uint8_t>(sum);
  // Verification: checksum over segment with pseudo-header must be 0.
  EXPECT_EQ(transport_checksum(src, dst, 6, segment), 0);
  // Any single-byte corruption is detected.
  for (std::size_t i = 0; i < segment.size(); ++i) {
    auto bad = segment;
    bad[i] ^= 0x5a;
    EXPECT_NE(transport_checksum(src, dst, 6, bad), 0) << "byte " << i;
  }
}

TEST(TransportChecksum, PseudoHeaderBindsAddressesAndProtocol) {
  const Ipv4Address src(10, 0, 0, 1), dst(10, 0, 0, 2);
  const std::vector<std::uint8_t> segment(20, 0x11);
  const auto base = transport_checksum(src, dst, 6, segment);
  EXPECT_NE(base, transport_checksum(Ipv4Address(10, 0, 0, 3), dst, 6, segment));
  EXPECT_NE(base, transport_checksum(src, Ipv4Address(10, 0, 0, 3), 6, segment));
  EXPECT_NE(base, transport_checksum(src, dst, 17, segment));
}

}  // namespace
}  // namespace barb::net
