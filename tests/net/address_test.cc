#include <gtest/gtest.h>

#include "net/ipv4_address.h"
#include "net/mac_address.h"

namespace barb::net {
namespace {

TEST(Ipv4Address, ParseValid) {
  auto a = Ipv4Address::parse("10.1.2.3");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value(), 0x0a010203u);
  EXPECT_EQ(a->to_string(), "10.1.2.3");
}

TEST(Ipv4Address, ParseBoundaries) {
  EXPECT_EQ(Ipv4Address::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Address::parse("255.255.255.255")->value(), 0xffffffffu);
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  for (const char* bad : {"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "1..2.3", "a.b.c.d",
                          "1.2.3.4 ", " 1.2.3.4", "1.2.3.-4", "1.2.3.4x", "1234.1.1.1"}) {
    EXPECT_FALSE(Ipv4Address::parse(bad).has_value()) << bad;
  }
}

TEST(Ipv4Address, ConstructFromOctets) {
  const Ipv4Address a(192, 168, 1, 10);
  EXPECT_EQ(a.to_string(), "192.168.1.10");
  EXPECT_EQ(a, *Ipv4Address::parse("192.168.1.10"));
}

TEST(Ipv4Address, SubnetMembership) {
  const auto net = Ipv4Address(10, 0, 0, 0);
  EXPECT_TRUE(Ipv4Address(10, 0, 0, 5).in_subnet(net, 8));
  EXPECT_TRUE(Ipv4Address(10, 255, 255, 255).in_subnet(net, 8));
  EXPECT_FALSE(Ipv4Address(11, 0, 0, 1).in_subnet(net, 8));
  EXPECT_TRUE(Ipv4Address(10, 0, 0, 5).in_subnet(Ipv4Address(10, 0, 0, 4), 30));
  EXPECT_FALSE(Ipv4Address(10, 0, 0, 8).in_subnet(Ipv4Address(10, 0, 0, 4), 30));
  EXPECT_TRUE(Ipv4Address(1, 2, 3, 4).in_subnet(net, 0));        // /0 matches all
  EXPECT_TRUE(Ipv4Address(10, 0, 0, 1).in_subnet(Ipv4Address(10, 0, 0, 1), 32));
  EXPECT_FALSE(Ipv4Address(10, 0, 0, 2).in_subnet(Ipv4Address(10, 0, 0, 1), 32));
}

TEST(Ipv4Address, Ordering) {
  EXPECT_LT(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2));
  EXPECT_TRUE(Ipv4Address::any().is_any());
  EXPECT_FALSE(Ipv4Address(1, 0, 0, 0).is_any());
}

TEST(MacAddress, ParseAndFormatRoundTrip) {
  auto m = MacAddress::parse("02:00:ab:cd:ef:01");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->to_string(), "02:00:ab:cd:ef:01");
  EXPECT_EQ(MacAddress::parse(m->to_string()), *m);
}

TEST(MacAddress, ParseRejectsMalformed) {
  for (const char* bad :
       {"", "02:00:ab:cd:ef", "02:00:ab:cd:ef:01:02", "02-00-ab-cd-ef-01",
        "02:00:ab:cd:ef:0g", "0200abcdef01", "02:00:ab:cd:ef:01 "}) {
    EXPECT_FALSE(MacAddress::parse(bad).has_value()) << bad;
  }
}

TEST(MacAddress, BroadcastAndMulticastBits) {
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddress::broadcast().is_multicast());
  const auto unicast = MacAddress::from_host_id(3);
  EXPECT_FALSE(unicast.is_broadcast());
  EXPECT_FALSE(unicast.is_multicast());
}

TEST(MacAddress, FromHostIdIsInjective) {
  EXPECT_NE(MacAddress::from_host_id(1), MacAddress::from_host_id(2));
  EXPECT_NE(MacAddress::from_host_id(1), MacAddress::from_host_id(256 + 1));
  EXPECT_EQ(MacAddress::from_host_id(7), MacAddress::from_host_id(7));
}

TEST(MacAddress, HashDistinguishes) {
  const std::hash<MacAddress> h;
  EXPECT_NE(h(MacAddress::from_host_id(1)), h(MacAddress::from_host_id(2)));
}

}  // namespace
}  // namespace barb::net
