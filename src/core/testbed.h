// The paper's Figure 1 testbed: policy server, attacker (flood generator),
// client, and target on a 100 Mbps switch, with the device-under-test
// firewall on the target (and, for VPG configurations, a matching ADF on
// the client — both tunnel endpoints need a card).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/topology.h"
#include "firewall/nic_firewall.h"
#include "firewall/policy_agent.h"
#include "firewall/policy_server.h"
#include "firewall/software_firewall.h"
#include "link/fault_injector.h"
#include "link/link.h"
#include "link/switch.h"
#include "sim/simulation.h"
#include "stack/host.h"
#include "telemetry/registry.h"

namespace barb::core {

// FirewallKind and to_string(FirewallKind) live in core/topology.h (the
// per-host NIC profile is a property of any topology, not just this preset).

struct TestbedConfig {
  FirewallKind firewall = FirewallKind::kNone;
  // Rules traversed up to and including the action rule (the paper's
  // "rule-set depth"). For kAdfVpg this counts VPGs, not rules.
  int action_rule_depth = 1;
  // Disposition of the attacker's flood traffic at the action rule. kAllow
  // uses a single catch-all action rule; kDeny denies the flood at the
  // action rule and allows everything else right after it.
  firewall::RuleAction flood_action = firewall::RuleAction::kAllow;
  // Places a deny-the-attacker rule FIRST (depth 1) with the catch-all
  // allow still at action_rule_depth — the paper's "deny potential attack
  // sources early" recommendation. A spoofing attacker sails past it.
  bool deny_attacker_first = false;
  // Distribute policy through the policy server + agents (slower to settle
  // but exercises the real management path) instead of direct installation.
  bool use_policy_server = false;
  // Rule-matching backend on the device under test (and the client-side ADF
  // in VPG mode, and the iptables host filter): `kLinear` is the calibrated
  // paper-faithful default; the compiled backends are the ROADMAP item 1
  // counterfactual profiles ("compiled", "compiled+flowcache"). Applied on
  // top of profile_override when both are set.
  firewall::MatchBackend match_backend = firewall::MatchBackend::kLinear;
  // Replaces the standard EFW/ADF device profile on the firewall NICs
  // (ablation studies tweak cost-model parameters through this).
  std::optional<firewall::DeviceProfile> profile_override;
  // Enables the FloodGuard screening stage on the target's firewall NIC
  // (the future-work extension; see firewall/flood_guard.h).
  std::optional<firewall::FloodGuardConfig> flood_guard;
  // Fault injection on both directions of the attacker, client, and target
  // access links (the policy link stays clean unless fault_policy_link is
  // set, so policy distribution remains reliable by default). Each injected
  // port gets its own RNG stream derived from `seed` and the port index —
  // runs replay byte-identically and are --jobs-independent. Disabled
  // (nullopt, the default) leaves the frame path untouched: zero extra RNG
  // draws, byte-identical figure artifacts.
  std::optional<link::FaultProfile> fault_profile;
  bool fault_policy_link = false;
  // Batched link delivery (see link/link.h). Off by default — the per-frame
  // engine is the calibrated original; the BARB_LINK_BATCH env var overrides
  // either way for the byte-identity gate.
  bool batched_links = false;
  // Parallel discrete-event execution: shard count for the conservative
  // engine (hosts on the RNG home shard, switches on the rest; see
  // core/topology.h partition_fabric). 0 consults BARB_DES_SHARDS; 1 forces
  // serial; > 1 attaches a ParallelEngine for the Testbed's lifetime. The
  // timeline is byte-identical either way (gated on the paper figures).
  int des_shards = 0;
  std::uint64_t seed = 1;
};

// Well-known testbed addresses.
struct TestbedAddresses {
  net::Ipv4Address policy_server{10, 0, 0, 10};
  net::Ipv4Address attacker{10, 0, 0, 20};
  net::Ipv4Address client{10, 0, 0, 30};
  net::Ipv4Address target{10, 0, 0, 40};
};

// The well-known port the attacker floods (no listener on the target).
constexpr std::uint16_t kFloodPort = 7777;
constexpr std::uint32_t kExperimentVpgId = 1;

class Testbed {
 public:
  Testbed(sim::Simulation& sim, const TestbedConfig& config);
  ~Testbed();

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  sim::Simulation& simulation() { return sim_; }
  const TestbedConfig& config() const { return config_; }
  const TestbedAddresses& addresses() const { return addr_; }

  stack::Host& policy_host() { return *policy_host_; }
  stack::Host& attacker() { return *attacker_; }
  stack::Host& client() { return *client_; }
  stack::Host& target() { return *target_; }
  link::Switch& ethernet_switch() { return fabric_->fabric_switch(0); }
  // The underlying fabric (hosts indexed policy=0, attacker=1, client=2,
  // target=3; their access links share the index).
  Fabric& fabric() { return *fabric_; }

  // Device under test on the target host; null unless kEfw/kAdf/kAdfVpg.
  firewall::FirewallNic* target_firewall() { return target_fw_; }
  // Software firewall on the target; null unless kIptables.
  firewall::SoftwareFirewall* software_firewall() { return iptables_.get(); }
  firewall::PolicyServer* policy_server() { return policy_server_.get(); }
  firewall::PolicyAgent* target_agent() { return target_agent_.get(); }
  // Fault injectors installed per config.fault_profile (empty when disabled).
  const std::vector<std::unique_ptr<link::FaultInjector>>& fault_injectors() const {
    return fault_injectors_;
  }
  // Shard-attach layer when des_shards resolved to > 1; null in serial runs.
  link::ShardedLinkDomain* shard_domain() { return shard_domain_.get(); }

  // Runs the simulation until policy is in place (policy-server mode) or
  // returns immediately (direct mode). Call once before measurements.
  void settle();

  // Registers every component's metrics: the four hosts ("host=<name>"),
  // both sides of each access link ("link=<name>,side=host|switch"), the
  // switch (with per-port egress queue gauges), the device under test, and
  // the software firewall when present. The registry must outlive nothing:
  // declare it before the Testbed (or at least stop sampling it once the
  // Testbed is gone).
  void register_metrics(telemetry::MetricRegistry& registry);

  // Registers this thread's frame buffer pool's counters and gauges
  // ("pool.*"). Deliberately NOT part of register_metrics(): the pool is
  // thread-local and cumulative across the simulations a thread runs, so
  // recording its absolute counters into a timeline would make same-seed
  // runs diverge (a second run starts with a warm freelist) and perturb the
  // figure artifacts. Benches that study allocator behaviour opt in
  // explicitly, and must sample from the registering thread.
  static void register_pool_metrics(telemetry::MetricRegistry& registry);

  // Registers the event engine's counters and gauges ("sched.*": live
  // pending events, overflow tombstones, slab capacity, cascade/migration/
  // compaction counts). Kept out of register_metrics() for the same reason
  // as pool.*: engine-internal counters do not belong in figure timelines,
  // and keeping them opt-in preserves byte-identical artifacts across
  // scheduler backends (BARB_SCHED=heap vs the wheel).
  void register_scheduler_metrics(telemetry::MetricRegistry& registry);

  // The policy text installed on the target (for inspection/tests).
  const std::string& target_policy_text() const { return target_policy_; }

 private:
  void build_hosts();
  void install_policies();
  void install_fault_injectors();

  sim::Simulation& sim_;
  TestbedConfig config_;
  TestbedAddresses addr_;

  // Declared before fabric_ so it is destroyed after it: links and TCP
  // timers hold EventHandles on the domain's shard schedulers, and the
  // fabric's destructors cancel through them — the schedulers (and the
  // per-shard frame pools) must still be alive then.
  std::unique_ptr<link::ShardedLinkDomain> shard_domain_;
  // The wired topology (switch, links, hosts); built by TopologyBuilder with
  // the legacy construction order, so artifacts match the hard-coded wiring
  // this preset replaced.
  std::unique_ptr<Fabric> fabric_;
  // Two injectors per faulted link (one per direction), in link order;
  // labels_ mirror the link/side naming used by register_metrics.
  std::vector<std::unique_ptr<link::FaultInjector>> fault_injectors_;
  std::vector<std::string> fault_labels_;
  stack::Host* policy_host_ = nullptr;  // owned by fabric_
  stack::Host* attacker_ = nullptr;
  stack::Host* client_ = nullptr;
  stack::Host* target_ = nullptr;

  firewall::FirewallNic* target_fw_ = nullptr;   // owned by target_
  firewall::FirewallNic* client_fw_ = nullptr;   // owned by client_ (VPG only)
  std::unique_ptr<firewall::SoftwareFirewall> iptables_;
  std::unique_ptr<firewall::PolicyServer> policy_server_;
  std::unique_ptr<firewall::PolicyAgent> target_agent_;
  std::unique_ptr<firewall::PolicyAgent> client_agent_;

  std::string target_policy_;
};

// Builds the target-side policy text for a given configuration (exposed for
// tests and for the policy-generation example).
std::string make_target_policy(const TestbedConfig& config, const TestbedAddresses& addr);
// Client-side policy for VPG configurations (one matching VPG).
std::string make_client_vpg_policy(const TestbedAddresses& addr);

}  // namespace barb::core
