// Declarative topology construction for single-switch and fleet fabrics.
//
// The paper's Figure 1 testbed is four hosts on one switch; ROADMAP item 2
// is the same per-host enforcement argument at fleet scale. TopologyBuilder
// generalizes the wiring into data: callers declare switches, hosts (each
// with its own NIC firewall profile), access links and trunks, and build()
// returns a Fabric owning everything, with address resolution installed and
// — for multi-switch fabrics — static routes preloaded into every switch's
// FIB. The classic Testbed is a thin preset over this builder, and its
// artifacts are byte-identical to the hard-coded wiring it replaced.
//
// Fabric shapes:
//  * single switch — the paper's testbed, any host count (star).
//  * leaf-spine — hosts under leaf switches, every leaf trunked to every
//    spine. Redundant paths make L2 flooding a loop storm, so the builder
//    preloads pinned FIB routes (remote traffic spreads over spines by
//    destination index), disables learning, and disables unknown flooding.
//  * campus tree — edge switches under one core switch: the classic
//    building-distribution shape; loop-free but preloaded all the same.
//
// Address resolution at fleet scale uses one shared AddressDirectory
// (O(total hosts) memory for the whole fleet) instead of a full mesh of
// per-host ARP tables (O(hosts^2)); the Testbed preset keeps the legacy
// full-mesh installation for byte-identity.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "firewall/nic_firewall.h"
#include "link/link.h"
#include "link/switch.h"
#include "sim/simulation.h"
#include "stack/address_directory.h"
#include "stack/host.h"
#include "telemetry/registry.h"

namespace barb::link {
class ShardedLinkDomain;
}  // namespace barb::link

namespace barb::core {

enum class FirewallKind {
  kNone,      // standard NIC (Intel EEPro 100 baseline)
  kIptables,  // host-resident software firewall
  kEfw,       // 3Com Embedded Firewall model
  kAdf,       // Adventium ADF model, plain rule-set
  kAdfVpg,    // ADF with VPG tunnel between client and target
};

const char* to_string(FirewallKind kind);

// Per-host NIC hardware profile: which firewall model guards the host, with
// which matching backend and cost-model overrides.
struct NicSpec {
  FirewallKind kind = FirewallKind::kNone;
  firewall::MatchBackend backend = firewall::MatchBackend::kLinear;
  std::optional<firewall::DeviceProfile> profile_override;
  std::optional<firewall::FloodGuardConfig> flood_guard;
};

struct HostSpec {
  std::string name;
  net::Ipv4Address ip;
  net::MacAddress mac;
  NicSpec nic;
  stack::HostConfig host_config;
  // Metric/trace label of the NIC. Empty derives "<name>/nic" for standard
  // NICs and "<name>/<profile name>" for firewall NICs.
  std::string nic_label;
};

// Aggregate heap-footprint audit over a built fabric (the `mem.*` numbers).
struct MemoryAudit {
  std::size_t hosts = 0;
  std::size_t directory_bytes = 0;    // shared AddressDirectory (once)
  std::size_t arp_private_bytes = 0;  // per-host private ARP maps, summed
  std::size_t switch_fib_bytes = 0;   // bounded FIBs, summed over switches
  std::size_t flow_state_bytes = 0;   // stateful flow tables, summed
  std::size_t host_object_bytes = 0;  // the Host/Nic objects themselves

  std::size_t total_bytes() const {
    return directory_bytes + arp_private_bytes + switch_fib_bytes +
           flow_state_bytes + host_object_bytes;
  }
  std::size_t per_host_bytes() const {
    return hosts == 0 ? 0 : total_bytes() / hosts;
  }
};

// A built topology: owns switches, links, and hosts. Hosts and their access
// links share an index; trunks follow the access links in `links()`.
class Fabric {
 public:
  explicit Fabric(sim::Simulation& sim) : sim_(sim) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  sim::Simulation& simulation() { return sim_; }

  int num_hosts() const { return static_cast<int>(hosts_.size()); }
  int num_switches() const { return static_cast<int>(switches_.size()); }

  stack::Host& host(int i) { return *hosts_[static_cast<std::size_t>(i)]; }
  // Device firewall on host i's NIC; null for plain NICs.
  firewall::FirewallNic* firewall(int i) {
    return firewalls_[static_cast<std::size_t>(i)];
  }
  link::Switch& fabric_switch(int i) {
    return *switches_[static_cast<std::size_t>(i)];
  }
  // Switch the host's access link lands on.
  int host_switch(int i) const { return host_switch_[static_cast<std::size_t>(i)]; }
  // Access link of host i (a() = host side, b() = switch side).
  link::Link& host_link(int i) { return *links_[static_cast<std::size_t>(i)]; }
  const std::vector<std::unique_ptr<link::Link>>& links() const { return links_; }

  // Endpoints of links()[i], recorded as links are declared: access links
  // have host >= 0 (the a() side) landing on switch sw_b; trunks have
  // sw_a (a() side) and sw_b (b() side). The shard partitioner cuts along
  // these instead of trusting index order (presets interleave trunks and
  // access links).
  struct LinkEnds {
    int host = -1;
    int sw_a = -1;
    int sw_b = -1;
  };
  const std::vector<LinkEnds>& link_ends() const { return link_ends_; }

  const stack::AddressDirectory* directory() const { return directory_.get(); }

  // Walks the preloaded FIBs from every switch: true iff every switch can
  // reach every host's MAC (diagnostic for fabric invariant tests).
  bool all_hosts_routed() const;

  MemoryAudit memory_audit() const;

  // Registers the per-fleet footprint audit ("mem.*") and aggregate traffic
  // counters ("fleet.*"), plus each switch's FIB counters. Opt-in for fleet
  // benches — deliberately separate from the per-component register_metrics
  // calls the paper figures sample (their artifacts are a byte-identity
  // regression gate, so their metric set must not grow).
  void register_fleet_metrics(telemetry::MetricRegistry& registry);

 private:
  friend class TopologyBuilder;

  sim::Simulation& sim_;
  std::vector<std::unique_ptr<link::Switch>> switches_;
  std::vector<std::unique_ptr<link::Link>> links_;  // access links, then trunks
  std::vector<std::unique_ptr<stack::Host>> hosts_;
  std::vector<firewall::FirewallNic*> firewalls_;  // per host; null when plain
  std::vector<int> host_switch_;                   // per host: switch index
  std::vector<int> host_port_;                     // per host: port on switch
  std::shared_ptr<stack::AddressDirectory> directory_;
  std::vector<LinkEnds> link_ends_;  // parallel to links_
  // Per switch: port index -> peer switch index (trunks) or -1; and port
  // index -> host index (access ports) or -1. Filled as links attach; used
  // for route computation and the reachability diagnostic.
  std::vector<std::vector<int>> port_peer_switch_;
  std::vector<std::vector<int>> port_host_;
};

class TopologyBuilder {
 public:
  explicit TopologyBuilder(sim::Simulation& sim);

  // Declares a switch; returns its index.
  int add_switch(const std::string& name, link::SwitchConfig config = {});

  // Declares a host attached to `switch_id` over `link_config`; returns the
  // host index. The link is created immediately, so switch port numbering
  // follows call order (trunks and hosts interleave as declared).
  int add_host(const HostSpec& spec, int switch_id,
               const link::LinkConfig& link_config);

  // Declares a trunk between two switches.
  void connect_switches(int a, int b, const link::LinkConfig& link_config);

  // Shared-directory address resolution (default) vs. the legacy full-mesh
  // per-host ARP installation the 4-host preset uses.
  void set_shared_arp(bool shared) { shared_arp_ = shared; }

  // Preload pinned FIB routes for every host into every switch at build()
  // (required for fabrics with redundant paths; they must also disable
  // learning/flooding via their SwitchConfig). Routes spread equal-cost
  // trunk choices by destination host index.
  void enable_static_routes() { static_routes_ = true; }

  // Finalizes address resolution (+ routes) and returns the fabric.
  std::unique_ptr<Fabric> build();

 private:
  struct Trunk {
    int sw_a, port_a, sw_b, port_b;
  };

  std::unique_ptr<Fabric> fabric_;
  std::vector<Trunk> trunks_;
  bool shared_arp_ = true;
  bool static_routes_ = false;
  bool built_ = false;
};

// Creates the NIC described by `spec` (used by the builder presets and the
// Testbed). `out_firewall` receives the FirewallNic when one is built.
std::unique_ptr<stack::Nic> make_nic(sim::Simulation& sim, const HostSpec& spec,
                                     firewall::FirewallNic** out_firewall);

// --- fabric presets -------------------------------------------------------

struct LeafSpineSpec {
  int hosts = 64;
  int hosts_per_leaf = 16;
  int spines = 2;
  // Access links model the testbed's deep-buffered 100 Mbps edge; trunks are
  // 1 Gbps with proportionally deeper queues.
  link::LinkConfig access_link{100e6, sim::Duration::nanoseconds(500),
                               768 * 1024, true};
  link::LinkConfig trunk_link{1e9, sim::Duration::microseconds(1),
                              4 * 768 * 1024, true};
  // Per-host NIC profile applied to every host (benches override per index
  // via `nic_for`, e.g. plain NICs for designated attackers).
  NicSpec default_nic;
  std::function<NicSpec(int host_index)> nic_for;  // optional override
  // Batched link delivery by default (BARB_LINK_BATCH overrides).
  bool batched_links = true;
  std::string name_prefix = "h";
};

std::unique_ptr<Fabric> build_leaf_spine(sim::Simulation& sim,
                                         const LeafSpineSpec& spec);

struct CampusTreeSpec {
  int hosts = 64;
  int hosts_per_edge = 16;  // fanout of each edge switch
  link::LinkConfig access_link{100e6, sim::Duration::nanoseconds(500),
                               768 * 1024, true};
  link::LinkConfig uplink{1e9, sim::Duration::microseconds(1),
                          4 * 768 * 1024, true};
  NicSpec default_nic;
  std::function<NicSpec(int host_index)> nic_for;
  bool batched_links = true;
  std::string name_prefix = "h";
};

std::unique_ptr<Fabric> build_campus_tree(sim::Simulation& sim,
                                          const CampusTreeSpec& spec);

// IP/MAC assignment shared by the presets (host index -> 10.x.y.z / MAC).
net::Ipv4Address fleet_ip(int host_index);
net::MacAddress fleet_mac(int host_index);

// --- shard partitioning (parallel discrete-event engine) ------------------

enum class ShardPartition {
  // All hosts on shard 0 (the RNG home — every RNG-drawing component is
  // host-side), switches round-robin over shards 1..K-1. Cuts exactly the
  // access links, whose propagation + min frame time gives the lookahead.
  // This is the partition the testbed/bench wiring uses: it keeps the global
  // RNG draw order identical to serial by construction.
  kHostsHome,
  // Switches round-robin over all K shards, each host co-located with its
  // access switch. Maximum balance, but forbids shard-side draws from the
  // simulation RNG entirely (rng_home = -1) — only for draw-free workloads
  // that place their initial events explicitly (ParallelEngine::schedule_on).
  kSpread,
};

// Shard assignment for every host and switch of a built fabric.
struct ShardPlan {
  int shards = 1;
  int rng_home = 0;  // forwarded to Simulation::attach_engine
  std::vector<int> host_shard;
  std::vector<int> switch_shard;
};

ShardPlan partition_fabric(const Fabric& fabric, int shards,
                           ShardPartition mode);

// Builds the engine + per-shard pools for `plan` and wires every cut link.
// The returned domain must outlive all runs; destroying it detaches the
// engine (the simulation reverts to serial execution).
std::unique_ptr<link::ShardedLinkDomain> make_sharded_domain(
    Fabric& fabric, const ShardPlan& plan);

// Shard count requested via BARB_DES_SHARDS (0 or 1, including unset or
// unparsable: serial execution).
int des_shards_from_env();

}  // namespace barb::core
