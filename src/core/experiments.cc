#include "core/experiments.h"

#include <memory>

#include "apps/http.h"
#include "apps/iperf.h"
#include "util/logging.h"

namespace barb::core {

namespace {

// Runs `reps` iperf TCP measurements from client to target inside an
// already-settled testbed and records Mbps per repetition.
void run_bandwidth_reps(Testbed& tb, const MeasurementOptions& options, Stats& out) {
  auto& sim = tb.simulation();
  for (int rep = 0; rep < options.repetitions; ++rep) {
    apps::IperfClient client(tb.client(), tb.addresses().target);
    std::optional<double> measured;
    client.run(apps::IperfClient::Mode::kTcp, options.window,
               [&](apps::IperfResult r) { measured = r.completed ? r.mbps : 0.0; });
    sim.run_for(options.window + options.grace);
    if (!measured) {
      // The measurement could not finish (fully flooded path): score it 0.
      client.cancel();
      sim.run_for(sim::Duration::milliseconds(1));
    }
    out.add(measured.value_or(0.0));
    sim.run_for(options.gap);
  }
}

}  // namespace

BandwidthPoint measure_available_bandwidth(const TestbedConfig& config,
                                           const MeasurementOptions& options) {
  sim::Simulation sim(options.seed);
  Testbed tb(sim, config);
  apps::IperfServer server(tb.target());
  server.start();
  tb.settle();

  BandwidthPoint point;
  run_bandwidth_reps(tb, options, point.mbps);
  return point;
}

BandwidthPoint measure_bandwidth_under_flood(const TestbedConfig& config,
                                             const FloodSpec& flood,
                                             const MeasurementOptions& options) {
  sim::Simulation sim(options.seed);
  Testbed tb(sim, config);
  apps::IperfServer server(tb.target());
  server.start();
  tb.settle();

  apps::FloodConfig fc;
  fc.target = tb.addresses().target;
  fc.target_port = kFloodPort;
  fc.type = flood.type;
  fc.rate_pps = flood.rate_pps;
  fc.frame_size = flood.frame_size;
  fc.spoof_source = flood.spoof_source;
  apps::FloodGenerator generator(tb.attacker(), fc);
  generator.start();
  sim.run_for(options.flood_warmup);

  BandwidthPoint point;
  run_bandwidth_reps(tb, options, point.mbps);
  generator.stop();
  return point;
}

MinFloodResult find_min_dos_flood_rate(const TestbedConfig& config,
                                       const FloodSpec& flood,
                                       const MeasurementOptions& options,
                                       const MinFloodSearchOptions& search) {
  MinFloodResult result;

  // A single-repetition probe at one flood rate; also reports lockup.
  auto probe = [&](double rate) {
    sim::Simulation sim(options.seed);
    Testbed tb(sim, config);
    apps::IperfServer server(tb.target());
    server.start();
    tb.settle();

    apps::FloodConfig fc;
    fc.target = tb.addresses().target;
    fc.target_port = kFloodPort;
    fc.type = flood.type;
    fc.rate_pps = rate;
    fc.frame_size = flood.frame_size;
    fc.spoof_source = flood.spoof_source;
    apps::FloodGenerator generator(tb.attacker(), fc);
    generator.start();
    sim.run_for(options.flood_warmup);

    apps::IperfClient client(tb.client(), tb.addresses().target);
    std::optional<double> measured;
    client.run(apps::IperfClient::Mode::kTcp, options.window,
               [&](apps::IperfResult r) { measured = r.completed ? r.mbps : 0.0; });
    sim.run_for(options.window + options.grace);
    if (!measured) {
      client.cancel();
      sim.run_for(sim::Duration::milliseconds(1));
    }
    ++result.probes;
    if (tb.target_firewall() != nullptr && tb.target_firewall()->locked_up()) {
      result.lockup_observed = true;
    }
    return measured.value_or(0.0);
  };

  // Exponential ladder to bracket the DoS rate.
  double lo = 0;  // highest rate known to still leave bandwidth
  double hi = 0;  // lowest rate known to cause DoS
  for (double rate = search.start_rate_pps; rate <= search.max_rate_pps;
       rate *= search.growth) {
    const double mbps = probe(rate);
    if (mbps < search.dos_threshold_mbps) {
      hi = rate;
      break;
    }
    lo = rate;
  }
  if (hi == 0) return result;  // no DoS up to max rate
  if (lo == 0) {
    result.rate_pps = hi;  // DoS at the very first probe
    return result;
  }

  // Bisect to the requested precision.
  while (hi / lo > search.precision) {
    const double mid = std::sqrt(lo * hi);  // geometric midpoint
    if (probe(mid) < search.dos_threshold_mbps) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  result.rate_pps = hi;
  return result;
}

FloodTimeline record_flood_timeline(const TestbedConfig& config,
                                    const FloodSpec& flood,
                                    const MeasurementOptions& options,
                                    const FloodTimelineOptions& timeline) {
  // The registry outlives everything it samples: declared first, destroyed
  // last, and only sampled while the simulation below is alive.
  telemetry::MetricRegistry registry;
  sim::Simulation sim(options.seed);
  Testbed tb(sim, config);
  apps::IperfServer server(tb.target());
  server.start();
  tb.settle();
  tb.register_metrics(registry);

  registry.counter_fn("iperf.server_rx_bytes", "host=target", [&server] {
    return static_cast<double>(server.tcp_bytes_received());
  });
  // Interval goodput: Mbps delivered to the server since the previous probe
  // sample. The probe samples each gauge exactly once per tick, so the
  // mutable previous-sample state stays consistent and deterministic.
  struct GoodputState {
    std::uint64_t prev_bytes = 0;
    double prev_t = 0;
  };
  auto gp = std::make_shared<GoodputState>();
  gp->prev_t = sim.now().to_seconds();
  registry.gauge("iperf.goodput_mbps", "host=target", [&server, &sim, gp] {
    const double now = sim.now().to_seconds();
    const std::uint64_t bytes = server.tcp_bytes_received();
    const double dt = now - gp->prev_t;
    const double mbps =
        dt > 0 ? static_cast<double>(bytes - gp->prev_bytes) * 8.0 / dt / 1e6 : 0.0;
    gp->prev_bytes = bytes;
    gp->prev_t = now;
    return mbps;
  });

  telemetry::TimeSeriesProbe probe(sim, registry, timeline.interval);
  probe.start();

  std::optional<apps::FloodGenerator> generator;
  if (flood.rate_pps > 0) {
    apps::FloodConfig fc;
    fc.target = tb.addresses().target;
    fc.target_port = kFloodPort;
    fc.type = flood.type;
    fc.rate_pps = flood.rate_pps;
    fc.frame_size = flood.frame_size;
    fc.spoof_source = flood.spoof_source;
    generator.emplace(tb.attacker(), fc);
    generator->start();
    sim.run_for(options.flood_warmup);
  }

  apps::IperfClient client(tb.client(), tb.addresses().target);
  std::optional<double> measured;
  client.run(apps::IperfClient::Mode::kTcp, options.window,
             [&](apps::IperfResult r) { measured = r.completed ? r.mbps : 0.0; });
  sim.run_for(options.window + options.grace);
  if (!measured) {
    client.cancel();
    sim.run_for(sim::Duration::milliseconds(1));
  }
  if (generator) generator->stop();
  probe.stop();

  FloodTimeline result;
  result.mbps = measured.value_or(0.0);
  result.recording = probe.recording();
  return result;
}

HttpPoint measure_http_performance(const TestbedConfig& config,
                                   const MeasurementOptions& options,
                                   std::size_t page_bytes) {
  sim::Simulation sim(options.seed);
  Testbed tb(sim, config);
  apps::HttpServer server(tb.target(), 80);
  server.add_page("/", page_bytes);
  server.start();
  tb.settle();

  apps::HttpLoadClient client(tb.client(), tb.addresses().target, 80, "/");
  HttpPoint point;
  bool done = false;
  client.run(options.http_duration, [&](apps::HttpLoadResult r) {
    point.fetches = r.fetches;
    point.errors = r.errors;
    point.fetches_per_sec = r.fetches_per_sec;
    point.mean_connect_ms = r.mean_connect_ms;
    point.mean_response_ms = r.mean_response_ms;
    done = true;
  });
  sim.run_for(options.http_duration + options.grace);
  if (!done) {
    BARB_WARN("http experiment did not complete; reporting zeros");
  }
  return point;
}

}  // namespace barb::core
