// Experiment harness: the validation methodology of the paper, expressed as
// reusable measurements. Every data point runs in a fresh deterministic
// Simulation so points are independent and reproducible.
//
//  * measure_available_bandwidth   — Figure 2 points
//  * measure_bandwidth_under_flood — Figure 3(a) points
//  * find_min_dos_flood_rate       — Figure 3(b) points (ladder + bisection,
//    mirroring "incrementally increasing the flood rate until the measured
//    bandwidth fell to approximately 0 Mbps")
//  * measure_http_performance      — Table 1 rows
#pragma once

#include <optional>

#include "apps/flood_generator.h"
#include "core/testbed.h"
#include "telemetry/probe.h"
#include "util/stats.h"

namespace barb::core {

struct MeasurementOptions {
  // One bandwidth measurement window (the paper used longer wall-clock runs;
  // window length only narrows variance, not the mean).
  sim::Duration window = sim::Duration::seconds(2);
  int repetitions = 3;  // the paper averages three measurements per point
  sim::Duration gap = sim::Duration::milliseconds(100);
  sim::Duration flood_warmup = sim::Duration::milliseconds(300);
  // Extra wall-clock allowance for a measurement to report before it is
  // declared dead (DoS probes need this: a fully flooded connection may
  // never even establish).
  sim::Duration grace = sim::Duration::seconds(1);
  sim::Duration http_duration = sim::Duration::seconds(10);
  std::uint64_t seed = 1;
};

struct FloodSpec {
  apps::FloodType type = apps::FloodType::kUdp;
  double rate_pps = 10000;
  std::size_t frame_size = 60;  // minimum-size frames, the attacker's optimum
  bool spoof_source = false;
};

struct BandwidthPoint {
  Stats mbps;  // one sample per repetition (0 for failed measurements)
  double mean() const { return mbps.empty() ? 0.0 : mbps.mean(); }
  double stddev() const { return mbps.stddev(); }
};

// Available bandwidth (iperf TCP) with no attack traffic.
BandwidthPoint measure_available_bandwidth(const TestbedConfig& config,
                                           const MeasurementOptions& options = {});

// Available bandwidth while the attacker floods the target.
BandwidthPoint measure_bandwidth_under_flood(const TestbedConfig& config,
                                             const FloodSpec& flood,
                                             const MeasurementOptions& options = {});

struct MinFloodResult {
  // Minimum flood rate (packets/s) that drives available bandwidth below
  // the DoS threshold; nullopt if no rate up to max_rate_pps succeeds.
  std::optional<double> rate_pps;
  // The device latched up during the search (the EFW deny-flood failure).
  bool lockup_observed = false;
  int probes = 0;
};

struct MinFloodSearchOptions {
  double start_rate_pps = 500;
  double max_rate_pps = 160000;  // above the 100 Mbps maximum frame rate
  double growth = 1.6;           // ladder factor
  double precision = 1.08;       // stop when hi/lo is below this
  double dos_threshold_mbps = 0.5;
};

MinFloodResult find_min_dos_flood_rate(const TestbedConfig& config,
                                       const FloodSpec& flood,
                                       const MeasurementOptions& options = {},
                                       const MinFloodSearchOptions& search = {});

struct FloodTimelineOptions {
  // Sampling cadence for the time-series probe (sim clock).
  sim::Duration interval = sim::Duration::milliseconds(50);
};

struct FloodTimeline {
  telemetry::ProbeRecording recording;
  double mbps = 0;  // goodput of the accompanying iperf transfer
};

// One flood + one iperf transfer with every testbed metric sampled on a
// fixed sim-clock interval: the time-series behind a BENCH_*.json artifact
// (goodput vs. time, firewall drops, queue depths, ...). Deterministic:
// identical seeds yield identical recordings. A flood rate <= 0 records an
// attack-free baseline.
FloodTimeline record_flood_timeline(const TestbedConfig& config,
                                    const FloodSpec& flood,
                                    const MeasurementOptions& options = {},
                                    const FloodTimelineOptions& timeline = {});

struct HttpPoint {
  double fetches_per_sec = 0;
  double mean_connect_ms = 0;
  double mean_response_ms = 0;
  std::uint64_t fetches = 0;
  std::uint64_t errors = 0;
};

// Web-server performance behind the device (http_load against the target).
HttpPoint measure_http_performance(const TestbedConfig& config,
                                   const MeasurementOptions& options = {},
                                   std::size_t page_bytes = 10 * 1024);

}  // namespace barb::core
