#include "core/topology.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <deque>
#include <utility>

#include "link/sharded_domain.h"
#include "util/assert.h"

namespace barb::core {

const char* to_string(FirewallKind kind) {
  switch (kind) {
    case FirewallKind::kNone: return "No Firewall";
    case FirewallKind::kIptables: return "iptables";
    case FirewallKind::kEfw: return "EFW";
    case FirewallKind::kAdf: return "ADF";
    case FirewallKind::kAdfVpg: return "ADF (VPG)";
  }
  return "?";
}

std::unique_ptr<stack::Nic> make_nic(sim::Simulation& sim, const HostSpec& spec,
                                     firewall::FirewallNic** out_firewall) {
  if (out_firewall != nullptr) *out_firewall = nullptr;
  switch (spec.nic.kind) {
    case FirewallKind::kEfw:
    case FirewallKind::kAdf:
    case FirewallKind::kAdfVpg: {
      auto profile = spec.nic.kind == FirewallKind::kEfw ? firewall::efw_profile()
                                                         : firewall::adf_profile();
      if (spec.nic.profile_override) profile = *spec.nic.profile_override;
      profile = firewall::with_backend(std::move(profile), spec.nic.backend);
      const std::string label =
          spec.nic_label.empty() ? spec.name + "/" + profile.name : spec.nic_label;
      auto nic = std::make_unique<firewall::FirewallNic>(sim, spec.mac, label,
                                                         std::move(profile));
      if (spec.nic.flood_guard) nic->enable_flood_guard(*spec.nic.flood_guard);
      if (out_firewall != nullptr) *out_firewall = nic.get();
      return nic;
    }
    case FirewallKind::kNone:
    case FirewallKind::kIptables:
      break;
  }
  const std::string label =
      spec.nic_label.empty() ? spec.name + "/nic" : spec.nic_label;
  return std::make_unique<stack::StandardNic>(sim, spec.mac, label);
}

// --- Fabric ---------------------------------------------------------------

bool Fabric::all_hosts_routed() const {
  for (int s = 0; s < num_switches(); ++s) {
    for (std::size_t h = 0; h < hosts_.size(); ++h) {
      const net::MacAddress mac = hosts_[h]->mac();
      int cur = s;
      bool reached = false;
      // A route must reach the host in at most one hop per switch.
      for (int step = 0; step <= num_switches(); ++step) {
        const int port = switches_[static_cast<std::size_t>(cur)]->lookup(mac);
        if (port < 0) break;
        const auto& peers = port_peer_switch_[static_cast<std::size_t>(cur)];
        const auto& hostmap = port_host_[static_cast<std::size_t>(cur)];
        if (hostmap[static_cast<std::size_t>(port)] == static_cast<int>(h)) {
          reached = true;
          break;
        }
        const int next = peers[static_cast<std::size_t>(port)];
        if (next < 0) break;  // routed into a non-trunk port
        cur = next;
      }
      if (!reached) return false;
    }
  }
  return true;
}

MemoryAudit Fabric::memory_audit() const {
  MemoryAudit audit;
  audit.hosts = hosts_.size();
  if (directory_) audit.directory_bytes = directory_->memory_bytes();
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    audit.arp_private_bytes += hosts_[i]->arp().memory_bytes();
    audit.host_object_bytes += sizeof(stack::Host);
    if (firewalls_[i] != nullptr) {
      audit.flow_state_bytes += firewalls_[i]->flow_states().memory_bytes();
      audit.host_object_bytes += sizeof(firewall::FirewallNic);
    } else {
      audit.host_object_bytes += sizeof(stack::StandardNic);
    }
  }
  for (const auto& sw : switches_) audit.switch_fib_bytes += sw->fib_memory_bytes();
  return audit;
}

void Fabric::register_fleet_metrics(telemetry::MetricRegistry& registry) {
  registry.gauge("mem.per_host_bytes", "",
                 [this] { return static_cast<double>(memory_audit().per_host_bytes()); });
  registry.gauge("mem.total_bytes", "",
                 [this] { return static_cast<double>(memory_audit().total_bytes()); });
  registry.gauge("mem.directory_bytes", "",
                 [this] { return static_cast<double>(memory_audit().directory_bytes); });
  registry.gauge("mem.arp_private_bytes", "",
                 [this] { return static_cast<double>(memory_audit().arp_private_bytes); });
  registry.gauge("mem.switch_fib_bytes", "",
                 [this] { return static_cast<double>(memory_audit().switch_fib_bytes); });
  registry.gauge("mem.flow_state_bytes", "",
                 [this] { return static_cast<double>(memory_audit().flow_state_bytes); });
  registry.gauge("fleet.hosts", "",
                 [this] { return static_cast<double>(num_hosts()); });
  registry.counter_fn("fleet.ip_rx", "", [this] {
    double total = 0;
    for (const auto& h : hosts_) total += static_cast<double>(h->stats().ip_rx);
    return total;
  });
  registry.counter_fn("fleet.ip_tx", "", [this] {
    double total = 0;
    for (const auto& h : hosts_) total += static_cast<double>(h->stats().ip_tx);
    return total;
  });
  for (const auto& sw : switches_) {
    sw->register_fib_metrics(registry, "switch=" + sw->name());
  }
}

// --- TopologyBuilder ------------------------------------------------------

TopologyBuilder::TopologyBuilder(sim::Simulation& sim)
    : fabric_(std::make_unique<Fabric>(sim)) {}

int TopologyBuilder::add_switch(const std::string& name, link::SwitchConfig config) {
  BARB_ASSERT(!built_);
  const int index = fabric_->num_switches();
  fabric_->switches_.push_back(
      std::make_unique<link::Switch>(fabric_->sim_, name, config));
  fabric_->port_peer_switch_.emplace_back();
  fabric_->port_host_.emplace_back();
  return index;
}

int TopologyBuilder::add_host(const HostSpec& spec, int switch_id,
                              const link::LinkConfig& link_config) {
  BARB_ASSERT(!built_);
  BARB_ASSERT(switch_id >= 0 && switch_id < fabric_->num_switches());
  const int index = fabric_->num_hosts();

  firewall::FirewallNic* fw = nullptr;
  auto nic = make_nic(fabric_->sim_, spec, &fw);
  auto host = std::make_unique<stack::Host>(fabric_->sim_, spec.name, spec.ip,
                                            std::move(nic), spec.host_config);

  fabric_->links_.push_back(
      std::make_unique<link::Link>(fabric_->sim_, link_config));
  link::Link& link = *fabric_->links_.back();
  host->nic().attach(link.a());
  link::Switch& sw = *fabric_->switches_[static_cast<std::size_t>(switch_id)];
  const int port = sw.attach(link.b());
  fabric_->port_peer_switch_[static_cast<std::size_t>(switch_id)].push_back(-1);
  fabric_->port_host_[static_cast<std::size_t>(switch_id)].push_back(index);
  fabric_->link_ends_.push_back(Fabric::LinkEnds{index, -1, switch_id});

  fabric_->hosts_.push_back(std::move(host));
  fabric_->firewalls_.push_back(fw);
  fabric_->host_switch_.push_back(switch_id);
  fabric_->host_port_.push_back(port);
  return index;
}

void TopologyBuilder::connect_switches(int a, int b,
                                       const link::LinkConfig& link_config) {
  BARB_ASSERT(!built_);
  BARB_ASSERT(a != b);
  BARB_ASSERT(a >= 0 && a < fabric_->num_switches());
  BARB_ASSERT(b >= 0 && b < fabric_->num_switches());
  fabric_->links_.push_back(
      std::make_unique<link::Link>(fabric_->sim_, link_config));
  link::Link& link = *fabric_->links_.back();
  link::Switch& sw_a = *fabric_->switches_[static_cast<std::size_t>(a)];
  link::Switch& sw_b = *fabric_->switches_[static_cast<std::size_t>(b)];
  const int port_a = sw_a.attach(link.a());
  const int port_b = sw_b.attach(link.b());
  fabric_->port_peer_switch_[static_cast<std::size_t>(a)].push_back(b);
  fabric_->port_host_[static_cast<std::size_t>(a)].push_back(-1);
  fabric_->port_peer_switch_[static_cast<std::size_t>(b)].push_back(a);
  fabric_->port_host_[static_cast<std::size_t>(b)].push_back(-1);
  fabric_->link_ends_.push_back(Fabric::LinkEnds{-1, a, b});
  trunks_.push_back(Trunk{a, port_a, b, port_b});
}

std::unique_ptr<Fabric> TopologyBuilder::build() {
  BARB_ASSERT(!built_);
  built_ = true;
  Fabric& f = *fabric_;

  // Address resolution.
  if (shared_arp_) {
    f.directory_ = std::make_shared<stack::AddressDirectory>();
    for (const auto& h : f.hosts_) f.directory_->add(h->ip(), h->mac());
    f.directory_->freeze();
    for (const auto& h : f.hosts_) h->arp().set_directory(f.directory_.get());
  } else {
    // Legacy full-mesh installation (the 4-host preset's byte-identical
    // path): every host gets every other host's binding privately.
    for (const auto& h1 : f.hosts_) {
      for (const auto& h2 : f.hosts_) {
        if (h1 != h2) h1->arp().add(h2->ip(), h2->mac());
      }
    }
  }

  if (!static_routes_) return std::move(fabric_);

  // Static routes: per-switch BFS distances over the trunk graph, then one
  // pinned FIB entry per (switch, host). Equal-cost trunk choices spread by
  // destination host index — the deterministic stand-in for ECMP hashing.
  const int num_switches = f.num_switches();
  std::vector<std::vector<int>> dist(
      static_cast<std::size_t>(num_switches),
      std::vector<int>(static_cast<std::size_t>(num_switches), -1));
  for (int s = 0; s < num_switches; ++s) {
    auto& d = dist[static_cast<std::size_t>(s)];
    d[static_cast<std::size_t>(s)] = 0;
    std::deque<int> frontier{s};
    while (!frontier.empty()) {
      const int cur = frontier.front();
      frontier.pop_front();
      const auto& peers = f.port_peer_switch_[static_cast<std::size_t>(cur)];
      for (const int peer : peers) {
        if (peer < 0) continue;
        if (d[static_cast<std::size_t>(peer)] >= 0) continue;
        d[static_cast<std::size_t>(peer)] = d[static_cast<std::size_t>(cur)] + 1;
        frontier.push_back(peer);
      }
    }
  }

  for (int h = 0; h < f.num_hosts(); ++h) {
    const net::MacAddress mac = f.hosts_[static_cast<std::size_t>(h)]->mac();
    const int target_sw = f.host_switch_[static_cast<std::size_t>(h)];
    for (int s = 0; s < num_switches; ++s) {
      int port;
      if (s == target_sw) {
        port = f.host_port_[static_cast<std::size_t>(h)];
      } else {
        const int want =
            dist[static_cast<std::size_t>(s)][static_cast<std::size_t>(target_sw)];
        BARB_ASSERT_MSG(want > 0, "fabric is disconnected");
        // Trunk ports on s whose far switch is one hop closer to the target.
        std::vector<int> candidates;
        const auto& peers = f.port_peer_switch_[static_cast<std::size_t>(s)];
        for (std::size_t p = 0; p < peers.size(); ++p) {
          const int peer = peers[p];
          if (peer < 0) continue;
          if (dist[static_cast<std::size_t>(peer)]
                  [static_cast<std::size_t>(target_sw)] == want - 1) {
            candidates.push_back(static_cast<int>(p));
          }
        }
        BARB_ASSERT(!candidates.empty());
        port = candidates[static_cast<std::size_t>(h) % candidates.size()];
      }
      const bool ok =
          f.switches_[static_cast<std::size_t>(s)]->preload(mac, port);
      BARB_ASSERT_MSG(ok, "switch FIB too small for pinned routes");
    }
  }
  return std::move(fabric_);
}

// --- presets --------------------------------------------------------------

net::Ipv4Address fleet_ip(int host_index) {
  const std::uint32_t n = static_cast<std::uint32_t>(host_index) + 1;
  BARB_ASSERT(n < (1u << 24));
  return net::Ipv4Address(10, static_cast<std::uint8_t>((n >> 16) & 0xff),
                          static_cast<std::uint8_t>((n >> 8) & 0xff),
                          static_cast<std::uint8_t>(n & 0xff));
}

net::MacAddress fleet_mac(int host_index) {
  return net::MacAddress::from_host_id(static_cast<std::uint32_t>(host_index) + 1);
}

namespace {

link::SwitchConfig fabric_switch_config(int hosts) {
  link::SwitchConfig cfg;
  cfg.learning = false;
  cfg.flood_unknown = false;
  // Room for one pinned route per host at <= 25% load, so preloads cannot
  // exhaust a probe window.
  cfg.fib_capacity = std::max<std::size_t>(
      1024, std::bit_ceil(static_cast<std::size_t>(hosts) * 4));
  return cfg;
}

HostSpec fleet_host_spec(const std::string& prefix, int index, NicSpec nic) {
  HostSpec spec;
  spec.name = prefix + std::to_string(index);
  spec.ip = fleet_ip(index);
  spec.mac = fleet_mac(index);
  spec.nic = std::move(nic);
  return spec;
}

}  // namespace

std::unique_ptr<Fabric> build_leaf_spine(sim::Simulation& sim,
                                         const LeafSpineSpec& spec) {
  BARB_ASSERT(spec.hosts >= 1 && spec.hosts_per_leaf >= 1 && spec.spines >= 1);
  const int leaves = (spec.hosts + spec.hosts_per_leaf - 1) / spec.hosts_per_leaf;

  link::LinkConfig access = spec.access_link;
  link::LinkConfig trunk = spec.trunk_link;
  access.batched = trunk.batched = link::batch_delivery_enabled(spec.batched_links);

  TopologyBuilder builder(sim);
  builder.enable_static_routes();
  const link::SwitchConfig sw_cfg = fabric_switch_config(spec.hosts);
  std::vector<int> spines;
  for (int s = 0; s < spec.spines; ++s) {
    spines.push_back(builder.add_switch("spine" + std::to_string(s), sw_cfg));
  }
  int host_index = 0;
  for (int l = 0; l < leaves; ++l) {
    const int leaf = builder.add_switch("leaf" + std::to_string(l), sw_cfg);
    for (const int spine : spines) builder.connect_switches(leaf, spine, trunk);
    for (int i = 0; i < spec.hosts_per_leaf && host_index < spec.hosts; ++i) {
      const NicSpec nic =
          spec.nic_for ? spec.nic_for(host_index) : spec.default_nic;
      builder.add_host(fleet_host_spec(spec.name_prefix, host_index, nic), leaf,
                       access);
      ++host_index;
    }
  }
  return builder.build();
}

std::unique_ptr<Fabric> build_campus_tree(sim::Simulation& sim,
                                          const CampusTreeSpec& spec) {
  BARB_ASSERT(spec.hosts >= 1 && spec.hosts_per_edge >= 1);
  const int edges = (spec.hosts + spec.hosts_per_edge - 1) / spec.hosts_per_edge;

  link::LinkConfig access = spec.access_link;
  link::LinkConfig uplink = spec.uplink;
  access.batched = uplink.batched = link::batch_delivery_enabled(spec.batched_links);

  TopologyBuilder builder(sim);
  builder.enable_static_routes();
  const link::SwitchConfig sw_cfg = fabric_switch_config(spec.hosts);
  const int core = builder.add_switch("core", sw_cfg);
  int host_index = 0;
  for (int e = 0; e < edges; ++e) {
    const int edge = builder.add_switch("edge" + std::to_string(e), sw_cfg);
    builder.connect_switches(edge, core, uplink);
    for (int i = 0; i < spec.hosts_per_edge && host_index < spec.hosts; ++i) {
      const NicSpec nic =
          spec.nic_for ? spec.nic_for(host_index) : spec.default_nic;
      builder.add_host(fleet_host_spec(spec.name_prefix, host_index, nic), edge,
                       access);
      ++host_index;
    }
  }
  return builder.build();
}

// --- shard partitioning ---------------------------------------------------

ShardPlan partition_fabric(const Fabric& fabric, int shards,
                           ShardPartition mode) {
  BARB_ASSERT(shards >= 1);
  ShardPlan plan;
  plan.shards = shards;
  plan.host_shard.assign(static_cast<std::size_t>(fabric.num_hosts()), 0);
  plan.switch_shard.assign(static_cast<std::size_t>(fabric.num_switches()), 0);
  if (shards == 1) return plan;
  switch (mode) {
    case ShardPartition::kHostsHome:
      plan.rng_home = 0;
      for (int s = 0; s < fabric.num_switches(); ++s) {
        plan.switch_shard[static_cast<std::size_t>(s)] = 1 + s % (shards - 1);
      }
      break;
    case ShardPartition::kSpread:
      plan.rng_home = -1;
      for (int s = 0; s < fabric.num_switches(); ++s) {
        plan.switch_shard[static_cast<std::size_t>(s)] = s % shards;
      }
      for (int h = 0; h < fabric.num_hosts(); ++h) {
        plan.host_shard[static_cast<std::size_t>(h)] =
            plan.switch_shard[static_cast<std::size_t>(fabric.host_switch(h))];
      }
      break;
  }
  return plan;
}

std::unique_ptr<link::ShardedLinkDomain> make_sharded_domain(
    Fabric& fabric, const ShardPlan& plan) {
  auto domain = std::make_unique<link::ShardedLinkDomain>(
      fabric.simulation(), plan.shards, plan.rng_home);
  const auto& ends = fabric.link_ends();
  BARB_ASSERT(ends.size() == fabric.links().size());
  for (std::size_t i = 0; i < ends.size(); ++i) {
    const Fabric::LinkEnds& e = ends[i];
    const int shard_a =
        e.host >= 0 ? plan.host_shard[static_cast<std::size_t>(e.host)]
                    : plan.switch_shard[static_cast<std::size_t>(e.sw_a)];
    const int shard_b = plan.switch_shard[static_cast<std::size_t>(e.sw_b)];
    domain->attach(*fabric.links()[i], shard_a, shard_b);
  }
  return domain;
}

int des_shards_from_env() {
  const char* env = std::getenv("BARB_DES_SHARDS");
  if (env == nullptr || *env == '\0') return 0;
  const int v = std::atoi(env);
  return v > 1 ? v : 0;
}

}  // namespace barb::core
