#include "core/testbed.h"

#include "core/runner.h"
#include "firewall/policy.h"
#include "link/sharded_domain.h"
#include "net/frame_buffer.h"
#include "net/vpg_header.h"
#include "util/assert.h"
#include "util/logging.h"

namespace barb::core {

namespace {

// Shared deployment key authenticating policy-distribution traffic.
const std::vector<std::uint8_t> kDeploymentKey(32, 0x5c);

// Padding rules that can never match testbed traffic (the testbed lives in
// 10.0.0.0/8; padding selectors sit in 192.168.0.0/16).
std::string padding_rule(int i) {
  return "deny tcp from 192.168." + std::to_string(i / 200) + "." +
         std::to_string(i % 200 + 1) + " to 192.168.250.1\n";
}

std::string padding_vpg(int i) {
  return "vpg " + std::to_string(100 + i) + " between 192.168.10." +
         std::to_string(i % 250 + 1) + " and 192.168.20." +
         std::to_string(i % 250 + 1) + "\n";
}

}  // namespace

std::string make_target_policy(const TestbedConfig& config,
                               const TestbedAddresses& addr) {
  BARB_ASSERT(config.action_rule_depth >= 1);
  std::string policy = "default deny\n";

  if (config.firewall == FirewallKind::kAdfVpg) {
    // Depth counts VPGs: (k-1) non-matching groups above the matching one.
    for (int i = 1; i < config.action_rule_depth; ++i) policy += padding_vpg(i);
    policy += "vpg " + std::to_string(kExperimentVpgId) + " between " +
              addr.client.to_string() + " and " + addr.target.to_string() + "\n";
    return policy;
  }

  if (config.deny_attacker_first) {
    // Early-deny layout: the attacker's real address is blocked at rule 1;
    // everything else (including spoofed flood packets) walks the padding
    // to the catch-all at the configured depth.
    policy += "deny any from " + addr.attacker.to_string() + " to " +
              addr.target.to_string() + "\n";
    for (int i = 2; i < config.action_rule_depth; ++i) policy += padding_rule(i);
    policy += "allow any from any to any\n";
    return policy;
  }

  for (int i = 1; i < config.action_rule_depth; ++i) policy += padding_rule(i);
  if (config.flood_action == firewall::RuleAction::kDeny) {
    // Action rule denies the attacker's traffic; legitimate traffic is
    // admitted by the catch-all immediately after (rules past the action
    // rule do not affect the flood, per the paper's observation).
    policy += "deny any from " + addr.attacker.to_string() + " to " +
              addr.target.to_string() + "\n";
    policy += "allow any from any to any\n";
  } else {
    policy += "allow any from any to any\n";
  }
  return policy;
}

std::string make_client_vpg_policy(const TestbedAddresses& addr) {
  return "default deny\nvpg " + std::to_string(kExperimentVpgId) + " between " +
         addr.client.to_string() + " and " + addr.target.to_string() + "\n";
}

Testbed::Testbed(sim::Simulation& sim, const TestbedConfig& config)
    : sim_(sim), config_(config) {
  build_hosts();
  install_fault_injectors();
  install_policies();
}

Testbed::~Testbed() = default;

void Testbed::build_hosts() {
  const bool vpg = config_.firewall == FirewallKind::kAdfVpg;
  stack::HostConfig default_cfg;
  stack::HostConfig vpg_cfg;
  // Leave headroom for VPG encapsulation so tunneled frames fit the MTU.
  vpg_cfg.mss = static_cast<std::uint16_t>(default_cfg.mss - net::VpgHeader::kOverhead);

  // The testbed switch (3C16734A class) has deep per-port buffering; a
  // shallow egress queue would punish TCP under flood contention far more
  // than the real testbed did.
  link::LinkConfig link_cfg;
  link_cfg.queue_bytes = 768 * 1024;
  link_cfg.batched = link::batch_delivery_enabled(config_.batched_links);

  TopologyBuilder builder(sim_);
  // The preset keeps the legacy full-mesh ARP installation and the default
  // learning switch (byte-identity with the wiring it replaced); fleet
  // fabrics use the shared directory and preloaded FIBs instead.
  builder.set_shared_arp(false);
  const int sw = builder.add_switch("switch");

  // Policy server host (the testbed's Windows 2000 box) and attacker use
  // plain NICs. Hosts attach in the legacy order: policy, attacker, client,
  // target — switch port numbering and metric labels depend on it.
  HostSpec policy_spec;
  policy_spec.name = "policy";
  policy_spec.ip = addr_.policy_server;
  policy_spec.mac = net::MacAddress::from_host_id(10);
  policy_spec.host_config = default_cfg;
  builder.add_host(policy_spec, sw, link_cfg);

  HostSpec attacker_spec;
  attacker_spec.name = "attacker";
  attacker_spec.ip = addr_.attacker;
  attacker_spec.mac = net::MacAddress::from_host_id(20);
  attacker_spec.host_config = default_cfg;
  builder.add_host(attacker_spec, sw, link_cfg);

  // Client: plain NIC except in VPG mode (both tunnel ends need an ADF).
  HostSpec client_spec;
  client_spec.name = "client";
  client_spec.ip = addr_.client;
  client_spec.mac = net::MacAddress::from_host_id(30);
  if (vpg) {
    client_spec.nic.kind = FirewallKind::kAdfVpg;
    client_spec.nic.backend = config_.match_backend;
    client_spec.nic.profile_override = config_.profile_override;
    client_spec.nic_label = "client/adf";
    client_spec.host_config = vpg_cfg;
  } else {
    client_spec.host_config = default_cfg;
  }
  builder.add_host(client_spec, sw, link_cfg);

  // Target: device under test.
  HostSpec target_spec;
  target_spec.name = "target";
  target_spec.ip = addr_.target;
  target_spec.mac = net::MacAddress::from_host_id(40);
  target_spec.nic.kind = config_.firewall;
  target_spec.nic.backend = config_.match_backend;
  target_spec.nic.profile_override = config_.profile_override;
  target_spec.nic.flood_guard = config_.flood_guard;
  target_spec.host_config = vpg ? vpg_cfg : default_cfg;
  builder.add_host(target_spec, sw, link_cfg);

  fabric_ = builder.build();
  const int shards =
      config_.des_shards != 0 ? config_.des_shards : des_shards_from_env();
  if (shards > 1) {
    shard_domain_ = make_sharded_domain(
        *fabric_, partition_fabric(*fabric_, shards, ShardPartition::kHostsHome));
  }
  policy_host_ = &fabric_->host(0);
  attacker_ = &fabric_->host(1);
  client_ = &fabric_->host(2);
  target_ = &fabric_->host(3);
  client_fw_ = fabric_->firewall(2);
  target_fw_ = fabric_->firewall(3);
}

void Testbed::install_fault_injectors() {
  if (!config_.fault_profile || !config_.fault_profile->enabled()) return;
  // Link order matches build_hosts(): policy, attacker, client, target.
  static const char* kNames[] = {"policy", "attacker", "client", "target"};
  for (std::size_t i = 0; i < static_cast<std::size_t>(fabric_->num_hosts()) && i < 4;
       ++i) {
    if (i == 0 && !config_.fault_policy_link) continue;
    // Each direction gets an independent stream: port index 2i for the
    // host-side transmitter, 2i+1 for the switch side. derive_point_seed is
    // the frozen sweep mix, salted so the streams never collide with the
    // per-point simulation seeds themselves.
    constexpr std::uint64_t kFaultSalt = 0xfa17fa17fa17fa17ULL;
    for (int side = 0; side < 2; ++side) {
      auto injector = std::make_unique<link::FaultInjector>(
          *config_.fault_profile,
          derive_point_seed(config_.seed ^ kFaultSalt, 2 * i + side));
      link::Link& link = fabric_->host_link(static_cast<int>(i));
      link::LinkPort& port = side == 0 ? link.a() : link.b();
      port.set_fault_injector(injector.get());
      fault_labels_.push_back(std::string("link=") + kNames[i] +
                              ",side=" + (side == 0 ? "host" : "switch"));
      fault_injectors_.push_back(std::move(injector));
    }
  }
}

void Testbed::install_policies() {
  target_policy_ = make_target_policy(config_, addr_);

  if (config_.firewall == FirewallKind::kIptables) {
    firewall::SoftwareFirewallConfig sw_cfg;
    sw_cfg.backend = config_.match_backend;
    iptables_ = std::make_unique<firewall::SoftwareFirewall>(sim_, sw_cfg);
    auto parsed = firewall::parse_policy(target_policy_);
    BARB_ASSERT_MSG(parsed.ok(), "generated iptables policy must parse");
    iptables_->install_rule_set(std::move(*parsed.rule_set));
    target_->set_packet_filter(iptables_.get());
    return;
  }
  if (target_fw_ == nullptr) return;  // kNone

  target_fw_->set_management_peer(addr_.policy_server);
  if (client_fw_ != nullptr) client_fw_->set_management_peer(addr_.policy_server);

  if (config_.use_policy_server) {
    policy_server_ = std::make_unique<firewall::PolicyServer>(*policy_host_,
                                                              kDeploymentKey);
    policy_server_->start();
    policy_server_->set_policy(addr_.target, target_policy_);
    target_agent_ = std::make_unique<firewall::PolicyAgent>(
        *target_, *target_fw_, addr_.policy_server, kDeploymentKey);
    target_agent_->start();
    if (config_.firewall == FirewallKind::kAdfVpg) {
      policy_server_->set_policy(addr_.client, make_client_vpg_policy(addr_));
      policy_server_->create_vpg(kExperimentVpgId, addr_.client, addr_.target);
      client_agent_ = std::make_unique<firewall::PolicyAgent>(
          *client_, *client_fw_, addr_.policy_server, kDeploymentKey);
      client_agent_->start();
    }
    return;
  }

  // Direct installation (fast path for benches and unit tests).
  auto parsed = firewall::parse_policy(target_policy_);
  BARB_ASSERT_MSG(parsed.ok(), "generated target policy must parse");
  target_fw_->install_rule_set(std::move(*parsed.rule_set));
  if (config_.firewall == FirewallKind::kAdfVpg) {
    auto client_parsed = firewall::parse_policy(make_client_vpg_policy(addr_));
    BARB_ASSERT(client_parsed.ok());
    client_fw_->install_rule_set(std::move(*client_parsed.rule_set));
    std::vector<std::uint8_t> master(32);
    for (auto& b : master) b = static_cast<std::uint8_t>(sim_.rng().next_u64());
    target_fw_->vpg_table().install(kExperimentVpgId, master);
    client_fw_->vpg_table().install(kExperimentVpgId, master);
  }
}

void Testbed::register_metrics(telemetry::MetricRegistry& registry) {
  stack::Host* hosts[] = {policy_host_, attacker_, client_, target_};
  for (std::size_t i = 0; i < 4; ++i) {
    const std::string name = hosts[i]->name();
    hosts[i]->register_metrics(registry, "host=" + name);
    // a() is the host-side port; b() is the switch side, whose TX queue is
    // the switch egress queue toward that host.
    link::Link& link = fabric_->host_link(static_cast<int>(i));
    link.a().register_metrics(registry, "link=" + name + ",side=host");
    link.b().register_metrics(registry, "link=" + name + ",side=switch");
  }
  fabric_->fabric_switch(0).register_metrics(registry, "");
  for (std::size_t i = 0; i < fault_injectors_.size(); ++i) {
    fault_injectors_[i]->register_metrics(registry, fault_labels_[i]);
  }
  if (!fault_injectors_.empty()) {
    // Checksum-drop counters join the registry only alongside fault
    // injection (the one source of corrupt frames); fault-free benches keep
    // their exact pre-fault metric set, so figure artifacts stay
    // byte-identical to a build without this subsystem.
    for (stack::Host* host : hosts) {
      const stack::NicStats& nic = host->nic().stats();
      registry.counter_fn("nic.rx_checksum_drops", "host=" + host->name(),
                          [&nic] { return static_cast<double>(nic.rx_checksum_drops); });
    }
  }
  if (target_fw_ != nullptr) target_fw_->register_metrics(registry, "host=target");
  if (client_fw_ != nullptr) client_fw_->register_metrics(registry, "host=client");
  if (iptables_) iptables_->register_metrics(registry, "host=target");
}

void Testbed::register_pool_metrics(telemetry::MetricRegistry& registry) {
  // Frame buffer pool. The pool is thread-local (src/net must not depend
  // on telemetry), so the testbed bridges the calling thread's pool stats
  // into the registry; the samplers are only valid on this thread.
  auto& pool = net::BufferPool::instance();
  auto pool_counter = [&](const char* name,
                          std::uint64_t net::BufferPoolStats::* field) {
    registry.counter_fn(name, "", [&pool, field] {
      return static_cast<double>(pool.stats().*field);
    });
  };
  pool_counter("pool.acquisitions", &net::BufferPoolStats::acquisitions);
  pool_counter("pool.hits", &net::BufferPoolStats::pool_hits);
  pool_counter("pool.misses", &net::BufferPoolStats::pool_misses);
  pool_counter("pool.heap_fallbacks", &net::BufferPoolStats::heap_fallbacks);
  pool_counter("pool.adopted", &net::BufferPoolStats::adopted);
  pool_counter("pool.recycled", &net::BufferPoolStats::recycled);
  pool_counter("pool.heap_frees", &net::BufferPoolStats::heap_frees);
  pool_counter("pool.parses", &net::BufferPoolStats::parses);
  pool_counter("pool.parse_hits", &net::BufferPoolStats::parse_hits);
  registry.counter_fn("pool.allocations", "", [&pool] {
    return static_cast<double>(pool.stats().allocations());
  });
  registry.gauge("pool.live_buffers", "", [&pool] {
    return static_cast<double>(pool.live_buffers());
  });
  registry.gauge("pool.free_buffers", "", [&pool] {
    return static_cast<double>(pool.free_buffers());
  });
}

void Testbed::register_scheduler_metrics(telemetry::MetricRegistry& registry) {
  // Event-engine internals. Samplers read the live scheduler, so they are
  // only valid while the Simulation outlives the registry's sampling.
  auto& sched = sim_.scheduler();
  registry.gauge("sched.pending", "", [&sched] {
    return static_cast<double>(sched.stats().pending);
  });
  registry.gauge("sched.tombstones", "", [&sched] {
    return static_cast<double>(sched.stats().tombstones);
  });
  registry.gauge("sched.slab_records", "", [&sched] {
    return static_cast<double>(sched.stats().slab_records);
  });
  registry.counter_fn("sched.events_executed", "", [&sched] {
    return static_cast<double>(sched.stats().events_executed);
  });
  registry.counter_fn("sched.cascades", "", [&sched] {
    return static_cast<double>(sched.stats().cascades);
  });
  registry.counter_fn("sched.overflow_migrations", "", [&sched] {
    return static_cast<double>(sched.stats().overflow_migrations);
  });
  registry.counter_fn("sched.compactions", "", [&sched] {
    return static_cast<double>(sched.stats().compactions);
  });
}

void Testbed::settle() {
  if (!config_.use_policy_server || target_fw_ == nullptr) return;
  const std::uint64_t want_target = policy_server_->policy_version(addr_.target);
  const std::uint64_t want_client =
      client_agent_ ? policy_server_->policy_version(addr_.client) : 0;
  for (int i = 0; i < 500; ++i) {
    sim_.run_for(sim::Duration::milliseconds(10));
    const auto& agents = policy_server_->agents();
    const auto tit = agents.find(addr_.target);
    const bool target_ok = tit != agents.end() && tit->second.acked_version >= want_target;
    bool client_ok = true;
    if (client_agent_) {
      const auto cit = agents.find(addr_.client);
      client_ok = cit != agents.end() && cit->second.acked_version >= want_client;
    }
    if (target_ok && client_ok) return;
  }
  BARB_WARN("testbed: policy distribution did not settle within 5s of sim time");
}

}  // namespace barb::core
