// Result-table rendering for the benchmark binaries: aligned ASCII for the
// console plus CSV for plotting.
#pragma once

#include <string>
#include <vector>

namespace barb::core {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells);

  std::string to_string() const;
  std::string to_csv() const;

  // Raw access for machine-readable exporters (telemetry bench artifacts).
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Fixed-precision formatting helpers.
std::string fmt(double value, int precision = 1);
std::string fmt_int(double value);

}  // namespace barb::core
