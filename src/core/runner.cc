#include "core/runner.h"

#include <cstdlib>
#include <string_view>

namespace barb::core {

namespace {

// splitmix64 finalizer: full-avalanche 64-bit mix.
std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t derive_point_seed(std::uint64_t base_seed,
                                std::uint64_t point_index) {
  // Mix the pair through two rounds with distinct odd constants so that
  // (base, i) and (base + 1, i - 1)-style collisions cannot happen by
  // construction of a single additive combination.
  return mix64(mix64(base_seed ^ 0x9e3779b97f4a7c15ULL) +
               point_index * 0xd1342543de82ef95ULL + 1);
}

int resolve_jobs(int requested) {
  if (requested >= 1) return requested;
  if (requested == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return 1;
}

int jobs_from_cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--jobs" && i + 1 < argc) {
      return resolve_jobs(std::atoi(argv[i + 1]));
    }
    if (arg.rfind("--jobs=", 0) == 0) {
      return resolve_jobs(std::atoi(argv[i] + 7));
    }
  }
  if (const char* env = std::getenv("BARB_JOBS"); env != nullptr && *env != '\0') {
    return resolve_jobs(std::atoi(env));
  }
  return 1;
}

}  // namespace barb::core
