#include "core/report.h"

#include <algorithm>
#include <cstdio>

#include "util/assert.h"

namespace barb::core {

void TextTable::add_row(std::vector<std::string> cells) {
  BARB_ASSERT(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += "| ";
      line += row[c];
      line.append(widths[c] - row[c].size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };

  std::string sep = "+";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    sep.append(widths[c] + 2, '-');
    sep += "+";
  }
  sep += "\n";

  std::string out = sep + render_row(headers_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

std::string TextTable::to_csv() const {
  auto csv_row = [](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += ",";
      line += row[c];
    }
    line += "\n";
    return line;
  };
  std::string out = csv_row(headers_);
  for (const auto& row : rows_) out += csv_row(row);
  return out;
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_int(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", value);
  return buf;
}

}  // namespace barb::core
