// SweepRunner: shared-nothing parallel execution of independent experiment
// points.
//
// The paper's methodology is a grid sweep — (rule depth x flood rate x
// repetition), averaged — and every point runs in its own freshly seeded
// Simulation (see core/experiments.h). Points therefore share *nothing*:
// each task builds its own Scheduler, Testbed, and MetricRegistry, and the
// only process-wide mutable state on the hot path, the frame BufferPool, is
// thread-local (src/net/frame_buffer.h). That makes the sweep embarrassingly
// parallel, and the runner exploits it with a plain thread pool.
//
// Determinism contract — artifacts are byte-identical for any worker count:
//  * Every point's RNG seed is derived as mix(base_seed, point_index), never
//    from "the previous point's state", so a point computes the same result
//    no matter which worker runs it or in what order points complete.
//  * Results land in a slot-per-point vector (slot = enqueue index); callers
//    aggregate and emit artifacts by iterating slots in index order, so the
//    collection order is independent of the completion order.
//  * jobs == 1 runs every task inline on the calling thread in index order —
//    the exact serial path, no threads spawned.
//
// Error contract: a throwing task never takes down other points. Exceptions
// are captured per slot while the sweep drains; afterwards the lowest-index
// one is rethrown (deterministically, regardless of completion order).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace barb::core {

// Deterministic seed for sweep point `point_index` under `base_seed`:
// splitmix64-style avalanche of the pair, so neighbouring indices yield
// statistically independent xoshiro streams (sim::Random re-expands the
// result through splitmix64 again). Stable across platforms and releases —
// recorded artifacts depend on it.
std::uint64_t derive_point_seed(std::uint64_t base_seed,
                                std::uint64_t point_index);

// One task's identity within a sweep.
struct SweepPoint {
  std::size_t index = 0;    // slot in the result vector
  std::uint64_t seed = 0;   // derive_point_seed(base_seed, index)
};

// Worker count resolution: `requested` >= 1 is taken as-is; 0 means "one
// worker per hardware thread"; negative falls back to 1 (serial).
int resolve_jobs(int requested);

// Parses `--jobs N` / `--jobs=N` from argv. Absent that, $BARB_JOBS; absent
// that, 1 — parallelism is strictly opt-in, and `--jobs 1` is the exact
// serial path. The returned value has been through resolve_jobs().
int jobs_from_cli(int argc, char** argv);

class SweepRunner {
 public:
  struct Options {
    int jobs = 1;                 // resolved through resolve_jobs()
    std::uint64_t base_seed = 1;  // root of every point's derived seed
    // Threads each point consumes beyond the sweep worker itself — e.g. the
    // parallel DES engine's shard count. The worker pool shrinks to
    // max(1, jobs / threads_per_point) so --jobs stays the total thread
    // budget whether the parallelism lives across points or inside one.
    // Results are unaffected (the determinism contract holds per point).
    int threads_per_point = 1;
  };

  explicit SweepRunner(Options options)
      : jobs_(std::max(1, resolve_jobs(options.jobs) /
                              std::max(1, options.threads_per_point))),
        base_seed_(options.base_seed) {}
  SweepRunner() : SweepRunner(Options{}) {}

  int jobs() const { return jobs_; }
  std::uint64_t base_seed() const { return base_seed_; }

  // Runs every task exactly once and returns their results slot-per-point
  // (result i came from tasks[i]). Tasks must be self-contained: anything
  // they touch concurrently must be owned by the task or immutable.
  template <typename R>
  std::vector<R> run(std::vector<std::function<R(const SweepPoint&)>> tasks) {
    std::vector<R> results(tasks.size());
    for_each_point(tasks.size(), [&](const SweepPoint& point) {
      results[point.index] = tasks[point.index](point);
    });
    return results;
  }

  // Grid form: one function applied to indices [0, count). The function
  // receives the point (index + derived seed) and its result lands in
  // slot `index`.
  template <typename R>
  std::vector<R> run_indexed(std::size_t count,
                             std::function<R(const SweepPoint&)> fn) {
    std::vector<R> results(count);
    for_each_point(count, [&](const SweepPoint& point) {
      results[point.index] = fn(point);
    });
    return results;
  }

  // Core loop shared by the typed wrappers: invokes `body` once per point,
  // inline and in index order when jobs()==1, otherwise from a pool of
  // min(jobs, count) workers pulling indices off a shared atomic counter.
  // Rethrows the lowest-index captured exception after every point ran.
  template <typename Body>
  void for_each_point(std::size_t count, Body&& body) {
    std::vector<std::exception_ptr> errors(count);
    auto run_one = [&](std::size_t i) {
      const SweepPoint point{i, derive_point_seed(base_seed_, i)};
      try {
        body(point);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    };

    const std::size_t workers =
        count < static_cast<std::size_t>(jobs_) ? count
                                                : static_cast<std::size_t>(jobs_);
    if (workers <= 1) {
      for (std::size_t i = 0; i < count; ++i) run_one(i);
    } else {
      std::atomic<std::size_t> next{0};
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (std::size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
          for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
               i < count; i = next.fetch_add(1, std::memory_order_relaxed)) {
            run_one(i);
          }
        });
      }
      for (auto& t : pool) t.join();
    }

    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }

 private:
  int jobs_;
  std::uint64_t base_seed_;
};

}  // namespace barb::core
