// Network interface cards.
//
// A Nic sits between a link and a host stack. StandardNic (the paper's Intel
// EEPro 100 baseline) forwards in both directions with no processing cost —
// which the paper experimentally confirmed has no measurable impact. The EFW
// and ADF models subclass Nic in src/firewall.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "link/frame_sink.h"
#include "link/link.h"
#include "net/ethernet.h"
#include "net/frame_view.h"
#include "net/mac_address.h"
#include "sim/simulation.h"

namespace barb::stack {

struct NicStats {
  std::uint64_t rx_frames = 0;        // accepted from the wire
  std::uint64_t rx_delivered = 0;     // handed to the host stack
  std::uint64_t rx_dropped = 0;       // dropped by the NIC (ring/filter)
  // Frames the stack discarded for a failed IPv4/TCP/UDP/ICMP checksum
  // (receive-side verification, the checksum-offload analogue). Counted
  // separately from rx_dropped so bit-corruption experiments can see
  // exactly how much mangled traffic the checksums caught.
  std::uint64_t rx_checksum_drops = 0;
  std::uint64_t tx_requested = 0;     // handed down by the host
  std::uint64_t tx_sent = 0;          // put on the wire
  std::uint64_t tx_dropped = 0;
};

class Nic : public link::FrameSink {
 public:
  Nic(sim::Simulation& sim, net::MacAddress mac, std::string name)
      : sim_(sim), mac_(mac), name_(std::move(name)) {}

  // Attaches this NIC to one side of a link.
  void attach(link::LinkPort& port) {
    port_ = &port;
    port.connect_sink(this);
  }

  // Registers the host stack that receives inbound frames.
  void set_host_sink(link::FrameSink* sink) { host_sink_ = sink; }

  net::MacAddress mac() const { return mac_; }
  const std::string& name() const { return name_; }
  const NicStats& stats() const { return stats_; }
  sim::Simulation& simulation() { return sim_; }
  link::LinkPort* port() { return port_; }

  // Host -> wire path; subclasses may filter, delay, or transform.
  virtual void transmit(net::Packet pkt) = 0;

  // Called by the host stack when receive-side checksum verification
  // rejects a frame this NIC delivered (the drop itself happens in the
  // stack; the NIC owns the counter, as checksum offload hardware would).
  void count_rx_checksum_drop() { ++stats_.rx_checksum_drops; }

 protected:
  // True if the frame is addressed to this NIC (or broadcast/multicast).
  // Uses the frame's cached parse: on a broadcast, the first NIC to look
  // pays for the one parse and every other NIC reads the cache.
  bool addressed_to_us(const net::Packet& pkt) const {
    const net::FrameView* view = pkt.view();
    if (view == nullptr) return false;
    return view->eth.dst == mac_ || view->eth.dst.is_multicast();
  }

  void send_to_wire(net::Packet pkt) {
    if (port_ == nullptr) {
      ++stats_.tx_dropped;
      return;
    }
    ++stats_.tx_sent;
    port_->send(std::move(pkt));
  }

  void deliver_to_host(net::Packet pkt) {
    if (host_sink_ == nullptr) {
      ++stats_.rx_dropped;
      return;
    }
    ++stats_.rx_delivered;
    host_sink_->deliver(std::move(pkt));
  }

  sim::Simulation& sim_;
  net::MacAddress mac_;
  std::string name_;
  link::LinkPort* port_ = nullptr;
  link::FrameSink* host_sink_ = nullptr;
  NicStats stats_;
};

// Plain NIC: both directions pass through unfiltered and undelayed.
class StandardNic : public Nic {
 public:
  using Nic::Nic;

  void transmit(net::Packet pkt) override {
    ++stats_.tx_requested;
    send_to_wire(std::move(pkt));
  }

  void deliver(net::Packet pkt) override {
    ++stats_.rx_frames;
    if (!addressed_to_us(pkt)) {
      ++stats_.rx_dropped;
      return;
    }
    deliver_to_host(std::move(pkt));
  }
};

}  // namespace barb::stack
