#include "stack/host.h"

#include <utility>
#include <vector>

#include "net/checksum.h"
#include "net/icmp.h"
#include "stack/tcp.h"
#include "stack/udp.h"
#include "util/assert.h"
#include "util/logging.h"

namespace barb::stack {

Host::Host(sim::Simulation& sim, std::string name, net::Ipv4Address ip,
           std::unique_ptr<Nic> nic, HostConfig config)
    : sim_(sim),
      name_(std::move(name)),
      ip_(ip),
      nic_(std::move(nic)),
      config_(config),
      icmp_error_limiter_(config.icmp_error_rate_per_sec, 1.0) {
  BARB_ASSERT(nic_ != nullptr);
  nic_->set_host_sink(this);
  udp_ = std::make_unique<UdpLayer>(*this);
  tcp_ = std::make_unique<TcpLayer>(*this);
  arp_.add(ip_, nic_->mac());
}

Host::~Host() = default;

void Host::register_metrics(telemetry::MetricRegistry& registry,
                            const std::string& labels) const {
  auto host_counter = [&](const char* name, const std::uint64_t* field) {
    registry.counter_fn(name, labels,
                       [field] { return static_cast<double>(*field); });
  };
  host_counter("host.ip_rx", &stats_.ip_rx);
  host_counter("host.ip_rx_dropped", &stats_.ip_rx_dropped);
  host_counter("host.ip_tx", &stats_.ip_tx);
  host_counter("host.tcp_rst_sent", &stats_.tcp_rst_sent);
  host_counter("host.icmp_unreachable_sent", &stats_.icmp_unreachable_sent);
  host_counter("host.icmp_unreachable_suppressed", &stats_.icmp_unreachable_suppressed);
  host_counter("host.icmp_echo_replies", &stats_.icmp_echo_replies);

  const NicStats& nic = nic_->stats();
  host_counter("nic.rx_frames", &nic.rx_frames);
  host_counter("nic.rx_delivered", &nic.rx_delivered);
  host_counter("nic.rx_dropped", &nic.rx_dropped);
  host_counter("nic.tx_requested", &nic.tx_requested);
  host_counter("nic.tx_sent", &nic.tx_sent);
  host_counter("nic.tx_dropped", &nic.tx_dropped);

  tcp_->register_metrics(registry, labels);
}

UdpSocket* Host::udp_open(std::uint16_t local_port) { return udp_->open(local_port); }

TcpListener* Host::tcp_listen(
    std::uint16_t port, std::function<void(std::shared_ptr<TcpConnection>)> on_accept) {
  return tcp_->listen(port, std::move(on_accept));
}

std::shared_ptr<TcpConnection> Host::tcp_connect(net::Ipv4Address dst,
                                                 std::uint16_t dst_port) {
  return tcp_->connect(dst, dst_port);
}

std::uint16_t Host::allocate_ephemeral_port() {
  for (int attempts = 0; attempts < 28000; ++attempts) {
    const std::uint16_t port = next_ephemeral_;
    next_ephemeral_ = next_ephemeral_ >= 60999 ? 32768 : next_ephemeral_ + 1;
    if (!udp_->port_in_use(port) && !tcp_->port_in_use(port)) return port;
  }
  BARB_WARN("%s: ephemeral port space exhausted", name_.c_str());
  return 0;
}

bool Host::send_ip(net::IpProtocol protocol, net::Ipv4Address dst,
                   std::span<const std::uint8_t> ip_payload) {
  const auto dst_mac = arp_.lookup(dst);
  if (!dst_mac) {
    BARB_DEBUG("%s: no ARP entry for %s", name_.c_str(), dst.to_string().c_str());
    return false;
  }
  net::IpEndpoints ep;
  ep.src_ip = ip_;
  ep.dst_ip = dst;
  ep.src_mac = nic_->mac();
  ep.dst_mac = *dst_mac;
  auto frame = net::build_ipv4_frame_pooled(net::BufferPool::instance(), ep,
                                            protocol, ip_payload, next_ip_id());
  ++stats_.ip_tx;
  send_frame(net::Packet{std::move(frame), sim_.now(), next_packet_id()});
  return true;
}

void Host::send_frame(net::Packet pkt) {
  if (filter_ != nullptr) {
    filter_->filter(FilterDirection::kOutput, std::move(pkt),
                    [this](net::Packet allowed) { nic_->transmit(std::move(allowed)); });
    return;
  }
  nic_->transmit(std::move(pkt));
}

void Host::deliver(net::Packet pkt) {
  if (filter_ != nullptr) {
    filter_->filter(FilterDirection::kInput, std::move(pkt),
                    [this](net::Packet allowed) { ip_input(std::move(allowed)); });
    return;
  }
  ip_input(std::move(pkt));
}

void Host::ip_input(net::Packet pkt) {
  // Cached parse: by now the switch and the NIC have already looked at this
  // frame, so this is a cache read, not a header walk.
  const net::FrameView* v = pkt.view();
  if (v == nullptr || !v->ip) {
    ++stats_.ip_rx_dropped;
    return;
  }
  if (v->ip->dst != ip_ && v->ip->dst != net::Ipv4Address::broadcast()) {
    ++stats_.ip_rx_dropped;
    return;
  }
  ++stats_.ip_rx;

  if (!verify_transport_checksum(*v)) {
    nic_->count_rx_checksum_drop();
    return;
  }

  if (v->tcp) {
    tcp_->handle_segment(*v);
    return;
  }
  if (v->udp) {
    if (!udp_->handle_datagram(*v)) {
      send_icmp_port_unreachable(*v);
    }
    return;
  }
  if (v->icmp) {
    handle_icmp(*v);
    return;
  }
  // Unknown protocol at the host (e.g. a stray VPG frame the NIC did not
  // decapsulate): drop.
  ++stats_.ip_rx_dropped;
}

// Receive-side checksum verification (what checksum-offload hardware does
// before handing a frame up). The IPv4 header checksum was already verified
// during parse; this covers the transport layer. A UDP checksum of zero
// means "not computed" (RFC 768) and is accepted.
bool Host::verify_transport_checksum(const net::FrameView& v) const {
  if (v.tcp) {
    return net::transport_checksum(v.ip->src, v.ip->dst,
                                   static_cast<std::uint8_t>(net::IpProtocol::kTcp),
                                   v.l3_payload) == 0;
  }
  if (v.udp) {
    if (v.udp->checksum == 0) return true;
    if (v.udp->length > v.l3_payload.size()) return false;
    return net::transport_checksum(v.ip->src, v.ip->dst,
                                   static_cast<std::uint8_t>(net::IpProtocol::kUdp),
                                   v.l3_payload.first(v.udp->length)) == 0;
  }
  if (v.icmp) {
    return net::internet_checksum(v.l3_payload) == 0;
  }
  return true;
}

bool Host::send_echo_request(net::Ipv4Address dst, std::uint16_t id,
                             std::uint16_t seq, std::size_t payload_bytes) {
  const auto dst_mac = arp_.lookup(dst);
  if (!dst_mac) return false;
  net::IpEndpoints ep;
  ep.src_ip = ip_;
  ep.dst_ip = dst;
  ep.src_mac = nic_->mac();
  ep.dst_mac = *dst_mac;
  const std::vector<std::uint8_t> payload(payload_bytes, 0x5a);
  auto frame = net::build_icmp_frame_pooled(
      net::BufferPool::instance(), ep,
      static_cast<std::uint8_t>(net::IcmpType::kEchoRequest), 0,
      static_cast<std::uint32_t>(id) << 16 | seq, payload, next_ip_id());
  ++stats_.ip_tx;
  send_frame(net::Packet{std::move(frame), sim_.now(), next_packet_id()});
  return true;
}

void Host::handle_icmp(const net::FrameView& v) {
  if (v.icmp->type == static_cast<std::uint8_t>(net::IcmpType::kEchoReply)) {
    if (echo_reply_handler_) {
      echo_reply_handler_(v.ip->src, static_cast<std::uint16_t>(v.icmp->rest >> 16),
                          static_cast<std::uint16_t>(v.icmp->rest));
    }
    return;
  }
  if (v.icmp->type == static_cast<std::uint8_t>(net::IcmpType::kEchoRequest)) {
    const auto dst_mac = arp_.lookup(v.ip->src);
    if (!dst_mac) return;
    net::IpEndpoints ep;
    ep.src_ip = ip_;
    ep.dst_ip = v.ip->src;
    ep.src_mac = nic_->mac();
    ep.dst_mac = *dst_mac;
    auto frame = net::build_icmp_frame_pooled(
        net::BufferPool::instance(), ep,
        static_cast<std::uint8_t>(net::IcmpType::kEchoReply), 0, v.icmp->rest,
        v.l4_payload, next_ip_id());
    ++stats_.icmp_echo_replies;
    ++stats_.ip_tx;
    send_frame(net::Packet{std::move(frame), sim_.now(), next_packet_id()});
  }
  // Destination-unreachable and echo replies are counted by interested
  // sockets/apps; the base stack drops them silently like a host with no
  // listener would.
}

void Host::send_icmp_port_unreachable(const net::FrameView& original) {
  // Linux rate-limits ICMP errors (icmp_ratelimit); a UDP flood therefore
  // produces almost no response traffic, unlike a TCP flood's RSTs.
  if (!icmp_error_limiter_.try_consume(sim_.now())) {
    ++stats_.icmp_unreachable_suppressed;
    return;
  }
  const auto dst_mac = arp_.lookup(original.ip->src);
  if (!dst_mac) return;

  // Quote the original IP header + first 8 payload bytes, per RFC 792.
  std::vector<std::uint8_t> quote;
  ByteWriter qw(quote);
  original.ip->serialize(qw);
  const auto head = original.l3_payload.first(std::min<std::size_t>(8, original.l3_payload.size()));
  qw.bytes(head);

  net::IpEndpoints ep;
  ep.src_ip = ip_;
  ep.dst_ip = original.ip->src;
  ep.src_mac = nic_->mac();
  ep.dst_mac = *dst_mac;
  auto frame = net::build_icmp_frame_pooled(
      net::BufferPool::instance(), ep,
      static_cast<std::uint8_t>(net::IcmpType::kDestinationUnreachable),
      net::kIcmpCodePortUnreachable, 0, quote, next_ip_id());
  ++stats_.icmp_unreachable_sent;
  ++stats_.ip_tx;
  send_frame(net::Packet{std::move(frame), sim_.now(), next_packet_id()});
}

}  // namespace barb::stack
