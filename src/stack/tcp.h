// TCP (RFC 793 + Reno congestion control, RFC 5681/6298 style).
//
// Feature set matches what the paper's experiments exercise on Linux 2.4
// endpoints: three-way handshake with MSS negotiation, cumulative ACKs with
// delayed ACK, sliding window bounded by min(cwnd, peer window), slow start /
// congestion avoidance / fast retransmit / fast recovery, exponential RTO
// backoff with Karn's rule, out-of-order reassembly, graceful FIN teardown
// with TIME_WAIT, RST generation for segments to closed ports (the response
// traffic that halves flood tolerance in the "allow" experiments).
//
// Documented deviations from a production stack: fixed receive window (no
// window scaling — irrelevant at 100 Mbps LAN RTTs), no SACK, no Nagle
// (senders write in large chunks), TIME_WAIT shortened to 1 s so long
// experiment runs do not exhaust the ephemeral port space.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/five_tuple.h"
#include "net/frame_view.h"
#include "net/tcp_header.h"
#include "sim/scheduler.h"
#include "sim/time.h"
#include "telemetry/registry.h"

namespace barb::stack {

class Host;
class TcpLayer;
class TcpListener;

// 32-bit sequence-space comparisons (valid while distances stay < 2^31).
constexpr bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
constexpr bool seq_le(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
constexpr bool seq_gt(std::uint32_t a, std::uint32_t b) { return seq_lt(b, a); }
constexpr bool seq_ge(std::uint32_t a, std::uint32_t b) { return seq_le(b, a); }

enum class TcpState {
  kClosed,
  kSynSent,
  kSynRcvd,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kClosing,
  kTimeWait,
  kCloseWait,
  kLastAck,
};

const char* to_string(TcpState state);

struct TcpConfig {
  std::uint16_t mss = 1460;
  std::uint16_t receive_window = 65535;
  std::size_t send_buffer_cap = 256 * 1024;
  sim::Duration min_rto = sim::Duration::milliseconds(200);
  sim::Duration max_rto = sim::Duration::seconds(60);
  sim::Duration initial_rto = sim::Duration::seconds(1);
  sim::Duration delayed_ack = sim::Duration::milliseconds(40);
  sim::Duration time_wait = sim::Duration::seconds(1);
  int syn_retries = 5;
  int rto_retries = 10;  // give up after this many consecutive timeouts
};

struct TcpConnectionStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t segments_received = 0;
  std::uint64_t bytes_sent = 0;      // payload bytes, first transmission
  std::uint64_t bytes_acked = 0;     // payload bytes acknowledged by the peer
  std::uint64_t bytes_received = 0;  // payload bytes delivered in order
  std::uint64_t retransmissions = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t fast_retransmits = 0;
};

class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
 public:
  // --- application callbacks (all optional) ---
  // Applications routinely capture the connection's own shared_ptr in these
  // (e.g. `conn->on_peer_closed = [conn] { conn->close(); }`), which forms a
  // self-cycle. The stack breaks it: to_closed() clears every callback after
  // firing on_closed, and ~TcpLayer() clears them on connections still alive
  // at teardown, so the last external shared_ptr going away always frees the
  // connection (LeakSanitizer runs with detect_leaks=1 on this basis).
  std::function<void()> on_connected;
  std::function<void(std::span<const std::uint8_t>)> on_data;
  std::function<void()> on_peer_closed;  // FIN received (EOF)
  std::function<void()> on_closed;       // connection fully gone (incl. RST)
  std::function<void()> on_send_space;   // send buffer has room again

  ~TcpConnection();

  // Drops all five application callbacks (and any shared_ptrs they captured).
  void reset_callbacks();

  // Live TcpConnection objects in this process, across all threads — the
  // ownership-cycle regression tests assert this returns to zero once every
  // stack and application handle is gone.
  static std::int64_t live_instances();

  TcpState state() const { return state_; }
  // Local-perspective tuple (src = this host).
  const net::FiveTuple& key() const { return key_; }
  const TcpConnectionStats& stats() const { return stats_; }
  std::uint16_t mss() const { return mss_; }
  double cwnd_bytes() const { return cwnd_; }
  sim::Duration smoothed_rtt() const { return sim::Duration::from_seconds(srtt_); }

  // Queues data for transmission; returns the number of bytes accepted
  // (bounded by send-buffer space).
  std::size_t send(std::span<const std::uint8_t> data);
  std::size_t send_space() const;

  // Graceful close (FIN after queued data). Further send() calls fail.
  void close();
  // Hard close: sends RST, drops everything.
  void abort();

  // --- used by TcpLayer ---
  void handle_segment(const net::TcpHeader& h, std::span<const std::uint8_t> payload);

 private:
  friend class TcpLayer;

  TcpConnection(TcpLayer& layer, const net::FiveTuple& key, TcpConfig config);

  void start_active_open();
  void start_passive_open(const net::TcpHeader& syn);

  void handle_syn_sent(const net::TcpHeader& h);
  void process_ack(const net::TcpHeader& h);
  void process_data(const net::TcpHeader& h, std::span<const std::uint8_t> payload);
  void deliver_reassembled();
  void maybe_complete_fin_handshake();

  void output();
  void emit(std::uint8_t flags, std::uint32_t seq, std::span<const std::uint8_t> payload,
            bool retransmission);
  void send_ack_now();
  void schedule_delayed_ack();
  void retransmit_head();

  void arm_rtx_timer();
  void on_rto();
  void update_rtt(double sample_seconds);
  sim::Duration current_rto() const;

  void enter_established();
  void enter_time_wait();
  void to_closed(bool reset);

  std::uint32_t flight_size() const { return snd_nxt_ - snd_una_; }
  std::size_t unsent_bytes() const;

  TcpLayer& layer_;
  net::FiveTuple key_;
  TcpConfig cfg_;
  TcpState state_ = TcpState::kClosed;

  // Send side. send_buf_ holds payload bytes starting at sequence
  // send_buf_seq_ (== snd_una_ once established, unless a FIN is in flight).
  std::uint32_t iss_ = 0;
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  std::uint32_t snd_max_ = 0;  // highest sequence ever sent (for go-back-N)
  std::uint32_t snd_wnd_ = 0;
  std::uint32_t send_buf_seq_ = 0;
  std::deque<std::uint8_t> send_buf_;
  bool fin_queued_ = false;
  bool fin_sent_ = false;
  std::uint32_t fin_seq_ = 0;
  std::uint16_t mss_ = 536;

  // Congestion control (bytes; double so congestion avoidance accumulates).
  double cwnd_ = 0;
  double ssthresh_ = 1e9;
  int dup_acks_ = 0;
  bool in_fast_recovery_ = false;

  // Receive side.
  std::uint32_t irs_ = 0;
  std::uint32_t rcv_nxt_ = 0;
  struct SeqLess {
    bool operator()(std::uint32_t a, std::uint32_t b) const { return seq_lt(a, b); }
  };
  std::map<std::uint32_t, std::vector<std::uint8_t>, SeqLess> reassembly_;
  bool fin_received_ = false;
  std::uint32_t fin_rcv_seq_ = 0;

  // RTT estimation (seconds).
  bool rtt_sampling_ = false;
  std::uint32_t rtt_seq_ = 0;
  sim::TimePoint rtt_sent_at_;
  double srtt_ = 0;
  double rttvar_ = 0;
  bool rtt_valid_ = false;
  int backoff_ = 0;
  int consecutive_timeouts_ = 0;

  sim::EventHandle rtx_timer_;
  sim::EventHandle delack_timer_;
  sim::EventHandle timewait_timer_;
  int unacked_segments_ = 0;  // received-with-data since last ACK sent
  bool accept_pending_ = false;  // passive open not yet handed to the listener
  TcpListener* backlog_listener_ = nullptr;  // holds our half-open slot

  TcpConnectionStats stats_;
};

class TcpListener {
 public:
  using AcceptFn = std::function<void(std::shared_ptr<TcpConnection>)>;

  std::uint16_t port() const { return port_; }
  // Stops accepting; existing connections are unaffected. The pointer is
  // dead afterwards.
  void close();

  // SYN backlog: half-open (SYN_RCVD) connections this listener tolerates;
  // further SYNs are silently dropped, the classic SYN-flood choke point on
  // paper-era stacks.
  std::size_t backlog = 128;
  std::size_t half_open() const { return half_open_; }
  std::uint64_t syn_drops() const { return syn_drops_; }

 private:
  friend class TcpLayer;
  friend class TcpConnection;
  TcpListener(TcpLayer& layer, std::uint16_t port, AcceptFn on_accept)
      : layer_(layer), port_(port), on_accept_(std::move(on_accept)) {}

  TcpLayer& layer_;
  std::uint16_t port_;
  AcceptFn on_accept_;
  std::size_t half_open_ = 0;
  std::uint64_t syn_drops_ = 0;
};

class TcpLayer {
 public:
  explicit TcpLayer(Host& host) : host_(host) {}
  // Breaks application-callback self-cycles on connections still alive at
  // teardown (see TcpConnection callback comment).
  ~TcpLayer();

  void handle_segment(const net::FrameView& v);

  TcpListener* listen(std::uint16_t port, TcpListener::AcceptFn on_accept);
  std::shared_ptr<TcpConnection> connect(net::Ipv4Address dst, std::uint16_t dst_port);

  bool port_in_use(std::uint16_t port) const;
  std::size_t connection_count() const { return connections_.size(); }

  // Host-wide cumulative stats: closed connections' totals plus everything
  // the live connections have accumulated so far.
  TcpConnectionStats aggregate_stats() const;
  // Sum of live connections' congestion windows (bytes).
  double total_cwnd_bytes() const;

  // Registers "tcp.*" counters (segments, bytes, retransmits, timeouts) and
  // gauges (live connections, total cwnd) for this host's stack.
  void register_metrics(telemetry::MetricRegistry& registry,
                        const std::string& labels) const;

 private:
  friend class TcpConnection;
  friend class TcpListener;

  Host& host() { return host_; }
  TcpConfig make_config() const;
  void notify_accept(const std::shared_ptr<TcpConnection>& conn);
  // Serializes and sends one segment for a local-perspective tuple.
  void send_segment(const net::FiveTuple& key, net::TcpHeader header,
                    std::span<const std::uint8_t> payload);
  void send_rst_for(const net::FrameView& v);
  void remove(const net::FiveTuple& key);
  void close_listener(TcpListener* listener);

  Host& host_;
  std::unordered_map<net::FiveTuple, std::shared_ptr<TcpConnection>> connections_;
  std::unordered_map<std::uint16_t, std::unique_ptr<TcpListener>> listeners_;
  TcpConnectionStats closed_totals_;  // accumulated when connections are removed
};

}  // namespace barb::stack
