// Host-resident packet filter hook (the iptables attachment point).
//
// The hook is asynchronous so a filter can model host-CPU queueing delay:
// the filter calls `resume` with the packet once (and only if) it passes.
#pragma once

#include <functional>

#include "net/packet.h"

namespace barb::stack {

enum class FilterDirection { kInput, kOutput };

class HostPacketFilter {
 public:
  virtual ~HostPacketFilter() = default;

  using Resume = std::function<void(net::Packet)>;

  // Filters a packet traversing the host stack. Implementations either drop
  // the packet (never calling resume) or call resume exactly once, possibly
  // after simulated processing delay.
  virtual void filter(FilterDirection direction, net::Packet pkt, Resume resume) = 0;
};

}  // namespace barb::stack
