// UDP sockets.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>

#include "net/frame_view.h"
#include "net/ipv4_address.h"

namespace barb::stack {

class Host;
class UdpLayer;

class UdpSocket {
 public:
  // Callback for received datagrams: (source ip, source port, payload).
  using Receiver =
      std::function<void(net::Ipv4Address, std::uint16_t, std::span<const std::uint8_t>)>;

  std::uint16_t local_port() const { return local_port_; }
  void set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }

  // Sends a datagram; returns false if the destination is unresolvable or
  // the payload exceeds what fits in one MTU (no fragmentation).
  bool send_to(net::Ipv4Address dst, std::uint16_t dst_port,
               std::span<const std::uint8_t> payload);

  // Unbinds and destroys this socket (the pointer is dead afterwards).
  void close();

  std::uint64_t datagrams_received() const { return datagrams_received_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  friend class UdpLayer;
  UdpSocket(UdpLayer& layer, std::uint16_t port) : layer_(layer), local_port_(port) {}

  UdpLayer& layer_;
  std::uint16_t local_port_;
  Receiver receiver_;
  std::uint64_t datagrams_received_ = 0;
  std::uint64_t bytes_received_ = 0;
};

class UdpLayer {
 public:
  explicit UdpLayer(Host& host) : host_(host) {}

  // Returns nullptr if the port is taken or no ephemeral port is free.
  UdpSocket* open(std::uint16_t local_port);
  void close(UdpSocket* socket);

  // Returns true if a socket consumed the datagram; false triggers ICMP
  // port-unreachable in the host.
  bool handle_datagram(const net::FrameView& v);

  bool port_in_use(std::uint16_t port) const {
    return sockets_.contains(port);
  }

 private:
  friend class UdpSocket;

  Host& host_;
  std::unordered_map<std::uint16_t, std::unique_ptr<UdpSocket>> sockets_;
};

}  // namespace barb::stack
