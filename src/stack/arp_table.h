// Static ARP table.
//
// The testbed is one switched subnet; the testbed builder installs every
// host's mapping up front (the paper's results do not depend on ARP
// dynamics, and a resolution protocol would only add noise to the
// measurements).
//
// Fleet topologies do not replicate the full mesh into every host: the
// TopologyBuilder installs one shared AddressDirectory (see
// stack/address_directory.h) and each host's table consults it when the
// private map misses. Private entries added with add() win over the
// directory, so tests and overrides keep working unchanged.
#pragma once

#include <optional>
#include <unordered_map>

#include "net/ipv4_address.h"
#include "net/mac_address.h"
#include "stack/address_directory.h"

namespace barb::stack {

class ArpTable {
 public:
  void add(net::Ipv4Address ip, net::MacAddress mac) { table_[ip] = mac; }

  // Shared fallback consulted after the private map (not owned; must outlive
  // this table and be frozen before lookups).
  void set_directory(const AddressDirectory* directory) { directory_ = directory; }
  const AddressDirectory* directory() const { return directory_; }

  std::optional<net::MacAddress> lookup(net::Ipv4Address ip) const {
    auto it = table_.find(ip);
    if (it != table_.end()) return it->second;
    if (directory_ != nullptr) return directory_->lookup(ip);
    return std::nullopt;
  }

  // Private entries only (the shared directory is counted once per fleet).
  std::size_t size() const { return table_.size(); }

  // Heap footprint of the private map. The shared directory's footprint is
  // reported by the topology that owns it, not double-counted per host.
  std::size_t memory_bytes() const {
    return table_.size() * (sizeof(std::pair<net::Ipv4Address, net::MacAddress>) +
                            2 * sizeof(void*)) +
           table_.bucket_count() * sizeof(void*);
  }

 private:
  std::unordered_map<net::Ipv4Address, net::MacAddress> table_;
  const AddressDirectory* directory_ = nullptr;
};

}  // namespace barb::stack
