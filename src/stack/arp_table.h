// Static ARP table.
//
// The testbed is one switched subnet; the testbed builder installs every
// host's mapping up front (the paper's results do not depend on ARP
// dynamics, and a resolution protocol would only add noise to the
// measurements).
#pragma once

#include <optional>
#include <unordered_map>

#include "net/ipv4_address.h"
#include "net/mac_address.h"

namespace barb::stack {

class ArpTable {
 public:
  void add(net::Ipv4Address ip, net::MacAddress mac) { table_[ip] = mac; }

  std::optional<net::MacAddress> lookup(net::Ipv4Address ip) const {
    auto it = table_.find(ip);
    if (it == table_.end()) return std::nullopt;
    return it->second;
  }

  std::size_t size() const { return table_.size(); }

 private:
  std::unordered_map<net::Ipv4Address, net::MacAddress> table_;
};

}  // namespace barb::stack
