// Shared fleet address directory.
//
// The 4-host testbed gives every host its own full-mesh ArpTable — O(N) maps
// of O(N) entries, fine for four hosts, quadratic for a thousand. A fleet
// topology instead builds one immutable AddressDirectory (all host IP→MAC
// bindings, MACs interned, entries sorted by IP for binary search) and every
// host's ArpTable falls back to it: per-fleet memory is O(N) total, eight
// bytes per host entry, and hosts keep their private table for overrides.
//
// The directory is frozen before traffic starts (freeze() sorts the entries);
// lookups on an unfrozen directory are a bug, not a race — the simulator is
// single-threaded per simulation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/intern.h"
#include "net/ipv4_address.h"
#include "net/mac_address.h"
#include "util/assert.h"

namespace barb::stack {

class AddressDirectory {
 public:
  void add(net::Ipv4Address ip, net::MacAddress mac) {
    BARB_ASSERT_MSG(!frozen_, "directory is immutable after freeze()");
    entries_.push_back(Entry{ip.value(), macs_.intern(mac)});
  }

  // Sorts the index; the directory is immutable (and lookup-ready) after.
  void freeze() {
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry& a, const Entry& b) { return a.ip < b.ip; });
    frozen_ = true;
  }

  std::optional<net::MacAddress> lookup(net::Ipv4Address ip) const {
    BARB_ASSERT_MSG(frozen_, "freeze() the directory before lookups");
    const std::uint32_t key = ip.value();
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const Entry& e, std::uint32_t k) { return e.ip < k; });
    if (it == entries_.end() || it->ip != key) return std::nullopt;
    return macs_.get(it->mac);
  }

  std::size_t size() const { return entries_.size(); }
  bool frozen() const { return frozen_; }

  // Total heap footprint of the shared directory (entries + interned MACs).
  std::size_t memory_bytes() const {
    return entries_.capacity() * sizeof(Entry) + macs_.memory_bytes();
  }

 private:
  struct Entry {
    std::uint32_t ip;
    net::InternHandle mac;
  };

  std::vector<Entry> entries_;
  net::MacInterner macs_;
  bool frozen_ = false;
};

}  // namespace barb::stack
