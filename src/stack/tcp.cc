#include "stack/tcp.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "net/checksum.h"
#include "stack/host.h"
#include "util/assert.h"
#include "util/byte_io.h"
#include "util/logging.h"

namespace barb::stack {

using net::TcpFlags;

const char* to_string(TcpState state) {
  switch (state) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynRcvd: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kTimeWait: return "TIME_WAIT";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kLastAck: return "LAST_ACK";
  }
  return "?";
}

// ---------------------------------------------------------------- connection

namespace {
// Atomic because sweep-runner workers create and destroy connections on
// several threads at once; the counter is diagnostic only.
std::atomic<std::int64_t> g_live_connections{0};
}  // namespace

TcpConnection::TcpConnection(TcpLayer& layer, const net::FiveTuple& key,
                             TcpConfig config)
    : layer_(layer), key_(key), cfg_(config) {
  g_live_connections.fetch_add(1, std::memory_order_relaxed);
}

TcpConnection::~TcpConnection() {
  g_live_connections.fetch_sub(1, std::memory_order_relaxed);
}

std::int64_t TcpConnection::live_instances() {
  return g_live_connections.load(std::memory_order_relaxed);
}

void TcpConnection::reset_callbacks() {
  on_connected = nullptr;
  on_data = nullptr;
  on_peer_closed = nullptr;
  on_closed = nullptr;
  on_send_space = nullptr;
}

std::size_t TcpConnection::unsent_bytes() const {
  const std::uint32_t data_end =
      send_buf_seq_ + static_cast<std::uint32_t>(send_buf_.size());
  if (seq_ge(snd_nxt_, data_end)) return 0;
  return data_end - snd_nxt_;
}

std::size_t TcpConnection::send_space() const {
  if (fin_queued_ || state_ == TcpState::kClosed) return 0;
  return cfg_.send_buffer_cap - std::min(cfg_.send_buffer_cap, send_buf_.size());
}

std::size_t TcpConnection::send(std::span<const std::uint8_t> data) {
  if (fin_queued_) return 0;
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait &&
      state_ != TcpState::kSynSent && state_ != TcpState::kSynRcvd) {
    return 0;
  }
  const std::size_t n = std::min(data.size(), send_space());
  send_buf_.insert(send_buf_.end(), data.begin(), data.begin() + static_cast<long>(n));
  if (state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait) output();
  return n;
}

void TcpConnection::close() {
  switch (state_) {
    case TcpState::kSynSent:
      to_closed(false);
      break;
    case TcpState::kSynRcvd:
    case TcpState::kEstablished:
      fin_queued_ = true;
      state_ = TcpState::kFinWait1;
      output();
      break;
    case TcpState::kCloseWait:
      fin_queued_ = true;
      state_ = TcpState::kLastAck;
      output();
      break;
    default:
      break;  // already closing or closed
  }
}

void TcpConnection::abort() {
  if (state_ == TcpState::kClosed) return;
  if (state_ != TcpState::kSynSent && state_ != TcpState::kTimeWait) {
    net::TcpHeader h;
    h.flags = TcpFlags::kRst | TcpFlags::kAck;
    h.seq = snd_nxt_;
    h.ack = rcv_nxt_;
    h.window = 0;
    layer_.send_segment(key_, h, {});
  }
  to_closed(true);
}

void TcpConnection::start_active_open() {
  auto& rng = layer_.host().simulation().rng();
  iss_ = static_cast<std::uint32_t>(rng.next_u64());
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  snd_max_ = snd_nxt_;
  send_buf_seq_ = iss_ + 1;
  state_ = TcpState::kSynSent;
  net::TcpHeader h;
  h.flags = TcpFlags::kSyn;
  h.seq = iss_;
  h.window = cfg_.receive_window;
  h.mss = cfg_.mss;
  layer_.send_segment(key_, h, {});
  ++stats_.segments_sent;
  arm_rtx_timer();
}

void TcpConnection::start_passive_open(const net::TcpHeader& syn) {
  auto& rng = layer_.host().simulation().rng();
  iss_ = static_cast<std::uint32_t>(rng.next_u64());
  irs_ = syn.seq;
  rcv_nxt_ = syn.seq + 1;
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  snd_max_ = snd_nxt_;
  send_buf_seq_ = iss_ + 1;
  snd_wnd_ = syn.window;
  mss_ = std::min(cfg_.mss, syn.mss.value_or(536));
  state_ = TcpState::kSynRcvd;
  net::TcpHeader h;
  h.flags = TcpFlags::kSyn | TcpFlags::kAck;
  h.seq = iss_;
  h.ack = rcv_nxt_;
  h.window = cfg_.receive_window;
  h.mss = cfg_.mss;
  layer_.send_segment(key_, h, {});
  ++stats_.segments_sent;
  arm_rtx_timer();
}

void TcpConnection::enter_established() {
  if (backlog_listener_ != nullptr) {
    --backlog_listener_->half_open_;
    backlog_listener_ = nullptr;
  }
  state_ = TcpState::kEstablished;
  // RFC 3390 initial window.
  const double mss = mss_;
  cwnd_ = std::min(4.0 * mss, std::max(2.0 * mss, 4380.0));
  ssthresh_ = 1e9;
  consecutive_timeouts_ = 0;
  backoff_ = 0;
  rtx_timer_.cancel();
  if (on_connected) on_connected();
}

void TcpConnection::handle_syn_sent(const net::TcpHeader& h) {
  if (h.rst()) {
    if (h.ack_flag() && h.ack == snd_nxt_) to_closed(true);
    return;
  }
  if (h.syn() && h.ack_flag()) {
    if (h.ack != iss_ + 1) return;  // bogus
    snd_una_ = h.ack;
    irs_ = h.seq;
    rcv_nxt_ = h.seq + 1;
    snd_wnd_ = h.window;
    mss_ = std::min(cfg_.mss, h.mss.value_or(536));
    enter_established();
    send_ack_now();
    output();
    return;
  }
  if (h.syn()) {
    // Simultaneous open: acknowledge their SYN with a SYN-ACK.
    irs_ = h.seq;
    rcv_nxt_ = h.seq + 1;
    snd_wnd_ = h.window;
    mss_ = std::min(cfg_.mss, h.mss.value_or(536));
    state_ = TcpState::kSynRcvd;
    net::TcpHeader out;
    out.flags = TcpFlags::kSyn | TcpFlags::kAck;
    out.seq = iss_;
    out.ack = rcv_nxt_;
    out.window = cfg_.receive_window;
    out.mss = cfg_.mss;
    layer_.send_segment(key_, out, {});
    ++stats_.segments_sent;
    arm_rtx_timer();
  }
}

void TcpConnection::handle_segment(const net::TcpHeader& h,
                                   std::span<const std::uint8_t> payload) {
  ++stats_.segments_received;

  if (state_ == TcpState::kSynSent) {
    handle_syn_sent(h);
    return;
  }
  if (state_ == TcpState::kTimeWait) {
    if (h.fin()) {
      // Peer retransmitted its FIN: re-ACK and restart the 2MSL timer.
      send_ack_now();
      enter_time_wait();
    }
    return;
  }

  if (h.rst()) {
    // Acceptable if it falls in the receive window (SYN_RCVD accepts the
    // exact expected sequence only).
    const bool acceptable =
        seq_ge(h.seq, rcv_nxt_) &&
        seq_lt(h.seq, rcv_nxt_ + cfg_.receive_window);
    if (acceptable || h.seq == rcv_nxt_) to_closed(true);
    return;
  }

  if (h.syn()) {
    if (state_ == TcpState::kSynRcvd && h.seq == irs_) {
      // Duplicate SYN: our SYN-ACK was lost; retransmit it.
      net::TcpHeader out;
      out.flags = TcpFlags::kSyn | TcpFlags::kAck;
      out.seq = iss_;
      out.ack = rcv_nxt_;
      out.window = cfg_.receive_window;
      out.mss = cfg_.mss;
      layer_.send_segment(key_, out, {});
      ++stats_.segments_sent;
    }
    return;
  }

  if (!h.ack_flag()) return;

  if (state_ == TcpState::kSynRcvd) {
    if (h.ack == snd_nxt_) {
      snd_una_ = h.ack;
      snd_wnd_ = h.window;
      enter_established();
      if (accept_pending_) {
        accept_pending_ = false;
        layer_.notify_accept(shared_from_this());
      }
    } else {
      return;  // unacceptable ACK in SYN_RCVD
    }
  }

  process_ack(h);
  if (state_ == TcpState::kClosed) return;
  process_data(h, payload);
}

void TcpConnection::process_ack(const net::TcpHeader& h) {
  const std::uint32_t ack = h.ack;
  if (seq_gt(ack, snd_max_)) {
    send_ack_now();  // acks data we never sent; re-assert our state
    return;
  }

  if (seq_lt(ack, snd_una_)) return;  // old ACK, ignore

  if (ack == snd_una_) {
    // Potential duplicate ACK (RFC 5681: no data, no window change, data
    // outstanding).
    if (flight_size() > 0 && h.window == snd_wnd_) {
      ++dup_acks_;
      if (in_fast_recovery_) {
        cwnd_ += mss_;
        output();
      } else if (dup_acks_ == 3) {
        ssthresh_ = std::max(flight_size() / 2.0, 2.0 * mss_);
        in_fast_recovery_ = true;
        ++stats_.fast_retransmits;
        retransmit_head();
        cwnd_ = ssthresh_ + 3.0 * mss_;
        output();
      }
    }
    snd_wnd_ = h.window;
    return;
  }

  // New data acknowledged.
  if (rtt_sampling_ && seq_gt(ack, rtt_seq_)) {
    update_rtt((layer_.host().simulation().now() - rtt_sent_at_).to_seconds());
    rtt_sampling_ = false;
  }

  const std::uint32_t data_end =
      send_buf_seq_ + static_cast<std::uint32_t>(send_buf_.size());
  const std::uint32_t acked_data_end = seq_lt(ack, data_end) ? ack : data_end;
  if (seq_gt(acked_data_end, send_buf_seq_)) {
    const std::size_t n = acked_data_end - send_buf_seq_;
    send_buf_.erase(send_buf_.begin(), send_buf_.begin() + static_cast<long>(n));
    send_buf_seq_ = acked_data_end;
    stats_.bytes_acked += n;
  }

  if (in_fast_recovery_) {
    // Reno: deflate on the first new ACK.
    in_fast_recovery_ = false;
    cwnd_ = ssthresh_;
  } else if (cwnd_ < ssthresh_) {
    cwnd_ += mss_;  // slow start
  } else {
    cwnd_ += static_cast<double>(mss_) * mss_ / cwnd_;  // congestion avoidance
  }
  dup_acks_ = 0;
  snd_una_ = ack;
  if (seq_gt(snd_una_, snd_nxt_)) snd_nxt_ = snd_una_;
  snd_wnd_ = h.window;
  consecutive_timeouts_ = 0;
  backoff_ = 0;

  if (flight_size() == 0) {
    rtx_timer_.cancel();
  } else {
    arm_rtx_timer();
  }

  if (fin_sent_ && seq_gt(snd_una_, fin_seq_)) {
    switch (state_) {
      case TcpState::kFinWait1:
        state_ = TcpState::kFinWait2;
        break;
      case TcpState::kClosing:
        enter_time_wait();
        return;
      case TcpState::kLastAck:
        to_closed(false);
        return;
      default:
        break;
    }
  }

  if (on_send_space && send_space() > 0) on_send_space();
  output();
}

void TcpConnection::process_data(const net::TcpHeader& h,
                                 std::span<const std::uint8_t> payload) {
  const std::uint32_t seg_seq = h.seq;
  const std::uint32_t seg_len = static_cast<std::uint32_t>(payload.size());
  const bool has_fin = h.fin();
  if (seg_len == 0 && !has_fin) return;

  // Entirely outside the window?
  if (seq_ge(seg_seq, rcv_nxt_ + cfg_.receive_window)) {
    send_ack_now();
    return;
  }
  const std::uint32_t seg_end = seg_seq + seg_len + (has_fin ? 1 : 0);
  if (seq_le(seg_end, rcv_nxt_)) {
    send_ack_now();  // old duplicate; re-ACK so the peer advances
    return;
  }

  if (has_fin) {
    fin_received_ = true;
    fin_rcv_seq_ = seg_seq + seg_len;
  }

  bool delivered = false;
  if (seq_le(seg_seq, rcv_nxt_)) {
    const std::uint32_t offset = rcv_nxt_ - seg_seq;
    if (offset < seg_len) {
      const auto fresh = payload.subspan(offset);
      rcv_nxt_ += static_cast<std::uint32_t>(fresh.size());
      stats_.bytes_received += fresh.size();
      delivered = true;
      if (on_data) on_data(fresh);
    }
    deliver_reassembled();
  } else {
    // Out of order: buffer and send an immediate duplicate ACK.
    reassembly_.emplace(seg_seq,
                        std::vector<std::uint8_t>(payload.begin(), payload.end()));
    send_ack_now();
    return;
  }

  maybe_complete_fin_handshake();
  if (state_ == TcpState::kClosed || state_ == TcpState::kTimeWait) return;

  if (fin_received_ && seq_le(fin_rcv_seq_, rcv_nxt_)) {
    return;  // FIN consumed; ACK already sent by maybe_complete_fin_handshake
  }

  if (delivered) {
    ++unacked_segments_;
    if (unacked_segments_ >= 2) {
      send_ack_now();
    } else {
      schedule_delayed_ack();
    }
  }
}

void TcpConnection::deliver_reassembled() {
  while (!reassembly_.empty()) {
    auto it = reassembly_.begin();
    const std::uint32_t seq = it->first;
    if (seq_gt(seq, rcv_nxt_)) break;
    std::vector<std::uint8_t> data = std::move(it->second);
    reassembly_.erase(it);
    const std::uint32_t len = static_cast<std::uint32_t>(data.size());
    if (seq_le(seq + len, rcv_nxt_)) continue;  // fully duplicate
    const std::uint32_t offset = rcv_nxt_ - seq;
    const std::span<const std::uint8_t> fresh =
        std::span(data).subspan(offset);
    rcv_nxt_ += static_cast<std::uint32_t>(fresh.size());
    stats_.bytes_received += fresh.size();
    if (on_data) on_data(fresh);
  }
}

void TcpConnection::maybe_complete_fin_handshake() {
  if (!fin_received_ || rcv_nxt_ != fin_rcv_seq_) return;
  ++rcv_nxt_;  // consume the FIN
  send_ack_now();
  if (on_peer_closed) on_peer_closed();
  switch (state_) {
    case TcpState::kEstablished:
      state_ = TcpState::kCloseWait;
      break;
    case TcpState::kFinWait1:
      // Our FIN not yet acked (else process_ack moved us to FIN_WAIT_2).
      state_ = TcpState::kClosing;
      break;
    case TcpState::kFinWait2:
      enter_time_wait();
      break;
    default:
      break;
  }
}

void TcpConnection::output() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait &&
      state_ != TcpState::kFinWait1 && state_ != TcpState::kClosing &&
      state_ != TcpState::kLastAck) {
    return;
  }

  const double window = std::min(cwnd_, static_cast<double>(snd_wnd_));
  while (unsent_bytes() > 0) {
    const double in_flight = flight_size();
    if (in_flight + mss_ > window && in_flight > 0) break;
    const std::size_t n = std::min<std::size_t>(
        {unsent_bytes(), mss_,
         static_cast<std::size_t>(std::max(0.0, window - in_flight))});
    if (n == 0) break;
    const std::uint32_t offset = snd_nxt_ - send_buf_seq_;
    std::vector<std::uint8_t> chunk(send_buf_.begin() + offset,
                                    send_buf_.begin() + offset + static_cast<long>(n));
    std::uint8_t flags = TcpFlags::kAck;
    if (n == unsent_bytes()) flags |= TcpFlags::kPsh;
    const bool is_rtx = seq_lt(snd_nxt_, snd_max_);
    emit(flags, snd_nxt_, chunk, is_rtx);
    snd_nxt_ += static_cast<std::uint32_t>(n);
    if (!is_rtx) stats_.bytes_sent += n;
    if (seq_gt(snd_nxt_, snd_max_)) snd_max_ = snd_nxt_;
  }

  if (fin_queued_ && !fin_sent_ && unsent_bytes() == 0) {
    emit(TcpFlags::kFin | TcpFlags::kAck, snd_nxt_, {},
         /*retransmission=*/seq_lt(snd_nxt_, snd_max_));
    fin_seq_ = snd_nxt_;
    ++snd_nxt_;
    if (seq_gt(snd_nxt_, snd_max_)) snd_max_ = snd_nxt_;
    fin_sent_ = true;
  }

  if (flight_size() > 0 && !rtx_timer_.pending()) arm_rtx_timer();
}

void TcpConnection::emit(std::uint8_t flags, std::uint32_t seq,
                         std::span<const std::uint8_t> payload, bool retransmission) {
  net::TcpHeader h;
  h.flags = flags;
  h.seq = seq;
  h.ack = (flags & TcpFlags::kAck) ? rcv_nxt_ : 0;
  h.window = cfg_.receive_window;
  layer_.send_segment(key_, h, payload);
  ++stats_.segments_sent;
  if (retransmission) ++stats_.retransmissions;

  // Karn's rule: only time segments that are not retransmissions.
  if (!retransmission && !rtt_sampling_ && (!payload.empty() || (flags & TcpFlags::kFin))) {
    rtt_sampling_ = true;
    rtt_seq_ = seq + static_cast<std::uint32_t>(payload.size()) +
               ((flags & TcpFlags::kFin) ? 1 : 0) - 1;
    rtt_sent_at_ = layer_.host().simulation().now();
  }
}

void TcpConnection::send_ack_now() {
  delack_timer_.cancel();
  unacked_segments_ = 0;
  net::TcpHeader h;
  h.flags = TcpFlags::kAck;
  h.seq = snd_nxt_;
  h.ack = rcv_nxt_;
  h.window = cfg_.receive_window;
  layer_.send_segment(key_, h, {});
  ++stats_.segments_sent;
}

void TcpConnection::schedule_delayed_ack() {
  if (delack_timer_.pending()) return;
  delack_timer_ = layer_.host().simulation().schedule(
      cfg_.delayed_ack, [w = weak_from_this()] {
        if (auto self = w.lock()) self->send_ack_now();
      });
}

void TcpConnection::retransmit_head() {
  const std::uint32_t data_end =
      send_buf_seq_ + static_cast<std::uint32_t>(send_buf_.size());
  if (fin_sent_ && snd_una_ == fin_seq_) {
    emit(TcpFlags::kFin | TcpFlags::kAck, fin_seq_, {}, /*retransmission=*/true);
    return;
  }
  if (seq_ge(snd_una_, data_end)) return;  // nothing to retransmit
  const std::size_t n =
      std::min<std::size_t>(mss_, data_end - snd_una_);
  const std::uint32_t offset = snd_una_ - send_buf_seq_;
  std::vector<std::uint8_t> chunk(send_buf_.begin() + offset,
                                  send_buf_.begin() + offset + static_cast<long>(n));
  emit(TcpFlags::kAck, snd_una_, chunk, /*retransmission=*/true);
}

void TcpConnection::arm_rtx_timer() {
  rtx_timer_.cancel();
  rtx_timer_ = layer_.host().simulation().schedule(
      current_rto(), [w = weak_from_this()] {
        if (auto self = w.lock()) self->on_rto();
      });
}

sim::Duration TcpConnection::current_rto() const {
  sim::Duration base = cfg_.initial_rto;
  if (rtt_valid_) {
    const double rto_s = srtt_ + std::max(4.0 * rttvar_, 0.01);
    base = sim::Duration::from_seconds(rto_s);
  }
  base = std::max(base, cfg_.min_rto);
  for (int i = 0; i < backoff_; ++i) {
    base = base * 2;
    if (base >= cfg_.max_rto) break;
  }
  return std::min(base, cfg_.max_rto);
}

void TcpConnection::update_rtt(double sample_seconds) {
  if (!rtt_valid_) {
    srtt_ = sample_seconds;
    rttvar_ = sample_seconds / 2.0;
    rtt_valid_ = true;
  } else {
    rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(srtt_ - sample_seconds);
    srtt_ = 0.875 * srtt_ + 0.125 * sample_seconds;
  }
}

void TcpConnection::on_rto() {
  ++stats_.timeouts;

  if (state_ == TcpState::kSynSent || state_ == TcpState::kSynRcvd) {
    if (++consecutive_timeouts_ > cfg_.syn_retries) {
      to_closed(true);
      return;
    }
    ++backoff_;
    net::TcpHeader h;
    if (state_ == TcpState::kSynSent) {
      h.flags = TcpFlags::kSyn;
      h.seq = iss_;
    } else {
      h.flags = TcpFlags::kSyn | TcpFlags::kAck;
      h.seq = iss_;
      h.ack = rcv_nxt_;
    }
    h.window = cfg_.receive_window;
    h.mss = cfg_.mss;
    layer_.send_segment(key_, h, {});
    ++stats_.segments_sent;
    ++stats_.retransmissions;
    arm_rtx_timer();
    return;
  }

  if (flight_size() == 0) return;  // spurious

  if (++consecutive_timeouts_ > cfg_.rto_retries) {
    to_closed(true);
    return;
  }

  // RFC 5681 timeout response + go-back-N rewind.
  ssthresh_ = std::max(flight_size() / 2.0, 2.0 * mss_);
  cwnd_ = mss_;
  dup_acks_ = 0;
  in_fast_recovery_ = false;
  rtt_sampling_ = false;  // Karn
  ++backoff_;
  snd_nxt_ = snd_una_;
  if (fin_sent_ && seq_le(snd_una_, fin_seq_)) fin_sent_ = false;
  output();
  arm_rtx_timer();
}

void TcpConnection::enter_time_wait() {
  state_ = TcpState::kTimeWait;
  rtx_timer_.cancel();
  delack_timer_.cancel();
  timewait_timer_.cancel();
  timewait_timer_ = layer_.host().simulation().schedule(
      cfg_.time_wait, [w = weak_from_this()] {
        if (auto self = w.lock()) self->to_closed(false);
      });
}

void TcpConnection::to_closed(bool reset) {
  if (state_ == TcpState::kClosed) return;
  if (backlog_listener_ != nullptr) {
    --backlog_listener_->half_open_;
    backlog_listener_ = nullptr;
  }
  state_ = TcpState::kClosed;
  rtx_timer_.cancel();
  delack_timer_.cancel();
  timewait_timer_.cancel();
  auto self = shared_from_this();  // keep alive through callbacks + removal
  layer_.remove(key_);
  (void)reset;
  if (on_closed) on_closed();
  // The callbacks frequently capture this connection's own shared_ptr; drop
  // them now that the connection is dead so the self-cycle cannot outlive
  // the last external reference.
  reset_callbacks();
}

// -------------------------------------------------------------------- layer

TcpConfig TcpLayer::make_config() const {
  TcpConfig cfg;
  cfg.mss = host_.config().mss;
  cfg.receive_window = host_.config().receive_window;
  return cfg;
}

void TcpLayer::send_segment(const net::FiveTuple& key, net::TcpHeader header,
                            std::span<const std::uint8_t> payload) {
  header.src_port = key.src_port;
  header.dst_port = key.dst_port;
  std::vector<std::uint8_t> segment;
  segment.reserve(header.size() + payload.size());
  ByteWriter w(segment);
  header.checksum = 0;
  header.serialize(w);
  w.bytes(payload);
  const std::uint16_t sum = net::transport_checksum(
      key.src, key.dst, static_cast<std::uint8_t>(net::IpProtocol::kTcp), segment);
  segment[16] = static_cast<std::uint8_t>(sum >> 8);
  segment[17] = static_cast<std::uint8_t>(sum);
  host_.send_ip(net::IpProtocol::kTcp, key.dst, segment);
}

void TcpLayer::handle_segment(const net::FrameView& v) {
  BARB_ASSERT(v.tcp.has_value() && v.ip.has_value());
  // Checksum verification happened in Host::ip_input (counted on the NIC);
  // by here the segment is known-good.

  // Connection keys are local-perspective.
  net::FiveTuple key;
  key.src = v.ip->dst;
  key.dst = v.ip->src;
  key.src_port = v.tcp->dst_port;
  key.dst_port = v.tcp->src_port;
  key.protocol = static_cast<std::uint8_t>(net::IpProtocol::kTcp);

  auto it = connections_.find(key);
  if (it != connections_.end()) {
    auto conn = it->second;  // keep alive across the call
    conn->handle_segment(*v.tcp, v.l4_payload);
    return;
  }

  if (v.tcp->syn() && !v.tcp->ack_flag() && !v.tcp->rst()) {
    auto lit = listeners_.find(v.tcp->dst_port);
    if (lit != listeners_.end()) {
      TcpListener* listener = lit->second.get();
      if (listener->half_open_ >= listener->backlog) {
        // Backlog full: drop the SYN silently (the peer will retry).
        ++listener->syn_drops_;
        return;
      }
      auto conn = std::shared_ptr<TcpConnection>(
          new TcpConnection(*this, key, make_config()));
      conn->accept_pending_ = true;
      conn->backlog_listener_ = listener;
      ++listener->half_open_;
      connections_.emplace(key, conn);
      conn->start_passive_open(*v.tcp);
      return;
    }
  }

  // No socket: RFC 793 reset generation (never in response to a RST). This
  // is the response traffic that doubles firewall load in the paper's
  // "allowed flood" experiments.
  if (!v.tcp->rst()) send_rst_for(v);
}

void TcpLayer::notify_accept(const std::shared_ptr<TcpConnection>& conn) {
  auto lit = listeners_.find(conn->key().src_port);
  if (lit != listeners_.end() && lit->second->on_accept_) {
    lit->second->on_accept_(conn);
  }
}

void TcpLayer::send_rst_for(const net::FrameView& v) {
  net::FiveTuple key;
  key.src = v.ip->dst;
  key.dst = v.ip->src;
  key.src_port = v.tcp->dst_port;
  key.dst_port = v.tcp->src_port;
  key.protocol = static_cast<std::uint8_t>(net::IpProtocol::kTcp);

  ++host_.stats_.tcp_rst_sent;
  net::TcpHeader h;
  if (v.tcp->ack_flag()) {
    h.flags = TcpFlags::kRst;
    h.seq = v.tcp->ack;
  } else {
    h.flags = TcpFlags::kRst | TcpFlags::kAck;
    h.seq = 0;
    h.ack = v.tcp->seq + static_cast<std::uint32_t>(v.l4_payload.size()) +
            (v.tcp->syn() ? 1 : 0) + (v.tcp->fin() ? 1 : 0);
  }
  h.window = 0;
  send_segment(key, h, {});
}

TcpListener* TcpLayer::listen(std::uint16_t port, TcpListener::AcceptFn on_accept) {
  if (port == 0 || listeners_.contains(port)) return nullptr;
  auto listener =
      std::unique_ptr<TcpListener>(new TcpListener(*this, port, std::move(on_accept)));
  TcpListener* raw = listener.get();
  listeners_.emplace(port, std::move(listener));
  return raw;
}

std::shared_ptr<TcpConnection> TcpLayer::connect(net::Ipv4Address dst,
                                                 std::uint16_t dst_port) {
  net::FiveTuple key;
  key.src = host_.ip();
  key.dst = dst;
  key.dst_port = dst_port;
  key.protocol = static_cast<std::uint8_t>(net::IpProtocol::kTcp);
  // Find an ephemeral port whose tuple is free.
  for (int attempts = 0; attempts < 64; ++attempts) {
    key.src_port = host_.allocate_ephemeral_port();
    if (!connections_.contains(key)) break;
  }
  if (connections_.contains(key)) return nullptr;

  auto conn =
      std::shared_ptr<TcpConnection>(new TcpConnection(*this, key, make_config()));
  connections_.emplace(key, conn);
  conn->start_active_open();
  return conn;
}

bool TcpLayer::port_in_use(std::uint16_t port) const {
  if (listeners_.contains(port)) return true;
  for (const auto& [key, conn] : connections_) {
    if (key.src_port == port) return true;
  }
  return false;
}

namespace {
void accumulate(TcpConnectionStats& into, const TcpConnectionStats& from) {
  into.segments_sent += from.segments_sent;
  into.segments_received += from.segments_received;
  into.bytes_sent += from.bytes_sent;
  into.bytes_acked += from.bytes_acked;
  into.bytes_received += from.bytes_received;
  into.retransmissions += from.retransmissions;
  into.timeouts += from.timeouts;
  into.fast_retransmits += from.fast_retransmits;
}
}  // namespace

TcpLayer::~TcpLayer() {
  // Connections still alive at teardown (flooded experiments routinely end
  // with established or half-open connections) hold application callbacks
  // that may capture their own shared_ptr. Clear them so erasing the map —
  // or the application dropping its handle afterwards — actually frees the
  // connection.
  for (auto& [key, conn] : connections_) conn->reset_callbacks();
}

void TcpLayer::remove(const net::FiveTuple& key) {
  auto it = connections_.find(key);
  if (it == connections_.end()) return;
  accumulate(closed_totals_, it->second->stats());
  connections_.erase(it);
}

TcpConnectionStats TcpLayer::aggregate_stats() const {
  TcpConnectionStats total = closed_totals_;
  for (const auto& [key, conn] : connections_) accumulate(total, conn->stats());
  return total;
}

double TcpLayer::total_cwnd_bytes() const {
  double total = 0;
  for (const auto& [key, conn] : connections_) {
    if (conn->state() == TcpState::kEstablished) total += conn->cwnd_bytes();
  }
  return total;
}

void TcpLayer::register_metrics(telemetry::MetricRegistry& registry,
                                const std::string& labels) const {
  auto counter = [&](const char* name, auto field) {
    registry.counter_fn(name, labels, [this, field] {
      return static_cast<double>(aggregate_stats().*field);
    });
  };
  counter("tcp.segments_sent", &TcpConnectionStats::segments_sent);
  counter("tcp.segments_received", &TcpConnectionStats::segments_received);
  counter("tcp.bytes_acked", &TcpConnectionStats::bytes_acked);
  counter("tcp.bytes_received", &TcpConnectionStats::bytes_received);
  counter("tcp.retransmissions", &TcpConnectionStats::retransmissions);
  counter("tcp.timeouts", &TcpConnectionStats::timeouts);
  counter("tcp.fast_retransmits", &TcpConnectionStats::fast_retransmits);
  registry.gauge("tcp.connections", labels, [this] {
    return static_cast<double>(connections_.size());
  });
  registry.gauge("tcp.cwnd_bytes", labels, [this] { return total_cwnd_bytes(); });
}

void TcpLayer::close_listener(TcpListener* listener) {
  if (listener == nullptr) return;
  // Orphan any half-open connections still pointing at this listener.
  for (auto& [key, conn] : connections_) {
    if (conn->backlog_listener_ == listener) conn->backlog_listener_ = nullptr;
  }
  listeners_.erase(listener->port_);
}

void TcpListener::close() { layer_.close_listener(this); }

}  // namespace barb::stack
