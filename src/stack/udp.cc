#include "stack/udp.h"

#include <vector>

#include "net/checksum.h"
#include "net/udp.h"
#include "stack/host.h"
#include "util/byte_io.h"

namespace barb::stack {

bool UdpSocket::send_to(net::Ipv4Address dst, std::uint16_t dst_port,
                        std::span<const std::uint8_t> payload) {
  Host& host = layer_.host_;
  if (net::UdpHeader::kSize + payload.size() + net::Ipv4Header::kSize >
      net::kEthernetMtu) {
    return false;
  }
  std::vector<std::uint8_t> segment;
  segment.reserve(net::UdpHeader::kSize + payload.size());
  ByteWriter w(segment);
  net::UdpHeader udp;
  udp.src_port = local_port_;
  udp.dst_port = dst_port;
  udp.length = static_cast<std::uint16_t>(net::UdpHeader::kSize + payload.size());
  udp.serialize(w);
  w.bytes(payload);
  const std::uint16_t sum = net::transport_checksum(
      host.ip(), dst, static_cast<std::uint8_t>(net::IpProtocol::kUdp), segment);
  segment[6] = static_cast<std::uint8_t>(sum >> 8);
  segment[7] = static_cast<std::uint8_t>(sum);
  return host.send_ip(net::IpProtocol::kUdp, dst, segment);
}

void UdpSocket::close() { layer_.close(this); }

UdpSocket* UdpLayer::open(std::uint16_t local_port) {
  if (local_port == 0) {
    local_port = host_.allocate_ephemeral_port();
    if (local_port == 0) return nullptr;
  }
  if (sockets_.contains(local_port)) return nullptr;
  auto socket = std::unique_ptr<UdpSocket>(new UdpSocket(*this, local_port));
  UdpSocket* raw = socket.get();
  sockets_.emplace(local_port, std::move(socket));
  return raw;
}

void UdpLayer::close(UdpSocket* socket) {
  if (socket == nullptr) return;
  sockets_.erase(socket->local_port());
}

bool UdpLayer::handle_datagram(const net::FrameView& v) {
  auto it = sockets_.find(v.udp->dst_port);
  if (it == sockets_.end()) return false;
  UdpSocket& socket = *it->second;
  ++socket.datagrams_received_;
  socket.bytes_received_ += v.l4_payload.size();
  if (socket.receiver_) {
    socket.receiver_(v.ip->src, v.udp->src_port, v.l4_payload);
  }
  return true;
}

}  // namespace barb::stack
