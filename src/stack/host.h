// A simulated end host: NIC + IPv4 + ICMP + UDP + TCP.
//
// The stack is callback-driven (no blocking calls): applications open
// sockets, provide receive/accept callbacks, and write data; the stack
// schedules everything through the host's Simulation. This mirrors the
// Linux 2.4 endpoints of the paper's testbed closely enough for the
// experiments: RST on closed TCP ports, rate-limited ICMP port-unreachable
// for UDP, Reno congestion control, delayed ACKs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "link/frame_sink.h"
#include "net/frame_view.h"
#include "net/ipv4_address.h"
#include "net/packet.h"
#include "net/packet_builder.h"
#include "sim/simulation.h"
#include "stack/arp_table.h"
#include "stack/nic.h"
#include "stack/packet_filter.h"
#include "telemetry/registry.h"
#include "util/token_bucket.h"

namespace barb::stack {

class UdpLayer;
class UdpSocket;
class TcpLayer;
class TcpConnection;
class TcpListener;

struct HostConfig {
  // Local MSS announced in SYN segments. The testbed lowers this on
  // VPG-protected hosts so encapsulated frames still fit the Ethernet MTU.
  std::uint16_t mss = 1460;
  // Fixed advertised receive window (no window scaling, as in the paper era).
  std::uint16_t receive_window = 65535;
  // Linux icmp_ratelimit analogue for destination-unreachable generation.
  double icmp_error_rate_per_sec = 1.0;
};

struct HostStats {
  std::uint64_t ip_rx = 0;
  std::uint64_t ip_rx_dropped = 0;  // not for us / malformed
  std::uint64_t ip_tx = 0;
  std::uint64_t tcp_rst_sent = 0;
  std::uint64_t icmp_unreachable_sent = 0;
  std::uint64_t icmp_unreachable_suppressed = 0;
  std::uint64_t icmp_echo_replies = 0;
};

class Host : public link::FrameSink {
 public:
  Host(sim::Simulation& sim, std::string name, net::Ipv4Address ip,
       std::unique_ptr<Nic> nic, HostConfig config = {});
  ~Host() override;

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  sim::Simulation& simulation() { return sim_; }
  const std::string& name() const { return name_; }
  net::Ipv4Address ip() const { return ip_; }
  net::MacAddress mac() const { return nic_->mac(); }
  Nic& nic() { return *nic_; }
  ArpTable& arp() { return arp_; }
  const HostConfig& config() const { return config_; }
  const HostStats& stats() const { return stats_; }

  // Installs a host-resident packet filter (software firewall); nullptr
  // removes it. Not owned.
  void set_packet_filter(HostPacketFilter* filter) { filter_ = filter; }

  // Registers this host's IP/ICMP counters ("host.*"), its NIC's generic
  // frame counters ("nic.*"), and the TCP stack's "tcp.*" metrics under the
  // given label set (conventionally "host=<name>").
  void register_metrics(telemetry::MetricRegistry& registry,
                        const std::string& labels) const;

  // --- ICMP echo (ping) ---
  // Sends an echo request; the reply (if any) is delivered to the handler
  // registered below. Returns false if the destination is unresolvable.
  bool send_echo_request(net::Ipv4Address dst, std::uint16_t id, std::uint16_t seq,
                         std::size_t payload_bytes = 56);
  using EchoReplyHandler =
      std::function<void(net::Ipv4Address src, std::uint16_t id, std::uint16_t seq)>;
  void set_echo_reply_handler(EchoReplyHandler handler) {
    echo_reply_handler_ = std::move(handler);
  }

  // --- UDP ---
  // Binds a UDP socket; port 0 picks an ephemeral port. Returns a socket
  // owned by the host's UDP layer; close via UdpSocket::close().
  UdpSocket* udp_open(std::uint16_t local_port);

  // --- TCP ---
  // Passive open. The accept callback receives established connections.
  TcpListener* tcp_listen(std::uint16_t port,
                          std::function<void(std::shared_ptr<TcpConnection>)> on_accept);
  // Active open from an ephemeral port.
  std::shared_ptr<TcpConnection> tcp_connect(net::Ipv4Address dst,
                                             std::uint16_t dst_port);

  // --- internals shared with the transport layers ---
  // Sends an IP packet; returns false if the destination is unresolvable.
  bool send_ip(net::IpProtocol protocol, net::Ipv4Address dst,
               std::span<const std::uint8_t> ip_payload);
  std::uint16_t next_ip_id() { return ip_id_++; }
  std::uint64_t next_packet_id() { return packet_id_++; }
  std::uint16_t allocate_ephemeral_port();

  // FrameSink: frames arriving from the NIC.
  void deliver(net::Packet pkt) override;

 private:
  friend class TcpLayer;  // maintains tcp_rst_sent
  void ip_input(net::Packet pkt);
  bool verify_transport_checksum(const net::FrameView& v) const;
  void handle_icmp(const net::FrameView& v);
  void send_icmp_port_unreachable(const net::FrameView& original);
  void send_frame(net::Packet pkt);

  sim::Simulation& sim_;
  std::string name_;
  net::Ipv4Address ip_;
  std::unique_ptr<Nic> nic_;
  HostConfig config_;
  ArpTable arp_;
  HostPacketFilter* filter_ = nullptr;

  std::unique_ptr<UdpLayer> udp_;
  std::unique_ptr<TcpLayer> tcp_;

  EchoReplyHandler echo_reply_handler_;
  TokenBucket icmp_error_limiter_;
  std::uint16_t ip_id_ = 1;
  std::uint64_t packet_id_ = 1;
  std::uint16_t next_ephemeral_ = 32768;
  HostStats stats_;
};

}  // namespace barb::stack
