// Token bucket for rate pacing.
//
// Used by the flood generator (packets/s pacing, like the paper's custom
// generator) and by the ICMP error rate limiter. Tokens accrue continuously
// in simulated time; the bucket never goes negative.
//
// Note: this class is passive — it holds no timer and schedules nothing.
// Callers that pace a recurring send loop off a bucket should drive it from
// a Simulation::schedule_every recurrence (see the iperf UDP sender and
// FloodGenerator), which reuses one scheduler slab record for the whole
// loop instead of allocating a fresh timer per tick.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "sim/time.h"
#include "util/assert.h"

namespace barb {

class TokenBucket {
 public:
  // rate: tokens per second; burst: bucket capacity in tokens (>= 1).
  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst) {
    BARB_ASSERT(rate_per_sec > 0);
    BARB_ASSERT(burst >= 1);
  }

  // Tries to consume `n` tokens at simulated time `now`.
  bool try_consume(sim::TimePoint now, double n = 1.0) {
    refill(now);
    if (tokens_ + 1e-9 < n) return false;
    tokens_ -= n;
    return true;
  }

  // Time until `n` tokens will be available (zero if available now).
  sim::Duration time_until_available(sim::TimePoint now, double n = 1.0) {
    refill(now);
    if (tokens_ + 1e-9 >= n) return sim::Duration::zero();
    const double deficit = n - tokens_;
    // Round up to the next nanosecond so the caller never re-polls short.
    return sim::Duration::nanoseconds(
        static_cast<std::int64_t>(std::ceil(deficit / rate_ * 1e9)));
  }

  double tokens(sim::TimePoint now) {
    refill(now);
    return tokens_;
  }

  double rate() const { return rate_; }

 private:
  void refill(sim::TimePoint now) {
    if (now <= last_) return;
    const double elapsed = (now - last_).to_seconds();
    tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
    last_ = now;
  }

  double rate_;
  double burst_;
  double tokens_;
  sim::TimePoint last_ = sim::TimePoint::origin();
};

}  // namespace barb
