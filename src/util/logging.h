// Minimal leveled logging.
//
// Experiments run millions of simulated packets; logging defaults to WARN so
// the hot path stays quiet. Components log through BARB_LOG(level, ...) with
// printf-style formatting. The sink is a global because log output is
// process-wide diagnostics, not simulation state.
#pragma once

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace barb {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_.store(level, std::memory_order_relaxed); }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  bool enabled(LogLevel level) const { return level >= this->level(); }

  void logf(LogLevel level, const char* file, int line, const char* fmt, ...)
      __attribute__((format(printf, 5, 6))) {
    if (!enabled(level)) return;
    std::fprintf(stderr, "[%s] %s:%d: ", level_name(level), file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
  }

 private:
  Logger() = default;
  static const char* level_name(LogLevel level) {
    switch (level) {
      case LogLevel::kTrace: return "TRACE";
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
  }

  // Atomic so sweep-runner worker threads can consult (or a test can set)
  // the level while others log; the sink itself relies on stderr's own
  // per-call locking.
  std::atomic<LogLevel> level_{LogLevel::kWarn};
};

}  // namespace barb

#define BARB_LOG(level, ...)                                                  \
  do {                                                                        \
    if (::barb::Logger::instance().enabled(level))                           \
      ::barb::Logger::instance().logf(level, __FILE__, __LINE__, __VA_ARGS__); \
  } while (0)

#define BARB_TRACE(...) BARB_LOG(::barb::LogLevel::kTrace, __VA_ARGS__)
#define BARB_DEBUG(...) BARB_LOG(::barb::LogLevel::kDebug, __VA_ARGS__)
#define BARB_INFO(...) BARB_LOG(::barb::LogLevel::kInfo, __VA_ARGS__)
#define BARB_WARN(...) BARB_LOG(::barb::LogLevel::kWarn, __VA_ARGS__)
#define BARB_ERROR(...) BARB_LOG(::barb::LogLevel::kError, __VA_ARGS__)
