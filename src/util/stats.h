// Sample statistics for experiment measurements.
//
// The paper averages repeated measurements per data point; we additionally
// report standard deviation and a 95 % confidence half-width so EXPERIMENTS.md
// can show measurement spread.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/assert.h"

namespace barb {

class Stats {
 public:
  void add(double x) { samples_.push_back(x); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double sum() const {
    double s = 0;
    for (double x : samples_) s += x;
    return s;
  }

  double mean() const {
    BARB_ASSERT(!samples_.empty());
    return sum() / static_cast<double>(samples_.size());
  }

  double min() const {
    BARB_ASSERT(!samples_.empty());
    return *std::min_element(samples_.begin(), samples_.end());
  }

  double max() const {
    BARB_ASSERT(!samples_.empty());
    return *std::max_element(samples_.begin(), samples_.end());
  }

  // Sample (n-1) standard deviation; 0 for fewer than two samples.
  double stddev() const {
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double acc = 0;
    for (double x : samples_) acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
  }

  // Half-width of a normal-approximation 95 % confidence interval on the mean.
  double ci95_halfwidth() const {
    if (samples_.size() < 2) return 0.0;
    return 1.96 * stddev() / std::sqrt(static_cast<double>(samples_.size()));
  }

  // Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const {
    BARB_ASSERT(!samples_.empty());
    BARB_ASSERT(p >= 0.0 && p <= 100.0);
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1) return sorted[0];
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted.size()) return sorted.back();
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
  }

  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace barb
