// Invariant checking for the barbarians library.
//
// BARB_ASSERT is active in all build types: simulation correctness bugs must
// fail loudly during experiments, not silently corrupt measurements. The cost
// is negligible next to event-queue operations.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace barb::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "BARB_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::abort();
}

}  // namespace barb::detail

#define BARB_ASSERT(expr)                                                \
  do {                                                                   \
    if (!(expr)) ::barb::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define BARB_ASSERT_MSG(expr, msg)                                       \
  do {                                                                   \
    if (!(expr)) ::barb::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
