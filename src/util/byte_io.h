// Serialization helpers for wire formats.
//
// All simulated protocols use network byte order (big-endian), exactly like
// the real ones, so packet bytes in traces look like real packet bytes.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/assert.h"

namespace barb {

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }
  void bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    out_.insert(out_.end(), p, p + len);
  }
  void zeros(std::size_t n) { out_.insert(out_.end(), n, 0); }

  std::size_t size() const { return out_.size(); }

 private:
  std::vector<std::uint8_t>& out_;
};

// Bounds-checked big-endian reader. Parsers check `ok()` (or remaining())
// before trusting values; a short buffer flips `ok()` to false and all
// subsequent reads return zero instead of reading out of bounds.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }

  std::uint8_t u8() {
    if (!require(1)) return 0;
    return data_[pos_++];
  }
  std::uint16_t u16() {
    if (!require(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!require(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = v << 8 | data_[pos_++];
    return v;
  }
  std::uint64_t u64() {
    if (!require(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = v << 8 | data_[pos_++];
    return v;
  }
  std::span<const std::uint8_t> bytes(std::size_t n) {
    if (!require(n)) return {};
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  void skip(std::size_t n) { (void)bytes(n); }
  std::span<const std::uint8_t> rest() { return bytes(remaining()); }

 private:
  bool require(std::size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

inline std::string to_hex(std::span<const std::uint8_t> data) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  s.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    s.push_back(digits[b >> 4]);
    s.push_back(digits[b & 0xf]);
  }
  return s;
}

}  // namespace barb
