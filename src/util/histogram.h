// Fixed-resolution latency histogram.
//
// Log-ish bucketing (power-of-two microsecond buckets) keeps memory constant
// while covering sub-microsecond to multi-second latencies, which spans the
// range between switch forwarding delay and TCP RTO backoff.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "sim/time.h"

namespace barb {

class LatencyHistogram {
 public:
  static constexpr int kBuckets = 40;  // bucket i covers [2^i, 2^(i+1)) ns

  void add(sim::Duration d) {
    std::int64_t ns = d.ns();
    if (ns < 1) ns = 1;
    int bucket = 63 - __builtin_clzll(static_cast<std::uint64_t>(ns));
    if (bucket >= kBuckets) bucket = kBuckets - 1;
    ++counts_[static_cast<std::size_t>(bucket)];
    ++total_;
    sum_ns_ += ns;
  }

  std::uint64_t total() const { return total_; }

  double mean_ms() const {
    if (total_ == 0) return 0.0;
    return static_cast<double>(sum_ns_) / static_cast<double>(total_) * 1e-6;
  }

  // Upper bound (ns) of the bucket containing the p-th percentile.
  std::int64_t percentile_upper_ns(double p) const {
    if (total_ == 0) return 0;
    const auto target =
        static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(total_));
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += counts_[static_cast<std::size_t>(i)];
      if (seen > target) return std::int64_t{1} << (i + 1);
    }
    return std::int64_t{1} << kBuckets;
  }

  void clear() {
    counts_.fill(0);
    total_ = 0;
    sum_ns_ = 0;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t sum_ns_ = 0;
};

}  // namespace barb
