// Windowed rate estimation for live measurements (bits/s or events/s).
//
// The experiment harness samples achieved bandwidth over explicit
// [start, stop] windows, mirroring how iperf reports an interval average.
#pragma once

#include <cstdint>

#include "sim/time.h"
#include "util/assert.h"

namespace barb {

// Counts an additive quantity (bytes, packets) over a measurement window.
class WindowCounter {
 public:
  void start(sim::TimePoint now) {
    start_ = now;
    running_ = true;
    total_ = 0;
  }

  void add(std::uint64_t amount) {
    if (running_) total_ += amount;
  }

  // Ends the window and returns the average rate in units/second.
  double stop(sim::TimePoint now) {
    BARB_ASSERT(running_);
    running_ = false;
    const double elapsed = (now - start_).to_seconds();
    if (elapsed <= 0) return 0.0;
    return static_cast<double>(total_) / elapsed;
  }

  std::uint64_t total() const { return total_; }
  bool running() const { return running_; }

 private:
  sim::TimePoint start_;
  std::uint64_t total_ = 0;
  bool running_ = false;
};

}  // namespace barb
