// HMAC-SHA256 (RFC 2104) and HKDF-style key derivation.
//
// The policy-distribution protocol authenticates every message with
// HMAC-SHA256 under a shared deployment key; VPG traffic keys are derived
// from the VPG master key with derive_key().
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "crypto/sha256.h"

namespace barb::crypto {

Sha256::Digest hmac_sha256(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> message);

// Constant-time equality; the length leak is fine because all our MAC/tag
// lengths are public protocol constants.
bool constant_time_equal(std::span<const std::uint8_t> a,
                         std::span<const std::uint8_t> b);

// Derives a 32-byte subkey from a master key and a context label
// (HKDF-expand-like: HMAC(master, label || 0x01)).
std::array<std::uint8_t, 32> derive_key(std::span<const std::uint8_t> master,
                                        std::string_view label);

}  // namespace barb::crypto
