// Poly1305 one-time authenticator (RFC 8439).
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace barb::crypto {

class Poly1305 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kTagSize = 16;

  using Key = std::array<std::uint8_t, kKeySize>;
  using Tag = std::array<std::uint8_t, kTagSize>;

  explicit Poly1305(const Key& key);

  void update(std::span<const std::uint8_t> data);
  Tag finalize();

  static Tag mac(const Key& key, std::span<const std::uint8_t> data) {
    Poly1305 p(key);
    p.update(data);
    return p.finalize();
  }

 private:
  void process_block(const std::uint8_t* block, std::uint32_t hibit);

  // 26-bit limb representation (poly1305-donna style).
  std::uint32_t r_[5];
  std::uint32_t h_[5] = {};
  std::uint32_t pad_[4];
  std::array<std::uint8_t, 16> buffer_;
  std::size_t buffer_len_ = 0;
};

}  // namespace barb::crypto
