#include "crypto/poly1305.h"

#include <cstring>

namespace barb::crypto {

namespace {

inline std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

}  // namespace

Poly1305::Poly1305(const Key& key) {
  // r is clamped per the RFC; stored as five 26-bit limbs.
  r_[0] = load_le32(key.data() + 0) & 0x3ffffff;
  r_[1] = (load_le32(key.data() + 3) >> 2) & 0x3ffff03;
  r_[2] = (load_le32(key.data() + 6) >> 4) & 0x3ffc0ff;
  r_[3] = (load_le32(key.data() + 9) >> 6) & 0x3f03fff;
  r_[4] = (load_le32(key.data() + 12) >> 8) & 0x00fffff;
  for (int i = 0; i < 4; ++i) pad_[i] = load_le32(key.data() + 16 + 4 * i);
}

void Poly1305::process_block(const std::uint8_t* block, std::uint32_t hibit) {
  const std::uint32_t r0 = r_[0], r1 = r_[1], r2 = r_[2], r3 = r_[3], r4 = r_[4];
  const std::uint32_t s1 = r1 * 5, s2 = r2 * 5, s3 = r3 * 5, s4 = r4 * 5;

  std::uint32_t h0 = h_[0], h1 = h_[1], h2 = h_[2], h3 = h_[3], h4 = h_[4];

  h0 += load_le32(block + 0) & 0x3ffffff;
  h1 += (load_le32(block + 3) >> 2) & 0x3ffffff;
  h2 += (load_le32(block + 6) >> 4) & 0x3ffffff;
  h3 += (load_le32(block + 9) >> 6) & 0x3ffffff;
  h4 += (load_le32(block + 12) >> 8) | hibit;

  using u64 = std::uint64_t;
  u64 d0 = static_cast<u64>(h0) * r0 + static_cast<u64>(h1) * s4 +
           static_cast<u64>(h2) * s3 + static_cast<u64>(h3) * s2 +
           static_cast<u64>(h4) * s1;
  u64 d1 = static_cast<u64>(h0) * r1 + static_cast<u64>(h1) * r0 +
           static_cast<u64>(h2) * s4 + static_cast<u64>(h3) * s3 +
           static_cast<u64>(h4) * s2;
  u64 d2 = static_cast<u64>(h0) * r2 + static_cast<u64>(h1) * r1 +
           static_cast<u64>(h2) * r0 + static_cast<u64>(h3) * s4 +
           static_cast<u64>(h4) * s3;
  u64 d3 = static_cast<u64>(h0) * r3 + static_cast<u64>(h1) * r2 +
           static_cast<u64>(h2) * r1 + static_cast<u64>(h3) * r0 +
           static_cast<u64>(h4) * s4;
  u64 d4 = static_cast<u64>(h0) * r4 + static_cast<u64>(h1) * r3 +
           static_cast<u64>(h2) * r2 + static_cast<u64>(h3) * r1 +
           static_cast<u64>(h4) * r0;

  std::uint32_t c;
  c = static_cast<std::uint32_t>(d0 >> 26); h0 = static_cast<std::uint32_t>(d0) & 0x3ffffff;
  d1 += c;
  c = static_cast<std::uint32_t>(d1 >> 26); h1 = static_cast<std::uint32_t>(d1) & 0x3ffffff;
  d2 += c;
  c = static_cast<std::uint32_t>(d2 >> 26); h2 = static_cast<std::uint32_t>(d2) & 0x3ffffff;
  d3 += c;
  c = static_cast<std::uint32_t>(d3 >> 26); h3 = static_cast<std::uint32_t>(d3) & 0x3ffffff;
  d4 += c;
  c = static_cast<std::uint32_t>(d4 >> 26); h4 = static_cast<std::uint32_t>(d4) & 0x3ffffff;
  h0 += c * 5;
  c = h0 >> 26; h0 &= 0x3ffffff;
  h1 += c;

  h_[0] = h0; h_[1] = h1; h_[2] = h2; h_[3] = h3; h_[4] = h4;
}

void Poly1305::update(std::span<const std::uint8_t> data) {
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(std::size_t{16} - buffer_len_, data.size());
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == 16) {
      process_block(buffer_.data(), std::uint32_t{1} << 24);
      buffer_len_ = 0;
    }
  }
  while (offset + 16 <= data.size()) {
    process_block(data.data() + offset, std::uint32_t{1} << 24);
    offset += 16;
  }
  if (offset < data.size()) {
    buffer_len_ = data.size() - offset;
    std::memcpy(buffer_.data(), data.data() + offset, buffer_len_);
  }
}

Poly1305::Tag Poly1305::finalize() {
  if (buffer_len_ > 0) {
    // Final partial block: append 0x01 then zero-pad; high bit not set.
    std::uint8_t block[16] = {};
    std::memcpy(block, buffer_.data(), buffer_len_);
    block[buffer_len_] = 1;
    process_block(block, 0);
    buffer_len_ = 0;
  }

  // Full carry propagation.
  std::uint32_t h0 = h_[0], h1 = h_[1], h2 = h_[2], h3 = h_[3], h4 = h_[4];
  std::uint32_t c;
  c = h1 >> 26; h1 &= 0x3ffffff; h2 += c;
  c = h2 >> 26; h2 &= 0x3ffffff; h3 += c;
  c = h3 >> 26; h3 &= 0x3ffffff; h4 += c;
  c = h4 >> 26; h4 &= 0x3ffffff; h0 += c * 5;
  c = h0 >> 26; h0 &= 0x3ffffff; h1 += c;

  // Compute h + -p and select it if h >= p.
  std::uint32_t g0 = h0 + 5; c = g0 >> 26; g0 &= 0x3ffffff;
  std::uint32_t g1 = h1 + c; c = g1 >> 26; g1 &= 0x3ffffff;
  std::uint32_t g2 = h2 + c; c = g2 >> 26; g2 &= 0x3ffffff;
  std::uint32_t g3 = h3 + c; c = g3 >> 26; g3 &= 0x3ffffff;
  std::uint32_t g4 = h4 + c - (std::uint32_t{1} << 26);

  const std::uint32_t mask = (g4 >> 31) - 1;  // all-ones if h >= p
  h0 = (h0 & ~mask) | (g0 & mask);
  h1 = (h1 & ~mask) | (g1 & mask);
  h2 = (h2 & ~mask) | (g2 & mask);
  h3 = (h3 & ~mask) | (g3 & mask);
  h4 = (h4 & ~mask) | (g4 & mask);

  // h %= 2^128, then tag = (h + pad) mod 2^128 in little-endian.
  const std::uint32_t t0 = h0 | (h1 << 26);
  const std::uint32_t t1 = (h1 >> 6) | (h2 << 20);
  const std::uint32_t t2 = (h2 >> 12) | (h3 << 14);
  const std::uint32_t t3 = (h3 >> 18) | (h4 << 8);

  std::uint64_t f;
  std::uint32_t out32[4];
  f = static_cast<std::uint64_t>(t0) + pad_[0];
  out32[0] = static_cast<std::uint32_t>(f);
  f = static_cast<std::uint64_t>(t1) + pad_[1] + (f >> 32);
  out32[1] = static_cast<std::uint32_t>(f);
  f = static_cast<std::uint64_t>(t2) + pad_[2] + (f >> 32);
  out32[2] = static_cast<std::uint32_t>(f);
  f = static_cast<std::uint64_t>(t3) + pad_[3] + (f >> 32);
  out32[3] = static_cast<std::uint32_t>(f);

  Tag tag;
  for (int i = 0; i < 4; ++i) {
    tag[4 * static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(out32[i]);
    tag[4 * static_cast<std::size_t>(i) + 1] = static_cast<std::uint8_t>(out32[i] >> 8);
    tag[4 * static_cast<std::size_t>(i) + 2] = static_cast<std::uint8_t>(out32[i] >> 16);
    tag[4 * static_cast<std::size_t>(i) + 3] = static_cast<std::uint8_t>(out32[i] >> 24);
  }
  return tag;
}

}  // namespace barb::crypto
