// SHA-256 (FIPS 180-4).
//
// Used for HMAC-based policy-distribution authentication and VPG key
// derivation. Streaming interface plus a one-shot helper.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace barb::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  Digest finalize();

  static Digest hash(std::span<const std::uint8_t> data) {
    Sha256 h;
    h.update(data);
    return h.finalize();
  }

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace barb::crypto
