#include "crypto/hmac.h"

#include <cstring>
#include <vector>

namespace barb::crypto {

Sha256::Digest hmac_sha256(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> message) {
  std::array<std::uint8_t, Sha256::kBlockSize> k_block{};
  if (key.size() > Sha256::kBlockSize) {
    const auto digest = Sha256::hash(key);
    std::memcpy(k_block.data(), digest.data(), digest.size());
  } else {
    std::memcpy(k_block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, Sha256::kBlockSize> ipad, opad;
  for (std::size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k_block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const auto inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finalize();
}

bool constant_time_equal(std::span<const std::uint8_t> a,
                         std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

std::array<std::uint8_t, 32> derive_key(std::span<const std::uint8_t> master,
                                        std::string_view label) {
  std::vector<std::uint8_t> info(label.begin(), label.end());
  info.push_back(0x01);
  return hmac_sha256(master, info);
}

}  // namespace barb::crypto
