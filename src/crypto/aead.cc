#include "crypto/aead.h"

#include <cstring>

#include "crypto/hmac.h"

namespace barb::crypto {

namespace {

Poly1305::Key poly_key_for(const Aead::Key& key, const Aead::Nonce& nonce) {
  // The one-time Poly1305 key is the first 32 bytes of the counter-0 block.
  const auto block0 = ChaCha20::block(key, nonce, 0);
  Poly1305::Key pk;
  std::memcpy(pk.data(), block0.data(), pk.size());
  return pk;
}

Poly1305::Tag compute_tag(const Poly1305::Key& pk, std::span<const std::uint8_t> aad,
                          std::span<const std::uint8_t> ciphertext) {
  Poly1305 mac(pk);
  static constexpr std::uint8_t kZeros[16] = {};
  mac.update(aad);
  if (aad.size() % 16 != 0) mac.update({kZeros, 16 - aad.size() % 16});
  mac.update(ciphertext);
  if (ciphertext.size() % 16 != 0) mac.update({kZeros, 16 - ciphertext.size() % 16});
  std::uint8_t lengths[16];
  for (int i = 0; i < 8; ++i) {
    lengths[i] = static_cast<std::uint8_t>(static_cast<std::uint64_t>(aad.size()) >> (8 * i));
    lengths[8 + i] = static_cast<std::uint8_t>(
        static_cast<std::uint64_t>(ciphertext.size()) >> (8 * i));
  }
  mac.update({lengths, 16});
  return mac.finalize();
}

}  // namespace

std::vector<std::uint8_t> Aead::seal(const Key& key, const Nonce& nonce,
                                     std::span<const std::uint8_t> aad,
                                     std::span<const std::uint8_t> plaintext) {
  std::vector<std::uint8_t> out(plaintext.begin(), plaintext.end());
  ChaCha20::xor_stream(key, nonce, 1, out);
  const auto tag = compute_tag(poly_key_for(key, nonce), aad, out);
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

std::optional<std::vector<std::uint8_t>> Aead::open(
    const Key& key, const Nonce& nonce, std::span<const std::uint8_t> aad,
    std::span<const std::uint8_t> sealed) {
  if (sealed.size() < kTagSize) return std::nullopt;
  const auto ciphertext = sealed.first(sealed.size() - kTagSize);
  const auto tag = sealed.last(kTagSize);
  const auto expected = compute_tag(poly_key_for(key, nonce), aad, ciphertext);
  if (!constant_time_equal(expected, tag)) return std::nullopt;
  std::vector<std::uint8_t> out(ciphertext.begin(), ciphertext.end());
  ChaCha20::xor_stream(key, nonce, 1, out);
  return out;
}

}  // namespace barb::crypto
