// ChaCha20-Poly1305 AEAD (RFC 8439 construction).
//
// This is the cipher behind VPG channels: confidentiality (ChaCha20),
// integrity and sender authentication (Poly1305 under a per-VPG key).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/chacha20.h"
#include "crypto/poly1305.h"

namespace barb::crypto {

class Aead {
 public:
  static constexpr std::size_t kKeySize = ChaCha20::kKeySize;
  static constexpr std::size_t kNonceSize = ChaCha20::kNonceSize;
  static constexpr std::size_t kTagSize = Poly1305::kTagSize;

  using Key = ChaCha20::Key;
  using Nonce = ChaCha20::Nonce;

  // Returns ciphertext || 16-byte tag.
  static std::vector<std::uint8_t> seal(const Key& key, const Nonce& nonce,
                                        std::span<const std::uint8_t> aad,
                                        std::span<const std::uint8_t> plaintext);

  // Verifies the tag and decrypts. Returns nullopt on authentication failure
  // or if `sealed` is shorter than a tag.
  static std::optional<std::vector<std::uint8_t>> open(
      const Key& key, const Nonce& nonce, std::span<const std::uint8_t> aad,
      std::span<const std::uint8_t> sealed);
};

}  // namespace barb::crypto
