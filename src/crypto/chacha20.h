// ChaCha20 stream cipher (RFC 8439).
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace barb::crypto {

class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;
  static constexpr std::size_t kBlockSize = 64;

  using Key = std::array<std::uint8_t, kKeySize>;
  using Nonce = std::array<std::uint8_t, kNonceSize>;
  using Block = std::array<std::uint8_t, kBlockSize>;

  // Produces the keystream block for (key, nonce, counter).
  static Block block(const Key& key, const Nonce& nonce, std::uint32_t counter);

  // XORs `data` in place with the keystream starting at `counter`.
  static void xor_stream(const Key& key, const Nonce& nonce, std::uint32_t counter,
                         std::span<std::uint8_t> data);

  // Exposed for unit testing against the RFC quarter-round vector.
  static void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                            std::uint32_t& d);
};

}  // namespace barb::crypto
