#include "firewall/nic_firewall.h"

#include <utility>

#include "util/logging.h"

namespace barb::firewall {

FirewallNic::FirewallNic(sim::Simulation& sim, net::MacAddress mac, std::string name,
                         DeviceProfile profile)
    : Nic(sim, mac, std::move(name)),
      profile_(std::move(profile)),
      flow_cache_(FlowCacheConfig{profile_.flow_cache_capacity}) {
  // An unconfigured card passes traffic (the paper's "default allow all").
  rules_.set_default_action(RuleAction::kAllow);
  // The compiled structure must always mirror rules_, including the initial
  // unconfigured (empty, default-allow) policy.
  if (profile_.match_backend != MatchBackend::kLinear) compiled_.rebuild(rules_);
}

void FirewallNic::restart() {
  flow_states_.clear();
  // A reset card loses its cached verdicts (card RAM); the compiled
  // structure is part of the installed policy and survives.
  flow_cache_.bump_generation();
  locked_ = false;
  deny_window_count_ = 0;
  deny_window_start_ = sim_.now();
  // A restart resets the card: in-flight and queued frames are lost.
  queue_.clear();
  rx_buffered_bytes_ = 0;
  tx_buffered_bytes_ = 0;
  // Invalidate the in-service frame's pending completion event.
  ++service_epoch_;
  busy_ = false;
}

void FirewallNic::transmit(net::Packet pkt) {
  ++stats_.tx_requested;
  enqueue(Job{std::move(pkt), /*inbound=*/false});
}

void FirewallNic::deliver(net::Packet pkt) {
  ++stats_.rx_frames;
  if (!addressed_to_us(pkt)) {
    ++stats_.rx_dropped;
    return;
  }
  enqueue(Job{std::move(pkt), /*inbound=*/true});
}

void FirewallNic::enqueue(Job job) {
  if (locked_) {
    ++fwstats_.lockup_drops;
    ++(job.inbound ? stats_.rx_dropped : stats_.tx_dropped);
    return;
  }
  // Every arrival costs the embedded CPU descriptor handling, even if the
  // frame is then dropped (receive livelock).
  pending_overhead_ += profile_.arrival_overhead;

  // FloodGuard screening (inbound only): cheap per-frame cost, drops
  // over-rate traffic before it can occupy the buffer or the rule walk.
  if (job.inbound && guard_.config().enabled) {
    pending_overhead_ += guard_.config().screen_cost;
    const net::FrameView* view = job.pkt.view();
    if (view != nullptr && !is_management_frame(*view) &&
        !guard_.admit(*view, sim_.now())) {
      ++stats_.rx_dropped;
      return;
    }
  }

  auto& buffered = job.inbound ? rx_buffered_bytes_ : tx_buffered_bytes_;
  const std::size_t capacity =
      job.inbound ? profile_.rx_buffer_bytes : profile_.tx_buffer_bytes;
  if (buffered + job.pkt.size() > capacity) {
    if (job.inbound && job.pkt.size() > 500) ++fwstats_.rx_ring_drops_large;
    ++(job.inbound ? fwstats_.rx_ring_drops : fwstats_.tx_ring_drops);
    ++(job.inbound ? stats_.rx_dropped : stats_.tx_dropped);
    return;
  }
  buffered += job.pkt.size();
  queue_.push_back(std::move(job));
  if (!busy_) start_next();
}

void FirewallNic::start_next() {
  if (busy_ || queue_.empty() || locked_) return;
  busy_ = true;

  // The embedded CPU picks the frame up: decide its fate and how long the
  // decision takes, in one pass over the rule-set.
  Job& job = queue_.front();
  sim::Duration service =
      profile_.fixed + pending_overhead_ +
      profile_.per_byte * static_cast<std::int64_t>(job.pkt.size());
  pending_overhead_ = sim::Duration::zero();
  // Cached on the frame buffer: when FloodGuard already screened the frame
  // (or an upstream layer looked at it), this re-reads that parse.
  const net::FrameView* view = job.pkt.view();
  job.parsed = view != nullptr;
  job.management = view != nullptr && is_management_frame(*view);
  job.action = RuleAction::kAllow;
  if (view != nullptr && !job.management) {
    const auto& tuple = job.pkt.five_tuple();
    bool state_hit = false;
    if (profile_.match_backend == MatchBackend::kLinear && profile_.stateful &&
        tuple && !view->vpg) {
      service += profile_.state_lookup;
      state_hit = flow_states_.lookup(*tuple, sim_.now());
    }
    if (!state_hit) {
      const MatchResult mr = classify(*view, &service);
      fwstats_.rules_traversed += static_cast<std::uint64_t>(mr.rules_traversed);
      job.action = mr.action;
      job.vpg_id = mr.vpg_id;
      if (mr.action == RuleAction::kVpg) {
        // Crypto runs over the sealed payload: the existing sealed bytes for
        // inbound VPG frames, payload + AEAD tag for outbound. Crypto cost is
        // per frame, so a flow-cache hit on a VPG verdict still pays it.
        const std::size_t crypto_bytes =
            view->vpg ? view->l4_payload.size()
                      : view->l3_payload.size() + crypto::Aead::kTagSize;
        const sim::Duration one_pass =
            profile_.vpg_setup +
            profile_.vpg_per_byte * static_cast<std::int64_t>(crypto_bytes);
        // Decrypt-always ablation: a naive matcher attempts decryption at
        // every VPG rule it walks past, not just the matching one.
        const int passes = (profile_.vpg_decrypt_always && view->vpg)
                               ? std::max(1, mr.vpg_rules_traversed)
                               : 1;
        service += one_pass * static_cast<std::int64_t>(passes);
      }
      if (profile_.match_backend == MatchBackend::kLinear && profile_.stateful &&
          tuple && !view->vpg && mr.action == RuleAction::kAllow) {
        flow_states_.insert(*tuple, sim_.now());
      }
    }
  }

  if (profile_.service_jitter > 0) {
    service = service * (1.0 + profile_.service_jitter *
                                   sim_.rng().uniform_real(-1.0, 1.0));
  }

  fwstats_.cpu_busy += service;
  if (service_hist_ != nullptr) {
    service_hist_->record(static_cast<std::uint64_t>(service.ns()));
  }
  sim_.schedule(service, [this, epoch = service_epoch_] {
    if (epoch != service_epoch_) return;  // card was restarted mid-service
    busy_ = false;
    Job job = std::move(queue_.front());
    queue_.pop_front();
    (job.inbound ? rx_buffered_bytes_ : tx_buffered_bytes_) -= job.pkt.size();
    finish(std::move(job));
    start_next();
  });
}

MatchResult FirewallNic::classify(const net::FrameView& view,
                                  sim::Duration* service) {
  if (profile_.match_backend == MatchBackend::kLinear) {
    const MatchResult mr = rules_.match(view);
    *service += profile_.per_rule * static_cast<std::int64_t>(mr.rules_traversed);
    return mr;
  }

  // Compiled backends. Verdicts are bit-identical to the linear matcher;
  // only the cost model differs.
  ++matchstats_.lookups;
  const auto tuple = view.five_tuple();
  const bool cacheable = profile_.match_backend == MatchBackend::kCompiledFlowCache &&
                         tuple && !view.vpg;
  if (cacheable) {
    *service += profile_.flow_lookup;
    MatchResult cached;
    if (flow_cache_.lookup(*tuple, &cached)) return cached;
  }
  const CompiledMatch cm = compiled_.match(view);
  *service += profile_.compiled_node * static_cast<std::int64_t>(cm.nodes);
  matchstats_.compiled_nodes += static_cast<std::uint64_t>(cm.nodes);
  if (cacheable) {
    *service += profile_.flow_insert;
    flow_cache_.insert(*tuple, cm.result);
  }
  return cm.result;
}

void FirewallNic::finish(Job job) {
  ++fwstats_.frames_processed;
  if (!job.parsed) {
    // Unparseable garbage is dropped after the base processing cost.
    ++(job.inbound ? stats_.rx_dropped : stats_.tx_dropped);
    return;
  }
  if (job.management) {
    if (job.inbound) {
      ++fwstats_.rx_allowed;
      deliver_to_host(std::move(job.pkt));
    } else {
      ++fwstats_.tx_allowed;
      send_to_wire(std::move(job.pkt));
    }
    return;
  }

  if (job.inbound) {
    switch (job.action) {
      case RuleAction::kAllow:
        ++fwstats_.rx_allowed;
        deliver_to_host(std::move(job.pkt));
        return;
      case RuleAction::kVpg:
        // decapsulate() rejects non-VPG frames, bad auth, and replays.
        if (vpgs_.decapsulate(job.pkt)) {
          ++fwstats_.rx_allowed;
          deliver_to_host(std::move(job.pkt));
        } else {
          // Cleartext traffic matching a VPG selector, or failed auth:
          // policy requires the tunnel, so the frame dies here.
          ++fwstats_.vpg_drops;
          ++stats_.rx_dropped;
        }
        return;
      case RuleAction::kDeny:
        ++fwstats_.rx_denied;
        ++stats_.rx_dropped;
        note_inbound_deny();
        return;
    }
    return;
  }

  switch (job.action) {
    case RuleAction::kAllow:
      ++fwstats_.tx_allowed;
      send_to_wire(std::move(job.pkt));
      return;
    case RuleAction::kVpg:
      if (vpgs_.encapsulate(job.vpg_id, job.pkt)) {
        ++fwstats_.tx_allowed;
        send_to_wire(std::move(job.pkt));
      } else {
        ++fwstats_.vpg_drops;
        ++stats_.tx_dropped;
      }
      return;
    case RuleAction::kDeny:
      ++fwstats_.tx_denied;
      ++stats_.tx_dropped;
      return;
  }
}

void FirewallNic::register_metrics(telemetry::MetricRegistry& registry,
                                   const std::string& labels) {
  auto fw_counter = [&](const char* name, const std::uint64_t* field) {
    registry.counter_fn(name, labels,
                        [field] { return static_cast<double>(*field); });
  };
  fw_counter("fw.rx_ring_drops", &fwstats_.rx_ring_drops);
  fw_counter("fw.rx_ring_drops_large", &fwstats_.rx_ring_drops_large);
  fw_counter("fw.tx_ring_drops", &fwstats_.tx_ring_drops);
  fw_counter("fw.rx_allowed", &fwstats_.rx_allowed);
  fw_counter("fw.rx_denied", &fwstats_.rx_denied);
  fw_counter("fw.tx_allowed", &fwstats_.tx_allowed);
  fw_counter("fw.tx_denied", &fwstats_.tx_denied);
  fw_counter("fw.vpg_drops", &fwstats_.vpg_drops);
  fw_counter("fw.lockup_drops", &fwstats_.lockup_drops);
  fw_counter("fw.frames_processed", &fwstats_.frames_processed);
  fw_counter("fw.rules_traversed", &fwstats_.rules_traversed);
  registry.counter_fn("fw.cpu_busy_seconds", labels,
                      [this] { return fwstats_.cpu_busy.to_seconds(); });
  registry.gauge("fw.queue_depth", labels,
                 [this] { return static_cast<double>(queue_.size()); });
  registry.gauge("fw.rx_buffered_bytes", labels,
                 [this] { return static_cast<double>(rx_buffered_bytes_); });
  registry.gauge("fw.tx_buffered_bytes", labels,
                 [this] { return static_cast<double>(tx_buffered_bytes_); });
  registry.gauge("fw.locked_up", labels,
                 [this] { return locked_ ? 1.0 : 0.0; });
  service_hist_ = &registry.histogram("fw.service_time_ns", labels);

  if (profile_.match_backend != MatchBackend::kLinear) {
    // "match.*" joins the registry only for the compiled backends: the paper
    // figures all run the linear backend, so their metric set — and
    // therefore their timeline artifacts — stay byte-identical to a build
    // without this subsystem (same pattern as nic.rx_checksum_drops).
    fw_counter("match.lookups", &matchstats_.lookups);
    fw_counter("match.compiled_nodes", &matchstats_.compiled_nodes);
    fw_counter("match.rebuilds", &matchstats_.rebuilds);
    auto cache_counter = [&](const char* name, std::uint64_t FlowCacheStats::* field) {
      registry.counter_fn(name, labels, [this, field] {
        return static_cast<double>(flow_cache_.stats().*field);
      });
    };
    cache_counter("match.flow_lookups", &FlowCacheStats::lookups);
    cache_counter("match.flow_hits", &FlowCacheStats::hits);
    cache_counter("match.flow_misses", &FlowCacheStats::misses);
    cache_counter("match.flow_inserts", &FlowCacheStats::inserts);
    cache_counter("match.flow_evictions", &FlowCacheStats::evictions);
    cache_counter("match.flow_stale_hits", &FlowCacheStats::stale_hits);
    cache_counter("match.flow_invalidations", &FlowCacheStats::invalidations);
    registry.gauge("match.flow_live_entries", labels, [this] {
      return static_cast<double>(flow_cache_.live_entries());
    });
    registry.gauge("match.compiled_memory_bytes", labels, [this] {
      return static_cast<double>(compiled_.stats().memory_bytes);
    });
  }

  if (guard_.config().enabled) {
    // guard_ has stable address even if enable_flood_guard replaces it.
    auto guard_counter = [&](const char* name, std::uint64_t FloodGuardStats::* field) {
      registry.counter_fn(name, labels, [this, field] {
        return static_cast<double>(guard_.stats().*field);
      });
    };
    guard_counter("guard.screened", &FloodGuardStats::screened);
    guard_counter("guard.per_source_drops", &FloodGuardStats::per_source_drops);
    guard_counter("guard.new_source_drops", &FloodGuardStats::new_source_drops);
    guard_counter("guard.aggregate_drops", &FloodGuardStats::aggregate_drops);
    guard_counter("guard.penalized_drops", &FloodGuardStats::penalized_drops);
    guard_counter("guard.penalties_imposed", &FloodGuardStats::penalties_imposed);
    guard_counter("guard.evictions", &FloodGuardStats::evictions);
    registry.gauge("guard.tracked_sources", labels, [this] {
      return static_cast<double>(guard_.tracked_sources());
    });
  }
}

void FirewallNic::reconfigure_guard() {
  if (!guard_.config().enabled) return;
  // The card knows its own minimum-frame match cost for the installed
  // backend; the guard scales admission so admitted traffic cannot saturate
  // the embedded CPU. For the compiled backends the conservative figure is
  // a full miss (worst-case decision walk, plus the cache probe + insert
  // when the flow cache is on — a spoofed flood misses every time).
  sim::Duration match_cost;
  switch (profile_.match_backend) {
    case MatchBackend::kLinear:
      match_cost = profile_.per_rule * rules_.total_cost_units();
      break;
    case MatchBackend::kCompiled:
      match_cost = profile_.compiled_node * compiled_.worst_case_nodes();
      break;
    case MatchBackend::kCompiledFlowCache:
      match_cost = profile_.flow_lookup + profile_.flow_insert +
                   profile_.compiled_node * compiled_.worst_case_nodes();
      break;
  }
  const sim::Duration walk =
      profile_.arrival_overhead + profile_.fixed + profile_.per_byte * 60 +
      match_cost;
  guard_.reconfigure_for_capacity(1.0 / walk.to_seconds());
}

bool FirewallNic::is_management_frame(const net::FrameView& view) const {
  if (!management_peer_ || !view.ip) return false;
  return view.ip->src == *management_peer_ || view.ip->dst == *management_peer_;
}

void FirewallNic::note_inbound_deny() {
  if (profile_.lockup_denies_per_sec == 0) return;
  const auto now = sim_.now();
  if (now - deny_window_start_ >= sim::Duration::seconds(1)) {
    deny_window_start_ = now;
    deny_window_count_ = 0;
  }
  if (++deny_window_count_ > profile_.lockup_denies_per_sec) {
    locked_ = true;
    BARB_WARN("%s: deny-path lockup latched at %s (denied %llu frames within 1s)",
              name_.c_str(), now.to_string().c_str(),
              static_cast<unsigned long long>(deny_window_count_));
  }
}

}  // namespace barb::firewall
