// Host-resident software firewall (the iptables baseline).
//
// Same single-server queueing structure as the NIC firewall — but the server
// is the host CPU (1 GHz P3-class), whose per-packet costs are two orders of
// magnitude smaller than the NIC's embedded processor. That difference is
// the paper's comparison: iptables shows no bandwidth loss below 64+ rules
// and shrugs off every flood the testbed can generate.
#pragma once

#include <cstdint>
#include <deque>

#include "firewall/classifier/compiled_classifier.h"
#include "firewall/classifier/flow_cache.h"
#include "firewall/profiles.h"
#include "firewall/rule_set.h"
#include "sim/simulation.h"
#include "stack/packet_filter.h"
#include "telemetry/registry.h"

namespace barb::firewall {

struct SoftwareFirewallConfig {
  // Netfilter hook + conntrack-less match baseline on a 1 GHz host.
  sim::Duration per_packet = sim::Duration::microseconds(1);
  sim::Duration per_rule = sim::Duration::nanoseconds(60);
  // Kernel backlog before packets are dropped.
  std::size_t backlog = 5000;
  // Matching backend; same semantics as DeviceProfile::match_backend, with
  // host-CPU cost constants (the 1 GHz P3 walks a compiled node or a hash
  // chain roughly two orders of magnitude faster than the NIC's embedded
  // processor — same ratio the paper measured for the rule walk).
  MatchBackend backend = MatchBackend::kLinear;
  sim::Duration per_node = sim::Duration::nanoseconds(15);
  sim::Duration flow_lookup = sim::Duration::nanoseconds(80);
  sim::Duration flow_insert = sim::Duration::nanoseconds(40);
  std::size_t flow_cache_capacity = 8192;
};

struct SoftwareFirewallStats {
  std::uint64_t allowed = 0;
  std::uint64_t denied = 0;
  std::uint64_t backlog_drops = 0;
  sim::Duration cpu_busy;
};

class SoftwareFirewall : public stack::HostPacketFilter {
 public:
  SoftwareFirewall(sim::Simulation& sim, SoftwareFirewallConfig config = {});

  // Rules are applied to both directions (mirroring a symmetric
  // INPUT/OUTPUT chain setup). Rebuilds the compiled structure and bumps
  // the flow-cache generation when a non-linear backend is configured.
  void install_rule_set(RuleSet rules) {
    rules_ = std::move(rules);
    if (config_.backend != MatchBackend::kLinear) {
      compiled_.rebuild(rules_);
      flow_cache_.bump_generation();
    }
  }
  const RuleSet& rule_set() const { return rules_; }
  const SoftwareFirewallStats& stats() const { return stats_; }
  const FlowCache& flow_cache() const { return flow_cache_; }

  void filter(stack::FilterDirection direction, net::Packet pkt,
              Resume resume) override;

  // Registers "swfw.*" counters, a backlog-depth gauge, and a per-packet
  // service-time histogram ("swfw.service_time_ns").
  void register_metrics(telemetry::MetricRegistry& registry,
                        const std::string& labels);

 private:
  struct Job {
    net::Packet pkt;
    Resume resume;
  };

  void start_next();

  // Returns the verdict for one packet, accruing match cost into *service.
  MatchResult classify(const net::FrameView& view, sim::Duration* service);

  sim::Simulation& sim_;
  SoftwareFirewallConfig config_;
  RuleSet rules_;
  CompiledClassifier compiled_;
  FlowCache flow_cache_;
  std::deque<Job> queue_;
  bool busy_ = false;
  SoftwareFirewallStats stats_;
  telemetry::Histogram* service_hist_ = nullptr;  // registry-owned
};

}  // namespace barb::firewall
