#include "firewall/policy_protocol.h"

#include "crypto/hmac.h"
#include "util/byte_io.h"

namespace barb::firewall {

std::vector<std::uint8_t> encode_policy_message(const PolicyMessage& msg,
                                                std::span<const std::uint8_t> key) {
  std::vector<std::uint8_t> out;
  out.reserve(18 + msg.body.size() + kPolicyMacSize);
  ByteWriter w(out);
  w.u32(kPolicyMagic);
  w.u8(static_cast<std::uint8_t>(msg.type));
  w.u8(0);  // flags
  w.u64(msg.seq);
  w.u32(static_cast<std::uint32_t>(msg.body.size()));
  w.bytes(reinterpret_cast<const std::uint8_t*>(msg.body.data()), msg.body.size());
  const auto mac = crypto::hmac_sha256(key, out);
  w.bytes(mac);
  return out;
}

std::optional<PolicyMessage> PolicyMessageReader::next(
    std::span<const std::uint8_t> key) {
  if (corrupted_) return std::nullopt;
  constexpr std::size_t kHeaderSize = 18;
  if (buffer_.size() < kHeaderSize) return std::nullopt;

  ByteReader r(buffer_);
  const std::uint32_t magic = r.u32();
  if (magic != kPolicyMagic) {
    corrupted_ = true;
    return std::nullopt;
  }
  const std::uint8_t type = r.u8();
  r.u8();  // flags
  const std::uint64_t seq = r.u64();
  const std::uint32_t len = r.u32();
  if (len > 1 << 20) {  // sanity bound on policy size
    corrupted_ = true;
    return std::nullopt;
  }
  const std::size_t total = kHeaderSize + len + kPolicyMacSize;
  if (buffer_.size() < total) return std::nullopt;

  const std::span<const std::uint8_t> authed(buffer_.data(), kHeaderSize + len);
  const std::span<const std::uint8_t> mac(buffer_.data() + kHeaderSize + len,
                                          kPolicyMacSize);
  const auto expected = crypto::hmac_sha256(key, authed);
  if (!crypto::constant_time_equal(expected, mac)) {
    corrupted_ = true;
    return std::nullopt;
  }
  if (type < 1 || type > 5) {
    corrupted_ = true;
    return std::nullopt;
  }

  PolicyMessage msg;
  msg.type = static_cast<PolicyMsgType>(type);
  msg.seq = seq;
  msg.body.assign(reinterpret_cast<const char*>(buffer_.data() + kHeaderSize), len);
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(total));
  return msg;
}

std::optional<std::vector<std::uint8_t>> parse_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  auto digit = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = digit(hex[i]), lo = digit(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

}  // namespace barb::firewall
