// Flow state table: stateful packet filtering in the style of OpenBSD pf
// (Hartmeier, cited by the paper as the stateful software comparator).
//
// The first packet of a flow walks the rule-set; on an allow verdict the
// flow's 5-tuple enters the table and subsequent packets match with one
// O(1) lookup instead of the linear walk. Entries expire after an idle
// timeout and the table is LRU-bounded — a flood of unique tuples must not
// exhaust memory (it instead churns the table and gains nothing, which is
// exactly why statefulness repairs Figure 2's depth penalty but not
// Figure 3's flood vulnerability).
//
// Storage: each live flow's canonical tuple is interned once in a slab
// (net::FiveTupleSlab) and referenced by a 32-bit handle from (a) an
// open-addressing slot array and (b) intrusive LRU links — three flat
// vectors total, zero allocations per flow in steady state. The previous
// implementation paid an unordered_map node plus a std::list node per flow
// (two heap allocations and two tuple copies); under a spoofed flood that
// churn was the table's dominant cost. Semantics (hit/miss/expire/evict
// order and counters) are unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "net/five_tuple.h"
#include "net/intern.h"
#include "sim/time.h"

namespace barb::firewall {

struct FlowStateConfig {
  std::size_t max_entries = 8192;
  sim::Duration idle_timeout = sim::Duration::seconds(60);
};

struct FlowStateStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t expirations = 0;
};

class FlowStateTable {
 public:
  explicit FlowStateTable(FlowStateConfig config = {});

  // True if the flow (in either direction) has live state; refreshes it.
  bool lookup(const net::FiveTuple& tuple, sim::TimePoint now);

  // Registers an allowed flow (idempotent; refreshes existing state).
  void insert(const net::FiveTuple& tuple, sim::TimePoint now);

  void clear();
  std::size_t size() const { return live_; }
  const FlowStateStats& stats() const { return stats_; }

  // Heap footprint: slot array + tuple slab + LRU/timestamp nodes.
  std::size_t memory_bytes() const {
    return slots_.capacity() * sizeof(std::uint32_t) + tuples_.memory_bytes() +
           nodes_.capacity() * sizeof(Node);
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  // Direction-insensitive canonical form.
  static net::FiveTuple canonical(const net::FiveTuple& tuple) {
    const bool ordered =
        tuple.src.value() < tuple.dst.value() ||
        (tuple.src == tuple.dst && tuple.src_port <= tuple.dst_port);
    return ordered ? tuple : tuple.reversed();
  }

  struct Node {
    sim::TimePoint last_seen;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };

  std::size_t home_slot(const net::FiveTuple& tuple) const;
  // Slot holding `tuple`, or the slot count if absent.
  std::size_t find_slot(const net::FiveTuple& tuple) const;
  // Backward-shift deletion keeping linear-probe chains contiguous.
  void erase_slot(std::size_t slot);
  void remove(std::size_t slot, std::uint32_t handle);

  void lru_unlink(std::uint32_t handle);
  void lru_push_front(std::uint32_t handle);

  FlowStateConfig config_;
  net::FiveTupleSlab tuples_;
  std::vector<Node> nodes_;            // indexed by tuple handle
  std::vector<std::uint32_t> slots_;   // handle + 1; 0 = empty
  std::size_t slot_mask_ = 0;
  std::size_t live_ = 0;
  std::uint32_t lru_head_ = kNil;      // most recently used
  std::uint32_t lru_tail_ = kNil;      // eviction candidate
  FlowStateStats stats_;
};

}  // namespace barb::firewall
