// Flow state table: stateful packet filtering in the style of OpenBSD pf
// (Hartmeier, cited by the paper as the stateful software comparator).
//
// The first packet of a flow walks the rule-set; on an allow verdict the
// flow's 5-tuple enters the table and subsequent packets match with one
// O(1) lookup instead of the linear walk. Entries expire after an idle
// timeout and the table is LRU-bounded — a flood of unique tuples must not
// exhaust memory (it instead churns the table and gains nothing, which is
// exactly why statefulness repairs Figure 2's depth penalty but not
// Figure 3's flood vulnerability).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "net/five_tuple.h"
#include "sim/time.h"

namespace barb::firewall {

struct FlowStateConfig {
  std::size_t max_entries = 8192;
  sim::Duration idle_timeout = sim::Duration::seconds(60);
};

struct FlowStateStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t expirations = 0;
};

class FlowStateTable {
 public:
  explicit FlowStateTable(FlowStateConfig config = {}) : config_(config) {}

  // True if the flow (in either direction) has live state; refreshes it.
  bool lookup(const net::FiveTuple& tuple, sim::TimePoint now);

  // Registers an allowed flow (idempotent; refreshes existing state).
  void insert(const net::FiveTuple& tuple, sim::TimePoint now);

  void clear();
  std::size_t size() const { return entries_.size(); }
  const FlowStateStats& stats() const { return stats_; }

 private:
  // Direction-insensitive canonical form.
  static net::FiveTuple canonical(const net::FiveTuple& tuple) {
    const bool ordered =
        tuple.src.value() < tuple.dst.value() ||
        (tuple.src == tuple.dst && tuple.src_port <= tuple.dst_port);
    return ordered ? tuple : tuple.reversed();
  }

  struct Entry {
    sim::TimePoint last_seen;
    std::list<net::FiveTuple>::iterator lru_position;
  };

  FlowStateConfig config_;
  std::unordered_map<net::FiveTuple, Entry> entries_;
  std::list<net::FiveTuple> lru_;  // front = most recently used
  FlowStateStats stats_;
};

}  // namespace barb::firewall
