#include "firewall/rule_set.h"

#include <cstdio>

namespace barb::firewall {

const char* to_string(RuleAction action) {
  switch (action) {
    case RuleAction::kAllow: return "allow";
    case RuleAction::kDeny: return "deny";
    case RuleAction::kVpg: return "vpg";
  }
  return "?";
}

namespace {

std::string port_range_string(const PortRange& p) {
  if (p.any()) return "";
  char buf[32];
  if (p.lo == p.hi) {
    std::snprintf(buf, sizeof(buf), " port %u", p.lo);
  } else {
    std::snprintf(buf, sizeof(buf), " port %u-%u", p.lo, p.hi);
  }
  return buf;
}

std::string endpoint_string(net::Ipv4Address net, int prefix, const PortRange& ports) {
  std::string s;
  if (prefix == 0) {
    s = "any";
  } else {
    s = net.to_string();
    if (prefix != 32) s += "/" + std::to_string(prefix);
  }
  return s + port_range_string(ports);
}

const char* protocol_name(std::uint8_t protocol) {
  switch (protocol) {
    case 0: return "any";
    case 1: return "icmp";
    case 6: return "tcp";
    case 17: return "udp";
    default: return nullptr;
  }
}

}  // namespace

std::string Rule::to_string() const {
  if (action == RuleAction::kVpg) {
    std::string s = "vpg " + std::to_string(vpg_id) + " between " +
                    endpoint_string(src_net, src_prefix, src_ports) + " and " +
                    endpoint_string(dst_net, dst_prefix, dst_ports);
    return s;
  }
  std::string s = firewall::to_string(action);
  s += " ";
  if (const char* name = protocol_name(protocol)) {
    s += name;
  } else {
    s += "proto" + std::to_string(protocol);
  }
  s += " from " + endpoint_string(src_net, src_prefix, src_ports);
  s += " to " + endpoint_string(dst_net, dst_prefix, dst_ports);
  if (!bidirectional) s += " oneway";
  return s;
}

MatchResult RuleSet::match(const net::FrameView& v) const {
  MatchResult result;
  result.rules_traversed = 0;

  const bool is_vpg_frame = v.vpg.has_value();
  const auto tuple = v.five_tuple();
  const net::FiveTuple reversed = tuple ? tuple->reversed() : net::FiveTuple{};

  int index = 0;
  for (const auto& rule : rules_) {
    result.rules_traversed += rule.cost_units();
    if (rule.action == RuleAction::kVpg) ++result.vpg_rules_traversed;
    bool hit = false;
    if (is_vpg_frame) {
      hit = rule.action == RuleAction::kVpg && rule.vpg_id == v.vpg->vpg_id;
    } else if (tuple) {
      hit = rule.matches(*tuple, reversed);
    }
    if (hit) {
      result.action = rule.action;
      result.vpg_id = rule.vpg_id;
      result.matched_index = index;
      return result;
    }
    ++index;
  }
  result.action = default_action_;
  result.matched_index = -1;
  return result;
}

MatchResult RuleSet::match(const net::FiveTuple& t) const {
  MatchResult result;
  const net::FiveTuple reversed = t.reversed();
  int index = 0;
  for (const auto& rule : rules_) {
    result.rules_traversed += rule.cost_units();
    if (rule.action == RuleAction::kVpg) ++result.vpg_rules_traversed;
    if (rule.matches(t, reversed)) {
      result.action = rule.action;
      result.vpg_id = rule.vpg_id;
      result.matched_index = index;
      return result;
    }
    ++index;
  }
  result.action = default_action_;
  result.matched_index = -1;
  return result;
}

std::string RuleSet::to_string() const {
  std::string s = "default ";
  s += firewall::to_string(default_action_);
  s += "\n";
  for (const auto& rule : rules_) {
    s += rule.to_string();
    s += "\n";
  }
  return s;
}

}  // namespace barb::firewall
