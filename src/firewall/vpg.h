// Virtual Private Groups: encrypted, authenticated channels between the
// NICs of group members (Markham et al.; the ADF's headline feature).
//
// Encapsulation replaces the transport payload of an IPv4 packet with
//   VpgHeader | ChaCha20-Poly1305(seal)
// under a per-group traffic key derived from the group master key. The
// cleartext VPG header is bound as AAD; the AEAD nonce combines the
// sender's (outer) IPv4 address with the sender's 64-bit sequence number,
// so any number of group members can share the key without nonce reuse.
// Replay protection is a per-(group, sender) sliding window.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/aead.h"
#include "net/frame_view.h"
#include "net/packet.h"

namespace barb::firewall {

struct VpgStats {
  std::uint64_t encapsulated = 0;
  std::uint64_t decapsulated = 0;
  std::uint64_t auth_failures = 0;
  std::uint64_t replays_dropped = 0;
  std::uint64_t unknown_vpg = 0;
};

class VpgTable {
 public:
  // Installs (or replaces) a group keyed by the 32-byte master key. Both
  // members derive the same per-direction keys from the master.
  void install(std::uint32_t vpg_id, std::span<const std::uint8_t> master_key);
  void remove(std::uint32_t vpg_id);
  bool has(std::uint32_t vpg_id) const { return groups_.contains(vpg_id); }
  std::size_t size() const { return groups_.size(); }
  const VpgStats& stats() const { return stats_; }

  // Rewrites `frame` (a full Ethernet frame) into its VPG-encapsulated form.
  // Returns false if the VPG is unknown or the frame is not IPv4.
  bool encapsulate(std::uint32_t vpg_id, std::vector<std::uint8_t>& frame);

  // Authenticates and decrypts a VPG frame in place, restoring the original
  // IPv4 packet. Returns false (and counts why) on failure.
  bool decapsulate(std::vector<std::uint8_t>& frame);

  // Packet forms used on the NIC fast path: frame buffers are immutable, so
  // a successful encap/decap swaps in a freshly pooled buffer (reusing the
  // packet's cached parse for the input frame) and leaves `created`/`id`
  // untouched. On failure the packet is unchanged.
  bool encapsulate(std::uint32_t vpg_id, net::Packet& pkt);
  bool decapsulate(net::Packet& pkt);

 private:
  struct ReplayState {
    // Highest seen + bitmap of the preceding 64 sequences.
    std::uint64_t highest = 0;
    std::uint64_t window = 0;
  };
  struct Group {
    crypto::Aead::Key key;
    std::uint64_t tx_seq = 0;
    // Per-sender replay windows (keyed by the sender's outer IPv4 address).
    std::unordered_map<std::uint32_t, ReplayState> rx;
  };

  static crypto::Aead::Nonce nonce_for(std::uint32_t sender_ip, std::uint64_t seq);
  static bool replay_check_and_update(ReplayState& state, std::uint64_t seq);

  // Shared cores: build the rewritten frame into `out` (must be empty).
  // Both entry forms (vector and Packet) funnel through these so their
  // wire bytes are identical.
  bool encapsulate_into(std::uint32_t vpg_id, std::span<const std::uint8_t> frame,
                        const net::FrameView& view, std::vector<std::uint8_t>& out);
  bool decapsulate_into(std::span<const std::uint8_t> frame,
                        const net::FrameView& view, std::vector<std::uint8_t>& out);

  std::unordered_map<std::uint32_t, Group> groups_;
  VpgStats stats_;
};

}  // namespace barb::firewall
