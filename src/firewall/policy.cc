#include "firewall/policy.h"

#include <charconv>
#include <vector>

namespace barb::firewall {

namespace {

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
    std::size_t start = pos;
    while (pos < line.size() && line[pos] != ' ' && line[pos] != '\t') ++pos;
    if (pos > start) tokens.push_back(line.substr(start, pos - start));
  }
  return tokens;
}

bool parse_u16(std::string_view s, std::uint16_t& out) {
  unsigned value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size() || value > 65535) return false;
  out = static_cast<std::uint16_t>(value);
  return true;
}

bool parse_u32(std::string_view s, std::uint32_t& out) {
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size() || value > 0xffffffffULL) {
    return false;
  }
  out = static_cast<std::uint32_t>(value);
  return true;
}

// "any" | ip | ip/prefix, optionally followed by "port lo[-hi]" tokens.
// Consumes tokens starting at `i`.
bool parse_endpoint(const std::vector<std::string_view>& tokens, std::size_t& i,
                    net::Ipv4Address& net_out, int& prefix_out, PortRange& ports_out,
                    std::string& error) {
  if (i >= tokens.size()) {
    error = "expected address";
    return false;
  }
  const std::string_view addr = tokens[i++];
  if (addr == "any") {
    net_out = net::Ipv4Address::any();
    prefix_out = 0;
  } else {
    const auto slash = addr.find('/');
    std::string_view ip_part = addr.substr(0, slash);
    auto ip = net::Ipv4Address::parse(ip_part);
    if (!ip) {
      error = "bad address '" + std::string(addr) + "'";
      return false;
    }
    net_out = *ip;
    if (slash == std::string_view::npos) {
      prefix_out = 32;
    } else {
      std::uint16_t prefix = 0;
      if (!parse_u16(addr.substr(slash + 1), prefix) || prefix > 32) {
        error = "bad prefix in '" + std::string(addr) + "'";
        return false;
      }
      prefix_out = prefix;
    }
  }
  ports_out = PortRange{};
  if (i < tokens.size() && tokens[i] == "port") {
    ++i;
    if (i >= tokens.size()) {
      error = "expected port number";
      return false;
    }
    const std::string_view spec = tokens[i++];
    const auto dash = spec.find('-');
    std::uint16_t lo = 0, hi = 0;
    if (dash == std::string_view::npos) {
      if (!parse_u16(spec, lo)) {
        error = "bad port '" + std::string(spec) + "'";
        return false;
      }
      hi = lo;
    } else {
      if (!parse_u16(spec.substr(0, dash), lo) || !parse_u16(spec.substr(dash + 1), hi) ||
          lo > hi) {
        error = "bad port range '" + std::string(spec) + "'";
        return false;
      }
    }
    if (lo == 0) {
      error = "port 0 is not allowed in a rule";
      return false;
    }
    ports_out = PortRange{lo, hi};
  }
  return true;
}

bool parse_protocol(std::string_view token, std::uint8_t& out) {
  if (token == "any") {
    out = 0;
  } else if (token == "tcp") {
    out = 6;
  } else if (token == "udp") {
    out = 17;
  } else if (token == "icmp") {
    out = 1;
  } else {
    return false;
  }
  return true;
}

}  // namespace

PolicyParseResult parse_policy(std::string_view text) {
  RuleSet rule_set;
  PolicyParseResult result;

  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto nl = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;

    // Strip comments.
    const auto hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;

    auto fail = [&](std::string message) {
      result.error = PolicyParseError{line_no, std::move(message)};
      return result;
    };

    if (tokens[0] == "default") {
      if (tokens.size() != 2) return fail("usage: default allow|deny");
      if (tokens[1] == "allow") {
        rule_set.set_default_action(RuleAction::kAllow);
      } else if (tokens[1] == "deny") {
        rule_set.set_default_action(RuleAction::kDeny);
      } else {
        return fail("default action must be allow or deny");
      }
      continue;
    }

    if (tokens[0] == "allow" || tokens[0] == "deny") {
      Rule rule;
      rule.action = tokens[0] == "allow" ? RuleAction::kAllow : RuleAction::kDeny;
      std::size_t i = 1;
      if (i >= tokens.size()) return fail("expected protocol");
      if (!parse_protocol(tokens[i++], rule.protocol)) {
        return fail("unknown protocol '" + std::string(tokens[i - 1]) + "'");
      }
      std::string error;
      if (i >= tokens.size() || tokens[i] != "from") return fail("expected 'from'");
      ++i;
      if (!parse_endpoint(tokens, i, rule.src_net, rule.src_prefix, rule.src_ports,
                          error)) {
        return fail(error);
      }
      if (i >= tokens.size() || tokens[i] != "to") return fail("expected 'to'");
      ++i;
      if (!parse_endpoint(tokens, i, rule.dst_net, rule.dst_prefix, rule.dst_ports,
                          error)) {
        return fail(error);
      }
      if (i < tokens.size() && tokens[i] == "oneway") {
        rule.bidirectional = false;
        ++i;
      }
      if (i != tokens.size()) return fail("trailing tokens");
      rule_set.add(rule);
      continue;
    }

    if (tokens[0] == "vpg") {
      Rule rule;
      rule.action = RuleAction::kVpg;
      std::size_t i = 1;
      if (i >= tokens.size() || !parse_u32(tokens[i], rule.vpg_id) || rule.vpg_id == 0) {
        return fail("expected nonzero vpg id");
      }
      ++i;
      std::string error;
      if (i >= tokens.size() || tokens[i] != "between") return fail("expected 'between'");
      ++i;
      if (!parse_endpoint(tokens, i, rule.src_net, rule.src_prefix, rule.src_ports,
                          error)) {
        return fail(error);
      }
      if (i >= tokens.size() || tokens[i] != "and") return fail("expected 'and'");
      ++i;
      if (!parse_endpoint(tokens, i, rule.dst_net, rule.dst_prefix, rule.dst_ports,
                          error)) {
        return fail(error);
      }
      if (i != tokens.size()) return fail("trailing tokens");
      rule_set.add(rule);
      continue;
    }

    return fail("unknown directive '" + std::string(tokens[0]) + "'");
  }

  result.rule_set = std::move(rule_set);
  return result;
}

}  // namespace barb::firewall
