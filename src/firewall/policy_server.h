// Central policy server (the EFW Policy Server's role in Figure 1).
//
// Holds the authoritative per-host policy (rule-set text plus VPG master
// keys), pushes it to connected agents, tracks acknowledgements and
// heartbeats, and can command an agent to restart its card — the recovery
// path for the EFW deny-flood lockup.
#pragma once

#include <cstdint>
#include <span>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/ipv4_address.h"
#include "firewall/policy_protocol.h"
#include "stack/host.h"
#include "stack/tcp.h"
#include "telemetry/registry.h"

namespace barb::firewall {

struct VpgKeyEntry {
  std::uint32_t vpg_id = 0;
  std::vector<std::uint8_t> master_key;  // 32 bytes
};

struct AgentStatus {
  bool connected = false;
  std::uint64_t acked_version = 0;
  std::uint64_t pushed_version = 0;
  sim::TimePoint last_heartbeat;
  bool reported_locked = false;
  std::uint64_t heartbeats = 0;
};

// Aggregate distribution counters over every agent the server talks to (the
// fleet benches chart these; per-agent detail stays in AgentStatus).
struct PolicyServerStats {
  std::uint64_t hellos = 0;           // identified enrollments (incl. re-enrolls)
  std::uint64_t pushes = 0;           // policy-update messages sent
  std::uint64_t push_bytes = 0;       // encoded bytes of those pushes
  std::uint64_t acks = 0;             // acks received
  std::uint64_t heartbeats = 0;       // heartbeats received
  std::uint64_t corrupted_streams = 0;
};

class PolicyServer {
 public:
  static constexpr std::uint16_t kDefaultPort = 3456;

  PolicyServer(stack::Host& host, std::span<const std::uint8_t> deployment_key,
               std::uint16_t port = kDefaultPort);
  ~PolicyServer();

  void start();

  // Sets the policy for an agent host; pushes immediately if connected.
  void set_policy(net::Ipv4Address agent, std::string policy_text);

  // Fleet fan-out: sets the same policy text for every listed agent (each
  // gets its own versioned entry and an immediate push when connected).
  // Returns the number of pushes sent synchronously.
  std::size_t set_policy_all(std::span<const net::Ipv4Address> agents,
                             const std::string& policy_text);

  // Creates a VPG across a group of agent hosts: every member receives the
  // same group master key (the rule itself must be part of each host's
  // policy text) and gets a re-push. The key is generated from the
  // simulation RNG. Groups may have any number of members — VPGs are
  // groups, not just pairs (Markham et al.).
  void create_vpg(std::uint32_t vpg_id, std::span<const net::Ipv4Address> members);
  void create_vpg(std::uint32_t vpg_id, net::Ipv4Address a, net::Ipv4Address b) {
    const net::Ipv4Address pair[] = {a, b};
    create_vpg(vpg_id, pair);
  }

  // Commands the agent to restart its firewall card.
  void command_restart(net::Ipv4Address agent);

  const std::map<net::Ipv4Address, AgentStatus>& agents() const { return agents_; }
  // Version currently configured for an agent (0 if none).
  std::uint64_t policy_version(net::Ipv4Address agent) const;

  const PolicyServerStats& stats() const { return stats_; }
  // Agents with a live identified session.
  std::size_t count_connected() const;
  // Agents whose acked policy version is >= `version` (convergence metric).
  std::size_t count_acked_at_least(std::uint64_t version) const;

  // Registers distribution counters/gauges ("policy.*") for the fleet
  // benches. Opt-in: not part of the figure testbed's metric set.
  void register_metrics(telemetry::MetricRegistry& registry,
                        const std::string& labels);

 private:
  struct Session;

  std::string render_policy_body(net::Ipv4Address agent);
  void push_policy(net::Ipv4Address agent);
  void send_to(net::Ipv4Address agent, const PolicyMessage& msg);
  void handle_message(Session& session, const PolicyMessage& msg);

  struct PolicyEntry {
    std::string text;
    std::vector<VpgKeyEntry> keys;
    std::uint64_t version = 0;
  };

  stack::Host& host_;
  std::vector<std::uint8_t> key_;
  std::uint16_t port_;
  std::map<net::Ipv4Address, PolicyEntry> policies_;
  std::map<net::Ipv4Address, AgentStatus> agents_;
  std::map<net::Ipv4Address, std::shared_ptr<Session>> sessions_;
  std::vector<std::shared_ptr<Session>> pending_;  // connected, no hello yet
  std::uint64_t next_seq_ = 1;
  PolicyServerStats stats_;
};

}  // namespace barb::firewall
