#include "firewall/vpg.h"

#include <cstring>

#include "crypto/hmac.h"
#include "net/ethernet.h"
#include "util/byte_io.h"

namespace barb::firewall {

void VpgTable::install(std::uint32_t vpg_id, std::span<const std::uint8_t> master_key) {
  Group g;
  const auto derived = crypto::derive_key(master_key, "vpg-traffic");
  std::memcpy(g.key.data(), derived.data(), g.key.size());
  groups_[vpg_id] = g;
}

void VpgTable::remove(std::uint32_t vpg_id) { groups_.erase(vpg_id); }

crypto::Aead::Nonce VpgTable::nonce_for(std::uint32_t sender_ip, std::uint64_t seq) {
  crypto::Aead::Nonce nonce;
  for (int i = 0; i < 4; ++i) {
    nonce[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(sender_ip >> (24 - 8 * i));
  }
  for (int i = 0; i < 8; ++i) {
    nonce[static_cast<std::size_t>(4 + i)] = static_cast<std::uint8_t>(seq >> (56 - 8 * i));
  }
  return nonce;
}

bool VpgTable::replay_check_and_update(ReplayState& state, std::uint64_t seq) {
  if (seq == 0) return false;
  if (seq > state.highest) {
    const std::uint64_t shift = seq - state.highest;
    if (shift > 64) {
      state.window = 0;
    } else if (shift == 64) {
      state.window = std::uint64_t{1} << 63;
    } else {
      state.window = (state.window << shift) | (std::uint64_t{1} << (shift - 1));
    }
    state.highest = seq;
    return true;
  }
  if (seq == state.highest) return false;  // replay of the newest packet
  const std::uint64_t offset = state.highest - seq;
  if (offset > 64) return false;  // older than the window tracks
  const std::uint64_t bit = std::uint64_t{1} << (offset - 1);
  if (state.window & bit) return false;
  state.window |= bit;
  return true;
}

bool VpgTable::encapsulate_into(std::uint32_t vpg_id,
                                std::span<const std::uint8_t> frame,
                                const net::FrameView& view,
                                std::vector<std::uint8_t>& out) {
  auto it = groups_.find(vpg_id);
  if (it == groups_.end()) {
    ++stats_.unknown_vpg;
    return false;
  }
  Group& g = it->second;

  if (!view.ip) return false;
  const auto& ip = *view.ip;
  const auto inner = view.l3_payload;
  const std::size_t new_payload =
      net::VpgHeader::kSize + inner.size() + crypto::Aead::kTagSize;
  if (net::Ipv4Header::kSize + new_payload > net::kEthernetMtu) {
    return false;  // would not fit the MTU; hosts must reduce MSS for VPGs
  }

  net::VpgHeader vh;
  vh.vpg_id = vpg_id;
  vh.seq = ++g.tx_seq;
  vh.orig_protocol = ip.protocol;
  vh.payload_len =
      static_cast<std::uint16_t>(inner.size() + crypto::Aead::kTagSize);

  std::vector<std::uint8_t> aad;
  ByteWriter aw(aad);
  vh.serialize(aw);

  const auto sealed =
      crypto::Aead::seal(g.key, nonce_for(ip.src.value(), vh.seq), aad, inner);

  out.reserve(net::EthernetHeader::kSize + net::Ipv4Header::kSize + new_payload);
  ByteWriter w(out);
  w.bytes(frame.first(net::EthernetHeader::kSize));  // Ethernet unchanged

  net::Ipv4Header new_ip = ip;
  new_ip.protocol = static_cast<std::uint8_t>(net::IpProtocol::kVpg);
  new_ip.total_length = static_cast<std::uint16_t>(net::Ipv4Header::kSize + new_payload);
  new_ip.serialize(w);
  w.bytes(aad);  // the VPG header bytes
  w.bytes(sealed);
  if (out.size() < net::kEthernetMinFrameNoFcs) {
    w.zeros(net::kEthernetMinFrameNoFcs - out.size());
  }

  ++stats_.encapsulated;
  return true;
}

bool VpgTable::decapsulate_into(std::span<const std::uint8_t> frame,
                                const net::FrameView& view,
                                std::vector<std::uint8_t>& out) {
  if (!view.ip || !view.vpg) return false;
  auto it = groups_.find(view.vpg->vpg_id);
  if (it == groups_.end()) {
    ++stats_.unknown_vpg;
    return false;
  }
  Group& g = it->second;
  const net::VpgHeader& vh = *view.vpg;

  std::vector<std::uint8_t> aad;
  ByteWriter aw(aad);
  vh.serialize(aw);

  auto opened = crypto::Aead::open(g.key, nonce_for(view.ip->src.value(), vh.seq),
                                   aad, view.l4_payload);
  if (!opened) {
    ++stats_.auth_failures;
    return false;
  }
  // Replay protection only after authentication (unauthenticated sequence
  // numbers must not be able to poison the window), per sender.
  if (!replay_check_and_update(g.rx[view.ip->src.value()], vh.seq)) {
    ++stats_.replays_dropped;
    return false;
  }

  out.reserve(net::EthernetHeader::kSize + net::Ipv4Header::kSize + opened->size());
  ByteWriter w(out);
  w.bytes(frame.first(net::EthernetHeader::kSize));
  net::Ipv4Header new_ip = *view.ip;
  new_ip.protocol = vh.orig_protocol;
  new_ip.total_length =
      static_cast<std::uint16_t>(net::Ipv4Header::kSize + opened->size());
  new_ip.serialize(w);
  w.bytes(*opened);
  if (out.size() < net::kEthernetMinFrameNoFcs) {
    w.zeros(net::kEthernetMinFrameNoFcs - out.size());
  }

  ++stats_.decapsulated;
  return true;
}

bool VpgTable::encapsulate(std::uint32_t vpg_id, std::vector<std::uint8_t>& frame) {
  auto view = net::FrameView::parse(frame);
  if (!view) return false;
  std::vector<std::uint8_t> out;
  if (!encapsulate_into(vpg_id, frame, *view, out)) return false;
  frame = std::move(out);
  return true;
}

bool VpgTable::decapsulate(std::vector<std::uint8_t>& frame) {
  auto view = net::FrameView::parse(frame);
  if (!view) return false;
  std::vector<std::uint8_t> out;
  if (!decapsulate_into(frame, *view, out)) return false;
  frame = std::move(out);
  return true;
}

bool VpgTable::encapsulate(std::uint32_t vpg_id, net::Packet& pkt) {
  const net::FrameView* view = pkt.view();
  if (view == nullptr) return false;
  // Sealed frame = original + VPG header + AEAD tag (then min-size padding).
  auto builder = net::BufferPool::instance().build(
      pkt.size() + net::VpgHeader::kSize + crypto::Aead::kTagSize);
  if (!encapsulate_into(vpg_id, pkt.bytes(), *view, builder.buffer())) {
    return false;
  }
  pkt.buffer = builder.seal();
  return true;
}

bool VpgTable::decapsulate(net::Packet& pkt) {
  const net::FrameView* view = pkt.view();
  if (view == nullptr) return false;
  // Plaintext is never larger than the sealed frame.
  auto builder = net::BufferPool::instance().build(pkt.size());
  if (!decapsulate_into(pkt.bytes(), *view, builder.buffer())) return false;
  pkt.buffer = builder.seal();
  return true;
}

}  // namespace barb::firewall
