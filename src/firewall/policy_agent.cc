#include "firewall/policy_agent.h"

#include <charconv>

#include "util/logging.h"

namespace barb::firewall {

PolicyAgent::PolicyAgent(stack::Host& host, FirewallNic& nic, net::Ipv4Address server_ip,
                         std::span<const std::uint8_t> deployment_key,
                         std::uint16_t server_port)
    : host_(host),
      nic_(nic),
      server_ip_(server_ip),
      server_port_(server_port),
      key_(deployment_key.begin(), deployment_key.end()) {}

void PolicyAgent::start() { connect(); }

void PolicyAgent::start_after(sim::Duration delay) {
  reconnect_timer_ = host_.simulation().schedule(delay, [this] { connect(); });
}

void PolicyAgent::connect() {
  reader_ = PolicyMessageReader{};
  conn_ = host_.tcp_connect(server_ip_, server_port_);
  if (!conn_) {
    reconnect_timer_ = host_.simulation().schedule(reconnect_delay, [this] {
      ++stats_.reconnects;
      connect();
    });
    return;
  }
  conn_->on_connected = [this] {
    send(PolicyMsgType::kHello, "host " + host_.ip().to_string());
    schedule_heartbeat();
  };
  conn_->on_data = [this](std::span<const std::uint8_t> data) {
    reader_.append(data);
    while (auto msg = reader_.next(key_)) {
      on_message(*msg);
    }
    if (reader_.corrupted()) conn_->abort();
  };
  conn_->on_closed = [this] {
    conn_ = nullptr;
    heartbeat_timer_.cancel();
    reconnect_timer_ = host_.simulation().schedule(reconnect_delay, [this] {
      ++stats_.reconnects;
      connect();
    });
  };
}

void PolicyAgent::schedule_heartbeat() {
  heartbeat_timer_ = host_.simulation().schedule(heartbeat_interval, [this] {
    if (!conn_) return;
    std::string body = nic_.locked_up() ? "status locked" : "status ok";
    body += " processed " + std::to_string(nic_.fw_stats().frames_processed);
    send(PolicyMsgType::kHeartbeat, std::move(body));
    schedule_heartbeat();
  });
}

void PolicyAgent::send(PolicyMsgType type, std::string body) {
  if (!conn_) return;
  PolicyMessage msg;
  msg.type = type;
  msg.seq = next_seq_++;
  msg.body = std::move(body);
  conn_->send(encode_policy_message(msg, key_));
}

void PolicyAgent::on_message(const PolicyMessage& msg) {
  switch (msg.type) {
    case PolicyMsgType::kPolicyUpdate:
      apply_policy(msg.body);
      break;
    case PolicyMsgType::kRestart:
      nic_.restart();
      ++stats_.restarts_executed;
      break;
    default:
      break;
  }
}

void PolicyAgent::apply_policy(const std::string& body) {
  // Body: "version <n>\n" followed by policy text; "vpgkey <id> <hex>"
  // lines carry VPG key material and are stripped before parsing.
  std::uint64_t version = 0;
  std::string policy_text;
  std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> keys;

  std::size_t pos = 0;
  bool ok = true;
  while (pos < body.size()) {
    const auto nl = body.find('\n', pos);
    const std::string_view line(body.data() + pos,
                                (nl == std::string::npos ? body.size() : nl) - pos);
    pos = nl == std::string::npos ? body.size() : nl + 1;

    if (line.starts_with("version ")) {
      const auto num = line.substr(8);
      if (std::from_chars(num.data(), num.data() + num.size(), version).ec !=
          std::errc()) {
        ok = false;
      }
    } else if (line.starts_with("vpgkey ")) {
      std::uint32_t id = 0;
      const auto rest = line.substr(7);
      const auto space = rest.find(' ');
      if (space == std::string_view::npos) {
        ok = false;
        continue;
      }
      const auto id_text = rest.substr(0, space);
      if (std::from_chars(id_text.data(), id_text.data() + id_text.size(), id).ec !=
          std::errc()) {
        ok = false;
        continue;
      }
      auto key_bytes = parse_hex(rest.substr(space + 1));
      if (!key_bytes || key_bytes->size() != 32) {
        ok = false;
        continue;
      }
      keys.emplace_back(id, std::move(*key_bytes));
    } else {
      policy_text.append(line);
      policy_text.push_back('\n');
    }
  }

  auto parsed = parse_policy(policy_text);
  if (!ok || !parsed.ok()) {
    ++stats_.policy_errors;
    if (parsed.error) {
      BARB_WARN("%s agent: policy parse error line %d: %s", host_.name().c_str(),
                parsed.error->line, parsed.error->message.c_str());
    }
    return;
  }

  nic_.install_rule_set(std::move(*parsed.rule_set));
  for (auto& [id, key] : keys) {
    nic_.vpg_table().install(id, key);
  }
  ++stats_.policies_applied;
  stats_.last_version = version;
  send(PolicyMsgType::kAck, "version " + std::to_string(version));
}

}  // namespace barb::firewall
