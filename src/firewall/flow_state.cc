#include "firewall/flow_state.h"

#include <algorithm>
#include <bit>
#include <functional>

#include "util/assert.h"

namespace barb::firewall {

FlowStateTable::FlowStateTable(FlowStateConfig config) : config_(config) {
  // <= 50% load at the LRU bound keeps linear-probe chains short.
  const std::size_t slot_count =
      std::bit_ceil(std::max<std::size_t>(2 * config_.max_entries, 16));
  slots_.assign(slot_count, 0);
  slot_mask_ = slot_count - 1;
}

std::size_t FlowStateTable::home_slot(const net::FiveTuple& tuple) const {
  return std::hash<net::FiveTuple>{}(tuple) & slot_mask_;
}

std::size_t FlowStateTable::find_slot(const net::FiveTuple& tuple) const {
  std::size_t slot = home_slot(tuple);
  while (slots_[slot] != 0) {
    if (tuples_.get(slots_[slot] - 1) == tuple) return slot;
    slot = (slot + 1) & slot_mask_;
  }
  return slots_.size();
}

void FlowStateTable::erase_slot(std::size_t slot) {
  // Backward-shift deletion: pull every displaced successor in the probe
  // chain one hole closer to its home so find_slot never crosses a gap.
  slots_[slot] = 0;
  std::size_t hole = slot;
  std::size_t probe = slot;
  while (true) {
    probe = (probe + 1) & slot_mask_;
    if (slots_[probe] == 0) return;
    const std::size_t home = home_slot(tuples_.get(slots_[probe] - 1));
    // Move iff the entry's home does not lie in the cyclic range (hole,
    // probe] — i.e. it probed past the hole to get where it is.
    if (((probe - home) & slot_mask_) >= ((probe - hole) & slot_mask_)) {
      slots_[hole] = slots_[probe];
      slots_[probe] = 0;
      hole = probe;
    }
  }
}

void FlowStateTable::lru_unlink(std::uint32_t handle) {
  Node& n = nodes_[handle];
  if (n.prev != kNil) {
    nodes_[n.prev].next = n.next;
  } else {
    lru_head_ = n.next;
  }
  if (n.next != kNil) {
    nodes_[n.next].prev = n.prev;
  } else {
    lru_tail_ = n.prev;
  }
  n.prev = n.next = kNil;
}

void FlowStateTable::lru_push_front(std::uint32_t handle) {
  Node& n = nodes_[handle];
  n.prev = kNil;
  n.next = lru_head_;
  if (lru_head_ != kNil) nodes_[lru_head_].prev = handle;
  lru_head_ = handle;
  if (lru_tail_ == kNil) lru_tail_ = handle;
}

void FlowStateTable::remove(std::size_t slot, std::uint32_t handle) {
  erase_slot(slot);
  lru_unlink(handle);
  tuples_.release(handle);
  --live_;
}

bool FlowStateTable::lookup(const net::FiveTuple& tuple, sim::TimePoint now) {
  const auto key = canonical(tuple);
  const std::size_t slot = find_slot(key);
  if (slot == slots_.size()) {
    ++stats_.misses;
    return false;
  }
  const std::uint32_t handle = slots_[slot] - 1;
  if (now - nodes_[handle].last_seen > config_.idle_timeout) {
    remove(slot, handle);
    ++stats_.expirations;
    ++stats_.misses;
    return false;
  }
  nodes_[handle].last_seen = now;
  lru_unlink(handle);
  lru_push_front(handle);
  ++stats_.hits;
  return true;
}

void FlowStateTable::insert(const net::FiveTuple& tuple, sim::TimePoint now) {
  const auto key = canonical(tuple);
  const std::size_t slot = find_slot(key);
  if (slot != slots_.size()) {
    const std::uint32_t handle = slots_[slot] - 1;
    nodes_[handle].last_seen = now;
    lru_unlink(handle);
    lru_push_front(handle);
    return;
  }
  if (live_ >= config_.max_entries) {
    const std::uint32_t victim = lru_tail_;
    BARB_ASSERT(victim != kNil);
    const std::size_t victim_slot = find_slot(tuples_.get(victim));
    BARB_ASSERT(victim_slot != slots_.size());
    remove(victim_slot, victim);
    ++stats_.evictions;
  }
  const std::uint32_t handle = tuples_.intern(key);
  if (handle >= nodes_.size()) nodes_.resize(handle + 1);
  nodes_[handle].last_seen = now;
  std::size_t insert_at = home_slot(key);
  while (slots_[insert_at] != 0) insert_at = (insert_at + 1) & slot_mask_;
  slots_[insert_at] = handle + 1;
  lru_push_front(handle);
  ++live_;
  ++stats_.inserts;
}

void FlowStateTable::clear() {
  slots_.assign(slots_.size(), 0);
  tuples_.clear();
  nodes_.clear();
  live_ = 0;
  lru_head_ = lru_tail_ = kNil;
}

}  // namespace barb::firewall
