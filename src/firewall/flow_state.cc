#include "firewall/flow_state.h"

namespace barb::firewall {

bool FlowStateTable::lookup(const net::FiveTuple& tuple, sim::TimePoint now) {
  const auto key = canonical(tuple);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  if (now - it->second.last_seen > config_.idle_timeout) {
    lru_.erase(it->second.lru_position);
    entries_.erase(it);
    ++stats_.expirations;
    ++stats_.misses;
    return false;
  }
  it->second.last_seen = now;
  lru_.splice(lru_.begin(), lru_, it->second.lru_position);
  ++stats_.hits;
  return true;
}

void FlowStateTable::insert(const net::FiveTuple& tuple, sim::TimePoint now) {
  const auto key = canonical(tuple);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.last_seen = now;
    lru_.splice(lru_.begin(), lru_, it->second.lru_position);
    return;
  }
  if (entries_.size() >= config_.max_entries) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{now, lru_.begin()});
  ++stats_.inserts;
}

void FlowStateTable::clear() {
  entries_.clear();
  lru_.clear();
}

}  // namespace barb::firewall
