// Ordered first-match rule-set with traversal-cost accounting.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "firewall/rule.h"
#include "net/frame_view.h"

namespace barb::firewall {

struct MatchResult {
  RuleAction action = RuleAction::kDeny;
  // Rule units examined up to and including the matching rule (VPG pairs
  // count as two). When the default action applies, this is the full
  // rule-set cost — every rule was examined.
  int rules_traversed = 0;
  // VPG rules among those examined (for the decrypt-always ablation model).
  int vpg_rules_traversed = 0;
  std::uint32_t vpg_id = 0;       // when action == kVpg
  int matched_index = -1;         // -1 means the default action applied
};

class RuleSet {
 public:
  RuleSet() = default;
  explicit RuleSet(std::vector<Rule> rules, RuleAction default_action = RuleAction::kDeny)
      : rules_(std::move(rules)), default_action_(default_action) {}

  void add(Rule rule) { rules_.push_back(rule); }
  void set_default_action(RuleAction action) { default_action_ = action; }
  RuleAction default_action() const { return default_action_; }
  const std::vector<Rule>& rules() const { return rules_; }
  std::size_t size() const { return rules_.size(); }
  bool empty() const { return rules_.empty(); }

  // Total traversal cost of a full scan (the default-action case).
  int total_cost_units() const {
    int units = 0;
    for (const auto& r : rules_) units += r.cost_units();
    return units;
  }

  // First-match evaluation over a parsed frame. VPG-encapsulated inbound
  // frames match a VPG rule by id (the device cannot see inner selectors
  // without decrypting — "the ADF avoids decrypting incoming packets until
  // they reach the matching VPG rule"); cleartext frames match VPG rules by
  // their selectors (outbound direction, pre-encapsulation).
  MatchResult match(const net::FrameView& v) const;

  // Convenience for cleartext tuples (software firewall, tests).
  MatchResult match(const net::FiveTuple& t) const;

  std::string to_string() const;

 private:
  std::vector<Rule> rules_;
  RuleAction default_action_ = RuleAction::kDeny;
};

}  // namespace barb::firewall
