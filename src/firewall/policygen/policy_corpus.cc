#include "firewall/policygen/policy_corpus.h"

#include <algorithm>
#include <optional>
#include <sstream>

namespace barb::firewall::policygen {
namespace {

using net::FiveTuple;
using net::Ipv4Address;

// --- Enterprise address universe -----------------------------------------
//
// Department client networks 10.D.0.0/16 (D in 1..6) with /24 subnets and
// hosts, a server farm 10.0.0.0/24, and a DMZ 192.168.1.0/24. The blocks
// 172.16.0.0/16 / 172.17.0.0/16 are reserved for the generator's fallback
// rules and never appear in archetype rules — combined with the invariant
// that every archetype rule pins its destination (and therefore every
// directed box pins at least one address field) inside the universe nets,
// a fallback rule can never be covered by or cover an archetype rule.

constexpr std::uint16_t kServicePorts[] = {22,  25,   53,   80,   110,
                                           123, 143,  389,  443,  636,
                                           993, 3306, 5432, 8080, 8443};
constexpr std::uint16_t kRiskyPorts[] = {23, 135, 137, 139, 161, 445, 1433, 3389, 5900};
struct PortSpan {
  std::uint16_t lo, hi;
};
constexpr PortSpan kServiceRanges[] = {
    {5060, 5061}, {6000, 6063}, {8000, 8099}, {10000, 10999}, {27000, 27050}};

struct Endpoint {
  Ipv4Address net;
  int prefix = 0;
};

std::uint32_t u32(sim::Random& rng, std::uint32_t bound) {
  return static_cast<std::uint32_t>(rng.uniform(bound));
}

Endpoint dept_subnet(sim::Random& rng) {
  const std::uint8_t d = static_cast<std::uint8_t>(1 + u32(rng, 6));
  if (rng.bernoulli(0.45)) return {Ipv4Address(10, d, 0, 0), 16};
  const std::uint8_t s = static_cast<std::uint8_t>(1 + u32(rng, 8));
  return {Ipv4Address(10, d, s, 0), 24};
}

Endpoint dept_host(sim::Random& rng) {
  const std::uint8_t d = static_cast<std::uint8_t>(1 + u32(rng, 6));
  const std::uint8_t s = static_cast<std::uint8_t>(1 + u32(rng, 8));
  const std::uint8_t h = static_cast<std::uint8_t>(10 + u32(rng, 240));
  return {Ipv4Address(10, d, s, h), 32};
}

Endpoint server_subnet() { return {Ipv4Address(10, 0, 0, 0), 24}; }

Endpoint server_host(sim::Random& rng) {
  return {Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(2 + u32(rng, 39))), 32};
}

Endpoint dmz_subnet() { return {Ipv4Address(192, 168, 1, 0), 24}; }

Endpoint dmz_host(sim::Random& rng) {
  return {Ipv4Address(192, 168, 1, static_cast<std::uint8_t>(2 + u32(rng, 60))), 32};
}

std::uint16_t pick(sim::Random& rng, const std::uint16_t* arr, std::size_t n) {
  return arr[rng.uniform(n)];
}

PortRange service_port(sim::Random& rng) {
  if (rng.bernoulli(0.3)) {
    const PortSpan span = kServiceRanges[rng.uniform(std::size(kServiceRanges))];
    return PortRange{span.lo, span.hi};
  }
  const std::uint16_t p = pick(rng, kServicePorts, std::size(kServicePorts));
  return PortRange{p, p};
}

void set_src(Rule& r, Endpoint e) {
  r.src_net = e.net;
  r.src_prefix = e.prefix;
}
void set_dst(Rule& r, Endpoint e) {
  r.dst_net = e.net;
  r.dst_prefix = e.prefix;
}

// One realistic rule. Invariant (see universe note above): dst is always a
// universe subnet or host, never "any"; VPG rules keep protocol 0 and stay
// bidirectional so they survive a policy-DSL round trip.
Rule archetype_rule(sim::Random& rng, double vpg_fraction, double oneway_fraction) {
  Rule r;
  if (rng.bernoulli(vpg_fraction)) {
    r.action = RuleAction::kVpg;
    r.vpg_id = 1 + u32(rng, 48);
    set_src(r, rng.bernoulli(0.6) ? dept_subnet(rng) : dept_host(rng));
    set_dst(r, rng.bernoulli(0.6) ? server_host(rng) : server_subnet());
    // Tunnels mostly protect one specific service. This also keeps the VPG
    // selector space wide: port-pinned tunnels rarely cover each other, so
    // heavy-VPG corpora stay clean-by-construction without exhausting the
    // rejection sampler.
    if (!rng.bernoulli(0.15)) {
      const std::uint16_t p = rng.bernoulli(0.7)
                                  ? pick(rng, kServicePorts, std::size(kServicePorts))
                                  : static_cast<std::uint16_t>(1024 + u32(rng, 30000));
      r.dst_ports = PortRange{p, p};
    }
    return r;
  }
  r.bidirectional = !rng.bernoulli(oneway_fraction);
  switch (u32(rng, 100)) {
    default: {  // service allow: clients (or anyone) to a server
      r.action = RuleAction::kAllow;
      r.protocol = 6;
      const std::uint32_t src = u32(rng, 10);
      if (src < 4) {
        // from any
      } else if (src < 8) {
        set_src(r, dept_subnet(rng));
      } else {
        set_src(r, dept_host(rng));
      }
      set_dst(r, server_host(rng));
      r.dst_ports = service_port(rng);
      break;
    }
    case 30 ... 44: {  // block a risky service into a protected net
      r.action = RuleAction::kDeny;
      r.protocol = rng.bernoulli(0.7) ? 6 : 17;
      switch (u32(rng, 3)) {
        case 0: set_dst(r, dept_subnet(rng)); break;
        case 1: set_dst(r, server_subnet()); break;
        default: set_dst(r, dmz_subnet()); break;
      }
      const std::uint16_t p = pick(rng, kRiskyPorts, std::size(kRiskyPorts));
      r.dst_ports = PortRange{p, p};
      break;
    }
    case 45 ... 64: {  // subnet-to-subnet policy
      r.action = rng.bernoulli(0.55) ? RuleAction::kAllow : RuleAction::kDeny;
      const std::uint32_t proto = u32(rng, 10);
      r.protocol = proto < 5 ? 6 : (proto < 8 ? 17 : 0);
      set_src(r, dept_subnet(rng));
      switch (u32(rng, 3)) {
        case 0: set_dst(r, dept_subnet(rng)); break;
        case 1: set_dst(r, server_subnet()); break;
        default: set_dst(r, dmz_subnet()); break;
      }
      if (rng.bernoulli(0.4)) r.dst_ports = service_port(rng);
      break;
    }
    case 65 ... 74: {  // ICMP policy
      r.action = rng.bernoulli(0.5) ? RuleAction::kAllow : RuleAction::kDeny;
      r.protocol = 1;
      if (rng.bernoulli(0.6)) set_src(r, dept_subnet(rng));
      switch (u32(rng, 3)) {
        case 0: set_dst(r, server_subnet()); break;
        case 1: set_dst(r, dept_subnet(rng)); break;
        default: set_dst(r, dmz_host(rng)); break;
      }
      break;
    }
    case 75 ... 84: {  // management lockdown on a single box
      r.action = RuleAction::kDeny;
      r.protocol = 6;
      set_dst(r, rng.bernoulli(0.5) ? server_host(rng) : dmz_host(rng));
      constexpr std::uint16_t kMgmt[] = {22, 23, 3389};
      const std::uint16_t p = pick(rng, kMgmt, std::size(kMgmt));
      r.dst_ports = PortRange{p, p};
      break;
    }
    case 85 ... 99: {  // published DMZ service
      r.action = RuleAction::kAllow;
      r.protocol = 6;
      set_dst(r, dmz_host(rng));
      constexpr std::uint16_t kPub[] = {25, 80, 443};
      const std::uint16_t p = pick(rng, kPub, std::size(kPub));
      r.dst_ports = PortRange{p, p};
      break;
    }
  }
  return r;
}

// Guaranteed-disjoint filler used when rejection sampling runs out of
// attempts: unique /32 endpoints in the reserved 172.16/172.17 blocks with a
// unique single destination port. Provably neither covers nor is covered by
// any other rule the generator emits, so it never needs the clean-filter
// scan.
Rule fallback_rule(int k) {
  Rule r;
  r.action = (k % 2) != 0 ? RuleAction::kAllow : RuleAction::kDeny;
  r.protocol = 6;
  r.src_net = Ipv4Address(172, 17, static_cast<std::uint8_t>((k >> 8) & 0xff),
                          static_cast<std::uint8_t>(k & 0xff));
  r.src_prefix = 32;
  r.dst_net = Ipv4Address(172, 16, static_cast<std::uint8_t>((k >> 8) & 0xff),
                          static_cast<std::uint8_t>(k & 0xff));
  r.dst_prefix = 32;
  const std::uint16_t p = static_cast<std::uint16_t>(40000 + k);
  r.dst_ports = PortRange{p, p};
  r.bidirectional = false;
  return r;
}

bool coverage_clash(const std::vector<Rule>& rules, const Rule& cand) {
  for (const Rule& r : rules) {
    if (RuleSetAnalyzer::rule_covers(r, cand) ||
        RuleSetAnalyzer::rule_covers(cand, r)) {
      return true;
    }
  }
  return false;
}

// --- Dirty stress shapes ---------------------------------------------------

Rule any_any_pile_rule(sim::Random& rng) {
  Rule r;
  const std::uint32_t act = u32(rng, 10);
  r.action = act < 5 ? RuleAction::kAllow : RuleAction::kDeny;
  const std::uint32_t proto = u32(rng, 10);
  r.protocol = proto < 6 ? 0 : (proto < 8 ? 6 : 17);
  if (rng.bernoulli(0.2)) set_src(r, {Ipv4Address(10, 0, 0, 0), 8});
  if (rng.bernoulli(0.2)) set_dst(r, {Ipv4Address(10, 0, 0, 0), 8});
  if (rng.bernoulli(0.15)) {
    const std::uint16_t p = pick(rng, kServicePorts, std::size(kServicePorts));
    r.dst_ports = PortRange{p, p};
  }
  r.bidirectional = !rng.bernoulli(0.3);
  return r;
}

Rule adversarial_rule(sim::Random& rng) {
  // Tiny universe: eight addresses, eight ports — everything overlaps
  // everything, prefixes land on /30../32 boundaries, ranges touch at
  // endpoints. Exercises every closed-interval edge case in the geometry.
  Rule r;
  r.action = rng.bernoulli(0.5) ? RuleAction::kAllow : RuleAction::kDeny;
  r.protocol = rng.bernoulli(0.8) ? 6 : 0;
  const auto tiny = [&rng]() -> Endpoint {
    if (rng.bernoulli(0.15)) return {Ipv4Address::any(), 0};
    const int prefix = 30 + static_cast<int>(u32(rng, 3));
    const std::uint32_t mask = 0xffffffffu << (32 - prefix);
    const std::uint32_t base = Ipv4Address(10, 9, 9, static_cast<std::uint8_t>(u32(rng, 8))).value();
    return {Ipv4Address(base & mask), prefix};
  };
  set_src(r, tiny());
  set_dst(r, tiny());
  const auto tiny_ports = [&rng]() -> PortRange {
    if (rng.bernoulli(0.3)) return PortRange{};
    const std::uint16_t lo = static_cast<std::uint16_t>(1 + u32(rng, 8));
    const std::uint16_t hi = static_cast<std::uint16_t>(lo + u32(rng, 8));
    return PortRange{lo, hi};
  };
  r.src_ports = tiny_ports();
  r.dst_ports = tiny_ports();
  r.bidirectional = rng.bernoulli(0.5);
  return r;
}

// --- Error injection -------------------------------------------------------

struct Builder {
  std::vector<Rule> rules;
  std::vector<char> is_base;
  std::vector<InjectedError> errs;

  void insert(int pos, Rule r, bool base) {
    rules.insert(rules.begin() + pos, std::move(r));
    is_base.insert(is_base.begin() + pos, base ? 1 : 0);
    for (InjectedError& e : errs) {
      if (e.rule_index >= pos) ++e.rule_index;
      if (e.other_index >= pos) ++e.other_index;
    }
  }
  int size() const { return static_cast<int>(rules.size()); }
};

// A strictly narrower copy of `base` (one guaranteed-strict narrowing plus
// optional extras), with the action flipped when same_action is false.
// VPG rules that stay VPG keep protocol 0 and bidirectionality so the
// policy-DSL round trip is preserved. Returns nullopt when no field of the
// base rule can be narrowed.
std::optional<Rule> specialize(const Rule& base, bool same_action, sim::Random& rng) {
  Rule r = base;
  if (!same_action) {
    r.action = base.action == RuleAction::kAllow ? RuleAction::kDeny : RuleAction::kAllow;
    r.vpg_id = 0;
  }
  const bool stays_vpg = r.action == RuleAction::kVpg;

  const auto narrow_addr = [&rng](Ipv4Address& net, int& prefix) {
    if (prefix == 0) {
      const Endpoint e = rng.bernoulli(0.5) ? dept_subnet(rng) : dept_host(rng);
      net = e.net;
      prefix = e.prefix;
      return;
    }
    const int deepen = 1 + static_cast<int>(u32(rng, static_cast<std::uint32_t>(
                               std::min(8, 32 - prefix))));
    const int next = prefix + deepen;
    const std::uint32_t block = u32(rng, 1u << deepen);
    net = Ipv4Address(net.value() | (block << (32 - next)));
    prefix = next;
  };
  const auto narrow_ports = [&rng](PortRange& ports) {
    if (ports.any()) {
      const std::uint16_t p = pick(rng, kServicePorts, std::size(kServicePorts));
      ports = PortRange{p, p};
      return;
    }
    const std::uint16_t p = static_cast<std::uint16_t>(
        ports.lo + u32(rng, static_cast<std::uint32_t>(ports.hi - ports.lo) + 1));
    ports = PortRange{p, p};
  };

  enum Op { kSrcAddr, kDstAddr, kSrcPorts, kDstPorts, kProto };
  Op applicable[5];
  int n_ops = 0;
  if (r.src_prefix < 32) applicable[n_ops++] = kSrcAddr;
  if (r.dst_prefix < 32) applicable[n_ops++] = kDstAddr;
  if (r.src_ports.any() || r.src_ports.lo < r.src_ports.hi) applicable[n_ops++] = kSrcPorts;
  if (r.dst_ports.any() || r.dst_ports.lo < r.dst_ports.hi) applicable[n_ops++] = kDstPorts;
  if (r.protocol == 0 && !stays_vpg) applicable[n_ops++] = kProto;
  if (n_ops == 0) return std::nullopt;

  const int mandatory = static_cast<int>(u32(rng, static_cast<std::uint32_t>(n_ops)));
  for (int k = 0; k < n_ops; ++k) {
    if (k != mandatory && !rng.bernoulli(0.25)) continue;
    switch (applicable[k]) {
      case kSrcAddr: narrow_addr(r.src_net, r.src_prefix); break;
      case kDstAddr: narrow_addr(r.dst_net, r.dst_prefix); break;
      case kSrcPorts: narrow_ports(r.src_ports); break;
      case kDstPorts: narrow_ports(r.dst_ports); break;
      case kProto: r.protocol = rng.bernoulli(0.7) ? 6 : 17; break;
    }
  }
  return r;
}

// Index of a base rule that specialize() can narrow; -1 when none found.
int pick_narrowable_base(const Builder& b, bool same_action, sim::Random& rng,
                         Rule* out) {
  if (b.size() == 0) return -1;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const int idx = static_cast<int>(u32(rng, static_cast<std::uint32_t>(b.size())));
    if (b.is_base[static_cast<std::size_t>(idx)] == 0) continue;
    if (auto spec = specialize(b.rules[static_cast<std::size_t>(idx)], same_action, rng)) {
      *out = *spec;
      return idx;
    }
  }
  return -1;
}

void inject_errors(Builder& b, const CorpusSpec& spec, sim::Random& rng) {
  // Covered-rule classes first, the any-any at the very end of the list
  // (where real catch-alls live), stale-temporary pairs last so nothing
  // re-inserts between a stale rule and its adjacent coverer.
  for (int k = 0; k < spec.shadowed + spec.redundant; ++k) {
    const bool same_action = k >= spec.shadowed;
    Rule s;
    const int idx = pick_narrowable_base(b, same_action, rng, &s);
    if (idx < 0) continue;
    const int pos = idx + 1 + static_cast<int>(u32(
                        rng, static_cast<std::uint32_t>(b.size() - idx)));
    b.insert(pos, s, false);
    b.errs.push_back(InjectedError{
        same_action ? ErrorClass::kRedundantRule : ErrorClass::kShadowedRule, pos, idx});
  }

  for (int k = 0; k < spec.conflicts; ++k) {
    // Two one-way rules whose regions properly cross: A narrows the source,
    // B narrows the destination ports, different actions.
    const std::uint8_t d = static_cast<std::uint8_t>(1 + u32(rng, 6));
    const std::uint8_t e = static_cast<std::uint8_t>(1 + u32(rng, 6));
    const std::uint8_t c = static_cast<std::uint8_t>(1 + u32(rng, 8));
    const bool a_denies = rng.bernoulli(0.5);
    const std::uint8_t proto = rng.bernoulli(0.7) ? 6 : 17;

    Rule a;
    a.action = a_denies ? RuleAction::kDeny : RuleAction::kAllow;
    a.protocol = proto;
    set_src(a, {Ipv4Address(10, d, c, 0), 24});
    set_dst(a, {Ipv4Address(10, e, 0, 0), 16});
    a.bidirectional = false;

    Rule bb;
    bb.action = a_denies ? RuleAction::kAllow : RuleAction::kDeny;
    bb.protocol = proto;
    set_src(bb, {Ipv4Address(10, d, 0, 0), 16});
    set_dst(bb, {Ipv4Address(10, e, 0, 0), 16});
    bb.dst_ports = service_port(rng);
    bb.bidirectional = false;

    const int pos_a = static_cast<int>(u32(rng, static_cast<std::uint32_t>(b.size()) + 1));
    b.insert(pos_a, a, false);
    const int pos_b = pos_a + 1 + static_cast<int>(u32(
                          rng, static_cast<std::uint32_t>(b.size() - pos_a)));
    b.insert(pos_b, bb, false);
    b.errs.push_back(InjectedError{ErrorClass::kConflictingPair, pos_b, pos_a});
  }

  for (int k = 0; k < spec.any_any; ++k) {
    Rule r;
    r.action = RuleAction::kAllow;
    b.insert(b.size(), r, false);
    b.errs.push_back(InjectedError{ErrorClass::kAnyAnyAllow, b.size() - 1, -1});
  }

  for (int k = 0; k < spec.stale; ++k) {
    Rule s;
    const int idx = pick_narrowable_base(b, /*same_action=*/true, rng, &s);
    if (idx < 0) continue;
    // Immediately above its coverer: no intervener, so the analyzer's
    // obsolete check is guaranteed to fire. Partner left open (-1) — another
    // injected rule may be the analyzer's "first later coverer".
    b.insert(idx, s, false);
    b.errs.push_back(InjectedError{ErrorClass::kStaleTemporary, idx, -1});
  }
}

}  // namespace

const char* to_string(ErrorClass cls) {
  switch (cls) {
    case ErrorClass::kShadowedRule: return "shadowed-rule";
    case ErrorClass::kRedundantRule: return "redundant-rule";
    case ErrorClass::kStaleTemporary: return "stale-temporary";
    case ErrorClass::kAnyAnyAllow: return "any-any-allow";
    case ErrorClass::kConflictingPair: return "conflicting-pair";
  }
  return "?";
}

FindingKind expected_finding(ErrorClass cls) {
  switch (cls) {
    case ErrorClass::kShadowedRule: return FindingKind::kShadowed;
    case ErrorClass::kRedundantRule: return FindingKind::kRedundant;
    case ErrorClass::kStaleTemporary: return FindingKind::kObsolete;
    case ErrorClass::kAnyAnyAllow: return FindingKind::kAnyAny;
    case ErrorClass::kConflictingPair: return FindingKind::kConflict;
  }
  return FindingKind::kShadowed;
}

const char* to_string(CorpusShape shape) {
  switch (shape) {
    case CorpusShape::kRealistic: return "realistic";
    case CorpusShape::kMaxDepth: return "max-depth";
    case CorpusShape::kHeavyVpg: return "heavy-vpg";
    case CorpusShape::kAllAnyAny: return "all-any-any";
    case CorpusShape::kAdversarialOverlap: return "adversarial-overlap";
  }
  return "?";
}

std::string GeneratedCorpus::summary() const {
  std::ostringstream os;
  os << "shape=" << policygen::to_string(shape) << " rules=" << rules.size()
     << " (base " << base_rules << ")";
  if (!injected.empty()) {
    int counts[5] = {0, 0, 0, 0, 0};
    for (const InjectedError& e : injected) ++counts[static_cast<int>(e.kind)];
    os << " injected:";
    for (int k = 0; k < 5; ++k) {
      if (counts[k] > 0) {
        os << " " << counts[k] << " "
           << policygen::to_string(static_cast<ErrorClass>(k));
      }
    }
  }
  return os.str();
}

DetectionOutcome check_detection(const GeneratedCorpus& corpus,
                                 const AnalysisReport& report) {
  DetectionOutcome out;
  out.injected = static_cast<int>(corpus.injected.size());
  for (const InjectedError& e : corpus.injected) {
    if (report.has(expected_finding(e.kind), e.rule_index, e.other_index)) {
      ++out.detected;
    } else {
      out.missed.push_back(e);
    }
  }
  return out;
}

int PolicyCorpusGenerator::draw_rule_count(sim::Random& rng) {
  // Wool's surveyed policies: most are small (tens of rules), a fat middle
  // in the low hundreds, and a thin tail into the thousands.
  const double r = rng.uniform_real();
  if (r < 0.35) return 10 + static_cast<int>(rng.uniform(51));
  if (r < 0.70) return 60 + static_cast<int>(rng.uniform(141));
  if (r < 0.92) return 200 + static_cast<int>(rng.uniform(601));
  return 800 + static_cast<int>(rng.uniform(1701));
}

net::FiveTuple PolicyCorpusGenerator::random_universe_tuple() {
  sim::Random& rng = rng_;
  FiveTuple t;
  const auto ephemeral = [&rng]() {
    return static_cast<std::uint16_t>(49152 + u32(rng, 16384));
  };
  switch (u32(rng, 10)) {
    default: {  // client to server-farm service
      t.src = dept_host(rng).net;
      t.dst = server_host(rng).net;
      t.protocol = 6;
      t.src_port = ephemeral();
      t.dst_port = pick(rng, kServicePorts, std::size(kServicePorts));
      break;
    }
    case 5: {  // client to DMZ
      t.src = dept_host(rng).net;
      t.dst = dmz_host(rng).net;
      t.protocol = 6;
      t.src_port = ephemeral();
      constexpr std::uint16_t kPub[] = {25, 80, 443};
      t.dst_port = pick(rng, kPub, std::size(kPub));
      break;
    }
    case 6: {  // outsider probing a server (service or risky port)
      t.src = Ipv4Address(u32(rng, 0xffffffffu) | 1u);
      t.dst = server_host(rng).net;
      t.protocol = 6;
      t.src_port = ephemeral();
      t.dst_port = rng.bernoulli(0.5)
                       ? pick(rng, kServicePorts, std::size(kServicePorts))
                       : pick(rng, kRiskyPorts, std::size(kRiskyPorts));
      break;
    }
    case 7: {  // east-west department chatter, arbitrary ports
      t.src = dept_host(rng).net;
      t.dst = dept_host(rng).net;
      t.protocol = rng.bernoulli(0.5) ? 6 : 17;
      t.src_port = static_cast<std::uint16_t>(1 + u32(rng, 65535));
      t.dst_port = static_cast<std::uint16_t>(1 + u32(rng, 65535));
      break;
    }
    case 8: {  // ICMP
      t.src = dept_host(rng).net;
      t.dst = rng.bernoulli(0.5) ? server_host(rng).net : dmz_host(rng).net;
      t.protocol = 1;
      break;
    }
    case 9: {  // anywhere inside 10/8
      t.src = Ipv4Address((10u << 24) | u32(rng, 1u << 24));
      t.dst = Ipv4Address((10u << 24) | u32(rng, 1u << 24));
      t.protocol = rng.bernoulli(0.6) ? 6 : 17;
      t.src_port = static_cast<std::uint16_t>(1 + u32(rng, 65535));
      t.dst_port = static_cast<std::uint16_t>(1 + u32(rng, 65535));
      break;
    }
  }
  return t;
}

GeneratedCorpus PolicyCorpusGenerator::generate(const CorpusSpec& spec) {
  GeneratedCorpus out;
  out.shape = spec.shape;

  int n = spec.rules;
  Builder b;

  if (spec.shape == CorpusShape::kAllAnyAny ||
      spec.shape == CorpusShape::kAdversarialOverlap) {
    // Dirty stress shapes: no clean filter, no injection (ground truth would
    // be ambiguous under near-total mutual coverage).
    if (n <= 0) {
      n = spec.shape == CorpusShape::kAllAnyAny
              ? 40 + static_cast<int>(rng_.uniform(121))
              : 30 + static_cast<int>(rng_.uniform(171));
    }
    for (int i = 0; i < n; ++i) {
      b.rules.push_back(spec.shape == CorpusShape::kAllAnyAny
                            ? any_any_pile_rule(rng_)
                            : adversarial_rule(rng_));
      b.is_base.push_back(1);
    }
    out.base_rules = n;
    out.rules = RuleSet(std::move(b.rules), spec.default_action);
    return out;
  }

  if (n <= 0) {
    n = spec.shape == CorpusShape::kMaxDepth
            ? 1800 + static_cast<int>(rng_.uniform(701))
            : draw_rule_count(rng_);
  }
  const double vpg_fraction = spec.shape == CorpusShape::kHeavyVpg
                                  ? std::max(spec.vpg_fraction, 0.6)
                                  : spec.vpg_fraction;

  int fallback_counter = 0;
  for (int i = 0; i < n; ++i) {
    Rule r;
    bool placed = false;
    for (int attempt = 0; attempt < 8 && !placed; ++attempt) {
      r = archetype_rule(rng_, vpg_fraction, spec.oneway_fraction);
      placed = !coverage_clash(b.rules, r);
    }
    if (!placed) r = fallback_rule(fallback_counter++);
    b.rules.push_back(r);
    b.is_base.push_back(1);
  }
  out.base_rules = n;

  inject_errors(b, spec, rng_);

  out.rules = RuleSet(std::move(b.rules), spec.default_action);
  out.injected = std::move(b.errs);
  return out;
}

}  // namespace barb::firewall::policygen
