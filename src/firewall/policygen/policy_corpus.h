// Seed-deterministic generator of realistic firewall rule corpora.
//
// Everything before this module matched traffic against synthetic depth-N
// rule lists (N identical-shape rules, one hit at a chosen depth). Real
// enterprise policies — the ones the paper's EFW/ADF tools compile onto the
// NIC — look nothing like that: Wool's error surveys (PAPERS.md) report
// rule counts from tens to thousands (heavily skewed small), a mix of very
// specific host/port rules and broad subnet rules, symmetric conversation
// rules, and a recurring set of configuration errors. This generator emits
// corpora with that shape so rule-set *shape* becomes a first-class workload
// dimension for the match backends, the fuzzer, and the benches.
//
// Two properties make the corpora usable as oracles:
//  * Clean by construction: base rules are drawn over a fixed enterprise
//    address universe and a candidate is rejected whenever it covers or is
//    covered by an existing rule (under RuleSetAnalyzer::rule_covers, the
//    same pairwise predicate the analyzer uses). A clean corpus therefore
//    yields exactly zero error-class findings — any analyzer error finding
//    on a clean corpus is a genuine false positive, and the tests count
//    them. Crossing overlaps with different actions (conflict warnings) are
//    realistic and intentionally NOT rejected.
//  * Tagged error injection: each injected error instance records its class
//    and final rule indices, so analyzer output is checkable against ground
//    truth instance by instance.
//
// All randomness comes from one sim::Random owned by the generator; the same
// seed reproduces the same corpus bit-for-bit on any machine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "firewall/policygen/rule_analyzer.h"
#include "firewall/rule_set.h"
#include "net/five_tuple.h"
#include "sim/random.h"

namespace barb::firewall::policygen {

// The error classes Wool reports from production firewalls, as injectable
// mutations with ground truth.
enum class ErrorClass : std::uint8_t {
  kShadowedRule,     // specialization inserted after a covering rule with the
                     // opposite action — it can never fire
  kRedundantRule,    // specialization inserted after a covering rule with the
                     // same action — dead weight
  kStaleTemporary,   // same-action specialization left immediately above the
                     // broader rule that later subsumed it
  kAnyAnyAllow,      // overly permissive allow-everything catch-all
  kConflictingPair,  // two rules whose regions properly cross with different
                     // actions — order-dependent overlap
};

const char* to_string(ErrorClass cls);

// The analyzer finding each injected class must produce.
FindingKind expected_finding(ErrorClass cls);

struct InjectedError {
  ErrorClass kind = ErrorClass::kShadowedRule;
  int rule_index = -1;   // flagged rule, index into the final rule list
  int other_index = -1;  // partner (coverer / conflicting peer); -1 = any
};

// Corpus shapes. kRealistic draws everything from the enterprise universe
// with the Wool-modeled size distribution; the others are fuzzer stress
// shapes (see tests/fuzz). Only the first three are clean by construction —
// the dirty shapes exist to stress the analyzer and the match backends, and
// reject error injection (ground truth would be ambiguous there).
enum class CorpusShape : std::uint8_t {
  kRealistic,
  kMaxDepth,             // realistic rules, forced to the deep end (~2k+)
  kHeavyVpg,             // tunnel-dominated policy, many VPG ids
  kAllAnyAny,            // wildcard pile-up: near-total mutual coverage
  kAdversarialOverlap,   // random boxes over a tiny universe: dense partial
                         // overlaps that stress the interval logic
};

const char* to_string(CorpusShape shape);

struct CorpusSpec {
  CorpusShape shape = CorpusShape::kRealistic;
  // 0 = draw from the Wool-modeled size distribution (shape-dependent).
  int rules = 0;
  double vpg_fraction = 0.08;
  double oneway_fraction = 0.25;
  RuleAction default_action = RuleAction::kDeny;
  // Error injection counts (clean shapes only; ignored for dirty shapes).
  int shadowed = 0;
  int redundant = 0;
  int stale = 0;
  int any_any = 0;
  int conflicts = 0;
};

struct GeneratedCorpus {
  RuleSet rules;
  std::vector<InjectedError> injected;
  CorpusShape shape = CorpusShape::kRealistic;
  int base_rules = 0;  // rule count before injection

  std::string summary() const;
};

// Outcome of matching an AnalysisReport against a corpus's ground truth.
struct DetectionOutcome {
  int injected = 0;
  int detected = 0;
  std::vector<InjectedError> missed;

  bool all_detected() const { return detected == injected; }
};

DetectionOutcome check_detection(const GeneratedCorpus& corpus,
                                 const AnalysisReport& report);

class PolicyCorpusGenerator {
 public:
  explicit PolicyCorpusGenerator(std::uint64_t seed) : rng_(seed) {}

  GeneratedCorpus generate(const CorpusSpec& spec = {});

  // Wool-modeled rule-count draw: heavily skewed toward small policies,
  // with a long tail into the thousands.
  static int draw_rule_count(sim::Random& rng);

  // A five-tuple drawn from the same enterprise universe the rules are
  // built over, so generated traffic actually lands inside rule regions
  // instead of missing everything. Skewed toward server-bound flows.
  net::FiveTuple random_universe_tuple();

 private:
  sim::Random rng_;
};

}  // namespace barb::firewall::policygen
