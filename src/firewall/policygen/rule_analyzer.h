// Static rule-set analysis: shadowing, redundancy, staleness, conflicts.
//
// Wool's firewall-error surveys (PAPERS.md) show that real policies ship
// with a recurring set of configuration errors — rules that can never fire
// because an earlier rule swallows their traffic, forgotten "temporary"
// rules later subsumed by broader permanent ones, and overly permissive
// any-any catch-alls. The formal-testing literature frames detection as a
// geometry problem: each rule matches a region of the five-dimensional
// packet space (protocol, src addr, dst addr, src port, dst port), and the
// error classes are containment/overlap relations between regions under
// first-match ordering.
//
// The analyzer works over exactly the five-field interval geometry the
// CompiledClassifier builds at policy push: every rule expands into one
// directed box (plus the reversed box when bidirectional), and pairwise
// relations are decided with closed-interval containment/intersection per
// field. Analysis is over the cleartext tuple space — a VPG rule is placed
// by its selectors (the outbound, pre-encapsulation direction); the id-keyed
// match of already-encapsulated frames is O(1) and has no ordering hazards.
//
// Finding classes (first-match semantics; i < j are rule indices):
//  * kShadowed   — region(j) ⊆ region(i), different verdict: j is dead and
//                  its traffic gets the OPPOSITE treatment of what the rule
//                  says (the classic error Wool reports most often).
//  * kRedundant  — region(j) ⊆ region(i), same verdict: j is dead weight
//                  (costs traversal time on the NIC, changes nothing).
//  * kObsolete   — region(j) ⊆ region(k) for a LATER k with the same
//                  verdict and no rule between them both intersecting j and
//                  disagreeing with it: removing j changes no verdict. This
//                  is the signature a stale "temporary" rule leaves behind
//                  once the broader permanent rule lands below it.
//  * kConflict   — regions of i and j properly cross (intersect, neither
//                  contains the other) with different verdicts: the overlap
//                  region's fate depends silently on rule order. Reported
//                  as a warning — specific-exception-before-general-rule is
//                  also how intentional policies are written.
//  * kAnyAny     — an allow rule matching every packet (the overly
//                  permissive catch-all).
//
// The analysis is pairwise and therefore conservative: a rule covered only
// by the UNION of several earlier rules is not flagged (neither here nor by
// the generator's clean-by-construction filter, so the two sides agree on
// what "clean" means). All relations are sound: every error-class finding
// identifies a rule whose removal or reordering provably cannot change any
// cleartext verdict for the worse.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "firewall/rule_set.h"

namespace barb::firewall::policygen {

// Closed intervals over the five match fields of one directed rule entry.
// Field order matches the CompiledClassifier: proto, src, dst, sport, dport.
struct RuleBox {
  std::uint32_t lo[5] = {0, 0, 0, 0, 0};
  std::uint32_t hi[5] = {0, 0, 0, 0, 0};

  bool covers(const RuleBox& other) const {
    for (int f = 0; f < 5; ++f) {
      if (lo[f] > other.lo[f] || hi[f] < other.hi[f]) return false;
    }
    return true;
  }
  bool intersects(const RuleBox& other) const {
    for (int f = 0; f < 5; ++f) {
      if (lo[f] > other.hi[f] || hi[f] < other.lo[f]) return false;
    }
    return true;
  }
};

enum class FindingKind : std::uint8_t {
  kShadowed,
  kRedundant,
  kObsolete,
  kConflict,
  kAnyAny,
};

const char* to_string(FindingKind kind);

// Conflicts are warnings (rule order may well be intentional); everything
// else marks a rule that is provably dead or provably over-broad.
inline bool is_error(FindingKind kind) { return kind != FindingKind::kConflict; }

struct Finding {
  FindingKind kind = FindingKind::kShadowed;
  int rule_index = -1;   // the flagged rule
  int other_index = -1;  // covering / conflicting partner (-1 for kAnyAny)

  std::string to_string() const;
};

struct AnalysisReport {
  std::vector<Finding> findings;
  std::size_t rules = 0;
  std::size_t entries = 0;         // directed boxes after expansion
  std::size_t pairs_examined = 0;  // ordered rule pairs compared
  // Exact per-kind totals. The findings list is capped per rule (see
  // kMaxCoverFindingsPerRule) so pathological rule-sets — hundreds of
  // identical wildcards — stay reportable; the counters are never capped.
  std::uint64_t total[5] = {0, 0, 0, 0, 0};
  std::uint64_t truncated = 0;  // relations counted but not stored

  std::uint64_t count(FindingKind kind) const {
    return total[static_cast<int>(kind)];
  }
  std::uint64_t error_count() const {
    return count(FindingKind::kShadowed) + count(FindingKind::kRedundant) +
           count(FindingKind::kObsolete) + count(FindingKind::kAnyAny);
  }
  std::uint64_t warning_count() const { return count(FindingKind::kConflict); }

  // True if a finding of `kind` names `rule_index` (and `other_index`, when
  // >= 0 — pass -1 to accept any partner).
  bool has(FindingKind kind, int rule_index, int other_index = -1) const;

  std::string to_string() const;
};

class RuleSetAnalyzer {
 public:
  // Per-rule cap on stored coverage/conflict findings; exact totals live in
  // AnalysisReport::total regardless.
  static constexpr int kMaxCoverFindingsPerRule = 32;
  static constexpr int kMaxConflictFindingsPerRule = 32;

  static AnalysisReport analyze(const RuleSet& rules);

  // --- Geometry, shared with PolicyCorpusGenerator ------------------------
  // Directed boxes of one rule (forward, plus reversed when bidirectional).
  static void boxes_of(const Rule& rule, RuleBox out[2], int* count);
  // region(b) ⊆ region(a): every directed box of b inside some box of a.
  static bool rule_covers(const Rule& a, const Rule& b);
  static bool rules_intersect(const Rule& a, const Rule& b);
  static bool matches_everything(const Rule& rule);
  // Verdict equality; VPG rules must also agree on the tunnel id.
  static bool same_verdict(const Rule& a, const Rule& b);
};

}  // namespace barb::firewall::policygen
