#include "firewall/policygen/rule_analyzer.h"

#include <sstream>

namespace barb::firewall::policygen {
namespace {

RuleBox directed_box(const Rule& r, bool reversed) {
  RuleBox box;
  // proto
  if (r.protocol == 0) {
    box.lo[0] = 0;
    box.hi[0] = 255;
  } else {
    box.lo[0] = r.protocol;
    box.hi[0] = r.protocol;
  }
  const auto addr_interval = [](net::Ipv4Address net, int prefix,
                                std::uint32_t* lo, std::uint32_t* hi) {
    if (prefix <= 0) {
      *lo = 0;
      *hi = 0xffffffffu;
      return;
    }
    const std::uint32_t mask = 0xffffffffu << (32 - prefix);
    *lo = net.value() & mask;
    *hi = *lo | ~mask;
  };
  const auto port_interval = [](const PortRange& ports, std::uint32_t* lo,
                                std::uint32_t* hi) {
    if (ports.any()) {
      *lo = 0;
      *hi = 65535;
    } else {
      *lo = ports.lo;
      *hi = ports.hi;
    }
  };
  if (!reversed) {
    addr_interval(r.src_net, r.src_prefix, &box.lo[1], &box.hi[1]);
    addr_interval(r.dst_net, r.dst_prefix, &box.lo[2], &box.hi[2]);
    port_interval(r.src_ports, &box.lo[3], &box.hi[3]);
    port_interval(r.dst_ports, &box.lo[4], &box.hi[4]);
  } else {
    addr_interval(r.dst_net, r.dst_prefix, &box.lo[1], &box.hi[1]);
    addr_interval(r.src_net, r.src_prefix, &box.lo[2], &box.hi[2]);
    port_interval(r.dst_ports, &box.lo[3], &box.hi[3]);
    port_interval(r.src_ports, &box.lo[4], &box.hi[4]);
  }
  return box;
}

struct Expanded {
  RuleBox boxes[2];
  int count = 1;
};

Expanded expand(const Rule& r) {
  Expanded e;
  e.boxes[0] = directed_box(r, false);
  if (r.bidirectional) {
    e.boxes[1] = directed_box(r, true);
    e.count = 2;
  }
  return e;
}

bool covers(const Expanded& a, const Expanded& b) {
  for (int jb = 0; jb < b.count; ++jb) {
    bool covered = false;
    for (int ia = 0; ia < a.count && !covered; ++ia) {
      covered = a.boxes[ia].covers(b.boxes[jb]);
    }
    if (!covered) return false;
  }
  return true;
}

bool intersects(const Expanded& a, const Expanded& b) {
  for (int ia = 0; ia < a.count; ++ia) {
    for (int jb = 0; jb < b.count; ++jb) {
      if (a.boxes[ia].intersects(b.boxes[jb])) return true;
    }
  }
  return false;
}

}  // namespace

const char* to_string(FindingKind kind) {
  switch (kind) {
    case FindingKind::kShadowed:
      return "shadowed";
    case FindingKind::kRedundant:
      return "redundant";
    case FindingKind::kObsolete:
      return "obsolete";
    case FindingKind::kConflict:
      return "conflict";
    case FindingKind::kAnyAny:
      return "any-any";
  }
  return "?";
}

std::string Finding::to_string() const {
  std::ostringstream os;
  os << policygen::to_string(kind) << " rule#" << rule_index;
  if (other_index >= 0) os << " (vs rule#" << other_index << ")";
  return os.str();
}

bool AnalysisReport::has(FindingKind kind, int rule_index,
                         int other_index) const {
  for (const Finding& f : findings) {
    if (f.kind == kind && f.rule_index == rule_index &&
        (other_index < 0 || f.other_index == other_index)) {
      return true;
    }
  }
  return false;
}

std::string AnalysisReport::to_string() const {
  std::ostringstream os;
  os << rules << " rules, " << entries << " entries: " << error_count()
     << " errors (" << count(FindingKind::kShadowed) << " shadowed, "
     << count(FindingKind::kRedundant) << " redundant, "
     << count(FindingKind::kObsolete) << " obsolete, "
     << count(FindingKind::kAnyAny) << " any-any), " << warning_count()
     << " conflict warnings";
  if (truncated > 0) os << ", " << truncated << " findings truncated";
  return os.str();
}

void RuleSetAnalyzer::boxes_of(const Rule& rule, RuleBox out[2], int* count) {
  const Expanded e = expand(rule);
  out[0] = e.boxes[0];
  if (e.count == 2) out[1] = e.boxes[1];
  *count = e.count;
}

bool RuleSetAnalyzer::rule_covers(const Rule& a, const Rule& b) {
  return covers(expand(a), expand(b));
}

bool RuleSetAnalyzer::rules_intersect(const Rule& a, const Rule& b) {
  return intersects(expand(a), expand(b));
}

bool RuleSetAnalyzer::matches_everything(const Rule& rule) {
  return rule.protocol == 0 && rule.src_prefix <= 0 && rule.dst_prefix <= 0 &&
         rule.src_ports.any() && rule.dst_ports.any();
}

bool RuleSetAnalyzer::same_verdict(const Rule& a, const Rule& b) {
  if (a.action != b.action) return false;
  if (a.action == RuleAction::kVpg) return a.vpg_id == b.vpg_id;
  return true;
}

AnalysisReport RuleSetAnalyzer::analyze(const RuleSet& rule_set) {
  const std::vector<Rule>& rules = rule_set.rules();
  const int n = static_cast<int>(rules.size());

  AnalysisReport report;
  report.rules = static_cast<std::size_t>(n);

  std::vector<Expanded> geo;
  geo.reserve(rules.size());
  for (const Rule& r : rules) {
    geo.push_back(expand(r));
    report.entries += static_cast<std::size_t>(geo.back().count);
  }

  const auto add = [&report](FindingKind kind, int rule_index, int other_index,
                             int* stored_slot, int cap) {
    ++report.total[static_cast<int>(kind)];
    if (stored_slot != nullptr && *stored_slot >= cap) {
      ++report.truncated;
      return;
    }
    if (stored_slot != nullptr) ++*stored_slot;
    report.findings.push_back(Finding{kind, rule_index, other_index});
  };

  // Whether rule i already has its (first) later same-verdict coverer.
  std::vector<char> obsolete_done(rules.size(), 0);

  for (int j = 0; j < n; ++j) {
    if (rules[j].action == RuleAction::kAllow && matches_everything(rules[j])) {
      add(FindingKind::kAnyAny, j, -1, nullptr, 0);
    }
    int cover_stored = 0;
    int conflict_stored = 0;
    for (int i = 0; i < j; ++i) {
      ++report.pairs_examined;
      const bool verdicts_match = same_verdict(rules[i], rules[j]);
      if (covers(geo[i], geo[j])) {
        // First-match: i swallows all of j's traffic — j is dead.
        add(verdicts_match ? FindingKind::kRedundant : FindingKind::kShadowed,
            j, i, &cover_stored, kMaxCoverFindingsPerRule);
        continue;
      }
      if (verdicts_match && !obsolete_done[static_cast<std::size_t>(i)] &&
          covers(geo[j], geo[i])) {
        // j (later, broader, same verdict) subsumes i. i is obsolete unless
        // some rule between them carves a different verdict out of i's
        // region — then removing i would re-route that overlap.
        obsolete_done[static_cast<std::size_t>(i)] = 1;
        bool blocked = false;
        for (int m = i + 1; m < j && !blocked; ++m) {
          blocked = !same_verdict(rules[m], rules[i]) &&
                    intersects(geo[m], geo[i]);
        }
        if (!blocked) add(FindingKind::kObsolete, i, j, nullptr, 0);
        continue;
      }
      if (!verdicts_match && !covers(geo[j], geo[i]) &&
          intersects(geo[i], geo[j])) {
        // Proper crossing with disagreeing verdicts: order-dependent overlap.
        add(FindingKind::kConflict, j, i, &conflict_stored,
            kMaxConflictFindingsPerRule);
      }
    }
  }
  return report;
}

}  // namespace barb::firewall::policygen
