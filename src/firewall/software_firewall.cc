#include "firewall/software_firewall.h"

#include <utility>

namespace barb::firewall {

SoftwareFirewall::SoftwareFirewall(sim::Simulation& sim, SoftwareFirewallConfig config)
    : sim_(sim),
      config_(config),
      flow_cache_(FlowCacheConfig{config.flow_cache_capacity}) {
  rules_.set_default_action(RuleAction::kAllow);
  if (config_.backend != MatchBackend::kLinear) compiled_.rebuild(rules_);
}

MatchResult SoftwareFirewall::classify(const net::FrameView& view,
                                       sim::Duration* service) {
  if (config_.backend == MatchBackend::kLinear) {
    const MatchResult mr = rules_.match(view);
    *service += config_.per_rule * static_cast<std::int64_t>(mr.rules_traversed);
    return mr;
  }
  const auto tuple = view.five_tuple();
  const bool cacheable =
      config_.backend == MatchBackend::kCompiledFlowCache && tuple && !view.vpg;
  if (cacheable) {
    *service += config_.flow_lookup;
    MatchResult cached;
    if (flow_cache_.lookup(*tuple, &cached)) return cached;
  }
  const CompiledMatch cm = compiled_.match(view);
  *service += config_.per_node * static_cast<std::int64_t>(cm.nodes);
  if (cacheable) {
    *service += config_.flow_insert;
    flow_cache_.insert(*tuple, cm.result);
  }
  return cm.result;
}

void SoftwareFirewall::filter(stack::FilterDirection /*direction*/, net::Packet pkt,
                              Resume resume) {
  if (queue_.size() >= config_.backlog) {
    ++stats_.backlog_drops;
    return;
  }
  queue_.push_back(Job{std::move(pkt), std::move(resume)});
  if (!busy_) start_next();
}

void SoftwareFirewall::start_next() {
  if (busy_ || queue_.empty()) return;
  busy_ = true;

  const Job& job = queue_.front();
  sim::Duration service = config_.per_packet;
  // Cached parse shared with the rest of the frame's path through the host.
  const net::FrameView* view = job.pkt.view();
  MatchResult mr;
  mr.action = RuleAction::kAllow;
  if (view != nullptr) mr = classify(*view, &service);
  stats_.cpu_busy += service;
  if (service_hist_ != nullptr) {
    service_hist_->record(static_cast<std::uint64_t>(service.ns()));
  }

  sim_.schedule(service, [this, action = mr.action] {
    busy_ = false;
    Job job = std::move(queue_.front());
    queue_.pop_front();
    // iptables has no VPG concept; a kVpg verdict cannot occur here because
    // policies compiled for hosts never contain VPG rules. Treat defensively
    // as deny.
    if (action == RuleAction::kAllow) {
      ++stats_.allowed;
      job.resume(std::move(job.pkt));
    } else {
      ++stats_.denied;
    }
    start_next();
  });
}

void SoftwareFirewall::register_metrics(telemetry::MetricRegistry& registry,
                                        const std::string& labels) {
  registry.counter_fn("swfw.allowed", labels,
                      [this] { return static_cast<double>(stats_.allowed); });
  registry.counter_fn("swfw.denied", labels,
                      [this] { return static_cast<double>(stats_.denied); });
  registry.counter_fn("swfw.backlog_drops", labels,
                      [this] { return static_cast<double>(stats_.backlog_drops); });
  registry.counter_fn("swfw.cpu_busy_seconds", labels,
                      [this] { return stats_.cpu_busy.to_seconds(); });
  registry.gauge("swfw.queue_depth", labels,
                 [this] { return static_cast<double>(queue_.size()); });
  service_hist_ = &registry.histogram("swfw.service_time_ns", labels);
}

}  // namespace barb::firewall
