// FloodGuard: the flood-tolerant NIC front-end the paper's conclusion asks
// for ("we hope this research encourages the development of new embedded
// firewall devices that have sufficient tolerance to simple packet flood
// attacks").
//
// The vulnerability's anatomy (DESIGN.md): the expensive rule walk runs on
// every frame, so an attacker buys firewall CPU at minimum-frame prices.
// FloodGuard screens arrivals *before* the rule walk at near-arrival cost,
// with three mechanisms:
//
//  * a per-source token bucket (LRU-bounded table) caps any single source,
//  * a new-source bucket throttles first-contact admissions — the defense
//    against spoofed floods, where every packet claims a fresh address, and
//  * an aggregate admission bucket backstops the rule walk.
//
// The guard is capacity-aware: the card knows its own per-frame walk cost
// for the installed rule-set and scales the buckets so admitted traffic can
// never saturate the embedded CPU (reconfigure_for_capacity, called by the
// NIC whenever policy changes).
//
// Honest limits, shown by bench/extension_flood_guard: a single-source flood
// is neutralized outright; a spoofed flood is reduced to the new-source
// budget, preserving most legitimate bandwidth at a modest cost to deep
// rule-set throughput (the per-source cap binds below the stock card's own
// ceiling there).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "net/frame_view.h"
#include "sim/time.h"
#include "util/token_bucket.h"

namespace barb::firewall {

struct FloodGuardConfig {
  bool enabled = false;
  // Ceilings; reconfigure_for_capacity lowers the effective rates so that
  // admitted * walk_cost stays below the fractions given here.
  double per_source_rate = 12000.0;
  double per_source_burst = 400.0;
  double new_source_rate = 1000.0;  // first-contact admissions per second
  double new_source_burst = 100.0;
  double aggregate_rate = 20000.0;
  double aggregate_burst = 500.0;
  // Capacity fractions: a single source may consume at most this share of
  // the rule-walk capacity; all admitted traffic at most the aggregate share.
  double per_source_capacity_share = 0.55;
  double aggregate_capacity_share = 0.85;
  // Penalty box: a source whose per-source violations exceed the threshold
  // within one second is blacklisted for the penalty duration (its frames
  // then cost only the screen, not the walk). Legitimate ACK-clocked TCP
  // cannot overrun its bucket by thousands per second; a flood must.
  std::uint64_t penalty_threshold = 5000;
  sim::Duration penalty_duration = sim::Duration::seconds(5);
  // Screening cost per arriving frame on the embedded CPU.
  sim::Duration screen_cost = sim::Duration::microseconds(2);
  // Bounded source table (LRU eviction) — the guard itself must not be a
  // memory-exhaustion target.
  std::size_t max_sources = 4096;
};

struct FloodGuardStats {
  std::uint64_t screened = 0;
  std::uint64_t per_source_drops = 0;
  std::uint64_t new_source_drops = 0;
  std::uint64_t aggregate_drops = 0;
  std::uint64_t penalized_drops = 0;
  std::uint64_t penalties_imposed = 0;
  std::uint64_t evictions = 0;
};

class FloodGuard {
 public:
  explicit FloodGuard(FloodGuardConfig config) : config_(config) { apply_rates(); }

  const FloodGuardConfig& config() const { return config_; }
  const FloodGuardStats& stats() const { return stats_; }
  std::size_t tracked_sources() const { return sources_.size(); }
  double effective_per_source_rate() const { return per_source_rate_; }
  double effective_aggregate_rate() const { return aggregate_rate_; }

  // Rescales admission to the card's rule-walk capacity (frames/s the walk
  // can sustain for minimum-size frames). Clears learned source state.
  void reconfigure_for_capacity(double walk_frames_per_sec);

  // Returns true if the frame may proceed to the rule walk.
  bool admit(const net::FrameView& view, sim::TimePoint now);

 private:
  struct SourceEntry {
    TokenBucket bucket;
    std::list<std::uint32_t>::iterator lru_position;
    std::uint64_t violations = 0;
    sim::TimePoint violation_window_start;
    sim::TimePoint penalized_until;
  };

  void apply_rates();

  FloodGuardConfig config_;
  double per_source_rate_ = 0;
  double aggregate_rate_ = 0;
  TokenBucket aggregate_{1.0, 1.0};
  TokenBucket new_sources_{1.0, 1.0};
  std::unordered_map<std::uint32_t, SourceEntry> sources_;
  std::list<std::uint32_t> lru_;  // front = most recent
  FloodGuardStats stats_;
};

}  // namespace barb::firewall
