#include "firewall/flood_guard.h"

#include <algorithm>

namespace barb::firewall {

void FloodGuard::apply_rates() {
  per_source_rate_ = config_.per_source_rate;
  aggregate_rate_ = config_.aggregate_rate;
  aggregate_ = TokenBucket(std::max(1.0, aggregate_rate_), config_.aggregate_burst);
  new_sources_ =
      TokenBucket(std::max(1.0, config_.new_source_rate), config_.new_source_burst);
}

void FloodGuard::reconfigure_for_capacity(double walk_frames_per_sec) {
  per_source_rate_ = std::min(config_.per_source_rate,
                              walk_frames_per_sec * config_.per_source_capacity_share);
  aggregate_rate_ = std::min(config_.aggregate_rate,
                             walk_frames_per_sec * config_.aggregate_capacity_share);
  aggregate_ = TokenBucket(std::max(1.0, aggregate_rate_), config_.aggregate_burst);
  new_sources_ =
      TokenBucket(std::max(1.0, config_.new_source_rate), config_.new_source_burst);
  sources_.clear();
  lru_.clear();
}

bool FloodGuard::admit(const net::FrameView& view, sim::TimePoint now) {
  if (!config_.enabled) return true;
  ++stats_.screened;
  if (!view.ip) return true;  // non-IP frames are not rate-limited here

  const std::uint32_t source = view.ip->src.value();
  auto it = sources_.find(source);
  if (it == sources_.end()) {
    // First contact: spend a new-source token before tracking it. This is
    // what blunts spoofed floods — every spoofed packet is "new".
    if (!new_sources_.try_consume(now)) {
      ++stats_.new_source_drops;
      return false;
    }
    if (sources_.size() >= config_.max_sources) {
      sources_.erase(lru_.back());
      lru_.pop_back();
      ++stats_.evictions;
    }
    lru_.push_front(source);
    auto [inserted, _] = sources_.emplace(
        source, SourceEntry{TokenBucket(std::max(1.0, per_source_rate_),
                                        config_.per_source_burst),
                            lru_.begin()});
    it = inserted;
    // Burn idle accrual so a brand-new source starts with its burst only.
    (void)it->second.bucket.tokens(now);
  } else {
    lru_.splice(lru_.begin(), lru_, it->second.lru_position);
  }

  SourceEntry& entry = it->second;
  if (now < entry.penalized_until) {
    ++stats_.penalized_drops;
    return false;
  }
  if (!entry.bucket.try_consume(now)) {
    ++stats_.per_source_drops;
    if (now - entry.violation_window_start >= sim::Duration::seconds(1)) {
      entry.violation_window_start = now;
      entry.violations = 0;
    }
    if (++entry.violations > config_.penalty_threshold) {
      entry.penalized_until = now + config_.penalty_duration;
      entry.violations = 0;
      ++stats_.penalties_imposed;
    }
    return false;
  }
  if (!aggregate_.try_consume(now)) {
    ++stats_.aggregate_drops;
    return false;
  }
  return true;
}

}  // namespace barb::firewall
