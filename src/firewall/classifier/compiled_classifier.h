// Compiled packet classifier: field-wise interval tables with bit-vector
// priority resolution (the Lucent bit-vector scheme over five dimensions).
//
// The linear matcher in rule_set.cc is the paper-faithful model of the NIC's
// embedded CPU: O(rules) per frame, which is the whole bottleneck the paper
// measures. This classifier is the counterfactual backend — what the card
// could do if the firmware compiled the ordered rule-set at policy-push time
// instead of interpreting it per frame:
//
//  * Every rule expands into one directed entry (plus a reversed entry when
//    bidirectional); entries keep rule order, so bit position order equals
//    first-match priority order.
//  * Each of the five fields (protocol, src addr, dst addr, src port,
//    dst port) gets an interval table: the entry ranges cut the field's
//    value domain into elementary intervals, and each interval stores the
//    bit-set of entries whose range covers it.
//  * A lookup binary-searches each field's boundary array, ANDs the five
//    bit-sets word by word, and the first set bit of the intersection is the
//    first matching rule. VPG-encapsulated frames resolve through a separate
//    id -> first-VPG-rule index map (the device cannot see inner selectors).
//
// Verdicts are bit-identical to RuleSet::match on every MatchResult field:
// traversal counts (which only exist to drive the *linear* cost model) are
// reconstructed from prefix sums over the rule list, so differential oracles
// can compare the full struct. The compiled backend's own cost unit is
// `nodes` — binary-search steps plus intersection words scanned — which the
// DeviceProfile turns into service time.
//
// Memory is the scheme's known tradeoff: O(intervals x entries/64) bits per
// field, i.e. quadratic-ish in rule count. At the paper's 64-rule depths it
// is a few KB; at the microbench's 4096-rule depth a few tens of MB. Rebuild
// is O(entries x intervals) and happens only at policy push.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "firewall/rule_set.h"
#include "net/five_tuple.h"
#include "net/frame_view.h"

namespace barb::firewall {

struct CompiledMatch {
  // Bit-identical to what RuleSet::match would return for the same input.
  MatchResult result;
  // Decision-structure work: binary-search steps + intersection words
  // scanned (+1 for the verdict node). The compiled cost model charges
  // DeviceProfile::compiled_node per unit.
  int nodes = 0;
};

struct CompiledClassifierStats {
  std::uint64_t rebuilds = 0;
  std::size_t rules = 0;
  std::size_t entries = 0;       // directed entries after expansion
  std::size_t intervals = 0;     // elementary intervals across all fields
  std::size_t memory_bytes = 0;  // bit-vector + boundary storage
};

class CompiledClassifier {
 public:
  CompiledClassifier() = default;

  // Translates an ordered rule-set into the field-wise structure. Called at
  // policy-push time; the previous structure is replaced wholesale (the sim
  // is single-threaded per simulation, so the swap is atomic with respect
  // to frame processing).
  void rebuild(const RuleSet& rules);

  // First-match lookup, mirroring RuleSet::match(FrameView): VPG frames by
  // id, cleartext frames by tuple, tuple-less frames fall through to the
  // default action at full traversal cost.
  CompiledMatch match(const net::FrameView& v) const;
  CompiledMatch match(const net::FiveTuple& t) const;

  // Worst-case lookup nodes (all binary searches + a full intersection
  // scan): the capacity estimate FloodGuard sizes admission against.
  int worst_case_nodes() const;

  const CompiledClassifierStats& stats() const { return stats_; }

 private:
  // One field's interval table. Values are widened to uint32.
  struct FieldTable {
    std::vector<std::uint32_t> boundaries;  // sorted, boundaries[0] == 0
    std::vector<std::uint64_t> bits;        // intervals x words, row-major
    int search_depth = 0;                   // ceil(log2(intervals)), >= 1

    const std::uint64_t* row(std::uint32_t value, std::size_t words) const;
  };

  CompiledMatch make_result(int entry_bit) const;
  CompiledMatch make_result_for_rule(int rule) const;
  CompiledMatch default_result() const;
  CompiledMatch match_vpg(std::uint32_t vpg_id) const;

  // Per-entry metadata: which rule a bit position belongs to.
  std::vector<int> entry_rule_;
  // Verdict material per rule, copied out of the RuleSet at rebuild so the
  // classifier answers without touching the rule list.
  std::vector<RuleAction> rule_action_;
  std::vector<std::uint32_t> rule_vpg_id_;
  // Prefix sums over the rule list: cost_prefix_[i] = traversal units of
  // rules [0, i); vpg_prefix_[i] = VPG rules among them. A match at index k
  // therefore traversed cost_prefix_[k + 1] units — exactly the linear
  // matcher's accounting, at O(1).
  std::vector<int> cost_prefix_{0};
  std::vector<int> vpg_prefix_{0};

  FieldTable fields_[5];  // proto, src, dst, sport, dport
  std::size_t words_ = 0;
  std::unordered_map<std::uint32_t, int> vpg_index_;  // id -> first rule index
  RuleAction default_action_ = RuleAction::kDeny;
  CompiledClassifierStats stats_;
};

}  // namespace barb::firewall
