#include "firewall/classifier/flow_cache.h"

namespace barb::firewall {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlowCache::FlowCache(FlowCacheConfig config) : config_(config) {
  const std::size_t slots = round_up_pow2(config_.capacity < 2 ? 2 : config_.capacity);
  slots_.resize(slots);
  mask_ = slots - 1;
}

bool FlowCache::lookup(const net::FiveTuple& tuple, MatchResult* out) {
  ++stats_.lookups;
  std::size_t idx = home(tuple);
  for (int d = 0; d < config_.max_probe; ++d, idx = (idx + 1) & mask_) {
    Slot& s = slots_[idx];
    if (!s.used) break;
    // Robin-hood invariant: every entry past this point sits further from
    // its own home than we are from ours, so a poorer current slot means
    // the key cannot be in the table.
    if (s.distance < d) break;
    if (s.key == tuple) {
      if (s.generation != generation_) {
        ++stats_.stale_hits;
        break;  // old policy's verdict; the caller reclassifies and reinserts
      }
      ++stats_.hits;
      *out = s.verdict;
      return true;
    }
  }
  ++stats_.misses;
  return false;
}

void FlowCache::insert(const net::FiveTuple& tuple, const MatchResult& verdict) {
  ++stats_.inserts;
  Slot incoming;
  incoming.key = tuple;
  incoming.verdict = verdict;
  incoming.generation = generation_;
  incoming.distance = 0;
  incoming.used = true;

  std::size_t idx = home(tuple);
  for (int hop = 0; hop < config_.max_probe * 2; ++hop, idx = (idx + 1) & mask_) {
    Slot& s = slots_[idx];
    if (!s.used || s.generation != generation_) {
      // Empty or stale: claim it (stale slots are reclaimed here, not on the
      // generation bump).
      s = incoming;
      ++live_;
      return;
    }
    if (s.key == incoming.key) {
      s.verdict = incoming.verdict;  // refresh
      return;
    }
    if (s.distance < incoming.distance) {
      // Robin hood: the resident is closer to home than the incoming entry;
      // swap so the poorer entry keeps probing.
      std::swap(s, incoming);
    }
    if (incoming.distance >= config_.max_probe - 1) {
      // Probe bound hit: drop whichever entry is currently homeless. Under a
      // unique-tuple flood this is the steady state — the table churns at
      // bounded cost instead of growing.
      ++stats_.evictions;
      return;
    }
    ++incoming.distance;
  }
  // Unreachable while max_probe bounds distance, but keep the entry loss
  // accounted if the loop ever exits.
  ++stats_.evictions;
}

}  // namespace barb::firewall
