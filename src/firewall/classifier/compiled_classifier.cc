#include "firewall/classifier/compiled_classifier.h"

#include <algorithm>
#include <bit>

namespace barb::firewall {

namespace {

// Closed value range for one field of one directed entry. lo > hi encodes
// "matches nothing" (an explicitly empty PortRange like {5,0}).
struct Range {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  bool empty() const { return lo > hi; }
};

struct DirectedEntry {
  Range field[5];  // proto, src, dst, sport, dport
};

Range proto_range(std::uint8_t protocol) {
  if (protocol == 0) return {0, 0xff};
  return {protocol, protocol};
}

Range prefix_range(net::Ipv4Address net, int prefix) {
  if (prefix <= 0) return {0, 0xffffffffu};
  const std::uint32_t mask =
      prefix >= 32 ? 0xffffffffu : ~((std::uint32_t{1} << (32 - prefix)) - 1);
  const std::uint32_t base = net.value() & mask;
  return {base, base | ~mask};
}

Range port_range(const PortRange& p) {
  if (p.any()) return {0, 0xffff};
  return {p.lo, p.hi};  // lo > hi stays an empty range, matching contains()
}

DirectedEntry forward_entry(const Rule& r) {
  DirectedEntry e;
  e.field[0] = proto_range(r.protocol);
  e.field[1] = prefix_range(r.src_net, r.src_prefix);
  e.field[2] = prefix_range(r.dst_net, r.dst_prefix);
  e.field[3] = port_range(r.src_ports);
  e.field[4] = port_range(r.dst_ports);
  return e;
}

// The reversed tuple matched against the rule's selectors is equivalent to
// matching the original tuple against swapped selectors.
DirectedEntry reversed_entry(const Rule& r) {
  DirectedEntry e;
  e.field[0] = proto_range(r.protocol);
  e.field[1] = prefix_range(r.dst_net, r.dst_prefix);
  e.field[2] = prefix_range(r.src_net, r.src_prefix);
  e.field[3] = port_range(r.dst_ports);
  e.field[4] = port_range(r.src_ports);
  return e;
}

int ceil_log2(std::size_t n) {
  int depth = 1;
  while ((std::size_t{1} << depth) < n) ++depth;
  return depth;
}

}  // namespace

void CompiledClassifier::rebuild(const RuleSet& rules) {
  const auto& list = rules.rules();
  default_action_ = rules.default_action();

  entry_rule_.clear();
  rule_action_.clear();
  rule_vpg_id_.clear();
  cost_prefix_.assign(1, 0);
  vpg_prefix_.assign(1, 0);
  vpg_index_.clear();

  std::vector<DirectedEntry> entries;
  for (std::size_t i = 0; i < list.size(); ++i) {
    const Rule& r = list[i];
    rule_action_.push_back(r.action);
    rule_vpg_id_.push_back(r.vpg_id);
    cost_prefix_.push_back(cost_prefix_.back() + r.cost_units());
    vpg_prefix_.push_back(vpg_prefix_.back() +
                          (r.action == RuleAction::kVpg ? 1 : 0));
    if (r.action == RuleAction::kVpg) {
      vpg_index_.try_emplace(r.vpg_id, static_cast<int>(i));
    }
    entries.push_back(forward_entry(r));
    entry_rule_.push_back(static_cast<int>(i));
    if (r.bidirectional) {
      entries.push_back(reversed_entry(r));
      entry_rule_.push_back(static_cast<int>(i));
    }
  }

  words_ = (entries.size() + 63) / 64;
  std::size_t total_intervals = 0;
  std::size_t memory = 0;
  for (int f = 0; f < 5; ++f) {
    FieldTable& ft = fields_[f];
    ft.boundaries.assign(1, 0);
    for (const auto& e : entries) {
      const Range& r = e.field[f];
      if (r.empty()) continue;
      ft.boundaries.push_back(r.lo);
      if (r.hi != 0xffffffffu) ft.boundaries.push_back(r.hi + 1);
    }
    std::sort(ft.boundaries.begin(), ft.boundaries.end());
    ft.boundaries.erase(std::unique(ft.boundaries.begin(), ft.boundaries.end()),
                        ft.boundaries.end());
    const std::size_t intervals = ft.boundaries.size();
    ft.search_depth = ceil_log2(intervals);
    ft.bits.assign(intervals * words_, 0);
    for (std::size_t e = 0; e < entries.size(); ++e) {
      const Range& r = entries[e].field[f];
      if (r.empty()) continue;
      // Intervals covered by [lo, hi]: from the interval starting at lo
      // (lo is a boundary by construction) up to the last with start <= hi.
      const auto first = std::lower_bound(ft.boundaries.begin(),
                                          ft.boundaries.end(), r.lo);
      auto last = std::upper_bound(ft.boundaries.begin(), ft.boundaries.end(),
                                   r.hi);
      const std::size_t j0 =
          static_cast<std::size_t>(first - ft.boundaries.begin());
      const std::size_t j1 =
          static_cast<std::size_t>(last - ft.boundaries.begin());  // exclusive
      for (std::size_t j = j0; j < j1; ++j) {
        ft.bits[j * words_ + e / 64] |= std::uint64_t{1} << (e % 64);
      }
    }
    total_intervals += intervals;
    memory += ft.boundaries.size() * sizeof(std::uint32_t) +
              ft.bits.size() * sizeof(std::uint64_t);
  }

  ++stats_.rebuilds;
  stats_.rules = list.size();
  stats_.entries = entries.size();
  stats_.intervals = total_intervals;
  stats_.memory_bytes = memory;
}

const std::uint64_t* CompiledClassifier::FieldTable::row(
    std::uint32_t value, std::size_t words) const {
  // Index of the last boundary <= value; boundaries[0] == 0 guarantees one.
  const auto it =
      std::upper_bound(boundaries.begin(), boundaries.end(), value) - 1;
  const std::size_t j = static_cast<std::size_t>(it - boundaries.begin());
  return bits.data() + j * words;
}

CompiledMatch CompiledClassifier::make_result(int entry_bit) const {
  return make_result_for_rule(entry_rule_[static_cast<std::size_t>(entry_bit)]);
}

CompiledMatch CompiledClassifier::make_result_for_rule(int rule) const {
  CompiledMatch m;
  m.result.action = rule_action_[static_cast<std::size_t>(rule)];
  m.result.vpg_id = rule_vpg_id_[static_cast<std::size_t>(rule)];
  m.result.matched_index = rule;
  m.result.rules_traversed = cost_prefix_[static_cast<std::size_t>(rule) + 1];
  m.result.vpg_rules_traversed = vpg_prefix_[static_cast<std::size_t>(rule) + 1];
  return m;
}

CompiledMatch CompiledClassifier::default_result() const {
  CompiledMatch m;
  m.result.action = default_action_;
  m.result.matched_index = -1;
  m.result.rules_traversed = cost_prefix_.back();
  m.result.vpg_rules_traversed = vpg_prefix_.back();
  return m;
}

CompiledMatch CompiledClassifier::match_vpg(std::uint32_t vpg_id) const {
  const auto it = vpg_index_.find(vpg_id);
  CompiledMatch m = it == vpg_index_.end()
                        ? default_result()
                        : make_result_for_rule(it->second);
  m.nodes = 1;  // one id-map probe
  return m;
}

CompiledMatch CompiledClassifier::match(const net::FiveTuple& t) const {
  CompiledMatch m;
  int nodes = 0;
  const std::uint64_t* rows[5];
  const std::uint32_t values[5] = {t.protocol, t.src.value(), t.dst.value(),
                                   t.src_port, t.dst_port};
  for (int f = 0; f < 5; ++f) {
    rows[f] = fields_[f].row(values[f], words_);
    nodes += fields_[f].search_depth;
  }
  for (std::size_t w = 0; w < words_; ++w) {
    ++nodes;
    const std::uint64_t word =
        rows[0][w] & rows[1][w] & rows[2][w] & rows[3][w] & rows[4][w];
    if (word != 0) {
      m = make_result(static_cast<int>(w * 64) + std::countr_zero(word));
      m.nodes = nodes + 1;  // +1 verdict node
      return m;
    }
  }
  m = default_result();
  m.nodes = nodes + 1;
  return m;
}

CompiledMatch CompiledClassifier::match(const net::FrameView& v) const {
  if (v.vpg) return match_vpg(v.vpg->vpg_id);
  const auto tuple = v.five_tuple();
  if (!tuple) {
    CompiledMatch m = default_result();
    m.nodes = 1;
    return m;
  }
  return match(*tuple);
}

int CompiledClassifier::worst_case_nodes() const {
  int nodes = 1;
  for (const auto& f : fields_) nodes += f.search_depth;
  return nodes + static_cast<int>(words_);
}

}  // namespace barb::firewall
