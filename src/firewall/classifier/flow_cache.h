// Five-tuple flow cache: open-addressing robin-hood table in front of the
// compiled classifier.
//
// The first frame of a flow pays the classification (compiled-tree) cost and
// its verdict is cached under the exact five-tuple; subsequent frames of the
// flow resolve with one hash + compare. This is what makes rule depth stop
// mattering for established traffic — and what a spoofed-source flood
// defeats, since every flood frame carries a fresh tuple and therefore
// misses, pays the tree walk, and evicts a live entry (cache thrash; see
// bench/fig3b_compiled).
//
// Design points:
//  * Fixed capacity, power-of-two slots, bounded probe distance. Robin-hood
//    displacement keeps probe sequences short; an insert whose displacement
//    chain exceeds the probe bound drops the carried (poorest) entry — the
//    eviction policy. The table can never grow, so a tuple flood churns it
//    instead of exhausting memory.
//  * Verdicts of every action (allow, deny, vpg) are cached: the card's
//    cost is classification, not the verdict's sign. VPG-encapsulated
//    frames never enter the cache (their match is by id, already O(1)).
//  * Invalidation is by generation: a policy push bumps the generation and
//    every existing entry goes stale at once (checked lazily on lookup,
//    reclaimed lazily on insert) — no O(capacity) flush on the push path.
#pragma once

#include <cstdint>
#include <vector>

#include "firewall/rule_set.h"
#include "net/five_tuple.h"

namespace barb::firewall {

struct FlowCacheConfig {
  std::size_t capacity = 8192;  // rounded up to a power of two slots
  int max_probe = 16;           // probe-distance bound (also the scan cost cap)
};

struct FlowCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;      // live entries dropped by displacement
  std::uint64_t stale_hits = 0;     // lookups that found an old-generation entry
  std::uint64_t invalidations = 0;  // generation bumps (policy pushes)
};

class FlowCache {
 public:
  explicit FlowCache(FlowCacheConfig config = {});

  // True and *out filled if the exact tuple has a current-generation entry.
  bool lookup(const net::FiveTuple& tuple, MatchResult* out);

  // Caches a verdict for the exact tuple (idempotent; refreshes existing).
  void insert(const net::FiveTuple& tuple, const MatchResult& verdict);

  // Policy push: all cached verdicts may be wrong now. O(1).
  void bump_generation() {
    ++generation_;
    ++stats_.invalidations;
    live_ = 0;
  }

  std::uint64_t generation() const { return generation_; }
  std::size_t capacity() const { return mask_ + 1; }
  // Current-generation entries (approximate upper bound after a bump: stale
  // entries are only discounted as they are found and reclaimed).
  std::size_t live_entries() const { return live_; }
  const FlowCacheStats& stats() const { return stats_; }

 private:
  struct Slot {
    net::FiveTuple key;
    MatchResult verdict;
    std::uint64_t generation = 0;
    std::uint8_t distance = 0;  // probe distance from home slot
    bool used = false;
  };

  std::size_t home(const net::FiveTuple& tuple) const {
    return std::hash<net::FiveTuple>{}(tuple) & mask_;
  }

  FlowCacheConfig config_;
  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::uint64_t generation_ = 1;
  std::size_t live_ = 0;
  FlowCacheStats stats_;
};

}  // namespace barb::firewall
