// NIC-resident firewall model (EFW / ADF).
//
// Both directions of traffic are serviced by one embedded processor working
// through finite RX/TX descriptor rings. Service time follows the calibrated
// DeviceProfile cost model; frames that arrive while the rings are full are
// dropped — that queue, not the wire, is the bottleneck the paper's flood
// attacks saturate.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "firewall/classifier/compiled_classifier.h"
#include "firewall/classifier/flow_cache.h"
#include "firewall/flood_guard.h"
#include "firewall/flow_state.h"
#include "firewall/profiles.h"
#include "firewall/rule_set.h"
#include "firewall/vpg.h"
#include "stack/nic.h"
#include "telemetry/registry.h"

namespace barb::firewall {

struct FirewallNicStats {
  std::uint64_t rx_ring_drops = 0;
  std::uint64_t rx_ring_drops_large = 0;  // subset of rx_ring_drops, frames > 500 B
  std::uint64_t tx_ring_drops = 0;
  std::uint64_t rx_allowed = 0;
  std::uint64_t rx_denied = 0;
  std::uint64_t tx_allowed = 0;
  std::uint64_t tx_denied = 0;
  std::uint64_t vpg_drops = 0;     // failed encap/decap (auth, replay, oversize)
  std::uint64_t lockup_drops = 0;  // frames discarded while latched
  std::uint64_t frames_processed = 0;
  std::uint64_t rules_traversed = 0;  // total rule-walk length across frames
  sim::Duration cpu_busy;          // accumulated embedded-CPU service time
};

// Compiled-backend matching counters ("match.*" when registered). Flow-cache
// hit/miss/eviction counts live in FlowCache::stats().
struct MatchPathStats {
  std::uint64_t lookups = 0;         // classifications (cache hits included)
  std::uint64_t compiled_nodes = 0;  // decision-structure nodes visited
  std::uint64_t rebuilds = 0;        // compiled rebuilds (policy pushes)
};

class FirewallNic : public stack::Nic {
 public:
  FirewallNic(sim::Simulation& sim, net::MacAddress mac, std::string name,
              DeviceProfile profile);

  // Policy installation (normally via the PolicyAgent). The default policy
  // is an empty rule-set with default-allow, i.e. an unconfigured card.
  // A push is atomic with respect to frame processing (the embedded CPU
  // picks up verdicts between frames): the compiled structure is rebuilt
  // wholesale and the flow cache's generation is bumped before the next
  // frame is classified.
  void install_rule_set(RuleSet rules) {
    rules_ = std::move(rules);
    flow_states_.clear();  // old verdicts may no longer be valid
    if (profile_.match_backend != MatchBackend::kLinear) {
      compiled_.rebuild(rules_);
      flow_cache_.bump_generation();
      ++matchstats_.rebuilds;
    }
    reconfigure_guard();
  }

  // Enables the FloodGuard screening stage (the paper's hoped-for
  // flood-tolerant design; see flood_guard.h). Screening runs before the
  // rule walk on inbound frames at near-arrival cost.
  void enable_flood_guard(FloodGuardConfig config) {
    config.enabled = true;
    guard_ = FloodGuard(config);
    reconfigure_guard();
  }
  const FloodGuard& flood_guard() const { return guard_; }

  // Management exemption: traffic to/from the policy server bypasses the
  // rule walk (base cost only), mirroring the EFW's implicit always-allow
  // for policy-server communication — without it, a deny-by-default policy
  // would cut the card off from its own management channel.
  void set_management_peer(net::Ipv4Address ip) { management_peer_ = ip; }
  const RuleSet& rule_set() const { return rules_; }
  VpgTable& vpg_table() { return vpgs_; }

  const DeviceProfile& profile() const { return profile_; }
  const FirewallNicStats& fw_stats() const { return fwstats_; }
  const FlowStateTable& flow_states() const { return flow_states_; }
  const MatchPathStats& match_stats() const { return matchstats_; }
  const CompiledClassifier& compiled_classifier() const { return compiled_; }
  const FlowCache& flow_cache() const { return flow_cache_; }
  bool locked_up() const { return locked_; }

  // Registers the card's counters ("fw.*"), queue gauges, a service-time
  // histogram ("fw.service_time_ns", fed by every processed frame), and —
  // when FloodGuard is enabled — the "guard.*" screening counters.
  void register_metrics(telemetry::MetricRegistry& registry,
                        const std::string& labels);

  // Firewall-agent restart: clears the lockup latch and flushes the rings.
  // This is the paper's observed recovery procedure for the EFW deny-flood
  // failure ("restarting the firewall agent software restored
  // functionality").
  void restart();

  // Host -> wire.
  void transmit(net::Packet pkt) override;
  // Wire -> host.
  void deliver(net::Packet pkt) override;

 private:
  struct Job {
    net::Packet pkt;
    bool inbound;
    // Verdict, decided when the embedded CPU picks the frame up.
    RuleAction action = RuleAction::kDeny;
    std::uint32_t vpg_id = 0;
    bool parsed = false;
    bool management = false;
  };

  void enqueue(Job job);
  void start_next();
  void finish(Job job);
  void note_inbound_deny();
  // Classifies one frame through the configured backend, accruing the
  // backend's cost model into *service. Returns the (backend-independent)
  // match verdict.
  MatchResult classify(const net::FrameView& view, sim::Duration* service);

  bool is_management_frame(const net::FrameView& view) const;
  void reconfigure_guard();

  DeviceProfile profile_;
  RuleSet rules_;
  VpgTable vpgs_;
  FloodGuard guard_{FloodGuardConfig{}};  // disabled by default
  FlowStateTable flow_states_;            // used when profile_.stateful
  CompiledClassifier compiled_;           // used by the compiled backends
  FlowCache flow_cache_;                  // used by kCompiledFlowCache
  MatchPathStats matchstats_;
  std::optional<net::Ipv4Address> management_peer_;

  std::deque<Job> queue_;  // FIFO across both buffers (one CPU services both)
  std::size_t rx_buffered_bytes_ = 0;
  std::size_t tx_buffered_bytes_ = 0;
  bool busy_ = false;
  bool locked_ = false;
  std::uint64_t service_epoch_ = 0;  // invalidates in-flight service on restart

  sim::Duration pending_overhead_;  // accrued arrival costs awaiting the CPU
  sim::TimePoint deny_window_start_;
  std::uint64_t deny_window_count_ = 0;

  FirewallNicStats fwstats_;
  // Registry-owned service-time histogram; null until register_metrics.
  telemetry::Histogram* service_hist_ = nullptr;
};

}  // namespace barb::firewall
