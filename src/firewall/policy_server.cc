#include "firewall/policy_server.h"

#include <algorithm>

#include "util/byte_io.h"
#include "util/logging.h"

namespace barb::firewall {

struct PolicyServer::Session {
  std::shared_ptr<stack::TcpConnection> conn;
  PolicyMessageReader reader;
  net::Ipv4Address agent;  // set after hello
  bool identified = false;
};

PolicyServer::PolicyServer(stack::Host& host, std::span<const std::uint8_t> deployment_key,
                           std::uint16_t port)
    : host_(host), key_(deployment_key.begin(), deployment_key.end()), port_(port) {}

PolicyServer::~PolicyServer() = default;

void PolicyServer::start() {
  host_.tcp_listen(port_, [this](std::shared_ptr<stack::TcpConnection> conn) {
    auto session = std::make_shared<Session>();
    session->conn = conn;
    pending_.push_back(session);
    conn->on_data = [this, session](std::span<const std::uint8_t> data) {
      session->reader.append(data);
      while (auto msg = session->reader.next(key_)) {
        handle_message(*session, *msg);
      }
      if (session->reader.corrupted()) {
        BARB_WARN("policy server: corrupted stream from %s, dropping",
                  session->agent.to_string().c_str());
        ++stats_.corrupted_streams;
        session->conn->abort();
      }
    };
    conn->on_closed = [this, session] {
      if (session->identified) {
        agents_[session->agent].connected = false;
        sessions_.erase(session->agent);
      }
      std::erase(pending_, session);
    };
  });
}

std::uint64_t PolicyServer::policy_version(net::Ipv4Address agent) const {
  auto it = policies_.find(agent);
  return it == policies_.end() ? 0 : it->second.version;
}

void PolicyServer::set_policy(net::Ipv4Address agent, std::string policy_text) {
  auto& entry = policies_[agent];
  entry.text = std::move(policy_text);
  ++entry.version;
  push_policy(agent);
}

std::size_t PolicyServer::set_policy_all(std::span<const net::Ipv4Address> agents,
                                         const std::string& policy_text) {
  std::size_t pushed = 0;
  for (const auto& agent : agents) {
    const bool live = sessions_.contains(agent);
    set_policy(agent, policy_text);
    if (live) ++pushed;
  }
  return pushed;
}

std::size_t PolicyServer::count_connected() const {
  std::size_t n = 0;
  for (const auto& [ip, status] : agents_) n += status.connected ? 1 : 0;
  return n;
}

std::size_t PolicyServer::count_acked_at_least(std::uint64_t version) const {
  std::size_t n = 0;
  for (const auto& [ip, status] : agents_) n += status.acked_version >= version ? 1 : 0;
  return n;
}

void PolicyServer::register_metrics(telemetry::MetricRegistry& registry,
                                    const std::string& labels) {
  registry.counter_fn("policy.pushes", labels,
                      [this] { return static_cast<double>(stats_.pushes); });
  registry.counter_fn("policy.push_bytes", labels,
                      [this] { return static_cast<double>(stats_.push_bytes); });
  registry.counter_fn("policy.acks", labels,
                      [this] { return static_cast<double>(stats_.acks); });
  registry.counter_fn("policy.heartbeats", labels,
                      [this] { return static_cast<double>(stats_.heartbeats); });
  registry.gauge("policy.connected", labels, [this] {
    return static_cast<double>(count_connected());
  });
}

void PolicyServer::create_vpg(std::uint32_t vpg_id,
                              std::span<const net::Ipv4Address> members) {
  std::vector<std::uint8_t> master(32);
  for (auto& byte : master) {
    byte = static_cast<std::uint8_t>(host_.simulation().rng().next_u64());
  }
  for (const auto& agent : members) {
    auto& entry = policies_[agent];
    // Replace any existing key for this VPG id.
    std::erase_if(entry.keys, [vpg_id](const VpgKeyEntry& k) { return k.vpg_id == vpg_id; });
    entry.keys.push_back(VpgKeyEntry{vpg_id, master});
    ++entry.version;
    push_policy(agent);
  }
}

void PolicyServer::command_restart(net::Ipv4Address agent) {
  PolicyMessage msg;
  msg.type = PolicyMsgType::kRestart;
  msg.seq = next_seq_++;
  send_to(agent, msg);
}

std::string PolicyServer::render_policy_body(net::Ipv4Address agent) {
  const auto& entry = policies_[agent];
  std::string body = "version " + std::to_string(entry.version) + "\n";
  body += entry.text;
  if (!body.ends_with('\n')) body += "\n";
  for (const auto& k : entry.keys) {
    body += "vpgkey " + std::to_string(k.vpg_id) + " " + to_hex(k.master_key) + "\n";
  }
  return body;
}

void PolicyServer::push_policy(net::Ipv4Address agent) {
  auto sit = sessions_.find(agent);
  if (sit == sessions_.end()) return;  // will be pushed on connect
  PolicyMessage msg;
  msg.type = PolicyMsgType::kPolicyUpdate;
  msg.seq = next_seq_++;
  msg.body = render_policy_body(agent);
  send_to(agent, msg);
  agents_[agent].pushed_version = policies_[agent].version;
  ++stats_.pushes;
}

void PolicyServer::send_to(net::Ipv4Address agent, const PolicyMessage& msg) {
  auto sit = sessions_.find(agent);
  if (sit == sessions_.end()) return;
  const auto bytes = encode_policy_message(msg, key_);
  stats_.push_bytes += msg.type == PolicyMsgType::kPolicyUpdate ? bytes.size() : 0;
  sit->second->conn->send(bytes);
}

void PolicyServer::handle_message(Session& session, const PolicyMessage& msg) {
  switch (msg.type) {
    case PolicyMsgType::kHello: {
      // body: "host <ip>"
      const auto pos = msg.body.find("host ");
      if (pos != 0) return;
      auto ip = net::Ipv4Address::parse(
          std::string_view(msg.body).substr(5, msg.body.find_first_of(" \n", 5) - 5));
      if (!ip) return;
      session.identified = true;
      session.agent = *ip;
      // Adopt the session (replacing any stale one).
      for (auto& p : pending_) {
        if (p.get() == &session) {
          sessions_[*ip] = p;
          std::erase(pending_, p);
          break;
        }
      }
      auto& status = agents_[*ip];
      status.connected = true;
      status.last_heartbeat = host_.simulation().now();
      ++stats_.hellos;
      if (policies_.contains(*ip)) push_policy(*ip);
      break;
    }
    case PolicyMsgType::kAck: {
      if (!session.identified) return;
      std::uint64_t version = 0;
      if (std::sscanf(msg.body.c_str(), "version %llu",
                      reinterpret_cast<unsigned long long*>(&version)) == 1) {
        agents_[session.agent].acked_version = version;
        ++stats_.acks;
      }
      break;
    }
    case PolicyMsgType::kHeartbeat: {
      if (!session.identified) return;
      auto& status = agents_[session.agent];
      status.last_heartbeat = host_.simulation().now();
      ++status.heartbeats;
      ++stats_.heartbeats;
      status.reported_locked = msg.body.find("status locked") != std::string::npos;
      break;
    }
    default:
      break;  // agents do not send server-bound types
  }
}

}  // namespace barb::firewall
