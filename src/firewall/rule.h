// Firewall rules.
//
// EFW/ADF rule-sets are ordered first-match lists evaluated linearly on the
// NIC's embedded processor — which is exactly why rule-set depth costs
// bandwidth in the paper. A VPG rule is "the pair of rules that fully define
// one VPG" and therefore counts as two traversal units.
#pragma once

#include <cstdint>
#include <string>

#include "net/five_tuple.h"
#include "net/ipv4_address.h"

namespace barb::firewall {

enum class RuleAction : std::uint8_t {
  kAllow,
  kDeny,
  kVpg,  // tunnel matching traffic through the identified VPG
};

const char* to_string(RuleAction action);

struct PortRange {
  std::uint16_t lo = 0;  // 0..0 means "any"
  std::uint16_t hi = 0;

  bool any() const { return lo == 0 && hi == 0; }
  bool contains(std::uint16_t port) const {
    return any() || (port >= lo && port <= hi);
  }
  bool operator==(const PortRange&) const = default;
};

struct Rule {
  RuleAction action = RuleAction::kDeny;
  std::uint8_t protocol = 0;  // IP protocol; 0 = any
  net::Ipv4Address src_net;
  int src_prefix = 0;  // 0 = any
  net::Ipv4Address dst_net;
  int dst_prefix = 0;
  PortRange src_ports;
  PortRange dst_ports;
  // Host-resident firewalls see both directions of a conversation; the
  // EFW/ADF policy tools generate symmetric rules, which we model with one
  // bidirectional rule.
  bool bidirectional = true;
  std::uint32_t vpg_id = 0;  // meaningful when action == kVpg

  // Traversal cost in "rule units" (a VPG is a rule pair).
  int cost_units() const { return action == RuleAction::kVpg ? 2 : 1; }

  bool matches(const net::FiveTuple& t) const {
    return matches(t, t.reversed());
  }

  // Hot-path form: the linear matcher computes the reversed tuple once per
  // lookup instead of re-deriving it inside every rule.
  bool matches(const net::FiveTuple& t, const net::FiveTuple& reversed) const {
    if (matches_directed(t)) return true;
    return bidirectional && matches_directed(reversed);
  }

  std::string to_string() const;

 private:
  bool matches_directed(const net::FiveTuple& t) const {
    if (protocol != 0 && protocol != t.protocol) return false;
    if (src_prefix > 0 && !t.src.in_subnet(src_net, src_prefix)) return false;
    if (dst_prefix > 0 && !t.dst.in_subnet(dst_net, dst_prefix)) return false;
    if (!src_ports.contains(t.src_port)) return false;
    if (!dst_ports.contains(t.dst_port)) return false;
    return true;
  }
};

}  // namespace barb::firewall
