// Policy distribution wire protocol.
//
// The EFW ships a central policy server that pushes rule-sets to firewall
// agents on every protected host. Our equivalent runs over the simulated
// TCP stack with HMAC-SHA256 message authentication under a shared
// deployment key (a compromised host must not be able to forge policy for
// others).
//
// Frame layout (big-endian):
//   magic   u32  'BPLC'
//   type    u8
//   flags   u8 (reserved, 0)
//   seq     u64  per-connection monotonic
//   len     u32  body length
//   body    len bytes (UTF-8, type-specific)
//   hmac    32 bytes over everything above
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace barb::firewall {

enum class PolicyMsgType : std::uint8_t {
  kHello = 1,         // agent -> server: "host <ip>"
  kPolicyUpdate = 2,  // server -> agent: "version <n>\n<policy text + vpgkey lines>"
  kAck = 3,           // agent -> server: "version <n>"
  kHeartbeat = 4,     // agent -> server: "status <ok|locked> processed <n>"
  kRestart = 5,       // server -> agent: restart the firewall card
};

struct PolicyMessage {
  PolicyMsgType type = PolicyMsgType::kHello;
  std::uint64_t seq = 0;
  std::string body;
};

constexpr std::uint32_t kPolicyMagic = 0x42504c43;  // 'BPLC'
constexpr std::size_t kPolicyMacSize = 32;

std::vector<std::uint8_t> encode_policy_message(const PolicyMessage& msg,
                                                std::span<const std::uint8_t> key);

// Incremental decoder over a TCP byte stream. Feed bytes with append();
// next() yields complete, authenticated messages. A bad MAC or malformed
// header poisons the stream (corrupted() == true) — the connection should
// be dropped, which is what an agent under attack must do.
class PolicyMessageReader {
 public:
  void append(std::span<const std::uint8_t> bytes) {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }

  std::optional<PolicyMessage> next(std::span<const std::uint8_t> key);
  bool corrupted() const { return corrupted_; }

 private:
  std::vector<std::uint8_t> buffer_;
  bool corrupted_ = false;
};

// Hex helpers for VPG key lines in policy bodies.
std::optional<std::vector<std::uint8_t>> parse_hex(std::string_view hex);

}  // namespace barb::firewall
