// Firewall agent: host-side daemon that enrolls with the policy server,
// applies pushed policies to the local FirewallNic, heartbeats the card's
// health (including the lockup latch), and executes restart commands.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "firewall/nic_firewall.h"
#include "firewall/policy.h"
#include "firewall/policy_protocol.h"
#include "stack/host.h"
#include "stack/tcp.h"

namespace barb::firewall {

struct PolicyAgentStats {
  std::uint64_t policies_applied = 0;
  std::uint64_t policy_errors = 0;
  std::uint64_t restarts_executed = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t last_version = 0;
};

class PolicyAgent {
 public:
  PolicyAgent(stack::Host& host, FirewallNic& nic, net::Ipv4Address server_ip,
              std::span<const std::uint8_t> deployment_key,
              std::uint16_t server_port = 3456);

  void start();
  // Fleet-friendly start: schedules the first connect `delay` from now, so a
  // thousand agents don't SYN the server in the same nanosecond (benches
  // stagger by index; the paper's single agent just calls start()).
  void start_after(sim::Duration delay);

  const PolicyAgentStats& stats() const { return stats_; }
  bool connected() const { return conn_ != nullptr; }

  sim::Duration heartbeat_interval = sim::Duration::seconds(1);
  sim::Duration reconnect_delay = sim::Duration::seconds(2);

 private:
  void connect();
  void on_message(const PolicyMessage& msg);
  void apply_policy(const std::string& body);
  void send(PolicyMsgType type, std::string body);
  void schedule_heartbeat();

  stack::Host& host_;
  FirewallNic& nic_;
  net::Ipv4Address server_ip_;
  std::uint16_t server_port_;
  std::vector<std::uint8_t> key_;

  std::shared_ptr<stack::TcpConnection> conn_;
  PolicyMessageReader reader_;
  std::uint64_t next_seq_ = 1;
  sim::EventHandle heartbeat_timer_;
  sim::EventHandle reconnect_timer_;
  PolicyAgentStats stats_;
};

}  // namespace barb::firewall
