// Policy language.
//
// The central policy server defines per-host policies in a small text DSL
// (standing in for the EFW Policy Server's GUI-defined policies), compiled
// to ordered rule-sets on the agent side:
//
//   # comment
//   default deny
//   allow tcp from any to 10.0.0.2 port 80
//   deny udp from 10.1.0.0/16 to any oneway
//   vpg 7 between 10.0.0.2 and 10.0.0.3 port 5001
//
// Serialization (RuleSet::to_string) round-trips through this parser, which
// is how policies travel over the distribution protocol.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "firewall/rule_set.h"

namespace barb::firewall {

struct PolicyParseError {
  int line = 0;
  std::string message;
};

struct PolicyParseResult {
  std::optional<RuleSet> rule_set;
  std::optional<PolicyParseError> error;

  bool ok() const { return rule_set.has_value(); }
};

PolicyParseResult parse_policy(std::string_view text);

}  // namespace barb::firewall
