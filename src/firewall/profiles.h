// Embedded-firewall device profiles.
//
// We do not have the proprietary 3CR990 firmware, so the EFW and ADF are
// modeled as a single-server queue on the NIC's embedded processor with a
// linear first-match cost model (DESIGN.md, "Cost-model calibration"):
//
//   service(frame) = arrival_overhead + fixed + frame_bytes * per_byte
//                  + rule_units_traversed * per_rule
//                  + [matching VPG] (vpg_setup + sealed_payload_bytes * vpg_byte)
//
// where arrival_overhead is charged for every frame that reaches the card,
// including frames dropped at a full ring (receive livelock).
//
// Calibration anchors (paper, 100 Mbps testbed) and the resulting EFW
// constants:
//  * A ~45 kpps one-rule UDP flood (minimum-size frames; 30% of the 100 Mbps
//    maximum frame rate) causes denial of service:
//      t_small(1) = arr + fixed + 60*per_byte + per_rule = 22.2 us.
//  * EFW sustains ~4100 maximum-size frames/s behind a 64-rule policy
//    (~50 Mbps). The CPU serves r data frames plus r/2 delayed ACKs
//    (minimum-size) per second: r * t_big(64) + r/2 * t_small(64) = 1
//    ->  t_big(64) = 162.6 us.
//  * No significant bandwidth loss below ~20 rules; clear loss by 32.
//  Solving with per_byte = 26 ns (the per-byte term is what lets a
//  minimum-frame flood starve full-size data frames at saturation):
//      arr = 4 us, fixed = 15 us, per_rule = 1.63 us.
//  Cross-checks: t_big(1) = 60 us (full line rate at shallow rule-sets ok),
//  minimum allowed-TCP-flood rate at depth 64 with RST responses
//  1/(2 * t_small(64)) ~ 4.0 kpps (paper: ~4.5 kpps), deny ~ 2x allow.
//  * ADF sustains ~33 Mbps at 64 rules on the same hardware ("a less
//    efficient packet filtering algorithm"): per_rule = 2.92 us.
//  * ADF VPG throughput ~55 Mbps at one VPG: vpg_setup = 6 us,
//    vpg_byte = 80 ns (per sealed payload byte, paid only at the matching
//    VPG rule).
//  * EFW lockup: under a denied flood above ~1000 packets/s the card stopped
//    processing entirely until the firewall agent was restarted (paper
//    section 4.3). Modeled as a latching fault on the deny path.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace barb::firewall {

// Rule-matching backend on the embedded CPU.
//
//  * kLinear — the calibrated paper-faithful model: O(rules) first-match
//    interpretation per frame (everything the paper measured).
//  * kCompiled — counterfactual: the firmware compiles the rule-set into a
//    field-wise decision structure at policy-push time; per-frame cost is
//    per *node visited* (binary-search steps + intersection words), not per
//    rule. See firewall/classifier/compiled_classifier.h.
//  * kCompiledFlowCache — kCompiled plus a five-tuple verdict cache:
//    established flows resolve with one hash+compare and skip the decision
//    structure entirely. See firewall/classifier/flow_cache.h.
enum class MatchBackend : std::uint8_t {
  kLinear,
  kCompiled,
  kCompiledFlowCache,
};

inline const char* to_string(MatchBackend backend) {
  switch (backend) {
    case MatchBackend::kLinear: return "linear";
    case MatchBackend::kCompiled: return "compiled";
    case MatchBackend::kCompiledFlowCache: return "compiled+flowcache";
  }
  return "?";
}

struct DeviceProfile {
  std::string name;
  // Per-arrival cost (descriptor/DMA handling) charged for EVERY frame that
  // reaches the card — including frames dropped because a ring is full.
  // This is the receive-livelock term: past saturation, additional flood
  // packets still consume CPU, which is why the paper's measured bandwidth
  // falls to "almost zero" rather than plateauing at the residual rate.
  sim::Duration arrival_overhead = sim::Duration::microseconds(4);
  // Per-frame base processing cost on the embedded CPU (accepted frames).
  sim::Duration fixed = sim::Duration::microseconds(15);
  // Per-byte processing (copy/inspect) cost.
  sim::Duration per_byte = sim::Duration::nanoseconds(26);
  // Cost per rule unit traversed (a VPG rule pair is two units).
  sim::Duration per_rule = sim::Duration::nanoseconds(1630);
  // Crypto costs, paid only when a frame matches a VPG rule.
  sim::Duration vpg_setup = sim::Duration::microseconds(6);
  sim::Duration vpg_per_byte = sim::Duration::nanoseconds(80);
  // Relative service-time jitter (uniform +/- fraction). Real firmware cost
  // varies per packet; without it, a constant-rate flood phase-locks with
  // the service clock and drop-tail discards become deterministic instead
  // of hitting flows proportionally.
  double service_jitter = 0.15;
  // On-card packet memory (bytes) for frames awaiting the embedded CPU,
  // per direction (the 3CR990's 3XP processor has 128 KB of local RAM).
  // Byte accounting is load-bearing: a minimum-size flood packs ~25x more
  // frames into the buffer than full-size data traffic, which is how the
  // flood starves legitimate frames of buffer space at saturation.
  std::size_t rx_buffer_bytes = 64 * 1024;
  std::size_t tx_buffer_bytes = 64 * 1024;
  // Stateful-filtering extension (the real EFW/ADF are stateless; this is
  // the "what if the card kept pf-style flow state" ablation): packets of
  // established allowed flows skip the rule walk at this lookup cost.
  bool stateful = false;
  sim::Duration state_lookup = sim::Duration::microseconds(1);
  // Ablation model: decrypt every VPG-encapsulated frame at each VPG rule
  // traversed instead of only at the matching rule. The paper infers the
  // real ADF does NOT do this ("the ADF is able to avoid decrypting
  // incoming packets until they reach the matching VPG rule"); setting this
  // shows what Figure 2's VPG curve would look like otherwise.
  bool vpg_decrypt_always = false;
  // Deny-path lockup fault (EFW only): if more than lockup_threshold frames
  // are denied within one second, the card latches and drops everything
  // until the agent restarts it. 0 disables the fault.
  std::uint64_t lockup_denies_per_sec = 0;

  // --- Matching backend (ROADMAP item 1 counterfactual) ------------------
  // kLinear keeps the calibrated per_rule cost above; the compiled backends
  // replace the rule-walk term with their own cost model. These are NOT
  // calibrated against hardware (no such firmware existed) — they are
  // anchored to the same embedded CPU's primitive costs: one decision-tree
  // node is a word-sized load+compare+branch in card RAM (a fraction of the
  // 1.63 us full rule evaluation), one flow-cache probe is a tuple hash
  // plus a 13-byte key compare.
  MatchBackend match_backend = MatchBackend::kLinear;
  // Cost per compiled-structure node visited on a classification
  // (binary-search steps + intersection words; CompiledMatch::nodes).
  sim::Duration compiled_node = sim::Duration::nanoseconds(200);
  // Hash + key-compare cost per flow-cache lookup (hit or miss; a miss pays
  // this *plus* the compiled walk, plus the insert).
  sim::Duration flow_lookup = sim::Duration::nanoseconds(900);
  // Insert/displacement cost charged when a miss caches its verdict.
  sim::Duration flow_insert = sim::Duration::nanoseconds(400);
  // Verdict-cache capacity (entries; rounded up to a power of two).
  std::size_t flow_cache_capacity = 8192;

  // Service time of an accepted frame before any VPG crypto.
  sim::Duration base_service(std::size_t frame_bytes, int rule_units) const {
    return fixed + per_byte * static_cast<std::int64_t>(frame_bytes) +
           per_rule * static_cast<std::int64_t>(rule_units);
  }
};

// 3Com Embedded Firewall (EFW) on the 3CR990.
inline DeviceProfile efw_profile() {
  DeviceProfile p;
  p.name = "EFW";
  // The commercial EFW has no VPG support; the crypto fields are unused.
  p.lockup_denies_per_sec = 1000;
  return p;
}

// Adventium Autonomic Distributed Firewall (ADF), same hardware, slower
// matcher, plus VPG encryption.
inline DeviceProfile adf_profile() {
  DeviceProfile p;
  p.name = "ADF";
  p.per_rule = sim::Duration::nanoseconds(2920);
  return p;
}

// Derived profile with a non-default matching backend ("EFW+compiled",
// "EFW+flowcache", ...). The linear calibration constants stay in place —
// only the rule-walk term of the cost model is swapped out.
inline DeviceProfile with_backend(DeviceProfile p, MatchBackend backend) {
  p.match_backend = backend;
  switch (backend) {
    case MatchBackend::kLinear: break;
    case MatchBackend::kCompiled: p.name += "+compiled"; break;
    case MatchBackend::kCompiledFlowCache: p.name += "+flowcache"; break;
  }
  return p;
}

}  // namespace barb::firewall
