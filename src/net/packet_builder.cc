#include "net/packet_builder.h"

#include "net/checksum.h"
#include "net/icmp.h"
#include "net/udp.h"
#include "util/assert.h"

namespace barb::net {

std::vector<std::uint8_t> build_ipv4_frame(const IpEndpoints& ep, IpProtocol protocol,
                                           std::span<const std::uint8_t> ip_payload,
                                           std::uint16_t ip_id, std::uint8_t ttl) {
  BARB_ASSERT_MSG(ip_payload.size() + Ipv4Header::kSize <= kEthernetMtu,
                  "payload exceeds MTU; fragmentation is not modeled");
  std::vector<std::uint8_t> frame;
  frame.reserve(EthernetHeader::kSize + Ipv4Header::kSize + ip_payload.size());
  ByteWriter w(frame);

  EthernetHeader eth;
  eth.dst = ep.dst_mac;
  eth.src = ep.src_mac;
  eth.ethertype = static_cast<std::uint16_t>(EtherType::kIpv4);
  eth.serialize(w);

  Ipv4Header ip;
  ip.total_length = static_cast<std::uint16_t>(Ipv4Header::kSize + ip_payload.size());
  ip.identification = ip_id;
  ip.ttl = ttl;
  ip.protocol = static_cast<std::uint8_t>(protocol);
  ip.src = ep.src_ip;
  ip.dst = ep.dst_ip;
  ip.serialize(w);

  w.bytes(ip_payload);
  if (frame.size() < kEthernetMinFrameNoFcs) {
    w.zeros(kEthernetMinFrameNoFcs - frame.size());
  }
  return frame;
}

std::vector<std::uint8_t> build_udp_frame(const IpEndpoints& ep, std::uint16_t src_port,
                                          std::uint16_t dst_port,
                                          std::span<const std::uint8_t> payload,
                                          std::uint16_t ip_id) {
  std::vector<std::uint8_t> segment;
  segment.reserve(UdpHeader::kSize + payload.size());
  ByteWriter w(segment);
  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  udp.length = static_cast<std::uint16_t>(UdpHeader::kSize + payload.size());
  udp.serialize(w);
  w.bytes(payload);
  const std::uint16_t sum =
      transport_checksum(ep.src_ip, ep.dst_ip,
                         static_cast<std::uint8_t>(IpProtocol::kUdp), segment);
  segment[6] = static_cast<std::uint8_t>(sum >> 8);
  segment[7] = static_cast<std::uint8_t>(sum);
  return build_ipv4_frame(ep, IpProtocol::kUdp, segment, ip_id);
}

std::vector<std::uint8_t> build_tcp_frame(const IpEndpoints& ep, TcpHeader header,
                                          std::span<const std::uint8_t> payload,
                                          std::uint16_t ip_id) {
  std::vector<std::uint8_t> segment;
  segment.reserve(header.size() + payload.size());
  ByteWriter w(segment);
  header.checksum = 0;
  header.serialize(w);
  w.bytes(payload);
  const std::uint16_t sum =
      transport_checksum(ep.src_ip, ep.dst_ip,
                         static_cast<std::uint8_t>(IpProtocol::kTcp), segment);
  segment[16] = static_cast<std::uint8_t>(sum >> 8);
  segment[17] = static_cast<std::uint8_t>(sum);
  return build_ipv4_frame(ep, IpProtocol::kTcp, segment, ip_id);
}

std::vector<std::uint8_t> build_icmp_frame(const IpEndpoints& ep, std::uint8_t type,
                                           std::uint8_t code, std::uint32_t rest,
                                           std::span<const std::uint8_t> payload,
                                           std::uint16_t ip_id) {
  std::vector<std::uint8_t> msg;
  msg.reserve(IcmpHeader::kSize + payload.size());
  ByteWriter w(msg);
  IcmpHeader icmp;
  icmp.type = type;
  icmp.code = code;
  icmp.rest = rest;
  icmp.serialize(w);
  w.bytes(payload);
  const std::uint16_t sum = internet_checksum(msg);
  msg[2] = static_cast<std::uint8_t>(sum >> 8);
  msg[3] = static_cast<std::uint8_t>(sum);
  return build_ipv4_frame(ep, IpProtocol::kIcmp, msg, ip_id);
}

}  // namespace barb::net
