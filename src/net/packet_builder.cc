#include "net/packet_builder.h"

#include "net/checksum.h"
#include "net/icmp.h"
#include "net/udp.h"
#include "util/assert.h"

namespace barb::net {

namespace {

// Serializes Ethernet + IPv4 headers for a frame carrying `ip_payload_len`
// bytes of IP payload. Shared by the vector and pooled builder forms so the
// two produce byte-identical frames.
void write_eth_ipv4(ByteWriter& w, const IpEndpoints& ep, IpProtocol protocol,
                    std::size_t ip_payload_len, std::uint16_t ip_id,
                    std::uint8_t ttl) {
  BARB_ASSERT_MSG(ip_payload_len + Ipv4Header::kSize <= kEthernetMtu,
                  "payload exceeds MTU; fragmentation is not modeled");
  EthernetHeader eth;
  eth.dst = ep.dst_mac;
  eth.src = ep.src_mac;
  eth.ethertype = static_cast<std::uint16_t>(EtherType::kIpv4);
  eth.serialize(w);

  Ipv4Header ip;
  ip.total_length = static_cast<std::uint16_t>(Ipv4Header::kSize + ip_payload_len);
  ip.identification = ip_id;
  ip.ttl = ttl;
  ip.protocol = static_cast<std::uint8_t>(protocol);
  ip.src = ep.src_ip;
  ip.dst = ep.dst_ip;
  ip.serialize(w);
}

void pad_to_minimum(ByteWriter& w, const std::vector<std::uint8_t>& frame) {
  if (frame.size() < kEthernetMinFrameNoFcs) {
    w.zeros(kEthernetMinFrameNoFcs - frame.size());
  }
}

std::size_t padded_frame_size(std::size_t ip_payload_len) {
  return std::max(EthernetHeader::kSize + Ipv4Header::kSize + ip_payload_len,
                  kEthernetMinFrameNoFcs);
}

// Writes a full UDP frame into `frame` (which must be empty).
void write_udp_frame(std::vector<std::uint8_t>& frame, const IpEndpoints& ep,
                     std::uint16_t src_port, std::uint16_t dst_port,
                     std::span<const std::uint8_t> payload, std::uint16_t ip_id) {
  ByteWriter w(frame);
  const std::size_t seg_len = UdpHeader::kSize + payload.size();
  write_eth_ipv4(w, ep, IpProtocol::kUdp, seg_len, ip_id, Ipv4Header::kDefaultTtl);
  const std::size_t seg_off = frame.size();
  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  udp.length = static_cast<std::uint16_t>(seg_len);
  udp.serialize(w);
  w.bytes(payload);
  const std::uint16_t sum = transport_checksum(
      ep.src_ip, ep.dst_ip, static_cast<std::uint8_t>(IpProtocol::kUdp),
      std::span<const std::uint8_t>(frame).subspan(seg_off));
  frame[seg_off + 6] = static_cast<std::uint8_t>(sum >> 8);
  frame[seg_off + 7] = static_cast<std::uint8_t>(sum);
  pad_to_minimum(w, frame);
}

void write_tcp_frame(std::vector<std::uint8_t>& frame, const IpEndpoints& ep,
                     TcpHeader header, std::span<const std::uint8_t> payload,
                     std::uint16_t ip_id) {
  ByteWriter w(frame);
  const std::size_t seg_len = header.size() + payload.size();
  write_eth_ipv4(w, ep, IpProtocol::kTcp, seg_len, ip_id, Ipv4Header::kDefaultTtl);
  const std::size_t seg_off = frame.size();
  header.checksum = 0;
  header.serialize(w);
  w.bytes(payload);
  const std::uint16_t sum = transport_checksum(
      ep.src_ip, ep.dst_ip, static_cast<std::uint8_t>(IpProtocol::kTcp),
      std::span<const std::uint8_t>(frame).subspan(seg_off));
  frame[seg_off + 16] = static_cast<std::uint8_t>(sum >> 8);
  frame[seg_off + 17] = static_cast<std::uint8_t>(sum);
  pad_to_minimum(w, frame);
}

void write_icmp_frame(std::vector<std::uint8_t>& frame, const IpEndpoints& ep,
                      std::uint8_t type, std::uint8_t code, std::uint32_t rest,
                      std::span<const std::uint8_t> payload, std::uint16_t ip_id) {
  ByteWriter w(frame);
  const std::size_t msg_len = IcmpHeader::kSize + payload.size();
  write_eth_ipv4(w, ep, IpProtocol::kIcmp, msg_len, ip_id, Ipv4Header::kDefaultTtl);
  const std::size_t msg_off = frame.size();
  IcmpHeader icmp;
  icmp.type = type;
  icmp.code = code;
  icmp.rest = rest;
  icmp.serialize(w);
  w.bytes(payload);
  const std::uint16_t sum = internet_checksum(
      std::span<const std::uint8_t>(frame).subspan(msg_off));
  frame[msg_off + 2] = static_cast<std::uint8_t>(sum >> 8);
  frame[msg_off + 3] = static_cast<std::uint8_t>(sum);
  pad_to_minimum(w, frame);
}

}  // namespace

std::vector<std::uint8_t> build_ipv4_frame(const IpEndpoints& ep, IpProtocol protocol,
                                           std::span<const std::uint8_t> ip_payload,
                                           std::uint16_t ip_id, std::uint8_t ttl) {
  std::vector<std::uint8_t> frame;
  frame.reserve(padded_frame_size(ip_payload.size()));
  ByteWriter w(frame);
  write_eth_ipv4(w, ep, protocol, ip_payload.size(), ip_id, ttl);
  w.bytes(ip_payload);
  pad_to_minimum(w, frame);
  return frame;
}

FrameBufferRef build_ipv4_frame_pooled(BufferPool& pool, const IpEndpoints& ep,
                                       IpProtocol protocol,
                                       std::span<const std::uint8_t> ip_payload,
                                       std::uint16_t ip_id, std::uint8_t ttl) {
  auto b = pool.build(padded_frame_size(ip_payload.size()));
  ByteWriter w(b.buffer());
  write_eth_ipv4(w, ep, protocol, ip_payload.size(), ip_id, ttl);
  w.bytes(ip_payload);
  pad_to_minimum(w, b.buffer());
  return b.seal();
}

std::vector<std::uint8_t> build_udp_frame(const IpEndpoints& ep, std::uint16_t src_port,
                                          std::uint16_t dst_port,
                                          std::span<const std::uint8_t> payload,
                                          std::uint16_t ip_id) {
  std::vector<std::uint8_t> frame;
  frame.reserve(padded_frame_size(UdpHeader::kSize + payload.size()));
  write_udp_frame(frame, ep, src_port, dst_port, payload, ip_id);
  return frame;
}

FrameBufferRef build_udp_frame_pooled(BufferPool& pool, const IpEndpoints& ep,
                                      std::uint16_t src_port, std::uint16_t dst_port,
                                      std::span<const std::uint8_t> payload,
                                      std::uint16_t ip_id) {
  auto b = pool.build(padded_frame_size(UdpHeader::kSize + payload.size()));
  write_udp_frame(b.buffer(), ep, src_port, dst_port, payload, ip_id);
  return b.seal();
}

std::vector<std::uint8_t> build_tcp_frame(const IpEndpoints& ep, TcpHeader header,
                                          std::span<const std::uint8_t> payload,
                                          std::uint16_t ip_id) {
  std::vector<std::uint8_t> frame;
  frame.reserve(padded_frame_size(header.size() + payload.size()));
  write_tcp_frame(frame, ep, header, payload, ip_id);
  return frame;
}

FrameBufferRef build_tcp_frame_pooled(BufferPool& pool, const IpEndpoints& ep,
                                      TcpHeader header,
                                      std::span<const std::uint8_t> payload,
                                      std::uint16_t ip_id) {
  auto b = pool.build(padded_frame_size(header.size() + payload.size()));
  write_tcp_frame(b.buffer(), ep, header, payload, ip_id);
  return b.seal();
}

std::vector<std::uint8_t> build_icmp_frame(const IpEndpoints& ep, std::uint8_t type,
                                           std::uint8_t code, std::uint32_t rest,
                                           std::span<const std::uint8_t> payload,
                                           std::uint16_t ip_id) {
  std::vector<std::uint8_t> frame;
  frame.reserve(padded_frame_size(IcmpHeader::kSize + payload.size()));
  write_icmp_frame(frame, ep, type, code, rest, payload, ip_id);
  return frame;
}

FrameBufferRef build_icmp_frame_pooled(BufferPool& pool, const IpEndpoints& ep,
                                       std::uint8_t type, std::uint8_t code,
                                       std::uint32_t rest,
                                       std::span<const std::uint8_t> payload,
                                       std::uint16_t ip_id) {
  auto b = pool.build(padded_frame_size(IcmpHeader::kSize + payload.size()));
  write_icmp_frame(b.buffer(), ep, type, code, rest, payload, ip_id);
  return b.seal();
}

}  // namespace barb::net
