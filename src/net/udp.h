// UDP header (RFC 768).
#pragma once

#include <cstdint>
#include <optional>

#include "util/byte_io.h"

namespace barb::net {

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;    // header + payload
  std::uint16_t checksum = 0;  // filled in by the builder

  void serialize(ByteWriter& w) const {
    w.u16(src_port);
    w.u16(dst_port);
    w.u16(length);
    w.u16(checksum);
  }

  static std::optional<UdpHeader> parse(ByteReader& r) {
    if (r.remaining() < kSize) return std::nullopt;
    UdpHeader h;
    h.src_port = r.u16();
    h.dst_port = r.u16();
    h.length = r.u16();
    h.checksum = r.u16();
    return h;
  }
};

}  // namespace barb::net
