#include "net/frame_view.h"

namespace barb::net {

std::optional<FrameView> FrameView::parse(std::span<const std::uint8_t> frame) {
  ByteReader r(frame);
  auto eth = EthernetHeader::parse(r);
  if (!eth) return std::nullopt;

  FrameView v;
  v.eth = *eth;
  if (eth->ethertype != static_cast<std::uint16_t>(EtherType::kIpv4)) return v;

  // Keep a copy of the reader position: IP payload length comes from the IP
  // header's total_length, not from the frame size (frames may be padded to
  // the Ethernet minimum).
  const std::size_t ip_start = r.position();
  auto ip = Ipv4Header::parse(r);
  if (!ip) return v;
  if (ip->total_length < Ipv4Header::kSize) return v;
  const std::size_t payload_len = ip->total_length - Ipv4Header::kSize;
  if (frame.size() < ip_start + ip->total_length) return v;
  v.ip = *ip;
  v.l3_payload = frame.subspan(ip_start + Ipv4Header::kSize, payload_len);

  ByteReader lr(v.l3_payload);
  switch (static_cast<IpProtocol>(ip->protocol)) {
    case IpProtocol::kTcp: {
      auto tcp = TcpHeader::parse(lr);
      if (tcp) {
        v.tcp = *tcp;
        v.l4_payload = lr.rest();
      }
      break;
    }
    case IpProtocol::kUdp: {
      auto udp = UdpHeader::parse(lr);
      if (udp && udp->length >= UdpHeader::kSize &&
          udp->length <= v.l3_payload.size()) {
        v.udp = *udp;
        v.l4_payload = v.l3_payload.subspan(UdpHeader::kSize,
                                            udp->length - UdpHeader::kSize);
      }
      break;
    }
    case IpProtocol::kIcmp: {
      auto icmp = IcmpHeader::parse(lr);
      if (icmp) {
        v.icmp = *icmp;
        v.l4_payload = lr.rest();
      }
      break;
    }
    case IpProtocol::kVpg: {
      auto vpg = VpgHeader::parse(lr);
      if (vpg && vpg->payload_len <= lr.remaining()) {
        v.vpg = *vpg;
        v.l4_payload = lr.bytes(vpg->payload_len);
      }
      break;
    }
  }
  return v;
}

std::optional<FiveTuple> FrameView::five_tuple() const {
  if (!ip) return std::nullopt;
  FiveTuple t;
  t.src = ip->src;
  t.dst = ip->dst;
  t.protocol = ip->protocol;
  if (tcp) {
    t.src_port = tcp->src_port;
    t.dst_port = tcp->dst_port;
  } else if (udp) {
    t.src_port = udp->src_port;
    t.dst_port = udp->dst_port;
  }
  return t;
}

}  // namespace barb::net
