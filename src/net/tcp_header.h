// TCP header (RFC 793) with optional MSS option (the only option our stack
// negotiates, matching paper-era Linux 2.4 behaviour at 100 Mbps where window
// scaling is not the bottleneck).
#pragma once

#include <cstdint>
#include <optional>

#include "util/byte_io.h"

namespace barb::net {

struct TcpFlags {
  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;
};

struct TcpHeader {
  static constexpr std::size_t kMinSize = 20;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 0;
  std::uint16_t checksum = 0;  // filled in by the builder
  std::uint16_t urgent = 0;
  std::optional<std::uint16_t> mss;  // MSS option, SYN segments only

  bool syn() const { return flags & TcpFlags::kSyn; }
  bool ack_flag() const { return flags & TcpFlags::kAck; }
  bool fin() const { return flags & TcpFlags::kFin; }
  bool rst() const { return flags & TcpFlags::kRst; }
  bool psh() const { return flags & TcpFlags::kPsh; }

  std::size_t size() const { return kMinSize + (mss ? 4 : 0); }

  void serialize(ByteWriter& w) const {
    w.u16(src_port);
    w.u16(dst_port);
    w.u32(seq);
    w.u32(ack);
    const std::uint8_t data_offset_words = static_cast<std::uint8_t>(size() / 4);
    w.u8(static_cast<std::uint8_t>(data_offset_words << 4));
    w.u8(flags);
    w.u16(window);
    w.u16(checksum);
    w.u16(urgent);
    if (mss) {
      w.u8(2);  // kind: MSS
      w.u8(4);  // length
      w.u16(*mss);
    }
  }

  static std::optional<TcpHeader> parse(ByteReader& r) {
    if (r.remaining() < kMinSize) return std::nullopt;
    TcpHeader h;
    h.src_port = r.u16();
    h.dst_port = r.u16();
    h.seq = r.u32();
    h.ack = r.u32();
    const std::uint8_t offset_byte = r.u8();
    const std::size_t header_len = static_cast<std::size_t>(offset_byte >> 4) * 4;
    if (header_len < kMinSize) return std::nullopt;
    h.flags = r.u8() & 0x3f;
    h.window = r.u16();
    h.checksum = r.u16();
    h.urgent = r.u16();
    std::size_t options_len = header_len - kMinSize;
    if (r.remaining() < options_len) return std::nullopt;
    while (options_len > 0) {
      const std::uint8_t kind = r.u8();
      --options_len;
      if (kind == 0) {  // end of options
        r.skip(options_len);
        options_len = 0;
      } else if (kind == 1) {  // NOP
        continue;
      } else {
        if (options_len < 1) return std::nullopt;
        const std::uint8_t len = r.u8();
        --options_len;
        if (len < 2 || static_cast<std::size_t>(len - 2) > options_len) return std::nullopt;
        if (kind == 2 && len == 4) {
          h.mss = r.u16();
        } else {
          r.skip(static_cast<std::size_t>(len - 2));
        }
        options_len -= static_cast<std::size_t>(len - 2);
      }
    }
    if (!r.ok()) return std::nullopt;
    return h;
  }
};

}  // namespace barb::net
