// Connection/flow identification.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/ipv4_address.h"

namespace barb::net {

struct FiveTuple {
  Ipv4Address src;
  Ipv4Address dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  bool operator==(const FiveTuple&) const = default;

  FiveTuple reversed() const {
    return FiveTuple{dst, src, dst_port, src_port, protocol};
  }

  std::string to_string() const {
    return src.to_string() + ":" + std::to_string(src_port) + " -> " +
           dst.to_string() + ":" + std::to_string(dst_port) + " proto " +
           std::to_string(protocol);
  }
};

}  // namespace barb::net

template <>
struct std::hash<barb::net::FiveTuple> {
  std::size_t operator()(const barb::net::FiveTuple& t) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ULL;
    };
    mix(t.src.value());
    mix(t.dst.value());
    mix(static_cast<std::uint64_t>(t.src_port) << 32 |
        static_cast<std::uint64_t>(t.dst_port) << 16 | t.protocol);
    return static_cast<std::size_t>(h);
  }
};
