// Ethernet MAC addresses.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace barb::net {

class MacAddress {
 public:
  constexpr MacAddress() = default;
  explicit constexpr MacAddress(std::array<std::uint8_t, 6> bytes) : bytes_(bytes) {}

  // Deterministic locally-administered unicast address from a small host id.
  static constexpr MacAddress from_host_id(std::uint32_t id) {
    return MacAddress({0x02, 0x00, static_cast<std::uint8_t>(id >> 24),
                       static_cast<std::uint8_t>(id >> 16),
                       static_cast<std::uint8_t>(id >> 8),
                       static_cast<std::uint8_t>(id)});
  }

  static constexpr MacAddress broadcast() {
    return MacAddress({0xff, 0xff, 0xff, 0xff, 0xff, 0xff});
  }

  static std::optional<MacAddress> parse(std::string_view text);

  constexpr const std::array<std::uint8_t, 6>& bytes() const { return bytes_; }
  constexpr bool is_broadcast() const { return *this == broadcast(); }
  constexpr bool is_multicast() const { return (bytes_[0] & 0x01) != 0; }

  std::string to_string() const;

  constexpr auto operator<=>(const MacAddress&) const = default;

  std::uint64_t to_u64() const {
    std::uint64_t v = 0;
    for (auto b : bytes_) v = v << 8 | b;
    return v;
  }

 private:
  std::array<std::uint8_t, 6> bytes_{};
};

}  // namespace barb::net

template <>
struct std::hash<barb::net::MacAddress> {
  std::size_t operator()(const barb::net::MacAddress& m) const noexcept {
    return std::hash<std::uint64_t>{}(m.to_u64());
  }
};
