// IPv4 addresses, stored in host order internally.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace barb::net {

class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_(static_cast<std::uint32_t>(a) << 24 | static_cast<std::uint32_t>(b) << 16 |
               static_cast<std::uint32_t>(c) << 8 | d) {}

  static std::optional<Ipv4Address> parse(std::string_view text);
  static constexpr Ipv4Address any() { return Ipv4Address(0); }
  static constexpr Ipv4Address broadcast() { return Ipv4Address(0xffffffff); }

  constexpr std::uint32_t value() const { return value_; }
  constexpr bool is_any() const { return value_ == 0; }

  constexpr bool in_subnet(Ipv4Address network, int prefix_len) const {
    if (prefix_len <= 0) return true;
    const std::uint32_t mask =
        prefix_len >= 32 ? 0xffffffffu : ~((std::uint32_t{1} << (32 - prefix_len)) - 1);
    return (value_ & mask) == (network.value_ & mask);
  }

  std::string to_string() const;

  constexpr auto operator<=>(const Ipv4Address&) const = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace barb::net

template <>
struct std::hash<barb::net::Ipv4Address> {
  std::size_t operator()(const barb::net::Ipv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
