// IPv4 header (RFC 791), no options.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "net/checksum.h"
#include "net/ipv4_address.h"
#include "util/byte_io.h"

namespace barb::net {

// IP protocol numbers carried by the simulated network. kVpg is the
// encapsulation protocol for ADF virtual private groups (an unassigned
// experimental number, matching how the real ADF tunnels traffic).
enum class IpProtocol : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
  kVpg = 250,
};

struct Ipv4Header {
  static constexpr std::size_t kSize = 20;
  static constexpr std::uint8_t kDefaultTtl = 64;

  std::uint8_t tos = 0;
  std::uint16_t total_length = 0;  // header + payload
  std::uint16_t identification = 0;
  bool dont_fragment = true;
  std::uint8_t ttl = kDefaultTtl;
  std::uint8_t protocol = 0;
  Ipv4Address src;
  Ipv4Address dst;

  // Serializes with a freshly computed header checksum.
  void serialize(ByteWriter& w) const {
    std::vector<std::uint8_t> hdr;
    hdr.reserve(kSize);
    ByteWriter hw(hdr);
    hw.u8(0x45);  // version 4, IHL 5
    hw.u8(tos);
    hw.u16(total_length);
    hw.u16(identification);
    hw.u16(dont_fragment ? 0x4000 : 0x0000);
    hw.u8(ttl);
    hw.u8(protocol);
    hw.u16(0);  // checksum placeholder
    hw.u32(src.value());
    hw.u32(dst.value());
    const std::uint16_t sum = internet_checksum(hdr);
    hdr[10] = static_cast<std::uint8_t>(sum >> 8);
    hdr[11] = static_cast<std::uint8_t>(sum);
    w.bytes(hdr);
  }

  // Parses and verifies the header checksum; fails on options/fragments
  // (neither is produced by the simulated stacks).
  static std::optional<Ipv4Header> parse(ByteReader& r) {
    if (r.remaining() < kSize) return std::nullopt;
    std::span<const std::uint8_t> raw = r.bytes(kSize);
    if (internet_checksum(raw) != 0) return std::nullopt;
    ByteReader hr(raw);
    const std::uint8_t ver_ihl = hr.u8();
    if (ver_ihl != 0x45) return std::nullopt;
    Ipv4Header h;
    h.tos = hr.u8();
    h.total_length = hr.u16();
    h.identification = hr.u16();
    const std::uint16_t flags_frag = hr.u16();
    h.dont_fragment = (flags_frag & 0x4000) != 0;
    if ((flags_frag & 0x3fff) != 0) return std::nullopt;  // fragments unsupported
    h.ttl = hr.u8();
    h.protocol = hr.u8();
    hr.u16();  // checksum (verified above)
    h.src = Ipv4Address(hr.u32());
    h.dst = Ipv4Address(hr.u32());
    return h;
  }
};

}  // namespace barb::net
