// The unit of transfer on the simulated network: one Ethernet frame.
//
// Packet is a lightweight handle: a refcounted reference to an immutable
// pooled FrameBuffer plus per-frame bookkeeping (creation time, trace id).
// Copying a Packet shares the underlying bytes — a switch broadcasting a
// frame to 20 ports performs 20 refcount bumps, not 20 byte copies. Header
// parsing is cached on the buffer, so however many layers call view() or
// five_tuple(), the frame's headers are walked exactly once.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "net/frame_buffer.h"
#include "sim/time.h"

namespace barb::net {

struct Packet {
  // L2 frame bytes, without FCS (the link model accounts for FCS, preamble,
  // and inter-frame gap when computing wire time). Immutable: rewriting a
  // frame means building a new buffer.
  FrameBufferRef buffer;
  // When the frame was created, for end-to-end latency accounting.
  sim::TimePoint created;
  // Monotonic per-simulation id for tracing.
  std::uint64_t id = 0;

  Packet() = default;
  Packet(FrameBufferRef buf, sim::TimePoint at, std::uint64_t packet_id)
      : buffer(std::move(buf)), created(at), id(packet_id) {}
  // Compatibility constructor: wraps existing bytes zero-copy (heap-class
  // buffer in the default pool). Hot paths build into pooled buffers via
  // BufferPool::build / the *_pooled packet builders instead.
  Packet(std::vector<std::uint8_t> bytes, sim::TimePoint at, std::uint64_t packet_id)
      : buffer(BufferPool::instance().adopt(std::move(bytes))),
        created(at),
        id(packet_id) {}

  std::size_t size() const { return buffer ? buffer->size() : 0; }
  std::span<const std::uint8_t> bytes() const {
    return buffer ? buffer->bytes() : std::span<const std::uint8_t>{};
  }
  // An owned copy of the bytes, for capture/mutation (FrameTap, tests).
  std::vector<std::uint8_t> copy_bytes() const {
    return buffer ? buffer->copy_bytes() : std::vector<std::uint8_t>{};
  }

  // Cached parsed headers; nullptr when the frame has no buffer or its
  // Ethernet header is truncated. The pointer is valid while the buffer
  // lives (i.e. while any Packet handle to it exists).
  const FrameView* view() const {
    if (!buffer) return nullptr;
    const ParsedHeaders& p = buffer->parsed();
    return p.view ? &*p.view : nullptr;
  }

  // Cached flow five-tuple; empty for non-IP or unparseable frames.
  const std::optional<FiveTuple>& five_tuple() const {
    static const std::optional<FiveTuple> kNone;
    return buffer ? buffer->parsed().tuple : kNone;
  }
};

}  // namespace barb::net
