// The unit of transfer on the simulated network: one Ethernet frame.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace barb::net {

struct Packet {
  // L2 frame bytes, without FCS (the link model accounts for FCS, preamble,
  // and inter-frame gap when computing wire time).
  std::vector<std::uint8_t> data;
  // When the frame was created, for end-to-end latency accounting.
  sim::TimePoint created;
  // Monotonic per-simulation id for tracing.
  std::uint64_t id = 0;

  Packet() = default;
  Packet(std::vector<std::uint8_t> bytes, sim::TimePoint at, std::uint64_t packet_id)
      : data(std::move(bytes)), created(at), id(packet_id) {}

  std::size_t size() const { return data.size(); }
  std::span<const std::uint8_t> bytes() const { return data; }
};

}  // namespace barb::net
