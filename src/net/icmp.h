// ICMP (RFC 792): echo and destination-unreachable, which is all the
// experiments exercise (port-unreachable responses to UDP floods).
#pragma once

#include <cstdint>
#include <optional>

#include "util/byte_io.h"

namespace barb::net {

enum class IcmpType : std::uint8_t {
  kEchoReply = 0,
  kDestinationUnreachable = 3,
  kEchoRequest = 8,
};

constexpr std::uint8_t kIcmpCodePortUnreachable = 3;

struct IcmpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint8_t type = 0;
  std::uint8_t code = 0;
  std::uint16_t checksum = 0;  // filled in by the builder
  std::uint32_t rest = 0;      // echo: id<<16 | seq; unreachable: unused

  void serialize(ByteWriter& w) const {
    w.u8(type);
    w.u8(code);
    w.u16(checksum);
    w.u32(rest);
  }

  static std::optional<IcmpHeader> parse(ByteReader& r) {
    if (r.remaining() < kSize) return std::nullopt;
    IcmpHeader h;
    h.type = r.u8();
    h.code = r.u8();
    h.checksum = r.u16();
    h.rest = r.u32();
    return h;
  }
};

}  // namespace barb::net
