// Parse-once header metadata for a frame.
//
// ParsedHeaders bundles the FrameView produced by one pass over the frame
// bytes together with the flow five-tuple derived from it, so every layer
// that inspects a frame (switch, NIC firewall, flood guard, host stack,
// software firewall) reads the same cached parse instead of re-walking the
// headers. The spans inside `view` reference the frame bytes the parse ran
// over; a ParsedHeaders must not outlive that buffer (FrameBuffer caches it
// next to the bytes, which guarantees this).
#pragma once

#include <optional>
#include <span>

#include "net/five_tuple.h"
#include "net/frame_view.h"

namespace barb::net {

struct ParsedHeaders {
  // nullopt only when the Ethernet header itself is truncated (same contract
  // as FrameView::parse).
  std::optional<FrameView> view;
  // Flow tuple for firewall matching, computed once at parse time; nullopt
  // for non-IP frames.
  std::optional<FiveTuple> tuple;

  static ParsedHeaders parse(std::span<const std::uint8_t> frame);
};

}  // namespace barb::net
