#include "net/frame_buffer.h"

namespace barb::net {

const ParsedHeaders& FrameBuffer::parsed() const {
  if (parsed_ == nullptr) {
    parsed_ = std::make_unique<ParsedHeaders>(ParsedHeaders::parse(bytes()));
    if (pool_ != nullptr) ++pool_->stats_.parses;
  } else if (pool_ != nullptr) {
    ++pool_->stats_.parse_hits;
  }
  return *parsed_;
}

BufferPool::BufferPool(BufferPoolConfig config) : config_(config) {}

BufferPool::~BufferPool() {
  for (auto& list : free_) {
    for (FrameBuffer* buf : list) delete buf;
    list.clear();
  }
  // Live buffers (if any remain at teardown) are heap-freed by their last
  // FrameBufferRef; mark them pool-less so they do not touch the dead pool.
  // In practice the default pool outlives every simulation object, and
  // test-local pools are destroyed after their packets.
}

namespace {
thread_local BufferPool* tls_pool_override = nullptr;
}  // namespace

BufferPool& BufferPool::instance() {
  // Thread-local, not process-global: the parallel sweep runner
  // (core/runner.h) executes independent simulations on worker threads, and
  // a shared pool would turn every frame acquisition/release into a data
  // race. Each worker gets its own pool; buffers never migrate between
  // threads because a simulation (and everything it allocates) lives and
  // dies on the thread that runs it. Within one thread the zero-copy flood
  // path is exactly as allocation-free as before. Shard worker threads of
  // the parallel engine install an override pointing at a persistent
  // per-shard pool (they are re-spawned per run segment, so the raw
  // thread_local would die with them while frames it allocated live on).
  if (tls_pool_override != nullptr) return *tls_pool_override;
  thread_local BufferPool pool;
  return pool;
}

void BufferPool::set_thread_pool_override(BufferPool* pool) {
  tls_pool_override = pool;
}

int BufferPool::class_for(std::size_t n) {
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    if (n <= kSizeClasses[c]) return static_cast<int>(c);
  }
  return -1;
}

FrameBuffer* BufferPool::acquire(std::size_t expected_size) {
  ++stats_.acquisitions;
  const int cls = class_for(expected_size);
  if (cls >= 0) {
    auto& list = free_[static_cast<std::size_t>(cls)];
    if (!list.empty()) {
      FrameBuffer* buf = list.back();
      list.pop_back();
      ++stats_.pool_hits;
      ++live_per_class_[static_cast<std::size_t>(cls)];
      ++live_;
      return buf;
    }
    if (live_per_class_[static_cast<std::size_t>(cls)] <
        config_.max_live_per_class) {
      auto* buf = new FrameBuffer();
      buf->pool_ = this;
      buf->size_class_ = static_cast<std::int8_t>(cls);
      buf->storage_.reserve(kSizeClasses[static_cast<std::size_t>(cls)]);
      ++stats_.pool_misses;
      ++live_per_class_[static_cast<std::size_t>(cls)];
      ++live_;
      return buf;
    }
  }
  // Oversize frame or exhausted class: plain heap buffer, freed on release.
  auto* buf = new FrameBuffer();
  buf->pool_ = this;
  buf->size_class_ = -1;
  buf->storage_.reserve(expected_size);
  ++stats_.heap_fallbacks;
  ++live_;
  return buf;
}

void BufferPool::release(FrameBuffer* buf) {
  BARB_ASSERT(buf->refs_ == 0 && buf->pool_ == this);
  BARB_ASSERT(live_ > 0);
  --live_;
  buf->parsed_.reset();
  if (buf->size_class_ >= 0) {
    const auto cls = static_cast<std::size_t>(buf->size_class_);
    BARB_ASSERT(live_per_class_[cls] > 0);
    --live_per_class_[cls];
    if (free_[cls].size() < config_.max_free_per_class) {
      buf->storage_.clear();  // keeps capacity: the point of recycling
      free_[cls].push_back(buf);
      ++stats_.recycled;
      return;
    }
  }
  ++stats_.heap_frees;
  delete buf;
}

FrameBufferRef BufferPool::create(std::span<const std::uint8_t> bytes) {
  FrameBuffer* buf = acquire(bytes.size());
  buf->storage_.assign(bytes.begin(), bytes.end());
  return FrameBufferRef(buf);
}

FrameBufferRef BufferPool::adopt(std::vector<std::uint8_t> bytes) {
  ++stats_.acquisitions;
  ++stats_.adopted;
  ++live_;
  auto* buf = new FrameBuffer();
  buf->pool_ = this;
  buf->size_class_ = -1;
  buf->storage_ = std::move(bytes);
  return FrameBufferRef(buf);
}

BufferPool::Builder BufferPool::build(std::size_t expected_size) {
  return Builder(acquire(expected_size));
}

BufferPool::Builder::~Builder() {
  if (buf_ != nullptr) {
    // Abandoned without seal(): hand the empty buffer straight back.
    buf_->storage_.clear();
    buf_->pool_->release(buf_);
  }
}

FrameBufferRef BufferPool::Builder::seal() {
  BARB_ASSERT(buf_ != nullptr);
  FrameBuffer* buf = buf_;
  buf_ = nullptr;
  return FrameBufferRef(buf);
}

std::size_t BufferPool::free_buffers() const {
  std::size_t total = 0;
  for (const auto& list : free_) total += list.size();
  return total;
}

std::size_t BufferPool::free_buffers(std::size_t size_class) const {
  BARB_ASSERT(size_class < kNumClasses);
  return free_[size_class].size();
}

}  // namespace barb::net
