// VPG encapsulation header.
//
// ADF virtual private groups tunnel the original transport payload inside
// IP protocol 250. Layout (cleartext header, authenticated as AAD):
//   vpg_id(4) | seq(8) | orig_protocol(1) | reserved(1) | payload_len(2)
// followed by ChaCha20-Poly1305 sealed payload (ciphertext || 16-byte tag).
// The sequence number doubles as the AEAD nonce material and gives replay
// protection at the receiver.
#pragma once

#include <cstdint>
#include <optional>

#include "util/byte_io.h"

namespace barb::net {

struct VpgHeader {
  static constexpr std::size_t kSize = 16;
  static constexpr std::size_t kTagSize = 16;
  // Total per-packet byte overhead of VPG encapsulation.
  static constexpr std::size_t kOverhead = kSize + kTagSize;

  std::uint32_t vpg_id = 0;
  std::uint64_t seq = 0;
  std::uint8_t orig_protocol = 0;
  std::uint16_t payload_len = 0;  // sealed payload length (incl. tag)

  void serialize(ByteWriter& w) const {
    w.u32(vpg_id);
    w.u64(seq);
    w.u8(orig_protocol);
    w.u8(0);
    w.u16(payload_len);
  }

  static std::optional<VpgHeader> parse(ByteReader& r) {
    if (r.remaining() < kSize) return std::nullopt;
    VpgHeader h;
    h.vpg_id = r.u32();
    h.seq = r.u64();
    h.orig_protocol = r.u8();
    r.u8();
    h.payload_len = r.u16();
    return h;
  }
};

}  // namespace barb::net
