// Frame assembly.
//
// Builders produce complete, checksummed Ethernet frames. They are used by
// the host stacks and by the flood generator (which crafts frames directly,
// like the paper's raw-socket generator).
//
// Each builder has two forms: the vector form allocates a fresh byte vector
// (convenient for tests and policy/one-shot traffic), and the *_pooled form
// writes the frame straight into a recycled BufferPool buffer — the hot-path
// form used by the host stack and the flood generator, which performs no
// heap allocation once the pool is warm.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/ethernet.h"
#include "net/frame_buffer.h"
#include "net/ipv4.h"
#include "net/mac_address.h"
#include "net/tcp_header.h"

namespace barb::net {

struct IpEndpoints {
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  MacAddress src_mac;
  MacAddress dst_mac;
};

// Wraps an IP payload into Ethernet+IPv4, padding to the Ethernet minimum.
std::vector<std::uint8_t> build_ipv4_frame(const IpEndpoints& ep, IpProtocol protocol,
                                           std::span<const std::uint8_t> ip_payload,
                                           std::uint16_t ip_id = 0,
                                           std::uint8_t ttl = Ipv4Header::kDefaultTtl);
FrameBufferRef build_ipv4_frame_pooled(BufferPool& pool, const IpEndpoints& ep,
                                       IpProtocol protocol,
                                       std::span<const std::uint8_t> ip_payload,
                                       std::uint16_t ip_id = 0,
                                       std::uint8_t ttl = Ipv4Header::kDefaultTtl);

// UDP datagram with a valid transport checksum.
std::vector<std::uint8_t> build_udp_frame(const IpEndpoints& ep, std::uint16_t src_port,
                                          std::uint16_t dst_port,
                                          std::span<const std::uint8_t> payload,
                                          std::uint16_t ip_id = 0);
FrameBufferRef build_udp_frame_pooled(BufferPool& pool, const IpEndpoints& ep,
                                      std::uint16_t src_port, std::uint16_t dst_port,
                                      std::span<const std::uint8_t> payload,
                                      std::uint16_t ip_id = 0);

// TCP segment; `header.checksum` is computed here.
std::vector<std::uint8_t> build_tcp_frame(const IpEndpoints& ep, TcpHeader header,
                                          std::span<const std::uint8_t> payload,
                                          std::uint16_t ip_id = 0);
FrameBufferRef build_tcp_frame_pooled(BufferPool& pool, const IpEndpoints& ep,
                                      TcpHeader header,
                                      std::span<const std::uint8_t> payload,
                                      std::uint16_t ip_id = 0);

// ICMP message (type/code/rest), checksum computed here.
std::vector<std::uint8_t> build_icmp_frame(const IpEndpoints& ep, std::uint8_t type,
                                           std::uint8_t code, std::uint32_t rest,
                                           std::span<const std::uint8_t> payload,
                                           std::uint16_t ip_id = 0);
FrameBufferRef build_icmp_frame_pooled(BufferPool& pool, const IpEndpoints& ep,
                                       std::uint8_t type, std::uint8_t code,
                                       std::uint32_t rest,
                                       std::span<const std::uint8_t> payload,
                                       std::uint16_t ip_id = 0);

}  // namespace barb::net
