#include "net/checksum.h"

namespace barb::net {

std::uint32_t checksum_accumulate(std::span<const std::uint8_t> data, std::uint32_t acc) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    acc += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < data.size()) acc += static_cast<std::uint32_t>(data[i]) << 8;
  return acc;
}

std::uint16_t checksum_finish(std::uint32_t acc) {
  while (acc >> 16) acc = (acc & 0xffff) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc & 0xffff);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  return checksum_finish(checksum_accumulate(data));
}

std::uint16_t transport_checksum(Ipv4Address src, Ipv4Address dst, std::uint8_t protocol,
                                 std::span<const std::uint8_t> segment) {
  std::uint8_t pseudo[12];
  const std::uint32_t s = src.value(), d = dst.value();
  pseudo[0] = static_cast<std::uint8_t>(s >> 24);
  pseudo[1] = static_cast<std::uint8_t>(s >> 16);
  pseudo[2] = static_cast<std::uint8_t>(s >> 8);
  pseudo[3] = static_cast<std::uint8_t>(s);
  pseudo[4] = static_cast<std::uint8_t>(d >> 24);
  pseudo[5] = static_cast<std::uint8_t>(d >> 16);
  pseudo[6] = static_cast<std::uint8_t>(d >> 8);
  pseudo[7] = static_cast<std::uint8_t>(d);
  pseudo[8] = 0;
  pseudo[9] = protocol;
  pseudo[10] = static_cast<std::uint8_t>(segment.size() >> 8);
  pseudo[11] = static_cast<std::uint8_t>(segment.size());
  std::uint32_t acc = checksum_accumulate({pseudo, sizeof(pseudo)});
  acc = checksum_accumulate(segment, acc);
  return checksum_finish(acc);
}

}  // namespace barb::net
