// Ethernet II framing.
#pragma once

#include <cstdint>
#include <optional>

#include "net/mac_address.h"
#include "util/byte_io.h"

namespace barb::net {

// EtherType values used by the simulated network.
enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
};

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;

  MacAddress dst;
  MacAddress src;
  std::uint16_t ethertype = 0;

  void serialize(ByteWriter& w) const {
    w.bytes(dst.bytes());
    w.bytes(src.bytes());
    w.u16(ethertype);
  }

  static std::optional<EthernetHeader> parse(ByteReader& r) {
    EthernetHeader h;
    auto d = r.bytes(6), s = r.bytes(6);
    h.ethertype = r.u16();
    if (!r.ok()) return std::nullopt;
    std::array<std::uint8_t, 6> tmp;
    std::copy(d.begin(), d.end(), tmp.begin());
    h.dst = MacAddress(tmp);
    std::copy(s.begin(), s.end(), tmp.begin());
    h.src = MacAddress(tmp);
    return h;
  }
};

// Ethernet physical-layer constants (used by the link model).
// Frames are stored without FCS; the wire adds FCS + preamble + IFG.
constexpr std::size_t kEthernetMinFrameNoFcs = 60;    // 64 with FCS
constexpr std::size_t kEthernetMaxFrameNoFcs = 1514;  // 1518 with FCS
constexpr std::size_t kEthernetWireOverhead = 24;     // FCS(4) + preamble(8) + IFG(12)
constexpr std::size_t kEthernetMtu = 1500;            // max L3 payload

}  // namespace barb::net
