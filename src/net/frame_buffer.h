// Zero-copy frame buffers.
//
// A FrameBuffer owns one frame's bytes exactly once for the frame's whole
// life on the simulated network. Layers hand around FrameBufferRef handles
// (intrusive refcount); "copying" a frame — e.g. a switch broadcasting to
// every port — is a refcount bump, never a byte copy. The bytes are
// immutable after seal(): anything that rewrites a frame (VPG encap/decap,
// deliberate corruption in tests) builds a new buffer.
//
// Buffers come from a BufferPool organised in size classes. Releasing the
// last reference recycles the buffer (storage allocation and all) onto the
// class freelist, so a steady-state flood run performs no per-frame heap
// allocation at all. Frames larger than the biggest class, or acquired while
// a class is at its live cap, fall back to plain heap buffers (counted, so
// the telemetry shows when the pool is undersized).
//
// Each buffer also lazily caches the frame's ParsedHeaders: the first layer
// to ask pays for one parse, every later layer — including other handles to
// the same buffer on a broadcast — reads the cache.
//
// Threading: one simulation runs entirely on one thread, and the default
// pool is thread-local (one per worker of the parallel sweep runner), so a
// buffer is only ever touched by the thread that acquired it. Refcounts and
// pool state are therefore plain integers on purpose — no atomics on the
// per-frame hot path. Do not hand FrameBufferRefs across threads.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "net/parsed_headers.h"
#include "util/assert.h"

namespace barb::net {

class BufferPool;
class FrameBufferRef;

class FrameBuffer {
 public:
  FrameBuffer(const FrameBuffer&) = delete;
  FrameBuffer& operator=(const FrameBuffer&) = delete;

  std::span<const std::uint8_t> bytes() const { return storage_; }
  std::size_t size() const { return storage_.size(); }
  std::uint32_t refcount() const { return refs_; }
  std::vector<std::uint8_t> copy_bytes() const { return storage_; }

  // Cached parse of the frame's headers (performed on first call).
  const ParsedHeaders& parsed() const;

 private:
  friend class BufferPool;
  friend class FrameBufferRef;
  FrameBuffer() = default;

  std::vector<std::uint8_t> storage_;
  mutable std::unique_ptr<ParsedHeaders> parsed_;  // lazy; reset on recycle
  std::uint32_t refs_ = 0;
  std::int8_t size_class_ = -1;  // -1: heap fallback, not recyclable
  BufferPool* pool_ = nullptr;   // owning pool (set for all pool-made buffers)
};

// Intrusive refcounted handle to an immutable FrameBuffer.
class FrameBufferRef {
 public:
  FrameBufferRef() = default;
  FrameBufferRef(const FrameBufferRef& other) : buf_(other.buf_) {
    if (buf_ != nullptr) ++buf_->refs_;
  }
  FrameBufferRef(FrameBufferRef&& other) noexcept : buf_(other.buf_) {
    other.buf_ = nullptr;
  }
  FrameBufferRef& operator=(const FrameBufferRef& other) {
    FrameBufferRef tmp(other);
    std::swap(buf_, tmp.buf_);
    return *this;
  }
  FrameBufferRef& operator=(FrameBufferRef&& other) noexcept {
    std::swap(buf_, other.buf_);
    return *this;
  }
  ~FrameBufferRef() { reset(); }

  void reset();

  const FrameBuffer* get() const { return buf_; }
  const FrameBuffer& operator*() const { return *buf_; }
  const FrameBuffer* operator->() const { return buf_; }
  explicit operator bool() const { return buf_ != nullptr; }

  // True if both handles reference the same underlying buffer (and thus the
  // same bytes — the zero-copy invariant tests assert with this).
  bool same_buffer(const FrameBufferRef& other) const { return buf_ == other.buf_; }

 private:
  friend class BufferPool;
  explicit FrameBufferRef(FrameBuffer* buf) : buf_(buf) {
    if (buf_ != nullptr) ++buf_->refs_;
  }
  FrameBuffer* buf_ = nullptr;
};

struct BufferPoolConfig {
  // Free buffers retained per size class; beyond this, released buffers are
  // freed instead of recycled.
  std::size_t max_free_per_class = 8192;
  // Live pooled buffers per class before acquisitions fall back to the heap
  // (the "pool exhaustion" path). Effectively unbounded by default.
  std::size_t max_live_per_class = std::size_t{1} << 32;
};

// Monotonic counters. Every acquisition is exactly one of pool_hits
// (recycled storage, no allocation), pool_misses (fresh pooled allocation),
// heap_fallbacks (oversize or exhausted class), or adopted (caller's vector
// taken over zero-copy). "Allocations" in the pre-pool sense are therefore
// pool_misses + heap_fallbacks + adopted.
struct BufferPoolStats {
  std::uint64_t acquisitions = 0;
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  std::uint64_t heap_fallbacks = 0;
  std::uint64_t adopted = 0;
  std::uint64_t recycled = 0;    // releases that went back to a freelist
  std::uint64_t heap_frees = 0;  // releases that freed storage outright
  std::uint64_t parses = 0;      // header parses actually performed
  std::uint64_t parse_hits = 0;  // parses served from a buffer's cache

  std::uint64_t allocations() const {
    return pool_misses + heap_fallbacks + adopted;
  }
};

class BufferPool {
 public:
  // Classes cover the Ethernet frame spectrum: minimum/flood frames (64),
  // small control segments (128, 320), mid-size (640), and full-size data
  // frames (1514 bytes without FCS).
  static constexpr std::array<std::size_t, 5> kSizeClasses = {64, 128, 320, 640,
                                                              1536};
  static constexpr std::size_t kNumClasses = kSizeClasses.size();

  explicit BufferPool(BufferPoolConfig config = {});
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // This thread's default pool (thread-local: each sweep-runner worker owns
  // one, so concurrent simulations never share pool state). Packets
  // constructed without an explicit pool draw from here.
  static BufferPool& instance();

  // Overrides this thread's default pool (nullptr restores the built-in
  // thread-local one). The parallel engine points each shard worker thread
  // at a persistent per-shard pool owned by the attach layer: shard threads
  // are spawned and joined per run segment, and buffers they allocate
  // (frames queued in links/switches) must outlive any individual thread.
  static void set_thread_pool_override(BufferPool* pool);

  // Acquires a buffer holding a copy of `bytes`.
  FrameBufferRef create(std::span<const std::uint8_t> bytes);

  // Takes over the vector's storage zero-copy. The buffer is heap-class
  // (freed, not recycled, on last release) — prefer build()/create() on hot
  // paths.
  FrameBufferRef adopt(std::vector<std::uint8_t> bytes);

  // In-place frame construction: write the frame into buffer() (an empty
  // vector whose capacity comes from the pool), then seal(). An abandoned
  // Builder returns the buffer to the pool.
  class Builder {
   public:
    Builder(Builder&& other) noexcept : buf_(other.buf_) { other.buf_ = nullptr; }
    Builder(const Builder&) = delete;
    Builder& operator=(const Builder&) = delete;
    Builder& operator=(Builder&&) = delete;
    ~Builder();

    std::vector<std::uint8_t>& buffer() {
      BARB_ASSERT(buf_ != nullptr);
      return buf_->storage_;
    }
    FrameBufferRef seal();

   private:
    friend class BufferPool;
    explicit Builder(FrameBuffer* buf) : buf_(buf) {}
    FrameBuffer* buf_;
  };
  Builder build(std::size_t expected_size);

  const BufferPoolStats& stats() const { return stats_; }
  // Buffers currently referenced somewhere in the simulation.
  std::size_t live_buffers() const { return live_; }
  // Buffers parked on freelists awaiting reuse.
  std::size_t free_buffers() const;
  std::size_t free_buffers(std::size_t size_class) const;

  // Smallest class index that fits `n` bytes, or -1 for oversize.
  static int class_for(std::size_t n);

 private:
  friend class FrameBuffer;
  friend class FrameBufferRef;

  FrameBuffer* acquire(std::size_t expected_size);
  void release(FrameBuffer* buf);

  BufferPoolConfig config_;
  std::array<std::vector<FrameBuffer*>, kNumClasses> free_;
  std::array<std::size_t, kNumClasses> live_per_class_ = {};
  std::size_t live_ = 0;
  BufferPoolStats stats_;
};

inline void FrameBufferRef::reset() {
  if (buf_ == nullptr) return;
  FrameBuffer* buf = buf_;
  buf_ = nullptr;
  BARB_ASSERT(buf->refs_ > 0);
  if (--buf->refs_ == 0) {
    if (buf->pool_ != nullptr) {
      buf->pool_->release(buf);
    } else {
      delete buf;
    }
  }
}

}  // namespace barb::net
