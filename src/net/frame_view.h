// Parsed view over a full Ethernet frame.
//
// FrameView is the single parsing entry point used by switches, firewalls,
// and host stacks. Spans reference the original frame bytes; a FrameView
// must not outlive the buffer it was parsed from.
#pragma once

#include <optional>
#include <span>

#include "net/ethernet.h"
#include "net/five_tuple.h"
#include "net/icmp.h"
#include "net/ipv4.h"
#include "net/tcp_header.h"
#include "net/udp.h"
#include "net/vpg_header.h"

namespace barb::net {

struct FrameView {
  EthernetHeader eth;
  std::optional<Ipv4Header> ip;
  std::span<const std::uint8_t> l3_payload;  // IP payload bytes

  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  std::optional<IcmpHeader> icmp;
  std::optional<VpgHeader> vpg;
  std::span<const std::uint8_t> l4_payload;  // transport (or VPG sealed) payload

  // Parses as much as is well-formed; returns nullopt only if the Ethernet
  // header itself is truncated. A frame with a garbled IP layer still parses
  // to a FrameView with ip == nullopt, letting switches forward it anyway
  // (real switches do not validate L3).
  static std::optional<FrameView> parse(std::span<const std::uint8_t> frame);

  bool is_ipv4() const { return ip.has_value(); }

  // Flow tuple for firewall matching; transport ports are zero when absent.
  std::optional<FiveTuple> five_tuple() const;
};

}  // namespace barb::net
