// Interned network identifiers.
//
// Fleet-scale topologies hold the same addresses in many places: every host's
// ARP view names every other host, switches learn the same MACs, and flow
// tables key thousands of entries by five-tuple. Interning stores each
// distinct value once in a dense slab and hands out 32-bit handles, so the
// per-reference cost drops from the value size (plus hash-map node overhead)
// to four bytes, and equality becomes an integer compare.
//
// Two shapes are provided:
//
//  * `Interner<T>` — append-only: intern() returns a stable handle, values
//    are never released. Right for fleet membership data (IPs, MACs) whose
//    cardinality is bounded by the topology size.
//  * `SlabInterner<T>` — intern()/release() with a free list: handles are
//    recycled, so live memory is bounded by the number of *live* values.
//    Right for flow five-tuples, whose population churns under flood
//    (a spoofed flood must never grow an append-only table without bound).
//
// Both report `memory_bytes()` for the per-host `mem.*` footprint audit.
// Handles are indices into the slab: `get(handle)` is a vector index, no
// hashing. Neither container is thread-safe; each simulation owns its own.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "net/five_tuple.h"
#include "net/ipv4_address.h"
#include "net/mac_address.h"
#include "util/assert.h"

namespace barb::net {

using InternHandle = std::uint32_t;
inline constexpr InternHandle kInvalidIntern =
    std::numeric_limits<InternHandle>::max();

// Append-only interner: one dense copy per distinct value, stable handles.
template <typename T>
class Interner {
 public:
  // Returns the handle for `value`, inserting it on first sight.
  InternHandle intern(const T& value) {
    auto it = index_.find(value);
    if (it != index_.end()) return it->second;
    const InternHandle handle = static_cast<InternHandle>(values_.size());
    values_.push_back(value);
    index_.emplace(value, handle);
    return handle;
  }

  // Handle for `value` if already interned, else kInvalidIntern.
  InternHandle find(const T& value) const {
    auto it = index_.find(value);
    return it == index_.end() ? kInvalidIntern : it->second;
  }

  const T& get(InternHandle handle) const {
    BARB_ASSERT(handle < values_.size());
    return values_[handle];
  }

  std::size_t size() const { return values_.size(); }

  // Approximate heap footprint: the dense slab plus the lookup index
  // (bucket array + one node per entry, the usual libstdc++ layout).
  std::size_t memory_bytes() const {
    const std::size_t slab = values_.capacity() * sizeof(T);
    const std::size_t nodes =
        index_.size() * (sizeof(std::pair<T, InternHandle>) + 2 * sizeof(void*));
    const std::size_t buckets = index_.bucket_count() * sizeof(void*);
    return slab + nodes + buckets;
  }

 private:
  std::vector<T> values_;
  std::unordered_map<T, InternHandle> index_;
};

// Interner with release(): freed handles are recycled through a free list,
// bounding memory by the live population instead of the historical one.
template <typename T>
class SlabInterner {
 public:
  // Interns `value`; a released slot is reused when one is available.
  InternHandle intern(const T& value) {
    InternHandle handle;
    if (!free_.empty()) {
      handle = free_.back();
      free_.pop_back();
      values_[handle] = value;
    } else {
      handle = static_cast<InternHandle>(values_.size());
      values_.push_back(value);
    }
    ++live_;
    return handle;
  }

  // Releases a handle for reuse. The caller owns uniqueness: a slab interner
  // does not deduplicate (its users key their own index by content).
  void release(InternHandle handle) {
    BARB_ASSERT(handle < values_.size());
    BARB_ASSERT(live_ > 0);
    free_.push_back(handle);
    --live_;
  }

  const T& get(InternHandle handle) const {
    BARB_ASSERT(handle < values_.size());
    return values_[handle];
  }
  T& get(InternHandle handle) {
    BARB_ASSERT(handle < values_.size());
    return values_[handle];
  }

  std::size_t live() const { return live_; }
  std::size_t slots() const { return values_.size(); }

  std::size_t memory_bytes() const {
    return values_.capacity() * sizeof(T) +
           free_.capacity() * sizeof(InternHandle);
  }

  void clear() {
    values_.clear();
    free_.clear();
    live_ = 0;
  }

 private:
  std::vector<T> values_;
  std::vector<InternHandle> free_;
  std::size_t live_ = 0;
};

using Ipv4Interner = Interner<Ipv4Address>;
using MacInterner = Interner<MacAddress>;
using FiveTupleSlab = SlabInterner<FiveTuple>;

}  // namespace barb::net
