#include "net/mac_address.h"

#include <cstdio>

namespace barb::net {

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  std::array<std::uint8_t, 6> bytes{};
  std::size_t pos = 0;
  for (int i = 0; i < 6; ++i) {
    if (pos + 2 > text.size()) return std::nullopt;
    unsigned value = 0;
    for (int d = 0; d < 2; ++d) {
      const char c = text[pos++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else return std::nullopt;
    }
    bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(value);
    if (i < 5) {
      if (pos >= text.size() || text[pos] != ':') return std::nullopt;
      ++pos;
    }
  }
  if (pos != text.size()) return std::nullopt;
  return MacAddress(bytes);
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes_[0], bytes_[1],
                bytes_[2], bytes_[3], bytes_[4], bytes_[5]);
  return buf;
}

}  // namespace barb::net
