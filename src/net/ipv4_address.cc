#include "net/ipv4_address.h"

#include <cstdio>

namespace barb::net {

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::uint32_t value = 0;
  std::size_t pos = 0;
  for (int octet = 0; octet < 4; ++octet) {
    if (pos >= text.size()) return std::nullopt;
    unsigned n = 0;
    std::size_t digits = 0;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      n = n * 10 + static_cast<unsigned>(text[pos] - '0');
      if (n > 255) return std::nullopt;
      ++pos;
      ++digits;
    }
    if (digits == 0 || digits > 3) return std::nullopt;
    value = value << 8 | n;
    if (octet < 3) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
  }
  if (pos != text.size()) return std::nullopt;
  return Ipv4Address(value);
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", value_ >> 24 & 0xff, value_ >> 16 & 0xff,
                value_ >> 8 & 0xff, value_ & 0xff);
  return buf;
}

}  // namespace barb::net
