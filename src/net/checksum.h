// RFC 1071 Internet checksum.
#pragma once

#include <cstdint>
#include <span>

#include "net/ipv4_address.h"

namespace barb::net {

// One's-complement sum folded to 16 bits; returns the checksum value to be
// stored in the header (i.e., already complemented). Computing over data that
// includes a correct checksum field yields 0.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

// Raw (un-complemented) one's-complement accumulation, for pseudo-headers.
std::uint32_t checksum_accumulate(std::span<const std::uint8_t> data,
                                  std::uint32_t acc = 0);
std::uint16_t checksum_finish(std::uint32_t acc);

// TCP/UDP checksum with the IPv4 pseudo-header.
std::uint16_t transport_checksum(Ipv4Address src, Ipv4Address dst, std::uint8_t protocol,
                                 std::span<const std::uint8_t> segment);

}  // namespace barb::net
