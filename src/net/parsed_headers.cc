#include "net/parsed_headers.h"

namespace barb::net {

ParsedHeaders ParsedHeaders::parse(std::span<const std::uint8_t> frame) {
  ParsedHeaders p;
  p.view = FrameView::parse(frame);
  if (p.view) p.tuple = p.view->five_tuple();
  return p;
}

}  // namespace barb::net
