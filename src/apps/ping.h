// ping: ICMP echo RTT measurement.
//
// The paper's latency observations (Table 1 connect/response times) are
// application-level; ping gives the raw network-path number, which makes the
// firewall's queueing delay directly visible — handy for sizing the latency
// cost of rule-set depth without HTTP in the way.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "stack/host.h"
#include "util/stats.h"

namespace barb::apps {

struct PingResult {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  double loss_fraction = 0.0;
  double min_rtt_ms = 0.0;
  double mean_rtt_ms = 0.0;
  double max_rtt_ms = 0.0;
};

class PingClient {
 public:
  PingClient(stack::Host& host, net::Ipv4Address target);
  ~PingClient();

  // Sends `count` echo requests at `interval`, then reports. Replies slower
  // than `timeout` count as lost. Only one run at a time per client.
  void run(int count, std::function<void(PingResult)> done,
           sim::Duration interval = sim::Duration::milliseconds(100),
           sim::Duration timeout = sim::Duration::seconds(1),
           std::size_t payload_bytes = 56);

 private:
  void send_next();
  void finish();

  stack::Host& host_;
  net::Ipv4Address target_;
  std::uint16_t id_;

  bool running_ = false;
  int remaining_ = 0;
  std::uint16_t next_seq_ = 0;
  sim::Duration interval_;
  sim::Duration timeout_;
  std::size_t payload_bytes_ = 56;
  std::function<void(PingResult)> done_;
  std::unordered_map<std::uint16_t, sim::TimePoint> in_flight_;
  Stats rtts_ms_;
  std::uint64_t sent_ = 0;
  sim::EventHandle timer_;
};

}  // namespace barb::apps
