// iperf equivalent: timed TCP and UDP bandwidth measurement between two
// hosts, reporting application-level achieved bandwidth exactly as the
// paper's available-bandwidth experiments do.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "stack/host.h"
#include "stack/tcp.h"
#include "stack/udp.h"
#include "util/token_bucket.h"

namespace barb::apps {

class IperfServer {
 public:
  static constexpr std::uint16_t kDefaultPort = 5001;

  explicit IperfServer(stack::Host& host, std::uint16_t port = kDefaultPort);

  void start();

  std::uint64_t tcp_bytes_received() const { return tcp_bytes_; }
  std::uint64_t udp_bytes_received() const { return udp_bytes_; }
  std::uint64_t udp_datagrams_received() const { return udp_datagrams_; }
  std::uint64_t connections_accepted() const { return connections_; }

 private:
  void handle_udp(net::Ipv4Address src, std::uint16_t src_port,
                  std::span<const std::uint8_t> payload);

  stack::Host& host_;
  std::uint16_t port_;
  stack::UdpSocket* udp_ = nullptr;
  std::uint64_t tcp_bytes_ = 0;
  std::uint64_t udp_bytes_ = 0;
  std::uint64_t udp_datagrams_ = 0;
  std::uint64_t connections_ = 0;
};

struct IperfResult {
  bool completed = false;      // connection established and the test ran
  double mbps = 0.0;           // application goodput over the measurement window
  std::uint64_t bytes = 0;     // bytes acknowledged (TCP) / reported (UDP)
  double duration_s = 0.0;
  std::uint64_t retransmissions = 0;  // TCP only
};

class IperfClient {
 public:
  enum class Mode { kTcp, kUdp };

  IperfClient(stack::Host& host, net::Ipv4Address server,
              std::uint16_t port = IperfServer::kDefaultPort);
  ~IperfClient();

  // Runs one timed test and invokes `done` with the result. TCP mode streams
  // as fast as the window allows and measures acknowledged bytes; UDP mode
  // paces datagrams at `udp_rate_bps` and measures via the server's
  // end-of-test report (retried until it gets through, like real iperf).
  void run(Mode mode, sim::Duration duration, std::function<void(IperfResult)> done,
           double udp_rate_bps = 10e6);

  bool running() const { return running_; }

  // Aborts a test in progress, reporting whatever was measured so far (a
  // connection that never established reports 0). Used by the experiment
  // harness when a flooded measurement cannot finish on its own.
  void cancel();

 private:
  void pump_tcp();
  void finish_tcp();
  void send_next_udp();
  void request_udp_report();

  stack::Host& host_;
  net::Ipv4Address server_ip_;
  std::uint16_t port_;

  bool running_ = false;
  Mode mode_ = Mode::kTcp;
  sim::Duration duration_;
  std::function<void(IperfResult)> done_;
  sim::TimePoint started_;
  sim::EventHandle end_timer_;

  // TCP state.
  std::shared_ptr<stack::TcpConnection> conn_;
  std::uint64_t acked_at_start_ = 0;

  // UDP state.
  stack::UdpSocket* udp_ = nullptr;
  double udp_interval_s_ = 0.0;
  sim::EventHandle udp_timer_;
  std::uint64_t udp_sent_bytes_ = 0;
  int report_retries_left_ = 0;
  std::size_t udp_payload_ = 1460;
};

}  // namespace barb::apps
