#include "apps/ping.h"

#include "util/assert.h"

namespace barb::apps {

PingClient::PingClient(stack::Host& host, net::Ipv4Address target)
    : host_(host), target_(target),
      id_(static_cast<std::uint16_t>(host.simulation().rng().uniform(65536))) {
  host_.set_echo_reply_handler(
      [this](net::Ipv4Address src, std::uint16_t id, std::uint16_t seq) {
        if (src != target_ || id != id_) return;
        auto it = in_flight_.find(seq);
        if (it == in_flight_.end()) return;
        const auto rtt = host_.simulation().now() - it->second;
        in_flight_.erase(it);
        if (rtt <= timeout_) rtts_ms_.add(rtt.to_milliseconds());
      });
}

PingClient::~PingClient() {
  timer_.cancel();
  host_.set_echo_reply_handler(nullptr);
}

void PingClient::run(int count, std::function<void(PingResult)> done,
                     sim::Duration interval, sim::Duration timeout,
                     std::size_t payload_bytes) {
  BARB_ASSERT_MSG(!running_, "ping client already running");
  running_ = true;
  remaining_ = count;
  interval_ = interval;
  timeout_ = timeout;
  payload_bytes_ = payload_bytes;
  done_ = std::move(done);
  in_flight_.clear();
  rtts_ms_ = Stats{};
  sent_ = 0;
  send_next();
}

void PingClient::send_next() {
  if (remaining_ <= 0) {
    // Allow stragglers up to the timeout, then report.
    timer_ = host_.simulation().schedule(timeout_, [this] { finish(); });
    return;
  }
  --remaining_;
  const std::uint16_t seq = next_seq_++;
  in_flight_[seq] = host_.simulation().now();
  ++sent_;
  host_.send_echo_request(target_, id_, seq, payload_bytes_);
  timer_ = host_.simulation().schedule(interval_, [this] { send_next(); });
}

void PingClient::finish() {
  running_ = false;
  PingResult result;
  result.sent = sent_;
  result.received = rtts_ms_.count();
  result.loss_fraction =
      sent_ == 0 ? 0.0
                 : 1.0 - static_cast<double>(result.received) / static_cast<double>(sent_);
  if (!rtts_ms_.empty()) {
    result.min_rtt_ms = rtts_ms_.min();
    result.mean_rtt_ms = rtts_ms_.mean();
    result.max_rtt_ms = rtts_ms_.max();
  }
  if (done_) done_(result);
}

}  // namespace barb::apps
