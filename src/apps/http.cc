#include "apps/http.h"

#include <charconv>
#include <vector>

#include "util/logging.h"

namespace barb::apps {

// ------------------------------------------------------------------ server

struct HttpServer::Conn {
  std::string request;
  bool responded = false;
};

HttpServer::HttpServer(stack::Host& host, std::uint16_t port)
    : host_(host), port_(port) {
  pages_["/"] = 10 * 1024;
}

void HttpServer::add_page(const std::string& path, std::size_t size) {
  pages_[path] = size;
}

void HttpServer::start() {
  host_.tcp_listen(port_, [this](std::shared_ptr<stack::TcpConnection> conn) {
    auto state = std::make_shared<Conn>();
    conn->on_data = [this, conn, state](std::span<const std::uint8_t> data) {
      if (state->responded) return;
      state->request.append(data.begin(), data.end());
      const auto end = state->request.find("\r\n\r\n");
      if (end == std::string::npos) {
        if (state->request.size() > 8192) {  // oversized request
          ++bad_requests_;
          state->responded = true;
          conn->abort();
        }
        return;
      }
      state->responded = true;
      const std::string line = state->request.substr(0, state->request.find("\r\n"));
      host_.simulation().schedule(request_service_time,
                                  [this, conn, line] { handle_request(conn, line); });
    };
    conn->on_peer_closed = [conn] { conn->close(); };
  });
}

void HttpServer::handle_request(const std::shared_ptr<stack::TcpConnection>& conn,
                                const std::string& request_line) {
  // "GET <path> HTTP/1.x"
  std::string path;
  bool ok = false;
  if (request_line.rfind("GET ", 0) == 0) {
    const auto sp = request_line.find(' ', 4);
    if (sp != std::string::npos) {
      path = request_line.substr(4, sp - 4);
      ok = true;
    }
  }
  auto it = ok ? pages_.find(path) : pages_.end();

  std::string response;
  std::size_t body_size = 0;
  if (it != pages_.end()) {
    body_size = it->second;
    response = "HTTP/1.0 200 OK\r\nServer: barb-httpd/1.0\r\nContent-Type: text/html\r\n"
               "Content-Length: " + std::to_string(body_size) + "\r\n\r\n";
    ++requests_served_;
  } else {
    const std::string body = "<html><body>404 Not Found</body></html>";
    response = "HTTP/1.0 404 Not Found\r\nContent-Length: " +
               std::to_string(body.size()) + "\r\n\r\n" + body;
    ++bad_requests_;
  }

  std::vector<std::uint8_t> bytes(response.begin(), response.end());
  // Deterministic page content.
  for (std::size_t i = 0; i < body_size; ++i) {
    bytes.push_back(static_cast<std::uint8_t>('a' + (i % 26)));
  }
  // Server send buffer (256 KB) always fits header + our page sizes.
  conn->send(bytes);
  conn->close();  // HTTP/1.0: close after the response
}

// ------------------------------------------------------------------ client

HttpLoadClient::HttpLoadClient(stack::Host& host, net::Ipv4Address server,
                               std::uint16_t port, std::string path)
    : host_(host), server_ip_(server), port_(port), path_(std::move(path)) {}

HttpLoadClient::~HttpLoadClient() { end_timer_.cancel(); }

void HttpLoadClient::run(sim::Duration duration,
                         std::function<void(HttpLoadResult)> done) {
  BARB_ASSERT_MSG(!running_, "http_load client already running");
  running_ = true;
  done_ = std::move(done);
  run_start_ = host_.simulation().now();
  end_timer_ = host_.simulation().schedule(duration, [this] { finish_run(); });
  start_fetch();
}

void HttpLoadClient::start_fetch() {
  if (!running_) return;
  response_buffer_.clear();
  headers_done_ = false;
  expected_body_ = 0;
  body_received_ = 0;

  connect_started_ = host_.simulation().now();
  conn_ = host_.tcp_connect(server_ip_, port_);
  if (!conn_) {
    // Local failure (no route / port exhaustion): back off briefly instead
    // of spinning synchronously.
    ++errors_;
    host_.simulation().schedule(sim::Duration::milliseconds(10),
                                [this] { start_fetch(); });
    return;
  }
  conn_->on_connected = [this] {
    connect_ms_.add((host_.simulation().now() - connect_started_).to_milliseconds());
    const std::string request = "GET " + path_ + " HTTP/1.0\r\n\r\n";
    request_sent_ = host_.simulation().now();
    conn_->send({reinterpret_cast<const std::uint8_t*>(request.data()), request.size()});
  };
  conn_->on_data = [this](std::span<const std::uint8_t> data) {
    if (!headers_done_) {
      response_buffer_.append(data.begin(), data.end());
      const auto end = response_buffer_.find("\r\n\r\n");
      if (end == std::string::npos) return;
      const auto cl = response_buffer_.find("Content-Length: ");
      if (cl == std::string::npos || response_buffer_.rfind("HTTP/1.0 200", 0) != 0) {
        ++errors_;
        finish_fetch(false);
        return;
      }
      const char* begin = response_buffer_.data() + cl + 16;
      (void)std::from_chars(begin, response_buffer_.data() + end, expected_body_);
      headers_done_ = true;
      body_received_ = response_buffer_.size() - (end + 4);
    } else {
      body_received_ += data.size();
    }
    if (headers_done_ && body_received_ >= expected_body_) {
      response_ms_.add((host_.simulation().now() - request_sent_).to_milliseconds());
      bytes_ += expected_body_;
      ++fetches_;
      finish_fetch(true);
    }
  };
  conn_->on_closed = [this] {
    // Reset or failure before the body completed.
    if (conn_ && !(headers_done_ && body_received_ >= expected_body_)) {
      ++errors_;
      finish_fetch(false);
    }
  };
}

void HttpLoadClient::finish_fetch(bool /*success*/) {
  if (conn_) {
    auto conn = conn_;
    conn_ = nullptr;
    conn->on_closed = nullptr;
    conn->on_data = nullptr;
    if (conn->state() != stack::TcpState::kClosed) conn->close();
  }
  if (!running_) return;
  // Immediately start the next fetch (http_load with rate unlimited).
  start_fetch();
}

void HttpLoadClient::finish_run() {
  if (!running_) return;
  running_ = false;
  if (conn_) {
    auto conn = conn_;
    conn_ = nullptr;
    conn->on_closed = nullptr;
    conn->on_data = nullptr;
    if (conn->state() != stack::TcpState::kClosed) conn->abort();
  }
  HttpLoadResult result;
  result.fetches = fetches_;
  result.errors = errors_;
  result.duration_s = (host_.simulation().now() - run_start_).to_seconds();
  result.fetches_per_sec =
      result.duration_s > 0 ? static_cast<double>(fetches_) / result.duration_s : 0.0;
  result.mean_connect_ms = connect_ms_.empty() ? 0.0 : connect_ms_.mean();
  result.mean_response_ms = response_ms_.empty() ? 0.0 : response_ms_.mean();
  if (!connect_ms_.empty()) {
    result.p50_connect_ms = connect_ms_.percentile(50);
    result.p99_connect_ms = connect_ms_.percentile(99);
  }
  if (!response_ms_.empty()) {
    result.p50_response_ms = response_ms_.percentile(50);
    result.p99_response_ms = response_ms_.percentile(99);
  }
  result.bytes = bytes_;
  if (done_) done_(result);
}

// -------------------------------------------------------- parallel client

struct HttpParallelLoadClient::Fetch {
  std::shared_ptr<stack::TcpConnection> conn;
  sim::TimePoint started;
  std::string buffer;
  std::size_t expected_body = 0;
  std::size_t body_received = 0;
  bool headers_done = false;
  bool finished = false;
};

HttpParallelLoadClient::HttpParallelLoadClient(stack::Host& host,
                                               net::Ipv4Address server,
                                               std::uint16_t port, std::string path)
    : host_(host), server_ip_(server), port_(port), path_(std::move(path)) {}

HttpParallelLoadClient::~HttpParallelLoadClient() {
  spawn_timer_.cancel();
  end_timer_.cancel();
}

void HttpParallelLoadClient::run(double connections_per_sec, sim::Duration duration,
                                 std::function<void(HttpParallelResult)> done,
                                 std::size_t max_parallel) {
  BARB_ASSERT_MSG(!running_, "parallel http_load client already running");
  BARB_ASSERT(connections_per_sec > 0);
  running_ = true;
  interval_s_ = 1.0 / connections_per_sec;
  max_parallel_allowed_ = max_parallel;
  done_ = std::move(done);
  run_start_ = host_.simulation().now();
  last_parallel_sample_ = run_start_;
  parallel_time_integral_ = 0;
  end_timer_ = host_.simulation().schedule(duration, [this] { finish_run(); });
  start_fetch();
}

void HttpParallelLoadClient::account_parallel() {
  const auto now = host_.simulation().now();
  parallel_time_integral_ +=
      static_cast<double>(in_flight_) * (now - last_parallel_sample_).to_seconds();
  last_parallel_sample_ = now;
}

void HttpParallelLoadClient::start_fetch() {
  if (!running_) return;
  spawn_timer_ = host_.simulation().schedule(
      sim::Duration::from_seconds(interval_s_), [this] { start_fetch(); });

  if (in_flight_ >= max_parallel_allowed_) {
    ++errors_;  // the configured cap counts as a refused connection
    return;
  }
  auto fetch = std::make_shared<Fetch>();
  fetch->started = host_.simulation().now();
  fetch->conn = host_.tcp_connect(server_ip_, port_);
  if (!fetch->conn) {
    ++errors_;
    return;
  }
  account_parallel();
  ++in_flight_;
  max_parallel_seen_ = std::max(max_parallel_seen_, in_flight_);
  ++started_;

  fetch->conn->on_connected = [this, fetch] {
    const std::string request = "GET " + path_ + " HTTP/1.0\r\n\r\n";
    fetch->conn->send(
        {reinterpret_cast<const std::uint8_t*>(request.data()), request.size()});
  };
  fetch->conn->on_data = [this, fetch](std::span<const std::uint8_t> data) {
    if (fetch->finished) return;
    if (!fetch->headers_done) {
      fetch->buffer.append(data.begin(), data.end());
      const auto end = fetch->buffer.find("\r\n\r\n");
      if (end == std::string::npos) return;
      const auto cl = fetch->buffer.find("Content-Length: ");
      if (cl == std::string::npos || fetch->buffer.rfind("HTTP/1.0 200", 0) != 0) {
        finish_fetch(fetch, false);
        return;
      }
      const char* begin = fetch->buffer.data() + cl + 16;
      (void)std::from_chars(begin, fetch->buffer.data() + end, fetch->expected_body);
      fetch->headers_done = true;
      fetch->body_received = fetch->buffer.size() - (end + 4);
    } else {
      fetch->body_received += data.size();
    }
    if (fetch->headers_done && fetch->body_received >= fetch->expected_body) {
      response_ms_.add(
          (host_.simulation().now() - fetch->started).to_milliseconds());
      finish_fetch(fetch, true);
    }
  };
  fetch->conn->on_closed = [this, fetch] {
    if (!fetch->finished) finish_fetch(fetch, false);
  };
}

void HttpParallelLoadClient::finish_fetch(const std::shared_ptr<Fetch>& fetch,
                                          bool success) {
  if (fetch->finished) return;
  fetch->finished = true;
  account_parallel();
  --in_flight_;
  (success ? completed_ : errors_) += 1;
  auto conn = fetch->conn;
  fetch->conn = nullptr;
  if (conn) {
    conn->on_closed = nullptr;
    conn->on_data = nullptr;
    conn->on_connected = nullptr;
    if (conn->state() != stack::TcpState::kClosed) conn->close();
  }
}

void HttpParallelLoadClient::finish_run() {
  if (!running_) return;
  running_ = false;
  spawn_timer_.cancel();
  account_parallel();

  HttpParallelResult result;
  result.started = started_;
  result.completed = completed_;
  result.errors = errors_;
  result.completion_fraction =
      started_ == 0 ? 0.0
                    : static_cast<double>(completed_) / static_cast<double>(started_);
  const double elapsed = (host_.simulation().now() - run_start_).to_seconds();
  result.mean_parallel = elapsed > 0 ? parallel_time_integral_ / elapsed : 0.0;
  result.max_parallel = max_parallel_seen_;
  result.mean_response_ms = response_ms_.empty() ? 0.0 : response_ms_.mean();
  if (done_) done_(result);
}

}  // namespace barb::apps
