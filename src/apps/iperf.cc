#include "apps/iperf.h"

#include <charconv>
#include <cstring>
#include <string>
#include <vector>

#include "util/logging.h"

namespace barb::apps {

namespace {

constexpr char kUdpReportRequest[] = "IPERF-END";
constexpr char kUdpReportPrefix[] = "IPERF-REPORT ";

}  // namespace

IperfServer::IperfServer(stack::Host& host, std::uint16_t port)
    : host_(host), port_(port) {}

void IperfServer::start() {
  host_.tcp_listen(port_, [this](std::shared_ptr<stack::TcpConnection> conn) {
    ++connections_;
    conn->on_data = [this](std::span<const std::uint8_t> data) {
      tcp_bytes_ += data.size();  // discard, like iperf -s
    };
    conn->on_peer_closed = [conn] { conn->close(); };
  });
  udp_ = host_.udp_open(port_);
  if (udp_ != nullptr) {
    udp_->set_receiver([this](net::Ipv4Address src, std::uint16_t src_port,
                              std::span<const std::uint8_t> payload) {
      handle_udp(src, src_port, payload);
    });
  }
}

void IperfServer::handle_udp(net::Ipv4Address src, std::uint16_t src_port,
                             std::span<const std::uint8_t> payload) {
  // End-of-test marker: reply with a report instead of counting.
  if (payload.size() >= sizeof(kUdpReportRequest) - 1 &&
      std::memcmp(payload.data(), kUdpReportRequest, sizeof(kUdpReportRequest) - 1) ==
          0) {
    std::string report = kUdpReportPrefix;
    report += std::to_string(udp_bytes_) + " " + std::to_string(udp_datagrams_);
    udp_->send_to(src, src_port,
                  {reinterpret_cast<const std::uint8_t*>(report.data()), report.size()});
    return;
  }
  ++udp_datagrams_;
  udp_bytes_ += payload.size();
}

IperfClient::IperfClient(stack::Host& host, net::Ipv4Address server, std::uint16_t port)
    : host_(host), server_ip_(server), port_(port) {}

IperfClient::~IperfClient() {
  end_timer_.cancel();
  udp_timer_.cancel();
  if (udp_ != nullptr) udp_->close();
}

void IperfClient::run(Mode mode, sim::Duration duration,
                      std::function<void(IperfResult)> done, double udp_rate_bps) {
  BARB_ASSERT_MSG(!running_, "iperf client already running");
  running_ = true;
  mode_ = mode;
  duration_ = duration;
  done_ = std::move(done);

  if (mode == Mode::kTcp) {
    conn_ = host_.tcp_connect(server_ip_, port_);
    if (!conn_) {
      running_ = false;
      done_(IperfResult{});
      return;
    }
    conn_->on_connected = [this] {
      started_ = host_.simulation().now();
      acked_at_start_ = conn_->stats().bytes_acked;
      end_timer_ = host_.simulation().schedule(duration_, [this] { finish_tcp(); });
      pump_tcp();
    };
    conn_->on_send_space = [this] { pump_tcp(); };
    conn_->on_closed = [this] {
      // Connection died (reset / gave up) before the timer: report what we
      // measured; zero if it never established.
      if (!running_) return;
      finish_tcp();
    };
    return;
  }

  // UDP mode.
  udp_ = host_.udp_open(0);
  if (udp_ == nullptr) {
    running_ = false;
    done_(IperfResult{});
    return;
  }
  udp_->set_receiver([this](net::Ipv4Address, std::uint16_t,
                            std::span<const std::uint8_t> payload) {
    const std::size_t prefix_len = sizeof(kUdpReportPrefix) - 1;
    if (payload.size() < prefix_len ||
        std::memcmp(payload.data(), kUdpReportPrefix, prefix_len) != 0) {
      return;
    }
    end_timer_.cancel();
    const std::string text(payload.begin() + static_cast<long>(prefix_len),
                           payload.end());
    std::uint64_t bytes = 0;
    (void)std::from_chars(text.data(), text.data() + text.size(), bytes);
    IperfResult result;
    result.completed = true;
    result.bytes = bytes;
    result.duration_s = duration_.to_seconds();
    result.mbps = static_cast<double>(bytes) * 8.0 / result.duration_s / 1e6;
    running_ = false;
    if (done_) done_(result);
  });
  started_ = host_.simulation().now();
  udp_interval_s_ = (udp_payload_ + 46.0) * 8.0 / udp_rate_bps;  // incl. headers
  send_next_udp();
  // Token-paced sender loop: one periodic slab record for the whole run.
  udp_timer_ = host_.simulation().schedule_every(
      sim::Duration::from_seconds(udp_interval_s_), [this] { send_next_udp(); });
  end_timer_ = host_.simulation().schedule(duration_, [this] {
    udp_timer_.cancel();
    report_retries_left_ = 10;
    request_udp_report();
  });
}

void IperfClient::cancel() {
  if (!running_) return;
  if (mode_ == Mode::kTcp) {
    finish_tcp();
    return;
  }
  udp_timer_.cancel();
  end_timer_.cancel();
  running_ = false;
  if (done_) done_(IperfResult{});
}

void IperfClient::pump_tcp() {
  if (!running_ || !conn_) return;
  static const std::vector<std::uint8_t> chunk(16 * 1024, 0x5a);
  while (conn_->send_space() > 0) {
    if (conn_->send(chunk) == 0) break;
  }
}

void IperfClient::finish_tcp() {
  if (!running_) return;
  running_ = false;
  end_timer_.cancel();

  IperfResult result;
  const auto now = host_.simulation().now();
  if (conn_ && conn_->stats().bytes_acked >= acked_at_start_ &&
      now > started_) {
    const double elapsed = (now - started_).to_seconds();
    if (elapsed > 0 && conn_->state() != stack::TcpState::kSynSent) {
      result.completed = true;
      result.bytes = conn_->stats().bytes_acked - acked_at_start_;
      result.duration_s = elapsed;
      result.mbps = static_cast<double>(result.bytes) * 8.0 / elapsed / 1e6;
      result.retransmissions = conn_->stats().retransmissions;
    }
  }
  auto conn = conn_;
  conn_ = nullptr;
  if (conn && conn->state() != stack::TcpState::kClosed) conn->abort();
  if (done_) done_(result);
}

void IperfClient::send_next_udp() {
  if (!running_ || udp_ == nullptr) return;
  std::vector<std::uint8_t> payload(udp_payload_, 0x5a);
  udp_->send_to(server_ip_, port_, payload);
  udp_sent_bytes_ += payload.size();
}

void IperfClient::request_udp_report() {
  if (!running_) return;
  if (report_retries_left_-- <= 0) {
    // Report never made it through (e.g. the path is dead): fail the test.
    running_ = false;
    if (done_) done_(IperfResult{});
    return;
  }
  const std::string marker = kUdpReportRequest;
  udp_->send_to(server_ip_, port_,
                {reinterpret_cast<const std::uint8_t*>(marker.data()), marker.size()});
  end_timer_ = host_.simulation().schedule(sim::Duration::milliseconds(250),
                                           [this] { request_udp_report(); });
}

}  // namespace barb::apps
