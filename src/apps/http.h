// Minimal HTTP/1.0 server and an http_load-style client.
//
// The server plays the paper's Apache 2 (default page, close-after-response
// semantics); the client replicates the paper's http_load configuration:
// one connection at a time, unlimited request rate, fixed test duration,
// reporting fetches/s, connect latency, and whole-response latency.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "stack/host.h"
#include "stack/tcp.h"
#include "util/stats.h"

namespace barb::apps {

class HttpServer {
 public:
  explicit HttpServer(stack::Host& host, std::uint16_t port = 80);

  void start();

  // Server-side request processing time (parse, stat, build headers) — an
  // Apache 2 on the testbed's 1 GHz P3 spends ~3.5 ms per static request.
  // Without this the firewall's share of fetch latency is exaggerated.
  sim::Duration request_service_time = sim::Duration::microseconds(3500);

  // Registers a page of `size` bytes of deterministic content. The default
  // server carries "/" at 10 KB (a default-install index page).
  void add_page(const std::string& path, std::size_t size);

  std::uint64_t requests_served() const { return requests_served_; }
  std::uint64_t bad_requests() const { return bad_requests_; }

 private:
  struct Conn;
  void handle_request(const std::shared_ptr<stack::TcpConnection>& conn,
                      const std::string& request_line);

  stack::Host& host_;
  std::uint16_t port_;
  std::map<std::string, std::size_t> pages_;
  std::uint64_t requests_served_ = 0;
  std::uint64_t bad_requests_ = 0;
};

struct HttpLoadResult {
  std::uint64_t fetches = 0;
  std::uint64_t errors = 0;  // connect failures, resets, bad responses
  double duration_s = 0.0;
  double fetches_per_sec = 0.0;
  double mean_connect_ms = 0.0;   // SYN sent -> connection established
  double mean_response_ms = 0.0;  // request sent -> full body received
  // Tail latency (linear-interpolated percentiles over per-fetch samples).
  double p50_connect_ms = 0.0;
  double p99_connect_ms = 0.0;
  double p50_response_ms = 0.0;
  double p99_response_ms = 0.0;
  std::uint64_t bytes = 0;
};

// Rate-driven http_load variant — the paper's alternative configuration
// ("http_load could have been configured to measure the number of parallel
// connections supported by the server at a given connection rate"): a new
// fetch starts every 1/rate seconds regardless of completions, and the
// report says how many connections that keeps in flight and how many
// fetches still succeed.
struct HttpParallelResult {
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  double completion_fraction = 0.0;
  double mean_parallel = 0.0;   // time-averaged connections in flight
  std::size_t max_parallel = 0;
  double mean_response_ms = 0.0;
};

class HttpParallelLoadClient {
 public:
  HttpParallelLoadClient(stack::Host& host, net::Ipv4Address server,
                         std::uint16_t port = 80, std::string path = "/");
  ~HttpParallelLoadClient();

  void run(double connections_per_sec, sim::Duration duration,
           std::function<void(HttpParallelResult)> done,
           std::size_t max_parallel = 1000);

 private:
  struct Fetch;
  void start_fetch();
  void finish_fetch(const std::shared_ptr<Fetch>& fetch, bool success);
  void account_parallel();
  void finish_run();

  stack::Host& host_;
  net::Ipv4Address server_ip_;
  std::uint16_t port_;
  std::string path_;

  bool running_ = false;
  double interval_s_ = 0;
  std::size_t max_parallel_allowed_ = 1000;
  std::function<void(HttpParallelResult)> done_;
  sim::TimePoint run_start_;
  sim::TimePoint last_parallel_sample_;
  double parallel_time_integral_ = 0;
  sim::EventHandle spawn_timer_;
  sim::EventHandle end_timer_;

  std::size_t in_flight_ = 0;
  std::size_t max_parallel_seen_ = 0;
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t errors_ = 0;
  Stats response_ms_;
};

class HttpLoadClient {
 public:
  HttpLoadClient(stack::Host& host, net::Ipv4Address server, std::uint16_t port = 80,
                 std::string path = "/");
  ~HttpLoadClient();

  // Runs fetches back-to-back (one connection at a time) for `duration`,
  // then reports.
  void run(sim::Duration duration, std::function<void(HttpLoadResult)> done);

 private:
  void start_fetch();
  void finish_fetch(bool success);
  void finish_run();

  stack::Host& host_;
  net::Ipv4Address server_ip_;
  std::uint16_t port_;
  std::string path_;

  bool running_ = false;
  std::function<void(HttpLoadResult)> done_;
  sim::TimePoint run_start_;
  sim::EventHandle end_timer_;

  std::shared_ptr<stack::TcpConnection> conn_;
  sim::TimePoint connect_started_;
  sim::TimePoint request_sent_;
  std::string response_buffer_;
  std::size_t expected_body_ = 0;
  std::size_t body_received_ = 0;
  bool headers_done_ = false;

  std::uint64_t fetches_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t bytes_ = 0;
  Stats connect_ms_;
  Stats response_ms_;
};

}  // namespace barb::apps
