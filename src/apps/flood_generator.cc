#include "apps/flood_generator.h"

#include "net/tcp_header.h"
#include "util/assert.h"
#include "util/logging.h"

namespace barb::apps {

FloodGenerator::FloodGenerator(stack::Host& attacker, FloodConfig config)
    : attacker_(attacker), config_(config) {
  BARB_ASSERT(config_.rate_pps > 0);
}

void FloodGenerator::start() {
  if (running_) return;
  running_ = true;
  send_one();
  arm_timer();
}

void FloodGenerator::stop() {
  running_ = false;
  timer_.cancel();
}

void FloodGenerator::set_rate(double pps) {
  BARB_ASSERT(pps > 0);
  config_.rate_pps = pps;
  if (running_) {
    // Re-pace from now: the next frame goes out one new-rate interval out.
    timer_.cancel();
    arm_timer();
  }
}

void FloodGenerator::arm_timer() {
  // Fixed-interval pacing, like a busy-loop generator hitting its target
  // rate. The periodic recurrence reuses one slab record for the whole
  // flood instead of allocating a fresh timer per frame.
  timer_ = attacker_.simulation().schedule_every(
      sim::Duration::from_seconds(1.0 / config_.rate_pps), [this] { send_one(); });
}

void FloodGenerator::send_one() {
  if (!running_) return;
  attacker_.nic().transmit(craft_packet());
  ++packets_sent_;
}

net::Packet FloodGenerator::craft_packet() {
  auto& rng = attacker_.simulation().rng();
  auto& pool = net::BufferPool::instance();

  net::IpEndpoints ep;
  ep.dst_ip = config_.target;
  ep.src_mac = attacker_.mac();
  // The victim's MAC comes from the attacker's ARP view of the subnet.
  const auto dst_mac = attacker_.arp().lookup(config_.target);
  ep.dst_mac = dst_mac.value_or(net::MacAddress::broadcast());

  std::uint16_t src_port = config_.source_port;
  if (config_.spoof_source) {
    // Random source within the testbed's /8 (never the real attacker).
    ep.src_ip = net::Ipv4Address(10, static_cast<std::uint8_t>(rng.uniform(255) + 1),
                                 static_cast<std::uint8_t>(rng.uniform(256)),
                                 static_cast<std::uint8_t>(rng.uniform(254) + 1));
    src_port = static_cast<std::uint16_t>(1024 + rng.uniform(60000));
  } else {
    ep.src_ip = attacker_.ip();
  }

  // Frames are written straight into recycled pool buffers: at steady state
  // a multi-million-frame flood performs no per-frame heap allocation in the
  // generator (the scratch payload below is reused across calls).
  net::FrameBufferRef frame;
  switch (config_.type) {
    case FloodType::kUdp: {
      // Pad the payload so the final frame hits the configured size.
      constexpr std::size_t kHeaders = net::EthernetHeader::kSize +
                                       net::Ipv4Header::kSize + net::UdpHeader::kSize;
      const std::size_t payload_len =
          config_.frame_size > kHeaders ? config_.frame_size - kHeaders : 0;
      payload_scratch_.assign(payload_len, 0x42);
      frame = net::build_udp_frame_pooled(pool, ep, src_port, config_.target_port,
                                          payload_scratch_, ip_id_++);
      break;
    }
    case FloodType::kTcpSyn: {
      net::TcpHeader h;
      h.src_port = src_port;
      h.dst_port = config_.target_port;
      h.seq = static_cast<std::uint32_t>(rng.next_u64());
      h.flags = net::TcpFlags::kSyn;
      h.window = 65535;
      frame = net::build_tcp_frame_pooled(pool, ep, h, {}, ip_id_++);
      break;
    }
    case FloodType::kTcpData: {
      net::TcpHeader h;
      h.src_port = src_port;
      h.dst_port = config_.target_port;
      h.seq = static_cast<std::uint32_t>(rng.next_u64());
      h.ack = static_cast<std::uint32_t>(rng.next_u64());
      h.flags = net::TcpFlags::kAck;
      h.window = 65535;
      constexpr std::size_t kHeaders = net::EthernetHeader::kSize +
                                       net::Ipv4Header::kSize + net::TcpHeader::kMinSize;
      const std::size_t payload_len =
          config_.frame_size > kHeaders ? config_.frame_size - kHeaders : 0;
      payload_scratch_.assign(payload_len, 0x42);
      frame = net::build_tcp_frame_pooled(pool, ep, h, payload_scratch_, ip_id_++);
      break;
    }
  }
  return net::Packet{std::move(frame), attacker_.simulation().now(),
                     attacker_.next_packet_id()};
}

}  // namespace barb::apps
