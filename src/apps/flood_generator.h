// Packet flood generator — the attacker's tool (the paper used a custom
// raw-socket generator, documented in Ihde's thesis [11]).
//
// Crafts Ethernet frames directly and injects them through the attacking
// host's NIC at a fixed packet rate, bypassing that host's own transport
// stack exactly like a raw socket. Supports UDP floods, TCP SYN floods, and
// TCP data floods (the last elicits one RST per packet from the victim when
// the flood is *allowed* through the firewall — the effect behind the
// paper's allow-vs-deny factor of two).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/frame_buffer.h"
#include "net/packet_builder.h"
#include "stack/host.h"

namespace barb::apps {

enum class FloodType {
  kUdp,      // UDP datagrams to the target port
  kTcpSyn,   // bare SYNs
  kTcpData,  // ACK-flag data segments for a nonexistent connection
};

struct FloodConfig {
  net::Ipv4Address target;
  std::uint16_t target_port = 7777;
  FloodType type = FloodType::kUdp;
  double rate_pps = 10000.0;
  // Total frame size on the wire (without FCS); 60 is the Ethernet minimum.
  std::size_t frame_size = 60;
  // Source address handling. With spoofing enabled, source IP and port are
  // randomized per packet (the paper notes spoofing lets attack packets
  // traverse deep into the rule-set).
  bool spoof_source = false;
  std::uint16_t source_port = 40001;
};

class FloodGenerator {
 public:
  FloodGenerator(stack::Host& attacker, FloodConfig config);

  void start();
  void stop();
  bool running() const { return running_; }

  // Changes the flood rate. While running, the pacing timer re-arms from the
  // current instant at the new interval.
  void set_rate(double pps);
  const FloodConfig& config() const { return config_; }
  std::uint64_t packets_sent() const { return packets_sent_; }

 private:
  void arm_timer();
  void send_one();
  net::Packet craft_packet();

  stack::Host& attacker_;
  FloodConfig config_;
  bool running_ = false;
  std::uint64_t packets_sent_ = 0;
  sim::EventHandle timer_;
  std::uint16_t ip_id_ = 0;
  // Reused across craft_packet() calls so per-frame padding costs no
  // allocation once it has grown to the configured frame size.
  std::vector<std::uint8_t> payload_scratch_;
};

}  // namespace barb::apps
