// InlineCallback: a move-only `void()` callable with small-buffer storage.
//
// The event engine schedules millions of callbacks per simulated second, and
// std::function heap-allocates any capture larger than its (implementation-
// defined, ~16-byte) internal buffer. InlineCallback sizes its buffer so that
// every capture the simulator actually schedules — link deliveries carrying a
// Packet handle, firewall service completions, TCP timers holding a weak_ptr,
// the HTTP server's `[this, conn, line]` — fits inline, making steady-state
// event scheduling allocation-free (the microbench_scheduler ctest gates
// this at exactly zero).
//
// Callables that are too large, over-aligned, or not nothrow-movable fall
// back to a single heap allocation, so correctness never depends on fitting.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace barb::sim {

class InlineCallback {
 public:
  // 56 bytes covers the largest capture in the tree (8-byte this + 16-byte
  // shared_ptr + 32-byte std::string); with the ops pointer the whole object
  // is 64 bytes — one cache line inside the scheduler's event record.
  static constexpr std::size_t kInlineSize = 56;
  static constexpr std::size_t kInlineAlign = 16;

  // True when F is stored in the inline buffer (no heap allocation).
  template <typename F>
  static constexpr bool stores_inline() {
    using D = std::decay_t<F>;
    return sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<D>;
  }

  InlineCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (stores_inline<F>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { move_from(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs into dst from src, then destroys src's payload.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* p) noexcept { static_cast<D*>(p)->~D(); }};

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* p) { (**static_cast<D**>(p))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(*static_cast<D**>(src));
      },
      [](void* p) noexcept { delete *static_cast<D**>(p); }};

  void move_from(InlineCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

static_assert(sizeof(InlineCallback) == 64,
              "InlineCallback should occupy exactly one cache line");

}  // namespace barb::sim
