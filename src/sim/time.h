// Simulated time.
//
// The simulator keeps time as integer nanoseconds. Two strong types prevent
// the classic bug of mixing absolute times and intervals:
//   Duration  — a signed span of simulated time
//   TimePoint — an absolute instant since simulation start
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <type_traits>
#include <string>

namespace barb::sim {

class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration nanoseconds(std::int64_t ns) { return Duration(ns); }
  static constexpr Duration microseconds(std::int64_t us) { return Duration(us * 1000); }
  static constexpr Duration milliseconds(std::int64_t ms) { return Duration(ms * 1'000'000); }
  static constexpr Duration seconds(std::int64_t s) { return Duration(s * 1'000'000'000); }
  // Converts a floating-point second count; rounds to the nearest nanosecond.
  static constexpr Duration from_seconds(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5)));
  }
  static constexpr Duration zero() { return Duration(0); }
  static constexpr Duration max() {
    return Duration(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_milliseconds() const { return static_cast<double>(ns_) * 1e-6; }
  constexpr double to_microseconds() const { return static_cast<double>(ns_) * 1e-3; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
  constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
  constexpr Duration operator-() const { return Duration(-ns_); }
  template <typename T>
    requires std::is_arithmetic_v<T>
  constexpr Duration operator*(T k) const {
    if constexpr (std::is_integral_v<T>) {
      return Duration(ns_ * static_cast<std::int64_t>(k));
    } else {
      return Duration(static_cast<std::int64_t>(static_cast<double>(ns_) * k));
    }
  }
  constexpr Duration operator/(std::int64_t k) const { return Duration(ns_ / k); }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

  std::string to_string() const;

 private:
  explicit constexpr Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint from_ns(std::int64_t ns) { return TimePoint(ns); }
  static constexpr TimePoint origin() { return TimePoint(0); }
  static constexpr TimePoint max() {
    return TimePoint(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return TimePoint(ns_ + d.ns()); }
  constexpr TimePoint operator-(Duration d) const { return TimePoint(ns_ - d.ns()); }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::nanoseconds(ns_ - o.ns_);
  }

  std::string to_string() const;

 private:
  explicit constexpr TimePoint(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace barb::sim
