#include "sim/parallel_engine.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/assert.h"

namespace barb::sim {

// SPSC ring of MailboxMessages for one ordered shard pair. Fixed capacity;
// a full ring makes the producer drain its own inboxes and retry (which
// also breaks push cycles between mutually full shards).
struct ParallelEngine::Channel {
  explicit Channel(int from_shard, int to_shard, std::size_t capacity)
      : from(from_shard), to(to_shard), slots(capacity), mask(capacity - 1) {
    BARB_ASSERT((capacity & mask) == 0);  // power of two
  }

  bool try_push(MailboxMessage&& m) {
    const std::uint64_t p = pushed.load(std::memory_order_relaxed);
    const std::uint64_t c = popped.load(std::memory_order_acquire);
    if (p - c >= slots.size()) return false;
    slots[p & mask] = std::move(m);
    pushed.store(p + 1, std::memory_order_release);
    return true;
  }

  bool try_pop(MailboxMessage& out) {
    const std::uint64_t c = popped.load(std::memory_order_relaxed);
    const std::uint64_t p = pushed.load(std::memory_order_acquire);
    if (c == p) return false;
    out = std::move(slots[c & mask]);
    popped.store(c + 1, std::memory_order_release);
    return true;
  }

  bool empty() const {
    return pushed.load(std::memory_order_acquire) ==
           popped.load(std::memory_order_relaxed);
  }

  const int from;
  const int to;
  std::vector<MailboxMessage> slots;
  const std::uint64_t mask;
  std::atomic<std::uint64_t> pushed{0};
  std::atomic<std::uint64_t> popped{0};
};

namespace {
constexpr std::size_t kChannelCapacity = 8192;
}  // namespace

ParallelEngine::ParallelEngine(Simulation& sim, int shards) : sim_(sim) {
  BARB_ASSERT_MSG(shards >= 1, "need at least one shard");
  const Scheduler::Backend backend = Scheduler::backend_from_env();
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(backend));
  }
  channel_at_.assign(static_cast<std::size_t>(shards) *
                         static_cast<std::size_t>(shards),
                     nullptr);
}

ParallelEngine::~ParallelEngine() = default;

void ParallelEngine::add_edge(int from, int to, Duration lookahead) {
  BARB_ASSERT(from >= 0 && from < shards() && to >= 0 && to < shards());
  BARB_ASSERT(from != to);
  if (lookahead.ns() <= 0) {
    throw std::runtime_error(
        "parallel engine: cross-shard edge " + std::to_string(from) + "->" +
        std::to_string(to) +
        " has zero lookahead (link propagation is 0); conservative "
        "synchronization needs every cut link to carry nonzero latency — "
        "partition along links with propagation > 0 or run serial");
  }
  const std::size_t idx = static_cast<std::size_t>(from) *
                              static_cast<std::size_t>(shards()) +
                          static_cast<std::size_t>(to);
  Channel* ch = channel_at_[idx];
  if (ch == nullptr) {
    channels_.push_back(std::make_unique<Channel>(from, to, kChannelCapacity));
    ch = channels_.back().get();
    channel_at_[idx] = ch;
    Shard& producer = *shards_[static_cast<std::size_t>(from)];
    Shard& consumer = *shards_[static_cast<std::size_t>(to)];
    auto out = std::make_unique<OutNeighbor>();
    out->shard = to;
    out->lookahead_ns = lookahead.ns();
    out->channel = ch;
    producer.out.push_back(std::move(out));
    consumer.in.push_back(InNeighbor{from, lookahead.ns(), ch,
                                     producer.out.back().get()});
    return;
  }
  // Edge already declared: the minimum lookahead over all cut links wins.
  Shard& producer = *shards_[static_cast<std::size_t>(from)];
  for (auto& out : producer.out) {
    if (out->shard == to) {
      out->lookahead_ns = std::min(out->lookahead_ns, lookahead.ns());
    }
  }
  Shard& consumer = *shards_[static_cast<std::size_t>(to)];
  for (auto& in : consumer.in) {
    if (in.shard == from) {
      in.lookahead_ns = std::min(in.lookahead_ns, lookahead.ns());
    }
  }
}

int ParallelEngine::add_endpoint(int to,
                                 std::function<void(MailboxMessage&&)> deliver) {
  BARB_ASSERT(to >= 0 && to < shards());
  endpoints_.push_back(Endpoint{to, std::move(deliver)});
  return static_cast<int>(endpoints_.size()) - 1;
}

Duration ParallelEngine::edge_lookahead(int from, int to) const {
  const Channel* ch =
      channel_at_[static_cast<std::size_t>(from) *
                      static_cast<std::size_t>(shards()) +
                  static_cast<std::size_t>(to)];
  if (ch == nullptr) return Duration::max();
  for (const auto& in : shards_[static_cast<std::size_t>(to)]->in) {
    if (in.shard == from) return Duration::nanoseconds(in.lookahead_ns);
  }
  return Duration::max();
}

void ParallelEngine::set_thread_hooks(std::function<void(int)> enter,
                                      std::function<void(int)> exit) {
  enter_hook_ = std::move(enter);
  exit_hook_ = std::move(exit);
}

void ParallelEngine::send(MailboxMessage m) {
  const int from = detail::tls_shard_context.shard;
  if (from < 0) {
    // Main-thread send: setup traffic between runs (a connect() issued
    // before run_until) or a control event between segments. Workers are
    // idle either way, so the delivery inserts into the receiving shard's
    // wheel directly; the next segment's horizon reset covers it.
    endpoints_[static_cast<std::size_t>(m.endpoint)].deliver(std::move(m));
    return;
  }
  const int to = endpoints_[static_cast<std::size_t>(m.endpoint)].shard;
  Channel* ch = channel_at_[static_cast<std::size_t>(from) *
                                static_cast<std::size_t>(shards()) +
                            static_cast<std::size_t>(to)];
  BARB_ASSERT_MSG(ch != nullptr, "cross-shard send on an undeclared edge");
  Shard& consumer = *shards_[static_cast<std::size_t>(to)];
  while (!ch->try_push(std::move(m))) {
    // Ring full: make sure the consumer is awake to drain it, service our
    // own inboxes (so two mutually full shards cannot deadlock), and retry.
    if (consumer.parked_hint.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lk(m_);
      wake_locked(to);
    }
    drain_inboxes(*shards_[static_cast<std::size_t>(from)]);
    std::this_thread::yield();
  }
  if (consumer.parked_hint.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lk(m_);
    wake_locked(to);
  }
}

std::int64_t ParallelEngine::bound_of(const Shard& sh) const {
  std::int64_t bound = kMaxNs;
  for (const InNeighbor& in : sh.in) {
    const std::int64_t h =
        shards_[static_cast<std::size_t>(in.shard)]->horizon.load(
            std::memory_order_acquire);
    const std::int64_t b =
        h > kMaxNs - in.lookahead_ns ? kMaxNs : h + in.lookahead_ns;
    bound = std::min(bound, b);
  }
  return bound;
}

void ParallelEngine::lift_horizon(Shard& sh, std::int64_t v) {
  std::int64_t cur = sh.horizon.load(std::memory_order_relaxed);
  while (cur < v && !sh.horizon.compare_exchange_weak(
                        cur, v, std::memory_order_release,
                        std::memory_order_relaxed)) {
  }
}

// Caller holds m_.
void ParallelEngine::wake_locked(int shard) {
  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  if (!sh.parked) return;
  sh.parked = false;
  sh.parked_hint.store(false, std::memory_order_relaxed);
  --parked_count_;
  sh.wake = true;
  sh.cv.notify_one();
}

// Caller holds m_; every shard is parked. Wakes whoever can proceed; when
// nobody can, declares the segment complete.
void ParallelEngine::resolve_all_parked_locked() {
  if (sim_.stop_requested()) {
    // Stop ends the segment at all-parked even with messages still queued
    // (like serial stop leaving events pending).
    seg_done_ = true;
    cv_main_.notify_all();
    for (const auto& sh : shards_) sh->cv.notify_all();
    return;
  }
  bool woke = false;
  for (const auto& ch : channels_) {
    if (!ch->empty()) {
      wake_locked(ch->to);
      woke = true;
    }
  }
  if (woke) return;
  // All mailboxes empty and every shard parked: nothing is in flight, so
  // every horizon may jump straight to the globally earliest pending event
  // (the CMB ladder collapses into one lift).
  std::int64_t tmin = kMaxNs;
  for (const auto& sh : shards_) {
    if (sh->has_next) tmin = std::min(tmin, sh->next_at);
  }
  if (tmin < kMaxNs) {
    for (const auto& sh : shards_) lift_horizon(*sh, tmin);
    ++quiescence_lifts_;
  }
  for (int i = 0; i < shards(); ++i) {
    Shard& sh = *shards_[static_cast<std::size_t>(i)];
    if (!sh.parked || !sh.has_next) continue;
    if (over_cap(sh.next_at, sh.next_sched)) continue;
    if (sh.next_at < bound_of(sh)) {
      wake_locked(i);
      woke = true;
    }
  }
  if (!woke) {
    seg_done_ = true;
    cv_main_.notify_all();
    for (const auto& sh : shards_) sh->cv.notify_all();
  }
}

bool ParallelEngine::drain_inboxes(Shard& sh) {
  bool drained = false;
  MailboxMessage m;
  for (const InNeighbor& in : sh.in) {
    while (in.channel->try_pop(m)) {
      ++sh.messages_in;
      drained = true;
      endpoints_[static_cast<std::size_t>(m.endpoint)].deliver(std::move(m));
    }
  }
  return drained;
}

void ParallelEngine::run_segment(int idx) {
  Shard& sh = *shards_[static_cast<std::size_t>(idx)];
  for (;;) {
    if (sim_.stop_requested()) {
      if (park(idx, 0, /*stopping=*/true)) return;
      continue;
    }
    // Order matters: read neighbor horizons (acquire) BEFORE draining, and
    // execute only below a bound computed from those pre-drain values. Any
    // message still invisible after the drain was sent at or above the
    // horizon we read, so it delivers at or above the bound.
    const std::int64_t bound = bound_of(sh);
    bool progressed = drain_inboxes(sh);
    while (!sh.sched.empty()) {
      const auto [t, s] = sh.sched.next_event_key();
      const std::int64_t at = t.ns();
      if (at >= bound || over_cap(at, s.ns())) break;
      // Publish the promise "nothing I send again is below `at`" before
      // executing the event (all its sends happen at >= at).
      sh.horizon.store(at, std::memory_order_release);
      for (const auto& out : sh.out) {
        if (at >= out->wake_h.load(std::memory_order_relaxed)) {
          out->wake_h.store(kMaxNs, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lk(m_);
          wake_locked(out->shard);
        }
      }
      sh.sched.run_one();
      progressed = true;
    }
    if (progressed) continue;
    if (park(idx, bound, /*stopping=*/false)) return;
  }
}

bool ParallelEngine::park(int idx, std::int64_t bound, bool stopping) {
  Shard& sh = *shards_[static_cast<std::size_t>(idx)];
  bool has_next = false;
  std::int64_t t_next = kMaxNs;
  std::int64_t s_next = kMaxNs;
  if (!stopping) {
    has_next = !sh.sched.empty();
    if (has_next) {
      const auto [t, s] = sh.sched.next_event_key();
      t_next = t.ns();
      s_next = s.ns();
    }
    // Whatever happens next — local event or cross-shard arrival — this
    // shard executes nothing (and so sends nothing) below
    // min(local next, bound).
    lift_horizon(sh, std::min(t_next, bound));
  }
  const bool blocked =
      !stopping && has_next && t_next >= bound && !over_cap(t_next, s_next);
  if (blocked) {
    sh.stalls.fetch_add(1, std::memory_order_relaxed);
    // Ask each producer to wake us once its horizon admits our next event.
    // Advisory: a missed wake is recovered by the all-parked resolution.
    for (const InNeighbor& in : sh.in) {
      const std::int64_t h =
          shards_[static_cast<std::size_t>(in.shard)]->horizon.load(
              std::memory_order_acquire);
      if (h + in.lookahead_ns <= t_next) {
        in.producer_side->wake_h.store(t_next - in.lookahead_ns + 1,
                                       std::memory_order_relaxed);
      }
    }
  }
  std::unique_lock<std::mutex> lk(m_);
  if (!stopping) {
    // Recheck under the engine lock: a message may have landed since our
    // drain, or a producer horizon may have moved past the bound.
    for (const InNeighbor& in : sh.in) {
      if (!in.channel->empty()) return false;
    }
    if (blocked && t_next < bound_of(sh)) return false;
  }
  sh.parked = true;
  sh.parked_hint.store(true, std::memory_order_relaxed);
  sh.wake = false;
  sh.has_next = has_next;
  sh.next_at = t_next;
  sh.next_sched = s_next;
  if (++parked_count_ == shards()) resolve_all_parked_locked();
  sh.cv.wait(lk, [&] { return sh.wake || seg_done_; });
  return seg_done_;
}

void ParallelEngine::worker(int idx, std::uint64_t start_gen) {
  detail::tls_shard_context.sched =
      &shards_[static_cast<std::size_t>(idx)]->sched;
  detail::tls_shard_context.shard = idx;
  if (enter_hook_) enter_hook_(idx);
  std::uint64_t my_gen = start_gen;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_workers_.wait(lk, [&] { return seg_gen_ != my_gen || !running_; });
      if (!running_) break;
      my_gen = seg_gen_;
      ++workers_active_;
    }
    run_segment(idx);
    {
      std::lock_guard<std::mutex> lk(m_);
      // The segment is only over for the main thread once every worker has
      // acknowledged seg_done_ — otherwise the next segment's reset could
      // race a worker still waking out of this one.
      if (--workers_active_ == 0) cv_main_.notify_all();
    }
  }
  if (exit_hook_) exit_hook_(idx);
  detail::tls_shard_context = detail::ShardContext{};
}

void ParallelEngine::run_segment_all(std::int64_t cap_at,
                                     std::int64_t cap_sched) {
  std::unique_lock<std::mutex> lk(m_);
  cap_at_ = cap_at;
  cap_sched_ = cap_sched;
  seg_done_ = false;
  parked_count_ = 0;
  for (const auto& sh : shards_) {
    sh->parked = false;
    sh->parked_hint.store(false, std::memory_order_relaxed);
    sh->wake = false;
    // Horizons reset to the shard clocks every segment: the control event
    // that ran between segments may have scheduled fresh work below a
    // horizon the previous segment lifted. schedule_at guarantees nothing
    // lands below a shard's clock, so this value is always conservative.
    // Within a segment, horizons only rise.
    sh->horizon.store(sh->sched.now().ns(), std::memory_order_relaxed);
    for (const auto& out : sh->out) {
      out->wake_h.store(kMaxNs, std::memory_order_relaxed);
    }
  }
  ++seg_gen_;
  cv_workers_.notify_all();
  cv_main_.wait(lk, [&] { return seg_done_ && workers_active_ == 0; });
}

void ParallelEngine::run_loop(TimePoint until, bool bounded) {
  std::uint64_t gen0;
  {
    std::lock_guard<std::mutex> lk(m_);
    running_ = true;
    seg_done_ = false;
    gen0 = seg_gen_;
  }
  std::vector<std::thread> threads;
  threads.reserve(shards_.size());
  for (int i = 0; i < shards(); ++i) {
    threads.emplace_back([this, i, gen0] { worker(i, gen0); });
  }
  Scheduler& control = sim_.scheduler();
  for (;;) {
    bool have_control = false;
    std::int64_t cap_at = bounded ? until.ns() : kMaxNs;
    std::int64_t cap_sched = kMaxNs;
    if (!control.empty()) {
      const auto [ca, cs] = control.next_event_key();
      if (!bounded || ca <= until) {
        have_control = true;
        cap_at = ca.ns();
        cap_sched = cs.ns();
      }
    }
    run_segment_all(cap_at, cap_sched);
    if (sim_.stop_requested()) break;
    if (!have_control) break;
    control.run_one();
  }
  {
    std::lock_guard<std::mutex> lk(m_);
    running_ = false;
    cv_workers_.notify_all();
  }
  for (std::thread& t : threads) t.join();
  if (!sim_.stop_requested()) {
    if (bounded) {
      for (const auto& sh : shards_) {
        if (sh->sched.now() < until) sh->sched.advance_to(until);
      }
      if (control.now() < until) control.advance_to(until);
    } else {
      // Run-to-empty: align every clock on the latest one so a later
      // schedule() targets a consistent "now".
      TimePoint latest = control.now();
      for (const auto& sh : shards_) latest = std::max(latest, sh->sched.now());
      for (const auto& sh : shards_) {
        if (sh->sched.now() < latest) sh->sched.advance_to(latest);
      }
      if (control.now() < latest) control.advance_to(latest);
    }
  }
}

void ParallelEngine::run_until(TimePoint until) { run_loop(until, true); }

void ParallelEngine::run_to_empty() {
  run_loop(TimePoint::max(), false);
}

std::uint64_t ParallelEngine::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->sched.events_executed();
  return total;
}

bool ParallelEngine::queues_empty() const {
  for (const auto& sh : shards_) {
    if (!sh->sched.empty()) return false;
  }
  for (const auto& ch : channels_) {
    if (!ch->empty()) return false;
  }
  return true;
}

ParallelStats ParallelEngine::stats() const {
  ParallelStats s;
  s.shards = shards();
  s.shard_events.reserve(shards_.size());
  std::uint64_t stalls = 0;
  std::uint64_t messages = 0;
  for (const auto& sh : shards_) {
    s.shard_events.push_back(sh->sched.events_executed());
    stalls += sh->stalls.load(std::memory_order_relaxed);
    messages += sh->messages_in;
  }
  s.horizon_stalls = stalls;
  s.quiescence_lifts = quiescence_lifts_;
  s.messages = messages;
  std::size_t depth = 0;
  for (const auto& ch : channels_) {
    const std::uint64_t p = ch->pushed.load(std::memory_order_acquire);
    const std::uint64_t c = ch->popped.load(std::memory_order_relaxed);
    depth += static_cast<std::size_t>(p - c);
  }
  s.mailbox_depth = depth;
  return s;
}

}  // namespace barb::sim
