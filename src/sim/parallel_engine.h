// Conservative parallel discrete-event engine: sharded timing wheels with
// lookahead-bounded synchronization (ROADMAP item 3).
//
// The fabric is partitioned into K shards (core/topology.cc picks the cut);
// each shard runs its own Scheduler on its own worker thread. Shards
// synchronize Chandy–Misra–Bryant-style on *horizons*: shard j continuously
// publishes a lower bound h_j on the timestamp of anything it will ever send
// again, and shard i may execute local events strictly below
//
//   bound_i = min over in-neighbors j of (h_j + lookahead(j->i)),
//
// where lookahead(j->i) is the minimum cross-shard link latency
// (propagation + minimum frame serialization time — every delivery a link
// can produce is at least that far in the sender's future). Cross-shard
// frames travel through per-shard-pair SPSC mailboxes as
// (deliver_time, schedule-origin, bytes) messages and are inserted into the
// receiver's wheel via Scheduler::schedule_at_origin, so the merged dispatch
// order is the serial engine's (time, origin, seq) order — see the
// determinism notes in scheduler.h and DESIGN.md "Parallel discrete-event
// execution".
//
// Memory-ordering protocol (load-bearing): a producer publishes its horizon
// with a release store BEFORE executing the event at that time (all sends
// of that event happen at or after it); a consumer acquire-reads neighbor
// horizons FIRST, THEN drains its mailboxes, and computes its bound from
// the pre-drain horizon values. If a message is still invisible after that
// drain, its send time is at or above the horizon value read, so its
// delivery time is at or above the computed bound — executing up to the
// bound can never overtake it.
//
// Progress: a shard that cannot execute (horizon-blocked, over the segment
// cap, or empty) parks on a condvar. Producers wake parked consumers when
// they push a message or cross a requested horizon threshold; when every
// shard is parked and all mailboxes are empty, the last parker lifts all
// horizons to the globally earliest pending event in one step (nothing can
// be in flight, so the CMB ladder collapses) and wakes whoever became
// executable. When nobody does, the segment is complete.
//
// Control events (telemetry probes via Simulation::schedule_every_global)
// stay on the main Simulation scheduler and run on the main thread between
// segments, at global quiescence — every shard parked at the control
// event's dispatch key — so they observe cross-shard state (lazily advanced
// link accounting, pool gauges) at exactly the instants the serial engine
// would.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/simulation.h"

namespace barb::sim {

// One cross-shard frame in flight. `bytes` is an owned copy: FrameBuffer
// refcounts are plain ints on thread-local pools, so buffer handles never
// cross threads — the receiver rebuilds a pooled packet on its own shard.
struct MailboxMessage {
  TimePoint deliver_at;  // receiver-side dispatch time
  TimePoint sched_at;    // sender-side clock when the delivery was scheduled
  TimePoint meta_time;   // net::Packet::created
  std::uint64_t meta_id = 0;  // net::Packet::id
  std::int32_t endpoint = 0;  // registered delivery endpoint on the receiver
  std::vector<std::uint8_t> bytes;
};

// Snapshot of engine counters for the opt-in des.* telemetry bridge. Safe
// to take from the main thread between runs or inside a control event (all
// shards parked).
struct ParallelStats {
  int shards = 0;
  std::vector<std::uint64_t> shard_events;  // events executed per shard
  std::uint64_t horizon_stalls = 0;   // times a shard parked on its bound
  std::uint64_t quiescence_lifts = 0; // all-parked horizon lifts
  std::uint64_t messages = 0;         // cross-shard messages delivered
  std::size_t mailbox_depth = 0;      // messages currently queued
};

class ParallelEngine final : public Simulation::EngineHook {
 public:
  // `shards` >= 1. The engine must be attached to `sim` (attach_engine) by
  // the owner after construction and outlive every run call.
  ParallelEngine(Simulation& sim, int shards);
  ~ParallelEngine() override;

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  int shards() const { return static_cast<int>(shards_.size()); }
  Scheduler& shard_scheduler(int shard) { return shards_[static_cast<std::size_t>(shard)]->sched; }

  // Declares that shard `from` can send to shard `to` with the given
  // conservative lookahead (idempotent; the minimum over declared edges
  // wins). Throws std::runtime_error on lookahead <= 0: a zero-lookahead
  // cut would force lockstep execution, which the conservative protocol
  // cannot run — partition along links with nonzero propagation instead.
  void add_edge(int from, int to, Duration lookahead);

  // Registers a delivery callback living on shard `to`; returns its id for
  // MailboxMessage::endpoint. The callback runs on shard `to`'s thread at
  // mailbox-drain time and is expected to insert the actual delivery via
  // shard_scheduler(to).schedule_at_origin(deliver_at, sched_at, ...).
  int add_endpoint(int to, std::function<void(MailboxMessage&&)> deliver);

  // Sends a message to `m.endpoint` (must be called on a shard worker
  // thread; the producing shard is taken from thread-local context). The
  // (from, to) edge must have been declared via add_edge.
  void send(MailboxMessage m);

  // Minimum declared lookahead for edge (from, to), or Duration::max() if
  // the edge does not exist. Test/diagnostic accessor.
  Duration edge_lookahead(int from, int to) const;

  // Thread lifecycle hooks, run on each shard worker thread as it starts
  // and before it exits (the attach layer points the thread at its
  // persistent per-shard BufferPool here). Set before the first run.
  void set_thread_hooks(std::function<void(int)> enter,
                        std::function<void(int)> exit);

  // Schedules `fn` on a shard's wheel from the main thread while the engine
  // is NOT running (setup between runs).
  void schedule_on(int shard, TimePoint at, Scheduler::Callback fn) {
    shards_[static_cast<std::size_t>(shard)]->sched.schedule_at(at, std::move(fn));
  }

  ParallelStats stats() const;

  // --- Simulation::EngineHook ---
  void run_until(TimePoint until) override;
  void run_to_empty() override;
  std::uint64_t events_executed() const override;
  bool queues_empty() const override;
  Scheduler& home_scheduler() override { return shards_.front()->sched; }

 private:
  static constexpr std::int64_t kMaxNs =
      std::numeric_limits<std::int64_t>::max();

  struct Channel;  // SPSC mailbox for one ordered shard pair

  struct OutNeighbor {
    int shard = -1;
    std::int64_t lookahead_ns = 0;
    Channel* channel = nullptr;
    // Consumer-requested wake threshold: when the producer's horizon
    // reaches it, the producer wakes the consumer. Advisory fast path; the
    // all-parked resolution is the correctness backstop.
    std::atomic<std::int64_t> wake_h{kMaxNs};
  };

  struct InNeighbor {
    int shard = -1;
    std::int64_t lookahead_ns = 0;
    Channel* channel = nullptr;
    OutNeighbor* producer_side = nullptr;  // matching entry on `shard`
  };

  struct Shard {
    explicit Shard(Scheduler::Backend b) : sched(b) {}
    Scheduler sched;
    // Lower bound on the timestamp of this shard's future sends.
    std::atomic<std::int64_t> horizon{0};
    // True while (possibly) parked; producers check it before taking the
    // engine lock to wake.
    std::atomic<bool> parked_hint{false};
    std::atomic<std::uint64_t> stalls{0};
    std::vector<std::unique_ptr<OutNeighbor>> out;
    std::vector<InNeighbor> in;
    // --- guarded by ParallelEngine::m_ ---
    std::condition_variable cv;
    bool parked = false;
    bool wake = false;
    bool has_next = false;
    std::int64_t next_at = kMaxNs;
    std::int64_t next_sched = kMaxNs;
    // --- owned by the worker thread ---
    std::uint64_t messages_in = 0;
  };

  bool over_cap(std::int64_t at, std::int64_t sched) const {
    return at > cap_at_ || (at == cap_at_ && sched > cap_sched_);
  }
  std::int64_t bound_of(const Shard& sh) const;
  void lift_horizon(Shard& sh, std::int64_t v);
  void wake_locked(int shard);
  void resolve_all_parked_locked();
  bool drain_inboxes(Shard& sh);
  void run_segment(int idx);
  // Parks shard `idx`; returns true when the segment is over for it. With
  // `stopping` the shard parks unconditionally (sim_.stop() was called) and
  // the all-parked resolution ends the segment without draining mailboxes.
  bool park(int idx, std::int64_t bound, bool stopping);
  void worker(int idx, std::uint64_t start_gen);
  // Runs one segment under the (cap_at, cap_sched) composite cap: shards
  // execute every event with at < cap_at, plus events at cap_at whose
  // schedule-origin is <= cap_sched (i.e. everything the serial engine
  // would dispatch before the control event with that key).
  void run_segment_all(std::int64_t cap_at, std::int64_t cap_sched);
  void run_loop(TimePoint until, bool bounded);

  Simulation& sim_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<Channel>> channels_;   // dense, see channel_at_
  std::vector<Channel*> channel_at_;                 // K*K adjacency
  struct Endpoint {
    int shard;
    std::function<void(MailboxMessage&&)> deliver;
  };
  std::vector<Endpoint> endpoints_;
  std::function<void(int)> enter_hook_;
  std::function<void(int)> exit_hook_;

  mutable std::mutex m_;
  std::condition_variable cv_workers_;  // segment start / engine shutdown
  std::condition_variable cv_main_;     // segment completion
  std::uint64_t seg_gen_ = 0;
  bool seg_done_ = false;
  bool running_ = false;
  int parked_count_ = 0;
  int workers_active_ = 0;  // workers currently inside run_segment
  std::int64_t cap_at_ = kMaxNs;
  std::int64_t cap_sched_ = kMaxNs;
  std::uint64_t quiescence_lifts_ = 0;
};

}  // namespace barb::sim
