#include "sim/time.h"

#include <cinttypes>
#include <cstdio>

namespace barb::sim {

namespace {

std::string format_ns(std::int64_t ns) {
  char buf[64];
  if (ns % 1'000'000'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "s", ns / 1'000'000'000);
  } else if (ns % 1'000'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "ms", ns / 1'000'000);
  } else if (ns % 1'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "us", ns / 1'000);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "ns", ns);
  }
  return buf;
}

}  // namespace

std::string Duration::to_string() const { return format_ns(ns_); }

std::string TimePoint::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9fs", to_seconds());
  return buf;
}

}  // namespace barb::sim
