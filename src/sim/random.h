// Deterministic pseudo-random generator for the simulator.
//
// xoshiro256** seeded through splitmix64. Every experiment repetition gets its
// own seed so runs are reproducible bit-for-bit across machines, which the
// validation methodology depends on (the paper averages three measurements per
// point; we must be able to re-run any of them).
#pragma once

#include <cmath>
#include <cstdint>

#include "util/assert.h"

namespace barb::sim {

class Random {
 public:
  explicit Random(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the four xoshiro words.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  // Uniform over the full 64-bit range.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound) {
    BARB_ASSERT(bound > 0);
    // Lemire's nearly-divisionless method with rejection for exact uniformity.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (l < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    BARB_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform real in [0, 1).
  double uniform_real() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  double uniform_real(double lo, double hi) {
    return lo + (hi - lo) * uniform_real();
  }

  bool bernoulli(double p) { return uniform_real() < p; }

  // Exponential with the given mean (mean > 0).
  double exponential(double mean) {
    BARB_ASSERT(mean > 0);
    double u;
    do {
      u = uniform_real();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  // Standard normal via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0) {
    if (has_spare_) {
      has_spare_ = false;
      return mean + stddev * spare_;
    }
    double u, v, s;
    do {
      u = uniform_real(-1.0, 1.0);
      v = uniform_real(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return mean + stddev * u * factor;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace barb::sim
