// Event engine: a hierarchical timing wheel over slab-pooled event records.
//
// The simulator executes 4-6 scheduled events per simulated frame, and a
// fig3b sweep pushes tens of millions of frames — so the scheduler's fixed
// cost per event bounds how deep and dense the paper sweeps can go. This
// engine is built around three ideas:
//
//   1. Slab-pooled intrusive records. Every scheduled event lives in a
//      pooled EventRecord that carries its own cancellation flag and a
//      generation counter; EventHandle is a (record, generation) pair, so
//      cancellation needs no per-event shared_ptr control block. Records
//      recycle through a free list — steady-state scheduling performs zero
//      heap allocations (gated by the microbench_scheduler ctest).
//
//   2. A hierarchical timing wheel. Four levels of 64 slots each bucket the
//      next 2^24 ns (~16.8 ms) of simulated future; events beyond that wait
//      in an overflow binary heap and migrate into the wheel when the clock
//      enters their epoch. Insert and cancel are O(1); dispatch touches at
//      most kLevels occupancy bitmaps plus a bounded number of cascades.
//
//   3. Allocation-free callbacks. Callbacks are InlineCallback values whose
//      56-byte small-buffer fits every capture the simulator schedules.
//
// Determinism contract (asserted by the randomized differential test in
// tests/sim/scheduler_wheel_test.cc): events are dispatched in strict
// (time, schedule-origin, scheduling-sequence) order — across wheel
// cascades, epoch migrations, and the overflow boundary. `schedule-origin`
// (EventRecord::sched_at) is the clock value at the instant the event was
// scheduled. In serial execution origins are monotone in sequence number,
// so this order is exactly the classic (time, sequence) order and
// same-instant events fire in the order they were scheduled. The extra key
// exists for the sharded parallel engine (sim/parallel_engine.h): a
// cross-shard delivery inserted via schedule_at_origin() carries its
// sender-side origin, which slots it among local same-instant events at the
// position the serial engine would have given it — that is what makes the
// parallel timeline byte-identical to the serial one. The binary-heap
// engine remains available behind BARB_SCHED=heap (or Backend::kHeap) so CI
// can assert that all paper artifacts are byte-identical under both.
//
// Cancellation: wheel-resident records unlink in O(1) and recycle
// immediately; overflow-resident records become tombstones that are purged
// at the heap top and compacted wholesale once they outnumber live entries
// (so a flood's worth of cancelled TCP retransmit timers cannot bloat the
// structure). pending_count() counts live events only; tombstone_count()
// reports lingering cancelled overflow entries.
//
// Threading: a Scheduler is single-threaded by construction, one per
// Simulation. Parallel sweeps give each worker its own Simulation, so slabs
// are shared-nothing (same model as the thread-local net::BufferPool).
// EventHandles must not outlive their Scheduler: the slab owns the records.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "sim/inline_callback.h"
#include "sim/time.h"
#include "util/assert.h"

namespace barb::sim {

class Scheduler;

namespace detail {

enum class EventState : std::uint8_t { kFree, kInWheel, kInOverflow, kRunning };

// One slab cell: 64 bytes of bookkeeping + a 64-byte InlineCallback.
struct EventRecord {
  TimePoint at;
  std::uint64_t seq = 0;
  TimePoint sched_at;         // clock at schedule time (dispatch tie-break)
  Duration period;            // zero => one-shot
  EventRecord* prev = nullptr;
  EventRecord* next = nullptr;  // doubles as the free-list link
  Scheduler* owner = nullptr;
  std::uint32_t gen = 0;        // bumped on recycle; stale handles go inert
  EventState state = EventState::kFree;
  std::uint8_t level = 0;
  std::uint8_t slot = 0;
  bool cancelled = false;
  InlineCallback fn;
};

static_assert(sizeof(EventRecord) == 128, "one record = two cache lines");

}  // namespace detail

// Cancellation token for a scheduled event. Default-constructed handles are
// inert. Cancelling an already-fired or already-cancelled event is a no-op,
// so components can cancel unconditionally in destructors. For periodic
// events (schedule_every) the handle stays valid across firings; cancel()
// stops the recurrence. Handles must not be used after the Scheduler that
// issued them is destroyed.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel();

  // True if the event is still queued (or currently executing) and not
  // cancelled.
  bool pending() const {
    return rec_ != nullptr && rec_->gen == gen_ && !rec_->cancelled;
  }

 private:
  friend class Scheduler;
  EventHandle(detail::EventRecord* rec, std::uint32_t gen)
      : rec_(rec), gen_(gen) {}

  detail::EventRecord* rec_ = nullptr;
  std::uint32_t gen_ = 0;
};

// Live counters for the sched.* telemetry bridge (Testbed keeps these out of
// figure timelines, like pool.*, to preserve byte-identical artifacts).
struct SchedulerStats {
  std::size_t pending = 0;             // live scheduled events
  std::size_t tombstones = 0;          // cancelled overflow entries not yet reaped
  std::size_t slab_records = 0;        // slab capacity (live + free records)
  std::uint64_t events_executed = 0;
  std::uint64_t cascades = 0;          // wheel slot redistributions
  std::uint64_t overflow_migrations = 0;  // epoch moves overflow -> wheel
  std::uint64_t compactions = 0;       // overflow tombstone sweeps
};

class Scheduler {
 public:
  using Callback = InlineCallback;

  enum class Backend {
    kWheel,  // hierarchical timing wheel + overflow heap (default)
    kHeap,   // pure binary heap, the legacy engine (BARB_SCHED=heap)
  };

  // Wheel geometry: kLevels levels of 64 slots; level k buckets 2^(6k) ns.
  static constexpr int kSlotBits = 6;
  static constexpr unsigned kSlots = 1u << kSlotBits;
  static constexpr int kLevels = 4;
  static constexpr int kSpanBits = kSlotBits * kLevels;  // 2^24 ns horizon

  static Backend backend_from_env() {
    const char* e = std::getenv("BARB_SCHED");
    if (e != nullptr && std::strcmp(e, "heap") == 0) return Backend::kHeap;
    return Backend::kWheel;
  }

  explicit Scheduler(Backend backend = backend_from_env())
      : backend_(backend), levels_(backend == Backend::kWheel ? kLevels : 0) {}

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  Backend backend() const { return backend_; }

  // Schedules `fn` once at absolute time `at` (must not be in the past).
  EventHandle schedule_at(TimePoint at, Callback fn) {
    return schedule_impl(at, Duration::zero(), std::move(fn));
  }

  // Schedules `fn` at `first`, then every `period` after each firing, reusing
  // one slab record for the whole recurrence. The re-arm happens after the
  // callback returns and draws a fresh sequence number, so dispatch order is
  // identical to a callback that re-schedules itself as its last action.
  EventHandle schedule_every(TimePoint first, Duration period, Callback fn) {
    BARB_ASSERT_MSG(period.ns() > 0, "periodic events need a positive period");
    return schedule_impl(first, period, std::move(fn));
  }

  // Schedules `fn` at `at` carrying an explicit schedule-origin instead of
  // the local clock. The parallel engine uses this for cross-shard
  // deliveries: `origin` is the sender-side clock value at the send, which
  // may be earlier than this scheduler's now(). Dispatch order among
  // same-instant events follows (origin, seq), reproducing the position the
  // serial engine would have assigned.
  EventHandle schedule_at_origin(TimePoint at, TimePoint origin, Callback fn) {
    BARB_ASSERT_MSG(at >= now_, "cannot schedule into the past");
    detail::EventRecord* r = alloc_record();
    r->at = at;
    r->seq = next_seq_++;
    r->sched_at = origin;
    r->period = Duration::zero();
    r->cancelled = false;
    r->fn = std::move(fn);
    insert(r);
    ++pending_;
    return EventHandle{r, r->gen};
  }

  TimePoint now() const { return now_; }
  bool empty() const { return pending_ == 0; }
  // Live scheduled events (cancelled entries awaiting reap are excluded; see
  // tombstone_count()). size() is a legacy alias for pending_count().
  std::size_t size() const { return pending_; }
  std::size_t pending_count() const { return pending_; }
  std::size_t tombstone_count() const { return overflow_tombstones_; }
  std::uint64_t events_executed() const { return events_executed_; }

  SchedulerStats stats() const {
    SchedulerStats s;
    s.pending = pending_;
    s.tombstones = overflow_tombstones_;
    s.slab_records = chunks_.size() * kChunkRecords;
    s.events_executed = events_executed_;
    s.cascades = cascades_;
    s.overflow_migrations = overflow_migrations_;
    s.compactions = compactions_;
    return s;
  }

  // Time of the earliest live pending event. Reaps cancelled entries off the
  // overflow top as a side effect (which is why it is not const); the result
  // never includes tombstones, so run_until() cannot overshoot its boundary
  // chasing a cancelled placeholder.
  TimePoint next_event_time() {
    BARB_ASSERT(!empty());
    if (wheel_count_ > 0) {
      drain_cursor_slots();
      return wheel_peek_time();
    }
    purge_overflow_top();
    BARB_ASSERT(!overflow_.empty());
    return overflow_.front().at;
  }

  // Full dispatch key (time, schedule-origin) of the earliest live pending
  // event — what run_one() will pop next. Unlike pop-and-reinsert peeking
  // this never moves the clock, which the parallel engine relies on when a
  // shard is blocked on its horizon: a cross-shard delivery may still arrive
  // below the locally pending event's time.
  std::pair<TimePoint, TimePoint> next_event_key() {
    BARB_ASSERT(!empty());
    if (wheel_count_ > 0) {
      drain_cursor_slots();
      const detail::EventRecord* r = wheel_peek_record();
      return {r->at, r->sched_at};
    }
    purge_overflow_top();
    BARB_ASSERT(!overflow_.empty());
    return {overflow_.front().at, overflow_.front().rec->sched_at};
  }

  // Per-slot record counts of one wheel level (empty for the heap backend).
  // Diagnostic only: microbench_scheduler reports the distribution so shard
  // load-imbalance investigations have a serial baseline.
  std::array<std::size_t, kSlots> slot_histogram(int level) const {
    std::array<std::size_t, kSlots> h{};
    if (level < 0 || level >= levels_) return h;
    for (unsigned s = 0; s < kSlots; ++s) {
      for (const detail::EventRecord* r =
               wheel_[static_cast<std::size_t>(level)][s].head;
           r != nullptr; r = r->next) {
        ++h[s];
      }
    }
    return h;
  }

  // Pops and runs the earliest live event; returns false if none remain.
  bool run_one() {
    detail::EventRecord* r = pop_earliest();
    if (r == nullptr) return false;
    BARB_ASSERT(r->at >= now_);
    now_ = r->at;
    r->state = detail::EventState::kRunning;
    ++events_executed_;
    r->fn();
    if (r->period.ns() > 0 && !r->cancelled) {
      // Periodic re-arm: same record, fresh sequence number (allocated after
      // the callback ran, so anything the callback scheduled fires first
      // among same-instant peers — exactly like a self-rescheduling loop).
      r->at = r->at + r->period;
      r->seq = next_seq_++;
      r->sched_at = now_;
      insert(r);
      ++pending_;
    } else {
      free_record(r);
    }
    return true;
  }

  // Advances the clock without running anything (used by run_until when the
  // queue drains before the target time). All pending events must be later
  // than `t`.
  void advance_to(TimePoint t) {
    BARB_ASSERT(t >= now_);
    const bool crossed_epoch = levels_ > 0 && !in_current_epoch(t);
    now_ = t;
    if (crossed_epoch) {
      BARB_ASSERT_MSG(wheel_count_ == 0, "advance_to skipped pending events");
      migrate_epoch(epoch_of(t));
    }
  }

 private:
  friend class EventHandle;

  static constexpr std::size_t kChunkRecords = 128;  // 16 KiB per chunk
  struct Chunk {
    std::array<detail::EventRecord, kChunkRecords> recs;
  };

  struct Slot {
    detail::EventRecord* head = nullptr;
    detail::EventRecord* tail = nullptr;
  };

  struct OverflowEntry {
    TimePoint at;
    TimePoint sched_at;
    std::uint64_t seq;
    detail::EventRecord* rec;
  };
  // Strict total order over (at, sched_at, seq): seq ties can't happen, so
  // the heap's pop sequence is fully determined; schedule origin then
  // scheduling order break time ties (the engine-wide dispatch key).
  struct OverflowLater {
    bool operator()(const OverflowEntry& a, const OverflowEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      if (a.sched_at != b.sched_at) return a.sched_at > b.sched_at;
      return a.seq > b.seq;
    }
  };

  std::uint64_t epoch_of(TimePoint t) const {
    return static_cast<std::uint64_t>(t.ns()) >> kSpanBits;
  }
  bool in_current_epoch(TimePoint t) const {
    return epoch_of(t) == epoch_of(now_);
  }

  EventHandle schedule_impl(TimePoint at, Duration period, Callback fn) {
    BARB_ASSERT_MSG(at >= now_, "cannot schedule into the past");
    detail::EventRecord* r = alloc_record();
    r->at = at;
    r->seq = next_seq_++;
    r->sched_at = now_;
    r->period = period;
    r->cancelled = false;
    r->fn = std::move(fn);
    insert(r);
    ++pending_;
    return EventHandle{r, r->gen};
  }

  void insert(detail::EventRecord* r) {
    if (levels_ > 0 && in_current_epoch(r->at)) {
      wheel_link(r);
      ++wheel_count_;
    } else {
      r->state = detail::EventState::kInOverflow;
      overflow_.push_back(OverflowEntry{r->at, r->sched_at, r->seq, r});
      std::push_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
    }
  }

  // Places `r` in the wheel slot derived from the highest bit where its time
  // differs from now (same epoch required). Higher-level slots append at the
  // tail; a level-0 slot holds a single instant and is kept in ascending
  // (sched_at, seq) order, so dispatch order is strict
  // (time, schedule-origin, seq) even when a cascade drops an
  // early-scheduled record into an instant that later schedules joined
  // directly, or a cross-shard delivery carries an origin earlier than
  // locally queued peers.
  void wheel_link(detail::EventRecord* r) {
    const auto t = static_cast<std::uint64_t>(r->at.ns());
    const auto n = static_cast<std::uint64_t>(now_.ns());
    const std::uint64_t diff = t ^ n;
    const int level =
        diff == 0 ? 0 : (63 - std::countl_zero(diff)) / kSlotBits;
    BARB_ASSERT(level < levels_);
    const unsigned slot =
        static_cast<unsigned>(t >> (level * kSlotBits)) & (kSlots - 1);
    r->state = detail::EventState::kInWheel;
    r->level = static_cast<std::uint8_t>(level);
    r->slot = static_cast<std::uint8_t>(slot);
    Slot& s = wheel_[static_cast<std::size_t>(level)][slot];
    detail::EventRecord* after = s.tail;  // insert after this node
    if (level == 0) {
      while (after != nullptr &&
             (after->sched_at > r->sched_at ||
              (after->sched_at == r->sched_at && after->seq > r->seq))) {
        after = after->prev;
      }
    }
    r->prev = after;
    if (after != nullptr) {
      r->next = after->next;
      after->next = r;
    } else {
      r->next = s.head;
      s.head = r;
    }
    (r->next != nullptr ? r->next->prev : s.tail) = r;
    occupied_[static_cast<std::size_t>(level)] |= 1ull << slot;
  }

  void wheel_unlink(detail::EventRecord* r) {
    Slot& s = wheel_[r->level][r->slot];
    (r->prev != nullptr ? r->prev->next : s.head) = r->next;
    (r->next != nullptr ? r->next->prev : s.tail) = r->prev;
    if (s.head == nullptr) occupied_[r->level] &= ~(1ull << r->slot);
  }

  // Empties one slot and re-places each record relative to the current
  // cursor; every record lands at a strictly lower level. List order is
  // preserved, which keeps same-instant events in seq order.
  void cascade(int level, unsigned slot) {
    Slot& s = wheel_[static_cast<std::size_t>(level)][slot];
    detail::EventRecord* r = s.head;
    s.head = s.tail = nullptr;
    occupied_[static_cast<std::size_t>(level)] &= ~(1ull << slot);
    while (r != nullptr) {
      detail::EventRecord* next = r->next;
      wheel_link(r);
      r = next;
    }
    ++cascades_;
  }

  // Re-establishes the scan invariant after the clock moves: a level-k slot
  // (k >= 1) that the cursor has caught up to holds records belonging to the
  // *current* k-block, which can be earlier than records at lower levels —
  // so the lowest-level-first scan would dispatch around them and leave them
  // stranded behind the cursor. Cascading such slots pushes their records to
  // strictly lower levels (every record here satisfies at >= now_, because
  // dispatch always pops the global minimum), after which level order again
  // implies time order. Relinked records never land on a cursor slot (the
  // link rule picks the highest *differing* digit), so one pass suffices.
  void drain_cursor_slots() {
    const auto n = static_cast<std::uint64_t>(now_.ns());
    for (int level = levels_ - 1; level >= 1; --level) {
      const unsigned cursor =
          static_cast<unsigned>(n >> (level * kSlotBits)) & (kSlots - 1);
      if ((occupied_[static_cast<std::size_t>(level)] >> cursor) & 1u) {
        cascade(level, cursor);
      }
    }
  }

  // Extracts the earliest wheel record, advancing the cursor across slot
  // boundaries and cascading higher-level slots as it goes. Precondition:
  // wheel_count_ > 0.
  detail::EventRecord* wheel_pop_front() {
    for (;;) {
      drain_cursor_slots();
      const auto n = static_cast<std::uint64_t>(now_.ns());
      int level = 0;
      std::uint64_t mask = 0;
      for (; level < levels_; ++level) {
        const unsigned cursor =
            static_cast<unsigned>(n >> (level * kSlotBits)) & (kSlots - 1);
        mask = occupied_[static_cast<std::size_t>(level)] & (~0ull << cursor);
        if (mask != 0) break;
      }
      BARB_ASSERT_MSG(level < levels_, "wheel occupancy out of sync");
      const auto slot = static_cast<unsigned>(std::countr_zero(mask));
      if (level == 0) {
        detail::EventRecord* r = wheel_[0][slot].head;
        wheel_unlink(r);
        --wheel_count_;
        --pending_;
        return r;
      }
      const unsigned cursor =
          static_cast<unsigned>(n >> (level * kSlotBits)) & (kSlots - 1);
      if (slot != cursor) {
        // Tick the cursor to the slot's range start (all pending events are
        // at or beyond it) so the cascade lands at lower levels.
        const std::uint64_t prefix = n >> ((level + 1) * kSlotBits);
        now_ = TimePoint::from_ns(static_cast<std::int64_t>(
            ((prefix << kSlotBits) | slot) << (level * kSlotBits)));
      }
      cascade(level, slot);
    }
  }

  // Exact time of the earliest wheel record. Level-0 slots hold a single
  // instant, so the common case is O(kLevels) bitmap scans; a higher-level
  // hit walks one slot's list.
  TimePoint wheel_peek_time() const {
    const auto n = static_cast<std::uint64_t>(now_.ns());
    for (int level = 0; level < levels_; ++level) {
      const unsigned cursor =
          static_cast<unsigned>(n >> (level * kSlotBits)) & (kSlots - 1);
      const std::uint64_t mask =
          occupied_[static_cast<std::size_t>(level)] & (~0ull << cursor);
      if (mask == 0) continue;
      const auto slot = static_cast<unsigned>(std::countr_zero(mask));
      if (level == 0) {
        return TimePoint::from_ns(
            static_cast<std::int64_t>(((n >> kSlotBits) << kSlotBits) | slot));
      }
      const Slot& s = wheel_[static_cast<std::size_t>(level)][slot];
      TimePoint earliest = TimePoint::max();
      for (const detail::EventRecord* r = s.head; r != nullptr; r = r->next) {
        earliest = std::min(earliest, r->at);
      }
      return earliest;
    }
    BARB_ASSERT_MSG(false, "wheel_peek_time on an empty wheel");
    return TimePoint::max();
  }

  // Earliest wheel record by the full (at, sched_at, seq) dispatch key.
  // Precondition: wheel_count_ > 0 and drain_cursor_slots() has run.
  const detail::EventRecord* wheel_peek_record() const {
    const auto n = static_cast<std::uint64_t>(now_.ns());
    for (int level = 0; level < levels_; ++level) {
      const unsigned cursor =
          static_cast<unsigned>(n >> (level * kSlotBits)) & (kSlots - 1);
      const std::uint64_t mask =
          occupied_[static_cast<std::size_t>(level)] & (~0ull << cursor);
      if (mask == 0) continue;
      const auto slot = static_cast<unsigned>(std::countr_zero(mask));
      const Slot& s = wheel_[static_cast<std::size_t>(level)][slot];
      if (level == 0) return s.head;  // single instant, (sched_at, seq) order
      const detail::EventRecord* best = s.head;
      for (const detail::EventRecord* r = s.head->next; r != nullptr;
           r = r->next) {
        if (r->at < best->at ||
            (r->at == best->at &&
             (r->sched_at < best->sched_at ||
              (r->sched_at == best->sched_at && r->seq < best->seq)))) {
          best = r;
        }
      }
      return best;
    }
    BARB_ASSERT_MSG(false, "wheel_peek_record on an empty wheel");
    return nullptr;
  }

  // Reaps cancelled records off the overflow heap top.
  void purge_overflow_top() {
    while (!overflow_.empty() && overflow_.front().rec->cancelled) {
      std::pop_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
      free_record(overflow_.back().rec);
      overflow_.pop_back();
      --overflow_tombstones_;
    }
  }

  // Moves every live overflow entry belonging to `epoch` into the wheel, in
  // (time, seq) order so same-instant events keep their scheduling order.
  // Precondition (wheel mode): now_ is inside `epoch`.
  void migrate_epoch(std::uint64_t epoch) {
    while (!overflow_.empty()) {
      if (overflow_.front().rec->cancelled) {
        purge_overflow_top();
        continue;
      }
      if (epoch_of(overflow_.front().at) != epoch) break;
      std::pop_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
      detail::EventRecord* r = overflow_.back().rec;
      overflow_.pop_back();
      wheel_link(r);
      ++wheel_count_;
    }
    ++overflow_migrations_;
  }

  // Extracts the earliest live event, or nullptr when none remain. In wheel
  // mode an empty wheel with a populated overflow advances the cursor to the
  // next epoch and migrates it in first.
  detail::EventRecord* pop_earliest() {
    for (;;) {
      if (wheel_count_ > 0) return wheel_pop_front();
      purge_overflow_top();
      if (overflow_.empty()) return nullptr;
      if (levels_ == 0) {
        std::pop_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
        detail::EventRecord* r = overflow_.back().rec;
        overflow_.pop_back();
        --pending_;
        return r;
      }
      const std::uint64_t epoch = epoch_of(overflow_.front().at);
      const auto epoch_start = TimePoint::from_ns(
          static_cast<std::int64_t>(epoch << kSpanBits));
      BARB_ASSERT(epoch_start >= now_);
      now_ = epoch_start;
      migrate_epoch(epoch);
    }
  }

  // EventHandle::cancel with a verified generation lands here.
  void cancel_record(detail::EventRecord* r) {
    switch (r->state) {
      case detail::EventState::kInWheel:
        wheel_unlink(r);
        --wheel_count_;
        --pending_;
        free_record(r);
        break;
      case detail::EventState::kInOverflow:
        if (!r->cancelled) {
          r->cancelled = true;
          --pending_;
          ++overflow_tombstones_;
          maybe_compact_overflow();
        }
        break;
      case detail::EventState::kRunning:
        // Cannot un-run the current firing; for periodic events this stops
        // the recurrence when the callback returns.
        r->cancelled = true;
        break;
      case detail::EventState::kFree:
        BARB_ASSERT_MSG(false, "generation check should have caught this");
        break;
    }
  }

  // Sweeps cancelled entries out of the overflow heap once they outnumber
  // live ones (and are numerous enough to matter), so long-lived cancelled
  // timers — TCP retransmit timers under flood — cannot bloat the heap.
  void maybe_compact_overflow() {
    if (overflow_tombstones_ < 64 ||
        overflow_tombstones_ * 2 <= overflow_.size()) {
      return;
    }
    auto out = overflow_.begin();
    for (OverflowEntry& e : overflow_) {
      if (e.rec->cancelled) {
        free_record(e.rec);
      } else {
        *out++ = e;
      }
    }
    overflow_.erase(out, overflow_.end());
    std::make_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
    overflow_tombstones_ = 0;
    ++compactions_;
  }

  detail::EventRecord* alloc_record() {
    if (free_list_ == nullptr) grow_slab();
    detail::EventRecord* r = free_list_;
    free_list_ = r->next;
    return r;
  }

  void free_record(detail::EventRecord* r) {
    r->fn.reset();
    r->state = detail::EventState::kFree;
    ++r->gen;  // handles issued for the old incarnation go inert
    r->next = free_list_;
    free_list_ = r;
  }

  void grow_slab() {
    chunks_.push_back(std::make_unique<Chunk>());
    Chunk& c = *chunks_.back();
    for (auto it = c.recs.rbegin(); it != c.recs.rend(); ++it) {
      it->owner = this;
      it->next = free_list_;
      free_list_ = &*it;
    }
  }

  const Backend backend_;
  const int levels_;  // kLevels for the wheel, 0 for the pure heap

  Slot wheel_[kLevels][kSlots];
  std::uint64_t occupied_[kLevels] = {};
  std::size_t wheel_count_ = 0;

  std::vector<OverflowEntry> overflow_;  // min-heap via push_heap/pop_heap
  std::size_t overflow_tombstones_ = 0;

  std::vector<std::unique_ptr<Chunk>> chunks_;
  detail::EventRecord* free_list_ = nullptr;

  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::size_t pending_ = 0;
  std::uint64_t cascades_ = 0;
  std::uint64_t overflow_migrations_ = 0;
  std::uint64_t compactions_ = 0;
};

inline void EventHandle::cancel() {
  if (rec_ != nullptr && rec_->gen == gen_) rec_->owner->cancel_record(rec_);
  rec_ = nullptr;
  gen_ = 0;
}

}  // namespace barb::sim
