// Event scheduler: a stable binary-heap priority queue of timed callbacks.
//
// Stability matters: events scheduled for the same instant fire in scheduling
// order, which keeps simulations deterministic and makes causality reasoning
// possible ("the ACK I scheduled before the timer fires first").
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/time.h"
#include "util/assert.h"

namespace barb::sim {

// Cancellation token for a scheduled event. Default-constructed handles are
// inert. Cancelling an already-fired or already-cancelled event is a no-op,
// so components can cancel unconditionally in destructors.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel() {
    if (auto s = state_.lock()) *s = true;
    state_.reset();
  }

  // True if the event is still queued and not cancelled.
  bool pending() const {
    auto s = state_.lock();
    return s && !*s;
  }

 private:
  friend class Scheduler;
  explicit EventHandle(std::weak_ptr<bool> state) : state_(std::move(state)) {}
  std::weak_ptr<bool> state_;
};

class Scheduler {
 public:
  using Callback = std::function<void()>;

  // Schedules `fn` at absolute time `at` (must not be in the past).
  EventHandle schedule_at(TimePoint at, Callback fn) {
    BARB_ASSERT_MSG(at >= now_, "cannot schedule into the past");
    auto cancelled = std::make_shared<bool>(false);
    EventHandle handle{std::weak_ptr<bool>(cancelled)};
    heap_.push_back(Entry{at, next_seq_++, std::move(fn), std::move(cancelled)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return handle;
  }

  TimePoint now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  std::uint64_t events_executed() const { return events_executed_; }

  // Time of the earliest pending entry (including cancelled placeholders).
  TimePoint next_event_time() const {
    BARB_ASSERT(!heap_.empty());
    return heap_.front().at;
  }

  // Pops and runs the earliest event; returns false if the queue is empty.
  // Cancelled entries are discarded without advancing the executed count.
  bool run_one() {
    while (!heap_.empty()) {
      // pop_heap moves the top entry to the back, where it can legally be
      // moved from (std::priority_queue::top() only exposes a const ref,
      // which would force a const_cast with undefined-behaviour potential).
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      Entry e = std::move(heap_.back());
      heap_.pop_back();
      if (*e.cancelled) continue;
      BARB_ASSERT(e.at >= now_);
      now_ = e.at;
      ++events_executed_;
      e.fn();
      return true;
    }
    return false;
  }

  // Advances the clock without running anything (used by run_until when the
  // queue drains before the target time).
  void advance_to(TimePoint t) {
    BARB_ASSERT(t >= now_);
    now_ = t;
  }

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<bool> cancelled;
  };
  // Strict total order over (at, seq): seq ties can't happen, so the heap's
  // pop sequence is fully determined and scheduling order breaks time ties.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Min-heap via std::push_heap/pop_heap over a plain vector.
  std::vector<Entry> heap_;
  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
};

}  // namespace barb::sim
