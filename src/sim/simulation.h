// Simulation context: clock, scheduler, and deterministic RNG.
//
// Every simulated component holds a reference to one Simulation and schedules
// all its activity through it. One Simulation == one isolated testbed run.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "sim/random.h"
#include "sim/scheduler.h"
#include "sim/time.h"

namespace barb::sim {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  TimePoint now() const { return scheduler_.now(); }
  Random& rng() { return rng_; }
  Scheduler& scheduler() { return scheduler_; }

  // Schedules `fn` after `delay` (>= 0) of simulated time.
  EventHandle schedule(Duration delay, Scheduler::Callback fn) {
    return scheduler_.schedule_at(now() + delay, std::move(fn));
  }

  EventHandle schedule_at(TimePoint at, Scheduler::Callback fn) {
    return scheduler_.schedule_at(at, std::move(fn));
  }

  // Schedules `fn` every `period`, first firing one period from now. The
  // recurrence reuses a single slab record (no per-tick allocation); cancel
  // the returned handle to stop it.
  EventHandle schedule_every(Duration period, Scheduler::Callback fn) {
    return scheduler_.schedule_every(now() + period, period, std::move(fn));
  }

  // Runs until the event queue drains or `stop()` is called.
  void run() {
    stopped_ = false;
    while (!stopped_ && scheduler_.run_one()) {
    }
  }

  // Runs events with timestamps <= `until`, then sets the clock to `until`.
  void run_until(TimePoint until) {
    stopped_ = false;
    while (!stopped_ && !scheduler_.empty() &&
           scheduler_.next_event_time() <= until) {
      scheduler_.run_one();
    }
    if (!stopped_ && scheduler_.now() < until) scheduler_.advance_to(until);
  }

  void run_for(Duration d) { run_until(now() + d); }

  // Stops the run loop after the current event returns.
  void stop() { stopped_ = true; }

  std::uint64_t events_executed() const { return scheduler_.events_executed(); }

 private:
  Scheduler scheduler_;
  Random rng_;
  bool stopped_ = false;
};

}  // namespace barb::sim
