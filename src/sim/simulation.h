// Simulation context: clock, scheduler, and deterministic RNG.
//
// Every simulated component holds a reference to one Simulation and schedules
// all its activity through it. One Simulation == one isolated testbed run.
//
// Parallel execution (opt-in): when a sim::ParallelEngine is attached, the
// simulation's events are split across per-shard schedulers driven by worker
// threads, and the members here route by thread: on a shard worker thread,
// now()/schedule*() target that shard's scheduler (via thread-local context
// the engine installs); on the main thread they target the engine's home
// shard, except schedule_every_global() which keeps control events
// (telemetry probes) on the main scheduler so they run between shard
// segments at global quiescence. Without an engine nothing changes — the
// thread-local context is null and every call lands on the one scheduler,
// byte-identical to the pre-parallel engine.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>

#include "sim/random.h"
#include "sim/scheduler.h"
#include "sim/time.h"
#include "util/assert.h"

namespace barb::sim {

namespace detail {
// Set by a parallel-engine worker thread for its lifetime; null on the main
// thread and on sweep-runner workers (which run whole serial Simulations).
struct ShardContext {
  Scheduler* sched = nullptr;
  int shard = -1;
};
inline thread_local ShardContext tls_shard_context;
}  // namespace detail

class Simulation {
 public:
  // Interface the parallel engine implements; Simulation stays ignorant of
  // the engine's internals (and sim/simulation.h free of its declarations).
  class EngineHook {
   public:
    virtual ~EngineHook() = default;
    virtual void run_until(TimePoint until) = 0;
    virtual void run_to_empty() = 0;
    virtual std::uint64_t events_executed() const = 0;
    virtual bool queues_empty() const = 0;
    virtual Scheduler& home_scheduler() = 0;
  };

  explicit Simulation(std::uint64_t seed = 1) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  TimePoint now() const {
    const Scheduler* s = detail::tls_shard_context.sched;
    return s != nullptr ? s->now() : scheduler_.now();
  }

  // The simulation-wide RNG stream. Draw order is part of the deterministic
  // timeline, so under a parallel engine only one shard (the partition's
  // "home" shard, which hosts every RNG-drawing component) may touch it —
  // a draw from any other shard would make the stream depend on thread
  // interleaving. Fault injectors have their own per-port streams and are
  // exempt by construction.
  Random& rng() {
    BARB_ASSERT_MSG(
        detail::tls_shard_context.shard < 0 ||
            detail::tls_shard_context.shard == rng_home_shard_,
        "Simulation::rng() used from a non-home shard; this partition "
        "requires all RNG-drawing components on the RNG home shard");
    return rng_;
  }
  Scheduler& scheduler() { return scheduler_; }

  // Attaches (or detaches, with nullptr) a parallel engine. `rng_home_shard`
  // is the only shard whose worker thread may call rng(); pass -1 to forbid
  // all shard-side draws (spread partitions with draw-free workloads).
  void attach_engine(EngineHook* engine, int rng_home_shard = 0) {
    engine_ = engine;
    rng_home_shard_ = engine == nullptr ? 0 : rng_home_shard;
  }
  EngineHook* engine() const { return engine_; }

  // Schedules `fn` after `delay` (>= 0) of simulated time.
  EventHandle schedule(Duration delay, Scheduler::Callback fn) {
    return target_scheduler().schedule_at(now() + delay, std::move(fn));
  }

  EventHandle schedule_at(TimePoint at, Scheduler::Callback fn) {
    return target_scheduler().schedule_at(at, std::move(fn));
  }

  // Schedules `fn` every `period`, first firing one period from now. The
  // recurrence reuses a single slab record (no per-tick allocation); cancel
  // the returned handle to stop it.
  EventHandle schedule_every(Duration period, Scheduler::Callback fn) {
    Scheduler& s = target_scheduler();
    return s.schedule_every(now() + period, period, std::move(fn));
  }

  // Like schedule_every, but pinned to the main ("control") scheduler even
  // when a parallel engine is attached. Control events run on the main
  // thread between shard segments, at global quiescence, so their callbacks
  // may read cross-shard state (telemetry sampling). Without an engine this
  // is exactly schedule_every.
  EventHandle schedule_every_global(Duration period, Scheduler::Callback fn) {
    return scheduler_.schedule_every(scheduler_.now() + period, period,
                                     std::move(fn));
  }

  // Runs until the event queue drains or `stop()` is called.
  void run() {
    stopped_.store(false, std::memory_order_relaxed);
    if (engine_ != nullptr) {
      engine_->run_to_empty();
      return;
    }
    while (!stopped_.load(std::memory_order_relaxed) && scheduler_.run_one()) {
    }
  }

  // Runs events with timestamps <= `until`, then sets the clock to `until`.
  void run_until(TimePoint until) {
    stopped_.store(false, std::memory_order_relaxed);
    if (engine_ != nullptr) {
      engine_->run_until(until);
      return;
    }
    while (!stopped_.load(std::memory_order_relaxed) && !scheduler_.empty() &&
           scheduler_.next_event_time() <= until) {
      scheduler_.run_one();
    }
    if (!stopped_.load(std::memory_order_relaxed) && scheduler_.now() < until) {
      scheduler_.advance_to(until);
    }
  }

  void run_for(Duration d) { run_until(now() + d); }

  // Stops the run loop after the current event returns (with an engine
  // attached: after the current segment completes).
  void stop() { stopped_.store(true, std::memory_order_relaxed); }
  bool stop_requested() const {
    return stopped_.load(std::memory_order_relaxed);
  }

  std::uint64_t events_executed() const {
    return scheduler_.events_executed() +
           (engine_ != nullptr ? engine_->events_executed() : 0);
  }

  // True when no live events remain anywhere: the one scheduler in serial
  // mode; every shard wheel, cross-shard mailbox, and the control scheduler
  // with an engine attached. (Quiescence checks must use this instead of
  // scheduler().empty().)
  bool queues_empty() const {
    return scheduler_.empty() &&
           (engine_ == nullptr || engine_->queues_empty());
  }

 private:
  Scheduler& target_scheduler() {
    if (detail::tls_shard_context.sched != nullptr) {
      return *detail::tls_shard_context.sched;
    }
    if (engine_ != nullptr) return engine_->home_scheduler();
    return scheduler_;
  }

  Scheduler scheduler_;
  Random rng_;
  std::atomic<bool> stopped_{false};
  EngineHook* engine_ = nullptr;
  int rng_home_shard_ = 0;
};

}  // namespace barb::sim
